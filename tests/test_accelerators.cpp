/** @file Unit tests for the accel/ layer: MCBP, GPU and SOTA baselines. */
#include <gtest/gtest.h>

#include "accel/baselines.hpp"
#include "accel/gpu_model.hpp"
#include "accel/mcbp_accelerator.hpp"

namespace mcbp::accel {
namespace {

const model::LlmConfig &llama7b() { return model::findModel("Llama7B"); }

TEST(Report, DerivedMetrics)
{
    RunMetrics r;
    r.clockGhz = 1.0;
    r.prefill.cycles = 1e9; // 1 second
    r.prefill.denseMacs = 5e11;
    r.prefill.energy.dramPj = 2e12; // 2 J
    EXPECT_DOUBLE_EQ(r.seconds(), 1.0);
    EXPECT_DOUBLE_EQ(r.joules(), 2.0);
    EXPECT_DOUBLE_EQ(r.watts(), 2.0);
    EXPECT_DOUBLE_EQ(r.gops(), 1000.0);
    EXPECT_DOUBLE_EQ(r.gopsPerWatt(), 500.0);
}

TEST(Report, SpeedupHelpers)
{
    RunMetrics fast, slow;
    fast.clockGhz = slow.clockGhz = 1.0;
    fast.prefill.cycles = 1e6;
    slow.prefill.cycles = 9e6;
    fast.prefill.energy.dramPj = 1e9;
    slow.prefill.energy.dramPj = 5e9;
    EXPECT_DOUBLE_EQ(speedupVs(fast, slow), 9.0);
    EXPECT_DOUBLE_EQ(energySavingVs(fast, slow), 5.0);
}

TEST(Mcbp, BeatsItsOwnBaseline)
{
    // Full MCBP vs vanilla bit compute + value compression + value top-k
    // (Fig 19a): it must be materially faster on every task kind.
    McbpAccelerator full = makeMcbpStandard();
    McbpAccelerator base = makeMcbpBaseline();
    for (const char *task : {"Dolly", "MBPP", "Cola"}) {
        RunMetrics a = full.run(llama7b(), model::findTask(task));
        RunMetrics b = base.run(llama7b(), model::findTask(task));
        EXPECT_GT(speedupVs(a, b), 1.15) << task;
        // Energy: clearly better on prompt/mixed tasks; on the most
        // weight-streaming-bound task (MBPP decode) the value-level
        // Huffman baseline's strong compression ratio keeps it close
        // (see EXPERIMENTS.md), so require parity there.
        EXPECT_GT(energySavingVs(a, b), 0.95) << task;
    }
    RunMetrics a = full.run(llama7b(), model::findTask("Dolly"));
    RunMetrics b = base.run(llama7b(), model::findTask("Dolly"));
    EXPECT_GT(energySavingVs(a, b), 1.2);
}

TEST(Mcbp, AggressiveFasterThanStandard)
{
    McbpAccelerator std_cfg = makeMcbpStandard();
    McbpAccelerator agg_cfg = makeMcbpAggressive();
    RunMetrics s = std_cfg.run(llama7b(), model::findTask("Dolly"));
    RunMetrics a = agg_cfg.run(llama7b(), model::findTask("Dolly"));
    EXPECT_GE(speedupVs(a, s), 0.99); // at least not slower
}

TEST(Mcbp, BstcAcceleratesDecodeWeightPath)
{
    // BSTC's edge over value-level Huffman is throughput and alignment:
    // the two-state decoder keeps up with HBM while the variable-length
    // value decoder serializes, so decode-heavy runs finish faster even
    // when Huffman's raw compression ratio is competitive.
    McbpOptions with, without;
    without.enableBstc = false;
    McbpAccelerator a(sim::defaultConfig(), with);
    McbpAccelerator b(sim::defaultConfig(), without);
    const model::Workload &mbpp = model::findTask("MBPP");
    RunMetrics ra = a.run(llama7b(), mbpp);
    RunMetrics rb = b.run(llama7b(), mbpp);
    EXPECT_LT(ra.decode.cycles, rb.decode.cycles);
    // And the value path pays bit-reorder energy that BSTC avoids.
    EXPECT_EQ(ra.decode.energy.bitReorderPj, 0.0);
    EXPECT_GT(rb.decode.energy.bitReorderPj, 0.0);
}

TEST(Mcbp, BgppCutsKvTraffic)
{
    McbpOptions with, without;
    without.enableBgpp = false;
    McbpAccelerator a(sim::defaultConfig(), with);
    McbpAccelerator b(sim::defaultConfig(), without);
    const model::Workload &dolly = model::findTask("Dolly");
    RunMetrics ra = a.run(llama7b(), dolly);
    RunMetrics rb = b.run(llama7b(), dolly);
    EXPECT_LT(ra.decode.traffic.predictionBytes +
                  ra.decode.traffic.kvBytes,
              rb.decode.traffic.predictionBytes +
                  rb.decode.traffic.kvBytes);
}

TEST(Mcbp, BrcrCutsExecutedAdds)
{
    McbpOptions with, without;
    without.enableBrcr = false;
    McbpAccelerator a(sim::defaultConfig(), with);
    McbpAccelerator b(sim::defaultConfig(), without);
    const model::Workload &cola = model::findTask("Cola");
    EXPECT_LT(a.run(llama7b(), cola).prefill.executedAdds,
              b.run(llama7b(), cola).prefill.executedAdds);
}

TEST(Mcbp, NamesReflectConfiguration)
{
    EXPECT_EQ(makeMcbpStandard().name(), "MCBP(S)");
    EXPECT_EQ(makeMcbpAggressive().name(), "MCBP(A)");
    EXPECT_EQ(makeMcbpBaseline().name(), "Baseline");
    McbpOptions o;
    o.enableBgpp = false;
    EXPECT_EQ(McbpAccelerator(sim::defaultConfig(), o).name(), "MCBP[RC]");
}

TEST(Gpu, DecodeDominatedByWeightsOnShortPrompts)
{
    // Fig 1(a): on the A100, short-prompt decode is dominated by weight
    // loading; long-prompt decode by KV loading.
    GpuA100Model gpu;
    model::Workload short_p =
        model::withLengths(model::findTask("Cola"), 1024, 16);
    RunMetrics r = gpu.run(llama7b(), short_p);
    EXPECT_GT(r.decode.weightLoadCycles, r.decode.kvLoadCycles);

    model::Workload long_p =
        model::withLengths(model::findTask("Dolly"), 65536, 16);
    RunMetrics r2 = gpu.run(llama7b(), long_p);
    EXPECT_GT(r2.decode.kvLoadCycles, r2.decode.weightLoadCycles);
}

TEST(Gpu, DecodeMemoryBound)
{
    GpuA100Model gpu;
    RunMetrics r = gpu.run(llama7b(), model::findTask("MBPP"));
    // Decode latency must track traffic, not compute.
    EXPECT_GT(r.decode.weightLoadCycles + r.decode.kvLoadCycles,
              r.decode.gemmCycles);
}

TEST(Gpu, BatchAmortizesWeights)
{
    GpuA100Model gpu;
    model::Workload b8 = model::findTask("MBPP");
    model::Workload b128 = b8;
    b128.batch = 128;
    RunMetrics r8 = gpu.run(llama7b(), b8);
    RunMetrics r128 = gpu.run(llama7b(), b128);
    // Throughput per batch element improves with batch (Fig 20a).
    const double t8 = r8.seconds() / 8.0;
    const double t128 = r128.seconds() / 128.0;
    EXPECT_LT(t128, t8);
}

TEST(Gpu, SoftwareAlgorithmsGiveModestGain)
{
    // Fig 21: deploying MCBP's algorithms on the GPU yields only ~1.0-1.5x.
    GpuA100Model plain;
    GpuA100Model with_sw({}, {true, true, true});
    const model::Workload &dolly = model::findTask("Dolly");
    RunMetrics a = plain.run(llama7b(), dolly);
    RunMetrics b = with_sw.run(llama7b(), dolly);
    const double gain = speedupVs(b, a);
    EXPECT_GT(gain, 0.95);
    EXPECT_LT(gain, 2.5);
}

TEST(Baselines, TraitsReflectMechanisms)
{
    WeightStats ws = profileWeights(llama7b(), quant::BitWidth::Int8, 1);
    AttentionStats as =
        profileAttention(llama7b(), model::findTask("Dolly"), 0.6, 1);
    EXPECT_EQ(makeSystolic().name, "Systolic");
    EXPECT_TRUE(makeSpatten(as).decodeOptimized);
    EXPECT_FALSE(makeSofa(as).decodeOptimized);
    EXPECT_FALSE(makeFact(as).decodeOptimized);
    EXPECT_GT(makeBitwave(ws).bitReorderPerWeightBit, 0.0);
    EXPECT_LT(makeFuseKna(ws).utilization, 0.7);
    EXPECT_DOUBLE_EQ(makeCambriconC(ws).weightCompression, 2.0);
}

TEST(Baselines, TopkDesignsBeatSystolicOnLongContext)
{
    WeightStats ws = profileWeights(llama7b(), quant::BitWidth::Int8, 1);
    AttentionStats as =
        profileAttention(llama7b(), model::findTask("Dolly"), 0.6, 1);
    (void)ws;
    BaselineAccelerator systolic(makeSystolic());
    BaselineAccelerator spatten(makeSpatten(as));
    const model::Workload &dolly = model::findTask("Dolly");
    RunMetrics rs = systolic.run(llama7b(), dolly);
    RunMetrics rp = spatten.run(llama7b(), dolly);
    EXPECT_GT(speedupVs(rp, rs), 1.1);
}

TEST(Baselines, PrefillOnlyDesignsLoseInDecode)
{
    // SOFA's mechanisms do not apply in decode: its decode time matches
    // the systolic reference much more closely than Spatten's does.
    AttentionStats as =
        profileAttention(llama7b(), model::findTask("Dolly"), 0.6, 1);
    BaselineAccelerator systolic(makeSystolic());
    BaselineAccelerator sofa(makeSofa(as));
    BaselineAccelerator spatten(makeSpatten(as));
    const model::Workload &dolly = model::findTask("Dolly");
    const double d_sys = systolic.run(llama7b(), dolly).decode.cycles;
    const double d_sofa = sofa.run(llama7b(), dolly).decode.cycles;
    const double d_spat = spatten.run(llama7b(), dolly).decode.cycles;
    EXPECT_LT(d_spat, d_sofa);
    EXPECT_LE(d_sofa, d_sys * 1.05);
}

TEST(Mcbp, OutperformsAllBaselinesOnMeanEfficiency)
{
    // Table 4 shape: MCBP's energy efficiency tops every baseline.
    McbpAccelerator mcbp = makeMcbpStandard();
    WeightStats ws = profileWeights(llama7b(), quant::BitWidth::Int8, 1);
    AttentionStats as =
        profileAttention(llama7b(), model::findTask("Dolly"), 0.6, 1);
    const model::Workload &dolly = model::findTask("Dolly");
    RunMetrics rm = mcbp.run(llama7b(), dolly);
    for (const BaselineTraits &traits :
         {makeSystolic(), makeSpatten(as), makeFact(as), makeSofa(as),
          makeBitwave(ws), makeFuseKna(ws)}) {
        BaselineAccelerator accel(traits);
        RunMetrics rb = accel.run(llama7b(), dolly);
        EXPECT_GT(rm.gopsPerWatt(), rb.gopsPerWatt()) << traits.name;
    }
}

} // namespace
} // namespace mcbp::accel
