/** @file Unit tests for sim/tiling, sim/layout and sim/layer_sim. */
#include <gtest/gtest.h>

#include "sim/layer_sim.hpp"
#include "sim/layout.hpp"
#include "sim/tiling.hpp"

namespace mcbp::sim {
namespace {

TEST(Tiling, GridCoversProblem)
{
    TilePlan p = planGemmTiling(defaultConfig(), 4096, 4096, 2048);
    EXPECT_EQ(p.tileM, 64u);
    EXPECT_EQ(p.tileK, 256u);
    EXPECT_EQ(p.tileN, 32u);
    EXPECT_EQ(p.gridM, 64u);
    EXPECT_EQ(p.gridK, 16u);
    EXPECT_EQ(p.gridN, 64u);
    EXPECT_EQ(p.totalTiles(), 64u * 16u * 64u);
}

TEST(Tiling, SmallProblemClampsTiles)
{
    TilePlan p = planGemmTiling(defaultConfig(), 32, 100, 8);
    EXPECT_EQ(p.tileM, 32u);
    EXPECT_EQ(p.tileK, 100u);
    EXPECT_EQ(p.tileN, 8u);
    EXPECT_EQ(p.totalTiles(), 1u);
}

TEST(Tiling, StripeResidencyAtPaperShapes)
{
    // TM=64 x K=4096 INT8 stripe = 256 kB: fits the 768 kB weight SRAM
    // double-buffered; a 12288-wide stripe (Llama13B FFN) does not.
    TilePlan fits = planGemmTiling(defaultConfig(), 4096, 4096, 32);
    EXPECT_TRUE(fits.weightStripeResident);
    EXPECT_DOUBLE_EQ(fits.weightRereadFactor, 1.0);
    TilePlan spills = planGemmTiling(defaultConfig(), 5120, 13824, 4096);
    EXPECT_FALSE(spills.weightStripeResident);
    EXPECT_GT(spills.weightRereadFactor, 1.0);
}

TEST(Tiling, CompressionRestoresResidency)
{
    // BSTC compression shrinks the stripe back under the buffer limit.
    TilePlan raw = planGemmTiling(defaultConfig(), 64, 8192, 64, 1.0);
    TilePlan packed = planGemmTiling(defaultConfig(), 64, 8192, 64, 2.0);
    EXPECT_GT(raw.weightStripeBytes, packed.weightStripeBytes);
    EXPECT_LE(packed.weightRereadFactor, raw.weightRereadFactor);
}

TEST(Tiling, BadShapesFatal)
{
    EXPECT_THROW(planGemmTiling(defaultConfig(), 0, 4, 4),
                 std::runtime_error);
    EXPECT_THROW(planGemmTiling(defaultConfig(), 4, 4, 4, 0.0),
                 std::runtime_error);
}

TEST(Layout, BitSliceBeatsValueForPartialFetch)
{
    // Fetching 2 planes of an 8-bit weight: the bit-slice layout touches
    // 2/8 of the bytes; value layout touches everything (Fig 13 / the
    // bit-reorder discussion of Fig 5c).
    const McbpConfig &cfg = defaultConfig();
    LayoutCost bs = bitSliceLayoutFetch(cfg, 1024, 4096, 2);
    LayoutCost val = valueLayoutFetch(cfg, 1024, 4096, 2);
    EXPECT_EQ(bs.bytesTouched, 1024u * 4096u / 8u * 2u);
    EXPECT_EQ(val.bytesTouched, 1024u * 4096u);
    EXPECT_LT(bs.rowActivations, val.rowActivations);
    EXPECT_EQ(val.bytesTouched / bs.bytesTouched, 4u);
}

TEST(Layout, FullFetchEquivalent)
{
    // Fetching all 8 planes touches the same bytes either way.
    const McbpConfig &cfg = defaultConfig();
    LayoutCost bs = bitSliceLayoutFetch(cfg, 512, 512, 8);
    LayoutCost val = valueLayoutFetch(cfg, 512, 512, 8);
    EXPECT_EQ(bs.bytesTouched, val.bytesTouched);
}

TEST(Layout, BadPlaneCountFatal)
{
    EXPECT_THROW(bitSliceLayoutFetch(defaultConfig(), 4, 4, 0),
                 std::runtime_error);
    EXPECT_THROW(valueLayoutFetch(defaultConfig(), 4, 4, 9),
                 std::runtime_error);
}

TEST(LayerSim, EmptyStream)
{
    TilePipelineResult r = simulateTilePipeline({});
    EXPECT_EQ(r.totalCycles, 0.0);
    EXPECT_EQ(r.tiles, 0u);
}

TEST(LayerSim, SingleTileIsSerial)
{
    TilePipelineResult r = simulateUniformTiles({10, 5, 20}, 1);
    EXPECT_DOUBLE_EQ(r.totalCycles, 35.0);
    EXPECT_DOUBLE_EQ(r.serialCycles, 35.0);
    EXPECT_DOUBLE_EQ(r.overlapGain(), 1.0);
}

TEST(LayerSim, SteadyStateBoundByLongestStage)
{
    // Many uniform tiles: throughput approaches one tile per longest
    // stage; compute utilization approaches compute/longest.
    TilePipelineResult r = simulateUniformTiles({10, 5, 20}, 1000);
    EXPECT_NEAR(r.totalCycles, 20.0 * 1000.0, 40.0);
    EXPECT_NEAR(r.computeUtilization(), 1.0, 0.01);
    EXPECT_NEAR(r.loadUtilization(), 0.5, 0.01);
    EXPECT_NEAR(r.overlapGain(), 35.0 / 20.0, 0.01);
}

TEST(LayerSim, LoadBoundStream)
{
    TilePipelineResult r = simulateUniformTiles({30, 5, 10}, 500);
    EXPECT_NEAR(r.loadUtilization(), 1.0, 0.01);
    EXPECT_NEAR(r.computeUtilization(), 10.0 / 30.0, 0.01);
}

TEST(LayerSim, MixedTilesAccounting)
{
    std::vector<TileCosts> tiles = {{5, 5, 5}, {1, 10, 1}, {20, 1, 2}};
    TilePipelineResult r = simulateTilePipeline(tiles);
    EXPECT_DOUBLE_EQ(r.loadBusy, 26.0);
    EXPECT_DOUBLE_EQ(r.decodeBusy, 16.0);
    EXPECT_DOUBLE_EQ(r.computeBusy, 8.0);
    EXPECT_GE(r.totalCycles, 26.0);       // load path lower bound
    EXPECT_LE(r.totalCycles, r.serialCycles);
}

} // namespace
} // namespace mcbp::sim
