/** @file Unit tests for common/table and the formatting helpers. */
#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace mcbp {
namespace {

TEST(Table, PrintsHeaderAndRows)
{
    Table t({"A", "Bee"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("A"), std::string::npos);
    EXPECT_NE(s.find("Bee"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvFormat)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, ArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Format, Fmt)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Format, FmtPct)
{
    EXPECT_EQ(fmtPct(0.724), "72.4%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(Format, FmtX)
{
    EXPECT_EQ(fmtX(5.1, 1), "5.1x");
    EXPECT_EQ(fmtX(31.1, 1), "31.1x");
}

} // namespace
} // namespace mcbp
