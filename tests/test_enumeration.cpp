/** @file Unit tests for brcr/enumeration: the E x I x X factorization. */
#include <gtest/gtest.h>

#include "bitslice/sign_magnitude.hpp"
#include "brcr/enumeration.hpp"
#include "common/rng.hpp"
#include "model/synthetic.hpp"

namespace mcbp::brcr {
namespace {

/** The paper's Fig 4 LSB slice (4 rows x 5 cols). */
bitslice::BitPlane
fig4LsbPlane()
{
    const int bits[4][5] = {{0, 1, 0, 0, 1},
                            {0, 1, 0, 1, 1},
                            {1, 1, 1, 1, 1},
                            {1, 0, 1, 1, 0}};
    bitslice::BitPlane p(4, 5);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            p.set(r, c, bits[r][c] != 0);
    return p;
}

TEST(Enumeration, Fig4WorkedExample)
{
    // Fig 4(c): the LSB plane has repeated columns (col 0 == col 2,
    // col 1 == col 4): factorization finds 3 distinct patterns.
    bitslice::BitPlane p = fig4LsbPlane();
    GroupFactorization fact = factorizeGroup(p, 0, 4);
    EXPECT_EQ(fact.distinctCount(), 3u);
    EXPECT_EQ(fact.columnIndex[0], fact.columnIndex[2]);
    EXPECT_EQ(fact.columnIndex[1], fact.columnIndex[4]);
    EXPECT_NE(fact.columnIndex[0], fact.columnIndex[1]);

    // x = [x0..x4]; check Y = E (I X) equals the direct plane GEMV and
    // that the factorized path performs fewer additions (9 naive).
    std::vector<std::int8_t> x = {1, 2, 3, 4, 5};
    MavResult mav = mergeActivations(fact, x);
    ReconResult rec = reconstructOutputs(fact, mav);
    // Direct computation.
    for (std::size_t r = 0; r < 4; ++r) {
        std::int64_t y = 0;
        for (std::size_t c = 0; c < 5; ++c)
            if (p.get(r, c))
                y += x[c];
        EXPECT_EQ(rec.y[r], y);
    }
    // Fig 4(c): merging needs 2 adds, reconstruction 4 adds (vs 9 naive).
    EXPECT_EQ(mav.additions, 2u);
    EXPECT_EQ(rec.additions, 4u);
}

TEST(Enumeration, AllZeroGroup)
{
    bitslice::BitPlane p(4, 8);
    GroupFactorization fact = factorizeGroup(p, 0, 4);
    EXPECT_EQ(fact.distinctCount(), 0u);
    for (auto idx : fact.columnIndex)
        EXPECT_EQ(idx, -1);
    std::vector<std::int8_t> x(8, 1);
    MavResult mav = mergeActivations(fact, x);
    EXPECT_EQ(mav.additions, 0u);
    ReconResult rec = reconstructOutputs(fact, mav);
    for (auto y : rec.y)
        EXPECT_EQ(y, 0);
}

TEST(Enumeration, RandomMatchesDirect)
{
    Rng rng(7);
    for (int iter = 0; iter < 20; ++iter) {
        const std::size_t m = 1 + rng.uniformInt(6);
        const std::size_t cols = 8 + rng.uniformInt(120);
        bitslice::BitPlane p(m, cols);
        for (std::size_t r = 0; r < m; ++r)
            for (std::size_t c = 0; c < cols; ++c)
                p.set(r, c, rng.bernoulli(0.4));
        std::vector<std::int8_t> x(cols);
        for (auto &v : x)
            v = static_cast<std::int8_t>(
                static_cast<std::int64_t>(rng.uniformInt(255)) - 127);

        GroupFactorization fact = factorizeGroup(p, 0, m);
        ReconResult rec =
            reconstructOutputs(fact, mergeActivations(fact, x));
        for (std::size_t r = 0; r < m; ++r) {
            std::int64_t y = 0;
            for (std::size_t c = 0; c < cols; ++c)
                if (p.get(r, c))
                    y += x[c];
            EXPECT_EQ(rec.y[r], y) << "iter " << iter << " row " << r;
        }
    }
}

TEST(Enumeration, AdditionsNeverExceedNaive)
{
    Rng rng(8);
    for (int iter = 0; iter < 10; ++iter) {
        bitslice::BitPlane p(4, 256);
        std::uint64_t naive = 0;
        for (std::size_t r = 0; r < 4; ++r) {
            for (std::size_t c = 0; c < 256; ++c) {
                const bool b = rng.bernoulli(0.4);
                p.set(r, c, b);
                naive += b;
            }
        }
        std::vector<std::int8_t> x(256, 1);
        GroupFactorization fact = factorizeGroup(p, 0, 4);
        MavResult mav = mergeActivations(fact, x);
        ReconResult rec = reconstructOutputs(fact, mav);
        EXPECT_LE(mav.additions + rec.additions, naive);
    }
}

TEST(Enumeration, ScratchOverloadMatchesConvenience)
{
    // The allocation-free fast path (direct-index table + reused
    // output) must produce exactly the result of the convenience
    // overload, including pattern order, across consecutive groups
    // sharing one scratch.
    Rng rng(9);
    bitslice::BitPlane p(24, 160);
    for (std::size_t r = 0; r < 24; ++r)
        for (std::size_t c = 0; c < 160; ++c)
            p.set(r, c, rng.bernoulli(0.35));

    GroupScratch scratch;
    GroupFactorization fast;
    for (const std::size_t m : {1u, 3u, 4u, 6u}) {
        for (std::size_t row0 = 0; row0 < p.rows(); row0 += m) {
            factorizeGroup(p, row0, m, scratch, fast);
            const GroupFactorization ref = factorizeGroup(p, row0, m);
            EXPECT_EQ(fast.m, ref.m);
            EXPECT_EQ(fast.patterns, ref.patterns)
                << "m " << m << " row0 " << row0;
            EXPECT_EQ(fast.columnIndex, ref.columnIndex)
                << "m " << m << " row0 " << row0;
        }
    }
}

TEST(Enumeration, GoldenCountsOnSyntheticPlane)
{
    // Pinned from the original unordered_map implementation on plane 5
    // of a fixed synthetic INT8 tile: the direct-index rewrite must
    // reproduce every count and output exactly.
    Rng rng(18);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 1024, quant::BitWidth::Int8, profile);
    Rng xrng(19);
    std::vector<std::int8_t> x(1024);
    for (auto &v : x)
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(xrng.uniformInt(255)) - 127);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    const bitslice::BitPlane &plane = sm.magnitude[5];

    std::uint64_t distinct = 0, mav_adds = 0, recon_adds = 0;
    std::int64_t ysum = 0;
    GroupScratch scratch;
    GroupFactorization fact;
    for (std::size_t row0 = 0; row0 < plane.rows(); row0 += 4) {
        factorizeGroup(plane, row0, 4, scratch, fact);
        distinct += fact.distinctCount();
        const MavResult mav = mergeActivations(fact, x);
        mav_adds += mav.additions;
        const ReconResult rec = reconstructOutputs(fact, mav);
        recon_adds += rec.additions;
        for (const std::int64_t y : rec.y)
            ysum += y;
    }
    EXPECT_EQ(distinct, 82u);
    EXPECT_EQ(mav_adds, 4793u);
    EXPECT_EQ(recon_adds, 46u);
    EXPECT_EQ(ysum, 13563);
}

TEST(Enumeration, BadArgumentsFatal)
{
    bitslice::BitPlane p(4, 4);
    EXPECT_THROW(factorizeGroup(p, 0, 0), std::runtime_error);
    EXPECT_THROW(factorizeGroup(p, 8, 4), std::runtime_error);
    GroupFactorization fact = factorizeGroup(p, 0, 4);
    EXPECT_THROW(mergeActivations(fact, std::vector<std::int8_t>(3)),
                 std::runtime_error);
}

} // namespace
} // namespace mcbp::brcr
