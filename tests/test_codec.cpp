/** @file Unit + property tests for bstc/codec and plane_policy. */
#include <gtest/gtest.h>

#include <tuple>

#include "bstc/codec.hpp"
#include "bstc/plane_policy.hpp"
#include "common/rng.hpp"

namespace mcbp::bstc {
namespace {

bitslice::BitPlane
randomPlane(std::uint64_t seed, std::size_t rows, std::size_t cols,
            double density)
{
    Rng rng(seed);
    bitslice::BitPlane p(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            p.set(r, c, rng.bernoulli(density));
    return p;
}

TEST(Codec, WorkedExampleSymbols)
{
    // Section 3.2: {0000} -> {0} and {0001} -> {10001}.
    bitslice::BitPlane p(4, 2);
    p.set(0, 1, true); // column 1 pattern = 0001 (bit 0 = row 0)
    BitWriter w;
    CodecStats st = encodeGroup(p, 0, 4, w);
    EXPECT_EQ(st.zeroSymbols, 1u);
    EXPECT_EQ(st.nonZeroSymbols, 1u);
    EXPECT_EQ(w.bitCount(), 1u + 5u);
    BitReader r(w);
    auto cols = decodeColumns(r, 4, 2);
    EXPECT_EQ(cols[0], 0u);
    EXPECT_EQ(cols[1], 0b0001u);
}

// Round-trip property sweep over group size and density.
class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>>
{
};

TEST_P(CodecRoundTrip, PlaneRoundTripsLosslessly)
{
    const auto [m, density] = GetParam();
    bitslice::BitPlane p = randomPlane(
        m * 1000 + static_cast<std::uint64_t>(density * 100), 4 * m + 1,
        257, density);
    BitWriter w;
    encodePlane(p, m, w);
    BitReader r(w);
    bitslice::BitPlane q = decodePlane(r, m, p.rows(), p.cols());
    EXPECT_TRUE(p == q);
    EXPECT_EQ(r.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTrip,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 6u, 8u),
                       ::testing::Values(0.0, 0.05, 0.3, 0.7, 1.0)));

TEST(Codec, StatsCountSymbols)
{
    bitslice::BitPlane p = randomPlane(7, 8, 64, 0.2);
    BitWriter w;
    CodecStats enc = encodePlane(p, 4, w);
    EXPECT_EQ(enc.totalSymbols(), 2u * 64u); // two groups of 64 columns
    BitReader r(w);
    CodecStats dec;
    decodePlane(r, 4, 8, 64, &dec);
    EXPECT_EQ(dec.zeroSymbols, enc.zeroSymbols);
    EXPECT_EQ(dec.nonZeroSymbols, enc.nonZeroSymbols);
}

TEST(Codec, AnalyticCompressionRatio)
{
    // Section 3.2: BSTC pays off only above a sparsity break-even. For
    // i.i.d. plane bits the m=4 break-even sits near SR ~ 0.72 (real
    // planes with correlated zeros break even earlier, which is where
    // the paper's 65% figure comes from).
    EXPECT_GT(analyticCompressionRatio(0.75, 4), 1.0);
    EXPECT_LT(analyticCompressionRatio(0.65, 4), 1.0);
    EXPECT_LT(analyticCompressionRatio(0.55, 4), 1.0);
    // m=1 never exceeds 1 (every non-zero costs 2 bits for 1).
    for (double sr : {0.5, 0.7, 0.9, 0.99})
        EXPECT_LE(analyticCompressionRatio(sr, 1), 1.0 + 1e-12);
}

TEST(Codec, AnalyticPeaksNearM4AtHighSparsity)
{
    // Fig 8(b): for SR ~0.9 the CR peaks around m=4..5.
    const double sr = 0.9;
    double best = 0.0;
    std::size_t best_m = 0;
    for (std::size_t m = 1; m <= 10; ++m) {
        const double cr = analyticCompressionRatio(sr, m);
        if (cr > best) {
            best = cr;
            best_m = m;
        }
    }
    EXPECT_GE(best_m, 3u);
    EXPECT_LE(best_m, 6u);
    EXPECT_GT(best, 1.5);
}

TEST(Codec, MeasuredMatchesAnalyticOnIidPlanes)
{
    // On large i.i.d. planes the measured CR approaches the analytic CR.
    for (double sparsity : {0.7, 0.85, 0.95}) {
        bitslice::BitPlane p = randomPlane(
            static_cast<std::uint64_t>(sparsity * 1000), 64, 4096,
            1.0 - sparsity);
        const double measured = measuredCompressionRatio(p, 4);
        const double analytic = analyticCompressionRatio(sparsity, 4);
        EXPECT_NEAR(measured, analytic, analytic * 0.06)
            << "sparsity " << sparsity;
    }
}

TEST(Codec, DensePlaneExpands)
{
    bitslice::BitPlane p = randomPlane(9, 16, 512, 0.9);
    EXPECT_LT(measuredCompressionRatio(p, 4), 1.0);
}

TEST(Codec, EmptyPlaneCompressesToFlags)
{
    bitslice::BitPlane p(8, 256);
    BitWriter w;
    encodePlane(p, 4, w);
    EXPECT_EQ(w.bitCount(), 2u * 256u); // one '0' flag per group column
    EXPECT_DOUBLE_EQ(measuredCompressionRatio(p, 4), 4.0);
}

TEST(PlanePolicy, PaperDefaultInt8)
{
    PlanePolicy p = paperDefaultPolicy(7);
    ASSERT_EQ(p.compress.size(), 7u);
    EXPECT_FALSE(p.compress[0]); // plane 1
    EXPECT_FALSE(p.compress[1]); // plane 2
    for (std::size_t i = 2; i < 7; ++i)
        EXPECT_TRUE(p.compress[i]); // planes 3-7
    EXPECT_FALSE(p.compressSign);
    EXPECT_EQ(p.compressedCount(), 5u);
}

TEST(PlanePolicy, PaperDefaultInt4)
{
    PlanePolicy p = paperDefaultPolicy(3);
    ASSERT_EQ(p.compress.size(), 3u);
    EXPECT_FALSE(p.compress[0]);
    EXPECT_FALSE(p.compress[1]);
    EXPECT_TRUE(p.compress[2]);
}

TEST(PlanePolicy, AdaptiveThreshold)
{
    bitslice::SparsityReport rep;
    rep.planeSparsity = {0.4, 0.6, 0.66, 0.9};
    PlanePolicy p = adaptivePolicy(rep, 0.65);
    ASSERT_EQ(p.compress.size(), 4u);
    EXPECT_FALSE(p.compress[0]);
    EXPECT_FALSE(p.compress[1]);
    EXPECT_TRUE(p.compress[2]);
    EXPECT_TRUE(p.compress[3]);
}

TEST(PlanePolicy, AdaptiveRejectsBadThreshold)
{
    bitslice::SparsityReport rep;
    EXPECT_THROW(adaptivePolicy(rep, 0.0), std::runtime_error);
    EXPECT_THROW(adaptivePolicy(rep, 1.0), std::runtime_error);
}

} // namespace
} // namespace mcbp::bstc
