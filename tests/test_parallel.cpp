/** @file Unit tests for common/parallel: the deterministic thread pool. */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

namespace mcbp::parallel {
namespace {

/** Cheap per-index mixer (SplitMix64 finalizer). */
std::uint64_t
mix(std::uint64_t i)
{
    std::uint64_t z = i + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

TEST(Parallel, HardwareThreadsIsPositive)
{
    EXPECT_GE(hardwareThreads(), 1u);
}

TEST(Parallel, MapJoinsInIndexOrder)
{
    const std::size_t n = 1000;
    const std::vector<std::uint64_t> pooled =
        parallelMap<std::uint64_t>(n, [](std::size_t i) { return mix(i); });
    const std::vector<std::uint64_t> serial = parallelMap<std::uint64_t>(
        n, [](std::size_t i) { return mix(i); }, 1);
    ASSERT_EQ(pooled.size(), n);
    EXPECT_EQ(pooled, serial); // joined in index order, bit-identical.
}

TEST(Parallel, EveryIndexRunsExactlyOnce)
{
    const std::size_t n = 517;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, ZeroAndSingleElementEdges)
{
    std::atomic<int> calls{0};
    parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(Parallel, SerialCapRunsOnCallingThread)
{
    const std::thread::id self = std::this_thread::get_id();
    parallelFor(
        16, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), self); },
        1);
}

TEST(Parallel, LowestIndexExceptionWins)
{
    // Every iteration runs; the exception of the lowest throwing index
    // is rethrown regardless of which thread threw first.
    std::vector<std::atomic<int>> hits(64);
    try {
        parallelFor(64, [&](std::size_t i) {
            ++hits[i];
            if (i == 7 || i == 55)
                throw std::runtime_error("boom at " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom at 7");
    }
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, SerialPathMatchesExceptionContract)
{
    std::vector<std::atomic<int>> hits(8);
    EXPECT_THROW(parallelFor(
                     8,
                     [&](std::size_t i) {
                         ++hits[i];
                         if (i == 2)
                             throw std::runtime_error("serial boom");
                     },
                     1),
                 std::runtime_error);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, NestedParallelForCompletes)
{
    // A body that fans out again must not deadlock even when every
    // pool worker is busy with the outer batch: the inner submitter
    // drains its own batch. Results stay index-deterministic.
    const std::size_t outer = 8, inner = 32;
    std::vector<std::uint64_t> sums(outer, 0);
    parallelFor(outer, [&](std::size_t o) {
        const std::vector<std::uint64_t> part =
            parallelMap<std::uint64_t>(inner, [&](std::size_t i) {
                return mix(o * inner + i);
            });
        sums[o] = std::accumulate(part.begin(), part.end(),
                                  std::uint64_t{0});
    });
    for (std::size_t o = 0; o < outer; ++o) {
        std::uint64_t expect = 0;
        for (std::size_t i = 0; i < inner; ++i)
            expect += mix(o * inner + i);
        EXPECT_EQ(sums[o], expect) << "outer " << o;
    }
}

TEST(Parallel, ConcurrentExternalSubmitters)
{
    // Several plain std::threads submitting batches at once: the pool
    // must serve all of them without loss or deadlock.
    const std::size_t submitters = 4, n = 256;
    std::vector<std::uint64_t> totals(submitters, 0);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < submitters; ++t) {
        threads.emplace_back([&, t] {
            const std::vector<std::uint64_t> part =
                parallelMap<std::uint64_t>(
                    n, [&](std::size_t i) { return mix(t * n + i); });
            totals[t] = std::accumulate(part.begin(), part.end(),
                                        std::uint64_t{0});
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (std::size_t t = 0; t < submitters; ++t) {
        std::uint64_t expect = 0;
        for (std::size_t i = 0; i < n; ++i)
            expect += mix(t * n + i);
        EXPECT_EQ(totals[t], expect) << "submitter " << t;
    }
}

TEST(Parallel, ThreadCapIsRespected)
{
    // With a cap of 2, at most 2 threads may be inside bodies at once.
    std::atomic<int> inside{0};
    std::atomic<int> peak{0};
    parallelFor(
        64,
        [&](std::size_t) {
            const int now = ++inside;
            int seen = peak.load();
            while (now > seen && !peak.compare_exchange_weak(seen, now)) {
            }
            std::this_thread::yield();
            --inside;
        },
        2);
    EXPECT_LE(peak.load(), 2);
}

} // namespace
} // namespace mcbp::parallel
