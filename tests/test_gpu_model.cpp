/** @file Unit tests for accel/gpu_model: the A100 roofline and the
 *  software-on-GPU variants of Fig 21. */
#include <gtest/gtest.h>

#include "accel/gpu_model.hpp"

namespace mcbp::accel {
namespace {

const model::LlmConfig &llama() { return model::findModel("Llama7B"); }

TEST(GpuModel, Names)
{
    EXPECT_EQ(GpuA100Model().name(), "A100");
    EXPECT_EQ(GpuA100Model({}, {true, false, false}).name(), "A100+sw[R]");
    EXPECT_EQ(GpuA100Model({}, {true, true, true}).name(),
              "A100+sw[RCP]");
}

TEST(GpuModel, PrefillComputeBoundOnLongPrompts)
{
    GpuA100Model gpu;
    model::Workload w =
        model::withLengths(model::findTask("Dolly"), 32768, 8);
    RunMetrics r = gpu.run(llama(), w);
    EXPECT_GT(r.prefill.gemmCycles,
              r.prefill.weightLoadCycles + r.prefill.kvLoadCycles);
}

TEST(GpuModel, PrefillScalesWithPromptLength)
{
    GpuA100Model gpu;
    model::Workload s1 =
        model::withLengths(model::findTask("Wikitext2"), 1024, 16);
    model::Workload s4 =
        model::withLengths(model::findTask("Wikitext2"), 4096, 16);
    EXPECT_GT(gpu.run(llama(), s4).prefill.cycles,
              gpu.run(llama(), s1).prefill.cycles * 3.0);
}

TEST(GpuModel, DecodeTrafficAccountsWeightsPerToken)
{
    GpuA100Model gpu;
    const model::Workload &task = model::findTask("MBPP");
    RunMetrics r = gpu.run(llama(), task);
    // Every decode token re-reads the full weights.
    EXPECT_NEAR(r.decode.traffic.weightBytes,
                static_cast<double>(llama().weightBytes()) *
                    task.decodeLen,
                r.decode.traffic.weightBytes * 0.01);
}

TEST(GpuModel, BstcSoftwareCutsWeightTraffic)
{
    GpuA100Model plain;
    GpuA100Model with_c({}, {false, true, false});
    const model::Workload &task = model::findTask("MBPP");
    RunMetrics a = plain.run(llama(), task);
    RunMetrics b = with_c.run(llama(), task);
    EXPECT_LT(b.decode.traffic.weightBytes,
              a.decode.traffic.weightBytes);
    // But the decode-kernel inefficiency keeps the gain modest.
    EXPECT_LT(speedupVs(b, a), 1.6);
    EXPECT_GT(speedupVs(b, a), 1.0);
}

TEST(GpuModel, BgppSoftwareCutsKvTraffic)
{
    GpuA100Model plain;
    GpuA100Model with_p({}, {false, false, true});
    model::Workload long_ctx =
        model::withLengths(model::findTask("Dolly"), 16384, 256);
    RunMetrics a = plain.run(llama(), long_ctx);
    RunMetrics b = with_p.run(llama(), long_ctx);
    EXPECT_LT(b.decode.traffic.kvBytes, a.decode.traffic.kvBytes);
}

TEST(GpuModel, EnergyTracksTime)
{
    // Constant dynamic power: energy ratio equals time ratio.
    GpuA100Model gpu;
    RunMetrics a = gpu.run(llama(), model::findTask("Cola"));
    RunMetrics b = gpu.run(llama(), model::findTask("Dolly"));
    EXPECT_NEAR(b.joules() / a.joules(), b.seconds() / a.seconds(),
                0.01 * b.seconds() / a.seconds());
}

TEST(GpuModel, InvalidParamsFatal)
{
    GpuParams p;
    p.int8Tops = 0.0;
    EXPECT_THROW(GpuA100Model{p}, std::runtime_error);
}

} // namespace
} // namespace mcbp::accel
