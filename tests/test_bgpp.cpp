/** @file Unit + property tests for bgpp/bgpp_predictor. */
#include <gtest/gtest.h>

#include "bgpp/bgpp_predictor.hpp"
#include "bgpp/topk_baseline.hpp"
#include "common/rng.hpp"
#include "model/synthetic.hpp"

namespace mcbp::bgpp {
namespace {

model::AttentionSet
makeSet(std::uint64_t seed, std::size_t s = 256, std::size_t d = 64,
        double conc = 0.12)
{
    Rng rng(seed);
    return model::synthesizeAttention(rng, s, d, conc);
}

BgppPredictor
makePredictor(const model::AttentionSet &set, double alpha = 0.55,
              std::size_t rounds = 4)
{
    BgppConfig cfg;
    cfg.alpha = alpha;
    cfg.rounds = rounds;
    cfg.logitScale = set.logitScale;
    return BgppPredictor(cfg);
}

TEST(Bgpp, PrunesTrivialKeys)
{
    model::AttentionSet set = makeSet(1);
    BgppResult r = makePredictor(set).predict(set.query, set.keys);
    EXPECT_LT(r.selected.size(), set.keys.rows() / 2);
    EXPECT_GE(r.selected.size(), 1u);
}

TEST(Bgpp, HighRecallAgainstExactTopk)
{
    for (std::uint64_t seed = 2; seed < 7; ++seed) {
        model::AttentionSet set = makeSet(seed);
        BgppResult r = makePredictor(set).predict(set.query, set.keys);
        TopkResult truth =
            exactTopk(set.query, set.keys, r.selected.size());
        EXPECT_GT(recall(r.selected, truth.selected), 0.8)
            << "seed " << seed;
    }
}

TEST(Bgpp, FetchesFewerBitsThanValueTopk)
{
    // The headline claim of Fig 5(e)(g): early termination cuts K traffic
    // below the 4-bit value-level prediction.
    model::AttentionSet set = makeSet(8, 1024);
    BgppResult r = makePredictor(set).predict(set.query, set.keys);
    TopkResult value =
        valueTopk(set.query, set.keys, r.selected.size());
    EXPECT_LT(r.bitsFetched, value.bitsFetched);
}

TEST(Bgpp, SurvivorsMonotoneNonIncreasing)
{
    model::AttentionSet set = makeSet(9);
    BgppResult r = makePredictor(set).predict(set.query, set.keys);
    for (std::size_t i = 1; i < r.survivorsPerRound.size(); ++i)
        EXPECT_LE(r.survivorsPerRound[i], r.survivorsPerRound[i - 1]);
}

TEST(Bgpp, AlphaControlsPruning)
{
    // Smaller alpha -> tighter threshold -> more pruning (section 6).
    model::AttentionSet set = makeSet(10);
    BgppResult strict =
        makePredictor(set, 0.3).predict(set.query, set.keys);
    BgppResult loose =
        makePredictor(set, 0.9).predict(set.query, set.keys);
    EXPECT_LE(strict.selected.size(), loose.selected.size());
}

TEST(Bgpp, MoreRoundsMorePruning)
{
    model::AttentionSet set = makeSet(11);
    BgppResult r1 = makePredictor(set, 0.55, 1).predict(set.query, set.keys);
    BgppResult r4 = makePredictor(set, 0.55, 4).predict(set.query, set.keys);
    EXPECT_LE(r4.selected.size(), r1.selected.size());
}

TEST(Bgpp, UniformScoresClockGate)
{
    // Identical keys: no gap, threshold below min, nothing pruned.
    Int8Matrix keys(32, 8, 3);
    std::vector<std::int8_t> q(8, 2);
    BgppConfig cfg;
    cfg.logitScale = 1.0; // gap in raw score units
    BgppPredictor predictor(cfg);
    BgppResult r = predictor.predict(q, keys);
    EXPECT_EQ(r.selected.size(), 32u);
    EXPECT_EQ(r.clockGatedRounds, r.roundsRun);
}

TEST(Bgpp, MinKeepFloorRespected)
{
    model::AttentionSet set = makeSet(12);
    BgppConfig cfg;
    cfg.alpha = 0.01; // prune brutally
    cfg.logitScale = set.logitScale * 100.0; // tiny gap
    cfg.minKeep = 5;
    BgppPredictor predictor(cfg);
    BgppResult r = predictor.predict(set.query, set.keys);
    EXPECT_GE(r.selected.size(), 5u);
}

TEST(Bgpp, EstimatesMatchFullPrecisionAfterAllRounds)
{
    // With 7 rounds and no pruning (alpha=1, huge radius through a tiny
    // logit scale) the bit-serial estimate equals the exact dot product.
    model::AttentionSet set = makeSet(13, 64);
    BgppConfig cfg;
    cfg.rounds = 7;
    cfg.alpha = 1.0;
    cfg.logitScale = 1e-9;
    BgppPredictor predictor(cfg);
    BgppResult r = predictor.predict(set.query, set.keys);
    TopkResult truth = exactTopk(set.query, set.keys, 1);
    for (std::size_t j = 0; j < set.keys.rows(); ++j)
        EXPECT_EQ(r.estimates[j], truth.estimates[j]) << "key " << j;
}

TEST(Bgpp, TrafficAccountingFirstRound)
{
    // Round 1 fetches sign+MSB of every key: 2 bits per element.
    model::AttentionSet set = makeSet(14, 128, 32);
    BgppConfig cfg;
    cfg.rounds = 1;
    cfg.logitScale = set.logitScale;
    BgppPredictor predictor(cfg);
    BgppResult r = predictor.predict(set.query, set.keys);
    EXPECT_EQ(r.bitsFetched, 128u * 32u * 2u);
}

TEST(Bgpp, AttentionSparsityHelper)
{
    BgppResult r;
    r.selected = {1, 2, 3};
    EXPECT_DOUBLE_EQ(BgppPredictor::attentionSparsity(r, 12), 0.75);
    EXPECT_DOUBLE_EQ(BgppPredictor::attentionSparsity(r, 0), 0.0);
}

TEST(Bgpp, AlphaScheduleOverridesScalar)
{
    // A schedule of all-0.9 must behave like scalar 0.9, and a schedule
    // tightening over rounds must prune at least as hard.
    model::AttentionSet set = makeSet(15);
    BgppConfig flat;
    flat.alpha = 0.9;
    flat.logitScale = set.logitScale;
    BgppConfig sched = flat;
    sched.alphaSchedule = {0.9, 0.9, 0.9, 0.9};
    BgppResult a = BgppPredictor(flat).predict(set.query, set.keys);
    BgppResult b = BgppPredictor(sched).predict(set.query, set.keys);
    EXPECT_EQ(a.selected, b.selected);

    BgppConfig tight = flat;
    tight.alphaSchedule = {0.9, 0.6, 0.4, 0.3};
    BgppResult c = BgppPredictor(tight).predict(set.query, set.keys);
    EXPECT_LE(c.selected.size(), a.selected.size());
}

TEST(Bgpp, ShortScheduleClampsToLast)
{
    model::AttentionSet set = makeSet(16);
    BgppConfig one_entry;
    one_entry.alpha = 0.1; // must be ignored
    one_entry.alphaSchedule = {0.7};
    one_entry.logitScale = set.logitScale;
    BgppConfig scalar;
    scalar.alpha = 0.7;
    scalar.logitScale = set.logitScale;
    EXPECT_EQ(BgppPredictor(one_entry)
                  .predict(set.query, set.keys)
                  .selected,
              BgppPredictor(scalar).predict(set.query, set.keys).selected);
}

TEST(Bgpp, BadScheduleFatal)
{
    BgppConfig cfg;
    cfg.alphaSchedule = {0.5, 1.5};
    EXPECT_THROW(BgppPredictor{cfg}, std::runtime_error);
}

TEST(Bgpp, InvalidConfigFatal)
{
    BgppConfig cfg;
    cfg.rounds = 0;
    EXPECT_THROW(BgppPredictor{cfg}, std::runtime_error);
    cfg = {};
    cfg.rounds = 8;
    EXPECT_THROW(BgppPredictor{cfg}, std::runtime_error);
    cfg = {};
    cfg.alpha = -0.1;
    EXPECT_THROW(BgppPredictor{cfg}, std::runtime_error);
    cfg = {};
    cfg.radius = 0.0;
    EXPECT_THROW(BgppPredictor{cfg}, std::runtime_error);
    cfg = {};
    cfg.minKeep = 0;
    EXPECT_THROW(BgppPredictor{cfg}, std::runtime_error);
}

} // namespace
} // namespace mcbp::bgpp
