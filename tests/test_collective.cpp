/**
 * @file
 * Hierarchical collective invariants (sim/collective):
 *  - a single-tier topology prices bit-identically to the flat ring
 *    (Interconnect::allReduce) — the acceptance criterion that lets
 *    ClusterAccelerator route every tensor group through one model;
 *  - degenerate stacks (1 chip, 0 bytes, empty) are free;
 *  - a uniform two-tier split moves the same bytes as the flat ring
 *    (2(N-1)/N algebra composes) but pays strictly fewer hops;
 *  - a slower boundary tier strictly raises the cost;
 *  - the registry's tp2= grammar builds, plans, and is cheaper per
 *    decode step than the flat ring over the same chips, while the
 *    malformed tier specs are rejected by presence.
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "engine/registry.hpp"
#include "model/llm_config.hpp"
#include "sim/collective.hpp"

namespace mcbp::sim {
namespace {

constexpr double kClock = 1.5;

TEST(Collective, SingleTierDelegatesToFlatRingBitForBit)
{
    InterconnectConfig cfg;
    cfg.linkGBs = 450.0;
    cfg.pJPerBit = 7.0;
    cfg.hopCycles = 120.0;
    const Interconnect flat(cfg, kClock);
    for (std::size_t chips : {2u, 4u, 7u, 32u}) {
        for (double bytes : {1024.0, 333.5, 8.0 * 4096.0}) {
            const CollectiveTopology topo({{chips, cfg}}, kClock);
            const InterconnectCost h = topo.allReduce(bytes);
            const InterconnectCost f = flat.allReduce(bytes, chips);
            // Exact ==, not near: the single-effective-tier case must
            // delegate verbatim, associativity differences included.
            EXPECT_EQ(h.bandwidthCycles, f.bandwidthCycles)
                << chips << "x" << bytes;
            EXPECT_EQ(h.latencyCycles, f.latencyCycles);
            EXPECT_EQ(h.energyPj, f.energyPj);
        }
    }
}

TEST(Collective, DegenerateTopologiesAreFree)
{
    InterconnectConfig cfg;
    const CollectiveTopology one({{1, cfg}}, kClock);
    EXPECT_EQ(one.chips(), 1u);
    EXPECT_EQ(one.allReduce(4096.0).cycles(), 0.0);
    EXPECT_EQ(one.allReduce(4096.0).energyPj, 0.0);

    const CollectiveTopology empty({}, kClock);
    EXPECT_EQ(empty.chips(), 1u);
    EXPECT_EQ(empty.allReduce(4096.0).cycles(), 0.0);

    const CollectiveTopology real({{4, cfg}}, kClock);
    EXPECT_EQ(real.allReduce(0.0).cycles(), 0.0);
    EXPECT_EQ(real.allReduce(0.0).energyPj, 0.0);

    // Degree-1 tiers inside a stack are transparent: {4} == {4,1}.
    const CollectiveTopology padded({{4, cfg}, {1, cfg}}, kClock);
    EXPECT_EQ(padded.chips(), 4u);
    EXPECT_EQ(padded.allReduce(1024.0).bandwidthCycles,
              real.allReduce(1024.0).bandwidthCycles);
    EXPECT_EQ(padded.allReduce(1024.0).latencyCycles,
              real.allReduce(1024.0).latencyCycles);
    EXPECT_EQ(padded.allReduce(1024.0).energyPj,
              real.allReduce(1024.0).energyPj);
}

TEST(Collective, ChipsIsTheProductOfTierDegrees)
{
    InterconnectConfig cfg;
    const CollectiveTopology topo({{4, cfg}, {2, cfg}, {3, cfg}},
                                  kClock);
    EXPECT_EQ(topo.chips(), 24u);
}

TEST(Collective, UniformTwoTierMovesSameBytesOverFewerHops)
{
    // RS(4) + AR(2, B/4) + AG(4) moves (3/4 + 1/4 + 3/4)B = 7/4 B —
    // exactly the flat ring's 2*(8-1)/8 B — but over 6 + 2 = 8 hops
    // instead of 14. Same links: same serialization and energy to
    // rounding, strictly lower latency.
    InterconnectConfig cfg;
    const double bytes = 96.0 * 4096.0;
    const InterconnectCost flat =
        Interconnect(cfg, kClock).allReduce(bytes, 8);
    const InterconnectCost tree =
        CollectiveTopology({{4, cfg}, {2, cfg}}, kClock)
            .allReduce(bytes);
    EXPECT_NEAR(tree.bandwidthCycles, flat.bandwidthCycles,
                1e-12 * flat.bandwidthCycles);
    EXPECT_NEAR(tree.energyPj, flat.energyPj, 1e-12 * flat.energyPj);
    EXPECT_LT(tree.latencyCycles, flat.latencyCycles);
    EXPECT_EQ(tree.latencyCycles, 8.0 * cfg.hopCycles);
    EXPECT_EQ(flat.latencyCycles, 14.0 * cfg.hopCycles);
}

TEST(Collective, SlowerBoundaryTierStrictlyRaisesCost)
{
    InterconnectConfig fast;
    InterconnectConfig slow = fast;
    slow.linkGBs = fast.linkGBs / 4.0;
    slow.pJPerBit = fast.pJPerBit * 3.0;
    slow.hopCycles = fast.hopCycles * 4.0;
    const double bytes = 64.0 * 4096.0;
    const InterconnectCost uniform =
        CollectiveTopology({{4, fast}, {2, fast}}, kClock)
            .allReduce(bytes);
    const InterconnectCost tiered =
        CollectiveTopology({{4, fast}, {2, slow}}, kClock)
            .allReduce(bytes);
    EXPECT_GT(tiered.bandwidthCycles, uniform.bandwidthCycles);
    EXPECT_GT(tiered.latencyCycles, uniform.latencyCycles);
    EXPECT_GT(tiered.energyPj, uniform.energyPj);
    // ...yet the slow tier only ever sees the 1/4 shard: the penalty
    // is bounded by what a fully slow flat ring would pay.
    const InterconnectCost allSlow =
        Interconnect(slow, kClock).allReduce(bytes, 8);
    EXPECT_LT(tiered.bandwidthCycles, allSlow.bandwidthCycles);
}

TEST(Collective, ReduceScatterAndAllGatherMirror)
{
    InterconnectConfig cfg;
    const CollectiveTopology topo({{4, cfg}, {2, cfg}}, kClock);
    const double bytes = 12.0 * 4096.0;
    const InterconnectCost rs = topo.reduceScatter(bytes);
    const InterconnectCost ag = topo.allGather(bytes);
    EXPECT_EQ(rs.bandwidthCycles, ag.bandwidthCycles);
    EXPECT_EQ(rs.latencyCycles, ag.latencyCycles);
    EXPECT_EQ(rs.energyPj, ag.energyPj);
    // RS + outer-AR + AG never beats the composed all-reduce bound.
    EXPECT_LE(rs.cycles() + ag.cycles(),
              topo.allReduce(bytes).cycles() + 1e-9);
}

} // namespace
} // namespace mcbp::sim

namespace mcbp::engine {
namespace {

TEST(CollectiveRegistry, Tp2SpecBuildsPlansAndUndercutsFlatRing)
{
    Registry registry;
    auto tiered = registry.make("mcbp:procs=2,tp=4,tp2=2");
    auto flat = registry.make("mcbp:procs=2,tp=8");
    // 8 chips either way; capacity follows the chip count.
    EXPECT_EQ(tiered->capabilities().processors, 16u);
    EXPECT_EQ(tiered->capabilities().kvShards, 8u);
    EXPECT_EQ(flat->capabilities().kvShards, 8u);

    const model::LlmConfig &model = model::findModel("Llama7B");
    const model::Workload &task = model::findTask("MBPP");
    const accel::RunMetrics t = tiered->run(model, task);
    const accel::RunMetrics f = flat->run(model, task);
    EXPECT_EQ(t.processors, f.processors); // 8 chips either way
    // Identical shard work + identical link tech, fewer ring hops:
    // the hierarchical decode step is strictly cheaper.
    EXPECT_EQ(t.decode.denseMacs, f.decode.denseMacs);
    EXPECT_LT(t.decode.cycles, f.decode.cycles);
    EXPECT_LE(t.prefill.cycles, f.prefill.cycles);
}

TEST(CollectiveRegistry, TierTwoFabricKnobsPriceTheBoundary)
{
    Registry registry;
    // A 4x slower boundary link must cost decode cycles vs uniform.
    auto uniform = registry.make("mcbp:tp=4,tp2=2");
    auto slowed =
        registry.make("mcbp:tp=4,tp2=2,linkgbs2=75,hops2=400");
    const model::LlmConfig &model = model::findModel("Llama7B");
    const model::Workload &task = model::findTask("MBPP");
    EXPECT_GT(slowed->run(model, task).decode.cycles,
              uniform->run(model, task).decode.cycles);
    // The boundary fabric also exists for a pure pipeline: tier-2
    // knobs retarget the stage handoff links.
    EXPECT_NE(registry.make("mcbp-s:pp=2,linkgbs2=100"), nullptr);
}

TEST(CollectiveRegistry, MalformedTierSpecsAreRejectedByPresence)
{
    Registry registry;
    // tp2= without an inner tensor group (or at tp=1) is a no-op.
    EXPECT_THROW((void)registry.make("mcbp:tp2=2"), std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:tp=1,tp2=2"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:tp=4,tp2=0"),
                 std::runtime_error);
    // tp2=1 is the accepted flat identity, not an error.
    EXPECT_NE(registry.make("mcbp:tp=4,tp2=1"), nullptr);
    // Tier-2 link knobs need a boundary fabric to refine.
    EXPECT_THROW((void)registry.make("mcbp:tp=2,linkgbs2=600"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:hops2=100"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:tp=4,tp2=1,linkpj2=5"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:tp=4,tp2=2,linkgbs2=0"),
                 std::runtime_error);
}

} // namespace
} // namespace mcbp::engine
