/** @file Unit tests for bgpp/topk_baseline. */
#include <gtest/gtest.h>

#include "bgpp/topk_baseline.hpp"
#include "common/rng.hpp"
#include "model/synthetic.hpp"

namespace mcbp::bgpp {
namespace {

TEST(ExactTopk, PicksLargestScores)
{
    // Keys aligned/anti-aligned with a unit query.
    Int8Matrix keys(4, 2);
    keys.at(0, 0) = 10;
    keys.at(1, 0) = -10;
    keys.at(2, 0) = 50;
    keys.at(3, 0) = 1;
    std::vector<std::int8_t> q = {1, 0};
    TopkResult r = exactTopk(q, keys, 2);
    ASSERT_EQ(r.selected.size(), 2u);
    EXPECT_EQ(r.selected[0], 0u);
    EXPECT_EQ(r.selected[1], 2u);
    EXPECT_EQ(r.estimates[2], 50);
}

TEST(ExactTopk, KLargerThanSetKeepsAll)
{
    Int8Matrix keys(3, 2);
    std::vector<std::int8_t> q = {1, 1};
    TopkResult r = exactTopk(q, keys, 10);
    EXPECT_EQ(r.selected.size(), 3u);
}

TEST(ExactTopk, TrafficAccounting)
{
    Int8Matrix keys(16, 8);
    std::vector<std::int8_t> q(8, 1);
    TopkResult r = exactTopk(q, keys, 4);
    EXPECT_EQ(r.bitsFetched, 16u * 8u * 8u);
    EXPECT_EQ(r.macs, 16u * 8u);
}

TEST(ValueTopk, FourBitTraffic)
{
    Int8Matrix keys(16, 8);
    std::vector<std::int8_t> q(8, 1);
    TopkResult r = valueTopk(q, keys, 4, 4);
    EXPECT_EQ(r.bitsFetched, 16u * 8u * 5u); // 4 bits + sign
}

TEST(ValueTopk, EstimateUsesHighBits)
{
    // Keys distinguished only by low bits look identical to a 4-bit
    // estimator; keys distinguished by high bits do not.
    Int8Matrix keys(2, 1);
    keys.at(0, 0) = 0b01110000;
    keys.at(1, 0) = 0b01110111; // same top-4 magnitude bits
    std::vector<std::int8_t> q = {1};
    TopkResult r = valueTopk(q, keys, 1, 4);
    EXPECT_EQ(r.estimates[0], r.estimates[1]);
    keys.at(1, 0) = 0b00010111; // different high bits now
    r = valueTopk(q, keys, 1, 4);
    EXPECT_GT(r.estimates[0], r.estimates[1]);
}

TEST(ValueTopk, HighRecallOnSeparableSets)
{
    Rng rng(3);
    model::AttentionSet set = model::synthesizeAttention(rng, 256, 64, 0.1);
    TopkResult truth = exactTopk(set.query, set.keys, 26);
    TopkResult value = valueTopk(set.query, set.keys, 26);
    EXPECT_GT(recall(value.selected, truth.selected), 0.85);
}

TEST(ValueTopk, FullBitsEqualsExact)
{
    Rng rng(4);
    model::AttentionSet set = model::synthesizeAttention(rng, 128, 32, 0.2);
    TopkResult truth = exactTopk(set.query, set.keys, 16);
    TopkResult full = valueTopk(set.query, set.keys, 16, 8);
    EXPECT_EQ(full.selected, truth.selected);
}

TEST(Recall, Basics)
{
    EXPECT_DOUBLE_EQ(recall({1, 2, 3}, {1, 2, 3}), 1.0);
    EXPECT_DOUBLE_EQ(recall({1, 2}, {1, 2, 3, 4}), 0.5);
    EXPECT_DOUBLE_EQ(recall({}, {1}), 0.0);
    EXPECT_DOUBLE_EQ(recall({5, 6}, {}), 1.0);
    EXPECT_DOUBLE_EQ(recall({2, 4, 6}, {1, 3, 5}), 0.0);
}

TEST(Topk, BadShapesFatal)
{
    Int8Matrix keys(4, 8);
    std::vector<std::int8_t> q(7);
    EXPECT_THROW(exactTopk(q, keys, 2), std::runtime_error);
    EXPECT_THROW(valueTopk(q, keys, 2), std::runtime_error);
    std::vector<std::int8_t> q8(8);
    EXPECT_THROW(valueTopk(q8, keys, 2, 0), std::runtime_error);
    EXPECT_THROW(valueTopk(q8, keys, 2, 9), std::runtime_error);
}

} // namespace
} // namespace mcbp::bgpp
