/** @file Unit tests for common/bit_util. */
#include <gtest/gtest.h>

#include "common/bit_util.hpp"

namespace mcbp {
namespace {

TEST(BitUtil, Popcount)
{
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(1), 1);
    EXPECT_EQ(popcount64(0xff), 8);
    EXPECT_EQ(popcount64(~std::uint64_t{0}), 64);
    EXPECT_EQ(popcount64(0xa5a5a5a5a5a5a5a5ull), 32);
}

TEST(BitUtil, BitAt)
{
    EXPECT_EQ(bitAt(0b1010, 0), 0u);
    EXPECT_EQ(bitAt(0b1010, 1), 1u);
    EXPECT_EQ(bitAt(0b1010, 2), 0u);
    EXPECT_EQ(bitAt(0b1010, 3), 1u);
    EXPECT_EQ(bitAt(std::uint64_t{1} << 63, 63), 1u);
}

TEST(BitUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(8191, 64), 128u);
}

TEST(BitUtil, Pow2AndIpow)
{
    EXPECT_EQ(pow2(0), 1u);
    EXPECT_EQ(pow2(4), 16u);
    EXPECT_EQ(pow2(10), 1024u);
    EXPECT_EQ(ipow(3, 0), 1u);
    EXPECT_EQ(ipow(3, 4), 81u);
    EXPECT_EQ(ipow(2, 16), 65536u);
    EXPECT_EQ(ipow(10, 3), 1000u);
}

TEST(BitUtil, ToBinary)
{
    EXPECT_EQ(toBinary(0, 4), "0000");
    EXPECT_EQ(toBinary(5, 4), "0101");
    EXPECT_EQ(toBinary(9, 4), "1001");
    EXPECT_EQ(toBinary(0b1001, 2), "01"); // truncates to low bits
    EXPECT_EQ(toBinary(255, 8), "11111111");
}

TEST(BitUtil, Int8Magnitude)
{
    EXPECT_EQ(int8Magnitude(0), 0);
    EXPECT_EQ(int8Magnitude(5), 5);
    EXPECT_EQ(int8Magnitude(-5), 5);
    EXPECT_EQ(int8Magnitude(127), 127);
    EXPECT_EQ(int8Magnitude(-127), 127);
    // -128 clamps into the 7-bit magnitude domain.
    EXPECT_EQ(int8Magnitude(-128), 127);
}

} // namespace
} // namespace mcbp
