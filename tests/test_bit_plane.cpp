/** @file Unit tests for bitslice/bit_plane. */
#include <gtest/gtest.h>

#include <cstdint>

#include "bitslice/bit_plane.hpp"
#include "common/rng.hpp"

namespace mcbp::bitslice {
namespace {

TEST(BitPlane, StartsZero)
{
    BitPlane p(8, 100);
    EXPECT_EQ(p.countOnes(), 0u);
    EXPECT_DOUBLE_EQ(p.sparsity(), 1.0);
    EXPECT_FALSE(p.get(3, 99));
}

TEST(BitPlane, SetGetClear)
{
    BitPlane p(4, 70); // crosses the 64-bit word boundary
    p.set(2, 65, true);
    EXPECT_TRUE(p.get(2, 65));
    EXPECT_FALSE(p.get(2, 64));
    EXPECT_FALSE(p.get(1, 65));
    p.set(2, 65, false);
    EXPECT_FALSE(p.get(2, 65));
}

TEST(BitPlane, CountOnesAndRows)
{
    BitPlane p(3, 128);
    p.set(0, 0, true);
    p.set(0, 127, true);
    p.set(2, 64, true);
    EXPECT_EQ(p.countOnes(), 3u);
    EXPECT_EQ(p.countOnesInRow(0), 2u);
    EXPECT_EQ(p.countOnesInRow(1), 0u);
    EXPECT_EQ(p.countOnesInRow(2), 1u);
}

TEST(BitPlane, Sparsity)
{
    BitPlane p(2, 10);
    for (int c = 0; c < 5; ++c)
        p.set(0, c, true);
    EXPECT_DOUBLE_EQ(p.sparsity(), 0.75);
}

TEST(BitPlane, ColumnPattern)
{
    BitPlane p(8, 4);
    // Column 1: rows 0, 2, 3 of the group starting at row 0.
    p.set(0, 1, true);
    p.set(2, 1, true);
    p.set(3, 1, true);
    EXPECT_EQ(p.columnPattern(0, 4, 1), 0b1101u);
    EXPECT_EQ(p.columnPattern(0, 4, 0), 0u);
    // Group starting at row 2 sees rows 2..5: bits 0 and 1 set.
    EXPECT_EQ(p.columnPattern(2, 4, 1), 0b0011u);
}

TEST(BitPlane, ColumnPatternTailGroup)
{
    // Plane rows not divisible by m: the tail group zero-pads.
    BitPlane p(6, 2);
    p.set(4, 0, true);
    p.set(5, 0, true);
    EXPECT_EQ(p.columnPattern(4, 4, 0), 0b0011u);
}

TEST(BitPlane, ColumnPatternsMatchScalar)
{
    Rng rng(3);
    BitPlane p(12, 150);
    for (std::size_t r = 0; r < 12; ++r)
        for (std::size_t c = 0; c < 150; ++c)
            p.set(r, c, rng.bernoulli(0.3));
    std::vector<std::uint32_t> pats;
    for (std::size_t row0 = 0; row0 < 12; row0 += 4) {
        p.columnPatterns(row0, 4, pats);
        ASSERT_EQ(pats.size(), 150u);
        for (std::size_t c = 0; c < 150; ++c)
            EXPECT_EQ(pats[c], p.columnPattern(row0, 4, c));
    }
}

TEST(BitPlane, PatternsAtBlocksMatchScalar)
{
    Rng rng(9);
    BitPlane p(8, 200); // 4 words per row, last one partial (8 cols)
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 200; ++c)
            p.set(r, c, rng.bernoulli(0.1));
    std::uint32_t block[64];
    for (std::size_t row0 = 0; row0 < 8; row0 += 4) {
        for (std::size_t w = 0; w < 4; ++w) {
            const std::size_t width = p.patternsAt(row0, 4, w, block);
            ASSERT_EQ(width, w < 3 ? 64u : 8u);
            for (std::size_t c = 0; c < width; ++c)
                EXPECT_EQ(block[c],
                          p.columnPattern(row0, 4, (w << 6) + c));
        }
    }
}

TEST(BitPlane, PatternsAtZeroBlockFastPath)
{
    BitPlane p(4, 128);
    p.set(1, 100, true); // word 0 stays all-zero, word 1 does not.
    std::uint32_t block[64];
    ASSERT_EQ(p.patternsAt(0, 4, 0, block), 64u);
    for (std::size_t c = 0; c < 64; ++c)
        EXPECT_EQ(block[c], 0u);
    ASSERT_EQ(p.patternsAt(0, 4, 1, block), 64u);
    EXPECT_EQ(block[100 - 64], 2u); // row 1 -> bit 1 of the pattern.
}

TEST(BitPlane, Equality)
{
    BitPlane a(4, 4), b(4, 4);
    EXPECT_TRUE(a == b);
    b.set(1, 1, true);
    EXPECT_FALSE(a == b);
}

TEST(BitPlane, GroupSizeLimit)
{
    BitPlane p(32, 8);
    EXPECT_THROW(p.columnPattern(0, 17, 0), std::logic_error);
}

TEST(BitPlane, AlignedStrideContract)
{
    // 100 cols = 2 packed words, padded to a whole 64-byte line (8).
    BitPlane p(3, 100);
    EXPECT_EQ(p.wordsPerRow(), 2u);
    EXPECT_EQ(p.rowStride(), 8u);
    EXPECT_EQ(p.totalWords(), 3u * 8u);
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.rowData(r)) % 64,
                  0u)
            << "row " << r;
        EXPECT_EQ(p.rowData(r), p.data() + r * p.rowStride());
    }

    // Every bit at or beyond cols() stays zero: the tail word's high
    // columns and the whole stride padding.
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 100; ++c)
            p.set(r, c, true);
    EXPECT_EQ(p.countOnes(), 3u * 100u);
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_EQ(p.rowWord(r, 1) >> (100 - 64), 0u) << "tail cols";
        for (std::size_t w = p.wordsPerRow(); w < p.rowStride(); ++w)
            EXPECT_EQ(p.rowData(r)[w], 0u) << "stride pad word " << w;
    }

    // Clearing bits keeps the contract intact.
    p.set(1, 99, false);
    EXPECT_EQ(p.countOnes(), 3u * 100u - 1);
    EXPECT_EQ(p.countOnesInRow(1), 99u);
}

} // namespace
} // namespace mcbp::bitslice
