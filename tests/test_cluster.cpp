/**
 * @file
 * Cluster-composition and memory-bounded-serving invariants:
 *  - a tp=1 ClusterAccelerator is bit-identical to the bare adapter,
 *    down to the serving report;
 *  - tp=N monotonically reduces decode latency while total energy
 *    never drops below the single-chip run (the interconnect floor);
 *  - KV-capacity admission never exceeds the configured HBM bytes;
 *  - every scheduler policy conserves requests (no drops, no
 *    duplicates) and orders admissions the way it promises;
 *  - the registry's cluster spec grammar validates and builds.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>

#include "engine/cluster.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"
#include "model/llm_config.hpp"

namespace mcbp::engine {
namespace {

const model::LlmConfig &llama7b() { return model::findModel("Llama7B"); }

std::vector<model::Request>
denseTrace(std::size_t n = 24, const char *model = "Llama7B",
           std::uint64_t seed = 11)
{
    model::TraceConfig tc;
    tc.model = model;
    tc.task = "MBPP";
    tc.requests = n;
    tc.arrivalsPerSecond = 50.0; // dense enough that batches form.
    tc.seed = seed;
    return model::synthesizeTrace(tc);
}

void
expectPhaseIdentical(const accel::PhaseMetrics &a,
                     const accel::PhaseMetrics &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.weightStreamCycles, b.weightStreamCycles);
    EXPECT_EQ(a.linearWorkCycles, b.linearWorkCycles);
    EXPECT_EQ(a.memorySerialized, b.memorySerialized);
    EXPECT_EQ(a.fixedStepCycles, b.fixedStepCycles);
    EXPECT_EQ(a.traffic.total(), b.traffic.total());
    EXPECT_EQ(a.energy.totalPj(), b.energy.totalPj());
    EXPECT_EQ(a.energy.interconnectPj, b.energy.interconnectPj);
}

TEST(Cluster, Tp1IsBitIdenticalToBareAdapter)
{
    Registry registry;
    auto bare = registry.make("mcbp:procs=148");
    auto tp1 = registry.make("mcbp:procs=148,tp=1");
    EXPECT_EQ(tp1->name(), bare->name());

    const model::Workload &task = model::findTask("MBPP");
    const accel::RunMetrics a = bare->run(llama7b(), task);
    const accel::RunMetrics b = tp1->run(llama7b(), task);
    EXPECT_EQ(a.accelerator, b.accelerator);
    EXPECT_EQ(a.processors, b.processors);
    EXPECT_EQ(a.clockGhz, b.clockGhz);
    expectPhaseIdentical(a.prefill, b.prefill);
    expectPhaseIdentical(a.decode, b.decode);
}

TEST(Cluster, Tp1ServingReportIsBitForBit)
{
    Registry registry;
    auto bare = registry.make("mcbp");
    auto tp1 = registry.make("mcbp:tp=1");
    EXPECT_EQ(tp1->configSummary(), bare->configSummary());
    const auto trace = denseTrace();
    const ServingReport a = ServingSimulator(*bare, {8}).simulate(trace);
    const ServingReport b = ServingSimulator(*tp1, {8}).simulate(trace);

    EXPECT_EQ(a.accelerator, b.accelerator);
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.busySeconds, b.busySeconds);
    EXPECT_EQ(a.serialSeconds, b.serialSeconds);
    EXPECT_EQ(a.serialJoules, b.serialJoules);
    EXPECT_EQ(a.p99LatencySeconds, b.p99LatencySeconds);
    EXPECT_EQ(a.joulesPerToken, b.joulesPerToken);
    EXPECT_EQ(a.kvPeakBytes, b.kvPeakBytes);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].id, b.requests[i].id);
        EXPECT_EQ(a.requests[i].admissionSeconds,
                  b.requests[i].admissionSeconds);
        EXPECT_EQ(a.requests[i].firstTokenSeconds,
                  b.requests[i].firstTokenSeconds);
        EXPECT_EQ(a.requests[i].completionSeconds,
                  b.requests[i].completionSeconds);
        EXPECT_EQ(a.requests[i].joules, b.requests[i].joules);
    }
}

TEST(Cluster, TpScalingCutsDecodeLatencyAboveEnergyFloor)
{
    Registry registry;
    const model::Workload &task = model::findTask("MBPP");
    const accel::RunMetrics single =
        registry.make("mcbp")->run(llama7b(), task);

    double prev_decode = single.decode.cycles;
    for (std::size_t tp : {2u, 4u, 8u}) {
        auto cluster =
            registry.make("mcbp:tp=" + std::to_string(tp));
        const accel::RunMetrics rm = cluster->run(llama7b(), task);
        // Strictly lower decode latency per iteration as tp grows...
        EXPECT_LT(rm.decode.cycles, prev_decode) << "tp=" << tp;
        prev_decode = rm.decode.cycles;
        // ...with the interconnect accounted in cycles and energy...
        EXPECT_GT(rm.decode.energy.interconnectPj, 0.0) << "tp=" << tp;
        EXPECT_EQ(rm.processors, tp);
        // ...and total energy never below the single-chip run: the
        // same logical work plus the all-reduce floor.
        EXPECT_GE(rm.joules(), single.joules()) << "tp=" << tp;
        EXPECT_GT(rm.joules(), 0.0);
        // Logical work is conserved by sharding.
        EXPECT_EQ(rm.decode.denseMacs, single.decode.denseMacs);
    }
}

TEST(Cluster, BatchSharesTheAllReduceLatencyFloor)
{
    // Make the hop latency dominate every decode step: if the serving
    // re-composition wrongly multiplied the fixed collective latency
    // by the batch size, batching would show no gain at all here.
    Registry registry;
    auto cluster = registry.make("mcbp:tp=4,hops=200000");
    const accel::RunMetrics rm =
        cluster->run(llama7b(), model::findTask("MBPP"));
    EXPECT_GT(rm.decode.fixedStepCycles, 0.0);
    EXPECT_LE(rm.decode.fixedStepCycles, rm.decode.cycles);

    auto trace = denseTrace(8);
    for (auto &r : trace)
        r.arrivalSeconds = 0.0;
    const ServingReport r =
        ServingSimulator(*cluster, {8}).simulate(trace);
    // 8 requests decode together; the dominant per-step hop floor is
    // paid once per iteration, so batching still wins big.
    EXPECT_GT(r.batchingSpeedup(), 4.0);
}

TEST(Cluster, NestedClustersFlattenIntoCollectiveTiers)
{
    // Nesting used to be rejected; with hierarchical collectives the
    // outer cluster flattens the inner one into a tier stack and
    // prices the tree all-reduce over it (sim/collective). The gang
    // shards the base chip once by the total degree — never re-shards
    // an already-sharded plan.
    Registry registry;
    ClusterOptions outer;
    outer.tensorParallel = 2;
    ClusterAccelerator nested(registry.make("mcbp:procs=2,tp=2"), outer);
    EXPECT_EQ(nested.totalDegree(), 4u);
    ASSERT_EQ(nested.tiers().size(), 2u);
    EXPECT_EQ(nested.tiers()[0].degree, 2u); // innermost first
    EXPECT_EQ(nested.tiers()[1].degree, 2u);
    EXPECT_EQ(nested.capabilities().processors, 8u);
    EXPECT_EQ(nested.capabilities().kvShards, 4u);

    const accel::RunMetrics rm =
        nested.run(llama7b(), model::findTask("MBPP"));
    EXPECT_EQ(rm.processors, 8u); // 2 procs/chip x 4 chips
    EXPECT_GT(rm.decode.energy.interconnectPj, 0.0);
    // Same logical work as the flat tp=4 gang.
    const accel::RunMetrics flat =
        registry.make("mcbp:procs=2,tp=4")->run(llama7b(),
                                                model::findTask("MBPP"));
    EXPECT_EQ(rm.decode.denseMacs, flat.decode.denseMacs);
}

TEST(Cluster, TpMustDivideAttentionHeads)
{
    Registry registry;
    auto cluster = registry.make("mcbp:tp=5"); // Llama7B has 32 heads.
    EXPECT_THROW((void)cluster->run(llama7b(), model::findTask("MBPP")),
                 std::runtime_error);
}

TEST(Cluster, CapabilitiesScaleWithTp)
{
    Registry registry;
    auto bare = registry.make("mcbp:procs=2");
    auto tp4 = registry.make("mcbp:procs=2,tp=4");
    EXPECT_EQ(tp4->capabilities().processors, 8u);
    EXPECT_DOUBLE_EQ(tp4->capabilities().hbmCapacityBytes,
                     4.0 * bare->capabilities().hbmCapacityBytes);
    // The KV cache shards with the tp degree: per-shard capacity is
    // 1/N of the advertised fleet HBM.
    EXPECT_EQ(bare->capabilities().kvShards, 1u);
    EXPECT_EQ(tp4->capabilities().kvShards, 4u);
    EXPECT_NE(tp4->name(), bare->name());
    EXPECT_FALSE(tp4->configSummary().empty());
}

TEST(Cluster, RegistrySpecGrammarValidates)
{
    Registry registry;
    // Well-formed cluster specs (and fleets of them) build.
    for (const char *spec :
         {"mcbp:procs=148,tp=4", "a100:tp=8,linkgbs=600",
          "spatten:tp=2", "mcbp:tp=2,linkpj=5,hops=50",
          "mcbp:tp=2,linkpj=0,hops=0"}) // ideal fabric is expressible
        EXPECT_NE(registry.make(spec), nullptr) << spec;
    auto fleet = registry.fleet({"mcbp:tp=2", "mcbp:tp=4", "a100"});
    EXPECT_EQ(fleet.size(), 3u);
    // Malformed ones do not.
    EXPECT_THROW((void)registry.make("mcbp:tp=0"), std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:tp=2.5"), std::runtime_error);
    // Link knobs without tp= (or at tp=1, where no fabric exists) are
    // errors, not silent no-ops.
    EXPECT_THROW((void)registry.make("mcbp:linkgbs=600"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:tp=1,linkgbs=600"),
                 std::runtime_error);
    // Rejection is by presence, not value: the default 300 GB/s is
    // just as meaningless at tp=1.
    EXPECT_THROW((void)registry.make("mcbp:tp=1,linkgbs=300"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:tp=2,linkgbs=0"),
                 std::runtime_error);
}

// ---- Memory-bounded serving --------------------------------------------

TEST(KvAdmission, PeakNeverExceedsConfiguredCapacity)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    const auto trace = denseTrace();

    // Unbounded run: measure what the trace would like to hold.
    const ServingReport free_run =
        ServingSimulator(*accel, {16}).simulate(trace);
    ASSERT_GT(free_run.kvPeakBytes, 0.0);

    // Budget at a third of that peak: admission must respect it.
    ServingOptions opts;
    opts.maxBatch = 16;
    opts.kvCapacityBytes = free_run.kvPeakBytes / 3.0;
    const ServingReport bounded =
        ServingSimulator(*accel, opts).simulate(trace);
    EXPECT_LE(bounded.kvPeakBytes, opts.kvCapacityBytes);
    EXPECT_GT(bounded.kvUtilization, 0.0);
    EXPECT_LE(bounded.kvUtilization, 1.0);
    EXPECT_EQ(bounded.requests.size(), trace.size());
    // The bound costs queueing time, never correctness.
    EXPECT_GE(bounded.p99QueueSeconds, free_run.p99QueueSeconds);
    EXPECT_LT(bounded.peakBatch, free_run.peakBatch);
    for (const RequestMetrics &r : bounded.requests) {
        EXPECT_GE(r.admissionSeconds, r.arrivalSeconds - 1e-12);
        EXPECT_GT(r.kvBytes, 0.0);
    }
}

TEST(KvAdmission, RequestLargerThanBudgetIsFatal)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    ServingOptions opts;
    opts.kvCapacityBytes = 1.0; // one byte: nothing can ever fit.
    EXPECT_THROW(
        (void)ServingSimulator(*accel, opts).simulate(denseTrace(2)),
        std::runtime_error);
}

// ---- Scheduler policies ------------------------------------------------

void
expectConservesRequests(const ServingReport &r, std::size_t expected)
{
    ASSERT_EQ(r.requests.size(), expected);
    std::vector<bool> seen(expected, false);
    for (const RequestMetrics &m : r.requests) {
        ASSERT_LT(m.id, seen.size());
        EXPECT_FALSE(seen[m.id]) << "duplicate id " << m.id;
        seen[m.id] = true;
        EXPECT_GT(m.completionSeconds, m.arrivalSeconds);
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool b) { return b; }));
}

TEST(Schedulers, AllPoliciesConserveRequests)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    // Mixed-model trace with a KV bound: the hardest admission case.
    auto trace = denseTrace(12, "Llama7B", 11);
    auto other = denseTrace(12, "OPT1B3", 13);
    const std::size_t base = trace.size();
    for (auto &r : other) {
        r.id += base;
        trace.push_back(r);
    }
    for (SchedulerPolicy policy : allSchedulerPolicies()) {
        ServingOptions opts;
        opts.maxBatch = 8;
        opts.policy = policy;
        opts.kvCapacityBytes = 4e9;
        const ServingReport r =
            ServingSimulator(*accel, opts).simulate(trace);
        EXPECT_EQ(r.scheduler, toString(policy));
        expectConservesRequests(r, trace.size());
    }
}

TEST(Schedulers, ShortestPromptFirstAdmitsByPromptLength)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    auto trace = denseTrace(12);
    for (auto &r : trace)
        r.arrivalSeconds = 0.0; // everyone queued from the start.

    ServingOptions opts;
    opts.maxBatch = 1; // serialize admissions to observe the order.
    opts.policy = SchedulerPolicy::ShortestPromptFirst;
    const ServingReport r =
        ServingSimulator(*accel, opts).simulate(trace);

    std::map<std::size_t, std::size_t> prompt_of;
    for (const model::Request &req : trace)
        prompt_of[req.id] = req.promptLen;
    std::vector<RequestMetrics> by_admission = r.requests;
    std::stable_sort(by_admission.begin(), by_admission.end(),
                     [](const RequestMetrics &a, const RequestMetrics &b) {
                         return a.admissionSeconds < b.admissionSeconds;
                     });
    for (std::size_t i = 1; i < by_admission.size(); ++i)
        EXPECT_LE(prompt_of[by_admission[i - 1].id],
                  prompt_of[by_admission[i].id]);
}

TEST(Schedulers, MidBurstArrivalsAreVisibleToSjf)
{
    // B arrives while A's prefill is still being paid inside one
    // admission burst; shortest-prompt-first must see B before it
    // admits the longer C that was already queued.
    Registry registry;
    auto accel = registry.make("mcbp");
    std::vector<model::Request> trace(3);
    trace[0] = {0, 0.0, "Llama7B", "Dolly", 2048, 64};   // A: long
    trace[1] = {1, 1e-6, "Llama7B", "Dolly", 32, 64};    // B: shortest
    trace[2] = {2, 0.0, "Llama7B", "Dolly", 1024, 64};   // C: medium

    ServingOptions opts;
    opts.maxBatch = 3;
    opts.policy = SchedulerPolicy::ShortestPromptFirst;
    const ServingReport r =
        ServingSimulator(*accel, opts).simulate(trace);
    ASSERT_EQ(r.requests.size(), 3u);
    std::map<std::size_t, double> admission;
    for (const RequestMetrics &m : r.requests)
        admission[m.id] = m.admissionSeconds;
    // A (t=0 pick between A and C: A is... C) — at t=0 the queue holds
    // A and C, so SJF admits C first; its prefill outlasts B's 1 us
    // arrival, so the refreshed queue must order B before A.
    EXPECT_LT(admission[2], admission[1]);
    EXPECT_LT(admission[1], admission[0]);
}

TEST(Schedulers, SkipAheadOvertakesABlockedHead)
{
    // Two models, all at t=0: FIFO head-of-line blocking drains each
    // model's batch before switching; skip-ahead keeps the first
    // model's batch full by admitting around the other-model head.
    Registry registry;
    auto accel = registry.make("mcbp");
    const auto a = denseTrace(6, "Llama7B", 21);
    const auto b = denseTrace(6, "OPT1B3", 23);
    // Interleave the two models at t=0 so every other queue entry is a
    // model switch.
    std::vector<model::Request> trace;
    for (std::size_t i = 0; i < a.size(); ++i) {
        trace.push_back(a[i]);
        trace.push_back(b[i]);
        trace[trace.size() - 2].id = 2 * i;
        trace[trace.size() - 1].id = 2 * i + 1;
        trace[trace.size() - 2].arrivalSeconds = 0.0;
        trace[trace.size() - 1].arrivalSeconds = 0.0;
    }

    auto run = [&](SchedulerPolicy policy) {
        ServingOptions opts;
        opts.maxBatch = 6;
        opts.policy = policy;
        return ServingSimulator(*accel, opts).simulate(trace);
    };
    const ServingReport fifo = run(SchedulerPolicy::Fifo);
    const ServingReport skip = run(SchedulerPolicy::SkipAhead);
    expectConservesRequests(fifo, trace.size());
    expectConservesRequests(skip, trace.size());
    // FIFO blocks on the other-model head after each admission, so
    // batches stay shallow; skip-ahead fills them from further back.
    EXPECT_GT(skip.meanBatchOccupancy, fifo.meanBatchOccupancy);
    EXPECT_GE(fifo.peakBatch, 1u);
    EXPECT_GT(skip.peakBatch, fifo.peakBatch);
}

TEST(Schedulers, PolicyNamesRoundTrip)
{
    for (SchedulerPolicy p : allSchedulerPolicies())
        EXPECT_EQ(schedulerPolicyFromString(toString(p)), p);
    EXPECT_THROW((void)schedulerPolicyFromString("lifo"),
                 std::runtime_error);
}

} // namespace
} // namespace mcbp::engine
