/**
 * @file
 * Unit tests for the engine/ layer: adapter parity with the wrapped
 * accel/ classes (bit-identical RunMetrics), registry spec parsing and
 * profile sharing, and the continuous-batching serving invariants.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "accel/baselines.hpp"
#include "accel/gpu_model.hpp"
#include "accel/mcbp_accelerator.hpp"
#include "common/stats.hpp"
#include "engine/adapters.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"

namespace mcbp::engine {
namespace {

const model::LlmConfig &opt1b3() { return model::findModel("OPT1B3"); }

/** Bit-identical phase comparison (adapters must not change numbers). */
void
expectPhaseIdentical(const accel::PhaseMetrics &a,
                     const accel::PhaseMetrics &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.denseMacs, b.denseMacs);
    EXPECT_EQ(a.executedAdds, b.executedAdds);
    EXPECT_EQ(a.gemmCycles, b.gemmCycles);
    EXPECT_EQ(a.weightLoadCycles, b.weightLoadCycles);
    EXPECT_EQ(a.kvLoadCycles, b.kvLoadCycles);
    EXPECT_EQ(a.otherCycles, b.otherCycles);
    EXPECT_EQ(a.traffic.weightBytes, b.traffic.weightBytes);
    EXPECT_EQ(a.traffic.kvBytes, b.traffic.kvBytes);
    EXPECT_EQ(a.traffic.predictionBytes, b.traffic.predictionBytes);
    EXPECT_EQ(a.traffic.actBytes, b.traffic.actBytes);
    EXPECT_EQ(a.energy.totalPj(), b.energy.totalPj());
}

void
expectRunIdentical(const accel::RunMetrics &a, const accel::RunMetrics &b)
{
    EXPECT_EQ(a.accelerator, b.accelerator);
    EXPECT_EQ(a.clockGhz, b.clockGhz);
    EXPECT_EQ(a.processors, b.processors);
    expectPhaseIdentical(a.prefill, b.prefill);
    expectPhaseIdentical(a.decode, b.decode);
}

TEST(Adapters, McbpParity)
{
    const model::Workload &task = model::findTask("Cola");
    Registry registry;
    expectRunIdentical(registry.make("mcbp")->run(opt1b3(), task),
                       accel::makeMcbpStandard().run(opt1b3(), task));
    expectRunIdentical(
        registry.make("mcbp-aggressive")->run(opt1b3(), task),
        accel::makeMcbpAggressive().run(opt1b3(), task));
    expectRunIdentical(
        registry.make("mcbp-baseline")->run(opt1b3(), task),
        accel::makeMcbpBaseline().run(opt1b3(), task));
}

TEST(Adapters, BaselineParity)
{
    const model::Workload &task = model::findTask("Cola");
    Registry registry;
    auto adapted = registry.make("spatten");
    // Direct construction with the same profiling point (alpha 0.6,
    // seed 1) the registry defaults to.
    accel::AttentionStats as =
        accel::profileAttention(opt1b3(), task, 0.6, 1);
    accel::BaselineAccelerator direct(accel::makeSpatten(as));
    expectRunIdentical(adapted->run(opt1b3(), task),
                       direct.run(opt1b3(), task));
}

TEST(Adapters, GpuParity)
{
    const model::Workload &task = model::findTask("Cola");
    Registry registry;
    auto adapted = registry.make("a100");
    accel::GpuA100Model direct;
    expectRunIdentical(adapted->run(opt1b3(), task),
                       direct.run(opt1b3(), task));
}

TEST(Registry, KnownSpecsAllConstructible)
{
    Registry registry;
    for (const std::string &spec : Registry::knownSpecs()) {
        auto accel = registry.make(spec);
        ASSERT_NE(accel, nullptr) << spec;
        EXPECT_FALSE(accel->name().empty()) << spec;
        EXPECT_FALSE(accel->configSummary().empty()) << spec;
    }
}

TEST(Registry, SpecOptionsApply)
{
    Registry registry;
    auto ganged = registry.make("mcbp:procs=148");
    EXPECT_EQ(ganged->capabilities().processors, 148u);
    auto ablated = registry.make("mcbp:bgpp=0");
    EXPECT_EQ(ablated->name(), "MCBP[RC]");
    auto aggressive = registry.make("MCBP-Aggressive"); // case-insensitive
    EXPECT_EQ(aggressive->name(), "MCBP(A)");
    auto sw_gpu = registry.make("a100-sw");
    EXPECT_TRUE(sw_gpu->capabilities().weightTrafficOptimized);
}

TEST(Registry, RejectsUnknownSpecsAndOptions)
{
    Registry registry;
    EXPECT_THROW((void)registry.make("tpu-v5"), std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:warp=9"), std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:procs"), std::runtime_error);
    EXPECT_THROW((void)registry.make(""), std::runtime_error);
    // Options a design cannot react to are errors, not silent no-ops.
    EXPECT_THROW((void)registry.make("bitwave:alpha=0.5"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("systolic:seed=2"),
                 std::runtime_error);
    // Counts must be representable integers.
    EXPECT_THROW((void)registry.make("mcbp:procs=-4"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:procs=2.5"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:procs=1e30"),
                 std::runtime_error);
}

TEST(Registry, FleetSharesOneProfileCache)
{
    const model::Workload &task = model::findTask("Cola");
    Registry registry;
    auto fleet = registry.fleet({"mcbp", "fusekna", "a100"});
    for (const auto &accel : fleet)
        (void)accel->run(opt1b3(), task);
    // One weight profile + one attention profile serve the whole fleet.
    EXPECT_EQ(registry.profileCache()->size(), 2u);
}

TEST(Registry, ColdKeySingleflight)
{
    // 8 threads racing on one cold key must trigger exactly one
    // profiling computation (the singleflight contract): racers block
    // on the in-flight slot instead of redoing the work, and all see
    // the same cached object.
    accel::ProfileCache cache;
    const model::LlmConfig &m = opt1b3();
    constexpr std::size_t kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<const accel::WeightStats *> seen(kThreads, nullptr);
    for (std::size_t i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            seen[i] = &cache.weights(m, quant::BitWidth::Int8, 1);
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(cache.profileCalls(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    for (std::size_t i = 1; i < kThreads; ++i)
        EXPECT_EQ(seen[i], seen[0]); // one entry, stable reference.
}

TEST(Registry, WarmFleetProfilesEachKeyOnce)
{
    // Warming a fleet across (models x tasks), then running every
    // combination, must never profile a key twice: the parallel warm
    // fan-out and the demand path share the singleflight slots. The
    // fleet spans weight-profile, attention-profile and both-profile
    // designs.
    Registry registry;
    auto fleet = registry.fleet({"mcbp", "spatten", "fusekna", "a100"});
    const std::vector<std::string> models = {"OPT1B3", "Bloom1B7"};
    const std::vector<std::string> tasks = {"Cola", "MMLU"};
    registry.warmFleet(fleet, models, tasks);
    const std::uint64_t calls_after_warm =
        registry.profileCache()->profileCalls();
    EXPECT_EQ(calls_after_warm, registry.profileCache()->size());
    for (const auto &accel : fleet)
        for (const std::string &mn : models)
            for (const std::string &tn : tasks)
                (void)accel->run(model::findModel(mn),
                                 model::findTask(tn));
    // Every run() hit warm cache: no new profiling happened.
    EXPECT_EQ(registry.profileCache()->profileCalls(), calls_after_warm);
}

TEST(Registry, ProfileCacheIsThreadSafe)
{
    // Concurrent serving simulation hits the shared profile cache from
    // many threads; results must match a single-threaded run.
    Registry registry;
    auto accel = registry.make("mcbp");
    const model::Workload &task = model::findTask("Cola");
    const accel::RunMetrics expect = accel->run(opt1b3(), task);

    Registry fresh; // un-profiled cache, so threads race on the fill.
    auto shared = fresh.make("mcbp");
    std::vector<std::thread> threads;
    std::vector<accel::RunMetrics> results(4);
    for (std::size_t i = 0; i < results.size(); ++i) {
        threads.emplace_back([&, i] {
            results[i] = shared->run(opt1b3(), task);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (const accel::RunMetrics &r : results)
        expectRunIdentical(r, expect);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 100.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 50.5);
    EXPECT_DOUBLE_EQ(percentile({42.0}, 0.9), 42.0);
    EXPECT_THROW((void)percentile({}, 0.5), std::runtime_error);
}

TEST(Trace, SynthesizerProducesSortedJitteredTrace)
{
    model::TraceConfig tc;
    tc.model = "OPT1B3";
    tc.task = "Cola";
    tc.requests = 32;
    tc.arrivalsPerSecond = 20.0;
    tc.seed = 3;
    auto trace = model::synthesizeTrace(tc);
    ASSERT_EQ(trace.size(), 32u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].arrivalSeconds, trace[i - 1].arrivalSeconds);
    for (const auto &r : trace) {
        EXPECT_GE(r.promptLen, 1u);
        EXPECT_GE(r.decodeLen, 1u);
        EXPECT_EQ(r.workload().batch, 1u);
    }
    // Deterministic for a fixed seed.
    auto again = model::synthesizeTrace(tc);
    EXPECT_EQ(again[7].promptLen, trace[7].promptLen);
    EXPECT_EQ(again[7].arrivalSeconds, trace[7].arrivalSeconds);
}

std::vector<model::Request>
smallTrace(std::size_t n = 32)
{
    model::TraceConfig tc;
    tc.model = "OPT1B3";
    tc.task = "Cola";
    tc.requests = n;
    tc.arrivalsPerSecond = 100.0; // dense enough that batches form.
    tc.seed = 11;
    return model::synthesizeTrace(tc);
}

TEST(Serving, EveryRequestCompletesMonotonically)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    ServingSimulator sim(*accel, {8});
    const auto trace = smallTrace();
    const ServingReport r = sim.simulate(trace);

    ASSERT_EQ(r.requests.size(), trace.size());
    std::vector<bool> seen(trace.size(), false);
    double prev_completion = 0.0;
    for (const RequestMetrics &m : r.requests) {
        ASSERT_LT(m.id, seen.size());
        EXPECT_FALSE(seen[m.id]);
        seen[m.id] = true;
        EXPECT_GT(m.completionSeconds, m.arrivalSeconds);
        EXPECT_LE(m.firstTokenSeconds, m.completionSeconds);
        // Completion order is time-monotone.
        EXPECT_GE(m.completionSeconds, prev_completion);
        prev_completion = m.completionSeconds;
    }
    EXPECT_GT(r.tokensPerSecond, 0.0);
    EXPECT_GT(r.joulesPerToken, 0.0);
    EXPECT_LE(r.p50LatencySeconds, r.p90LatencySeconds);
    EXPECT_LE(r.p90LatencySeconds, r.p99LatencySeconds);
    EXPECT_LE(r.p50FirstTokenSeconds, r.p90FirstTokenSeconds);
    EXPECT_LE(r.p90FirstTokenSeconds, r.p99FirstTokenSeconds);
    // TTFT sits between queueing and full latency at every percentile.
    EXPECT_GE(r.p50FirstTokenSeconds, r.p50QueueSeconds);
    EXPECT_LE(r.p99FirstTokenSeconds, r.p99LatencySeconds);
    EXPECT_GT(r.meanTpotSeconds, 0.0);
    EXPECT_LE(static_cast<double>(r.peakBatch), 8.0);
}

TEST(Serving, TtftAndTpotAggregatesMatchPerRequestMetrics)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    ServingSimulator sim(*accel, {8});
    const ServingReport r = sim.simulate(smallTrace());

    std::vector<double> ttft;
    double tpot_sum = 0.0;
    std::size_t tpot_n = 0;
    for (const RequestMetrics &m : r.requests) {
        EXPECT_GE(m.firstTokenSeconds, m.arrivalSeconds);
        ttft.push_back(m.firstTokenSeconds - m.arrivalSeconds);
        if (m.decodeTokens > 1) {
            tpot_sum += (m.completionSeconds - m.firstTokenSeconds) /
                        static_cast<double>(m.decodeTokens - 1);
            ++tpot_n;
        }
    }
    std::sort(ttft.begin(), ttft.end());
    EXPECT_EQ(r.p50FirstTokenSeconds, percentileSorted(ttft, 0.50));
    EXPECT_EQ(r.p90FirstTokenSeconds, percentileSorted(ttft, 0.90));
    EXPECT_EQ(r.p99FirstTokenSeconds, percentileSorted(ttft, 0.99));
    ASSERT_GT(tpot_n, 0u);
    EXPECT_EQ(r.meanTpotSeconds,
              tpot_sum / static_cast<double>(tpot_n));

    // A pure-prefill request contributes its completion as TTFT and
    // never contributes a TPOT sample.
    auto trace = smallTrace(4);
    for (auto &req : trace)
        req.decodeLen = 0;
    const ServingReport prefill_only = sim.simulate(trace);
    EXPECT_EQ(prefill_only.meanTpotSeconds, 0.0);
    EXPECT_GT(prefill_only.p50FirstTokenSeconds, 0.0);
}

TEST(Serving, BatchedBusyTimeNeverExceedsSerialSum)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    const auto trace = smallTrace();
    for (std::size_t max_batch : {1u, 4u, 16u}) {
        ServingSimulator sim(*accel, {max_batch});
        const ServingReport r = sim.simulate(trace);
        EXPECT_LE(r.busySeconds, r.serialSeconds * (1.0 + 1e-9))
            << "maxBatch=" << max_batch;
    }
    // maxBatch=1 degenerates to serial execution exactly.
    ServingSimulator serial_sim(*accel, {1});
    const ServingReport serial = serial_sim.simulate(trace);
    EXPECT_NEAR(serial.busySeconds, serial.serialSeconds,
                serial.serialSeconds * 1e-9);
    // A real batch must not be slower than serial.
    ServingSimulator batched_sim(*accel, {16});
    const ServingReport batched = batched_sim.simulate(trace);
    EXPECT_LE(batched.busySeconds, serial.busySeconds * (1.0 + 1e-9));
    EXPECT_GT(batched.meanBatchOccupancy, 1.0);

    // Energy mirrors the cycle model: the shared weight stream is
    // amortized, so batched J/token never exceeds the serial run's and
    // strictly improves once requests actually share iterations.
    auto total_joules = [](const ServingReport &r) {
        double j = 0.0;
        for (const RequestMetrics &m : r.requests)
            j += m.joules;
        return j;
    };
    EXPECT_NEAR(total_joules(serial), serial.serialJoules,
                serial.serialJoules * 1e-9);
    EXPECT_LE(total_joules(batched),
              batched.serialJoules * (1.0 + 1e-9));
    EXPECT_LT(batched.joulesPerToken, serial.joulesPerToken);
}

TEST(Serving, SerializedMemoryModelsDecomposeExactly)
{
    // The A100 roofline composes its linear segment additively
    // (weight stream + per-request memory/compute), unlike the
    // pipelined MCBP max-composition; the scheduler must invert each
    // correctly, which shows as exact busy == serial at maxBatch 1.
    Registry registry;
    auto gpu = registry.make("a100");
    const auto trace = smallTrace(8);
    ServingSimulator serial_sim(*gpu, {1});
    const ServingReport serial = serial_sim.simulate(trace);
    EXPECT_NEAR(serial.busySeconds, serial.serialSeconds,
                serial.serialSeconds * 1e-9);
    ServingSimulator batched_sim(*gpu, {8});
    const ServingReport batched = batched_sim.simulate(trace);
    EXPECT_LE(batched.busySeconds, serial.busySeconds * (1.0 + 1e-9));
}

TEST(Serving, ZeroDecodeRequestsFinishAtPrefill)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    auto trace = smallTrace(4);
    trace[2].decodeLen = 0; // pure-prefill (classification) request.
    ServingSimulator sim(*accel, {4});
    const ServingReport r = sim.simulate(trace);
    ASSERT_EQ(r.requests.size(), 4u);
    for (const RequestMetrics &m : r.requests) {
        if (m.id == 2) {
            EXPECT_EQ(m.decodeTokens, 0u);
        }
        EXPECT_GT(m.completionSeconds, m.arrivalSeconds);
    }
}

TEST(Serving, MixedModelTracesNeverShareABatch)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    // 4 OPT1B3 + 4 Bloom1B7 requests, all at t=0 with room for 8: if
    // models could co-batch, occupancy would reach 8; the per-model
    // barrier caps it at each model's own 4.
    auto trace = smallTrace(4);
    model::TraceConfig tc;
    tc.model = "Bloom1B7";
    tc.task = "Cola";
    tc.requests = 4;
    tc.arrivalsPerSecond = 100.0;
    tc.seed = 13;
    auto other = model::synthesizeTrace(tc);
    for (auto &r : other) {
        r.id += trace.size();
        trace.push_back(r);
    }
    for (auto &r : trace)
        r.arrivalSeconds = 0.0;
    ServingSimulator sim(*accel, {8});
    const ServingReport r = sim.simulate(trace);
    ASSERT_EQ(r.requests.size(), 8u);
    EXPECT_LE(r.peakBatch, 4u);
    EXPECT_EQ(r.peakBatch, 4u); // ...but each model does fill its 4.
    EXPECT_LE(r.busySeconds, r.serialSeconds * (1.0 + 1e-9));
}

TEST(Registry, CapabilitiesAgreeWithSimulatedTraits)
{
    // The Table 1 capability flags and the traits that actually drive
    // the simulation must never drift apart.
    const model::Workload &task = model::findTask("Cola");
    Registry registry;
    for (const std::string spec :
         {"systolic", "sanger", "spatten", "fact", "sofa", "energon",
          "bitwave", "fusekna", "cambricon-c"}) {
        auto accel = registry.make(spec);
        const auto *adapter =
            dynamic_cast<const BaselineAdapter *>(accel.get());
        ASSERT_NE(adapter, nullptr) << spec;
        const accel::BaselineTraits traits =
            adapter->traitsFor(opt1b3(), task);
        EXPECT_EQ(adapter->capabilities().decodeOptimized,
                  traits.decodeOptimized)
            << spec;
    }
}

} // namespace
} // namespace mcbp::engine
