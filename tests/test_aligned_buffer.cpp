/** @file Unit tests for common/AlignedBuffer. */
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/aligned_buffer.hpp"

namespace mcbp::common {
namespace {

TEST(AlignedBuffer, AlignmentAndLinePadding)
{
    AlignedBuffer<std::uint64_t> buf(5);
    EXPECT_EQ(buf.size(), 5u);
    // Padded to a whole 64-byte line (8 u64 words) and 64B-aligned.
    EXPECT_EQ(buf.padded(), 8u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
}

TEST(AlignedBuffer, ZeroInitializedIncludingPadding)
{
    AlignedBuffer<std::uint64_t> buf(9);
    for (std::size_t i = 0; i < buf.padded(); ++i)
        EXPECT_EQ(buf.data()[i], 0u) << "word " << i;
}

TEST(AlignedBuffer, ResizePreservesAndZeroPads)
{
    AlignedBuffer<std::uint64_t> buf(3);
    buf[0] = 11;
    buf[1] = 22;
    buf[2] = 33;
    buf.resize(20);
    EXPECT_EQ(buf.size(), 20u);
    EXPECT_EQ(buf[0], 11u);
    EXPECT_EQ(buf[1], 22u);
    EXPECT_EQ(buf[2], 33u);
    for (std::size_t i = 3; i < buf.padded(); ++i)
        EXPECT_EQ(buf.data()[i], 0u) << "word " << i;

    // Shrinking re-zeroes the released tail (the invariant BitWriter's
    // putZeroBits depends on after takeWords + reuse).
    buf[19] = 99;
    buf.resize(4);
    buf.resize(20);
    EXPECT_EQ(buf[19], 0u);
}

TEST(AlignedBuffer, CopyAndMoveAndEquality)
{
    AlignedBuffer<std::uint32_t> a(10);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<std::uint32_t>(i * 7);
    AlignedBuffer<std::uint32_t> b = a;
    EXPECT_TRUE(a == b);
    b[3] ^= 1;
    EXPECT_FALSE(a == b);

    AlignedBuffer<std::uint32_t> c = std::move(b);
    EXPECT_EQ(c.size(), 10u);
    EXPECT_EQ(c[3], (3u * 7) ^ 1u);

    AlignedBuffer<std::uint32_t> empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.size(), 0u);
    AlignedBuffer<std::uint32_t> empty2(0);
    EXPECT_TRUE(empty == empty2);
}

TEST(AlignedBuffer, IterationCoversExactlySize)
{
    AlignedBuffer<std::uint64_t> buf(6);
    std::size_t n = 0;
    for (std::uint64_t v : buf) {
        EXPECT_EQ(v, 0u);
        ++n;
    }
    EXPECT_EQ(n, 6u);
}

} // namespace
} // namespace mcbp::common
