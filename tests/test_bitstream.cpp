/** @file Unit tests for bstc/bitstream. */
#include <gtest/gtest.h>

#include "bstc/bitstream.hpp"
#include "common/rng.hpp"

namespace mcbp::bstc {
namespace {

TEST(BitStream, SingleBits)
{
    BitWriter w;
    w.putBit(true);
    w.putBit(false);
    w.putBit(true);
    EXPECT_EQ(w.bitCount(), 3u);
    BitReader r(w.bytes(), w.bitCount());
    EXPECT_TRUE(r.getBit());
    EXPECT_FALSE(r.getBit());
    EXPECT_TRUE(r.getBit());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitStream, MultiBitRoundTrip)
{
    BitWriter w;
    w.putBits(0b1011, 4);
    w.putBits(0x5a, 8);
    w.putBits(0x12345, 20);
    BitReader r(w.bytes(), w.bitCount());
    EXPECT_EQ(r.getBits(4), 0b1011u);
    EXPECT_EQ(r.getBits(8), 0x5au);
    EXPECT_EQ(r.getBits(20), 0x12345u);
}

TEST(BitStream, RandomRoundTrip)
{
    Rng rng(1);
    BitWriter w;
    std::vector<std::pair<std::uint32_t, unsigned>> items;
    for (int i = 0; i < 500; ++i) {
        const unsigned n = 1 + static_cast<unsigned>(rng.uniformInt(24));
        const std::uint32_t v =
            static_cast<std::uint32_t>(rng.uniformInt(1u << n));
        items.emplace_back(v, n);
        w.putBits(v, n);
    }
    BitReader r(w.bytes(), w.bitCount());
    for (const auto &[v, n] : items)
        EXPECT_EQ(r.getBits(n), v);
}

TEST(BitStream, SeekAndPosition)
{
    BitWriter w;
    w.putBits(0xff, 8);
    w.putBits(0x0, 8);
    w.putBits(0xab, 8);
    BitReader r(w.bytes(), w.bitCount());
    r.seek(16);
    EXPECT_EQ(r.position(), 16u);
    EXPECT_EQ(r.getBits(8), 0xabu);
    r.seek(0);
    EXPECT_EQ(r.getBits(8), 0xffu);
}

TEST(BitStream, ExhaustionPanics)
{
    BitWriter w;
    w.putBit(true);
    BitReader r(w.bytes(), w.bitCount());
    r.getBit();
    EXPECT_THROW(r.getBit(), std::logic_error);
}

TEST(BitStream, SeekPastEndPanics)
{
    BitWriter w;
    w.putBits(0xf, 4);
    BitReader r(w.bytes(), w.bitCount());
    EXPECT_THROW(r.seek(5), std::logic_error);
}

TEST(BitStream, WidthLimitPanics)
{
    BitWriter w;
    EXPECT_THROW(w.putBits(0, 33), std::logic_error);
    w.putBits(0, 32);
    BitReader r(w.bytes(), w.bitCount());
    EXPECT_THROW(r.getBits(33), std::logic_error);
}

TEST(BitStream, PaddingIsZero)
{
    BitWriter w;
    w.putBit(true);
    ASSERT_EQ(w.bytes().size(), 1u);
    EXPECT_EQ(w.bytes()[0], 0x01);
}

} // namespace
} // namespace mcbp::bstc
