/** @file Unit tests for bstc/bitstream. */
#include <gtest/gtest.h>

#include "bstc/bitstream.hpp"
#include "common/rng.hpp"

namespace mcbp::bstc {
namespace {

TEST(BitStream, SingleBits)
{
    BitWriter w;
    w.putBit(true);
    w.putBit(false);
    w.putBit(true);
    EXPECT_EQ(w.bitCount(), 3u);
    BitReader r(w);
    EXPECT_TRUE(r.getBit());
    EXPECT_FALSE(r.getBit());
    EXPECT_TRUE(r.getBit());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitStream, MultiBitRoundTrip)
{
    BitWriter w;
    w.putBits(0b1011, 4);
    w.putBits(0x5a, 8);
    w.putBits(0x12345, 20);
    BitReader r(w);
    EXPECT_EQ(r.getBits(4), 0b1011u);
    EXPECT_EQ(r.getBits(8), 0x5au);
    EXPECT_EQ(r.getBits(20), 0x12345u);
}

TEST(BitStream, RandomRoundTrip)
{
    Rng rng(1);
    BitWriter w;
    std::vector<std::pair<std::uint32_t, unsigned>> items;
    for (int i = 0; i < 500; ++i) {
        const unsigned n = 1 + static_cast<unsigned>(rng.uniformInt(24));
        const std::uint32_t v =
            static_cast<std::uint32_t>(rng.uniformInt(1u << n));
        items.emplace_back(v, n);
        w.putBits(v, n);
    }
    BitReader r(w);
    for (const auto &[v, n] : items)
        EXPECT_EQ(r.getBits(n), v);
}

TEST(BitStream, SeekAndPosition)
{
    BitWriter w;
    w.putBits(0xff, 8);
    w.putBits(0x0, 8);
    w.putBits(0xab, 8);
    BitReader r(w);
    r.seek(16);
    EXPECT_EQ(r.position(), 16u);
    EXPECT_EQ(r.getBits(8), 0xabu);
    r.seek(0);
    EXPECT_EQ(r.getBits(8), 0xffu);
}

TEST(BitStream, ExhaustionPanics)
{
    BitWriter w;
    w.putBit(true);
    BitReader r(w);
    r.getBit();
    EXPECT_THROW(r.getBit(), std::logic_error);
}

TEST(BitStream, SeekPastEndPanics)
{
    BitWriter w;
    w.putBits(0xf, 4);
    BitReader r(w);
    EXPECT_THROW(r.seek(5), std::logic_error);
}

TEST(BitStream, WidthLimitPanics)
{
    BitWriter w;
    EXPECT_THROW(w.putBits(0, 33), std::logic_error);
    w.putBits(0, 32);
    BitReader r(w);
    EXPECT_THROW(r.getBits(33), std::logic_error);
}

TEST(BitStream, PaddingIsZero)
{
    BitWriter w;
    w.putBit(true);
    ASSERT_EQ(w.wordCount(), 1u);
    EXPECT_EQ(w.words()[0], 0x01u);
    // The whole padded buffer beyond the cursor stays zero — the
    // invariant putZeroBits relies on.
    const auto &buf = w.buffer();
    for (std::size_t i = 1; i < buf.padded(); ++i)
        EXPECT_EQ(buf.data()[i], 0u) << "word " << i;
}

TEST(BitStream, ZeroRunMatchesPerBitEmission)
{
    BitWriter a;
    BitWriter b;
    a.putBits(0x3, 2);
    b.putBits(0x3, 2);
    a.putZeroBits(71);
    for (int i = 0; i < 71; ++i)
        b.putBit(false);
    a.putBits(0x1f, 5);
    b.putBits(0x1f, 5);
    ASSERT_EQ(a.bitCount(), b.bitCount());
    for (std::size_t i = 0; i < a.wordCount(); ++i)
        EXPECT_EQ(a.words()[i], b.words()[i]) << "word " << i;
}

TEST(BitStream, TakeWordsRoundTrip)
{
    BitWriter w;
    w.putBits(0xdeadbeef, 32);
    w.putZeroBits(40);
    w.putBits(0x155, 9);
    const std::uint64_t bits = w.bitCount();
    auto words = w.takeWords();
    EXPECT_EQ(w.bitCount(), 0u); // writer reset by the move-out
    BitReader r(words, bits);
    EXPECT_EQ(r.getBits(32), 0xdeadbeefu);
    EXPECT_EQ(r.getBits(20), 0u);
    EXPECT_EQ(r.getBits(20), 0u);
    EXPECT_EQ(r.getBits(9), 0x155u);
    EXPECT_EQ(r.remaining(), 0u);
}

} // namespace
} // namespace mcbp::bstc
