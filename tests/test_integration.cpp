/** @file Integration tests crossing module boundaries: the full MCBP
 *  pipeline (quantize -> compress -> decompress -> BRCR -> verify) and
 *  the prediction + attention flow against the reference transformer. */
#include <gtest/gtest.h>

#include "accel/mcbp_accelerator.hpp"
#include "bgpp/bgpp_predictor.hpp"
#include "brcr/brcr_engine.hpp"
#include "brcr/cam.hpp"
#include "brcr/enumeration.hpp"
#include "bstc/compressed_weight.hpp"
#include "common/rng.hpp"
#include "model/kv_cache.hpp"
#include "model/synthetic.hpp"
#include "model/transformer.hpp"
#include <cmath>

#include "quant/gemm.hpp"

namespace mcbp {
namespace {

TEST(Integration, CompressDecompressComputeExact)
{
    // The full weight path of Fig 6: offline BSTC compression -> online
    // decompression -> BRCR GEMM, exactly equal to the reference integer
    // GEMM on the original weights.
    Rng rng(1);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 48, 768, quant::BitWidth::Int8, profile);

    bstc::PlanePolicy policy = bstc::paperDefaultPolicy(7);
    bstc::CompressedWeight cw(qw.values, quant::BitWidth::Int8, 4, policy,
                              256);
    Int8Matrix restored = cw.decompressToMatrix();
    ASSERT_EQ(restored, qw.values);

    Int8Matrix x(768, 4);
    x.fill([&](std::size_t, std::size_t) {
        return static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
    });
    brcr::BrcrEngine engine;
    brcr::BrcrGemmResult res = engine.gemm(restored, x);
    EXPECT_EQ(res.y, quant::gemmInt(qw.values, x));
}

TEST(Integration, SegmentDecodeFeedsCamMatch)
{
    // Hardware flow of Fig 10 steps 2-4: decode one segment, load its
    // patterns into the CAM, and verify search results against the
    // enumeration-based factorization.
    Rng rng(2);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 8, 128, quant::BitWidth::Int8, profile);
    bstc::PlanePolicy policy = bstc::paperDefaultPolicy(7);
    bstc::CompressedWeight cw(qw.values, quant::BitWidth::Int8, 4, policy,
                              64);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);

    const std::size_t plane = 4, group = 1, segment = 0;
    std::vector<std::uint32_t> pats =
        cw.decodeSegment(plane, group, segment);
    brcr::CamMatchUnit cam(4, 64);
    cam.load(pats);

    for (std::uint32_t key = 1; key < 16; ++key) {
        auto bitmap = cam.search(key);
        for (std::size_t c = 0; c < 64; ++c) {
            const bool hw = (bitmap[c >> 6] >> (c & 63)) & 1u;
            const bool expect =
                sm.magnitude[plane].columnPattern(group * 4, 4, c) == key;
            EXPECT_EQ(hw, expect) << "key " << key << " col " << c;
        }
    }
}

TEST(Integration, DecodeAttentionWithBgppOverKvCache)
{
    // Decode-stage flow: append tokens to a KV cache, predict vital keys
    // with BGPP, compute sparse attention, and compare with the dense
    // softmax-weighted output.
    Rng rng(3);
    const std::size_t d = 64, s = 384;
    model::AttentionSet set = model::synthesizeAttention(rng, s, d, 0.12);

    model::KvCache cache(d);
    for (std::size_t j = 0; j < s; ++j) {
        std::vector<std::int8_t> k(d), v(d);
        for (std::size_t i = 0; i < d; ++i) {
            k[i] = set.keys.at(j, i);
            v[i] = static_cast<std::int8_t>(
                static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
        }
        cache.append(k, v);
    }

    bgpp::BgppConfig cfg;
    cfg.logitScale = set.logitScale;
    bgpp::BgppPredictor predictor(cfg);
    bgpp::BgppResult sel = predictor.predict(set.query, cache.keys());
    ASSERT_GE(sel.selected.size(), 1u);
    ASSERT_LT(sel.selected.size(), s);

    // Dense reference attention output (float softmax over int scores).
    auto attend = [&](const std::vector<std::uint32_t> &keys_used) {
        std::vector<double> out(d, 0.0);
        double denom = 0.0, mx = -1e30;
        std::vector<double> logits;
        logits.reserve(keys_used.size());
        for (std::uint32_t j : keys_used) {
            double acc = 0.0;
            for (std::size_t i = 0; i < d; ++i)
                acc += static_cast<double>(set.query[i]) *
                       cache.keys().at(j, i);
            const double l = acc * set.logitScale;
            logits.push_back(l);
            mx = std::max(mx, l);
        }
        for (std::size_t n = 0; n < keys_used.size(); ++n) {
            const double w = std::exp(logits[n] - mx);
            denom += w;
            for (std::size_t i = 0; i < d; ++i)
                out[i] += w * cache.values().at(keys_used[n], i);
        }
        for (auto &o : out)
            o /= denom;
        return out;
    };

    std::vector<std::uint32_t> all(s);
    for (std::size_t j = 0; j < s; ++j)
        all[j] = static_cast<std::uint32_t>(j);
    std::vector<double> dense = attend(all);
    std::vector<double> sparse = attend(sel.selected);

    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
        dot += dense[i] * sparse[i];
        na += dense[i] * dense[i];
        nb += sparse[i] * sparse[i];
    }
    EXPECT_GT(dot / std::sqrt(na * nb), 0.985);
}

TEST(Integration, TransformerWithBgppSelectorEndToEnd)
{
    // A full decoder block executed with BGPP attention pruning stays
    // close to the FP32 reference — the Table 2 proxy path.
    Rng rng(4);
    model::WeightProfile profile;
    profile.sigma = 0.08;
    model::TransformerLayer layer(
        model::randomLayer(rng, 64, 4, 128, profile));
    FloatMatrix x = model::gaussianActivations(rng, 20, 64, 1.0);

    model::KeySelector selector = [](const std::vector<std::int8_t> &q,
                                     const Int8Matrix &keys,
                                     double logit_scale) {
        bgpp::BgppConfig cfg;
        cfg.alpha = 0.7;
        cfg.logitScale = logit_scale;
        bgpp::BgppPredictor pred(cfg);
        return pred.predict(q, keys).selected;
    };
    quant::ErrorStats e = model::layerFidelity(
        layer.forwardF32(x), layer.forwardPruned(x, selector));
    EXPECT_GT(e.cosine, 0.96);
}

TEST(Integration, EnumerationMatchesEnginePerGroup)
{
    // The explicit E x I x X factorization and the production engine
    // agree group by group on the merged-activation totals.
    Rng rng(5);
    Int8Matrix w(4, 200);
    w.fill([&](std::size_t, std::size_t) {
        return static_cast<std::int8_t>(rng.uniformInt(2)); // bits 0/1
    });
    std::vector<std::int8_t> x(200);
    for (auto &v : x)
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);

    // Plane 1 of a 0/1 matrix is the matrix itself.
    bitslice::SignMagnitude sm =
        bitslice::decompose(w, quant::BitWidth::Int8);
    brcr::GroupFactorization fact =
        brcr::factorizeGroup(sm.magnitude[0], 0, 4);
    brcr::ReconResult recon = brcr::reconstructOutputs(
        fact, brcr::mergeActivations(fact, x));

    brcr::BrcrEngine engine;
    brcr::BrcrGemvResult res = engine.gemv(w, x);
    for (std::size_t r = 0; r < 4; ++r)
        EXPECT_EQ(res.y[r], recon.y[r]);
}

TEST(Integration, FullAcceleratorRunAllModelsAllTasks)
{
    // Smoke the entire modeling stack: every (model, task) pair runs and
    // produces finite, positive metrics.
    accel::McbpAccelerator mcbp = accel::makeMcbpStandard();
    for (const auto &m : model::modelZoo()) {
        for (const auto &t : model::taskZoo()) {
            accel::RunMetrics r = mcbp.run(m, t);
            EXPECT_GT(r.totalCycles(), 0.0) << m.name << "/" << t.name;
            EXPECT_GT(r.joules(), 0.0) << m.name << "/" << t.name;
            EXPECT_GT(r.gops(), 0.0) << m.name << "/" << t.name;
            EXPECT_TRUE(std::isfinite(r.gopsPerWatt()));
        }
    }
}

} // namespace
} // namespace mcbp
