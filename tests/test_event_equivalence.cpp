/**
 * @file
 * Coalesced-vs-per-token equivalence contract of the event core
 * (event_core.hpp "Stepping"), over the full policy matrix
 * {fifo, skip-ahead, shortest-prompt} x {reserve, paged} x
 * {single chip, pp=2 x tp=2 cluster}:
 *  - every scheduling decision — admission order (including
 *    re-admissions), preemption victims, completion order — is
 *    exactly the per-token reference's;
 *  - aggregate times/energies agree to 1e-9 relative (the closed
 *    forms only re-associate floating-point sums);
 *  - coalescing actually coalesces (decodeWindows << decodeIterations)
 *    and the per-token path remains one pass per iteration;
 *  - MCBP_SERVING_STEP spelling is validated (fatal on junk).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/health.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"
#include "model/request.hpp"
#include "sim/fault_model.hpp"

namespace mcbp::engine {
namespace {

std::vector<model::Request>
denseTrace(std::size_t n = 24)
{
    model::TraceConfig tc;
    tc.model = "OPT1B3";
    tc.task = "MBPP";
    tc.requests = n;
    tc.arrivalsPerSecond = 50.0;
    tc.seed = 17;
    return model::synthesizeTrace(tc);
}

void
expectNear(double a, double b, const char *what)
{
    const double scale = std::max(std::abs(a), std::abs(b));
    EXPECT_LE(std::abs(a - b), 1e-9 * std::max(scale, 1.0)) << what;
}

/** The full contract between a per-token and a coalesced run. */
void
expectEquivalent(const ServingReport &ref, const ServingReport &coal)
{
    // Decisions verbatim.
    EXPECT_EQ(ref.admissionOrder, coal.admissionOrder);
    EXPECT_EQ(ref.preemptionOrder, coal.preemptionOrder);
    EXPECT_EQ(ref.preemptions, coal.preemptions);
    EXPECT_EQ(ref.recomputedTokens, coal.recomputedTokens);
    EXPECT_EQ(ref.peakBatch, coal.peakBatch);
    EXPECT_EQ(ref.decodeIterations, coal.decodeIterations);
    ASSERT_EQ(ref.requests.size(), coal.requests.size());
    for (std::size_t i = 0; i < ref.requests.size(); ++i) {
        EXPECT_EQ(ref.requests[i].id, coal.requests[i].id)
            << "completion order diverged at " << i;
        EXPECT_EQ(ref.requests[i].preemptions,
                  coal.requests[i].preemptions);
        expectNear(ref.requests[i].completionSeconds,
                   coal.requests[i].completionSeconds, "completion");
        expectNear(ref.requests[i].firstTokenSeconds,
                   coal.requests[i].firstTokenSeconds, "first token");
        expectNear(ref.requests[i].joules, coal.requests[i].joules,
                   "request joules");
        expectNear(ref.requests[i].admissionSeconds,
                   coal.requests[i].admissionSeconds, "admission");
    }
    // Fault decisions verbatim too (all zero/empty on clean runs).
    EXPECT_EQ(ref.retryOrder, coal.retryOrder);
    EXPECT_EQ(ref.dropOrder, coal.dropOrder);
    EXPECT_EQ(ref.faultEvents, coal.faultEvents);
    EXPECT_EQ(ref.killedInFlight, coal.killedInFlight);
    EXPECT_EQ(ref.retriesScheduled, coal.retriesScheduled);
    EXPECT_EQ(ref.droppedRequests, coal.droppedRequests);
    EXPECT_EQ(ref.faultLostTokens, coal.faultLostTokens);
    // Aggregates to 1e-9 relative.
    expectNear(ref.busySeconds, coal.busySeconds, "busy");
    expectNear(ref.makespanSeconds, coal.makespanSeconds, "makespan");
    expectNear(ref.serialSeconds, coal.serialSeconds, "serial");
    expectNear(ref.joulesPerToken, coal.joulesPerToken, "J/token");
    expectNear(ref.meanTpotSeconds, coal.meanTpotSeconds, "TPOT");
    expectNear(ref.p99FirstTokenSeconds, coal.p99FirstTokenSeconds,
               "p99 TTFT");
    expectNear(ref.kvPeakBytes, coal.kvPeakBytes, "kv peak");
    expectNear(ref.degradedSeconds, coal.degradedSeconds, "degraded");
    expectNear(ref.outageSeconds, coal.outageSeconds, "outage");
    expectNear(ref.faultRecomputeSeconds, coal.faultRecomputeSeconds,
               "fault recompute");
    expectNear(ref.goodputTokensPerSecond, coal.goodputTokensPerSecond,
               "goodput");
}

TEST(EventEquivalence, CoalescedMatchesPerTokenAcrossPolicyMatrix)
{
    const auto trace = denseTrace();
    Registry registry;
    for (const char *spec : {"mcbp", "mcbp:pp=2,tp=2"}) {
        auto accel = registry.make(spec);
        for (SchedulerPolicy policy : allSchedulerPolicies()) {
            for (KvPolicy kv : allKvPolicies()) {
                ServingOptions opts;
                opts.maxBatch = 8;
                opts.policy = policy;
                opts.kvPolicy = kv;
                if (kv == KvPolicy::Paged) {
                    // Size the pool off an unbounded probe so the
                    // paged leg actually preempts and recomputes.
                    ServingOptions probe = opts;
                    probe.kvCapacityBytes = 0.0;
                    opts.kvCapacityBytes =
                        ServingSimulator(*accel, probe)
                            .simulate(trace)
                            .kvPeakBytes /
                        4.0;
                }
                ServingOptions ref = opts;
                ref.stepMode = StepMode::PerToken;
                ServingOptions coal = opts;
                coal.stepMode = StepMode::Coalesced;
                const ServingReport a =
                    ServingSimulator(*accel, ref).simulate(trace);
                const ServingReport b =
                    ServingSimulator(*accel, coal).simulate(trace);
                SCOPED_TRACE(std::string(spec) + " / " +
                             toString(policy) + " / " + toString(kv));
                if (kv == KvPolicy::Paged) {
                    EXPECT_GT(b.preemptions, 0u);
                }
                // Per-token runs one loop pass per iteration; the
                // coalesced run folds them into far fewer windows.
                EXPECT_EQ(a.decodeWindows, a.decodeIterations);
                EXPECT_LT(b.decodeWindows, b.decodeIterations);
                expectEquivalent(a, b);
            }
        }
    }
}

TEST(EventEquivalence, CoalescedMatchesPerTokenUnderInjectedFaults)
{
    const auto trace = denseTrace();
    Registry registry;
    for (const char *spec : {"mcbp", "mcbp:pp=2,tp=2"}) {
        auto accel = registry.make(spec);
        // The composed topology fails over to its degraded form; the
        // single chip has none and rides out an outage instead.
        const std::string deg = degradedSpec(spec);
        std::unique_ptr<Accelerator> degraded;
        if (!deg.empty())
            degraded = registry.make(deg);

        // Hand-authored timeline at fractions of the healthy
        // makespan: a transient chip failure (kills + retries), a
        // straggler stall and a link-degradation window.
        ServingOptions probe_opts;
        probe_opts.maxBatch = 8;
        const double T = ServingSimulator(*accel, probe_opts)
                             .simulate(trace)
                             .makespanSeconds;
        ASSERT_GT(T, 0.0);
        sim::FaultSpec faults;
        sim::FaultEvent fail;
        fail.at = T / 4.0;
        fail.kind = sim::FaultKind::ChipFail;
        fail.permanent = false;
        fail.repairAt = fail.at + T / 10.0;
        faults.events.push_back(fail);
        sim::FaultEvent stall;
        stall.at = T / 2.0;
        stall.kind = sim::FaultKind::StragglerStart;
        stall.factor = 1.75;
        faults.events.push_back(stall);
        sim::FaultEvent stall_end = stall;
        stall_end.at = 0.7 * T;
        stall_end.kind = sim::FaultKind::StragglerEnd;
        faults.events.push_back(stall_end);
        sim::FaultEvent link;
        link.at = 0.55 * T;
        link.kind = sim::FaultKind::LinkDegrade;
        link.factor = 0.5;
        faults.events.push_back(link);
        sim::FaultEvent link_end = link;
        link_end.at = 0.8 * T;
        link_end.kind = sim::FaultKind::LinkRestore;
        faults.events.push_back(link_end);

        for (KvPolicy kv : allKvPolicies()) {
            ServingOptions opts;
            opts.maxBatch = 8;
            opts.kvPolicy = kv;
            opts.faults = faults;
            opts.degradedAccel = degraded.get();
            if (kv == KvPolicy::Paged) {
                ServingOptions probe = probe_opts;
                probe.kvPolicy = kv;
                opts.kvCapacityBytes =
                    ServingSimulator(*accel, probe)
                        .simulate(trace)
                        .kvPeakBytes /
                    4.0;
            }
            ServingOptions ref = opts;
            ref.stepMode = StepMode::PerToken;
            ServingOptions coal = opts;
            coal.stepMode = StepMode::Coalesced;
            const ServingReport a =
                ServingSimulator(*accel, ref).simulate(trace);
            const ServingReport b =
                ServingSimulator(*accel, coal).simulate(trace);
            SCOPED_TRACE(std::string(spec) + " / " + toString(kv) +
                         " / faulted");
            // The leg must actually exercise the fault machinery (the
            // transient failure expands to fail + repair: 6 events).
            EXPECT_EQ(b.faultEvents, 6u);
            EXPECT_GT(b.killedInFlight, 0u);
            EXPECT_GT(b.retriesScheduled, 0u);
            EXPECT_LT(b.decodeWindows, b.decodeIterations);
            expectEquivalent(a, b);
        }
    }
}

TEST(EventEquivalence, StepModeSpellingsAndEnvValidation)
{
    EXPECT_EQ(toString(StepMode::Coalesced), "coalesced");
    EXPECT_EQ(toString(StepMode::PerToken), "per-token");

    // Env resolution: unset/empty -> coalesced; junk is fatal.
    unsetenv("MCBP_SERVING_STEP");
    EXPECT_EQ(stepModeFromEnv(), StepMode::Coalesced);
    setenv("MCBP_SERVING_STEP", "", 1);
    EXPECT_EQ(stepModeFromEnv(), StepMode::Coalesced);
    setenv("MCBP_SERVING_STEP", "per-token", 1);
    EXPECT_EQ(stepModeFromEnv(), StepMode::PerToken);
    setenv("MCBP_SERVING_STEP", "coalesced", 1);
    EXPECT_EQ(stepModeFromEnv(), StepMode::Coalesced);
    setenv("MCBP_SERVING_STEP", "warp-speed", 1);
    EXPECT_THROW((void)stepModeFromEnv(), std::runtime_error);
    unsetenv("MCBP_SERVING_STEP");
}

} // namespace
} // namespace mcbp::engine
