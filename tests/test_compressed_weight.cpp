/** @file Unit + property tests for bstc/compressed_weight. */
#include <gtest/gtest.h>

#include <tuple>

#include "bstc/compressed_weight.hpp"
#include "common/rng.hpp"
#include "model/synthetic.hpp"

namespace mcbp::bstc {
namespace {

Int8Matrix
randomInt8(std::uint64_t seed, std::size_t r, std::size_t c, int limit)
{
    Rng rng(seed);
    Int8Matrix m(r, c);
    m.fill([&](std::size_t, std::size_t) {
        return static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(2 * limit + 1)) -
            limit);
    });
    return m;
}

// Round-trip property sweep: bit width x group size x shape.
class CompressedWeightRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<quant::BitWidth, std::size_t, std::size_t,
                     std::size_t, std::size_t>>
{
};

TEST_P(CompressedWeightRoundTrip, Lossless)
{
    const auto [bw, m, rows, cols, seg] = GetParam();
    const int limit = quant::maxLevel(bw);
    Int8Matrix w = randomInt8(rows * 131 + cols, rows, cols, limit);
    PlanePolicy policy = paperDefaultPolicy(
        static_cast<std::size_t>(quant::magnitudeBits(bw)));
    CompressedWeight cw(w, bw, m, policy, seg);
    EXPECT_EQ(cw.decompressToMatrix(), w);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressedWeightRoundTrip,
    ::testing::Values(
        std::make_tuple(quant::BitWidth::Int8, 4u, 16u, 256u, 64u),
        std::make_tuple(quant::BitWidth::Int8, 4u, 17u, 250u, 64u),
        std::make_tuple(quant::BitWidth::Int8, 2u, 8u, 100u, 32u),
        std::make_tuple(quant::BitWidth::Int8, 8u, 32u, 128u, 128u),
        std::make_tuple(quant::BitWidth::Int8, 4u, 4u, 1500u, 1024u),
        std::make_tuple(quant::BitWidth::Int4, 4u, 16u, 256u, 64u),
        std::make_tuple(quant::BitWidth::Int4, 3u, 9u, 65u, 16u)));

TEST(CompressedWeight, AdaptivePolicyRoundTrip)
{
    Rng rng(2);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 32, 512, quant::BitWidth::Int8, profile);
    bitslice::SparsityReport rep =
        bitslice::analyzeSparsity(qw.values, quant::BitWidth::Int8);
    PlanePolicy policy = adaptivePolicy(rep);
    CompressedWeight cw(qw.values, quant::BitWidth::Int8, 4, policy, 128);
    EXPECT_EQ(cw.decompressToMatrix(), qw.values);
}

TEST(CompressedWeight, CompressesGaussianWeights)
{
    Rng rng(3);
    model::WeightProfile profile;
    profile.dynamicRange = 16.0;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 2048, quant::BitWidth::Int8, profile);
    PlanePolicy policy = paperDefaultPolicy(7);
    CompressedWeight cw(qw.values, quant::BitWidth::Int8, 4, policy);
    EXPECT_GT(cw.compressionRatio(), 1.05);
    EXPECT_LT(cw.storedBits(), cw.originalBits());
}

TEST(CompressedWeight, DenseWeightsBarelyCompress)
{
    // Uniform random values in full range: little bit sparsity.
    Int8Matrix w = randomInt8(4, 64, 512, 127);
    PlanePolicy policy = paperDefaultPolicy(7);
    CompressedWeight cw(w, quant::BitWidth::Int8, 4, policy);
    EXPECT_LT(cw.compressionRatio(), 1.2);
}

TEST(CompressedWeight, DecodeSegmentMatchesFull)
{
    Rng rng(5);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 16, 300, quant::BitWidth::Int8, profile);
    PlanePolicy policy = paperDefaultPolicy(7);
    CompressedWeight cw(qw.values, quant::BitWidth::Int8, 4, policy, 128);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    for (std::size_t p = 0; p < 7; ++p) {
        for (std::size_t g = 0; g < cw.rowGroups(); ++g) {
            for (std::size_t s = 0; s < cw.segmentsPerRowGroup(); ++s) {
                auto pats = cw.decodeSegment(p, g, s);
                const std::size_t c0 = s * 128;
                for (std::size_t i = 0; i < pats.size(); ++i) {
                    EXPECT_EQ(pats[i], sm.magnitude[p].columnPattern(
                                           g * 4, 4, c0 + i))
                        << "plane " << p << " group " << g << " seg "
                        << s << " col " << i;
                }
            }
        }
    }
}

TEST(CompressedWeight, DirectoryBitsAccounted)
{
    Int8Matrix w = randomInt8(6, 16, 256, 127);
    PlanePolicy policy = paperDefaultPolicy(7);
    CompressedWeight cw(w, quant::BitWidth::Int8, 4, policy, 64);
    // 5 encoded planes x 4 row groups x 4 segments x 16 bits.
    EXPECT_EQ(cw.directoryBits(), 5u * 4u * 4u * 16u);
}

TEST(CompressedWeight, PlaneEncodedFlags)
{
    Int8Matrix w = randomInt8(7, 8, 64, 127);
    PlanePolicy policy = paperDefaultPolicy(7);
    CompressedWeight cw(w, quant::BitWidth::Int8, 4, policy);
    EXPECT_FALSE(cw.planeEncoded(0));
    EXPECT_FALSE(cw.planeEncoded(1));
    for (std::size_t p = 2; p < 7; ++p)
        EXPECT_TRUE(cw.planeEncoded(p));
}

TEST(CompressedWeight, InvalidArgumentsFatal)
{
    Int8Matrix w(4, 4);
    PlanePolicy policy = paperDefaultPolicy(7);
    EXPECT_THROW(
        CompressedWeight(w, quant::BitWidth::Int8, 0, policy),
        std::runtime_error);
    EXPECT_THROW(
        CompressedWeight(w, quant::BitWidth::Int8, 4, policy, 0),
        std::runtime_error);
    PlanePolicy bad;
    bad.compress = {true}; // arity mismatch with 7 planes
    EXPECT_THROW(CompressedWeight(w, quant::BitWidth::Int8, 4, bad),
                 std::runtime_error);
}

TEST(CompressedWeight, SegmentCoordsChecked)
{
    Int8Matrix w(8, 64);
    PlanePolicy policy = paperDefaultPolicy(7);
    CompressedWeight cw(w, quant::BitWidth::Int8, 4, policy, 32);
    EXPECT_THROW(cw.decodeSegment(7, 0, 0), std::runtime_error);
    EXPECT_THROW(cw.decodeSegment(0, 2, 0), std::runtime_error);
    EXPECT_THROW(cw.decodeSegment(0, 0, 2), std::runtime_error);
}

} // namespace
} // namespace mcbp::bstc
