/** @file Unit tests for model/transformer: the fidelity-proxy substrate. */
#include <gtest/gtest.h>

#include "bgpp/bgpp_predictor.hpp"
#include "bgpp/topk_baseline.hpp"
#include "common/rng.hpp"
#include "model/transformer.hpp"

namespace mcbp::model {
namespace {

TransformerLayer
makeLayer(std::uint64_t seed, std::size_t hidden = 64,
          std::size_t heads = 4, std::size_t ffn = 128)
{
    Rng rng(seed);
    WeightProfile profile;
    profile.sigma = 0.08;
    return TransformerLayer(randomLayer(rng, hidden, heads, ffn, profile));
}

FloatMatrix
makeInput(std::uint64_t seed, std::size_t s, std::size_t h)
{
    Rng rng(seed ^ 0xabcdu);
    return gaussianActivations(rng, s, h, 1.0);
}

TEST(Transformer, OutputShape)
{
    TransformerLayer layer = makeLayer(1);
    FloatMatrix x = makeInput(1, 12, 64);
    FloatMatrix y = layer.forwardF32(x);
    EXPECT_EQ(y.rows(), 12u);
    EXPECT_EQ(y.cols(), 64u);
}

TEST(Transformer, CausalityHolds)
{
    // Changing a future token must not affect earlier outputs.
    TransformerLayer layer = makeLayer(2);
    FloatMatrix x = makeInput(2, 8, 64);
    FloatMatrix y1 = layer.forwardF32(x);
    x.at(7, 3) += 5.0f; // perturb the last token only
    FloatMatrix y2 = layer.forwardF32(x);
    for (std::size_t s = 0; s < 7; ++s)
        for (std::size_t i = 0; i < 64; ++i)
            EXPECT_FLOAT_EQ(y1.at(s, i), y2.at(s, i));
    // ... but the perturbed row itself moves.
    double diff = 0.0;
    for (std::size_t i = 0; i < 64; ++i)
        diff += std::abs(y1.at(7, i) - y2.at(7, i));
    EXPECT_GT(diff, 1e-3);
}

TEST(Transformer, Int8CloseToF32)
{
    // The Table 2 premise: INT8 is near-lossless at the block level.
    TransformerLayer layer = makeLayer(3);
    FloatMatrix x = makeInput(3, 16, 64);
    quant::ErrorStats e =
        layerFidelity(layer.forwardF32(x), layer.forwardInt8(x));
    EXPECT_GT(e.cosine, 0.99);
    EXPECT_LT(e.relFrobenius, 0.12);
}

TEST(Transformer, OracleSelectorMatchesInt8)
{
    // Selecting *all* causal keys must reproduce forwardInt8 exactly.
    TransformerLayer layer = makeLayer(4);
    FloatMatrix x = makeInput(4, 10, 64);
    KeySelector keep_all = [](const std::vector<std::int8_t> &,
                              const Int8Matrix &keys, double) {
        std::vector<std::uint32_t> all(keys.rows());
        for (std::size_t j = 0; j < keys.rows(); ++j)
            all[j] = static_cast<std::uint32_t>(j);
        return all;
    };
    FloatMatrix a = layer.forwardInt8(x);
    FloatMatrix b = layer.forwardPruned(x, keep_all);
    quant::ErrorStats e = layerFidelity(a, b);
    EXPECT_LT(e.maxAbs, 1e-5);
}

TEST(Transformer, BgppPrunedStaysClose)
{
    // End-to-end: BGPP-selected attention barely moves the block output
    // (the MCBP standard-config claim).
    TransformerLayer layer = makeLayer(5, 64, 4, 128);
    FloatMatrix x = makeInput(5, 24, 64);
    KeySelector bgpp_sel = [](const std::vector<std::int8_t> &q,
                              const Int8Matrix &keys,
                              double logit_scale) {
        bgpp::BgppConfig cfg;
        cfg.alpha = 0.8;
        cfg.logitScale = logit_scale;
        bgpp::BgppPredictor pred(cfg);
        return pred.predict(q, keys).selected;
    };
    quant::ErrorStats e = layerFidelity(layer.forwardF32(x),
                                        layer.forwardPruned(x, bgpp_sel));
    EXPECT_GT(e.cosine, 0.94);
}

TEST(Transformer, TopkSelectorKeepsBudget)
{
    TransformerLayer layer = makeLayer(6);
    FloatMatrix x = makeInput(6, 16, 64);
    std::size_t max_seen = 0;
    KeySelector topk_sel = [&](const std::vector<std::int8_t> &q,
                               const Int8Matrix &keys, double) {
        auto r = bgpp::valueTopk(q, keys, 4);
        max_seen = std::max(max_seen, r.selected.size());
        return r.selected;
    };
    FloatMatrix y = layer.forwardPruned(x, topk_sel);
    EXPECT_LE(max_seen, 4u);
    EXPECT_EQ(y.rows(), 16u);
}

TEST(Transformer, BadInputFatal)
{
    TransformerLayer layer = makeLayer(7);
    FloatMatrix x(4, 32); // wrong width
    EXPECT_THROW(layer.forwardF32(x), std::runtime_error);
}

TEST(Transformer, RandomLayerValidation)
{
    Rng rng(8);
    EXPECT_THROW(randomLayer(rng, 0, 4, 16), std::runtime_error);
    EXPECT_THROW(randomLayer(rng, 30, 4, 16), std::runtime_error);
}

} // namespace
} // namespace mcbp::model
