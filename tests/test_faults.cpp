/**
 * @file
 * Fault-tolerant serving contract (sim/fault_model.hpp +
 * event_core.hpp + health.hpp):
 *  - the fault timeline is deterministic in (spec, chips) and stream-
 *    separated from trace synthesis (seed ^ kFaultStream), so enabling
 *    faults never perturbs the costed trace — pinned bit-identically;
 *  - a fault-enabled run whose timeline never fires is bit-identical
 *    to a plain run (the zero-fault purity gate);
 *  - transient chip failures kill in-flight work, retry it with
 *    backoff, and recover; permanent failures without a degraded plan
 *    drop everything into a zeroed-but-tagged report; with a degraded
 *    accelerator the fleet replans and serves through at degraded
 *    prices; deadlines drop queued work and dent SLO attainment;
 *  - degradedSpec()/degradedOptions() rewrite topologies the way a
 *    surviving fleet re-forms (halved axis, invalid knobs dropped).
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "engine/cluster.hpp"
#include "engine/health.hpp"
#include "engine/pipeline.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"
#include "model/request.hpp"
#include "sim/fault_model.hpp"

namespace mcbp::engine {
namespace {

std::vector<model::Request>
smallTrace(std::size_t n = 16, double rate = 30.0)
{
    model::TraceConfig tc;
    tc.model = "OPT1B3";
    tc.task = "MBPP";
    tc.requests = n;
    tc.arrivalsPerSecond = rate;
    tc.seed = 9;
    return model::synthesizeTrace(tc);
}

sim::FaultSpec
transientFailAt(double at, double repairSeconds)
{
    sim::FaultSpec spec;
    sim::FaultEvent e;
    e.at = at;
    e.kind = sim::FaultKind::ChipFail;
    e.chip = 0;
    e.permanent = false;
    e.repairAt = at + repairSeconds;
    spec.events.push_back(e);
    return spec;
}

TEST(FaultModel, TimelineDeterministicAndSeedSeparated)
{
    sim::FaultSpec spec;
    spec.seed = 7;
    spec.mtbfSeconds = 0.5;
    spec.repairSeconds = 0.1;
    spec.permanentFraction = 0.25;
    spec.linkDegradeRate = 2.0;
    spec.stragglerRate = 3.0;
    spec.horizonSeconds = 4.0;

    const auto a = sim::buildFaultTimeline(spec, 4);
    const auto b = sim::buildFaultTimeline(spec, 4);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].chip, b[i].chip);
        EXPECT_EQ(a[i].id, i); // Ids are timeline positions.
        if (i > 0) {
            EXPECT_LE(a[i - 1].at, a[i].at); // Sorted.
        }
    }

    // A different seed re-draws the processes.
    sim::FaultSpec other = spec;
    other.seed = 8;
    const auto c = sim::buildFaultTimeline(other, 4);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].at != c[i].at;
    EXPECT_TRUE(differs);

    // Stream separation: the fault stream's first draws are not the
    // trace-synthesis stream's (seed vs seed ^ kFaultStream).
    Rng trace_stream(spec.seed);
    Rng fault_stream(spec.seed ^ sim::kFaultStream);
    EXPECT_NE(trace_stream.next(), fault_stream.next());
}

TEST(FaultModel, GeneratedProcessesAreWellFormed)
{
    // Permanent-only failures: at most one ChipFail per chip, no
    // repairs ever emitted.
    sim::FaultSpec spec;
    spec.seed = 3;
    spec.mtbfSeconds = 0.2;
    spec.permanentFraction = 1.0;
    spec.horizonSeconds = 5.0;
    const auto events = sim::buildFaultTimeline(spec, 3);
    ASSERT_FALSE(events.empty());
    std::vector<std::size_t> fails(3, 0);
    for (const sim::FaultEvent &e : events) {
        ASSERT_EQ(e.kind, sim::FaultKind::ChipFail);
        EXPECT_TRUE(e.permanent);
        ++fails[e.chip];
    }
    for (std::size_t n : fails)
        EXPECT_LE(n, 1u);

    // Link windows come in (degrade, restore) pairs with the factor
    // carried on both ends.
    sim::FaultSpec link;
    link.seed = 3;
    link.linkDegradeRate = 5.0;
    link.linkDegradeSeconds = 0.05;
    link.linkDegradeFactor = 0.25;
    link.horizonSeconds = 2.0;
    const auto windows = sim::buildFaultTimeline(link, 1);
    ASSERT_FALSE(windows.empty());
    EXPECT_EQ(windows.size() % 2, 0u);
    std::size_t opens = 0;
    for (const sim::FaultEvent &e : windows) {
        EXPECT_EQ(e.factor, 0.25);
        if (e.kind == sim::FaultKind::LinkDegrade)
            ++opens;
        else
            EXPECT_EQ(e.kind, sim::FaultKind::LinkRestore);
    }
    EXPECT_EQ(opens * 2, windows.size());
}

TEST(FaultModel, KnobAndEventValidation)
{
    // Rates without a horizon cannot be sampled.
    sim::FaultSpec no_horizon;
    no_horizon.mtbfSeconds = 1.0;
    EXPECT_THROW((void)sim::buildFaultTimeline(no_horizon, 2),
                 std::runtime_error);

    // Explicit events: chip index bounds and transient repair times.
    sim::FaultSpec bad_chip = transientFailAt(0.1, 0.1);
    bad_chip.events[0].chip = 5;
    EXPECT_THROW((void)sim::buildFaultTimeline(bad_chip, 2),
                 std::runtime_error);
    sim::FaultSpec bad_repair = transientFailAt(0.1, 0.1);
    bad_repair.events[0].repairAt = 0.05;
    EXPECT_THROW((void)sim::buildFaultTimeline(bad_repair, 2),
                 std::runtime_error);

    // Out-of-order explicit events are sorted and id-stamped.
    sim::FaultSpec unsorted;
    sim::FaultEvent late;
    late.at = 2.0;
    late.kind = sim::FaultKind::StragglerStart;
    late.factor = 2.0;
    sim::FaultEvent early = late;
    early.at = 1.0;
    unsorted.events = {late, early};
    const auto sorted = sim::buildFaultTimeline(unsorted, 1);
    ASSERT_EQ(sorted.size(), 2u);
    EXPECT_EQ(sorted[0].at, 1.0);
    EXPECT_EQ(sorted[1].at, 2.0);
    EXPECT_EQ(sorted[0].id, 0u);
    EXPECT_EQ(sorted[1].id, 1u);
}

TEST(FaultServing, CostedTraceBitIdenticalWithFaultsEnabled)
{
    const auto trace = smallTrace();
    Registry registry;
    const auto accel = registry.make("mcbp");

    ServingOptions plain;
    ServingOptions faulted = plain;
    faulted.faults.mtbfSeconds = 1.0;
    faulted.faults.horizonSeconds = 2.0;

    const auto healthy = ServingSimulator(*accel, plain).costTrace(trace);
    const auto injected =
        ServingSimulator(*accel, faulted).costTrace(trace);
    ASSERT_EQ(healthy.costs.size(), injected.costs.size());
    EXPECT_EQ(healthy.clockGhz, injected.clockGhz);
    EXPECT_EQ(healthy.serialSeconds, injected.serialSeconds);
    for (std::size_t i = 0; i < healthy.costs.size(); ++i) {
        const CostedRequest &h = healthy.costs[i];
        const CostedRequest &f = injected.costs[i];
        EXPECT_EQ(h.arrivalCycles, f.arrivalCycles);
        EXPECT_EQ(h.prefillCycles, f.prefillCycles);
        EXPECT_EQ(h.weightCyclesPerToken, f.weightCyclesPerToken);
        EXPECT_EQ(h.linearCyclesPerToken, f.linearCyclesPerToken);
        EXPECT_EQ(h.otherCyclesPerToken, f.otherCyclesPerToken);
        EXPECT_EQ(h.fixedCyclesPerToken, f.fixedCyclesPerToken);
        EXPECT_EQ(h.weightJoulesPerToken, f.weightJoulesPerToken);
        EXPECT_EQ(h.otherJoulesPerToken, f.otherJoulesPerToken);
        EXPECT_EQ(h.kvBytes, f.kvBytes);
        // The prefill charge is deferred to admission, not re-priced:
        // the same double, accumulated at the same position.
        EXPECT_EQ(f.joules, 0.0);
        EXPECT_EQ(h.joules, f.pendingPrefillJoules);
        EXPECT_EQ(f.basePrefillCycles, f.prefillCycles);
    }
}

TEST(FaultServing, ZeroEventRunBitIdenticalToPlainRun)
{
    const auto trace = smallTrace();
    Registry registry;
    const auto accel = registry.make("mcbp");

    ServingOptions plain;
    plain.maxBatch = 8;
    // Faults armed but statistically inert: the sampled timeline over
    // this horizon is empty, so every fault branch stays cold.
    ServingOptions armed = plain;
    armed.faults.mtbfSeconds = 1e9;
    armed.faults.horizonSeconds = 1e-6;

    const ServingReport a = ServingSimulator(*accel, plain).simulate(trace);
    const ServingReport b = ServingSimulator(*accel, armed).simulate(trace);
    ASSERT_EQ(b.faultEvents, 0u);
    EXPECT_FALSE(b.noCompletions);

    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.busySeconds, b.busySeconds);
    EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
    EXPECT_EQ(a.joulesPerToken, b.joulesPerToken);
    EXPECT_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_EQ(a.p99LatencySeconds, b.p99LatencySeconds);
    EXPECT_EQ(a.admissionOrder, b.admissionOrder);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].id, b.requests[i].id);
        EXPECT_EQ(a.requests[i].completionSeconds,
                  b.requests[i].completionSeconds);
        EXPECT_EQ(a.requests[i].firstTokenSeconds,
                  b.requests[i].firstTokenSeconds);
        EXPECT_EQ(a.requests[i].joules, b.requests[i].joules);
    }
    // Availability on a clean run: full goodput, full SLO attainment.
    EXPECT_EQ(b.goodputTokensPerSecond, b.tokensPerSecond);
    EXPECT_EQ(b.sloAttainment, 1.0);
    EXPECT_EQ(b.droppedRequests, 0u);
    EXPECT_EQ(b.degradedSeconds, 0.0);
}

TEST(FaultServing, TransientOutageKillsRetriesAndRecovers)
{
    const auto trace = smallTrace();
    Registry registry;
    const auto accel = registry.make("mcbp");

    ServingOptions plain;
    plain.maxBatch = 8;
    const ServingReport healthy =
        ServingSimulator(*accel, plain).simulate(trace);
    ASSERT_GT(healthy.makespanSeconds, 0.0);

    // One transient failure mid-run on a fleet with no degraded plan:
    // a full outage until the repair, every in-flight request killed
    // and retried.
    ServingOptions opts = plain;
    opts.faults =
        transientFailAt(healthy.makespanSeconds / 3.0, 0.2);
    const ServingReport r = ServingSimulator(*accel, opts).simulate(trace);

    EXPECT_EQ(r.faultEvents, 2u); // Fail + repair.
    EXPECT_GT(r.killedInFlight, 0u);
    EXPECT_GT(r.retriesScheduled, 0u);
    EXPECT_EQ(r.droppedRequests, 0u); // Budget 3 >= the single kill.
    EXPECT_EQ(r.requests.size(), trace.size());
    EXPECT_GT(r.faultRecomputeSeconds, 0.0);
    EXPECT_GT(r.outageSeconds, 0.0);
    EXPECT_EQ(r.degradedSeconds, 0.0); // No degraded plan exists.
    EXPECT_GT(r.makespanSeconds, healthy.makespanSeconds);
    EXPECT_EQ(r.retryOrder.size(), r.retriesScheduled);
    ASSERT_FALSE(r.faultLog.empty());
    EXPECT_EQ(r.faultLog[0].kind, "chip-fail");
    EXPECT_EQ(r.faultLog[0].killed, r.killedInFlight);
    // Lost decode progress was re-served: goodput <= healthy rate.
    EXPECT_LE(r.goodputTokensPerSecond, healthy.tokensPerSecond);
}

TEST(FaultServing, PermanentFailureWithoutSpareDropsEverything)
{
    const auto trace = smallTrace();
    Registry registry;
    const auto accel = registry.make("mcbp");

    ServingOptions opts;
    sim::FaultEvent e;
    e.at = 0.0;
    e.kind = sim::FaultKind::ChipFail;
    e.permanent = true;
    opts.faults.events.push_back(e);

    const ServingReport r = ServingSimulator(*accel, opts).simulate(trace);
    // The zeroed-but-tagged report: no completions, no percentile
    // indexing, every drop accounted.
    EXPECT_TRUE(r.noCompletions);
    EXPECT_TRUE(r.requests.empty());
    EXPECT_EQ(r.droppedRequests, trace.size());
    EXPECT_EQ(r.dropOrder.size(), trace.size());
    EXPECT_EQ(r.p99LatencySeconds, 0.0);
    EXPECT_EQ(r.p99FirstTokenSeconds, 0.0);
    EXPECT_EQ(r.meanTpotSeconds, 0.0);
    EXPECT_EQ(r.tokensPerSecond, 0.0);
    EXPECT_EQ(r.goodputTokensPerSecond, 0.0);
    EXPECT_EQ(r.sloAttainment, 0.0);
}

TEST(FaultServing, DegradedReplanServesThroughPermanentFailure)
{
    const auto trace = smallTrace();
    Registry registry;
    const auto accel = registry.make("mcbp:tp=2");
    // The surviving topology, derived by the health rewrite and built
    // through the same registry.
    const std::string spare = degradedSpec("mcbp:tp=2");
    EXPECT_EQ(spare, "mcbp");
    const auto degraded = registry.make(spare);

    ServingOptions plain;
    plain.maxBatch = 8;
    const ServingReport healthy =
        ServingSimulator(*accel, plain).simulate(trace);

    ServingOptions opts = plain;
    opts.degradedAccel = degraded.get();
    sim::FaultEvent e;
    e.at = healthy.makespanSeconds / 3.0;
    e.kind = sim::FaultKind::ChipFail;
    e.chip = 1;
    e.permanent = true;
    opts.faults.events.push_back(e);

    const ServingReport r = ServingSimulator(*accel, opts).simulate(trace);
    // Everything completes — on the slower surviving fleet.
    EXPECT_EQ(r.requests.size(), trace.size());
    EXPECT_EQ(r.droppedRequests, 0u);
    EXPECT_GT(r.killedInFlight, 0u);
    EXPECT_GT(r.degradedSeconds, 0.0);
    EXPECT_EQ(r.outageSeconds, 0.0); // Degraded, never down.
    EXPECT_GT(r.degradedFraction, 0.0);
    EXPECT_LE(r.degradedFraction, 1.0);
    EXPECT_GT(r.makespanSeconds, healthy.makespanSeconds);

    // A second permanent failure exhausts the replan and is fatal.
    sim::FaultEvent e2 = e;
    e2.at = e.at * 1.5;
    e2.chip = 0;
    opts.faults.events.push_back(e2);
    const ServingReport rr =
        ServingSimulator(*accel, opts).simulate(trace);
    EXPECT_GT(rr.droppedRequests, 0u);
    EXPECT_LT(rr.sloAttainment, 1.0);
}

TEST(FaultServing, DeadlinesDropQueuedWorkDuringOutage)
{
    const auto trace = smallTrace(16, 60.0); // Dense arrivals queue up.
    Registry registry;
    const auto accel = registry.make("mcbp");

    ServingOptions plain;
    plain.maxBatch = 4;
    const ServingReport healthy =
        ServingSimulator(*accel, plain).simulate(trace);

    ServingOptions opts = plain;
    // A long outage early in the run with a short completion deadline:
    // queued work expires while the fleet is down.
    opts.faults = transientFailAt(healthy.makespanSeconds / 4.0,
                                  healthy.makespanSeconds * 2.0);
    opts.retry.deadlineSeconds = healthy.makespanSeconds / 2.0;
    const ServingReport r = ServingSimulator(*accel, opts).simulate(trace);

    EXPECT_GT(r.droppedRequests, 0u);
    EXPECT_LT(r.sloAttainment, 1.0);
    EXPECT_LE(r.goodputTokensPerSecond, r.tokensPerSecond);
    EXPECT_EQ(r.dropOrder.size(), r.droppedRequests);
    // Dropped and completed partition the trace.
    EXPECT_EQ(r.requests.size() + r.droppedRequests, trace.size());
}

TEST(FaultServing, StragglerAndLinkWindowsSlowWithoutKilling)
{
    const auto trace = smallTrace();
    Registry registry;
    const auto accel = registry.make("mcbp:tp=2");

    ServingOptions plain;
    plain.maxBatch = 8;
    const ServingReport healthy =
        ServingSimulator(*accel, plain).simulate(trace);

    ServingOptions opts = plain;
    const double third = healthy.makespanSeconds / 3.0;
    sim::FaultEvent s;
    s.at = third;
    s.kind = sim::FaultKind::StragglerStart;
    s.factor = 2.0;
    sim::FaultEvent se = s;
    se.at = 2.0 * third;
    se.kind = sim::FaultKind::StragglerEnd;
    sim::FaultEvent l;
    l.at = third * 1.2;
    l.kind = sim::FaultKind::LinkDegrade;
    l.factor = 0.5;
    sim::FaultEvent le = l;
    le.at = third * 1.8;
    le.kind = sim::FaultKind::LinkRestore;
    opts.faults.events = {s, se, l, le};

    const ServingReport r = ServingSimulator(*accel, opts).simulate(trace);
    EXPECT_EQ(r.faultEvents, 4u);
    EXPECT_EQ(r.killedInFlight, 0u);
    EXPECT_EQ(r.droppedRequests, 0u);
    EXPECT_EQ(r.requests.size(), trace.size());
    EXPECT_GT(r.makespanSeconds, healthy.makespanSeconds);
    EXPECT_EQ(r.tokensPerSecond, r.goodputTokensPerSecond);
}

TEST(Health, DegradedSpecRewritesTopologies)
{
    EXPECT_EQ(degradedSpec("mcbp:procs=148,tp=4"),
              "mcbp:procs=148,tp=2");
    EXPECT_EQ(degradedSpec("mcbp:tp=2"), "mcbp");
    EXPECT_EQ(degradedSpec("mcbp:pp=4,mb=8"), "mcbp:pp=2,mb=8");
    // Collapsing to a single chip sheds the knobs the registry would
    // reject without a fabric/pipeline.
    EXPECT_EQ(degradedSpec("mcbp:pp=2,mb=8,linkgbs=600"), "mcbp");
    // tp halves before pp re-partitions.
    EXPECT_EQ(degradedSpec("mcbp:pp=2,tp=2"), "mcbp:pp=2");
    // No redundancy, no degraded form.
    EXPECT_EQ(degradedSpec("mcbp"), "");
    EXPECT_EQ(degradedSpec("mcbp:tp=1"), "");

    // Every non-empty rewrite must actually build.
    Registry registry;
    for (const char *spec :
         {"mcbp:procs=148,tp=4", "mcbp:tp=2", "mcbp:pp=4,mb=8",
          "mcbp:pp=2,mb=8,linkgbs=600", "mcbp:pp=2,tp=2"}) {
        const std::string deg = degradedSpec(spec);
        ASSERT_FALSE(deg.empty()) << spec;
        EXPECT_NO_THROW((void)registry.make(deg)) << deg;
    }
}

TEST(Health, DegradedOptionsHalveTheFailedAxis)
{
    ClusterOptions c;
    c.tensorParallel = 4;
    EXPECT_EQ(c.degradedOptions().tensorParallel, 2u);
    c.tensorParallel = 1;
    EXPECT_EQ(c.degradedOptions().tensorParallel, 1u);

    PipelineOptions p;
    p.pipelineParallel = 4;
    p.microBatches = 8;
    EXPECT_EQ(p.degradedOptions().pipelineParallel, 2u);
    EXPECT_EQ(p.degradedOptions().microBatches, 8u);
    p.pipelineParallel = 2;
    EXPECT_EQ(p.degradedOptions().pipelineParallel, 1u);
    EXPECT_EQ(p.degradedOptions().microBatches, 1u);
}

} // namespace
} // namespace mcbp::engine
