/** @file Unit tests for quant/quantizer and quant/calibration. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "quant/calibration.hpp"
#include "quant/quantizer.hpp"

namespace mcbp::quant {
namespace {

FloatMatrix
randomMatrix(std::uint64_t seed, std::size_t r, std::size_t c,
             double sigma = 1.0)
{
    Rng rng(seed);
    FloatMatrix m(r, c);
    m.fill([&](std::size_t, std::size_t) {
        return static_cast<float>(rng.gaussian(0.0, sigma));
    });
    return m;
}

TEST(Quantizer, BitWidthHelpers)
{
    EXPECT_EQ(maxLevel(BitWidth::Int8), 127);
    EXPECT_EQ(maxLevel(BitWidth::Int4), 7);
    EXPECT_EQ(magnitudeBits(BitWidth::Int8), 7);
    EXPECT_EQ(magnitudeBits(BitWidth::Int4), 3);
}

TEST(Quantizer, ValuesWithinRange)
{
    FloatMatrix w = randomMatrix(1, 16, 64);
    for (BitWidth bw : {BitWidth::Int8, BitWidth::Int4}) {
        QuantizedWeight qw = quantizeWeight(w, bw);
        const int lim = maxLevel(bw);
        qw.values.forEach([&](std::size_t, std::size_t, std::int8_t v) {
            EXPECT_LE(v, lim);
            EXPECT_GE(v, -lim);
        });
    }
}

TEST(Quantizer, ChannelMaxHitsFullScale)
{
    // Each row's max-magnitude element must map to +-maxLevel.
    FloatMatrix w = randomMatrix(2, 8, 32);
    QuantizedWeight qw = quantizeWeight(w, BitWidth::Int8);
    for (std::size_t r = 0; r < w.rows(); ++r) {
        int mx = 0;
        for (std::size_t c = 0; c < w.cols(); ++c)
            mx = std::max<int>(mx, std::abs(qw.values.at(r, c)));
        EXPECT_EQ(mx, 127);
    }
}

TEST(Quantizer, ZeroRowGetsUnitScale)
{
    FloatMatrix w(2, 4);
    w.at(1, 2) = 1.0f; // row 0 stays all-zero
    QuantizedWeight qw = quantizeWeight(w, BitWidth::Int8);
    EXPECT_FLOAT_EQ(qw.params.scales[0], 1.0f);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(qw.values.at(0, c), 0);
}

TEST(Quantizer, RoundTripErrorBounded)
{
    FloatMatrix w = randomMatrix(3, 16, 128);
    QuantizedWeight qw = quantizeWeight(w, BitWidth::Int8);
    FloatMatrix rec = dequantizeWeight(qw);
    for (std::size_t r = 0; r < w.rows(); ++r) {
        const float step = qw.params.scales[r];
        for (std::size_t c = 0; c < w.cols(); ++c)
            EXPECT_LE(std::abs(w.at(r, c) - rec.at(r, c)),
                      step * 0.5f + 1e-6f);
    }
}

TEST(Quantizer, Int8TighterThanInt4)
{
    FloatMatrix w = randomMatrix(4, 32, 256);
    ErrorStats e8 = weightQuantError(w, BitWidth::Int8);
    ErrorStats e4 = weightQuantError(w, BitWidth::Int4);
    EXPECT_LT(e8.mse, e4.mse);
    EXPECT_GT(e8.cosine, e4.cosine);
    EXPECT_GT(e8.cosine, 0.9999);
}

TEST(Quantizer, QatClipsOutliers)
{
    // A huge outlier wrecks plain PTQ scales; QAT clipping shields the
    // bulk distribution.
    Rng rng(5);
    FloatMatrix w(4, 512);
    w.fill([&](std::size_t, std::size_t) {
        return static_cast<float>(rng.gaussian(0.0, 0.02));
    });
    w.at(0, 0) = 50.0f;
    QuantizedWeight ptq = quantizeWeight(w, BitWidth::Int8);
    QuantizedWeight qat = quantizeWeightQat(w, BitWidth::Int8, 0.99);
    // QAT uses a much smaller scale for row 0 -> better bulk resolution.
    EXPECT_LT(qat.params.scales[0], ptq.params.scales[0] / 10.0f);
}

TEST(Quantizer, QatRejectsBadPercentile)
{
    FloatMatrix w(2, 4, 1.0f);
    EXPECT_THROW(quantizeWeightQat(w, BitWidth::Int8, 0.0),
                 std::runtime_error);
    EXPECT_THROW(quantizeWeightQat(w, BitWidth::Int8, 1.5),
                 std::runtime_error);
}

TEST(Quantizer, EmptyMatrixFatal)
{
    FloatMatrix empty;
    EXPECT_THROW(quantizeWeight(empty, BitWidth::Int8),
                 std::runtime_error);
    EXPECT_THROW(quantizeActivation(empty), std::runtime_error);
}

TEST(Activation, AsymmetricRoundTrip)
{
    Rng rng(6);
    FloatMatrix x(8, 64);
    x.fill([&](std::size_t, std::size_t) {
        return static_cast<float>(rng.gaussian(3.0, 1.0)); // shifted
    });
    QuantizedActivation qx = quantizeActivation(x);
    FloatMatrix rec = dequantizeActivation(qx);
    ErrorStats e = compareTensors(x, rec);
    EXPECT_LT(e.maxAbs, qx.params.scale * 0.51 + 1e-6);
    EXPECT_GT(e.cosine, 0.9999);
}

TEST(Activation, ConstantTensor)
{
    FloatMatrix x(2, 2, 5.0f);
    QuantizedActivation qx = quantizeActivation(x);
    FloatMatrix rec = dequantizeActivation(qx);
    EXPECT_NEAR(rec.at(0, 0), 5.0f, 1e-3f);
}

TEST(Activation, ValuesUseFullInt8Range)
{
    Rng rng(8);
    FloatMatrix x(16, 16);
    x.fill([&](std::size_t, std::size_t) {
        return static_cast<float>(rng.uniform(-1.0, 1.0));
    });
    QuantizedActivation qx = quantizeActivation(x);
    int mn = 127, mx = -128;
    qx.values.forEach([&](std::size_t, std::size_t, std::int8_t v) {
        mn = std::min<int>(mn, v);
        mx = std::max<int>(mx, v);
    });
    EXPECT_LE(mn, -120);
    EXPECT_GE(mx, 120);
}

TEST(Calibration, CompareTensorsIdentity)
{
    FloatMatrix a = randomMatrix(9, 8, 8);
    ErrorStats e = compareTensors(a, a);
    EXPECT_DOUBLE_EQ(e.mse, 0.0);
    EXPECT_DOUBLE_EQ(e.maxAbs, 0.0);
    EXPECT_NEAR(e.cosine, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(e.relFrobenius, 0.0);
}

TEST(Calibration, CompareTensorsOpposite)
{
    FloatMatrix a = randomMatrix(10, 4, 4);
    FloatMatrix b(4, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            b.at(r, c) = -a.at(r, c);
    ErrorStats e = compareTensors(a, b);
    EXPECT_NEAR(e.cosine, -1.0, 1e-9);
}

} // namespace
} // namespace mcbp::quant
