/** @file Unit tests for brcr/cost_model: the paper's analytic formulas. */
#include <gtest/gtest.h>

#include "brcr/cost_model.hpp"

namespace mcbp::brcr {
namespace {

TEST(CostModel, PaperHeadlineNumbers)
{
    // Section 3.1: for H~4k, bs~0.70, vs~0.07, m=4, BRCR achieves up to
    // 12.1x and 3.8x reduction vs value sparsity and naive BSC.
    CostModelParams p;
    p.hidden = 4096;
    p.groupSize = 4;
    p.weightBits = 7;
    p.bitSparsity = 0.70;
    p.valueSparsity = 0.07;
    EXPECT_NEAR(reductionVsValue(p), 12.1, 0.4);
    EXPECT_NEAR(reductionVsBsc(p), 3.8, 0.2);
}

TEST(CostModel, FormulaValues)
{
    CostModelParams p;
    p.hidden = 1024;
    p.groupSize = 4;
    p.weightBits = 7;
    p.bitSparsity = 0.5;
    p.valueSparsity = 0.0;
    // BRCR: 7 * (1024^2/4 * 0.5 + 1024 * 8)
    EXPECT_DOUBLE_EQ(brcrAdds(p),
                     7.0 * (1024.0 * 1024.0 / 4.0 * 0.5 + 1024.0 * 8.0));
    EXPECT_DOUBLE_EQ(naiveBscAdds(p), 7.0 * 1024.0 * 1024.0 * 0.5);
    EXPECT_DOUBLE_EQ(valueSparsityAdds(p), 7.0 * 1024.0 * 1024.0);
}

TEST(CostModel, SweetSpotInMiddle)
{
    // The m trade-off (Fig 18): adds at the sweet spot beat both ends.
    CostModelParams p;
    p.hidden = 4096;
    p.bitSparsity = 0.70;
    auto adds = [&](std::size_t m) {
        CostModelParams q = p;
        q.groupSize = m;
        return brcrAdds(q);
    };
    double best = adds(1);
    std::size_t best_m = 1;
    for (std::size_t m = 2; m <= 10; ++m) {
        if (adds(m) < best) {
            best = adds(m);
            best_m = m;
        }
    }
    EXPECT_GE(best_m, 3u);
    EXPECT_LE(best_m, 7u);
    EXPECT_LT(best, adds(1));
    EXPECT_LT(best, adds(10));
}

TEST(CostModel, MonotonicInSparsity)
{
    CostModelParams lo, hi;
    lo.bitSparsity = 0.5;
    hi.bitSparsity = 0.9;
    EXPECT_GT(brcrAdds(lo), brcrAdds(hi));
}

TEST(CostModel, ZeroColumnProbability)
{
    EXPECT_DOUBLE_EQ(zeroColumnProbability(0.9, 1), 0.9);
    EXPECT_NEAR(zeroColumnProbability(0.9, 4), 0.6561, 1e-9);
    EXPECT_DOUBLE_EQ(zeroColumnProbability(1.0, 8), 1.0);
    EXPECT_DOUBLE_EQ(zeroColumnProbability(0.0, 3), 0.0);
}

TEST(CostModel, ExpectedDistinctPatterns)
{
    // With far more columns than patterns, expect nearly all patterns
    // present (the pigeonhole argument); with few columns, about that
    // many distinct patterns.
    EXPECT_NEAR(expectedDistinctPatterns(4096, 4), 15.0, 0.1);
    EXPECT_LT(expectedDistinctPatterns(4, 8), 4.01);
    EXPECT_GT(expectedDistinctPatterns(4, 8), 3.9);
}

TEST(CostModel, InvalidGroupSizeFatal)
{
    CostModelParams p;
    p.groupSize = 0;
    EXPECT_THROW(brcrAdds(p), std::runtime_error);
}

} // namespace
} // namespace mcbp::brcr
