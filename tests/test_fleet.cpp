/**
 * @file
 * Replica-fleet (dp=) serving invariants (engine/fleet):
 *  - dp=1 is bit-identical to the flat serving path, down to every
 *    field of the ServingReport (the identity the router guarantees
 *    by wholesale delegation);
 *  - every routing policy conserves requests across replicas (each
 *    trace id served exactly once, no drops on healthy runs);
 *  - a permanently failed replica drains onto the survivors through
 *    the retry/backoff path (reroutes happen, goodput never beats the
 *    healthy run, conservation still holds);
 *  - the coalesced-vs-per-token step-mode identity contract survives
 *    the fleet under injected faults (decision orders verbatim,
 *    aggregates to 1e-9 relative);
 *  - the pod spec grammar (`mcbp-s:dp=4,pp=4,tp=8`) parses, plans and
 *    serves end-to-end, and malformed fleet specs are rejected with
 *    the aggregated unknown-key message.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "engine/fleet.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"
#include "model/request.hpp"

namespace mcbp::engine {
namespace {

std::vector<model::Request>
fleetTrace(std::size_t n = 24, double rate = 100.0,
           std::uint64_t seed = 13)
{
    model::TraceConfig tc;
    tc.model = "OPT1B3";
    tc.task = "MBPP";
    tc.requests = n;
    tc.arrivalsPerSecond = rate;
    tc.seed = seed;
    return model::synthesizeTrace(tc);
}

sim::FaultEvent
permanentFail(double at, std::size_t chip)
{
    sim::FaultEvent e;
    e.at = at;
    e.kind = sim::FaultKind::ChipFail;
    e.chip = chip;
    e.permanent = true;
    return e;
}

/** Field-by-field bit equality of two serving reports. */
void
expectReportsIdentical(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.accelerator, b.accelerator);
    EXPECT_EQ(a.scheduler, b.scheduler);
    EXPECT_EQ(a.kvPolicy, b.kvPolicy);
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.busySeconds, b.busySeconds);
    EXPECT_EQ(a.serialSeconds, b.serialSeconds);
    EXPECT_EQ(a.serialJoules, b.serialJoules);
    EXPECT_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_EQ(a.p50LatencySeconds, b.p50LatencySeconds);
    EXPECT_EQ(a.p90LatencySeconds, b.p90LatencySeconds);
    EXPECT_EQ(a.p99LatencySeconds, b.p99LatencySeconds);
    EXPECT_EQ(a.p50QueueSeconds, b.p50QueueSeconds);
    EXPECT_EQ(a.p90QueueSeconds, b.p90QueueSeconds);
    EXPECT_EQ(a.p99QueueSeconds, b.p99QueueSeconds);
    EXPECT_EQ(a.p50FirstTokenSeconds, b.p50FirstTokenSeconds);
    EXPECT_EQ(a.p90FirstTokenSeconds, b.p90FirstTokenSeconds);
    EXPECT_EQ(a.p99FirstTokenSeconds, b.p99FirstTokenSeconds);
    EXPECT_EQ(a.meanTpotSeconds, b.meanTpotSeconds);
    EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
    EXPECT_EQ(a.joulesPerToken, b.joulesPerToken);
    EXPECT_EQ(a.meanBatchOccupancy, b.meanBatchOccupancy);
    EXPECT_EQ(a.peakBatch, b.peakBatch);
    EXPECT_EQ(a.kvPeakBytes, b.kvPeakBytes);
    EXPECT_EQ(a.kvUtilization, b.kvUtilization);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.recomputedTokens, b.recomputedTokens);
    EXPECT_EQ(a.kvBlockUtilization, b.kvBlockUtilization);
    EXPECT_EQ(a.kvFragmentationPeakBytes, b.kvFragmentationPeakBytes);
    EXPECT_EQ(a.decodeIterations, b.decodeIterations);
    EXPECT_EQ(a.decodeWindows, b.decodeWindows);
    EXPECT_EQ(a.admissionOrder, b.admissionOrder);
    EXPECT_EQ(a.preemptionOrder, b.preemptionOrder);
    EXPECT_EQ(a.noCompletions, b.noCompletions);
    EXPECT_EQ(a.faultEvents, b.faultEvents);
    EXPECT_EQ(a.killedInFlight, b.killedInFlight);
    EXPECT_EQ(a.retriesScheduled, b.retriesScheduled);
    EXPECT_EQ(a.droppedRequests, b.droppedRequests);
    EXPECT_EQ(a.goodputTokensPerSecond, b.goodputTokensPerSecond);
    EXPECT_EQ(a.sloAttainment, b.sloAttainment);
    EXPECT_EQ(a.retryOrder, b.retryOrder);
    EXPECT_EQ(a.dropOrder, b.dropOrder);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].id, b.requests[i].id);
        EXPECT_EQ(a.requests[i].arrivalSeconds,
                  b.requests[i].arrivalSeconds);
        EXPECT_EQ(a.requests[i].admissionSeconds,
                  b.requests[i].admissionSeconds);
        EXPECT_EQ(a.requests[i].firstTokenSeconds,
                  b.requests[i].firstTokenSeconds);
        EXPECT_EQ(a.requests[i].completionSeconds,
                  b.requests[i].completionSeconds);
        EXPECT_EQ(a.requests[i].decodeTokens, b.requests[i].decodeTokens);
        EXPECT_EQ(a.requests[i].kvBytes, b.requests[i].kvBytes);
        EXPECT_EQ(a.requests[i].retries, b.requests[i].retries);
        EXPECT_EQ(a.requests[i].sloMiss, b.requests[i].sloMiss);
        EXPECT_EQ(a.requests[i].joules, b.requests[i].joules);
    }
}

/** Every trace id appears exactly once among the completed requests. */
void
expectConservation(const ServingReport &report,
                   const std::vector<model::Request> &trace)
{
    EXPECT_EQ(report.droppedRequests, 0u);
    ASSERT_EQ(report.requests.size(), trace.size());
    std::map<std::size_t, std::size_t> seen;
    for (const RequestMetrics &r : report.requests)
        ++seen[r.id];
    for (const model::Request &r : trace) {
        EXPECT_EQ(seen[r.id], 1u) << "request " << r.id;
    }
}

TEST(Fleet, Dp1ReportIsBitIdenticalToFlatPath)
{
    Registry registry;
    auto flat = registry.make("mcbp:procs=32,tp=2");
    auto dp1 = registry.make("mcbp:procs=32,tp=2,dp=1");
    EXPECT_EQ(dp1->name(), flat->name());
    EXPECT_EQ(dp1->configSummary(), flat->configSummary());
    EXPECT_EQ(dp1->capabilities().replicas, 1u);
    EXPECT_EQ(dp1->capabilities().processors,
              flat->capabilities().processors);

    const auto trace = fleetTrace();
    ServingOptions opts;
    opts.maxBatch = 8;
    expectReportsIdentical(ServingSimulator(*dp1, opts).simulate(trace),
                           ServingSimulator(*flat, opts).simulate(trace));
}

TEST(Fleet, CapabilitiesAndNameScaleWithDp)
{
    Registry registry;
    auto flat = registry.make("mcbp:procs=2,tp=2");
    auto fleet = registry.make("mcbp:procs=2,tp=2,dp=4");
    EXPECT_EQ(fleet->capabilities().replicas, 4u);
    EXPECT_EQ(fleet->capabilities().processors,
              4u * flat->capabilities().processors);
    EXPECT_EQ(fleet->capabilities().kvShards,
              4u * flat->capabilities().kvShards);
    EXPECT_DOUBLE_EQ(fleet->capabilities().hbmCapacityBytes,
                     4.0 * flat->capabilities().hbmCapacityBytes);
    EXPECT_NE(fleet->name().find("[dp4]"), std::string::npos);
    // One request runs on exactly one replica: the plan is the
    // replica's plan (capacity multiplies, speed does not).
    const model::LlmConfig &m = model::findModel("OPT1B3");
    const model::Workload &t = model::findTask("MBPP");
    EXPECT_EQ(fleet->plan(m, t).decode.cycles,
              flat->plan(m, t).decode.cycles);
}

TEST(Fleet, RoutingConservesRequestsAcrossReplicas)
{
    Registry registry;
    const auto trace = fleetTrace(32);
    for (const char *spec :
         {"mcbp:dp=4,route=least", "mcbp:dp=4,route=rr"}) {
        auto accel = registry.make(spec);
        const auto *fleet =
            dynamic_cast<const FleetAccelerator *>(accel.get());
        ASSERT_NE(fleet, nullptr) << spec;
        ServingOptions opts;
        opts.maxBatch = 8;
        const FleetOutcome out = FleetRouter(*fleet, opts).simulate(trace);
        expectConservation(out.fleet, trace);
        EXPECT_EQ(out.reroutes, 0u) << spec; // healthy: no failover
        ASSERT_EQ(out.replicas.size(), 4u);
        ASSERT_EQ(out.assignment.size(), trace.size());
        std::vector<std::size_t> perReplica(4, 0);
        for (std::size_t r : out.assignment) {
            ASSERT_LT(r, 4u);
            ++perReplica[r];
        }
        std::size_t replicaTotal = 0;
        for (std::size_t r = 0; r < 4; ++r) {
            EXPECT_EQ(out.replicas[r].requests.size(), perReplica[r]);
            replicaTotal += out.replicas[r].requests.size();
        }
        EXPECT_EQ(replicaTotal, trace.size());
    }
    // Round-robin keeps healthy replicas balanced to within one.
    auto accel = registry.make("mcbp:dp=4,route=round-robin");
    const auto *fleet =
        dynamic_cast<const FleetAccelerator *>(accel.get());
    ASSERT_NE(fleet, nullptr);
    const FleetOutcome out = FleetRouter(*fleet, {8}).simulate(trace);
    std::vector<std::size_t> perReplica(4, 0);
    for (std::size_t r : out.assignment)
        ++perReplica[r];
    const auto [lo, hi] =
        std::minmax_element(perReplica.begin(), perReplica.end());
    EXPECT_LE(*hi - *lo, 1u);
}

TEST(Fleet, PermanentReplicaFailureDrainsOntoSurvivors)
{
    Registry registry;
    auto accel = registry.make("mcbp:tp=2,dp=2");
    const auto *fleet =
        dynamic_cast<const FleetAccelerator *>(accel.get());
    ASSERT_NE(fleet, nullptr);
    const auto trace = fleetTrace(24);

    ServingOptions healthyOpts;
    healthyOpts.maxBatch = 8;
    const FleetOutcome healthy =
        FleetRouter(*fleet, healthyOpts).simulate(trace);
    expectConservation(healthy.fleet, trace);

    // Chips 0,1 belong to replica 0; kill chip 2 => replica 1 dies
    // early (no degraded topology configured) and its queue must
    // drain onto replica 0 through the retry/backoff path.
    ServingOptions faulty = healthyOpts;
    faulty.faults.events.push_back(permanentFail(0.02, 2));
    const FleetOutcome out = FleetRouter(*fleet, faulty).simulate(trace);

    expectConservation(out.fleet, trace);
    EXPECT_GT(out.reroutes, 0u);
    EXPECT_GT(out.fleet.retriesScheduled, 0u);
    EXPECT_TRUE(std::any_of(out.fleet.requests.begin(),
                            out.fleet.requests.end(),
                            [](const RequestMetrics &r) {
                                return r.retries > 0;
                            }));
    // Everything rerouted landed on the survivor.
    for (std::size_t r : out.assignment)
        EXPECT_LT(r, 2u);
    EXPECT_GE(out.fleet.makespanSeconds, healthy.fleet.makespanSeconds);
    EXPECT_LE(out.fleet.goodputTokensPerSecond,
              healthy.fleet.goodputTokensPerSecond + 1e-9);
    // The failure shows up in the merged fault log, on the fleet-wide
    // chip index.
    EXPECT_TRUE(std::any_of(out.fleet.faultLog.begin(),
                            out.fleet.faultLog.end(),
                            [](const ServingReport::FaultImpact &f) {
                                return f.kind == "chip-fail" &&
                                       f.chip == 2 && f.permanent;
                            }));
}

TEST(Fleet, StepModeIdentityHoldsUnderFaultsAtDp2Pp2Tp2)
{
    Registry registry;
    auto accel = registry.make("mcbp-s:dp=2,pp=2,tp=2");
    const auto *fleet =
        dynamic_cast<const FleetAccelerator *>(accel.get());
    ASSERT_NE(fleet, nullptr);
    EXPECT_EQ(fleet->capabilities().replicas, 2u);
    const auto trace = fleetTrace(20);

    ServingOptions opts;
    opts.maxBatch = 8;
    // Replica chips are [0..3] and [4..7]: a transient kill on
    // replica 0 plus a permanent death of replica 1.
    sim::FaultEvent transient;
    transient.at = 0.01;
    transient.kind = sim::FaultKind::ChipFail;
    transient.chip = 1;
    transient.permanent = false;
    transient.repairAt = 0.03;
    opts.faults.events.push_back(transient);
    opts.faults.events.push_back(permanentFail(0.05, 6));

    ServingOptions coalesced = opts;
    coalesced.stepMode = StepMode::Coalesced;
    ServingOptions perToken = opts;
    perToken.stepMode = StepMode::PerToken;
    const FleetOutcome a = FleetRouter(*fleet, coalesced).simulate(trace);
    const FleetOutcome b = FleetRouter(*fleet, perToken).simulate(trace);

    // Decision logs verbatim...
    EXPECT_EQ(a.fleet.admissionOrder, b.fleet.admissionOrder);
    EXPECT_EQ(a.fleet.preemptionOrder, b.fleet.preemptionOrder);
    EXPECT_EQ(a.fleet.retryOrder, b.fleet.retryOrder);
    EXPECT_EQ(a.fleet.dropOrder, b.fleet.dropOrder);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.reroutes, b.reroutes);
    EXPECT_EQ(a.fleet.decodeIterations, b.fleet.decodeIterations);
    // ...aggregates to 1e-9 relative.
    const auto near = [](double x, double y) {
        const double scale = std::max({1.0, std::abs(x), std::abs(y)});
        EXPECT_NEAR(x, y, 1e-9 * scale);
    };
    near(a.fleet.makespanSeconds, b.fleet.makespanSeconds);
    near(a.fleet.busySeconds, b.fleet.busySeconds);
    near(a.fleet.tokensPerSecond, b.fleet.tokensPerSecond);
    near(a.fleet.goodputTokensPerSecond, b.fleet.goodputTokensPerSecond);
    near(a.fleet.joulesPerToken, b.fleet.joulesPerToken);
    near(a.fleet.p99LatencySeconds, b.fleet.p99LatencySeconds);
}

TEST(Fleet, PodSpecServesEndToEnd)
{
    Registry registry;
    auto pod = registry.make("mcbp-s:dp=4,pp=4,tp=8");
    EXPECT_EQ(pod->capabilities().replicas, 4u);
    EXPECT_EQ(pod->capabilities().kvShards, 4u * 4u * 8u);
    // Plans through the replica (OPT1B3: 24 layers / pp=4, 32 heads /
    // tp=8 both divide).
    const model::LlmConfig &m = model::findModel("OPT1B3");
    const model::Workload &t = model::findTask("MBPP");
    EXPECT_GT(pod->plan(m, t).decode.cycles, 0.0);

    const auto trace = fleetTrace(16);
    const ServingReport report =
        ServingSimulator(*pod, {8}).simulate(trace);
    EXPECT_EQ(report.requests.size(), trace.size());
    EXPECT_EQ(report.droppedRequests, 0u);
    EXPECT_GT(report.tokensPerSecond, 0.0);
    EXPECT_NE(report.accelerator.find("[dp4]"), std::string::npos);
}

TEST(Fleet, MalformedFleetSpecsAreRejected)
{
    Registry registry;
    EXPECT_THROW((void)registry.make("mcbp:dp=0"), std::runtime_error);
    // route= without replicas (or at dp=1) is a silent no-op: reject.
    EXPECT_THROW((void)registry.make("mcbp:route=rr"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:dp=1,route=least"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:dp=2,route=bogus"),
                 std::runtime_error);
    // Nested fleets are rejected at construction.
    FleetOptions two;
    two.dataParallel = 2;
    EXPECT_THROW(FleetAccelerator(registry.make("mcbp:dp=2"), two),
                 std::runtime_error);
    // The aggregated unknown-key message advertises the fleet keys.
    try {
        (void)registry.make("mcbp:dq=4");
        FAIL() << "expected unknown-key rejection";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("'dq'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("dp"), std::string::npos) << msg;
        EXPECT_NE(msg.find("route"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace mcbp::engine
