/**
 * @file
 * PlanCache invariants (the costing fast path's correctness contract):
 *  - singleflight: threads racing on a cold key run its compute
 *    exactly once and all read the same bits;
 *  - keying: identity, model and workload shape all separate entries —
 *    two accelerators (or two shapes) can never alias a cost;
 *  - the serving costing fan-out is bit-identical at every thread
 *    count (index-ordered join over cached metrics);
 *  - a second simulate() on the same simulator recomputes nothing
 *    (full cache reuse, including the paged recompute re-pricer).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "accel/plan_cache.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"
#include "model/llm_config.hpp"
#include "model/request.hpp"

namespace mcbp::accel {
namespace {

/** A distinguishable metric (only cycles matter to these tests). */
RunMetrics
metric(double cycles)
{
    RunMetrics rm;
    rm.prefill.cycles = cycles;
    return rm;
}

TEST(PlanCache, SingleflightComputesOncePerKey)
{
    PlanCache cache;
    const model::LlmConfig &m = model::findModel("OPT1B3");
    constexpr std::size_t kKeys = 4;
    constexpr std::size_t kThreads = 8;

    std::atomic<std::size_t> executed{0};
    std::vector<std::thread> threads;
    std::vector<std::vector<double>> seen(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t k = 0; k < kKeys; ++k) {
                model::Workload w = model::findTask("Dolly");
                w.promptLen = 100 + k; // distinct shape per key.
                const RunMetrics &rm =
                    cache.metrics("accel-A", m, w, [&, k] {
                        ++executed;
                        return metric(static_cast<double>(k));
                    });
                seen[t].push_back(rm.prefill.cycles);
            }
        });
    }
    for (std::thread &th : threads)
        th.join();

    // One compute per distinct key, no matter how many threads raced.
    EXPECT_EQ(executed.load(), kKeys);
    EXPECT_EQ(cache.computeCalls(), kKeys);
    EXPECT_EQ(cache.size(), kKeys);
    for (const auto &row : seen) {
        ASSERT_EQ(row.size(), kKeys);
        for (std::size_t k = 0; k < kKeys; ++k)
            EXPECT_EQ(row[k], static_cast<double>(k));
    }
}

TEST(PlanCache, KeySeparatesIdentityModelAndShape)
{
    PlanCache cache;
    const model::LlmConfig &opt = model::findModel("OPT1B3");
    const model::LlmConfig &llama = model::findModel("Llama7B");
    const model::Workload base = model::findTask("Dolly");

    auto compute_of = [](double v) {
        return [v] { return metric(v); };
    };
    EXPECT_EQ(cache.metrics("A", opt, base, compute_of(1)).prefill.cycles,
              1.0);
    // Same key -> cached, the second compute never runs.
    EXPECT_EQ(cache.metrics("A", opt, base, compute_of(99)).prefill.cycles,
              1.0);
    // Identity, model and each shape component separate entries.
    EXPECT_EQ(cache.metrics("B", opt, base, compute_of(2)).prefill.cycles,
              2.0);
    EXPECT_EQ(
        cache.metrics("A", llama, base, compute_of(3)).prefill.cycles,
        3.0);
    model::Workload longer = base;
    longer.promptLen += 1;
    EXPECT_EQ(
        cache.metrics("A", opt, longer, compute_of(4)).prefill.cycles,
        4.0);
    model::Workload prefillOnly = base;
    prefillOnly.decodeLen = 0;
    EXPECT_EQ(
        cache.metrics("A", opt, prefillOnly, compute_of(5)).prefill.cycles,
        5.0);
    EXPECT_EQ(cache.computeCalls(), 5u);
    EXPECT_EQ(cache.size(), 5u);
}

std::vector<model::Request>
trace(std::size_t n, const char *task = "Dolly")
{
    model::TraceConfig tc;
    tc.model = "OPT1B3";
    tc.task = task;
    tc.requests = n;
    tc.arrivalsPerSecond = 50.0;
    tc.seed = 23;
    return model::synthesizeTrace(tc);
}

void
expectCostsBitIdentical(const engine::ServingSimulator::CostedTrace &a,
                        const engine::ServingSimulator::CostedTrace &b)
{
    EXPECT_EQ(a.clockGhz, b.clockGhz);
    EXPECT_EQ(a.serialSeconds, b.serialSeconds);
    EXPECT_EQ(a.serialJoules, b.serialJoules);
    ASSERT_EQ(a.costs.size(), b.costs.size());
    for (std::size_t i = 0; i < a.costs.size(); ++i) {
        const engine::CostedRequest &x = a.costs[i];
        const engine::CostedRequest &y = b.costs[i];
        EXPECT_EQ(x.req->id, y.req->id);
        EXPECT_EQ(x.arrivalCycles, y.arrivalCycles);
        EXPECT_EQ(x.prefillCycles, y.prefillCycles);
        EXPECT_EQ(x.weightCyclesPerToken, y.weightCyclesPerToken);
        EXPECT_EQ(x.linearCyclesPerToken, y.linearCyclesPerToken);
        EXPECT_EQ(x.otherCyclesPerToken, y.otherCyclesPerToken);
        EXPECT_EQ(x.fixedCyclesPerToken, y.fixedCyclesPerToken);
        EXPECT_EQ(x.weightJoulesPerToken, y.weightJoulesPerToken);
        EXPECT_EQ(x.otherJoulesPerToken, y.otherJoulesPerToken);
        EXPECT_EQ(x.kvBytes, y.kvBytes);
        EXPECT_EQ(x.kvBytesPerToken, y.kvBytesPerToken);
        EXPECT_EQ(x.remainingTokens, y.remainingTokens);
    }
}

TEST(PlanCache, CostingBitIdenticalAcrossThreadCounts)
{
    engine::Registry registry;
    auto accel = registry.make("mcbp");
    const auto reqs = trace(48);

    engine::ServingOptions serial;
    serial.costingThreads = 1;
    const auto a = engine::ServingSimulator(*accel, serial).costTrace(reqs);

    for (std::size_t threads : {std::size_t{0}, std::size_t{8}}) {
        engine::ServingOptions opts;
        opts.costingThreads = threads;
        engine::ServingSimulator sim(*accel, opts);
        expectCostsBitIdentical(a, sim.costTrace(reqs));
        // Distinct shapes priced once each; repeats were cache hits.
        EXPECT_EQ(sim.planCache()->computeCalls(),
                  sim.planCache()->size());
        EXPECT_LE(sim.planCache()->size(), reqs.size());
    }
}

TEST(PlanCache, SecondSimulateRecomputesNothing)
{
    engine::Registry registry;
    auto accel = registry.make("mcbp");
    const auto reqs = trace(24, "MBPP");

    // A tight paged pool over a decode-heavy trace forces
    // preemptions, so the recompute re-pricer also runs through the
    // cache.
    engine::ServingOptions opts;
    opts.maxBatch = 16;
    opts.kvPolicy = engine::KvPolicy::Paged;
    engine::ServingSimulator probe(*accel, opts);
    opts.kvCapacityBytes = probe.simulate(reqs).kvPeakBytes / 4.0;
    engine::ServingSimulator sim(*accel, opts);

    const engine::ServingReport first = sim.simulate(reqs);
    EXPECT_GT(first.preemptions, 0u);
    const std::uint64_t warm = sim.planCache()->computeCalls();
    EXPECT_GT(warm, 0u);

    const engine::ServingReport second = sim.simulate(reqs);
    EXPECT_EQ(sim.planCache()->computeCalls(), warm);
    EXPECT_EQ(first.busySeconds, second.busySeconds);
    EXPECT_EQ(first.joulesPerToken, second.joulesPerToken);
    EXPECT_EQ(first.preemptions, second.preemptions);
}

} // namespace
} // namespace mcbp::accel
