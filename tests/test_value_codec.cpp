/** @file Unit + property tests for bstc/value_codec (RLE + Huffman). */
#include <gtest/gtest.h>

#include "bstc/value_codec.hpp"
#include "common/rng.hpp"
#include "model/synthetic.hpp"

namespace mcbp::bstc {
namespace {

Int8Matrix
randomInt8(std::uint64_t seed, std::size_t r, std::size_t c,
           double zero_prob)
{
    Rng rng(seed);
    Int8Matrix m(r, c);
    m.fill([&](std::size_t, std::size_t) -> std::int8_t {
        if (rng.bernoulli(zero_prob))
            return 0;
        return static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
    });
    return m;
}

TEST(Rle, RoundTripDenseAndSparse)
{
    for (double zp : {0.0, 0.1, 0.5, 0.95, 1.0}) {
        Int8Matrix w = randomInt8(
            static_cast<std::uint64_t>(zp * 100) + 1, 13, 77, zp);
        ValueCompressed blob = rleEncode(w);
        EXPECT_EQ(rleDecode(blob), w) << "zero prob " << zp;
    }
}

TEST(Rle, LongRunsSplit)
{
    Int8Matrix w(1, 100); // 100 zeros -> 7 run symbols
    ValueCompressed blob = rleEncode(w);
    EXPECT_EQ(blob.bitCount, 7u * 5u);
    EXPECT_EQ(rleDecode(blob), w);
    EXPECT_GT(valueCompressionRatio(blob), 20.0);
}

TEST(Rle, DenseDataExpands)
{
    Int8Matrix w(8, 64, 3); // no zeros: 9 bits per 8-bit value
    ValueCompressed blob = rleEncode(w);
    EXPECT_LT(valueCompressionRatio(blob), 1.0);
}

TEST(Huffman, RoundTripRandom)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        Int8Matrix w = randomInt8(seed, 17, 93, 0.3);
        ValueCompressed blob = huffmanEncode(w);
        EXPECT_EQ(huffmanDecode(blob), w) << "seed " << seed;
    }
}

TEST(Huffman, SingleSymbolMatrix)
{
    Int8Matrix w(4, 4, -7);
    ValueCompressed blob = huffmanEncode(w);
    EXPECT_EQ(huffmanDecode(blob), w);
    // 1 bit per value + header.
    EXPECT_EQ(blob.bitCount, 256u * 6u + 16u);
}

TEST(Huffman, SkewedDistributionCompresses)
{
    // Gaussian-quantized weights: low-magnitude values dominate, so
    // Huffman beats the raw 8 bits despite the header.
    Rng rng(5);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 1024, quant::BitWidth::Int8, profile);
    ValueCompressed blob = huffmanEncode(qw.values);
    EXPECT_GT(valueCompressionRatio(blob), 1.1);
    EXPECT_EQ(huffmanDecode(blob), qw.values);
}

TEST(Huffman, UniformDataBarelyCompresses)
{
    Int8Matrix w = randomInt8(6, 64, 256, 0.0);
    ValueCompressed blob = huffmanEncode(w);
    const double cr = valueCompressionRatio(blob);
    EXPECT_GT(cr, 0.85);
    EXPECT_LT(cr, 1.1);
}

TEST(Huffman, EmptyMatrixFatal)
{
    Int8Matrix w;
    EXPECT_THROW(huffmanEncode(w), std::runtime_error);
}

TEST(ValueCodec, BstcMotivatingComparison)
{
    // Section 2.3 / Fig 5(c): on LLM-like weights value-level coding is
    // materially weaker than what the bit dimension offers. Huffman here
    // lands well under the ~2x the high-order planes give BSTC.
    Rng rng(7);
    model::WeightProfile profile;
    profile.dynamicRange = 16.0;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 2048, quant::BitWidth::Int8, profile);
    const double huff =
        valueCompressionRatio(huffmanEncode(qw.values));
    const double rle = valueCompressionRatio(rleEncode(qw.values));
    EXPECT_LT(rle, 1.05);  // few exact zeros -> RLE useless
    EXPECT_LT(huff, 2.0);  // entropy of the value alphabet
    EXPECT_GT(huff, 1.0);
}

} // namespace
} // namespace mcbp::bstc
