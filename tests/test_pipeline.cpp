/**
 * @file
 * Pipeline-parallel composition and execution-plan invariants:
 *  - plan() is the single costing source: run() folds it bit-for-bit
 *    on all three adapter families, and the plan's layer segments
 *    partition the stack and slice back to the totals;
 *  - a pp=1 PipelineAccelerator is bit-identical to the bare adapter,
 *    down to the serving report;
 *  - pp=N serving conserves requests and tokens;
 *  - the prefill fill/drain bubble shrinks monotonically in mb=, and
 *    micro-batched prefill beats unbatched at pp=4;
 *  - pp= composes with tp= (registry grammar, capability
 *    introspection, manual-composition parity);
 *  - the paged KV budget is respected on a pipelined fleet, with the
 *    per-stage pool advertised through kvShards;
 *  - RunMetrics::processors accounting semantics are pinned;
 *  - the registry reports ALL unknown keys of a spec in one message.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "engine/cluster.hpp"
#include "engine/pipeline.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"
#include "model/llm_config.hpp"

namespace mcbp::engine {
namespace {

const model::LlmConfig &llama7b() { return model::findModel("Llama7B"); }

std::vector<model::Request>
denseTrace(std::size_t n = 24, const char *model = "Llama7B",
           std::uint64_t seed = 11)
{
    model::TraceConfig tc;
    tc.model = model;
    tc.task = "MBPP";
    tc.requests = n;
    tc.arrivalsPerSecond = 50.0;
    tc.seed = seed;
    return model::synthesizeTrace(tc);
}

void
expectPhaseIdentical(const accel::PhaseMetrics &a,
                     const accel::PhaseMetrics &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.weightStreamCycles, b.weightStreamCycles);
    EXPECT_EQ(a.linearWorkCycles, b.linearWorkCycles);
    EXPECT_EQ(a.memorySerialized, b.memorySerialized);
    EXPECT_EQ(a.fixedStepCycles, b.fixedStepCycles);
    EXPECT_EQ(a.denseMacs, b.denseMacs);
    EXPECT_EQ(a.traffic.total(), b.traffic.total());
    EXPECT_EQ(a.energy.totalPj(), b.energy.totalPj());
}

// ---- The plan API ------------------------------------------------------

TEST(ExecutionPlan, RunFoldsPlanBitForBitOnEveryAdapterFamily)
{
    Registry registry;
    const model::Workload &task = model::findTask("MBPP");
    for (const char *spec : {"mcbp", "spatten", "a100"}) {
        auto accel = registry.make(spec);
        const accel::ExecutionPlan plan = accel->plan(llama7b(), task);
        const accel::RunMetrics folded = plan.fold();
        const accel::RunMetrics run = accel->run(llama7b(), task);
        EXPECT_EQ(run.accelerator, folded.accelerator) << spec;
        EXPECT_EQ(run.clockGhz, folded.clockGhz) << spec;
        EXPECT_EQ(run.processors, folded.processors) << spec;
        expectPhaseIdentical(run.prefill, folded.prefill);
        expectPhaseIdentical(run.decode, folded.decode);
    }
}

TEST(ExecutionPlan, SegmentsPartitionTheStackAndSliceExactly)
{
    Registry registry;
    const model::Workload &task = model::findTask("Dolly");
    for (const char *spec : {"mcbp", "sofa", "a100", "mcbp:tp=2"}) {
        auto accel = registry.make(spec);
        const accel::ExecutionPlan plan = accel->plan(llama7b(), task);
        ASSERT_FALSE(plan.segments.empty()) << spec;
        EXPECT_EQ(plan.modelLayers, llama7b().layers);

        // Segments tile [0, layers) contiguously.
        std::size_t next = 0;
        for (const accel::PlanSegment &seg : plan.segments) {
            EXPECT_EQ(seg.firstLayer, next) << spec;
            EXPECT_GT(seg.layerCount, 0u) << spec;
            next += seg.layerCount;
        }
        EXPECT_EQ(next, plan.modelLayers) << spec;

        // A full-stack slice reproduces the totals (scaling by 1.0 is
        // the bit-exact identity on the single-segment plans).
        const accel::PlanSegment whole =
            plan.slice(0, plan.modelLayers);
        EXPECT_EQ(whole.prefill.cycles, plan.prefill.cycles) << spec;
        EXPECT_EQ(whole.decode.cycles, plan.decode.cycles) << spec;
        EXPECT_EQ(whole.prefill.energy.totalPj(),
                  plan.prefill.energy.totalPj())
            << spec;

        // Half-stack slices sum (near-exactly) to the totals, and the
        // weight-stream vs compute split scales with the layer share.
        const std::size_t half = plan.modelLayers / 2;
        const accel::PlanSegment lo = plan.slice(0, half);
        const accel::PlanSegment hi =
            plan.slice(half, plan.modelLayers - half);
        EXPECT_NEAR(lo.prefill.cycles + hi.prefill.cycles,
                    plan.prefill.cycles,
                    1e-9 * std::max(1.0, plan.prefill.cycles))
            << spec;
        EXPECT_NEAR(lo.decode.weightStreamCycles +
                        hi.decode.weightStreamCycles,
                    plan.decode.weightStreamCycles,
                    1e-9 *
                        std::max(1.0, plan.decode.weightStreamCycles))
            << spec;

        // Degenerate slices are rejected.
        EXPECT_THROW((void)plan.slice(0, 0), std::runtime_error);
        EXPECT_THROW((void)plan.slice(0, plan.modelLayers + 1),
                     std::runtime_error);
    }
}

// ---- pp=1 identity -----------------------------------------------------

TEST(Pipeline, Pp1IsBitIdenticalToBareAdapter)
{
    Registry registry;
    auto bare = registry.make("mcbp:procs=148");
    auto pp1 = registry.make("mcbp:procs=148,pp=1");
    EXPECT_EQ(pp1->name(), bare->name());
    EXPECT_EQ(pp1->configSummary(), bare->configSummary());
    EXPECT_EQ(pp1->capabilities().pipelineStages, 1u);
    EXPECT_EQ(pp1->capabilities().kvShards, 1u);

    const model::Workload &task = model::findTask("MBPP");
    const accel::RunMetrics a = bare->run(llama7b(), task);
    const accel::RunMetrics b = pp1->run(llama7b(), task);
    EXPECT_EQ(a.accelerator, b.accelerator);
    EXPECT_EQ(a.processors, b.processors);
    expectPhaseIdentical(a.prefill, b.prefill);
    expectPhaseIdentical(a.decode, b.decode);
}

TEST(Pipeline, Pp1ServingReportIsBitForBit)
{
    Registry registry;
    auto bare = registry.make("mcbp");
    auto pp1 = registry.make("mcbp:pp=1");
    const auto trace = denseTrace();
    const ServingReport a = ServingSimulator(*bare, {8}).simulate(trace);
    const ServingReport b = ServingSimulator(*pp1, {8}).simulate(trace);
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.busySeconds, b.busySeconds);
    EXPECT_EQ(a.joulesPerToken, b.joulesPerToken);
    EXPECT_EQ(a.p99LatencySeconds, b.p99LatencySeconds);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].completionSeconds,
                  b.requests[i].completionSeconds);
        EXPECT_EQ(a.requests[i].joules, b.requests[i].joules);
    }
}

// ---- pp=N behaviour ----------------------------------------------------

TEST(Pipeline, StagePartitioningConservesWorkAndAddsLinkEnergy)
{
    Registry registry;
    const model::Workload &task = model::findTask("MBPP");
    const accel::RunMetrics single =
        registry.make("mcbp")->run(llama7b(), task);
    for (std::size_t pp : {2u, 4u, 8u}) {
        auto pipe = registry.make("mcbp:pp=" + std::to_string(pp) +
                                  ",mb=8");
        const accel::RunMetrics rm = pipe->run(llama7b(), task);
        EXPECT_EQ(rm.processors, pp);
        // Logical work is conserved by stage partitioning.
        EXPECT_EQ(rm.prefill.denseMacs, single.prefill.denseMacs);
        EXPECT_EQ(rm.decode.denseMacs, single.decode.denseMacs);
        // Micro-batched prefill beats the single chip (stages overlap)
        // but never the ideal 1/pp split (fill/drain is real).
        EXPECT_LT(rm.prefill.cycles, single.prefill.cycles);
        EXPECT_GT(rm.prefill.cycles, single.prefill.cycles /
                                         static_cast<double>(pp));
        // The decode weight stream parallelizes across per-stage HBM.
        EXPECT_LT(rm.decode.weightStreamCycles,
                  single.decode.weightStreamCycles);
        // Boundary links are priced in energy; total energy never
        // drops below the single chip (same work + transfer floor).
        EXPECT_GT(rm.decode.energy.interconnectPj, 0.0);
        EXPECT_GE(rm.joules(), single.joules());
    }
}

TEST(Pipeline, PpMustDivideLayerCount)
{
    Registry registry;
    auto pipe = registry.make("mcbp:pp=5"); // Llama7B has 32 layers.
    EXPECT_THROW((void)pipe->run(llama7b(), model::findTask("MBPP")),
                 std::runtime_error);
}

TEST(Pipeline, BubbleFractionShrinksMonotonicallyInMb)
{
    Registry registry;
    const model::Workload &task = model::findTask("Wikilingua");
    double prev_bubble = 1.0;
    double prev_cycles = 0.0;
    bool first = true;
    for (std::size_t mb : {1u, 2u, 4u, 8u, 16u}) {
        auto accel = registry.make("mcbp:procs=148,pp=4,mb=" +
                                   std::to_string(mb));
        const auto *pipe =
            dynamic_cast<const PipelineAccelerator *>(accel.get());
        ASSERT_NE(pipe, nullptr);
        const PipelineAccelerator::Timing t =
            pipe->prefillTiming(llama7b(), task);
        EXPECT_GT(t.totalCycles, 0.0);
        EXPECT_GE(t.bubbleFraction, 0.0);
        EXPECT_LT(t.bubbleFraction, 1.0);
        if (!first) {
            EXPECT_LT(t.bubbleFraction, prev_bubble) << "mb=" << mb;
            EXPECT_LT(t.totalCycles, prev_cycles) << "mb=" << mb;
        }
        prev_bubble = t.bubbleFraction;
        prev_cycles = t.totalCycles;
        first = false;
        // The timing decomposition is the plan's prefill wall clock.
        EXPECT_DOUBLE_EQ(
            t.totalCycles,
            accel->plan(llama7b(), task).prefill.cycles);
    }
}

TEST(Pipeline, ServingConservesRequestsAndTokens)
{
    Registry registry;
    auto pipe = registry.make("mcbp:pp=4,mb=4");
    const auto trace = denseTrace();
    const ServingReport r =
        ServingSimulator(*pipe, {8}).simulate(trace);
    ASSERT_EQ(r.requests.size(), trace.size());
    std::vector<bool> seen(trace.size(), false);
    std::size_t tokens = 0, expected = 0;
    for (const RequestMetrics &m : r.requests) {
        ASSERT_LT(m.id, seen.size());
        EXPECT_FALSE(seen[m.id]);
        seen[m.id] = true;
        EXPECT_GT(m.completionSeconds, m.arrivalSeconds);
        tokens += m.decodeTokens;
    }
    for (const model::Request &req : trace)
        expected += req.decodeLen;
    EXPECT_EQ(tokens, expected);
    // Batching still wins on a pipeline (the iteration overlaps
    // distinct requests' traversals across stages).
    EXPECT_GT(r.batchingSpeedup(), 1.0);
}

// ---- pp x tp composition -----------------------------------------------

TEST(Pipeline, ComposesWithClusterAndMatchesManualComposition)
{
    Registry registry;
    auto spec = registry.make("mcbp:pp=2,tp=2,mb=4");

    // Capability introspection composes multiplicatively.
    auto bare = registry.make("mcbp");
    const Capabilities c = spec->capabilities();
    EXPECT_EQ(c.processors, 4u);
    EXPECT_EQ(c.kvShards, 4u);
    EXPECT_EQ(c.pipelineStages, 2u);
    EXPECT_DOUBLE_EQ(c.hbmCapacityBytes,
                     4.0 * bare->capabilities().hbmCapacityBytes);
    EXPECT_NE(spec->name().find("tp2"), std::string::npos);
    EXPECT_NE(spec->name().find("pp2"), std::string::npos);

    // The registry's composition order is Pipeline(Cluster(chip)):
    // hand-building the same stack is bit-identical.
    ClusterOptions cl;
    cl.tensorParallel = 2;
    PipelineOptions pl;
    pl.pipelineParallel = 2;
    pl.microBatches = 4;
    PipelineAccelerator manual(
        std::make_unique<ClusterAccelerator>(registry.make("mcbp"), cl),
        pl);
    const model::Workload &task = model::findTask("MBPP");
    const accel::RunMetrics a = spec->run(llama7b(), task);
    const accel::RunMetrics b = manual.run(llama7b(), task);
    EXPECT_EQ(a.processors, b.processors);
    expectPhaseIdentical(a.prefill, b.prefill);
    expectPhaseIdentical(a.decode, b.decode);

    // The reverse order stays rejected: a cluster cannot shard a
    // pipeline (the 1/N rescale would corrupt the hop floors).
    ClusterOptions outer;
    outer.tensorParallel = 2;
    EXPECT_THROW(ClusterAccelerator(registry.make("mcbp:pp=2"), outer),
                 std::runtime_error);
    // And pipelines do not nest: one pp= axis.
    PipelineOptions nested;
    nested.pipelineParallel = 2;
    EXPECT_THROW(
        PipelineAccelerator(registry.make("mcbp:pp=2"), nested),
        std::runtime_error);
}

// ---- KV budget on a pipelined fleet ------------------------------------

TEST(Pipeline, PagedKvBudgetRespectedPerStage)
{
    Registry registry;
    auto pipe = registry.make("mcbp:pp=4");
    EXPECT_EQ(pipe->capabilities().kvShards, 4u);
    const auto trace = denseTrace();

    const ServingReport free_run =
        ServingSimulator(*pipe, {16}).simulate(trace);
    ASSERT_GT(free_run.kvPeakBytes, 0.0);

    ServingOptions opts;
    opts.maxBatch = 16;
    opts.kvPolicy = KvPolicy::Paged;
    opts.kvCapacityBytes = free_run.kvPeakBytes / 3.0;
    const ServingReport bounded =
        ServingSimulator(*pipe, opts).simulate(trace);
    // The aggregate ledger (= 4 symmetric per-stage pools) never
    // exceeds the budget, so no stage's own pool overflows either.
    EXPECT_LE(bounded.kvPeakBytes, opts.kvCapacityBytes);
    EXPECT_EQ(bounded.requests.size(), trace.size());
    EXPECT_GT(bounded.kvUtilization, 0.0);
}

// ---- RunMetrics::processors accounting (pinned semantics) --------------

TEST(Report, ProcessorsSemanticsArePinned)
{
    // Per-phase cycles are the gang's critical path: seconds() must be
    // processor-count-invariant. Per-phase energy is per chip:
    // joules() multiplies by the count. Logical work is the gang
    // total: gops() needs no processor factor.
    accel::RunMetrics rm;
    rm.clockGhz = 1.0;
    rm.prefill.cycles = 1e9;
    rm.prefill.energy.computePj = 5e12;
    rm.prefill.denseMacs = 1e12;
    rm.decode.cycles = 1e9;
    rm.decode.energy.dramPj = 3e12;

    rm.processors = 1;
    const double s1 = rm.seconds();
    const double j1 = rm.joules();
    const double g1 = rm.gops();
    rm.processors = 4;
    EXPECT_DOUBLE_EQ(rm.seconds(), s1);
    EXPECT_DOUBLE_EQ(rm.joules(), 4.0 * j1);
    EXPECT_DOUBLE_EQ(rm.gops(), g1);
    EXPECT_DOUBLE_EQ(rm.watts(), 4.0 * j1 / s1);

    // The composed topologies follow the same contract: a tp=2,pp=2
    // stack reports 4 chips and its joules() is 4 x the per-chip sum.
    Registry registry;
    auto stack = registry.make("mcbp:pp=2,tp=2");
    const accel::RunMetrics run =
        stack->run(llama7b(), model::findTask("MBPP"));
    EXPECT_EQ(run.processors, 4u);
    EXPECT_DOUBLE_EQ(run.joules(),
                     (run.prefill.energy.totalPj() +
                      run.decode.energy.totalPj()) *
                         1e-12 * 4.0);
}

// ---- Registry grammar --------------------------------------------------

TEST(Pipeline, RegistrySpecGrammarValidates)
{
    Registry registry;
    for (const char *spec :
         {"mcbp:pp=2", "mcbp:procs=148,pp=4,mb=8",
          "mcbp-s:pp=4,tp=2,mb=8,linkgbs=600", "a100:pp=2,linkpj=5",
          "spatten:pp=2,hops=50", "mcbp:pp=1"})
        EXPECT_NE(registry.make(spec), nullptr) << spec;
    EXPECT_THROW((void)registry.make("mcbp:pp=0"), std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:pp=2.5"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:pp=2,mb=0"),
                 std::runtime_error);
    // mb= without a pipeline (or at pp=1) is a silent no-op: rejected
    // by presence, like the link knobs.
    EXPECT_THROW((void)registry.make("mcbp:mb=8"), std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:pp=1,mb=8"),
                 std::runtime_error);
    // Link knobs are valid with either fabric, but still rejected
    // when neither exists (the tp=1 rejection is kept).
    EXPECT_NE(registry.make("mcbp:pp=2,linkgbs=600"), nullptr);
    EXPECT_THROW((void)registry.make("mcbp:tp=1,linkgbs=600"),
                 std::runtime_error);
    EXPECT_THROW((void)registry.make("mcbp:pp=1,linkgbs=600"),
                 std::runtime_error);
}

TEST(Pipeline, UnknownKeysAreCollectedIntoOneMessage)
{
    Registry registry;
    try {
        (void)registry.make("mcbp:foo=1,alpha=0.5,bar=2");
        FAIL() << "expected a spec error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        // Both unknown keys in one message, plus the accepted list.
        EXPECT_NE(msg.find("'foo'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'bar'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("accepted keys"), std::string::npos) << msg;
        EXPECT_NE(msg.find("procs"), std::string::npos) << msg;
        EXPECT_NE(msg.find("pp"), std::string::npos) << msg;
    }
    // A design-inapplicable key is "unknown" for that design and
    // names what IS accepted (topology keys only, for systolic).
    try {
        (void)registry.make("systolic:alpha=0.5");
        FAIL() << "expected a spec error";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("'alpha'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("accepted keys"), std::string::npos) << msg;
        EXPECT_NE(msg.find("tp"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace mcbp::engine
