/** @file Unit tests for common/rng: determinism and distribution sanity. */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace mcbp {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntervalRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntBoundsAndCoverage)
{
    Rng rng(9);
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 20000; ++i) {
        const auto v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        ++hits[v];
    }
    for (int h : hits)
        EXPECT_GT(h, 1500); // ~2000 expected each
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ZipfSkew)
{
    Rng rng(19);
    std::vector<int> hits(100, 0);
    for (int i = 0; i < 20000; ++i)
        ++hits[rng.zipf(100, 1.2)];
    // Rank 0 must dominate rank 50 under a Zipf law.
    EXPECT_GT(hits[0], hits[50] * 5);
}

TEST(Rng, ZipfBounds)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.zipf(7, 1.0), 7u);
    EXPECT_EQ(rng.zipf(0, 1.0), 0u);
}

TEST(Rng, SplitIndependence)
{
    Rng parent(29);
    Rng child = parent.split();
    // Child stream differs from the parent's continued stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 4);
}

} // namespace
} // namespace mcbp
