/** @file Unit tests for brcr/cam: the CAM fast-match functional model. */
#include <gtest/gtest.h>

#include "brcr/cam.hpp"
#include "common/rng.hpp"

namespace mcbp::brcr {
namespace {

/** Read bit c from a packed bitmap. */
bool
bitmapBit(const std::vector<std::uint64_t> &bm, std::size_t c)
{
    return (bm[c >> 6] >> (c & 63)) & 1u;
}

TEST(Cam, MatchesDirectComparison)
{
    Rng rng(1);
    for (std::size_t m : {2u, 4u, 6u, 8u}) {
        CamMatchUnit cam(m, 64);
        std::vector<std::uint32_t> patterns(64);
        for (auto &p : patterns)
            p = static_cast<std::uint32_t>(rng.uniformInt(1u << m));
        cam.load(patterns);
        for (std::uint32_t key = 0; key < (1u << m); ++key) {
            auto bm = cam.search(key);
            for (std::size_t c = 0; c < 64; ++c) {
                const bool expected = key != 0 && patterns[c] == key;
                EXPECT_EQ(bitmapBit(bm, c), expected)
                    << "m=" << m << " key=" << key << " col=" << c;
            }
        }
    }
}

TEST(Cam, Fig14Example)
{
    // Fig 14: patterns {data0..data3}, searching 0001 matches data0 and
    // data3 producing bitmap 1001.
    CamMatchUnit cam(4, 4);
    cam.load({0b0001, 0b1001, 0b0100, 0b0001});
    auto bm = cam.search(0b0001);
    EXPECT_TRUE(bitmapBit(bm, 0));
    EXPECT_FALSE(bitmapBit(bm, 1));
    EXPECT_FALSE(bitmapBit(bm, 2));
    EXPECT_TRUE(bitmapBit(bm, 3));
}

TEST(Cam, ZeroKeyClockGated)
{
    CamMatchUnit cam(4, 8);
    cam.load({0, 0, 1, 2});
    auto bm = cam.search(0);
    for (std::size_t c = 0; c < 8; ++c)
        EXPECT_FALSE(bitmapBit(bm, c));
    EXPECT_EQ(cam.stats().gatedSearches, 1u);
    EXPECT_EQ(cam.stats().searches, 0u);
}

TEST(Cam, StatsAccumulate)
{
    CamMatchUnit cam(4, 16);
    std::vector<std::uint32_t> p(16, 0b0101);
    cam.load(p);
    EXPECT_EQ(cam.stats().loads, 16u);
    cam.search(0b0101);
    cam.search(0b1010);
    EXPECT_EQ(cam.stats().searches, 2u);
    EXPECT_EQ(cam.stats().matches, 16u);
}

TEST(Cam, ReloadReplacesContents)
{
    CamMatchUnit cam(4, 4);
    cam.load({1, 1, 1, 1});
    cam.load({2, 2, 2, 2});
    auto bm1 = cam.search(1);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_FALSE(bitmapBit(bm1, c));
    auto bm2 = cam.search(2);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_TRUE(bitmapBit(bm2, c));
}

TEST(Cam, PartialLoad)
{
    CamMatchUnit cam(4, 64);
    cam.load({7, 7});
    EXPECT_EQ(cam.loadedColumns(), 2u);
    auto bm = cam.search(7);
    EXPECT_TRUE(bitmapBit(bm, 0));
    EXPECT_TRUE(bitmapBit(bm, 1));
    for (std::size_t c = 2; c < 64; ++c)
        EXPECT_FALSE(bitmapBit(bm, c));
}

TEST(Cam, InvalidConfigurationsFatal)
{
    EXPECT_THROW(CamMatchUnit(0, 16), std::runtime_error);
    EXPECT_THROW(CamMatchUnit(3, 16), std::runtime_error); // odd m
    EXPECT_THROW(CamMatchUnit(10, 16), std::runtime_error);
    EXPECT_THROW(CamMatchUnit(4, 0), std::runtime_error);
}

TEST(Cam, OverflowFatal)
{
    CamMatchUnit cam(4, 2);
    EXPECT_THROW(cam.load({1, 2, 3}), std::runtime_error);
}

TEST(Cam, WideKeyPanics)
{
    CamMatchUnit cam(4, 4);
    cam.load({1});
    EXPECT_THROW(cam.search(16), std::logic_error);
}

} // namespace
} // namespace mcbp::brcr
