/** @file Unit tests for bitslice/sparsity: the paper's Fig 4/5 analyses. */
#include <gtest/gtest.h>

#include "bitslice/sparsity.hpp"
#include "common/rng.hpp"
#include "model/synthetic.hpp"

namespace mcbp::bitslice {
namespace {

/** The paper's Fig 4(a) 2-bit example matrix (4 rows x 5 cols). */
Int8Matrix
fig4Matrix()
{
    // Values: row-major from the figure's 2-bit weights.
    const int vals[4][5] = {{0, 3, 0, 0, 3},
                            {0, 1, 0, 1, 3},
                            {1, 3, 3, 1, 1},
                            {1, 0, 1, 1, 2}};
    Int8Matrix w(4, 5);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            w.at(r, c) = static_cast<std::int8_t>(vals[r][c]);
    return w;
}

TEST(Sparsity, Fig4ValueVsBitZeros)
{
    // Fig 4(a): 6 zero values; the MSB slice has 14 zeros (70% sparsity).
    Int8Matrix w = fig4Matrix();
    SparsityReport rep = analyzeSparsity(w, quant::BitWidth::Int4);
    EXPECT_NEAR(rep.valueSparsity, 6.0 / 20.0, 1e-9);
    // Plane 2 of an INT4 decomposition is the figure's MSB slice.
    EXPECT_NEAR(rep.planeSparsity[1], 14.0 / 20.0, 1e-9);
}

TEST(Sparsity, AllZeroMatrix)
{
    Int8Matrix w(4, 4);
    SparsityReport rep = analyzeSparsity(w, quant::BitWidth::Int8);
    EXPECT_DOUBLE_EQ(rep.valueSparsity, 1.0);
    EXPECT_DOUBLE_EQ(rep.meanBitSparsity, 1.0);
    for (double s : rep.planeSparsity)
        EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(Sparsity, BitSparsityExceedsValueSparsityOnGaussian)
{
    // The central claim of Fig 5(d): bit sparsity >> value sparsity.
    Rng rng(1);
    model::WeightProfile profile;
    profile.dynamicRange = 16.0;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 1024, quant::BitWidth::Int8, profile);
    SparsityReport rep = analyzeSparsity(qw.values, quant::BitWidth::Int8);
    EXPECT_GT(rep.meanBitSparsity, 5.0 * rep.valueSparsity);
    EXPECT_GT(rep.meanBitSparsity, 0.55);
    EXPECT_LT(rep.meanBitSparsity, 0.92);
}

TEST(Sparsity, HighPlanesSparser)
{
    // Gaussian-like weights: MSB magnitude plane sparser than LSB plane
    // (the premise of BSTC's plane policy, Fig 8c).
    Rng rng(2);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 2048, quant::BitWidth::Int8, profile);
    SparsityReport rep = analyzeSparsity(qw.values, quant::BitWidth::Int8);
    EXPECT_GT(rep.planeSparsity[6], rep.planeSparsity[0]);
    EXPECT_GT(rep.planeSparsity[6], 0.85);
}

TEST(Repetition, SmallerGroupsRepeatMore)
{
    // Fig 5(a): the pigeonhole effect — smaller m, higher repetition.
    Rng rng(3);
    BitPlane plane(16, 2048);
    for (std::size_t r = 0; r < 16; ++r)
        for (std::size_t c = 0; c < 2048; ++c)
            plane.set(r, c, rng.bernoulli(0.3));
    RepetitionReport m4 = measureRepetition(plane, 4);
    RepetitionReport m8 = measureRepetition(plane, 8);
    // Mergeability = 1 - distinct/total: zero columns are skipped
    // outright and every duplicate of a seen pattern merges for free.
    const auto mergeable = [](const RepetitionReport &r) {
        return 1.0 - static_cast<double>(r.distinctColumns) /
                         static_cast<double>(r.totalColumns);
    };
    EXPECT_GT(mergeable(m4), mergeable(m8));
}

TEST(Repetition, DistinctBoundedByPatternSpace)
{
    Rng rng(4);
    BitPlane plane(4, 4096);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4096; ++c)
            plane.set(r, c, rng.bernoulli(0.5));
    RepetitionReport rep = measureRepetition(plane, 4);
    // At most 15 distinct non-zero patterns per group (pigeonhole).
    EXPECT_LE(rep.distinctColumns, 15u);
    EXPECT_GT(rep.repeatedColumns(), 3000u);
}

TEST(Repetition, ZeroColumnsCounted)
{
    BitPlane plane(4, 10); // all zero
    RepetitionReport rep = measureRepetition(plane, 4);
    EXPECT_EQ(rep.zeroColumns, 10u);
    EXPECT_EQ(rep.distinctColumns, 0u);
    EXPECT_EQ(rep.repeatedColumns(), 0u);
}

TEST(MergeCost, GroupBeatsNaive)
{
    Rng rng(5);
    BitPlane plane(32, 2048);
    for (std::size_t r = 0; r < 32; ++r)
        for (std::size_t c = 0; c < 2048; ++c)
            plane.set(r, c, rng.bernoulli(0.3));
    MergeCost cost = compareMergeStrategies(plane, 4);
    EXPECT_LT(cost.groupMergeAdds, cost.naiveAdds);
    // Fig 5(b): group-wise merge also beats the full-size merge.
    EXPECT_LT(cost.groupMergeAdds, cost.fullMergeAdds);
    // Dense accounting: dense >= sparse-naive; the vanilla full-size
    // merge on a dense datapath barely improves on dense when
    // full-column duplicates are rare (the pigeonhole argument).
    EXPECT_EQ(cost.denseAdds, 32u * 2048u);
    EXPECT_GT(cost.fullMergeDenseAdds, cost.denseAdds / 2);
    EXPECT_LT(cost.groupMergeAdds, cost.fullMergeDenseAdds / 3);
}

TEST(MergeCost, FullMergeWinsOnDuplicatedColumns)
{
    // A plane made of one repeated column: full-size merge collapses it.
    BitPlane plane(16, 256);
    for (std::size_t r = 0; r < 16; r += 2)
        for (std::size_t c = 0; c < 256; ++c)
            plane.set(r, c, true);
    MergeCost cost = compareMergeStrategies(plane, 4);
    // naive: 8 ones per column x 256; full merge: 255 merge adds + 8.
    EXPECT_EQ(cost.naiveAdds, 8u * 256u);
    EXPECT_EQ(cost.fullMergeAdds, 255u + 8u);
    EXPECT_LT(cost.fullMergeAdds, cost.naiveAdds);
}

TEST(MergeCost, GoldenCountsOnSyntheticPlane)
{
    // Pinned from the original per-bit get() implementation on plane 5
    // of a fixed synthetic INT8 tile: the word-parallel ColumnKey
    // rewrite must reproduce every count exactly.
    Rng rng(18);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 1024, quant::BitWidth::Int8, profile);
    SignMagnitude sm = decompose(qw.values, quant::BitWidth::Int8);
    const MergeCost cost = compareMergeStrategies(sm.magnitude[5], 4);
    EXPECT_EQ(cost.denseAdds, 65536u);
    EXPECT_EQ(cost.naiveAdds, 5495u);
    EXPECT_EQ(cost.fullMergeAdds, 5421u);
    EXPECT_EQ(cost.fullMergeDenseAdds, 63646u);
    EXPECT_EQ(cost.groupMergeAdds, 4903u);
}

TEST(MergeCost, PartialLastWordColumnsCounted)
{
    // Columns past the final 64-aligned boundary must dedup too (the
    // word-parallel walk masks by the plane's true width).
    BitPlane plane(8, 70);
    for (std::size_t c = 0; c < 70; ++c)
        plane.set(2, c, true); // 70 identical single-bit columns
    const MergeCost cost = compareMergeStrategies(plane, 4);
    EXPECT_EQ(cost.naiveAdds, 70u);
    // One distinct column (1 recon add) + 69 merge adds.
    EXPECT_EQ(cost.fullMergeAdds, 69u + 1u);
}

TEST(MergeCost, EmptyPlaneCostsNothing)
{
    BitPlane plane(8, 64);
    MergeCost cost = compareMergeStrategies(plane, 4);
    EXPECT_EQ(cost.naiveAdds, 0u);
    EXPECT_EQ(cost.fullMergeAdds, 0u);
    EXPECT_EQ(cost.groupMergeAdds, 0u);
}

} // namespace
} // namespace mcbp::bitslice
