/** @file Unit tests for quant/gemm: reference kernels and quant folding. */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "quant/calibration.hpp"
#include "quant/gemm.hpp"

namespace mcbp::quant {
namespace {

Int8Matrix
randomInt8(std::uint64_t seed, std::size_t r, std::size_t c)
{
    Rng rng(seed);
    Int8Matrix m(r, c);
    m.fill([&](std::size_t, std::size_t) {
        return static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
    });
    return m;
}

TEST(Gemm, IntIdentity)
{
    Int8Matrix eye(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        eye.at(i, i) = 1;
    Int8Matrix x = randomInt8(1, 3, 4);
    Int32Matrix y = gemmInt(eye, x);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(y.at(r, c), x.at(r, c));
}

TEST(Gemm, IntSmallKnown)
{
    Int8Matrix w(2, 2);
    w.at(0, 0) = 1;
    w.at(0, 1) = 2;
    w.at(1, 0) = -3;
    w.at(1, 1) = 4;
    Int8Matrix x(2, 1);
    x.at(0, 0) = 5;
    x.at(1, 0) = -6;
    Int32Matrix y = gemmInt(w, x);
    EXPECT_EQ(y.at(0, 0), 5 - 12);
    EXPECT_EQ(y.at(1, 0), -15 - 24);
}

TEST(Gemm, GemvMatchesGemm)
{
    Int8Matrix w = randomInt8(2, 16, 32);
    Int8Matrix x = randomInt8(3, 32, 1);
    std::vector<std::int8_t> xv(32);
    for (std::size_t i = 0; i < 32; ++i)
        xv[i] = x.at(i, 0);
    Int32Matrix y = gemmInt(w, x);
    std::vector<std::int32_t> yv = gemvInt(w, xv);
    for (std::size_t r = 0; r < 16; ++r)
        EXPECT_EQ(yv[r], y.at(r, 0));
}

TEST(Gemm, ShapeMismatchFatal)
{
    Int8Matrix w(2, 3), x(4, 2);
    EXPECT_THROW(gemmInt(w, x), std::runtime_error);
    EXPECT_THROW(gemvInt(w, std::vector<std::int8_t>(5)),
                 std::runtime_error);
    FloatMatrix a(2, 3), b(4, 2);
    EXPECT_THROW(gemmF32(a, b), std::runtime_error);
}

TEST(Gemm, AccumulatorNoOverflowAtExtremes)
{
    // 127 * 127 * 4096 columns fits in int32: verify extreme case.
    const std::size_t k = 4096;
    Int8Matrix w(1, k, 127);
    Int8Matrix x(k, 1, 127);
    Int32Matrix y = gemmInt(w, x);
    EXPECT_EQ(y.at(0, 0), 127 * 127 * static_cast<std::int32_t>(k));
}

TEST(Gemm, FoldedQuantMatchesF32Reference)
{
    Rng rng(7);
    FloatMatrix w(16, 64), x(64, 8);
    w.fill([&](std::size_t, std::size_t) {
        return static_cast<float>(rng.gaussian(0.0, 0.05));
    });
    x.fill([&](std::size_t, std::size_t) {
        return static_cast<float>(rng.gaussian(0.5, 1.0));
    });
    ErrorStats e = gemmQuantError(w, x, BitWidth::Int8);
    EXPECT_GT(e.cosine, 0.999);
    EXPECT_LT(e.relFrobenius, 0.02);
}

TEST(Gemm, FoldedQuantInt4Worse)
{
    Rng rng(8);
    FloatMatrix w(16, 64), x(64, 8);
    w.fill([&](std::size_t, std::size_t) {
        return static_cast<float>(rng.gaussian(0.0, 0.05));
    });
    x.fill([&](std::size_t, std::size_t) {
        return static_cast<float>(rng.gaussian(0.5, 1.0));
    });
    ErrorStats e8 = gemmQuantError(w, x, BitWidth::Int8);
    ErrorStats e4 = gemmQuantError(w, x, BitWidth::Int4);
    EXPECT_LT(e8.relFrobenius, e4.relFrobenius);
}

TEST(Gemm, ZeroPointFoldingExact)
{
    // With activations that force a non-zero zero-point, the folded bias
    // must exactly cancel the Wq*Zx term: compare against dequantized
    // operand GEMM.
    Rng rng(9);
    FloatMatrix w(8, 32), x(32, 4);
    w.fill([&](std::size_t, std::size_t) {
        return static_cast<float>(rng.gaussian(0.0, 0.1));
    });
    x.fill([&](std::size_t, std::size_t) {
        return static_cast<float>(rng.uniform(2.0, 6.0)); // all-positive
    });
    QuantizedWeight qw = quantizeWeight(w, BitWidth::Int8);
    QuantizedActivation qx = quantizeActivation(x);
    EXPECT_NE(qx.params.zero, 0);
    FloatMatrix folded = gemmQuantFolded(qw, qx);
    FloatMatrix ref =
        gemmF32(dequantizeWeight(qw), dequantizeActivation(qx));
    ErrorStats e = compareTensors(ref, folded);
    EXPECT_LT(e.maxAbs, 1e-2);
    EXPECT_GT(e.cosine, 0.99999);
}

TEST(Gemm, MacsCount)
{
    EXPECT_EQ(gemmMacs(2, 3, 4), 24u);
    EXPECT_EQ(gemmMacs(4096, 4096, 1), 16777216u);
}

} // namespace
} // namespace mcbp::quant
