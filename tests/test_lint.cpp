// Tests for mcbp-lint (src/lint): every rule positive and negative,
// the suppression grammar, and the JSON rendering. Test sources are
// string literals here — tests/ is outside the lint_src gate's scan
// set, so the patterns below never trip the real-tree gate.
#include "lint/linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using mcbp::lint::Finding;
using mcbp::lint::lintSource;
using mcbp::lint::LintResult;
using mcbp::lint::ruleNames;
using mcbp::lint::toJson;
using mcbp::lint::toText;

std::size_t
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    return static_cast<std::size_t>(
        std::count_if(fs.begin(), fs.end(), [&](const Finding &f) {
            return f.rule == rule;
        }));
}

const Finding *
firstOf(const std::vector<Finding> &fs, const std::string &rule)
{
    for (const Finding &f : fs)
        if (f.rule == rule)
            return &f;
    return nullptr;
}

TEST(Lint, RuleNamesCoverEveryRule)
{
    const auto &names = ruleNames();
    for (const char *expected :
         {"raw-thread", "raw-rng", "wall-clock", "unordered-accumulation",
          "stray-getenv", "include-hygiene", "bad-suppression"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
}

// ---- raw-thread -----------------------------------------------------------

TEST(Lint, RawThreadFlagsStdThreadOutsideParallel)
{
    const auto fs = lintSource("src/engine/foo.cpp",
                               "void f() {\n"
                               "    std::thread t([] {});\n"
                               "    t.join();\n"
                               "}\n");
    ASSERT_EQ(countRule(fs, "raw-thread"), 1u);
    EXPECT_EQ(firstOf(fs, "raw-thread")->line, 2u);
}

TEST(Lint, RawThreadAllowedInsideCommonParallel)
{
    const auto fs = lintSource("src/common/parallel.cpp",
                               "std::thread t([] {});\n");
    EXPECT_EQ(countRule(fs, "raw-thread"), 0u);
}

TEST(Lint, RawThreadFlagsOpenMpAndAsync)
{
    const auto fs = lintSource("src/brcr/x.cpp",
                               "#pragma omp parallel for\n"
                               "auto fut = std::async(work);\n");
    EXPECT_EQ(countRule(fs, "raw-thread"), 2u);
}

// ---- raw-rng --------------------------------------------------------------

TEST(Lint, RawRngFlagsEnginesOutsideCommonRng)
{
    const auto fs = lintSource("src/sim/x.cpp",
                               "std::mt19937 gen(42);\n"
                               "int r = rand();\n");
    EXPECT_EQ(countRule(fs, "raw-rng"), 2u);
}

TEST(Lint, RawRngAllowedInsideCommonRng)
{
    const auto fs =
        lintSource("src/common/rng.hpp", "std::mt19937_64 engine_;\n");
    EXPECT_EQ(countRule(fs, "raw-rng"), 0u);
}

TEST(Lint, RawRngRespectsIdentifierBoundaries)
{
    // "operand" contains "rand"; boundaries must stop the match.
    const auto fs = lintSource("src/sim/x.cpp",
                               "int operand = 1;\n"
                               "int grand_total = operand;\n");
    EXPECT_EQ(countRule(fs, "raw-rng"), 0u);
}

// ---- wall-clock (scoped to src/sim + src/engine) --------------------------

TEST(Lint, WallClockFlaggedInsideEngineAndSim)
{
    const std::string src =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_EQ(countRule(lintSource("src/engine/x.cpp", src),
                        "wall-clock"),
              1u);
    EXPECT_EQ(countRule(lintSource("src/sim/x.cpp", src), "wall-clock"),
              1u);
}

TEST(Lint, WallClockAllowedOutsideScope)
{
    // Benches legitimately time walls.
    const std::string src =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_EQ(countRule(lintSource("bench/profiling.cpp", src),
                        "wall-clock"),
              0u);
    EXPECT_EQ(countRule(lintSource("src/common/x.cpp", src),
                        "wall-clock"),
              0u);
}

// ---- stray-getenv ---------------------------------------------------------

TEST(Lint, StrayGetenvFlaggedEverywhere)
{
    const auto fs = lintSource("src/common/whatever.cpp",
                               "const char *v = std::getenv(\"X\");\n");
    EXPECT_EQ(countRule(fs, "stray-getenv"), 1u);
}

// ---- unordered-accumulation -----------------------------------------------

TEST(Lint, UnorderedAccumulationFlagsRangeForPlusEquals)
{
    const auto fs = lintSource(
        "src/engine/x.cpp",
        "std::unordered_map<int, double> m;\n"
        "double sum = 0;\n"
        "for (const auto &kv : m)\n"
        "    sum += kv.second;\n");
    ASSERT_EQ(countRule(fs, "unordered-accumulation"), 1u);
    EXPECT_EQ(firstOf(fs, "unordered-accumulation")->line, 3u);
}

TEST(Lint, UnorderedAccumulationFlagsBracedPushBack)
{
    const auto fs = lintSource(
        "src/engine/x.cpp",
        "std::unordered_set<int> s;\n"
        "std::vector<int> out;\n"
        "for (int v : s) {\n"
        "    out.push_back(v);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "unordered-accumulation"), 1u);
}

TEST(Lint, OrderedContainerAccumulationIsFine)
{
    const auto fs = lintSource("src/engine/x.cpp",
                               "std::map<int, double> m;\n"
                               "double sum = 0;\n"
                               "for (const auto &kv : m)\n"
                               "    sum += kv.second;\n");
    EXPECT_EQ(countRule(fs, "unordered-accumulation"), 0u);
}

TEST(Lint, UnorderedIterationWithoutAccumulationIsFine)
{
    // Pure membership scans don't depend on order.
    const auto fs = lintSource("src/engine/x.cpp",
                               "std::unordered_map<int, int> m;\n"
                               "bool any = false;\n"
                               "for (const auto &kv : m)\n"
                               "    any = any || kv.second > 0;\n");
    EXPECT_EQ(countRule(fs, "unordered-accumulation"), 0u);
}

// ---- include-hygiene ------------------------------------------------------

TEST(Lint, IncludeHygieneFlagsBitsHeaders)
{
    const auto fs = lintSource("src/common/x.cpp",
                               "#include <bits/stdc++.h>\n");
    ASSERT_EQ(countRule(fs, "include-hygiene"), 1u);
    EXPECT_EQ(firstOf(fs, "include-hygiene")->line, 1u);
}

TEST(Lint, IncludeHygieneSelfHeaderMustComeFirst)
{
    const auto fs = lintSource("src/engine/foo.cpp",
                               "#include <vector>\n"
                               "#include \"engine/foo.hpp\"\n");
    ASSERT_EQ(countRule(fs, "include-hygiene"), 1u);
    EXPECT_EQ(firstOf(fs, "include-hygiene")->line, 2u);
}

TEST(Lint, IncludeHygieneSelfHeaderFirstIsClean)
{
    const auto fs = lintSource("src/engine/foo.cpp",
                               "#include \"engine/foo.hpp\"\n"
                               "#include <vector>\n");
    EXPECT_EQ(countRule(fs, "include-hygiene"), 0u);
}

TEST(Lint, IncludeHygieneConsumerOfSameStemIsNotSelf)
{
    // examples/serving.cpp consuming engine/serving.hpp is not the
    // implementation of that header; order is unconstrained.
    const auto fs = lintSource("examples/serving.cpp",
                               "#include <vector>\n"
                               "#include \"engine/serving.hpp\"\n");
    EXPECT_EQ(countRule(fs, "include-hygiene"), 0u);
}

TEST(Lint, IncludeHygieneHeadersAreExempt)
{
    // Only .cpp files carry the self-header-first obligation.
    const auto fs = lintSource("src/engine/foo.hpp",
                               "#include <vector>\n"
                               "#include \"engine/foo.hpp\"\n");
    EXPECT_EQ(countRule(fs, "include-hygiene"), 0u);
}

// ---- comment / string immunity --------------------------------------------

TEST(Lint, PatternsInCommentsAndStringsDoNotFire)
{
    const auto fs = lintSource(
        "src/engine/x.cpp",
        "// std::thread is banned here; see common/parallel\n"
        "/* so is std::mt19937 and getenv */\n"
        "const char *msg = \"std::thread rand getenv\";\n"
        "char c = 'r';\n"
        "const char *raw = R\"(std::async steady_clock)\";\n");
    EXPECT_TRUE(fs.empty()) << mcbp::lint::toText(
        {fs, 1});
}

// ---- suppressions ---------------------------------------------------------

TEST(Lint, InlineSuppressionWithJustificationIsHonored)
{
    const auto fs = lintSource(
        "src/common/x.cpp",
        "const char *v = std::getenv(\"X\"); "
        "// mcbp-lint: allow(stray-getenv): the registry call site\n");
    EXPECT_EQ(countRule(fs, "stray-getenv"), 0u);
    EXPECT_EQ(countRule(fs, "bad-suppression"), 0u);
}

TEST(Lint, CommentOnlyLineSuppressesTheNextLine)
{
    const auto fs = lintSource(
        "src/common/x.cpp",
        "// mcbp-lint: allow(stray-getenv): the registry call site\n"
        "const char *v = std::getenv(\"X\");\n");
    EXPECT_EQ(countRule(fs, "stray-getenv"), 0u);
}

TEST(Lint, SuppressionOnlyCoversItsNamedRule)
{
    const auto fs = lintSource(
        "src/engine/x.cpp",
        "// mcbp-lint: allow(raw-rng): wrong rule named\n"
        "std::thread t([] {});\n");
    EXPECT_EQ(countRule(fs, "raw-thread"), 1u);
}

TEST(Lint, SuppressionDoesNotLeakToOtherLines)
{
    const auto fs = lintSource(
        "src/common/x.cpp",
        "// mcbp-lint: allow(stray-getenv): only shields line 2\n"
        "const char *a = std::getenv(\"A\");\n"
        "const char *b = std::getenv(\"B\");\n");
    ASSERT_EQ(countRule(fs, "stray-getenv"), 1u);
    EXPECT_EQ(firstOf(fs, "stray-getenv")->line, 3u);
}

TEST(Lint, SuppressionWithoutJustificationIsMalformed)
{
    const auto fs = lintSource(
        "src/common/x.cpp",
        "const char *v = std::getenv(\"X\"); "
        "// mcbp-lint: allow(stray-getenv)\n");
    // The malformed suppression is itself a finding AND fails to
    // shield the original diagnostic.
    EXPECT_EQ(countRule(fs, "bad-suppression"), 1u);
    EXPECT_EQ(countRule(fs, "stray-getenv"), 1u);
}

TEST(Lint, SuppressionOfUnknownRuleIsMalformed)
{
    const auto fs = lintSource(
        "src/common/x.cpp",
        "int x = 0; // mcbp-lint: allow(no-such-rule): whatever\n");
    ASSERT_EQ(countRule(fs, "bad-suppression"), 1u);
}

TEST(Lint, BadSuppressionIsNotItselfSuppressible)
{
    const auto fs = lintSource(
        "src/common/x.cpp",
        "int x = 0; // mcbp-lint: allow(bad-suppression): nice try\n");
    EXPECT_EQ(countRule(fs, "bad-suppression"), 1u);
}

TEST(Lint, MarkerWithoutAllowClauseIsMalformed)
{
    const auto fs = lintSource(
        "src/common/x.cpp", "int x = 0; // mcbp-lint: disable-all\n");
    EXPECT_EQ(countRule(fs, "bad-suppression"), 1u);
}

// ---- output formats --------------------------------------------------------

TEST(Lint, FindingsAreSortedAndDeduped)
{
    const auto fs = lintSource("src/sim/x.cpp",
                               "int b = rand();\n"
                               "std::mt19937 gen; int a = rand();\n");
    // Line 2 hits raw-rng twice (mt19937 and rand); deduped to one
    // finding per (line, rule).
    ASSERT_EQ(countRule(fs, "raw-rng"), 2u);
    EXPECT_EQ(fs[0].line, 1u);
    EXPECT_EQ(fs[1].line, 2u);
}

TEST(Lint, ToTextAndToJsonRenderFindings)
{
    LintResult result;
    result.filesScanned = 3;
    result.findings.push_back(
        {"src/a.cpp", 7, "raw-rng", "say \"no\" to rand"});

    const std::string text = toText(result);
    EXPECT_NE(text.find("src/a.cpp:7: [raw-rng]"), std::string::npos);
    EXPECT_NE(text.find("1 finding(s) in 3 file(s)"), std::string::npos);

    const std::string json = toJson(result);
    EXPECT_NE(json.find("\"tool\": \"mcbp_lint\""), std::string::npos);
    EXPECT_NE(json.find("\"filesScanned\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
    // Quotes in messages must be escaped.
    EXPECT_NE(json.find("say \\\"no\\\" to rand"), std::string::npos);
}

TEST(Lint, ToJsonEmptyFindingsIsStable)
{
    LintResult result;
    result.filesScanned = 2;
    const std::string json = toJson(result);
    EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
}

} // namespace
