/** @file Unit + property tests for brcr/brcr_engine: exactness and cost. */
#include <gtest/gtest.h>

#include <tuple>

#include "brcr/brcr_engine.hpp"
#include "common/rng.hpp"
#include "model/synthetic.hpp"
#include "quant/gemm.hpp"

namespace mcbp::brcr {
namespace {

Int8Matrix
randomInt8(std::uint64_t seed, std::size_t r, std::size_t c, int limit)
{
    Rng rng(seed);
    Int8Matrix m(r, c);
    m.fill([&](std::size_t, std::size_t) {
        return static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(2 * limit + 1)) -
            limit);
    });
    return m;
}

std::vector<std::int8_t>
randomVec(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<std::int8_t> x(n);
    for (auto &v : x)
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
    return x;
}

// ---------------------------------------------------------------------
// Exactness sweep: group size x matrix shape x value range.
// ---------------------------------------------------------------------
class BrcrExactness
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, int>>
{
};

TEST_P(BrcrExactness, GemvMatchesReference)
{
    const auto [m, rows, cols, limit] = GetParam();
    Int8Matrix w = randomInt8(rows * 31 + cols, rows, cols, limit);
    std::vector<std::int8_t> x = randomVec(cols, cols);
    BrcrEngine engine({m, quant::BitWidth::Int8});
    BrcrGemvResult res = engine.gemv(w, x);
    EXPECT_EQ(res.y, quant::gemvInt(w, x));
}

TEST_P(BrcrExactness, TernaryMatchesReference)
{
    const auto [m, rows, cols, limit] = GetParam();
    if (m > 6)
        GTEST_SKIP() << "3^m MAV too large for the ternary variant";
    Int8Matrix w = randomInt8(rows * 17 + cols, rows, cols, limit);
    std::vector<std::int8_t> x = randomVec(cols + 1, cols);
    BrcrEngine engine({m, quant::BitWidth::Int8});
    BrcrGemvResult res = engine.gemvTernary(w, x);
    EXPECT_EQ(res.y, quant::gemvInt(w, x));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BrcrExactness,
    ::testing::Values(
        std::make_tuple(1u, 8u, 32u, 127),
        std::make_tuple(2u, 8u, 32u, 127),
        std::make_tuple(3u, 12u, 64u, 127),
        std::make_tuple(4u, 16u, 64u, 127),
        std::make_tuple(4u, 17u, 63u, 127), // non-divisible shapes
        std::make_tuple(4u, 5u, 200u, 127),
        std::make_tuple(5u, 20u, 64u, 127),
        std::make_tuple(6u, 24u, 48u, 127),
        std::make_tuple(8u, 32u, 40u, 127),
        std::make_tuple(4u, 16u, 64u, 1),   // near-binary weights
        std::make_tuple(4u, 16u, 64u, 7)));  // INT4-ish range

TEST(BrcrEngine, GemmMatchesReference)
{
    Int8Matrix w = randomInt8(11, 24, 96, 127);
    Int8Matrix x = randomInt8(12, 96, 9, 127);
    BrcrEngine engine;
    BrcrGemmResult res = engine.gemm(w, x);
    EXPECT_EQ(res.y, quant::gemmInt(w, x));
}

TEST(BrcrEngine, Int4GemvMatchesReference)
{
    Int8Matrix w = randomInt8(13, 16, 64, 7);
    std::vector<std::int8_t> x = randomVec(14, 64);
    BrcrEngine engine({4, quant::BitWidth::Int4});
    BrcrGemvResult res = engine.gemv(w, x);
    EXPECT_EQ(res.y, quant::gemvInt(w, x));
}

TEST(BrcrEngine, AllZeroWeight)
{
    Int8Matrix w(8, 32);
    std::vector<std::int8_t> x = randomVec(15, 32);
    BrcrEngine engine;
    BrcrGemvResult res = engine.gemv(w, x);
    for (auto y : res.y)
        EXPECT_EQ(y, 0);
    EXPECT_EQ(res.ops.mergeAdds, 0u);
    EXPECT_EQ(res.ops.reconAdds, 0u);
    EXPECT_EQ(res.ops.shiftAccAdds, 0u);
}

TEST(BrcrEngine, AllNegativeWeight)
{
    Int8Matrix w(8, 32, -5);
    std::vector<std::int8_t> x = randomVec(16, 32);
    BrcrEngine engine;
    EXPECT_EQ(engine.gemv(w, x).y, quant::gemvInt(w, x));
}

TEST(BrcrEngine, ExtremeValues)
{
    Int8Matrix w(4, 16);
    for (std::size_t c = 0; c < 16; ++c) {
        w.at(0, c) = 127;
        w.at(1, c) = -127;
        w.at(2, c) = (c % 2) ? 127 : -127;
    }
    std::vector<std::int8_t> x(16, 127);
    BrcrEngine engine;
    EXPECT_EQ(engine.gemv(w, x).y, quant::gemvInt(w, x));
}

TEST(BrcrEngine, OpCountsBeatNaiveBitSerial)
{
    // On realistic (Gaussian, sparse-bit) weights the engine must beat
    // the naive bit-serial add count, which is the whole point of BRCR.
    Rng rng(18);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 1024, quant::BitWidth::Int8, profile);
    std::vector<std::int8_t> x = randomVec(19, 1024);
    BrcrEngine engine;
    BrcrGemvResult res = engine.gemv(qw.values, x);

    std::uint64_t naive = 0; // one add per set magnitude bit
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    for (const auto &p : sm.magnitude)
        naive += p.countOnes();
    EXPECT_LT(res.ops.totalAdds(), naive);
    EXPECT_GT(res.ops.camSearches, 0u);
    EXPECT_GT(res.ops.groupsProcessed, 0u);
}

TEST(BrcrEngine, OpCountsMatchGolden)
{
    // Pinned op counts from the original (pre-scratch-reuse, per-group
    // allocating) implementation on a fixed synthetic tile: the scratch
    // rework must change allocation behavior only, never a count. The
    // synthesizer and Rng are portable, so these values are stable
    // across platforms.
    Rng rng(18);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 1024, quant::BitWidth::Int8, profile);
    std::vector<std::int8_t> x = randomVec(19, 1024);
    BrcrEngine engine;
    const BrcrGemvResult res = engine.gemv(qw.values, x);
    EXPECT_EQ(res.ops.mergeAdds, 94848u);
    EXPECT_EQ(res.ops.reconAdds, 3916u);
    EXPECT_EQ(res.ops.shiftAccAdds, 839u);
    EXPECT_EQ(res.ops.camSearches, 3360u);
    EXPECT_EQ(res.ops.groupsProcessed, 224u);
    EXPECT_EQ(res.ops.zeroColumns, 132114u);

    // A second run on the same engine must reproduce them exactly
    // (no state leaks through the reused scratch path).
    const BrcrGemvResult again = engine.gemv(qw.values, x);
    EXPECT_EQ(again.ops.mergeAdds, res.ops.mergeAdds);
    EXPECT_EQ(again.ops.reconAdds, res.ops.reconAdds);
    EXPECT_EQ(again.ops.shiftAccAdds, res.ops.shiftAccAdds);
    EXPECT_EQ(again.y, res.y);
}

TEST(BrcrEngine, GemmAmortizesPatternExtraction)
{
    // CAM searches depend only on the weights: GEMM with N columns must
    // issue the same number of searches as a single GEMV.
    Int8Matrix w = randomInt8(20, 16, 64, 127);
    Int8Matrix x1 = randomInt8(21, 64, 1, 127);
    Int8Matrix x8 = randomInt8(22, 64, 8, 127);
    BrcrEngine engine;
    EXPECT_EQ(engine.gemm(w, x1).ops.camSearches,
              engine.gemm(w, x8).ops.camSearches);
}

TEST(BrcrEngine, MergeAddsScaleWithColumns)
{
    Int8Matrix w = randomInt8(23, 16, 64, 127);
    Int8Matrix x1 = randomInt8(24, 64, 1, 127);
    Int8Matrix x4 = randomInt8(25, 64, 4, 127);
    BrcrEngine engine;
    const auto a = engine.gemm(w, x1).ops.mergeAdds;
    const auto b = engine.gemm(w, x4).ops.mergeAdds;
    EXPECT_EQ(b, a * 4);
}

TEST(BrcrEngine, GroupSizeTradeoffExists)
{
    // Total adds at m=4 beat both m=1 (no repetition exploited) and
    // m=10 (reconstruction blow-up) on realistic weights — the Fig 18
    // sweet spot.
    Rng rng(26);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 40, 2048, quant::BitWidth::Int8, profile);
    std::vector<std::int8_t> x = randomVec(27, 2048);
    auto run_at = [&](std::size_t m) {
        BrcrEngine engine({m, quant::BitWidth::Int8});
        return engine.gemv(qw.values, x).ops;
    };
    const BrcrOpCounts m1 = run_at(1);
    const BrcrOpCounts m4 = run_at(4);
    const BrcrOpCounts m10 = run_at(10);
    // Grouping exploits repetition: m=4 spends far fewer adds than m=1.
    EXPECT_LT(m4.totalAdds(), m1.totalAdds());
    // The large-m penalty is the exponentially growing CAM search space
    // (2^m - 1 keys per group-plane), which the fixed hardware must
    // enumerate: m=10 costs ~32x more searches than m=4 per group and
    // ends up issuing far more searches overall.
    EXPECT_GT(m10.camSearches, m4.camSearches * 5);
}

TEST(BrcrEngine, InvalidConfigFatal)
{
    EXPECT_THROW(BrcrEngine({0, quant::BitWidth::Int8}),
                 std::runtime_error);
    EXPECT_THROW(BrcrEngine({13, quant::BitWidth::Int8}),
                 std::runtime_error);
}

TEST(BrcrEngine, ShapeMismatchFatal)
{
    Int8Matrix w(4, 8);
    BrcrEngine engine;
    EXPECT_THROW(engine.gemv(w, std::vector<std::int8_t>(7)),
                 std::runtime_error);
    Int8Matrix x(7, 2);
    EXPECT_THROW(engine.gemm(w, x), std::runtime_error);
}

} // namespace
} // namespace mcbp::brcr
