/**
 * @file
 * Paged-KV admission invariants (the preempt-and-recompute path):
 *  - block-rounding and footprint math, including the zero-decode and
 *    unbounded-sentinel (<= 0) edges, uniformly across serving and
 *    cluster paths;
 *  - paged == reserve bit-for-bit (times, energies, admissions) when
 *    the capacity never binds, at tp=1;
 *  - the reserve policy ignores every paging knob (pre-paging parity);
 *  - under KV pressure, paging admits at least as many requests as
 *    reservation by any horizon, preempts and re-queues for recompute
 *    without dropping or duplicating requests, and never exceeds the
 *    configured capacity;
 *  - preemption is deterministic: identical trace + seed gives
 *    bit-identical reports at profileThreads 1 and 8;
 *  - the shortest-prompt scheduler's aging term bounds long-prompt
 *    starvation under a sustained short-prompt flood;
 *  - an empty trace yields a zeroed report instead of indexing into
 *    empty percentile vectors.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "engine/kv_block_manager.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"
#include "model/llm_config.hpp"

namespace mcbp::engine {
namespace {

std::vector<model::Request>
denseTrace(std::size_t n = 24, const char *model = "Llama7B",
           std::uint64_t seed = 11)
{
    model::TraceConfig tc;
    tc.model = model;
    tc.task = "MBPP";
    tc.requests = n;
    tc.arrivalsPerSecond = 50.0; // dense enough that batches form.
    tc.seed = seed;
    return model::synthesizeTrace(tc);
}

double
lastArrival(const std::vector<model::Request> &trace)
{
    double last = 0.0;
    for (const model::Request &r : trace)
        last = std::max(last, r.arrivalSeconds);
    return last;
}

std::size_t
admittedBy(const ServingReport &r, double horizonSeconds)
{
    std::size_t n = 0;
    for (const RequestMetrics &m : r.requests)
        if (m.admissionSeconds <= horizonSeconds)
            ++n;
    return n;
}

void
expectConserves(const ServingReport &r, std::size_t expected)
{
    ASSERT_EQ(r.requests.size(), expected);
    std::vector<bool> seen(expected, false);
    for (const RequestMetrics &m : r.requests) {
        ASSERT_LT(m.id, seen.size());
        EXPECT_FALSE(seen[m.id]) << "duplicate id " << m.id;
        seen[m.id] = true;
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool b) { return b; }));
}

/** Every field two runs of the same costed trace must agree on. */
void
expectReportsIdentical(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.busySeconds, b.busySeconds);
    EXPECT_EQ(a.serialSeconds, b.serialSeconds);
    EXPECT_EQ(a.serialJoules, b.serialJoules);
    EXPECT_EQ(a.p50LatencySeconds, b.p50LatencySeconds);
    EXPECT_EQ(a.p99LatencySeconds, b.p99LatencySeconds);
    EXPECT_EQ(a.p99QueueSeconds, b.p99QueueSeconds);
    EXPECT_EQ(a.joulesPerToken, b.joulesPerToken);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.recomputedTokens, b.recomputedTokens);
    EXPECT_EQ(a.kvPeakBytes, b.kvPeakBytes);
    EXPECT_EQ(a.kvBlockUtilization, b.kvBlockUtilization);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].id, b.requests[i].id);
        EXPECT_EQ(a.requests[i].admissionSeconds,
                  b.requests[i].admissionSeconds);
        EXPECT_EQ(a.requests[i].completionSeconds,
                  b.requests[i].completionSeconds);
        EXPECT_EQ(a.requests[i].preemptions, b.requests[i].preemptions);
        EXPECT_EQ(a.requests[i].joules, b.requests[i].joules);
    }
}

TEST(KvBlocks, PolicyNamesRoundTrip)
{
    for (KvPolicy p : allKvPolicies())
        EXPECT_EQ(kvPolicyFromString(toString(p)), p);
    EXPECT_THROW((void)kvPolicyFromString("swap"), std::runtime_error);
}

TEST(KvBlocks, FootprintAndRoundingMath)
{
    KvOptions kv;
    kv.blockTokens = 16;
    kv.capacityBytes = 1000.0;
    const KvBlockManager mgr(kv);
    // 17 tokens at 2 B/token -> 2 blocks of 16 tokens = 64 B.
    EXPECT_DOUBLE_EQ(mgr.allocatedBytes(2.0, 17), 64.0);
    EXPECT_DOUBLE_EQ(mgr.allocatedBytes(2.0, 16), 32.0);
    EXPECT_DOUBLE_EQ(mgr.allocatedBytes(2.0, 0), 0.0);

    // Footprints: exact under reserve, block-rounded under paged,
    // zero whenever no token is generated (prefill-only requests
    // retain no KV) under either policy.
    kv.policy = KvPolicy::Reserve;
    EXPECT_DOUBLE_EQ(kvFootprintBytes(kv, 2.0, 10, 7), 34.0);
    EXPECT_DOUBLE_EQ(kvFootprintBytes(kv, 2.0, 10, 0), 0.0);
    kv.policy = KvPolicy::Paged;
    EXPECT_DOUBLE_EQ(kvFootprintBytes(kv, 2.0, 10, 7), 64.0);
    EXPECT_DOUBLE_EQ(kvFootprintBytes(kv, 2.0, 10, 0), 0.0);

    // The unified sentinel: any capacity <= 0 is unbounded.
    EXPECT_TRUE(kvUnbounded(0.0));
    EXPECT_TRUE(kvUnbounded(-3.0));
    EXPECT_FALSE(kvUnbounded(1.0));

    // Watermark headroom applies to admission checks only.
    KvOptions tight;
    tight.blockTokens = 16;
    tight.capacityBytes = 100.0;
    tight.lowWatermark = 0.1;
    const KvBlockManager pool(tight);
    EXPECT_TRUE(pool.fits(95.0, /*admission=*/false));
    EXPECT_FALSE(pool.fits(95.0, /*admission=*/true));
    EXPECT_TRUE(pool.fits(90.0, /*admission=*/true));
}

TEST(KvBlocks, LedgerTracksPeaksAndFragmentation)
{
    KvOptions kv;
    kv.blockTokens = 8;
    kv.capacityBytes = 256.0;
    KvBlockManager pool(kv);
    pool.add(128.0, 100.0);
    pool.add(64.0, 60.0);
    EXPECT_DOUBLE_EQ(pool.usedBytes(), 192.0);
    EXPECT_DOUBLE_EQ(pool.neededBytes(), 160.0);
    EXPECT_DOUBLE_EQ(pool.peakFragmentationBytes(), 32.0);
    EXPECT_DOUBLE_EQ(pool.freeBytes(), 64.0);
    EXPECT_DOUBLE_EQ(pool.freeFraction(), 0.25);
    pool.remove(128.0, 100.0);
    pool.remove(64.0, 60.0);
    pool.clearIdleResidual();
    EXPECT_DOUBLE_EQ(pool.usedBytes(), 0.0);
    EXPECT_DOUBLE_EQ(pool.peakUsedBytes(), 192.0);
}

TEST(Paging, MatchesReserveWhenCapacityNeverBinds)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    const auto trace = denseTrace();

    ServingOptions reserve;
    reserve.maxBatch = 8;
    reserve.kvPolicy = KvPolicy::Reserve;
    const ServingReport a =
        ServingSimulator(*accel, reserve).simulate(trace);

    // A budget comfortably above the reserve peak (and its watermark)
    // never binds: paged admission decisions — and therefore every
    // clock and every joule — are bit-identical to reservation. Only
    // the kv* fields differ (block-rounded residency).
    ServingOptions paged = reserve;
    paged.kvPolicy = KvPolicy::Paged;
    paged.kvCapacityBytes = a.kvPeakBytes * 2.0;
    const ServingReport b =
        ServingSimulator(*accel, paged).simulate(trace);

    EXPECT_EQ(a.kvPolicy, "reserve");
    EXPECT_EQ(b.kvPolicy, "paged");
    EXPECT_EQ(b.preemptions, 0u);
    EXPECT_EQ(b.recomputedTokens, 0u);
    expectReportsIdentical(
        [&] { // mask the kv fields both sides, compare the rest.
            ServingReport r = a;
            r.kvPeakBytes = 0.0;
            r.kvBlockUtilization = 0.0;
            return r;
        }(),
        [&] {
            ServingReport r = b;
            r.kvPeakBytes = 0.0;
            r.kvBlockUtilization = 0.0;
            return r;
        }());
    // The paged peak tracks current block-rounded residency — which
    // grows token by token — so it sits at or below the reserve
    // peak's full-footprint reservations plus one block per request.
    EXPECT_GT(b.kvPeakBytes, 0.0);
    EXPECT_GT(b.kvBlockUtilization, 0.0);
    EXPECT_LE(b.kvBlockUtilization, 1.0);
}

TEST(Paging, ReservePolicyIgnoresPagingKnobs)
{
    // The pre-paging policy must reproduce its reports exactly no
    // matter how the paging knobs are set: block size, watermark and
    // aging default must not leak into the reserve path.
    Registry registry;
    auto accel = registry.make("mcbp");
    const auto trace = denseTrace(16);

    ServingOptions a;
    a.maxBatch = 8;
    a.kvCapacityBytes = 6e9;
    a.kvPolicy = KvPolicy::Reserve;
    a.kvBlockTokens = 16;
    a.kvLowWatermark = 0.05;

    ServingOptions b = a;
    b.kvBlockTokens = 1024;
    b.kvLowWatermark = 0.4;

    const ServingReport ra = ServingSimulator(*accel, a).simulate(trace);
    const ServingReport rb = ServingSimulator(*accel, b).simulate(trace);
    expectReportsIdentical(ra, rb);
    EXPECT_EQ(ra.kvPeakBytes, rb.kvPeakBytes);
    EXPECT_EQ(ra.preemptions, 0u);
    EXPECT_EQ(ra.kvBlockUtilization, 0.0);
}

TEST(Paging, AdmitsMoreThanReservationUnderPressure)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    const auto trace = denseTrace(24);
    const double horizon = lastArrival(trace);

    ServingOptions free_opts;
    free_opts.maxBatch = 16;
    const ServingReport free_run =
        ServingSimulator(*accel, free_opts).simulate(trace);
    ASSERT_GT(free_run.kvPeakBytes, 0.0);

    // A budget at a quarter of the unbounded peak forces the policies
    // apart: reservation blocks on full footprints, paging admits
    // against current occupancy and preempts when growth overflows.
    ServingOptions reserve = free_opts;
    reserve.kvCapacityBytes = free_run.kvPeakBytes / 4.0;
    ServingOptions paged = reserve;
    paged.kvPolicy = KvPolicy::Paged;

    const ServingReport r =
        ServingSimulator(*accel, reserve).simulate(trace);
    const ServingReport p =
        ServingSimulator(*accel, paged).simulate(trace);

    expectConserves(r, trace.size());
    expectConserves(p, trace.size());

    // Both respect the budget; paging buys earlier admission.
    EXPECT_LE(r.kvPeakBytes, reserve.kvCapacityBytes);
    EXPECT_LE(p.kvPeakBytes, paged.kvCapacityBytes);
    EXPECT_GE(admittedBy(p, horizon), admittedBy(r, horizon));
    EXPECT_GT(admittedBy(p, horizon), 0u);
    // The pressure is real: paging had to preempt and recompute.
    EXPECT_GT(p.preemptions, 0u);
    EXPECT_GT(p.recomputedTokens, 0u);
    EXPECT_GT(p.kvBlockUtilization, 0.0);
    EXPECT_LE(p.kvBlockUtilization, 1.0);
    EXPECT_GE(p.kvFragmentationPeakBytes, 0.0);
    // Recompute work is billed: total energy exceeds the serial sum.
    double joules = 0.0;
    for (const RequestMetrics &m : p.requests)
        joules += m.joules;
    EXPECT_GT(joules, 0.0);
}

TEST(Paging, PreemptionIsDeterministicAcrossProfileThreads)
{
    const auto trace = denseTrace(20, "Llama7B", 17);

    auto run = [&](std::size_t threads) {
        // A fresh registry per run: each owns a cold profile cache,
        // so the second run genuinely re-profiles at its own thread
        // count — proving the report never depends on profiling
        // parallelism, preemption re-pricing included.
        Registry registry;
        auto accel = registry.make("mcbp");
        ServingOptions opts;
        opts.maxBatch = 16;
        opts.kvPolicy = KvPolicy::Paged;
        opts.kvCapacityBytes = 2e9; // tight: preemptions happen.
        opts.profileThreads = threads;
        return ServingSimulator(*accel, opts).simulate(trace);
    };
    const ServingReport a = run(1);
    const ServingReport b = run(8);
    ASSERT_GT(a.preemptions, 0u);
    expectReportsIdentical(a, b);
}

TEST(Paging, ZeroDecodeRequestsChargeNoKv)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    auto trace = denseTrace(4);
    trace[1].decodeLen = 0; // pure-prefill (classification) request.

    for (KvPolicy policy : allKvPolicies()) {
        ServingOptions opts;
        opts.maxBatch = 4;
        opts.kvPolicy = policy;
        opts.kvCapacityBytes = 6e9;
        const ServingReport r =
            ServingSimulator(*accel, opts).simulate(trace);
        expectConserves(r, trace.size());
        for (const RequestMetrics &m : r.requests) {
            if (m.id == 1) {
                EXPECT_EQ(m.decodeTokens, 0u);
                EXPECT_EQ(m.kvBytes, 0.0) << toString(policy);
            } else {
                EXPECT_GT(m.kvBytes, 0.0) << toString(policy);
            }
        }
    }

    // An all-prefill trace fits any budget — even one byte — because
    // nothing is ever retained (the pre-fix accounting charged the
    // prompt and made this fatal).
    for (auto &req : trace)
        req.decodeLen = 0;
    ServingOptions tiny;
    tiny.kvCapacityBytes = 1.0;
    const ServingReport r =
        ServingSimulator(*accel, tiny).simulate(trace);
    expectConserves(r, trace.size());
    EXPECT_EQ(r.kvPeakBytes, 0.0);
}

TEST(Paging, NegativeCapacityIsUnboundedEverywhere)
{
    // The sentinel is uniform: <= 0 means unbounded in the serving
    // path and through a cluster accelerator alike, for both KV
    // policies.
    Registry registry;
    const auto trace = denseTrace(8);
    for (const char *spec : {"mcbp", "mcbp:tp=2"}) {
        auto accel = registry.make(spec);
        for (KvPolicy policy : allKvPolicies()) {
            ServingOptions zero;
            zero.maxBatch = 8;
            zero.kvPolicy = policy;
            zero.kvCapacityBytes = 0.0;
            ServingOptions negative = zero;
            negative.kvCapacityBytes = -1e9;
            const ServingReport a =
                ServingSimulator(*accel, zero).simulate(trace);
            const ServingReport b =
                ServingSimulator(*accel, negative).simulate(trace);
            expectReportsIdentical(a, b);
            EXPECT_EQ(a.kvUtilization, 0.0);
            EXPECT_EQ(b.kvUtilization, 0.0);
            EXPECT_EQ(a.preemptions, 0u);
        }
    }
}

TEST(Paging, PagedServingOnClusterRespectsBudget)
{
    Registry registry;
    auto cluster = registry.make("mcbp:tp=2");
    EXPECT_EQ(cluster->capabilities().kvShards, 2u);
    const auto trace = denseTrace(12);

    const ServingReport free_run =
        ServingSimulator(*cluster, {8}).simulate(trace);
    ServingOptions opts;
    opts.maxBatch = 8;
    opts.kvPolicy = KvPolicy::Paged;
    opts.kvCapacityBytes = free_run.kvPeakBytes / 3.0;
    const ServingReport r =
        ServingSimulator(*cluster, opts).simulate(trace);
    expectConserves(r, trace.size());
    EXPECT_LE(r.kvPeakBytes, opts.kvCapacityBytes);
    EXPECT_GT(r.kvPeakBytes, 0.0);
}

TEST(Paging, EmptyTraceYieldsZeroedReport)
{
    Registry registry;
    auto accel = registry.make("mcbp");
    for (KvPolicy policy : allKvPolicies()) {
        ServingOptions opts;
        opts.kvPolicy = policy;
        const ServingReport r =
            ServingSimulator(*accel, opts).simulate({});
        EXPECT_EQ(r.accelerator, accel->name());
        EXPECT_EQ(r.scheduler, "fifo");
        EXPECT_EQ(r.kvPolicy, toString(policy));
        EXPECT_TRUE(r.requests.empty());
        EXPECT_EQ(r.makespanSeconds, 0.0);
        EXPECT_EQ(r.p50LatencySeconds, 0.0);
        EXPECT_EQ(r.p99LatencySeconds, 0.0);
        EXPECT_EQ(r.p99QueueSeconds, 0.0);
        EXPECT_EQ(r.tokensPerSecond, 0.0);
        EXPECT_EQ(r.joulesPerToken, 0.0);
        EXPECT_EQ(r.preemptions, 0u);
    }
}

TEST(Schedulers, AgingBoundsLongPromptStarvation)
{
    // A long-prompt minority inside a sustained short-prompt flood:
    // pure SJF (agingWeight 0) starves the longs until the flood
    // ends; the aged key admits them once they have waited their own
    // extra prefill cost, bounding their queue tail.
    Registry registry;
    auto accel = registry.make("mcbp");
    const model::LlmConfig &m = model::findModel("Llama7B");

    model::Request probe{0, 0.0, "Llama7B", "Dolly", 64, 64};
    const double short_service =
        accel->run(m, probe.workload()).seconds();

    std::vector<model::Request> trace;
    const std::size_t shorts = 40;
    // Shorts arrive faster than they are served: the queue never
    // drains until the flood ends.
    const double interval = 0.5 * short_service;
    for (std::size_t i = 0; i < shorts; ++i)
        trace.push_back({i, static_cast<double>(i) * interval,
                         "Llama7B", "Dolly", 64, 64});
    for (std::size_t i = 0; i < 3; ++i)
        trace.push_back({shorts + i, 0.0, "Llama7B", "Dolly", 2048, 8});

    auto run = [&](double agingWeight) {
        ServingOptions opts;
        opts.maxBatch = 1; // serialize admissions: pure queueing.
        opts.policy = SchedulerPolicy::ShortestPromptFirst;
        opts.sjfAgingWeight = agingWeight;
        return ServingSimulator(*accel, opts).simulate(trace);
    };
    const ServingReport aged = run(1.0);   // the default
    const ServingReport pure = run(0.0);   // the pre-fix behaviour
    expectConserves(aged, trace.size());
    expectConserves(pure, trace.size());

    auto maxLongQueue = [&](const ServingReport &r) {
        double worst = 0.0;
        for (const RequestMetrics &mx : r.requests)
            if (mx.id >= shorts)
                worst = std::max(worst, mx.queueSeconds());
        return worst;
    };
    const double aged_wait = maxLongQueue(aged);
    const double pure_wait = maxLongQueue(pure);
    // Pure SJF holds every long until the flood is over...
    EXPECT_GT(pure_wait, 0.8 * static_cast<double>(shorts) * interval);
    // ...while aging bounds the longs' tail well inside the flood.
    EXPECT_LT(aged_wait, 0.5 * pure_wait);
}

} // namespace
} // namespace mcbp::engine
