/** @file Unit tests for the sim/ layer: HBM, SRAM, area, energy,
 *  PE-cluster cycle model, pipeline composition and McbpConfig. */
#include <gtest/gtest.h>

#include "sim/area_model.hpp"
#include "sim/energy_model.hpp"
#include "sim/hbm.hpp"
#include "sim/mcbp_config.hpp"
#include "sim/pe_cluster.hpp"
#include "sim/pipeline.hpp"
#include "sim/sram.hpp"

namespace mcbp::sim {
namespace {

TEST(McbpConfig, PaperTotals)
{
    const McbpConfig &cfg = defaultConfig();
    EXPECT_EQ(cfg.totalSramKb(), 1248u); // evaluation-fixed SRAM.
    EXPECT_EQ(cfg.hbmBitsPerCoreCycle, 512u);
    EXPECT_DOUBLE_EQ(cfg.hbmBytesPerCycle(), 64.0);
    EXPECT_DOUBLE_EQ(cfg.peakAddsPerCycle(), 16.0 * 8.0 * 16.0 * 4.0);
}

TEST(McbpConfig, ToStringMentionsUnits)
{
    const std::string s = defaultConfig().toString();
    EXPECT_NE(s.find("PE clusters"), std::string::npos);
    EXPECT_NE(s.find("BSTC"), std::string::npos);
    EXPECT_NE(s.find("BGPP"), std::string::npos);
    EXPECT_NE(s.find("HBM2"), std::string::npos);
}

TEST(Hbm, BandwidthMath)
{
    Hbm hbm(defaultConfig());
    HbmTransfer t = hbm.read(6400, 1.0);
    // 6400 B at 64 B/cycle = 100 cycles + row activations.
    EXPECT_GE(t.cycles, 100.0);
    EXPECT_LT(t.cycles, 125.0);
    EXPECT_DOUBLE_EQ(t.energyPj, 6400.0 * 32.0);
}

TEST(Hbm, ScatteredCostsMoreRows)
{
    Hbm hbm(defaultConfig());
    HbmTransfer seq = hbm.read(1 << 20, 1.0);
    HbmTransfer scat = hbm.read(1 << 20, 0.0);
    EXPECT_GT(scat.rowActivations, seq.rowActivations * 10);
    EXPECT_GT(scat.cycles, seq.cycles);
    // Energy per bit is layout-independent in this model.
    EXPECT_DOUBLE_EQ(seq.energyPj, scat.energyPj);
}

TEST(Hbm, StatsAccumulate)
{
    Hbm hbm(defaultConfig());
    hbm.read(1000, 1.0);
    hbm.write(500, 1.0);
    EXPECT_EQ(hbm.stats().bytesRead, 1000u);
    EXPECT_EQ(hbm.stats().bytesWritten, 500u);
    EXPECT_GT(hbm.stats().busyCycles, 0.0);
}

TEST(Hbm, BadFractionFatal)
{
    Hbm hbm(defaultConfig());
    EXPECT_THROW(hbm.read(10, 1.5), std::runtime_error);
}

TEST(Sram, CapacityAndStreaming)
{
    Sram s("weight", 768, 16, 8);
    EXPECT_EQ(s.capacityBytes(), 768u * 1024u);
    EXPECT_TRUE(s.fits(700 * 1024));
    EXPECT_FALSE(s.fits(800 * 1024));
    // 16 banks x 8 B/cycle = 128 B/cycle.
    EXPECT_DOUBLE_EQ(s.streamCycles(1280), 10.0);
}

TEST(Sram, EnergyScalesWithCapacity)
{
    Sram small("temp", 96, 4, 8);
    Sram large("weight", 768, 4, 8);
    EXPECT_LT(small.accessEnergyPj(1000), large.accessEnergyPj(1000));
}

TEST(Sram, AccountsTraffic)
{
    Sram s("token", 384, 8, 8);
    s.read(100);
    s.write(50);
    EXPECT_EQ(s.bytesRead(), 100u);
    EXPECT_EQ(s.bytesWritten(), 50u);
    EXPECT_GT(s.energyPj(), 0.0);
}

TEST(AreaModel, PaperTotalAndBreakdown)
{
    AreaBreakdown a = computeArea(defaultConfig());
    // Fig 22(a): 9.52 mm^2 total; BRCR dominates at ~38%.
    EXPECT_NEAR(a.total(), 9.52, 0.15);
    EXPECT_NEAR(a.brcrUnit / a.total(), 0.382, 0.02);
    EXPECT_NEAR(a.sram / a.total(), 0.191, 0.02);
    EXPECT_NEAR(a.bstcUnit / a.total(), 0.062, 0.015);
    EXPECT_NEAR(a.bgppUnit / a.total(), 0.045, 0.015);
    // Fig 24(b): CAM is ~25% area overhead on the BRCR unit -> ~20% of it.
    EXPECT_NEAR(a.camOnly / a.brcrUnit, 0.20, 0.02);
}

TEST(AreaModel, ScalesWithConfiguration)
{
    McbpConfig big = defaultConfig();
    big.peClusters *= 2;
    big.weightSramKb *= 2;
    AreaBreakdown base = computeArea(defaultConfig());
    AreaBreakdown scaled = computeArea(big);
    EXPECT_NEAR(scaled.brcrUnit, base.brcrUnit * 2.0, 1e-9);
    EXPECT_GT(scaled.sram, base.sram);
    EXPECT_DOUBLE_EQ(scaled.apu, base.apu);
}

TEST(AreaModel, SystolicBaselineLarger)
{
    // Equal-throughput dense array burns more area than the BRCR fabric
    // (Fig 24(b): BRCR reduces area by ~45%).
    const double sa = systolicBaselineArea(defaultConfig());
    AreaBreakdown mcbp = computeArea(defaultConfig());
    EXPECT_GT(sa, mcbp.total() * 0.7);
}

TEST(EnergyModel, Linearity)
{
    EnergyModel e;
    EXPECT_DOUBLE_EQ(e.addsEnergy(2000), 2.0 * e.addsEnergy(1000));
    EXPECT_DOUBLE_EQ(e.dramEnergy(1), 32.0); // 8 bits x 4 pJ/bit.
    EXPECT_GT(e.macsEnergy(100), e.addsEnergy(100));
}

TEST(EnergyModel, DramDominatesPerByte)
{
    EnergyModel e;
    EXPECT_GT(e.dramEnergy(1000), e.sramEnergy(1000, true) * 5.0);
}

TEST(EnergyBreakdown, MergeAndTotal)
{
    EnergyBreakdown a, b;
    a.computePj = 10.0;
    a.dramPj = 90.0;
    b.computePj = 5.0;
    b.sramPj = 5.0;
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.totalPj(), 110.0);
    EXPECT_DOUBLE_EQ(a.onChipPj(), 20.0);
    EXPECT_NE(a.toString().find("dram"), std::string::npos);
}

TEST(PeCluster, PipelinedMaxRule)
{
    PeClusterModel m(defaultConfig());
    // Merge-dominated work: cycles track merge adds / lanes.
    BrcrWork w;
    w.mergeAdds = defaultConfig().peakAddsPerCycle() * 100.0;
    EXPECT_DOUBLE_EQ(m.brcrCycles(w), 100.0);
    // Search-dominated work.
    BrcrWork s;
    s.camSearches = 128.0 * 50.0;
    EXPECT_DOUBLE_EQ(m.brcrCycles(s), 50.0);
    // Combined: the max, not the sum.
    BrcrWork both = w;
    both.camSearches = s.camSearches;
    EXPECT_DOUBLE_EQ(m.brcrCycles(both), 100.0);
}

TEST(PeCluster, CodecAndBgppRates)
{
    PeClusterModel m(defaultConfig());
    EXPECT_DOUBLE_EQ(m.codecCycles({80.0 * 10.0}), 10.0);
    EXPECT_DOUBLE_EQ(m.bgppCycles({64.0 * 64.0 * 3.0, 0.0}), 3.0);
    EXPECT_DOUBLE_EQ(
        m.denseMacCycles(defaultConfig().peakAddsPerCycle() * 7.0), 7.0);
}

TEST(Pipeline, OverlapNeverSlowerThanSerial)
{
    StageCycles s;
    s.weightLoad = 100;
    s.weightDecode = 50;
    s.linearCompute = 120;
    s.prediction = 60;
    s.kvLoad = 40;
    s.attention = 30;
    s.sfu = 20;
    s.actLoad = 10;
    LayerLatency overlap = composeLayer(s);
    LayerLatency serial = composeLayerSerial(s);
    EXPECT_LT(overlap.totalCycles, serial.totalCycles);
    // Linear part is the max of its contributors.
    EXPECT_DOUBLE_EQ(overlap.linearPart, 120.0);
}

TEST(Pipeline, PredictionHiddenWithinQkvWindow)
{
    StageCycles s;
    s.linearCompute = 100;
    s.prediction = 30; // fits inside the 35-cycle QKV window
    s.kvLoad = 10;
    s.attention = 5;
    LayerLatency lat = composeLayer(s);
    EXPECT_DOUBLE_EQ(lat.attentionPart, 10.0);
    s.prediction = 135; // 100 cycles exposed beyond the window
    lat = composeLayer(s);
    EXPECT_DOUBLE_EQ(lat.attentionPart, 110.0);
}

TEST(Pipeline, SfuPartiallyExposed)
{
    StageCycles s;
    s.sfu = 100;
    LayerLatency lat = composeLayer(s);
    EXPECT_DOUBLE_EQ(lat.exposedSfu,
                     100.0 * defaultConfig().exposedSfuFraction);
}

TEST(Pipeline, OverlapConstantsSweepableViaConfig)
{
    // The ablations sweep the overlap constants through McbpConfig
    // instead of recompiling.
    StageCycles s;
    s.linearCompute = 100;
    s.prediction = 50;
    s.sfu = 100;
    McbpConfig cfg = defaultConfig();
    cfg.exposedSfuFraction = 0.5;
    cfg.predictionOverlapWindow = 0.0;
    LayerLatency lat = composeLayer(s, cfg);
    EXPECT_DOUBLE_EQ(lat.exposedSfu, 50.0);
    EXPECT_DOUBLE_EQ(lat.attentionPart, 50.0); // nothing hidden
    cfg.predictionOverlapWindow = 1.0;
    lat = composeLayer(s, cfg);
    EXPECT_DOUBLE_EQ(lat.attentionPart, 0.0); // fully hidden
}

} // namespace
} // namespace mcbp::sim
