/** @file Exhaustive small-space verification: for tiny shapes, sweep the
 *  *entire* input space (or a dense randomized cover of it) so the
 *  bit-exactness claims do not rest on sampled seeds alone. */
#include <gtest/gtest.h>

#include "brcr/brcr_engine.hpp"
#include "bstc/codec.hpp"
#include "bstc/compressed_weight.hpp"
#include "common/rng.hpp"
#include "quant/gemm.hpp"

namespace mcbp {
namespace {

TEST(Exhaustive, BrcrSingleElementAllValues)
{
    // Every (weight, activation) pair in INT8 x INT8 through a 1x1 GEMV.
    brcr::BrcrEngine engine({1, quant::BitWidth::Int8});
    for (int wv = -127; wv <= 127; wv += 3) {
        for (int xv = -127; xv <= 127; xv += 7) {
            Int8Matrix w(1, 1);
            w.at(0, 0) = static_cast<std::int8_t>(wv);
            std::vector<std::int8_t> x = {
                static_cast<std::int8_t>(xv)};
            ASSERT_EQ(engine.gemv(w, x).y[0], wv * xv)
                << wv << " * " << xv;
        }
    }
}

TEST(Exhaustive, BrcrAllTwoByTwoBitMatrices)
{
    // All 2^4 binary 2x2 matrices times a fixed activation, at m=2.
    brcr::BrcrEngine engine({2, quant::BitWidth::Int8});
    std::vector<std::int8_t> x = {3, -5};
    for (unsigned bits = 0; bits < 16; ++bits) {
        Int8Matrix w(2, 2);
        w.at(0, 0) = (bits >> 0) & 1;
        w.at(0, 1) = (bits >> 1) & 1;
        w.at(1, 0) = (bits >> 2) & 1;
        w.at(1, 1) = (bits >> 3) & 1;
        EXPECT_EQ(engine.gemv(w, x).y, quant::gemvInt(w, x))
            << "matrix bits " << bits;
    }
}

TEST(Exhaustive, BrcrSignPatternSweep)
{
    // All 2^6 sign patterns over a 6-element row of fixed magnitudes.
    brcr::BrcrEngine engine;
    std::vector<std::int8_t> x = {1, 2, 3, 4, 5, 6};
    const int mags[6] = {1, 7, 16, 33, 64, 127};
    for (unsigned signs = 0; signs < 64; ++signs) {
        Int8Matrix w(1, 6);
        for (unsigned i = 0; i < 6; ++i)
            w.at(0, i) = static_cast<std::int8_t>(
                (signs >> i) & 1 ? -mags[i] : mags[i]);
        EXPECT_EQ(engine.gemv(w, x).y, quant::gemvInt(w, x))
            << "sign pattern " << signs;
        EXPECT_EQ(engine.gemvTernary(w, x).y, quant::gemvInt(w, x))
            << "ternary sign pattern " << signs;
    }
}

TEST(Exhaustive, CodecAllFourBitColumns)
{
    // Every possible m=4 column pattern round-trips through the
    // two-state code, alone and concatenated.
    bitslice::BitPlane plane(4, 16);
    for (std::size_t c = 0; c < 16; ++c)
        for (std::size_t r = 0; r < 4; ++r)
            plane.set(r, c, (c >> r) & 1);
    bstc::BitWriter w;
    bstc::encodePlane(plane, 4, w);
    bstc::BitReader r(w);
    EXPECT_TRUE(bstc::decodePlane(r, 4, 4, 16) == plane);
}

TEST(Exhaustive, CompressedWeightDegenerateShapes)
{
    // 1x1, 1xN, Nx1, and prime-sized shapes all round-trip.
    Rng rng(5);
    bstc::PlanePolicy policy = bstc::paperDefaultPolicy(7);
    for (auto [rows, cols] :
         {std::pair<std::size_t, std::size_t>{1, 1},
          {1, 257},
          {31, 1},
          {13, 97},
          {5, 1031}}) {
        Int8Matrix m(rows, cols);
        m.fill([&](std::size_t, std::size_t) {
            return static_cast<std::int8_t>(
                static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
        });
        bstc::CompressedWeight cw(m, quant::BitWidth::Int8, 4, policy,
                                  64);
        EXPECT_EQ(cw.decompressToMatrix(), m)
            << rows << "x" << cols;
    }
}

TEST(Exhaustive, GemmRandomizedCoverAllGroupSizes)
{
    // Dense randomized cover over every supported group size with
    // awkward (prime) shapes.
    Rng rng(6);
    for (std::size_t m = 1; m <= 12; ++m) {
        Int8Matrix w(11, 53);
        w.fill([&](std::size_t, std::size_t) {
            return static_cast<std::int8_t>(
                static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
        });
        Int8Matrix x(53, 3);
        x.fill([&](std::size_t, std::size_t) {
            return static_cast<std::int8_t>(
                static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
        });
        brcr::BrcrEngine engine({m, quant::BitWidth::Int8});
        EXPECT_EQ(engine.gemm(w, x).y, quant::gemmInt(w, x))
            << "group size " << m;
    }
}

} // namespace
} // namespace mcbp
