/** @file Unit tests for bitslice/sign_magnitude. */
#include <gtest/gtest.h>

#include "bitslice/sign_magnitude.hpp"
#include "common/rng.hpp"
#include "quant/gemm.hpp"

namespace mcbp::bitslice {
namespace {

Int8Matrix
randomInt8(std::uint64_t seed, std::size_t r, std::size_t c, int limit)
{
    Rng rng(seed);
    Int8Matrix m(r, c);
    m.fill([&](std::size_t, std::size_t) {
        return static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(2 * limit + 1)) -
            limit);
    });
    return m;
}

TEST(SignMagnitude, PlaneCount)
{
    Int8Matrix w(2, 2);
    EXPECT_EQ(decompose(w, quant::BitWidth::Int8).planeCount(), 7u);
    EXPECT_EQ(decompose(w, quant::BitWidth::Int4).planeCount(), 3u);
}

TEST(SignMagnitude, ExhaustiveInt8RoundTrip)
{
    // Every representable INT8 SM value round-trips exactly.
    Int8Matrix w(1, 255);
    for (int v = -127; v <= 127; ++v)
        w.at(0, static_cast<std::size_t>(v + 127)) =
            static_cast<std::int8_t>(v);
    SignMagnitude sm = decompose(w, quant::BitWidth::Int8);
    EXPECT_EQ(reconstruct(sm), w);
}

TEST(SignMagnitude, ExhaustiveInt4RoundTrip)
{
    Int8Matrix w(1, 15);
    for (int v = -7; v <= 7; ++v)
        w.at(0, static_cast<std::size_t>(v + 7)) =
            static_cast<std::int8_t>(v);
    SignMagnitude sm = decompose(w, quant::BitWidth::Int4);
    EXPECT_EQ(reconstruct(sm), w);
}

TEST(SignMagnitude, RandomRoundTrip)
{
    Int8Matrix w = randomInt8(1, 33, 129, 127);
    SignMagnitude sm = decompose(w, quant::BitWidth::Int8);
    EXPECT_EQ(reconstruct(sm), w);
}

TEST(SignMagnitude, OutOfRangeInt4Fatal)
{
    Int8Matrix w(1, 1);
    w.at(0, 0) = 9;
    EXPECT_THROW(decompose(w, quant::BitWidth::Int4), std::runtime_error);
}

TEST(SignMagnitude, SignPlaneOnlyForNegatives)
{
    Int8Matrix w(1, 3);
    w.at(0, 0) = 5;
    w.at(0, 1) = -5;
    w.at(0, 2) = 0;
    SignMagnitude sm = decompose(w, quant::BitWidth::Int8);
    EXPECT_FALSE(sm.sign.get(0, 0));
    EXPECT_TRUE(sm.sign.get(0, 1));
    EXPECT_FALSE(sm.sign.get(0, 2));
}

TEST(SignMagnitude, PlaneBitsMatchMagnitude)
{
    Int8Matrix w(1, 1);
    w.at(0, 0) = -0b0101101; // magnitude 45
    SignMagnitude sm = decompose(w, quant::BitWidth::Int8);
    EXPECT_TRUE(sm.magnitude[0].get(0, 0));  // bit 0
    EXPECT_FALSE(sm.magnitude[1].get(0, 0)); // bit 1
    EXPECT_TRUE(sm.magnitude[2].get(0, 0));  // bit 2
    EXPECT_TRUE(sm.magnitude[3].get(0, 0));  // bit 3
    EXPECT_FALSE(sm.magnitude[4].get(0, 0));
    EXPECT_TRUE(sm.magnitude[5].get(0, 0));
    EXPECT_FALSE(sm.magnitude[6].get(0, 0));
}

TEST(SignMagnitude, BitSerialGemvMatchesReference)
{
    // The shift-and-accumulate compute equivalence of section 2.3.
    for (std::uint64_t seed : {2u, 3u, 4u}) {
        Int8Matrix w = randomInt8(seed, 24, 96, 127);
        Rng rng(seed + 100);
        std::vector<std::int8_t> x(96);
        for (auto &v : x)
            v = static_cast<std::int8_t>(
                static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
        SignMagnitude sm = decompose(w, quant::BitWidth::Int8);
        EXPECT_EQ(bitSerialGemv(sm, x), quant::gemvInt(w, x));
    }
}

TEST(SignMagnitude, SignSplitDisjointSupport)
{
    Int8Matrix w = randomInt8(5, 16, 64, 127);
    SignSplit split = decomposeSignSplit(w, quant::BitWidth::Int8);
    Int8Matrix pos = reconstruct(split.positive);
    Int8Matrix neg = reconstruct(split.negative);
    for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c) {
            // w = pos - neg, with disjoint support.
            EXPECT_EQ(w.at(r, c), pos.at(r, c) - neg.at(r, c));
            EXPECT_TRUE(pos.at(r, c) == 0 || neg.at(r, c) == 0);
            EXPECT_GE(pos.at(r, c), 0);
            EXPECT_GE(neg.at(r, c), 0);
        }
    }
    // Sign planes of the halves are empty (all magnitudes non-negative).
    EXPECT_EQ(split.positive.sign.countOnes(), 0u);
    EXPECT_EQ(split.negative.sign.countOnes(), 0u);
}

TEST(SignMagnitude, TotalBitsConserved)
{
    // Sign-split does not change the total number of magnitude one-bits.
    Int8Matrix w = randomInt8(6, 20, 80, 127);
    SignMagnitude sm = decompose(w, quant::BitWidth::Int8);
    SignSplit split = decomposeSignSplit(w, quant::BitWidth::Int8);
    std::uint64_t whole = 0, halves = 0;
    for (std::size_t p = 0; p < 7; ++p) {
        whole += sm.magnitude[p].countOnes();
        halves += split.positive.magnitude[p].countOnes() +
                  split.negative.magnitude[p].countOnes();
    }
    EXPECT_EQ(whole, halves);
}

} // namespace
} // namespace mcbp::bitslice
