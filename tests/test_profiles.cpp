/** @file Unit tests for accel/profiles: measured workload statistics. */
#include <gtest/gtest.h>

#include "accel/profiles.hpp"
#include "model/workload.hpp"

namespace mcbp::accel {
namespace {

TEST(WeightProfile, RangesAreRealistic)
{
    const model::LlmConfig &m = model::findModel("Llama7B");
    WeightStats ws = profileWeights(m, quant::BitWidth::Int8, 1);
    // Fig 5(d)/Fig 25: value sparsity a few percent, bit sparsity ~0.7.
    EXPECT_GT(ws.valueSparsity, 0.005);
    EXPECT_LT(ws.valueSparsity, 0.2);
    EXPECT_GT(ws.meanBitSparsity, 0.55);
    EXPECT_LT(ws.meanBitSparsity, 0.92);
    EXPECT_EQ(ws.planeSparsity.size(), 7u);
    // BRCR must beat the sparse bit-serial reference per MAC.
    EXPECT_LT(ws.brcrAddsPerMac, ws.bscAddsPerMac);
    EXPECT_GT(ws.brcrAddsPerMac, 0.1);
    // Fractions partition the adds.
    EXPECT_GT(ws.mergeFraction, 0.0);
    EXPECT_GT(ws.reconFraction, 0.0);
    EXPECT_LT(ws.mergeFraction + ws.reconFraction, 1.01);
    EXPECT_GT(ws.bstcCompressionRatio, 1.0);
    EXPECT_GT(ws.bstcSymbolsPerByte, 0.0);
}

TEST(WeightProfile, DeterministicForSeed)
{
    const model::LlmConfig &m = model::findModel("OPT1B3");
    WeightStats a = profileWeights(m, quant::BitWidth::Int8, 7);
    WeightStats b = profileWeights(m, quant::BitWidth::Int8, 7);
    EXPECT_DOUBLE_EQ(a.brcrAddsPerMac, b.brcrAddsPerMac);
    EXPECT_DOUBLE_EQ(a.bstcCompressionRatio, b.bstcCompressionRatio);
}

TEST(WeightProfile, Int4SparserValues)
{
    // Fig 25(c): INT4 quantization raises value sparsity markedly.
    const model::LlmConfig &m = model::findModel("Llama13B");
    WeightStats w8 = profileWeights(m, quant::BitWidth::Int8, 3);
    WeightStats w4 = profileWeights(m, quant::BitWidth::Int4, 3);
    EXPECT_GT(w4.valueSparsity, w8.valueSparsity * 1.5);
    EXPECT_EQ(w4.planeSparsity.size(), 3u);
}

TEST(AttentionProfile, RangesAreRealistic)
{
    const model::LlmConfig &m = model::findModel("Llama7B");
    const model::Workload &t = model::findTask("Dolly");
    AttentionStats as = profileAttention(m, t, 0.6, 1);
    EXPECT_GT(as.bgppSelectedFraction, 0.01);
    EXPECT_LT(as.bgppSelectedFraction, 0.6);
    // BGPP prediction traffic sits below the 5-bit value baseline.
    EXPECT_LT(as.bgppPredBitsPerElem, as.valuePredBitsPerElem);
    EXPECT_GT(as.bgppPredBitsPerElem, 1.9); // at least sign+MSB round.
    EXPECT_GT(as.bgppRecall, 0.75);
}

TEST(AttentionProfile, AlphaMonotone)
{
    const model::LlmConfig &m = model::findModel("Llama7B");
    const model::Workload &t = model::findTask("MMLU");
    AttentionStats strict = profileAttention(m, t, 0.3, 2);
    AttentionStats loose = profileAttention(m, t, 0.8, 2);
    EXPECT_LE(strict.bgppSelectedFraction,
              loose.bgppSelectedFraction + 0.02);
}

TEST(AttentionProfile, ParallelBitIdenticalToSerial)
{
    // The per-query fan-out derives each query's RNG from (seed, qi)
    // and joins partial sums in index order, so every statistic must
    // be bit-identical between the serial reference path (threads=1)
    // and the thread-pool path (threads=0) — across context buckets,
    // concentrations and alphas.
    const model::LlmConfig &m = model::findModel("Llama7B");
    const struct
    {
        std::size_t promptLen;
        double concentration;
        double alpha;
    } cases[] = {
        {64, 0.10, 0.6},  {256, 0.25, 0.6},  {512, 0.15, 0.5},
        {2048, 0.10, 0.6}, {1024, 0.20, 0.8},
    };
    for (const auto &c : cases) {
        model::Workload task = model::findTask("Cola");
        task.promptLen = c.promptLen;
        task.attentionConcentration = c.concentration;
        const AttentionStats serial =
            profileAttention(m, task, c.alpha, 1, 2048, 8, 1);
        const AttentionStats pooled =
            profileAttention(m, task, c.alpha, 1, 2048, 8, 0);
        EXPECT_EQ(serial.bgppSelectedFraction,
                  pooled.bgppSelectedFraction);
        EXPECT_EQ(serial.topkFraction, pooled.topkFraction);
        EXPECT_EQ(serial.bgppPredBitsPerElem, pooled.bgppPredBitsPerElem);
        EXPECT_EQ(serial.bgppBitMacsPerElem, pooled.bgppBitMacsPerElem);
        EXPECT_EQ(serial.bgppRecall, pooled.bgppRecall);
        EXPECT_EQ(serial.valueTopkRecall, pooled.valueTopkRecall);
    }
}

TEST(AttentionProfile, LongContextSparser)
{
    // Dolly (concentration 0.10) prunes harder than Cola (0.25).
    const model::LlmConfig &m = model::findModel("Llama7B");
    AttentionStats dolly =
        profileAttention(m, model::findTask("Dolly"), 0.6, 4);
    AttentionStats cola =
        profileAttention(m, model::findTask("Cola"), 0.6, 4);
    EXPECT_LT(dolly.bgppSelectedFraction, cola.bgppSelectedFraction);
}

} // namespace
} // namespace mcbp::accel
