/** @file Unit tests for model/: llm_config, workload, synthetic, kv_cache. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "model/kv_cache.hpp"
#include "model/llm_config.hpp"
#include "model/synthetic.hpp"
#include "model/workload.hpp"

namespace mcbp::model {
namespace {

TEST(LlmConfig, ZooHasFiveModels)
{
    EXPECT_EQ(modelZoo().size(), 5u);
    EXPECT_NO_THROW(findModel("Llama7B"));
    EXPECT_NO_THROW(findModel("Llama13B"));
    EXPECT_NO_THROW(findModel("OPT1B3"));
    EXPECT_NO_THROW(findModel("Bloom1B7"));
    EXPECT_NO_THROW(findModel("Qwen7B"));
    EXPECT_THROW(findModel("GPT5"), std::runtime_error);
}

TEST(LlmConfig, Llama7BParameterCount)
{
    const LlmConfig &m = findModel("Llama7B");
    // Attention + FFN params of the decoder stack: ~6.5B for Llama-7B.
    const double params = static_cast<double>(m.totalParams());
    EXPECT_GT(params, 5.5e9);
    EXPECT_LT(params, 7.5e9);
    EXPECT_EQ(m.headDim(), 128u);
}

TEST(LlmConfig, LargerModelMoreParams)
{
    EXPECT_GT(findModel("Llama13B").totalParams(),
              findModel("Llama7B").totalParams());
    EXPECT_GT(findModel("Llama7B").totalParams(),
              findModel("OPT1B3").totalParams());
}

TEST(LlmConfig, MacsScaleWithSequence)
{
    const LlmConfig &m = findModel("Llama7B");
    EXPECT_GT(m.prefillMacs(2048), m.prefillMacs(1024));
    // Attention grows quadratically: doubling S more than doubles the
    // attention-only MACs.
    EXPECT_GT(m.prefillAttentionMacs(2048),
              3 * m.prefillAttentionMacs(1024));
}

TEST(LlmConfig, DecodeMacsGrowWithContext)
{
    const LlmConfig &m = findModel("Llama7B");
    EXPECT_GT(m.decodeMacsPerToken(8192), m.decodeMacsPerToken(1024));
    // Linear part dominates small contexts.
    EXPECT_GT(m.decodeMacsPerToken(128),
              m.totalParams());
}

TEST(LlmConfig, TrafficAccounting)
{
    const LlmConfig &m = findModel("OPT1B3");
    EXPECT_EQ(m.weightBytes(), m.totalParams());
    EXPECT_EQ(m.kvBytesPerToken(), 2u * 2048u * 24u);
    EXPECT_EQ(m.kvReadBytesPerToken(100), 100u * 2u * 2048u * 24u);
}

TEST(Workload, ZooHasNineTasks)
{
    EXPECT_EQ(taskZoo().size(), 9u);
    EXPECT_EQ(findTask("Dolly").promptLen, 8192u);
    EXPECT_EQ(findTask("Cola").promptLen, 256u);
    EXPECT_THROW(findTask("nonsense"), std::runtime_error);
}

TEST(Workload, WithLengths)
{
    Workload w = withLengths(findTask("Dolly"), 1024, 48);
    EXPECT_EQ(w.promptLen, 1024u);
    EXPECT_EQ(w.decodeLen, 48u);
    EXPECT_EQ(w.name, "Dolly");
}

TEST(Synthetic, GaussianWeightsMoments)
{
    Rng rng(1);
    WeightProfile profile;
    profile.sigma = 0.02;
    profile.outlierFraction = 0.0;
    FloatMatrix w = gaussianWeights(rng, 64, 256, profile);
    double sum = 0.0, sum2 = 0.0;
    w.forEach([&](std::size_t, std::size_t, float v) {
        sum += v;
        sum2 += static_cast<double>(v) * v;
    });
    const double n = 64.0 * 256.0;
    EXPECT_NEAR(sum / n, 0.0, 0.001);
    EXPECT_NEAR(std::sqrt(sum2 / n), 0.02, 0.002);
}

TEST(Synthetic, OutliersWidenRange)
{
    Rng rng1(2), rng2(2);
    WeightProfile no_out;
    no_out.outlierFraction = 0.0;
    WeightProfile with_out;
    with_out.outlierFraction = 0.01;
    with_out.dynamicRange = 20.0;
    float max_plain = 0.0f, max_out = 0.0f;
    gaussianWeights(rng1, 64, 256, no_out)
        .forEach([&](std::size_t, std::size_t, float v) {
            max_plain = std::max(max_plain, std::abs(v));
        });
    gaussianWeights(rng2, 64, 256, with_out)
        .forEach([&](std::size_t, std::size_t, float v) {
            max_out = std::max(max_out, std::abs(v));
        });
    EXPECT_GT(max_out, max_plain * 2.0f);
}

TEST(Synthetic, AttentionSetShapes)
{
    Rng rng(3);
    AttentionSet set = synthesizeAttention(rng, 100, 32, 0.2);
    EXPECT_EQ(set.query.size(), 32u);
    EXPECT_EQ(set.keys.rows(), 100u);
    EXPECT_EQ(set.keys.cols(), 32u);
    EXPECT_GT(set.logitScale, 0.0);
}

TEST(Synthetic, AttentionConcentrationSeparable)
{
    // Scores in logit units must show a vital subset near the max and a
    // bulk far below it (> radius 3 gap).
    Rng rng(4);
    AttentionSet set = synthesizeAttention(rng, 200, 64, 0.1);
    std::vector<double> logits(200);
    double mx = -1e30;
    for (std::size_t j = 0; j < 200; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < 64; ++i)
            acc += static_cast<double>(set.query[i]) * set.keys.at(j, i);
        logits[j] = acc * set.logitScale;
        mx = std::max(mx, logits[j]);
    }
    std::size_t near = 0, far = 0;
    for (double l : logits) {
        if (mx - l < 3.0)
            ++near;
        if (mx - l > 4.0)
            ++far;
    }
    EXPECT_GT(near, 5u);
    EXPECT_LT(near, 80u);
    EXPECT_GT(far, 100u);
}

TEST(Synthetic, BadArgumentsFatal)
{
    Rng rng(5);
    EXPECT_THROW(synthesizeAttention(rng, 0, 8, 0.1), std::runtime_error);
    EXPECT_THROW(synthesizeAttention(rng, 8, 8, 0.0), std::runtime_error);
    WeightProfile bad;
    bad.sigma = 0.0;
    EXPECT_THROW(gaussianWeights(rng, 2, 2, bad), std::runtime_error);
}

TEST(KvCache, AppendAndRead)
{
    KvCache cache(4);
    cache.append({1, 2, 3, 4}, {5, 6, 7, 8});
    cache.append({9, 10, 11, 12}, {13, 14, 15, 16});
    EXPECT_EQ(cache.length(), 2u);
    EXPECT_EQ(cache.readKey(0)[2], 3);
    EXPECT_EQ(cache.readValue(1)[0], 13);
    EXPECT_EQ(cache.keys().rows(), 2u);
}

TEST(KvCache, ByteAccounting)
{
    KvCache cache(8);
    cache.append(std::vector<std::int8_t>(8), std::vector<std::int8_t>(8));
    EXPECT_EQ(cache.bytesWritten(), 16u);
    cache.readKey(0);
    cache.readValue(0);
    EXPECT_EQ(cache.bytesRead(), 16u);
}

TEST(KvCache, Errors)
{
    KvCache cache(4);
    EXPECT_THROW(cache.append({1, 2}, {1, 2, 3, 4}), std::runtime_error);
    EXPECT_THROW(cache.readKey(0), std::runtime_error);
    EXPECT_THROW(KvCache(0), std::runtime_error);
}

} // namespace
} // namespace mcbp::model
