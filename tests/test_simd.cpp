/**
 * @file
 * Golden tests for the dispatched SIMD kernels (common/simd/): every
 * compiled-and-runnable tier must be bit-identical to a local naive
 * reference on every shape — including empty spans, single words,
 * partial tail words and block-boundary sizes — plus the MCBP_SIMD
 * override-resolution rule and forceTier() plane-op identity.
 */
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "bitslice/bit_plane.hpp"
#include "common/rng.hpp"
#include "common/simd/simd.hpp"

namespace mcbp::simd {
namespace {

/** Every tier the host can actually execute. */
std::vector<Tier>
runnableTiers()
{
    std::vector<Tier> tiers = {Tier::Scalar};
    if (availableTier() >= Tier::Avx2)
        tiers.push_back(Tier::Avx2);
    if (availableTier() >= Tier::Avx512)
        tiers.push_back(Tier::Avx512);
    return tiers;
}

/** Odd shapes: tails, single words, block boundaries of both ISAs. */
const std::size_t kWordSizes[] = {0,  1,  3,   7,   8,   15,  16,  17,
                                  63, 64, 65,  127, 128, 129, 200, 255,
                                  256, 257, 1000};

std::vector<std::uint64_t>
randomWords(Rng &rng, std::size_t n)
{
    std::vector<std::uint64_t> w(n);
    for (auto &v : w)
        v = rng.next();
    return w;
}

TEST(SimdKernels, PopcountOrMatchScalarReference)
{
    Rng rng(101);
    for (const std::size_t n : kWordSizes) {
        const auto words = randomWords(rng, n);
        std::uint64_t ref_pop = 0, ref_or = 0;
        for (const std::uint64_t v : words) {
            ref_pop += static_cast<std::uint64_t>(std::popcount(v));
            ref_or |= v;
        }
        for (const Tier t : runnableTiers()) {
            const Kernels &k = kernelsFor(t);
            EXPECT_EQ(k.popcountWords(words.data(), n), ref_pop)
                << tierName(t) << " n=" << n;
            EXPECT_EQ(k.orWords(words.data(), n), ref_or)
                << tierName(t) << " n=" << n;
        }
    }
}

TEST(SimdKernels, PopcountSpecialPatterns)
{
    for (const std::size_t n : {std::size_t{65}, std::size_t{129}}) {
        const std::vector<std::uint64_t> ones(n, ~std::uint64_t{0});
        const std::vector<std::uint64_t> zeros(n, 0);
        for (const Tier t : runnableTiers()) {
            const Kernels &k = kernelsFor(t);
            EXPECT_EQ(k.popcountWords(ones.data(), n), n * 64);
            EXPECT_EQ(k.popcountWords(zeros.data(), n), 0u);
        }
    }
}

TEST(SimdKernels, AndPopcountMatchesScalarReference)
{
    Rng rng(102);
    for (const std::size_t n : kWordSizes) {
        const auto a = randomWords(rng, n);
        const auto b = randomWords(rng, n);
        std::vector<std::uint64_t> ref_dst(n);
        std::uint64_t ref_count = 0;
        for (std::size_t i = 0; i < n; ++i) {
            ref_dst[i] = a[i] & b[i];
            ref_count +=
                static_cast<std::uint64_t>(std::popcount(ref_dst[i]));
        }
        for (const Tier t : runnableTiers()) {
            const Kernels &k = kernelsFor(t);
            std::vector<std::uint64_t> dst(n, 0xdeadbeefull);
            EXPECT_EQ(k.andPopcountWords(dst.data(), a.data(), b.data(),
                                         n),
                      ref_count)
                << tierName(t) << " n=" << n;
            EXPECT_EQ(dst, ref_dst) << tierName(t) << " n=" << n;
        }
    }
}

TEST(SimdKernels, EqualWordsFindsEveryDifferencePosition)
{
    Rng rng(103);
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{7}, std::size_t{16},
          std::size_t{17}, std::size_t{64}, std::size_t{65},
          std::size_t{130}}) {
        const auto a = randomWords(rng, n);
        auto b = a;
        for (const Tier t : runnableTiers()) {
            EXPECT_TRUE(kernelsFor(t).equalWords(a.data(), b.data(), n))
                << tierName(t) << " n=" << n;
        }
        // Flip one bit at a time across the span: every position must
        // be seen by every tier (catches bad tail masking).
        for (std::size_t pos = 0; pos < n;
             pos = pos * 2 + 1) { // 0, 1, 3, 7, ... plus the last word
            b[pos] ^= 1;
            for (const Tier t : runnableTiers())
                EXPECT_FALSE(
                    kernelsFor(t).equalWords(a.data(), b.data(), n))
                    << tierName(t) << " n=" << n << " pos=" << pos;
            b[pos] ^= 1;
        }
        b[n - 1] ^= std::uint64_t{1} << 63;
        for (const Tier t : runnableTiers())
            EXPECT_FALSE(kernelsFor(t).equalWords(a.data(), b.data(), n))
                << tierName(t) << " n=" << n << " last-word MSB";
        b[n - 1] ^= std::uint64_t{1} << 63;
    }
    for (const Tier t : runnableTiers())
        EXPECT_TRUE(kernelsFor(t).equalWords(nullptr, nullptr, 0));
}

TEST(SimdKernels, CountZeroAndNonzeroMaskMatchScalarReference)
{
    Rng rng(104);
    const std::size_t sizes[] = {0,  1,  3,  31, 32,  33,  63,  64,
                                 65, 96, 127, 128, 129, 255, 1000};
    for (const std::size_t n : sizes) {
        std::vector<std::uint32_t> v(n);
        for (auto &x : v) // dense-in-zeros like a sparse plane
            x = rng.uniformInt(100) < 70
                    ? 0u
                    : static_cast<std::uint32_t>(rng.next());
        std::size_t ref_zeros = 0;
        const std::size_t mask_words = (n + 63) / 64;
        std::vector<std::uint64_t> ref_mask(mask_words, 0);
        for (std::size_t i = 0; i < n; ++i) {
            if (v[i] == 0)
                ++ref_zeros;
            else
                ref_mask[i >> 6] |= std::uint64_t{1} << (i & 63);
        }
        for (const Tier t : runnableTiers()) {
            const Kernels &k = kernelsFor(t);
            EXPECT_EQ(k.countZero32(v.data(), n), ref_zeros)
                << tierName(t) << " n=" << n;
            // Pre-poison the mask: the kernel must fully overwrite it,
            // including zeroing the tail bits of a partial last word.
            std::vector<std::uint64_t> mask(mask_words,
                                            ~std::uint64_t{0});
            k.nonzeroMask32(v.data(), n, mask.data());
            EXPECT_EQ(mask, ref_mask) << tierName(t) << " n=" << n;
        }
    }
}

TEST(SimdDispatch, TierTablesReportTheirTier)
{
    for (const Tier t : runnableTiers())
        EXPECT_EQ(kernelsFor(t).tier, t);
    // Requests above the host's best clamp instead of faulting.
    EXPECT_EQ(kernelsFor(Tier::Avx512).tier <= availableTier(), true);
    EXPECT_LE(activeTier(), availableTier());
    EXPECT_EQ(kernels().popcountWords != nullptr, true);
}

TEST(SimdDispatch, ResolveTierClampsDownOnly)
{
    // Valid overrides clamp down, never up.
    EXPECT_EQ(resolveTier("scalar", Tier::Avx512), Tier::Scalar);
    EXPECT_EQ(resolveTier("avx2", Tier::Avx512), Tier::Avx2);
    EXPECT_EQ(resolveTier("avx512", Tier::Avx512), Tier::Avx512);
    EXPECT_EQ(resolveTier("avx512", Tier::Avx2), Tier::Avx2);
    EXPECT_EQ(resolveTier("avx512", Tier::Scalar), Tier::Scalar);
    EXPECT_EQ(resolveTier("avx2", Tier::Scalar), Tier::Scalar);
    // No/unknown override: the available tier wins.
    EXPECT_EQ(resolveTier(nullptr, Tier::Avx2), Tier::Avx2);
    EXPECT_EQ(resolveTier("", Tier::Avx2), Tier::Avx2);
    EXPECT_EQ(resolveTier("AVX2", Tier::Avx512), Tier::Avx512);
    EXPECT_EQ(resolveTier("neon", Tier::Avx2), Tier::Avx2);
}

TEST(SimdDispatch, ForceTierSwapsAndResets)
{
    const Tier installed = forceTier(Tier::Scalar);
    EXPECT_EQ(installed, Tier::Scalar);
    EXPECT_EQ(kernels().tier, Tier::Scalar);
    const Tier best = forceTier(Tier::Avx512); // clamped to available
    EXPECT_EQ(best, availableTier());
    EXPECT_EQ(kernels().tier, availableTier());
    resetTier();
    EXPECT_EQ(kernels().tier, activeTier());
}

/** Whole-plane ops must agree bit-for-bit across dispatch tiers. */
TEST(SimdPlaneOps, PlaneScansIdenticalAcrossTiers)
{
    struct Shape
    {
        std::size_t rows, cols;
    };
    // Odd shapes: empty, 1-column, partial tail word, multi-word rows.
    const Shape shapes[] = {{0, 0},   {4, 0},   {0, 5},  {1, 1},
                            {3, 1},   {5, 63},  {4, 64}, {7, 65},
                            {16, 100}, {8, 1000}};
    Rng rng(105);
    for (const Shape &sh : shapes) {
        bitslice::BitPlane plane(sh.rows, sh.cols);
        for (std::size_t r = 0; r < sh.rows; ++r)
            for (std::size_t c = 0; c < sh.cols; ++c)
                if (rng.uniformInt(100) < 30)
                    plane.set(r, c, true);
        bitslice::BitPlane all_ones(sh.rows, sh.cols);
        for (std::size_t r = 0; r < sh.rows; ++r)
            for (std::size_t c = 0; c < sh.cols; ++c)
                all_ones.set(r, c, true);

        std::uint64_t ref_count = 0;
        bool first = true;
        for (const Tier t : runnableTiers()) {
            forceTier(t);
            const std::uint64_t count = plane.countOnes();
            EXPECT_EQ(all_ones.countOnes(), sh.rows * sh.cols)
                << tierName(t);
            EXPECT_TRUE(plane == plane) << tierName(t);
            EXPECT_TRUE(all_ones == all_ones) << tierName(t);
            if (sh.rows > 0) {
                std::uint64_t row_sum = 0;
                for (std::size_t r = 0; r < sh.rows; ++r)
                    row_sum += plane.countOnesInRow(r);
                EXPECT_EQ(row_sum, count) << tierName(t);
            }
            if (first) {
                ref_count = count;
                first = false;
            } else {
                EXPECT_EQ(count, ref_count) << tierName(t);
            }
        }
        resetTier();
    }
}

} // namespace
} // namespace mcbp::simd
