/** @file Unit tests for common/stats. */
#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace mcbp {
namespace {

TEST(StatRegistry, AddAndGet)
{
    StatRegistry r;
    EXPECT_EQ(r.get("x"), 0u);
    EXPECT_FALSE(r.has("x"));
    r.add("x", 5);
    r.inc("x");
    EXPECT_EQ(r.get("x"), 6u);
    EXPECT_TRUE(r.has("x"));
}

TEST(StatRegistry, ClearKeepsNames)
{
    StatRegistry r;
    r.add("a", 3);
    r.clear();
    EXPECT_TRUE(r.has("a"));
    EXPECT_EQ(r.get("a"), 0u);
}

TEST(StatRegistry, Merge)
{
    StatRegistry a, b;
    a.add("x", 1);
    b.add("x", 2);
    b.add("y", 3);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 3u);
}

TEST(StatRegistry, NamesSorted)
{
    StatRegistry r;
    r.add("zeta", 1);
    r.add("alpha", 1);
    auto names = r.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(StatRegistry, ToStringContains)
{
    StatRegistry r;
    r.add("adds", 42);
    EXPECT_NE(r.toString().find("adds = 42"), std::string::npos);
}

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStat, Accumulates)
{
    RunningStat s;
    s.observe(1.0);
    s.observe(3.0);
    s.observe(-2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), -2.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_NEAR(s.mean(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.observe(7.0);
    EXPECT_DOUBLE_EQ(s.min(), 7.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
    EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

} // namespace
} // namespace mcbp
