/** @file Cross-cutting randomized property tests: invariants that must
 *  hold across module boundaries for any seed. */
#include <gtest/gtest.h>

#include "accel/mcbp_accelerator.hpp"
#include "bgpp/bgpp_predictor.hpp"
#include "bgpp/topk_baseline.hpp"
#include "brcr/brcr_engine.hpp"
#include "bstc/compressed_weight.hpp"
#include "bstc/value_codec.hpp"
#include "common/rng.hpp"
#include "model/synthetic.hpp"
#include "quant/gemm.hpp"
#include "sim/tiling.hpp"

namespace mcbp {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeededProperty, ThreeWayGemvAgreement)
{
    // Reference integer GEMV, bit-serial SM GEMV and the BRCR engine
    // must agree exactly on arbitrary inputs.
    Rng rng(GetParam());
    const std::size_t rows = 8 + rng.uniformInt(40);
    const std::size_t cols = 16 + rng.uniformInt(300);
    Int8Matrix w(rows, cols);
    w.fill([&](std::size_t, std::size_t) {
        return static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
    });
    std::vector<std::int8_t> x(cols);
    for (auto &v : x)
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);

    std::vector<std::int32_t> ref = quant::gemvInt(w, x);
    bitslice::SignMagnitude sm =
        bitslice::decompose(w, quant::BitWidth::Int8);
    EXPECT_EQ(bitslice::bitSerialGemv(sm, x), ref);
    brcr::BrcrEngine engine;
    EXPECT_EQ(engine.gemv(w, x).y, ref);
}

TEST_P(SeededProperty, AllCompressorsAreLossless)
{
    Rng rng(GetParam() ^ 0xc0ffee);
    model::WeightProfile profile;
    profile.dynamicRange = 8.0 + rng.uniform() * 16.0;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 16 + rng.uniformInt(32), 64 + rng.uniformInt(256),
        quant::BitWidth::Int8, profile);

    bstc::CompressedWeight cw(qw.values, quant::BitWidth::Int8, 4,
                              bstc::paperDefaultPolicy(7), 128);
    EXPECT_EQ(cw.decompressToMatrix(), qw.values);
    EXPECT_EQ(bstc::rleDecode(bstc::rleEncode(qw.values)), qw.values);
    EXPECT_EQ(bstc::huffmanDecode(bstc::huffmanEncode(qw.values)),
              qw.values);
}

TEST_P(SeededProperty, BgppTrafficBounds)
{
    // BGPP never fetches more than (rounds + sign) bits per element nor
    // fewer than the first round's sign+MSB of every key.
    Rng rng(GetParam() ^ 0xbeef);
    const std::size_t s = 64 + rng.uniformInt(512);
    const std::size_t d = 32;
    model::AttentionSet set =
        model::synthesizeAttention(rng, s, d, 0.1 + rng.uniform() * 0.2);
    bgpp::BgppConfig cfg;
    cfg.rounds = 4;
    cfg.logitScale = set.logitScale;
    bgpp::BgppPredictor pred(cfg);
    bgpp::BgppResult r = pred.predict(set.query, set.keys);
    const std::uint64_t elems = static_cast<std::uint64_t>(s) * d;
    EXPECT_GE(r.bitsFetched, elems * 2);
    EXPECT_LE(r.bitsFetched, elems * 5); // sign + 4 magnitude rounds.
    EXPECT_GE(r.selected.size(), 1u);
    EXPECT_LE(r.selected.size(), s);
    // Selected indices are sorted and unique.
    for (std::size_t i = 1; i < r.selected.size(); ++i)
        EXPECT_LT(r.selected[i - 1], r.selected[i]);
}

TEST_P(SeededProperty, TopkFullBudgetKeepsAll)
{
    Rng rng(GetParam() ^ 0xfeed);
    model::AttentionSet set = model::synthesizeAttention(rng, 100, 16, 0.2);
    bgpp::TopkResult r = bgpp::valueTopk(set.query, set.keys, 100);
    EXPECT_EQ(r.selected.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

// ---------------------------------------------------------------------
// Accelerator-model monotonicity invariants.
// ---------------------------------------------------------------------

TEST(ModelInvariants, LongerDecodeCostsMore)
{
    accel::McbpAccelerator mcbp = accel::makeMcbpStandard();
    const model::LlmConfig &m = model::findModel("Llama7B");
    model::Workload short_d =
        model::withLengths(model::findTask("MBPP"), 512, 64);
    model::Workload long_d =
        model::withLengths(model::findTask("MBPP"), 512, 256);
    EXPECT_LT(mcbp.run(m, short_d).decode.cycles,
              mcbp.run(m, long_d).decode.cycles);
}

TEST(ModelInvariants, LargerBatchCostsMoreButSubLinearly)
{
    accel::McbpAccelerator mcbp = accel::makeMcbpStandard();
    const model::LlmConfig &m = model::findModel("Llama7B");
    model::Workload b1 = model::findTask("MBPP");
    b1.batch = 1;
    model::Workload b8 = b1;
    b8.batch = 8;
    const double t1 = mcbp.run(m, b1).totalCycles();
    const double t8 = mcbp.run(m, b8).totalCycles();
    EXPECT_GT(t8, t1);
    EXPECT_LT(t8, t1 * 8.0); // weights amortize across the batch.
}

TEST(ModelInvariants, MoreProcessorsFasterSameEnergyOrder)
{
    const model::LlmConfig &m = model::findModel("Llama7B");
    const model::Workload &t = model::findTask("Wikilingua");
    accel::RunMetrics one = accel::makeMcbpStandard(1).run(m, t);
    accel::RunMetrics many = accel::makeMcbpStandard(16).run(m, t);
    EXPECT_LT(many.totalCycles(), one.totalCycles());
    // Total energy (summed over chips) stays within 2x: parallelism
    // spreads, it does not multiply, the work.
    EXPECT_NEAR(many.joules() / one.joules(), 1.0, 1.0);
}

TEST(ModelInvariants, PredictionNeverExceedsFullKvFetch)
{
    accel::McbpAccelerator mcbp = accel::makeMcbpStandard();
    const model::LlmConfig &m = model::findModel("Llama7B");
    const model::Workload &task = model::findTask("Dolly");
    accel::RunMetrics r = mcbp.run(m, task);
    const double full_kv =
        static_cast<double>(m.kvReadBytesPerToken(
            task.promptLen + task.decodeLen / 2)) *
        task.decodeLen * task.batch;
    EXPECT_LT(r.decode.traffic.predictionBytes, full_kv);
    EXPECT_LT(r.decode.traffic.kvBytes, full_kv + full_kv);
}

TEST(ModelInvariants, TilePlanTrafficLowerBound)
{
    // The planned weight traffic can never drop below the compressed
    // weight footprint.
    sim::TilePlan p =
        sim::planGemmTiling(sim::defaultConfig(), 4096, 4096, 1024, 1.25);
    const double footprint = 4096.0 * 4096.0 / 1.25;
    EXPECT_GE(static_cast<double>(p.weightStripeBytes) * p.gridM *
                  p.weightRereadFactor,
              footprint * 0.99);
}

} // namespace
} // namespace mcbp
