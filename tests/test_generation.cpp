/** @file Unit tests for model/generation: autoregressive fidelity. */
#include <gtest/gtest.h>

#include "bgpp/bgpp_predictor.hpp"
#include "model/generation.hpp"

namespace mcbp::model {
namespace {

KeySelector
keepAll()
{
    return [](const std::vector<std::int8_t> &, const Int8Matrix &keys,
              double) {
        std::vector<std::uint32_t> all(keys.rows());
        for (std::size_t j = 0; j < keys.rows(); ++j)
            all[j] = static_cast<std::uint32_t>(j);
        return all;
    };
}

KeySelector
bgppSelector(double alpha)
{
    return [alpha](const std::vector<std::int8_t> &q,
                   const Int8Matrix &keys, double logit_scale) {
        bgpp::BgppConfig cfg;
        cfg.alpha = alpha;
        cfg.logitScale = logit_scale;
        bgpp::BgppPredictor pred(cfg);
        return pred.predict(q, keys).selected;
    };
}

TEST(Generation, RolloutShapes)
{
    GenerationConfig cfg;
    cfg.decodeLen = 5;
    TinyLlm llm(cfg);
    FloatMatrix gen = llm.rollout(nullptr);
    EXPECT_EQ(gen.rows(), 5u);
    EXPECT_EQ(gen.cols(), cfg.hidden);
}

TEST(Generation, ReferenceRolloutDeterministic)
{
    GenerationConfig cfg;
    cfg.seed = 42;
    TinyLlm a(cfg), b(cfg);
    EXPECT_EQ(a.rollout(nullptr), b.rollout(nullptr));
}

TEST(Generation, KeepAllSelectorTracksInt8)
{
    // Keeping every key isolates pure INT8 quantization drift, which
    // stays high-cosine over the whole rollout.
    GenerationConfig cfg;
    cfg.decodeLen = 8;
    TinyLlm llm(cfg);
    KeySelector sel = keepAll();
    GenerationResult res = llm.compareRollout(sel);
    EXPECT_GT(res.meanCosine, 0.95);
    EXPECT_GT(res.minCosine, 0.85);
}

TEST(Generation, ModeratePruningStaysFaithful)
{
    GenerationConfig cfg;
    cfg.decodeLen = 8;
    cfg.seed = 7;
    TinyLlm llm(cfg);
    KeySelector sel = bgppSelector(0.9);
    GenerationResult res = llm.compareRollout(sel);
    EXPECT_GT(res.meanCosine, 0.75);
    EXPECT_EQ(res.stepCosine.size(), 8u);
}

TEST(Generation, AggressivePruningDegradesMore)
{
    // The Fig 24(a) mechanism: tighter alpha -> lower trajectory
    // fidelity (on average over seeds).
    double moderate = 0.0, aggressive = 0.0;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        GenerationConfig cfg;
        cfg.decodeLen = 6;
        cfg.seed = seed;
        TinyLlm llm(cfg);
        KeySelector mod = bgppSelector(0.9);
        KeySelector agg = bgppSelector(0.2);
        moderate += llm.compareRollout(mod).meanCosine;
        aggressive += llm.compareRollout(agg).meanCosine;
    }
    EXPECT_GE(moderate, aggressive - 0.02);
}

TEST(Generation, ErrorAccumulatesOverSteps)
{
    // Later steps should on average be no more faithful than the first
    // step (divergence compounds through the feedback loop).
    GenerationConfig cfg;
    cfg.decodeLen = 10;
    cfg.seed = 11;
    TinyLlm llm(cfg);
    KeySelector sel = bgppSelector(0.5);
    GenerationResult res = llm.compareRollout(sel);
    double late = 0.0;
    for (std::size_t s = 5; s < 10; ++s)
        late += res.stepCosine[s];
    late /= 5.0;
    EXPECT_LE(late, res.stepCosine[0] + 0.05);
}

TEST(Generation, InvalidConfigFatal)
{
    GenerationConfig cfg;
    cfg.layers = 0;
    EXPECT_THROW(TinyLlm{cfg}, std::runtime_error);
}

} // namespace
} // namespace mcbp::model
