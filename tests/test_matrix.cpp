/** @file Unit tests for common/matrix. */
#include <gtest/gtest.h>

#include "common/matrix.hpp"

namespace mcbp {
namespace {

TEST(Matrix, DefaultEmpty)
{
    Int8Matrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialized)
{
    Int32Matrix m(3, 5);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 5u);
    EXPECT_EQ(m.size(), 15u);
    m.forEach([](std::size_t, std::size_t, std::int32_t v) {
        EXPECT_EQ(v, 0);
    });
}

TEST(Matrix, InitValue)
{
    FloatMatrix m(2, 2, 1.5f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.5f);
    EXPECT_FLOAT_EQ(m.at(1, 1), 1.5f);
}

TEST(Matrix, ReadWrite)
{
    Int8Matrix m(4, 4);
    m.at(2, 3) = 42;
    EXPECT_EQ(m.at(2, 3), 42);
    EXPECT_EQ(m(2, 3), 42);
    m(1, 0) = -7;
    EXPECT_EQ(m.at(1, 0), -7);
}

TEST(Matrix, RowPtrContiguity)
{
    Int8Matrix m(3, 4);
    for (std::size_t c = 0; c < 4; ++c)
        m.at(1, c) = static_cast<std::int8_t>(c + 1);
    const std::int8_t *row = m.rowPtr(1);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(row[c], static_cast<std::int8_t>(c + 1));
    EXPECT_EQ(m.rowPtr(2), m.rowPtr(0) + 8);
}

TEST(Matrix, FillGenerator)
{
    Int32Matrix m(3, 3);
    m.fill([](std::size_t r, std::size_t c) {
        return static_cast<std::int32_t>(r * 10 + c);
    });
    EXPECT_EQ(m.at(2, 1), 21);
    EXPECT_EQ(m.at(0, 2), 2);
}

TEST(Matrix, Equality)
{
    Int8Matrix a(2, 2), b(2, 2);
    EXPECT_EQ(a, b);
    b.at(0, 1) = 1;
    EXPECT_NE(a, b);
    Int8Matrix c(2, 3);
    EXPECT_NE(a, c);
}

TEST(Matrix, ForEachVisitsAll)
{
    Int8Matrix m(5, 7);
    std::size_t count = 0;
    m.forEach([&](std::size_t, std::size_t, std::int8_t) { ++count; });
    EXPECT_EQ(count, 35u);
}

} // namespace
} // namespace mcbp
