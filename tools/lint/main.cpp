/**
 * @file
 * mcbp_lint driver: lints the repo's C++ sources for determinism and
 * concurrency contract violations (see src/lint/linter.hpp for the
 * rule set and suppression syntax).
 *
 * Usage:
 *   mcbp_lint [--json <path>] [--list-rules] <repo-root> [subdir...]
 *
 * With no subdirs, scans src/, bench/, examples/ and tools/ under the
 * root. Exits 0 when the tree is clean, 1 when any finding survives
 * suppression, 2 on usage errors. `--json` additionally writes the
 * machine-readable report (the CI artifact uploaded next to the bench
 * JSONs).
 */
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint/linter.hpp"

int
main(int argc, char **argv)
{
    std::string jsonPath;
    std::string root;
    std::vector<std::string> subdirs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json needs a path\n");
                return 2;
            }
            jsonPath = argv[++i];
        } else if (arg == "--list-rules") {
            for (const std::string &rule : mcbp::lint::ruleNames())
                std::printf("%s\n", rule.c_str());
            return 0;
        } else if (root.empty()) {
            root = arg;
        } else {
            subdirs.push_back(arg);
        }
    }
    if (root.empty()) {
        std::fprintf(stderr,
                     "usage: mcbp_lint [--json <path>] [--list-rules] "
                     "<repo-root> [subdir...]\n");
        return 2;
    }
    if (subdirs.empty())
        subdirs = {"src", "bench", "examples", "tools"};

    const mcbp::lint::LintResult result =
        mcbp::lint::lintTree(root, subdirs);
    std::fputs(mcbp::lint::toText(result).c_str(), stdout);
    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 2;
        }
        out << mcbp::lint::toJson(result);
    }
    return result.findings.empty() ? 0 : 1;
}
