/**
 * @file
 * Chip-to-chip interconnect cost model for multi-chip (tensor-parallel)
 * accelerator clusters.
 *
 * Sharding one model across N chips splits the weight stream and the
 * per-layer linear/attention work 1/N ways, but adds collective
 * communication: Megatron-style tensor parallelism performs one
 * all-reduce of the layer's activations after the attention output
 * projection and one after the FFN down projection (2 per decoder
 * layer). This module prices those collectives in core cycles and
 * picojoules under a ring all-reduce, the same role sim/hbm.* plays for
 * main memory: a small analytic stand-in that preserves the effects the
 * cluster study depends on — a bandwidth term that scales with
 * 2(N-1)/N of the reduced bytes, a per-hop latency floor, and a link
 * energy per bit that no amount of parallelism removes.
 */
#pragma once

#include <cstddef>

namespace mcbp::sim {

/** Link parameters of the chip-to-chip fabric. */
struct InterconnectConfig
{
    /** Per-chip link bandwidth in GB/s (NVLink-class default). */
    double linkGBs = 300.0;
    /** Link + SerDes transfer energy per bit (off-package signaling). */
    double pJPerBit = 10.0;
    /** Per-hop latency of one ring step, in core cycles. */
    double hopCycles = 100.0;
    /** Bytes per reduced activation element (FP16 partial sums). */
    double bytesPerActivation = 2.0;
};

/** Per-chip cost of one collective. */
struct InterconnectCost
{
    /** Serialization of the moved bytes (scales with vector size). */
    double bandwidthCycles = 0.0;
    /** Fixed hop-latency floor (independent of vector size — a batch
     *  of requests sharing one collective pays it once). */
    double latencyCycles = 0.0;
    double energyPj = 0.0; ///< Energy spent by ONE chip's link traffic.

    double cycles() const { return bandwidthCycles + latencyCycles; }
};

/** Analytic ring-collective model over one link configuration. */
class Interconnect
{
  public:
    /** @param clockGhz core clock the returned cycles are counted in. */
    Interconnect(const InterconnectConfig &cfg, double clockGhz);

    /**
     * Ring all-reduce of a @p bytes vector across @p chips.
     * Each chip sends/receives 2(N-1)/N x bytes over 2(N-1) hops
     * (reduce-scatter + all-gather); the returned cost is per chip, so
     * a cluster charges it once on its critical path and once per chip
     * in energy. N = 1 is free.
     */
    InterconnectCost allReduce(double bytes, std::size_t chips) const;

    /**
     * Point-to-point send of @p bytes over one link (a pipeline
     * stage handing its boundary activations to the next stage):
     * serialization of the bytes, one hop of latency, and the link
     * energy for the moved bits — all charged to the sending chip.
     */
    InterconnectCost send(double bytes) const;

    /** Link bandwidth expressed in bytes per core cycle. */
    double bytesPerCycle() const { return bytesPerCycle_; }

    const InterconnectConfig &config() const { return cfg_; }

  private:
    InterconnectConfig cfg_;
    double bytesPerCycle_;
};

} // namespace mcbp::sim
