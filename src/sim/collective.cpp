#include "sim/collective.hpp"

#include "common/logging.hpp"

namespace mcbp::sim {

namespace {

void
accumulate(InterconnectCost &into, const InterconnectCost &add)
{
    into.bandwidthCycles += add.bandwidthCycles;
    into.latencyCycles += add.latencyCycles;
    into.energyPj += add.energyPj;
}

} // namespace

CollectiveTopology::CollectiveTopology(std::vector<CollectiveTier> tiers,
                                       double clockGhz)
    : tiers_(std::move(tiers)), clockGhz_(clockGhz)
{
    fatalIf(clockGhz_ <= 0.0,
            "collective topology needs a positive core clock");
    for (const CollectiveTier &tier : tiers_) {
        fatalIf(tier.degree == 0, "collective tier degree must be >= 1");
        fatalIf(tier.degree > 1 && tier.link.linkGBs <= 0.0,
                "collective tier link bandwidth must be > 0");
    }
}

std::size_t
CollectiveTopology::chips() const
{
    std::size_t total = 1;
    for (const CollectiveTier &tier : tiers_)
        total *= tier.degree;
    return total;
}

InterconnectCost
CollectiveTopology::ringHalf(const CollectiveTier &tier, double bytes) const
{
    // One half of a ring all-reduce (reduce-scatter OR all-gather):
    // (N-1)/N of the vector over N-1 hops.
    InterconnectCost cost;
    if (tier.degree <= 1 || bytes <= 0.0)
        return cost;
    const double n = static_cast<double>(tier.degree);
    const double per_chip_bytes = (n - 1.0) / n * bytes;
    const double bytes_per_cycle = tier.link.linkGBs / clockGhz_;
    cost.bandwidthCycles = per_chip_bytes / bytes_per_cycle;
    cost.latencyCycles = (n - 1.0) * tier.link.hopCycles;
    cost.energyPj = per_chip_bytes * 8.0 * tier.link.pJPerBit;
    return cost;
}

InterconnectCost
CollectiveTopology::allReduceFrom(std::size_t first, double bytes) const
{
    InterconnectCost cost;
    if (bytes <= 0.0)
        return cost;

    // Skip degree-1 tiers: they join nothing and price nothing.
    std::size_t inner = first;
    while (inner < tiers_.size() && tiers_[inner].degree <= 1)
        ++inner;
    if (inner >= tiers_.size())
        return cost;

    bool outermost = true;
    for (std::size_t k = inner + 1; k < tiers_.size(); ++k)
        if (tiers_[k].degree > 1)
            outermost = false;

    if (outermost) {
        // Single effective tier: delegate to the flat ring verbatim so
        // a one-tier topology is bit-identical to Interconnect.
        Interconnect flat(tiers_[inner].link, clockGhz_);
        return flat.allReduce(bytes, tiers_[inner].degree);
    }

    // Reduce-scatter inside, all-reduce the per-chip shard across the
    // outer tiers, then all-gather back out.
    const InterconnectCost half = ringHalf(tiers_[inner], bytes);
    accumulate(cost, half);
    accumulate(cost, half);
    const double shard =
        bytes / static_cast<double>(tiers_[inner].degree);
    accumulate(cost, allReduceFrom(inner + 1, shard));
    return cost;
}

InterconnectCost
CollectiveTopology::allReduce(double bytes) const
{
    return allReduceFrom(0, bytes);
}

InterconnectCost
CollectiveTopology::reduceScatter(double bytes) const
{
    InterconnectCost cost;
    if (bytes <= 0.0)
        return cost;
    double shard = bytes;
    for (const CollectiveTier &tier : tiers_) {
        if (tier.degree <= 1)
            continue;
        accumulate(cost, ringHalf(tier, shard));
        shard /= static_cast<double>(tier.degree);
    }
    return cost;
}

InterconnectCost
CollectiveTopology::allGather(double bytes) const
{
    // The mirror of reduceScatter: identical per-tier traffic.
    return reduceScatter(bytes);
}

} // namespace mcbp::sim
