/**
 * @file
 * GEMM tiling planner (paper Fig 12): output-stationary TM x TK x TN
 * tiling with weight-SRAM residency checks.
 *
 * MCBP stores the bit-slices of a TM x K weight stripe in the weight SRAM
 * at once when it fits, assigns TM x TK weight tiles together with
 * TK x TN activation tiles to PE clusters, and walks the loop nest
 *   for m in M/TM: for n in N/TN: for k in K/TK: BRCR-GEMM(tile).
 * The planner computes the tile grid, the per-buffer working sets, and
 * the HBM re-read factors that the accelerator model charges.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/mcbp_config.hpp"

namespace mcbp::sim {

/** A planned tiling for one M x K x N GEMM. */
struct TilePlan
{
    std::size_t m = 0, k = 0, n = 0;    ///< Problem dimensions.
    std::size_t tileM = 0, tileK = 0, tileN = 0;
    std::size_t gridM = 0, gridK = 0, gridN = 0; ///< Ceil tile counts.

    /** Weight bytes resident per M-stripe (bit-sliced, compressed CR=1). */
    std::uint64_t weightStripeBytes = 0;
    /** Activation tile bytes (TK x TN INT8). */
    std::uint64_t actTileBytes = 0;
    /** Output tile bytes (TM x TN INT32 partials). */
    std::uint64_t outTileBytes = 0;

    /** Whether the full TM x K weight stripe fits the weight SRAM. */
    bool weightStripeResident = false;

    /**
     * HBM re-read factor for weights: 1 when each weight tile is loaded
     * once (output-stationary, activations resident or streamed), else
     * the number of N-tile passes that must re-stream the weights.
     */
    double weightRereadFactor = 1.0;
    /** HBM re-read factor for activations (re-streamed per M-stripe). */
    double actRereadFactor = 1.0;

    std::size_t totalTiles() const { return gridM * gridK * gridN; }
    std::string toString() const;
};

/**
 * Plan the tiling of an M x K x N GEMM on @p cfg (Fig 12 defaults
 * TM=64, TK=256, TN=32).
 *
 * @param weight_compression BSTC ratio applied to the resident stripe.
 */
TilePlan planGemmTiling(const McbpConfig &cfg, std::size_t m,
                        std::size_t k, std::size_t n,
                        double weight_compression = 1.0);

} // namespace mcbp::sim
