/**
 * @file
 * Cycle model of the CAM-based BRCR compute fabric (Fig 14) and of the
 * BSTC/BGPP units, at tile granularity.
 *
 * The fabric is fully pipelined (Fig 10 bottom): per cycle each PE issues
 * one CAM search, each AMU one merge addition, each RU one reconstruction
 * addition, and each decoder lane one BSTC symbol. A tile's latency is
 * therefore the maximum of the per-resource occupancy times (the slowest
 * pipeline stage), which is how the paper reasons about its 78% average
 * utilization.
 */
#pragma once

#include <cstdint>

#include "sim/mcbp_config.hpp"

namespace mcbp::sim {

/** Work of one BRCR workload slice (already summed over planes/groups). */
struct BrcrWork
{
    double mergeAdds = 0.0;   ///< MAV accumulate additions.
    double reconAdds = 0.0;   ///< Reconstruction additions.
    double camSearches = 0.0; ///< Non-gated search keys.
    double camLoads = 0.0;    ///< Column patterns written to CAMs.
};

/** Work of the BSTC decoders feeding the fabric. */
struct CodecWork
{
    double symbols = 0.0; ///< Two-state symbols to decode.
};

/** Work of one BGPP prediction batch. */
struct BgppWork
{
    double bitMacs = 0.0;      ///< 1-bit AND+accumulate ops.
    double thresholdOps = 0.0; ///< Max/min/compare passes.
};

/** Pipelined-latency estimator for the MCBP fabric. */
class PeClusterModel
{
  public:
    explicit PeClusterModel(const McbpConfig &cfg);

    /** Cycles for the BRCR fabric to retire @p work (pipelined max). */
    double brcrCycles(const BrcrWork &work) const;

    /** Cycles for the decoder lanes to stream @p work. */
    double codecCycles(const CodecWork &work) const;

    /** Cycles for the BGPP unit to retire @p work. */
    double bgppCycles(const BgppWork &work) const;

    /** Dense-systolic reference: INT8 MACs/cycle with the same fabric. */
    double denseMacCycles(double macs) const;

  private:
    McbpConfig cfg_;
    double pes_;        ///< Total PEs.
    double amuLanes_;   ///< Total addition-merge lanes.
};

} // namespace mcbp::sim
