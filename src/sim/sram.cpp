#include "sim/sram.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace mcbp::sim {

Sram::Sram(std::string name, std::size_t capacity_kb, std::size_t banks,
           std::size_t bytes_per_bank_cycle)
    : name_(std::move(name)), capacityBytes_(capacity_kb * 1024),
      banks_(banks), bytesPerBankCycle_(bytes_per_bank_cycle)
{
    fatalIf(capacityBytes_ == 0 || banks_ == 0 || bytesPerBankCycle_ == 0,
            "invalid SRAM configuration");
    // CACTI-like scaling: energy per byte grows roughly with sqrt of the
    // array capacity; anchored at 0.6 pJ/B for a 96 kB array.
    perBytePj_ = 0.6 * std::sqrt(static_cast<double>(capacityBytes_) /
                                 (96.0 * 1024.0));
}

double
Sram::streamCycles(std::uint64_t bytes) const
{
    const double per_cycle =
        static_cast<double>(banks_ * bytesPerBankCycle_);
    return static_cast<double>(bytes) / per_cycle;
}

double
Sram::accessEnergyPj(std::uint64_t bytes) const
{
    return static_cast<double>(bytes) * perBytePj_;
}

void
Sram::read(std::uint64_t bytes)
{
    bytesRead_ += bytes;
    energyPj_ += accessEnergyPj(bytes);
}

void
Sram::write(std::uint64_t bytes)
{
    bytesWritten_ += bytes;
    energyPj_ += accessEnergyPj(bytes);
}

} // namespace mcbp::sim
