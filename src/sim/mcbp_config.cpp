#include "sim/mcbp_config.hpp"

#include <sstream>

namespace mcbp::sim {

std::string
McbpConfig::toString() const
{
    std::ostringstream os;
    os << "MCBP accelerator configuration (" << technologyNm << " nm, "
       << clockGhz << " GHz)\n";
    os << "  CAM-based BRCR unit : " << peClusters << " PE clusters ("
       << peClusters * pesPerCluster << " PEs)\n";
    os << "  Processing element  : " << camBytes << " B CAM, "
       << amusPerPe << " add-merge units, 1 reconstruction unit\n";
    os << "  BSTC codec          : " << decoderLanes << " decoders, "
       << encoderLanes << " encoders\n";
    os << "  BGPP unit           : " << bgppAdderTrees << " "
       << bgppTreeInputs << "-input adder trees, " << bgppFilters
       << " clock-gated progressive filters\n";
    os << "  On-chip buffers     : " << tokenSramKb << " kB token, "
       << weightSramKb << " kB weight, " << tempSramKb
       << " kB temp SRAM\n";
    os << "  Main memory         : HBM2, " << hbmChannels << " x "
       << hbmChannelBits << "-bit channels @ " << hbmClockGhz
       << " GHz, " << hbmBitsPerCoreCycle << " bit/core-cycle, "
       << hbmEnergyPjPerBit << " pJ/bit, " << hbmCapacityGb << " GB\n";
    os << "  Tiling              : TM=" << tileM << " TK=" << tileK
       << " TN=" << tileN << ", group size m=" << groupSize << "\n";
    return os.str();
}

const McbpConfig &
defaultConfig()
{
    static const McbpConfig cfg{};
    return cfg;
}

} // namespace mcbp::sim
