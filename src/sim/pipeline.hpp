/**
 * @file
 * Stage-overlap model of the MCBP Transformer workflow (Fig 10 top:
 * steps 1-8 with BGPP concurrent to BRCR, and weight decode overlapped
 * with compute through double buffering).
 *
 * Latency composition rules (per layer):
 *   - Weight HBM load, BSTC decode and BRCR compute form a pipeline:
 *     the layer's linear portion costs max(load, decode, compute).
 *   - QK prediction (BGPP) runs concurrently with the QKV/linear GEMMs;
 *     it only adds latency if it outruns them.
 *   - Sparse attention (formal compute over the vital KVs) costs
 *     max(kv load, attention compute) and follows the prediction.
 *   - SFU (softmax/LN/GELU) work is pipelined with compute; a small
 *     non-overlappable fraction remains exposed.
 */
#pragma once

#include <string>

#include "sim/mcbp_config.hpp"

namespace mcbp::sim {

/** Per-layer stage cycle inputs. */
struct StageCycles
{
    double weightLoad = 0.0;  ///< HBM weight traffic.
    double weightDecode = 0.0;///< BSTC decoder occupancy.
    double linearCompute = 0.0; ///< BRCR GEMM cycles (QKV, O, FFN).
    double prediction = 0.0;  ///< BGPP rounds (incl. its KV bit loads).
    double kvLoad = 0.0;      ///< Vital-KV HBM traffic.
    double attention = 0.0;   ///< Sparse QK^T + PV compute.
    double sfu = 0.0;         ///< Non-linear ops.
    double actLoad = 0.0;     ///< Activation HBM traffic.
};

/** Result of composing one layer. */
struct LayerLatency
{
    double totalCycles = 0.0;
    double linearPart = 0.0;    ///< max(load, decode, compute) segment.
    double attentionPart = 0.0; ///< prediction-then-attention segment.
    double exposedSfu = 0.0;
};

/**
 * Compose one layer's latency with MCBP's overlap rules. The overlap
 * constants (`exposedSfuFraction`, `predictionOverlapWindow`) come from
 * @p cfg so ablations can sweep them without recompiling.
 */
LayerLatency composeLayer(const StageCycles &stages,
                          const McbpConfig &cfg = defaultConfig());

/**
 * Compose a layer with *no* overlap (the Fig 21 "software on GPU" or
 * naive-baseline composition): all stages serialize.
 */
LayerLatency composeLayerSerial(const StageCycles &stages);

} // namespace mcbp::sim
