/**
 * @file
 * Tile-level pipeline simulator for the Fig 10 workflow.
 *
 * The analytic model in accel/ uses steady-state max() composition; this
 * simulator walks a layer's tiles one by one through the three-stage
 * HBM-load -> BSTC-decode -> BRCR-compute pipeline with double buffering
 * (a stage starts when both its own previous tile and the upstream tile
 * are done), and reports per-unit busy time — the basis of the paper's
 * "78% average utilization" claim (section 5.3).
 */
#pragma once

#include <cstddef>
#include <vector>

namespace mcbp::sim {

/** Per-tile stage occupancies in cycles. */
struct TileCosts
{
    double loadCycles = 0.0;
    double decodeCycles = 0.0;
    double computeCycles = 0.0;
};

/** Result of simulating one tile stream. */
struct TilePipelineResult
{
    double totalCycles = 0.0;
    double loadBusy = 0.0;
    double decodeBusy = 0.0;
    double computeBusy = 0.0;
    std::size_t tiles = 0;

    double
    computeUtilization() const
    {
        return totalCycles > 0.0 ? computeBusy / totalCycles : 0.0;
    }
    double
    loadUtilization() const
    {
        return totalCycles > 0.0 ? loadBusy / totalCycles : 0.0;
    }
    double
    decodeUtilization() const
    {
        return totalCycles > 0.0 ? decodeBusy / totalCycles : 0.0;
    }
    /** Serial (no-overlap) execution time of the same tile stream. */
    double serialCycles = 0.0;
    /** Pipeline speedup over serial execution. */
    double
    overlapGain() const
    {
        return totalCycles > 0.0 ? serialCycles / totalCycles : 0.0;
    }
};

/** Simulate the pipelined execution of @p tiles (in order). */
TilePipelineResult simulateTilePipeline(const std::vector<TileCosts> &tiles);

/** Convenience: a uniform stream of @p count identical tiles. */
TilePipelineResult simulateUniformTiles(const TileCosts &tile,
                                        std::size_t count);

} // namespace mcbp::sim
