/**
 * @file
 * On-chip SRAM buffer model (Table 3: token / weight / temp SRAMs).
 *
 * Stands in for CACTI: per-access energy scales with array size, and each
 * bank serves one row per cycle (the constraint behind Fig 13's
 * bank-interleaved layout). Capacity violations are reported, which the
 * tiling tests use to validate the TM/TK/TN choice.
 */
#pragma once

#include <cstdint>
#include <string>

namespace mcbp::sim {

/** One SRAM buffer. */
class Sram
{
  public:
    /**
     * @param name buffer name for reports.
     * @param capacity_kb capacity in kB.
     * @param banks number of independently addressable banks.
     * @param bytes_per_bank_cycle row width served per bank per cycle.
     */
    Sram(std::string name, std::size_t capacity_kb, std::size_t banks,
         std::size_t bytes_per_bank_cycle);

    const std::string &name() const { return name_; }
    std::size_t capacityBytes() const { return capacityBytes_; }

    /** Whether a working set fits. */
    bool fits(std::uint64_t bytes) const { return bytes <= capacityBytes_; }

    /** Cycles to stream @p bytes through all banks. */
    double streamCycles(std::uint64_t bytes) const;

    /** Access energy in pJ (capacity-scaled per-byte cost). */
    double accessEnergyPj(std::uint64_t bytes) const;

    /** Account a read. */
    void read(std::uint64_t bytes);
    /** Account a write. */
    void write(std::uint64_t bytes);

    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    double energyPj() const { return energyPj_; }

  private:
    std::string name_;
    std::size_t capacityBytes_;
    std::size_t banks_;
    std::size_t bytesPerBankCycle_;
    double perBytePj_;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
    double energyPj_ = 0.0;
};

} // namespace mcbp::sim
