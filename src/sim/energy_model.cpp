#include "sim/energy_model.hpp"

#include <sstream>

namespace mcbp::sim {

std::string
EnergyBreakdown::toString() const
{
    std::ostringstream os;
    const double total = totalPj();
    auto line = [&](const char *name, double v) {
        os << "  " << name << ": " << v / 1e6 << " uJ ("
           << (total > 0 ? 100.0 * v / total : 0.0) << "%)\n";
    };
    os << "energy breakdown (total " << total / 1e6 << " uJ)\n";
    line("compute", computePj);
    line("bit-reorder", bitReorderPj);
    line("cam", camPj);
    line("codec", codecPj);
    line("bgpp", bgppPj);
    line("sram", sramPj);
    line("dram", dramPj);
    line("sfu", sfuPj);
    if (interconnectPj > 0.0)
        line("interconnect", interconnectPj);
    return os.str();
}

EnergyModel::EnergyModel(EnergyParams params) : p_(params) {}

double
EnergyModel::addsEnergy(std::uint64_t adds) const
{
    return static_cast<double>(adds) * p_.int8Add;
}

double
EnergyModel::macsEnergy(std::uint64_t macs) const
{
    return static_cast<double>(macs) * (p_.int8Mult + p_.int32Add);
}

double
EnergyModel::shiftEnergy(std::uint64_t shifts) const
{
    return static_cast<double>(shifts) * p_.bitShift;
}

double
EnergyModel::camEnergy(std::uint64_t searches, std::uint64_t loads) const
{
    return static_cast<double>(searches) * p_.camSearch +
           static_cast<double>(loads) * p_.camLoadPerPattern;
}

double
EnergyModel::codecEnergy(std::uint64_t symbols) const
{
    return static_cast<double>(symbols) * p_.codecSymbol;
}

double
EnergyModel::sramEnergy(std::uint64_t bytes, bool large_array) const
{
    return static_cast<double>(bytes) *
           (large_array ? p_.sramPerByteLarge : p_.sramPerByteSmall);
}

double
EnergyModel::operandEnergy(std::uint64_t bytes) const
{
    return static_cast<double>(bytes) * p_.amuOperandByte;
}

double
EnergyModel::dramEnergy(std::uint64_t bytes) const
{
    return static_cast<double>(bytes) * 8.0 * p_.hbmPerBit;
}

double
EnergyModel::bitReorderEnergy(std::uint64_t bits) const
{
    return static_cast<double>(bits) * p_.bitReorderPerBit;
}

double
EnergyModel::sfuEnergy(std::uint64_t ops) const
{
    return static_cast<double>(ops) * p_.fp16Op;
}

double
EnergyModel::bgppEnergy(std::uint64_t bit_macs) const
{
    return static_cast<double>(bit_macs) * p_.bgppBitMac;
}

double
EnergyModel::int4MacEnergy(std::uint64_t macs) const
{
    return static_cast<double>(macs) * p_.int4Mac;
}

} // namespace mcbp::sim
