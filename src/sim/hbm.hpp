/**
 * @file
 * HBM main-memory model (section 5.1 platform: 8 x 128-bit channels,
 * 512 bit/core-cycle, 4 pJ/bit; Fig 13 layout-aware behaviour).
 *
 * Stands in for Ramulator: models the two effects the paper depends on —
 * the bandwidth ceiling, and row-buffer locality determined by how the
 * bit-slice matrices are laid out across banks (sequential group-major
 * streams hit the open row; scattered value-level accesses do not).
 */
#pragma once

#include <cstdint>

#include "sim/mcbp_config.hpp"

namespace mcbp::sim {

/** Result of one modeled transfer. */
struct HbmTransfer
{
    double cycles = 0.0;      ///< Core-clock cycles occupied.
    double energyPj = 0.0;    ///< Transfer energy.
    std::uint64_t rowActivations = 0;
};

/** Cumulative traffic statistics. */
struct HbmStats
{
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t rowActivations = 0;
    double busyCycles = 0.0;
};

/** Bandwidth/energy model of the HBM stack. */
class Hbm
{
  public:
    explicit Hbm(const McbpConfig &cfg);

    /**
     * Model a read of @p bytes with the given spatial locality.
     * @param sequential_fraction fraction of the transfer that streams
     *        within open rows (1.0 = perfectly laid-out bit-slice stream,
     *        Fig 13; lower values model scattered/top-k gather reads).
     */
    HbmTransfer read(std::uint64_t bytes, double sequential_fraction = 1.0);

    /** Model a write (same bandwidth/energy behaviour). */
    HbmTransfer write(std::uint64_t bytes, double sequential_fraction = 1.0);

    const HbmStats &stats() const { return stats_; }

    /** Sustained bandwidth in bytes per core cycle. */
    double bytesPerCycle() const { return bytesPerCycle_; }

  private:
    HbmTransfer transfer(std::uint64_t bytes, double sequential_fraction);

    double bytesPerCycle_;
    double energyPjPerByte_;
    double rowBytes_;
    double rowActivateCycles_;
    HbmStats stats_;
};

} // namespace mcbp::sim
