#include "sim/pe_cluster.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace mcbp::sim {

PeClusterModel::PeClusterModel(const McbpConfig &cfg) : cfg_(cfg)
{
    pes_ = static_cast<double>(cfg_.peClusters) * cfg_.pesPerCluster;
    amuLanes_ = pes_ * static_cast<double>(cfg_.amusPerPe) *
                static_cast<double>(cfg_.addsPerAmuCycle);
    fatalIf(pes_ <= 0.0, "PE fabric must be non-empty");
}

double
PeClusterModel::brcrCycles(const BrcrWork &work) const
{
    // One CAM search per PE per cycle; one merge add per AMU lane per
    // cycle; one reconstruction add per PE's RU per cycle; CAM loads
    // stream camColumns patterns per PE per cycle.
    const double search_cycles = work.camSearches / pes_;
    const double merge_cycles = work.mergeAdds / amuLanes_;
    const double recon_cycles =
        work.reconAdds /
        (pes_ * static_cast<double>(cfg_.reconAddersPerRu));
    const double load_cycles =
        work.camLoads / (pes_ * static_cast<double>(cfg_.camColumns));
    return std::max({search_cycles, merge_cycles, recon_cycles,
                     load_cycles});
}

double
PeClusterModel::codecCycles(const CodecWork &work) const
{
    // Each decoder lane retires one symbol per cycle (Fig 15b SIPO).
    return work.symbols / static_cast<double>(cfg_.decoderLanes);
}

double
PeClusterModel::bgppCycles(const BgppWork &work) const
{
    const double tree_ops =
        static_cast<double>(cfg_.bgppAdderTrees) * cfg_.bgppTreeInputs;
    const double mac_cycles = work.bitMacs / tree_ops;
    const double thr_cycles =
        work.thresholdOps / static_cast<double>(cfg_.bgppFilters);
    return std::max(mac_cycles, thr_cycles);
}

double
PeClusterModel::denseMacCycles(double macs) const
{
    // A dense INT8 fabric of the same lane count retires one MAC per
    // lane per cycle.
    return macs / amuLanes_;
}

} // namespace mcbp::sim
