#include "sim/interconnect.hpp"

#include "common/logging.hpp"

namespace mcbp::sim {

Interconnect::Interconnect(const InterconnectConfig &cfg, double clockGhz)
    : cfg_(cfg), bytesPerCycle_(cfg.linkGBs / clockGhz)
{
    fatalIf(cfg.linkGBs <= 0.0, "interconnect link bandwidth must be > 0");
    fatalIf(cfg.pJPerBit < 0.0, "interconnect pJ/bit must be >= 0");
    fatalIf(clockGhz <= 0.0, "interconnect needs a positive core clock");
}

InterconnectCost
Interconnect::allReduce(double bytes, std::size_t chips) const
{
    InterconnectCost cost;
    if (chips <= 1 || bytes <= 0.0)
        return cost;
    const double n = static_cast<double>(chips);
    // Ring all-reduce: each chip moves 2(N-1)/N of the vector over
    // 2(N-1) pipeline steps (reduce-scatter then all-gather).
    const double per_chip_bytes = 2.0 * (n - 1.0) / n * bytes;
    cost.bandwidthCycles = per_chip_bytes / bytesPerCycle_;
    cost.latencyCycles = 2.0 * (n - 1.0) * cfg_.hopCycles;
    cost.energyPj = per_chip_bytes * 8.0 * cfg_.pJPerBit;
    return cost;
}

InterconnectCost
Interconnect::send(double bytes) const
{
    InterconnectCost cost;
    if (bytes <= 0.0)
        return cost;
    cost.bandwidthCycles = bytes / bytesPerCycle_;
    cost.latencyCycles = cfg_.hopCycles;
    cost.energyPj = bytes * 8.0 * cfg_.pJPerBit;
    return cost;
}

} // namespace mcbp::sim
