#include "sim/layout.hpp"

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::sim {

LayoutCost
bitSliceLayoutFetch(const McbpConfig &cfg, std::size_t rows,
                    std::size_t cols, std::size_t plane_count)
{
    fatalIf(plane_count == 0 || plane_count > 8, "bad plane count");
    LayoutCost cost;
    // Each plane is rows*cols bits streamed sequentially; the interleave
    // spreads consecutive addresses across the banks so every row buffer
    // serves hbmRowBytes before a new activation.
    const std::uint64_t plane_bytes =
        ceilDiv(static_cast<std::uint64_t>(rows) * cols, 8);
    cost.bytesTouched = plane_bytes * plane_count;
    cost.rowActivations =
        plane_count * ceilDiv(plane_bytes, cfg.hbmRowBytes);
    return cost;
}

LayoutCost
valueLayoutFetch(const McbpConfig &cfg, std::size_t rows, std::size_t cols,
                 std::size_t plane_count)
{
    fatalIf(plane_count == 0 || plane_count > 8, "bad plane count");
    LayoutCost cost;
    // Value-level layout: to obtain plane_count bit-planes the fetch must
    // touch every value's byte — the full rows*cols bytes — even though
    // only plane_count/8 of each byte is useful. Row activations follow
    // the full footprint.
    const std::uint64_t value_bytes =
        static_cast<std::uint64_t>(rows) * cols;
    cost.bytesTouched = value_bytes;
    cost.rowActivations = ceilDiv(value_bytes, cfg.hbmRowBytes);
    return cost;
}

} // namespace mcbp::sim
