/**
 * @file
 * Hierarchical (tree) collective cost model over tiered fabrics.
 *
 * sim/interconnect prices a flat ring across one link configuration;
 * real pods are not flat: chips inside a group share a fast intra-stage
 * fabric while groups talk over slower boundary links (the CIM scale-out
 * survey models multi-chip inference exactly as such stage-partitioned
 * hierarchies). This module composes the flat ring into a tree: a
 * topology is an ordered stack of tiers, innermost first, each with its
 * own degree and InterconnectConfig, and an all-reduce decomposes into
 *
 *   reduce-scatter(innermost tier, bytes)
 *   all-reduce(remaining tiers, bytes / degree0)   <- recursion
 *   all-gather(innermost tier, bytes)
 *
 * so the slow outer tier only ever moves the 1/degree0 shard the inner
 * reduce-scatter left behind. A single-tier topology delegates verbatim
 * to Interconnect::allReduce — hierarchical pricing of a flat topology
 * is bit-identical to the flat ring, which is what lets
 * ClusterAccelerator route every tensor-parallel group (nested or not)
 * through this one model.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "sim/interconnect.hpp"

namespace mcbp::sim {

/** One level of the fabric hierarchy. */
struct CollectiveTier
{
    /** Ring degree at this level (groups joined by this fabric). */
    std::size_t degree = 1;
    /** Link parameters of this level's fabric. */
    InterconnectConfig link;
};

/**
 * Prices collectives over an ordered tier stack (innermost tier first).
 * Degenerate stacks are fine: an empty stack or all-degree-1 tiers make
 * every collective free, matching Interconnect's N = 1 behavior.
 */
class CollectiveTopology
{
  public:
    /** @param clockGhz core clock the returned cycles are counted in. */
    CollectiveTopology(std::vector<CollectiveTier> tiers, double clockGhz);

    /** Total chips spanned: the product of all tier degrees. */
    std::size_t chips() const;

    /**
     * Hierarchical all-reduce of a @p bytes vector across all tiers.
     * Cost is per chip (charged once on the critical path, once per
     * chip in energy), exactly like Interconnect::allReduce — to which
     * a single-tier stack delegates bit-for-bit.
     */
    InterconnectCost allReduce(double bytes) const;

    /**
     * Hierarchical reduce-scatter: each tier scatters its level's
     * shard, so tier k moves (d_k - 1)/d_k of bytes / prod(d_0..d_k-1)
     * over d_k - 1 hops. Leaves each chip holding a 1/chips() shard.
     */
    InterconnectCost reduceScatter(double bytes) const;

    /** Hierarchical all-gather: the exact mirror of reduceScatter(). */
    InterconnectCost allGather(double bytes) const;

    const std::vector<CollectiveTier> &tiers() const { return tiers_; }

  private:
    /** All-reduce over tiers_[first..], of a vector of @p bytes. */
    InterconnectCost allReduceFrom(std::size_t first, double bytes) const;
    /** One tier's ring reduce-scatter (== all-gather) cost. */
    InterconnectCost ringHalf(const CollectiveTier &tier,
                              double bytes) const;

    std::vector<CollectiveTier> tiers_;
    double clockGhz_;
};

} // namespace mcbp::sim
