/**
 * @file
 * HBM data-layout model for bit-slice weights (paper Fig 13).
 *
 * MCBP interleaves the compressed bit-slice stream along the group-size
 * dimension across all HBM banks at the same address, then advances to
 * the next address — so a plane-order read is a pure sequential burst
 * that keeps every row buffer open. A value-level layout stores whole
 * INT8 values contiguously; fetching a single bit-plane then strides
 * through memory touching one byte per value, defeating the row buffer.
 *
 * This module computes row-activation counts for both layouts so the
 * dataflow benefit of section 4.2 is measured, not asserted.
 */
#pragma once

#include <cstdint>

#include "sim/mcbp_config.hpp"

namespace mcbp::sim {

/** Row-activation accounting for one weight fetch pattern. */
struct LayoutCost
{
    std::uint64_t bytesTouched = 0;
    std::uint64_t rowActivations = 0;
    /** Useful bytes per activated row (higher = better locality). */
    double
    bytesPerActivation() const
    {
        return rowActivations == 0
                   ? 0.0
                   : static_cast<double>(bytesTouched) /
                         static_cast<double>(rowActivations);
    }
};

/**
 * Cost of fetching @p plane_count bit-planes of an @p rows x @p cols
 * weight under MCBP's bit-slice-first, bank-interleaved layout: each
 * plane is one contiguous stream of rows*cols/8 bytes.
 */
LayoutCost bitSliceLayoutFetch(const McbpConfig &cfg, std::size_t rows,
                               std::size_t cols, std::size_t plane_count);

/**
 * Cost of fetching the same planes from a value-level layout: the bits of
 * each value are contiguous, so reading one plane touches every value's
 * byte but uses only 1/8 of each burst. HBM transfers whole 32-byte
 * bursts; the stride makes every burst deliver @p plane_count useful bits
 * per value.
 */
LayoutCost valueLayoutFetch(const McbpConfig &cfg, std::size_t rows,
                            std::size_t cols, std::size_t plane_count);

} // namespace mcbp::sim
