#include "sim/hbm.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace mcbp::sim {

Hbm::Hbm(const McbpConfig &cfg)
    : bytesPerCycle_(cfg.hbmBytesPerCycle()),
      energyPjPerByte_(cfg.hbmEnergyPjPerBit * 8.0),
      rowBytes_(static_cast<double>(cfg.hbmRowBytes)),
      rowActivateCycles_(cfg.hbmRowActivateCycles)
{
    fatalIf(bytesPerCycle_ <= 0.0, "HBM bandwidth must be positive");
}

HbmTransfer
Hbm::transfer(std::uint64_t bytes, double sequential_fraction)
{
    fatalIf(sequential_fraction < 0.0 || sequential_fraction > 1.0,
            "sequential fraction must be in [0, 1]");
    HbmTransfer t;
    const double b = static_cast<double>(bytes);
    // Sequential portion activates one row per rowBytes; the scattered
    // portion activates one row per 32-byte burst.
    const double seq_rows = b * sequential_fraction / rowBytes_;
    const double scat_rows = b * (1.0 - sequential_fraction) / 32.0;
    t.rowActivations =
        static_cast<std::uint64_t>(std::ceil(seq_rows + scat_rows));
    t.cycles = b / bytesPerCycle_ +
               static_cast<double>(t.rowActivations) * rowActivateCycles_ /
                   8.0; // activations overlap across 8 channels
    t.energyPj = b * energyPjPerByte_;
    return t;
}

HbmTransfer
Hbm::read(std::uint64_t bytes, double sequential_fraction)
{
    HbmTransfer t = transfer(bytes, sequential_fraction);
    stats_.bytesRead += bytes;
    stats_.rowActivations += t.rowActivations;
    stats_.busyCycles += t.cycles;
    return t;
}

HbmTransfer
Hbm::write(std::uint64_t bytes, double sequential_fraction)
{
    HbmTransfer t = transfer(bytes, sequential_fraction);
    stats_.bytesWritten += bytes;
    stats_.rowActivations += t.rowActivations;
    stats_.busyCycles += t.cycles;
    return t;
}

} // namespace mcbp::sim
