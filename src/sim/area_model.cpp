#include "sim/area_model.hpp"

#include <sstream>

namespace mcbp::sim {

namespace {

// Area densities calibrated so defaultConfig() lands on the paper's
// 9.52 mm^2 with its Fig 22(a) breakdown (see file header).
constexpr double kAreaPerPe = 3.636 / 128.0;      // mm^2 per PE.
constexpr double kCamFractionOfBrcr = 0.20;       // CAM share of BRCR.
constexpr double kAreaPerSramKb = 1.818 / 1248.0; // mm^2 per kB.
constexpr double kAreaPerCodecLane = 0.590 / 120.0;
constexpr double kAreaPerAdderTree = 0.428 / 64.0;
constexpr double kSchedulerFixed = 0.70;
constexpr double kSchedulerPerCluster = 0.036;
constexpr double kApuFixed = 1.752;
constexpr double kAreaPerInt8Mac = 0.0016;        // systolic baseline.

} // namespace

std::string
AreaBreakdown::toString() const
{
    std::ostringstream os;
    const double t = total();
    auto line = [&](const char *name, double v) {
        os << "  " << name << ": " << v << " mm^2 ("
           << (t > 0 ? 100.0 * v / t : 0.0) << "%)\n";
    };
    os << "area breakdown (total " << t << " mm^2)\n";
    line("BRCR unit", brcrUnit);
    line("BSTC unit", bstcUnit);
    line("BGPP unit", bgppUnit);
    line("SRAM", sram);
    line("scheduler", scheduler);
    line("APU", apu);
    return os.str();
}

AreaBreakdown
computeArea(const McbpConfig &cfg)
{
    AreaBreakdown a;
    const double pes =
        static_cast<double>(cfg.peClusters) * cfg.pesPerCluster;
    a.brcrUnit = pes * kAreaPerPe;
    a.camOnly = a.brcrUnit * kCamFractionOfBrcr;
    a.bstcUnit =
        static_cast<double>(cfg.decoderLanes + cfg.encoderLanes) *
        kAreaPerCodecLane;
    a.bgppUnit = static_cast<double>(cfg.bgppAdderTrees) * kAreaPerAdderTree;
    a.sram = static_cast<double>(cfg.totalSramKb()) * kAreaPerSramKb;
    a.scheduler = kSchedulerFixed +
                  kSchedulerPerCluster * static_cast<double>(cfg.peClusters);
    a.apu = kApuFixed;
    return a;
}

double
systolicBaselineArea(const McbpConfig &cfg)
{
    // A dense INT8 systolic array must provision one MAC per add-lane the
    // BRCR fabric replaces; it keeps the same SRAM, scheduler and APU.
    AreaBreakdown mcbp = computeArea(cfg);
    const double macs = cfg.peakAddsPerCycle();
    return macs * kAreaPerInt8Mac + mcbp.sram + mcbp.scheduler + mcbp.apu;
}

} // namespace mcbp::sim
