/**
 * @file
 * MCBP accelerator hardware configuration (paper Table 3 and section 4.1),
 * plus the evaluation's common platform constraints (section 5.1: 1 GHz,
 * 1248 kB SRAM, 512-bit/cycle HBM at 4 pJ/bit, 28 nm).
 */
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>

namespace mcbp::sim {

/** Static hardware configuration of one MCBP processor. */
struct McbpConfig
{
    // Clock and technology.
    double clockGhz = 1.0;       ///< Core clock (evaluation fixes 1 GHz).
    int technologyNm = 28;       ///< TSMC 28 nm.

    // BRCR compute fabric (Fig 10 / Fig 14 / Table 3).
    std::size_t peClusters = 16; ///< Scaled to match the HBM interface.
    std::size_t pesPerCluster = 8;   ///< One PE per bit-slice.
    std::size_t amusPerPe = 16;      ///< Addition-merge units.
    /** Activations each AMU sums per cycle through its adder tree
     *  (Fig 14: 16 selected activations feed each merge unit). */
    std::size_t addsPerAmuCycle = 4;
    std::size_t camBytes = 512;      ///< CAM capacity per PE.
    /** Fixed adders in each PE's reconstruction unit (Fig 14: Adder0-3,
     *  time-multiplexed across the 16 AMUs). */
    std::size_t reconAddersPerRu = 4;
    std::size_t camColumns = 64;     ///< Columns matched per CAM load.
    std::size_t groupSize = 4;       ///< m.

    // Tiling (Fig 12).
    std::size_t tileM = 64;
    std::size_t tileK = 256;
    std::size_t tileN = 32;

    // BSTC codec (Table 3: 20x4 decoders, 10x4 encoders).
    std::size_t decoderLanes = 80;
    std::size_t encoderLanes = 40;
    std::size_t decoderBitsPerCycle = 1; ///< Symbol bit per lane-cycle.

    // BGPP unit (Table 3: 64 64-input adder trees, 4 filters).
    std::size_t bgppAdderTrees = 64;
    std::size_t bgppTreeInputs = 64;
    std::size_t bgppFilters = 4;

    // Pipeline overlap (Fig 10 workflow; swept by the ablations).
    /** Fraction of SFU work that cannot be hidden under compute. */
    double exposedSfuFraction = 0.15;
    /**
     * Fraction of the linear segment the BGPP prediction can hide under:
     * prediction runs concurrently with QK/V generation (Fig 10 steps
     * 6-7), roughly the QKV share of the layer's linear work.
     */
    double predictionOverlapWindow = 0.35;

    // On-chip SRAM (Table 3).
    std::size_t tokenSramKb = 384;
    std::size_t weightSramKb = 768;
    std::size_t tempSramKb = 96;

    // Main memory (Table 3 / section 5.1 common platform).
    std::size_t hbmChannels = 8;
    std::size_t hbmChannelBits = 128;
    double hbmClockGhz = 2.0;
    std::size_t hbmBitsPerCoreCycle = 512; ///< Evaluation-fixed bandwidth.
    double hbmEnergyPjPerBit = 4.0;        ///< [O'Connor et al.]
    std::size_t hbmRowBytes = 1024;        ///< Row-buffer granularity.
    double hbmRowActivateCycles = 14.0;    ///< tRCD-ish penalty per miss.
    /** Per-chip HBM stack capacity in GB (bounds resident weights +
     *  KV cache; the serving engine's admission control charges
     *  per-request KV bytes against it). */
    double hbmCapacityGb = 16.0;

    /** Total on-chip SRAM (kB); the evaluation fixes 1248 kB. */
    std::size_t totalSramKb() const
    {
        return tokenSramKb + weightSramKb + tempSramKb;
    }

    /** Peak additions/cycle of the PE fabric (AMU lanes x tree width). */
    double peakAddsPerCycle() const
    {
        return static_cast<double>(peClusters) * pesPerCluster *
               amusPerPe * addsPerAmuCycle;
    }

    /** HBM bytes per core cycle. */
    double hbmBytesPerCycle() const
    {
        return static_cast<double>(hbmBitsPerCoreCycle) / 8.0;
    }

    /** Human-readable configuration dump (Table 3 bench). */
    std::string toString() const;
};

/** The paper's default configuration. */
const McbpConfig &defaultConfig();

} // namespace mcbp::sim
