/**
 * @file
 * Analytic per-operation energy model at 28 nm / 1 GHz.
 *
 * Stands in for the paper's Synopsys DC + CACTI + IO-power methodology
 * (section 5.1). Constants are typical published 28 nm numbers (Horowitz
 * ISSCC'14 style) with the HBM figure taken directly from the paper's
 * platform (4 pJ/bit). What matters for the reproduced figures is that
 * (a) DRAM access dwarfs on-chip ops, (b) SRAM costs scale with capacity,
 * and (c) bit-level ops are far cheaper than full INT8 MACs — all of
 * which these constants preserve.
 */
#pragma once

#include <cstdint>
#include <string>

namespace mcbp::sim {

/** Per-event energies in picojoules. */
struct EnergyParams
{
    double int8Add = 0.06;
    double int32Add = 0.10;
    double int8Mult = 0.20;
    double bitShift = 0.01;       ///< Shift-accumulate steering cost.
    /** Value->bit reorder cost per decompressed bit: the reorder buffer
     *  is an SRAM write+read of the staged data (~2.4 pJ/byte). */
    double bitReorderPerBit = 0.3;
    double camSearch = 0.9;       ///< One 512 B CAM search.
    double camLoadPerPattern = 0.05;
    double codecSymbol = 0.25;    ///< BSTC encoder/decoder symbol.
    double bgppBitMac = 0.04;    ///< 1-bit AND + adder-tree contribution.
    double int4Mac = 0.14;       ///< 4b x 8b MAC (value-level top-k).
    double sramPerByteSmall = 0.6;  ///< <= 128 kB arrays.
    double sramPerByteLarge = 1.2;  ///< ~768 kB arrays (CACTI-ish).
    /** Per-operand staging cost (banked activation buffer amortized
     *  across the 64-wide AMU row reads). */
    double amuOperandByte = 0.03;
    double hbmPerBit = 4.0;       ///< Paper platform constant.
    double fp16Op = 3.0;          ///< SFU non-linear ops.
};

/** Energy accumulated by category (drives the Fig 20(c)/22/23 splits). */
struct EnergyBreakdown
{
    double computePj = 0.0;    ///< PE adds/mults/shift-accumulate.
    double bitReorderPj = 0.0; ///< Data reordering for bit-serial PEs.
    double camPj = 0.0;        ///< CAM loads + searches.
    double codecPj = 0.0;      ///< BSTC encode/decode.
    double bgppPj = 0.0;       ///< Prediction unit.
    double sramPj = 0.0;       ///< On-chip buffer traffic.
    double dramPj = 0.0;       ///< HBM traffic.
    double sfuPj = 0.0;        ///< Softmax / LayerNorm / GELU.
    double interconnectPj = 0.0; ///< Chip-to-chip collectives (clusters).

    double totalPj() const
    {
        return computePj + bitReorderPj + camPj + codecPj + bgppPj +
               sramPj + dramPj + sfuPj + interconnectPj;
    }

    /** On-chip energy (excludes DRAM and off-package interconnect). */
    double onChipPj() const
    {
        return totalPj() - dramPj - interconnectPj;
    }

    void
    merge(const EnergyBreakdown &o)
    {
        computePj += o.computePj;
        bitReorderPj += o.bitReorderPj;
        camPj += o.camPj;
        codecPj += o.codecPj;
        bgppPj += o.bgppPj;
        sramPj += o.sramPj;
        dramPj += o.dramPj;
        sfuPj += o.sfuPj;
        interconnectPj += o.interconnectPj;
    }

    std::string toString() const;
};

/** Helper converting event counts into breakdown entries. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams params = {});

    const EnergyParams &params() const { return p_; }

    double addsEnergy(std::uint64_t adds) const;
    double macsEnergy(std::uint64_t macs) const;
    double shiftEnergy(std::uint64_t shifts) const;
    double camEnergy(std::uint64_t searches, std::uint64_t loads) const;
    double codecEnergy(std::uint64_t symbols) const;
    double sramEnergy(std::uint64_t bytes, bool large_array) const;
    double operandEnergy(std::uint64_t bytes) const;
    double dramEnergy(std::uint64_t bytes) const;
    double bitReorderEnergy(std::uint64_t bits) const;
    double sfuEnergy(std::uint64_t ops) const;
    double bgppEnergy(std::uint64_t bit_macs) const;
    double int4MacEnergy(std::uint64_t macs) const;

  private:
    EnergyParams p_;
};

} // namespace mcbp::sim
