/**
 * @file
 * Area model for the MCBP accelerator (paper Fig 22a, Table 3/4).
 *
 * Stands in for RTL + Synopsys DC synthesis: per-unit area densities are
 * calibrated so the default configuration reproduces the paper's 9.52 mm^2
 * total and its breakdown (BRCR 38.2%, SRAM 19.1%, APU 18.4%, scheduler
 * 13.4%, BSTC 6.2%, BGPP 4.5%). The densities then *scale with the
 * configuration* (PE count, SRAM capacity, codec lanes), which is what the
 * Fig 24(b) hardware-ablation bench exercises.
 */
#pragma once

#include <string>

#include "sim/mcbp_config.hpp"

namespace mcbp::sim {

/** Area by unit, mm^2 at 28 nm. */
struct AreaBreakdown
{
    double brcrUnit = 0.0;   ///< PE clusters incl. CAMs, AMUs, RUs.
    double camOnly = 0.0;    ///< CAM portion of the BRCR unit.
    double bstcUnit = 0.0;   ///< Encoders + decoders.
    double bgppUnit = 0.0;   ///< Adder trees + progressive filters.
    double sram = 0.0;       ///< All on-chip buffers.
    double scheduler = 0.0;  ///< Control + fetch/dispatch.
    double apu = 0.0;        ///< Embedding + SFU + quantizer.

    double total() const
    {
        return brcrUnit + bstcUnit + bgppUnit + sram + scheduler + apu;
    }

    std::string toString() const;
};

/** Compute the area of a configuration. */
AreaBreakdown computeArea(const McbpConfig &cfg);

/**
 * Area of a dense systolic array with the same INT8 throughput as the
 * BRCR fabric (the Fig 24(b) baseline).
 */
double systolicBaselineArea(const McbpConfig &cfg);

} // namespace mcbp::sim
