#include "sim/tiling.hpp"

#include <sstream>

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::sim {

std::string
TilePlan::toString() const
{
    std::ostringstream os;
    os << "GEMM " << m << "x" << k << "x" << n << " tiled " << tileM
       << "x" << tileK << "x" << tileN << " -> grid " << gridM << "x"
       << gridK << "x" << gridN << " (" << totalTiles() << " tiles), "
       << "weight stripe " << weightStripeBytes << " B ("
       << (weightStripeResident ? "resident" : "streamed")
       << "), weight re-read x" << weightRereadFactor
       << ", activation re-read x" << actRereadFactor;
    return os.str();
}

TilePlan
planGemmTiling(const McbpConfig &cfg, std::size_t m, std::size_t k,
               std::size_t n, double weight_compression)
{
    fatalIf(m == 0 || k == 0 || n == 0, "degenerate GEMM shape");
    fatalIf(weight_compression <= 0.0, "compression ratio must be > 0");

    TilePlan plan;
    plan.m = m;
    plan.k = k;
    plan.n = n;
    plan.tileM = std::min(cfg.tileM, m);
    plan.tileK = std::min(cfg.tileK, k);
    plan.tileN = std::min(cfg.tileN, n);
    plan.gridM = ceilDiv(m, plan.tileM);
    plan.gridK = ceilDiv(k, plan.tileK);
    plan.gridN = ceilDiv(n, plan.tileN);

    // A TM x K stripe in bit-sliced INT8 form, after compression.
    plan.weightStripeBytes = static_cast<std::uint64_t>(
        static_cast<double>(plan.tileM) * k / weight_compression);
    plan.actTileBytes =
        static_cast<std::uint64_t>(plan.tileK) * plan.tileN;
    plan.outTileBytes =
        static_cast<std::uint64_t>(plan.tileM) * plan.tileN * 4;

    const std::uint64_t weight_sram = cfg.weightSramKb * 1024ull;
    // Double buffering halves the usable capacity.
    plan.weightStripeResident =
        plan.weightStripeBytes <= weight_sram / 2;

    if (plan.weightStripeResident) {
        // Output-stationary with the stripe resident: weights stream
        // from HBM exactly once; activations re-stream once per M-stripe.
        plan.weightRereadFactor = 1.0;
        plan.actRereadFactor = static_cast<double>(plan.gridM);
    } else {
        // The stripe does not fit: every N-tile pass re-streams the
        // K-dimension weight tiles that were evicted.
        const double resident_fraction =
            static_cast<double>(weight_sram / 2) /
            static_cast<double>(plan.weightStripeBytes);
        plan.weightRereadFactor =
            1.0 + (1.0 - resident_fraction) *
                      static_cast<double>(plan.gridN - 1);
        plan.actRereadFactor = static_cast<double>(plan.gridM);
    }
    return plan;
}

} // namespace mcbp::sim
