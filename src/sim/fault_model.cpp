#include "sim/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace mcbp::sim {

namespace {

/** Exponential inter-arrival draw with the given mean. uniform() is
 *  in [0, 1), so the argument of log stays in (0, 1]. */
double
exponential(Rng &rng, double meanSeconds)
{
    return -meanSeconds * std::log(1.0 - rng.uniform());
}

void
validateKnobs(const FaultSpec &spec)
{
    fatalIf(spec.mtbfSeconds < 0.0, "mtbfSeconds must be >= 0");
    fatalIf(spec.mtbfSeconds > 0.0 && spec.repairSeconds <= 0.0,
            "repairSeconds must be positive when chip failures are on");
    fatalIf(spec.permanentFraction < 0.0 || spec.permanentFraction > 1.0,
            "permanentFraction must be in [0, 1]");
    fatalIf(spec.linkDegradeRate < 0.0, "linkDegradeRate must be >= 0");
    fatalIf(spec.linkDegradeRate > 0.0 &&
                (spec.linkDegradeFactor <= 0.0 ||
                 spec.linkDegradeFactor > 1.0),
            "linkDegradeFactor must be in (0, 1]");
    fatalIf(spec.linkDegradeRate > 0.0 && spec.linkDegradeSeconds <= 0.0,
            "linkDegradeSeconds must be positive");
    fatalIf(spec.stragglerRate < 0.0, "stragglerRate must be >= 0");
    fatalIf(spec.stragglerRate > 0.0 && spec.stragglerSlowdown < 1.0,
            "stragglerSlowdown must be >= 1");
    fatalIf(spec.stragglerRate > 0.0 && spec.stragglerSeconds <= 0.0,
            "stragglerSeconds must be positive");
    fatalIf(spec.enabled() && spec.events.empty() &&
                spec.horizonSeconds <= 0.0,
            "fault injection needs horizonSeconds > 0 to sample the "
            "failure processes");
}

/** Poisson windows of one fleet-wide process: a (start, end) event
 *  pair per arrival, carried factor on both ends. */
void
emitWindows(Rng &rng, double rate, double duration, double factor,
            double horizon, FaultKind start, FaultKind end,
            std::vector<FaultEvent> &out)
{
    if (rate <= 0.0)
        return;
    double t = 0.0;
    while (true) {
        t += exponential(rng, 1.0 / rate);
        if (t >= horizon)
            break;
        FaultEvent open;
        open.at = t;
        open.kind = start;
        open.factor = factor;
        out.push_back(open);
        FaultEvent close = open;
        close.at = t + duration;
        close.kind = end;
        out.push_back(close);
    }
}

void
validateEvent(const FaultEvent &e, std::size_t chips)
{
    fatalIf(e.at < 0.0, "fault event time must be >= 0");
    switch (e.kind) {
    case FaultKind::ChipFail:
        fatalIf(e.chip >= chips,
                "fault event names chip " + std::to_string(e.chip) +
                    " but the fleet has " + std::to_string(chips) +
                    " fault domains");
        fatalIf(!e.permanent && e.repairAt <= e.at,
                "transient chip failure needs repairAt > at");
        break;
    case FaultKind::ChipRepair:
        fatalIf(e.chip >= chips, "repair names an out-of-range chip");
        break;
    case FaultKind::LinkDegrade:
        fatalIf(e.factor <= 0.0 || e.factor > 1.0,
                "link degradation factor must be in (0, 1]");
        break;
    case FaultKind::StragglerStart:
        fatalIf(e.factor < 1.0, "straggler slowdown must be >= 1");
        break;
    case FaultKind::LinkRestore:
    case FaultKind::StragglerEnd:
        break;
    }
}

} // namespace

std::string
toString(FaultKind kind)
{
    switch (kind) {
    case FaultKind::ChipFail:
        return "chip-fail";
    case FaultKind::ChipRepair:
        return "chip-repair";
    case FaultKind::LinkDegrade:
        return "link-degrade";
    case FaultKind::LinkRestore:
        return "link-restore";
    case FaultKind::StragglerStart:
        return "straggler-start";
    case FaultKind::StragglerEnd:
        return "straggler-end";
    }
    return "unknown";
}

std::vector<FaultEvent>
buildFaultTimeline(const FaultSpec &spec, std::size_t chips)
{
    fatalIf(chips == 0, "a fleet has at least one fault domain");
    validateKnobs(spec);

    std::vector<FaultEvent> out;
    if (!spec.events.empty()) {
        // Hand-authored timeline. A transient chip failure implies its
        // repair, so emit the matching ChipRepair exactly as the
        // generated renewal process would — authors write one event
        // per failure and the healing is never forgotten.
        for (const FaultEvent &e : spec.events) {
            out.push_back(e);
            if (e.kind == FaultKind::ChipFail && !e.permanent) {
                FaultEvent repair;
                repair.at = e.repairAt;
                repair.kind = FaultKind::ChipRepair;
                repair.chip = e.chip;
                out.push_back(repair);
            }
        }
    } else if (spec.enabled()) {
        // One master stream per timeline, split per process so the
        // chip count never re-phases an individual chip's draws
        // against its own history. Stream-separated from trace
        // synthesis by construction (kFaultStream).
        Rng master(spec.seed ^ kFaultStream);

        // Per-chip renewal process: exponential time-to-failure at
        // the MTBF, fixed repair, permanent with the configured
        // probability (a permanent failure ends the chip's process).
        for (std::size_t chip = 0; chip < chips; ++chip) {
            Rng rng = master.split();
            if (spec.mtbfSeconds <= 0.0)
                continue;
            double t = 0.0;
            while (true) {
                t += exponential(rng, spec.mtbfSeconds);
                if (t >= spec.horizonSeconds)
                    break;
                FaultEvent fail;
                fail.at = t;
                fail.kind = FaultKind::ChipFail;
                fail.chip = chip;
                fail.permanent = rng.bernoulli(spec.permanentFraction);
                fail.repairAt = t + spec.repairSeconds;
                out.push_back(fail);
                if (fail.permanent)
                    break;
                FaultEvent repair;
                repair.at = fail.repairAt;
                repair.kind = FaultKind::ChipRepair;
                repair.chip = chip;
                out.push_back(repair);
                t = fail.repairAt;
            }
        }

        Rng link = master.split();
        emitWindows(link, spec.linkDegradeRate, spec.linkDegradeSeconds,
                    spec.linkDegradeFactor, spec.horizonSeconds,
                    FaultKind::LinkDegrade, FaultKind::LinkRestore, out);
        Rng straggler = master.split();
        emitWindows(straggler, spec.stragglerRate, spec.stragglerSeconds,
                    spec.stragglerSlowdown, spec.horizonSeconds,
                    FaultKind::StragglerStart, FaultKind::StragglerEnd,
                    out);
    }

    for (const FaultEvent &e : out)
        validateEvent(e, chips);
    // Stable: simultaneous events keep their emission order, so the
    // timeline is deterministic down to ties.
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i].id = i;
    return out;
}

} // namespace mcbp::sim
