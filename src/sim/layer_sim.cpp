#include "sim/layer_sim.hpp"

#include <algorithm>

namespace mcbp::sim {

TilePipelineResult
simulateTilePipeline(const std::vector<TileCosts> &tiles)
{
    TilePipelineResult res;
    res.tiles = tiles.size();
    double load_end = 0.0, decode_end = 0.0, compute_end = 0.0;
    for (const TileCosts &t : tiles) {
        // Double buffering: each stage needs only its own unit free and
        // the upstream stage's output for this tile.
        load_end = load_end + t.loadCycles;
        decode_end = std::max(decode_end, load_end) + t.decodeCycles;
        compute_end =
            std::max(compute_end, decode_end) + t.computeCycles;
        res.loadBusy += t.loadCycles;
        res.decodeBusy += t.decodeCycles;
        res.computeBusy += t.computeCycles;
        res.serialCycles +=
            t.loadCycles + t.decodeCycles + t.computeCycles;
    }
    res.totalCycles = compute_end;
    return res;
}

TilePipelineResult
simulateUniformTiles(const TileCosts &tile, std::size_t count)
{
    return simulateTilePipeline(
        std::vector<TileCosts>(count, tile));
}

} // namespace mcbp::sim
