#include "sim/pipeline.hpp"

#include <algorithm>

namespace mcbp::sim {

LayerLatency
composeLayer(const StageCycles &stages, const McbpConfig &cfg)
{
    LayerLatency lat;
    lat.linearPart = std::max({stages.weightLoad, stages.weightDecode,
                               stages.linearCompute, stages.actLoad});
    // BGPP overlaps the QKV-generation window; the excess is exposed.
    const double exposed_pred = std::max(
        0.0,
        stages.prediction - lat.linearPart * cfg.predictionOverlapWindow);
    lat.attentionPart =
        exposed_pred + std::max(stages.kvLoad, stages.attention);
    lat.exposedSfu = stages.sfu * cfg.exposedSfuFraction;
    lat.totalCycles = lat.linearPart + lat.attentionPart + lat.exposedSfu;
    return lat;
}

LayerLatency
composeLayerSerial(const StageCycles &stages)
{
    LayerLatency lat;
    lat.linearPart = stages.weightLoad + stages.weightDecode +
                     stages.linearCompute + stages.actLoad;
    lat.attentionPart =
        stages.prediction + stages.kvLoad + stages.attention;
    lat.exposedSfu = stages.sfu;
    lat.totalCycles = lat.linearPart + lat.attentionPart + lat.exposedSfu;
    return lat;
}

} // namespace mcbp::sim
