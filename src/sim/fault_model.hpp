/**
 * @file
 * Deterministic fault injection for the serving fleet.
 *
 * A FaultSpec describes the failure processes of a multi-chip
 * deployment — chip failures (permanent, or transient with a repair
 * time), link-bandwidth degradation windows on the shared fabric, and
 * straggler stalls — and buildFaultTimeline() expands it into a
 * sorted sequence of discrete FaultEvents the serving engine's event
 * core consumes as first-class window boundaries (event_core.hpp).
 *
 * Determinism contract: the timeline is a pure function of
 * (spec, chips). Its RNG stream is derived from `seed ^ kFaultStream`,
 * a stream id disjoint from trace synthesis (model::synthesizeTrace
 * seeds Rng(seed) directly), so enabling faults NEVER perturbs the
 * synthesized trace or the costed requests — tests pin this
 * bit-identically (tests/test_faults.cpp).
 *
 * Times are SECONDS here (the unit of the trace and of every knob a
 * user sets); the serving layer converts one copy to cycles once the
 * accelerator's clock is known. Callers needing exact hand-authored
 * scenarios (equivalence tests, examples) bypass the generator by
 * filling FaultSpec::events directly — they are validated, sorted and
 * id-stamped through the same path, and a transient ChipFail
 * auto-emits its matching ChipRepair at repairAt.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcbp::sim {

/** XOR'd into FaultSpec::seed to derive the fault RNG stream: keeps
 *  fault sampling independent of trace synthesis at equal seeds. */
inline constexpr std::uint64_t kFaultStream = 0xFA175EEDull;

/** What a single fault event does to the fleet. */
enum class FaultKind
{
    ChipFail,       ///< A chip dies (permanent or until its repair).
    ChipRepair,     ///< A transient chip failure heals.
    LinkDegrade,    ///< Fabric bandwidth drops by `factor` (in (0,1]).
    LinkRestore,    ///< The matching degradation window ends.
    StragglerStart, ///< Iterations slow by `factor` (>= 1).
    StragglerEnd,   ///< The matching straggler window ends.
};

/** Canonical name, e.g. "chip-fail". */
std::string toString(FaultKind kind);

/** One discrete fault event. Times are seconds in a freshly built
 *  timeline; the serving layer rescales them to cycles in place. */
struct FaultEvent
{
    double at = 0.0;
    FaultKind kind = FaultKind::ChipFail;
    /** Failing chip's fault-domain index (< the fleet's chip count =
     *  Capabilities::kvShards). Ignored for link/straggler events. */
    std::size_t chip = 0;
    /** ChipFail only: the chip never repairs. */
    bool permanent = false;
    /** Transient ChipFail only: when the matching ChipRepair lands. */
    double repairAt = 0.0;
    /** LinkDegrade: bandwidth multiplier in (0,1]. StragglerStart:
     *  iteration-time multiplier >= 1. Unused otherwise. */
    double factor = 1.0;
    /** Timeline position, assigned by buildFaultTimeline (stable). */
    std::size_t id = 0;
};

/** The failure processes of one deployment. Everything defaults off:
 *  a default FaultSpec is the zero-fault configuration. */
struct FaultSpec
{
    /** Stream-separated from trace synthesis via kFaultStream. */
    std::uint64_t seed = 1;

    /** Per-chip mean time between failures (exponential; 0 = off). */
    double mtbfSeconds = 0.0;
    /** Transient-failure repair time (fixed). */
    double repairSeconds = 0.25;
    /** Probability a chip failure is permanent (never repairs). */
    double permanentFraction = 0.0;

    /** Fleet-wide link-degradation windows per second (Poisson;
     *  0 = off). Windows may overlap; factors stack. */
    double linkDegradeRate = 0.0;
    double linkDegradeSeconds = 0.2;
    /** Bandwidth multiplier while degraded, in (0,1]. */
    double linkDegradeFactor = 0.5;

    /** Fleet-wide straggler stalls per second (Poisson; 0 = off). */
    double stragglerRate = 0.0;
    double stragglerSeconds = 0.1;
    /** Iteration-time multiplier while stalled (>= 1). */
    double stragglerSlowdown = 1.5;

    /** Sampling horizon for the generated processes. Required (> 0)
     *  when any rate above is set; events whose windows straddle the
     *  horizon keep their closing event past it. */
    double horizonSeconds = 0.0;

    /** Explicit hand-authored timeline (seconds). When non-empty it
     *  replaces the generated processes entirely (still validated,
     *  sorted and id-stamped). */
    std::vector<FaultEvent> events;

    /** Whether any fault machinery is active at all. */
    bool enabled() const
    {
        return !events.empty() || mtbfSeconds > 0.0 ||
               linkDegradeRate > 0.0 || stragglerRate > 0.0;
    }
};

/**
 * Expand @p spec into the sorted, id-stamped event timeline of a
 * fleet of @p chips fault domains. Deterministic in (spec, chips);
 * fatal() on invalid knobs (non-positive horizon with rates set,
 * factors outside their ranges, chip indices out of bounds).
 */
std::vector<FaultEvent> buildFaultTimeline(const FaultSpec &spec,
                                           std::size_t chips);

} // namespace mcbp::sim
