#include "quant/gemm.hpp"

#include "common/logging.hpp"

namespace mcbp::quant {

FloatMatrix
gemmF32(const FloatMatrix &a, const FloatMatrix &b)
{
    fatalIf(a.cols() != b.rows(), "gemmF32 shape mismatch");
    FloatMatrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const float av = a.at(i, k);
            if (av == 0.0f)
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                c.at(i, j) += av * b.at(k, j);
        }
    }
    return c;
}

Int32Matrix
gemmInt(const Int8Matrix &w, const Int8Matrix &x)
{
    fatalIf(w.cols() != x.rows(), "gemmInt shape mismatch");
    Int32Matrix c(w.rows(), x.cols());
    for (std::size_t i = 0; i < w.rows(); ++i) {
        for (std::size_t k = 0; k < w.cols(); ++k) {
            const std::int32_t wv = w.at(i, k);
            if (wv == 0)
                continue;
            for (std::size_t j = 0; j < x.cols(); ++j)
                c.at(i, j) += wv * static_cast<std::int32_t>(x.at(k, j));
        }
    }
    return c;
}

std::vector<std::int32_t>
gemvInt(const Int8Matrix &w, const std::vector<std::int8_t> &x)
{
    fatalIf(w.cols() != x.size(), "gemvInt shape mismatch");
    std::vector<std::int32_t> y(w.rows(), 0);
    for (std::size_t i = 0; i < w.rows(); ++i) {
        std::int32_t acc = 0;
        const std::int8_t *row = w.rowPtr(i);
        for (std::size_t k = 0; k < w.cols(); ++k)
            acc += static_cast<std::int32_t>(row[k]) *
                   static_cast<std::int32_t>(x[k]);
        y[i] = acc;
    }
    return y;
}

FloatMatrix
gemmQuantFolded(const QuantizedWeight &w, const QuantizedActivation &x)
{
    Int32Matrix prod = gemmInt(w.values, x.values);
    // Row sums of Wq implement the (Wq 1) Zx zero-point correction.
    FloatMatrix out(prod.rows(), prod.cols());
    for (std::size_t r = 0; r < prod.rows(); ++r) {
        std::int64_t row_sum = 0;
        for (std::size_t c = 0; c < w.values.cols(); ++c)
            row_sum += w.values.at(r, c);
        const float scale = w.params.scales[r] * x.params.scale;
        const float bias = -scale * static_cast<float>(row_sum) *
                           static_cast<float>(x.params.zero);
        for (std::size_t c = 0; c < prod.cols(); ++c)
            out.at(r, c) = scale * static_cast<float>(prod.at(r, c)) + bias;
    }
    return out;
}

std::uint64_t
gemmMacs(std::size_t m, std::size_t k, std::size_t n)
{
    return static_cast<std::uint64_t>(m) * k * n;
}

} // namespace mcbp::quant
