#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace mcbp::quant {

int
maxLevel(BitWidth bw)
{
    return bw == BitWidth::Int8 ? 127 : 7;
}

int
magnitudeBits(BitWidth bw)
{
    return bw == BitWidth::Int8 ? 7 : 3;
}

namespace {

std::int8_t
clampToLevel(long v, int level)
{
    if (v > level)
        v = level;
    if (v < -level)
        v = -level;
    return static_cast<std::int8_t>(v);
}

QuantizedWeight
quantizeWithChannelMax(const FloatMatrix &w, BitWidth bw,
                       const std::vector<float> &channel_max)
{
    const int level = maxLevel(bw);
    QuantizedWeight out;
    out.values = Int8Matrix(w.rows(), w.cols());
    out.params.bitWidth = bw;
    out.params.scales.resize(w.rows());
    for (std::size_t r = 0; r < w.rows(); ++r) {
        float mx = channel_max[r];
        float scale = mx > 0.0f ? mx / static_cast<float>(level) : 1.0f;
        out.params.scales[r] = scale;
        for (std::size_t c = 0; c < w.cols(); ++c) {
            long q = std::lround(w.at(r, c) / scale);
            out.values.at(r, c) = clampToLevel(q, level);
        }
    }
    return out;
}

} // namespace

QuantizedWeight
quantizeWeight(const FloatMatrix &w, BitWidth bw)
{
    fatalIf(w.rows() == 0 || w.cols() == 0, "cannot quantize empty weight");
    std::vector<float> channel_max(w.rows(), 0.0f);
    for (std::size_t r = 0; r < w.rows(); ++r)
        for (std::size_t c = 0; c < w.cols(); ++c)
            channel_max[r] = std::max(channel_max[r], std::abs(w.at(r, c)));
    return quantizeWithChannelMax(w, bw, channel_max);
}

QuantizedWeight
quantizeWeightQat(const FloatMatrix &w, BitWidth bw, double clip_percentile)
{
    fatalIf(w.rows() == 0 || w.cols() == 0, "cannot quantize empty weight");
    fatalIf(clip_percentile <= 0.0 || clip_percentile > 1.0,
            "clip percentile must be in (0, 1]");
    std::vector<float> channel_max(w.rows(), 0.0f);
    std::vector<float> mags(w.cols());
    for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c)
            mags[c] = std::abs(w.at(r, c));
        std::size_t idx = static_cast<std::size_t>(
            clip_percentile * static_cast<double>(w.cols() - 1));
        std::nth_element(mags.begin(), mags.begin() + idx, mags.end());
        channel_max[r] = mags[idx];
    }
    return quantizeWithChannelMax(w, bw, channel_max);
}

FloatMatrix
dequantizeWeight(const QuantizedWeight &qw)
{
    FloatMatrix out(qw.values.rows(), qw.values.cols());
    for (std::size_t r = 0; r < out.rows(); ++r)
        for (std::size_t c = 0; c < out.cols(); ++c)
            out.at(r, c) = static_cast<float>(qw.values.at(r, c)) *
                           qw.params.scales[r];
    return out;
}

QuantizedActivation
quantizeActivation(const FloatMatrix &x)
{
    fatalIf(x.rows() == 0 || x.cols() == 0, "cannot quantize empty tensor");
    float mn = x.at(0, 0), mx = x.at(0, 0);
    x.forEach([&](std::size_t, std::size_t, float v) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
    });
    QuantizedActivation out;
    float range = mx - mn;
    out.params.scale = range > 0.0f ? range / 255.0f : 1.0f;
    out.params.zero =
        static_cast<std::int32_t>(std::lround(-mn / out.params.scale)) - 128;
    out.values = Int8Matrix(x.rows(), x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) {
            long q = std::lround(x.at(r, c) / out.params.scale) +
                     out.params.zero;
            q = std::clamp<long>(q, -128, 127);
            out.values.at(r, c) = static_cast<std::int8_t>(q);
        }
    }
    return out;
}

FloatMatrix
dequantizeActivation(const QuantizedActivation &qx)
{
    FloatMatrix out(qx.values.rows(), qx.values.cols());
    for (std::size_t r = 0; r < out.rows(); ++r)
        for (std::size_t c = 0; c < out.cols(); ++c)
            out.at(r, c) =
                (static_cast<float>(qx.values.at(r, c)) -
                 static_cast<float>(qx.params.zero)) *
                qx.params.scale;
    return out;
}

} // namespace mcbp::quant
