#include "quant/calibration.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "quant/gemm.hpp"

namespace mcbp::quant {

ErrorStats
compareTensors(const FloatMatrix &ref, const FloatMatrix &rec)
{
    panicIf(ref.rows() != rec.rows() || ref.cols() != rec.cols(),
            "compareTensors shape mismatch");
    ErrorStats s;
    double dot = 0.0, nref = 0.0, nrec = 0.0, err2 = 0.0;
    for (std::size_t r = 0; r < ref.rows(); ++r) {
        for (std::size_t c = 0; c < ref.cols(); ++c) {
            const double a = ref.at(r, c);
            const double b = rec.at(r, c);
            const double e = a - b;
            err2 += e * e;
            dot += a * b;
            nref += a * a;
            nrec += b * b;
            s.maxAbs = std::max(s.maxAbs, std::abs(e));
        }
    }
    const double n = static_cast<double>(ref.size());
    s.mse = err2 / n;
    s.cosine = (nref > 0 && nrec > 0)
                   ? dot / (std::sqrt(nref) * std::sqrt(nrec))
                   : 1.0;
    s.relFrobenius = nref > 0 ? std::sqrt(err2) / std::sqrt(nref) : 0.0;
    return s;
}

ErrorStats
weightQuantError(const FloatMatrix &w, BitWidth bw)
{
    QuantizedWeight qw = quantizeWeight(w, bw);
    return compareTensors(w, dequantizeWeight(qw));
}

ErrorStats
gemmQuantError(const FloatMatrix &w, const FloatMatrix &x, BitWidth bw)
{
    FloatMatrix ref = gemmF32(w, x);
    QuantizedWeight qw = quantizeWeight(w, bw);
    QuantizedActivation qx = quantizeActivation(x);
    FloatMatrix rec = gemmQuantFolded(qw, qx);
    return compareTensors(ref, rec);
}

} // namespace mcbp::quant
