/**
 * @file
 * Calibration helpers: given sample float tensors, derive the quantization
 * parameters the paper assumes are "pre-known by the calibration dataset"
 * (section 4.1), plus quantization-error metrics used by the Table 2
 * accuracy-proxy bench.
 */
#pragma once

#include "common/matrix.hpp"
#include "quant/quantizer.hpp"

namespace mcbp::quant {

/** Error summary between a reference tensor and a reconstruction. */
struct ErrorStats
{
    double mse = 0.0;          ///< Mean squared error.
    double maxAbs = 0.0;       ///< Worst-case absolute error.
    double cosine = 1.0;       ///< Cosine similarity (1 = identical).
    double relFrobenius = 0.0; ///< ||ref - rec||_F / ||ref||_F.
};

/** Compute error statistics between @p ref and @p rec (same shape). */
ErrorStats compareTensors(const FloatMatrix &ref, const FloatMatrix &rec);

/**
 * Round-trip quantization error of a weight matrix under a bit width:
 * quantize -> dequantize -> compare. The Table 2 proxy uses this to show
 * INT8 is near-lossless while INT4 is materially lossier.
 */
ErrorStats weightQuantError(const FloatMatrix &w, BitWidth bw);

/**
 * End-to-end GEMM error: FP32 reference vs folded quantized GEMM on the
 * same operands.
 */
ErrorStats gemmQuantError(const FloatMatrix &w, const FloatMatrix &x,
                          BitWidth bw);

} // namespace mcbp::quant
