/**
 * @file
 * Reference GEMM kernels: FP32 reference, exact INT32-accumulating integer
 * GEMM (the operation BRCR accelerates), and the fully folded quantized
 * GEMM of Fig 11 (Yq = Scale (.) WqXq + Bias).
 *
 * These are the golden models every accelerated path is verified against.
 */
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "quant/quantizer.hpp"

namespace mcbp::quant {

/** C = A x B in FP32. A is MxK, B is KxN. */
FloatMatrix gemmF32(const FloatMatrix &a, const FloatMatrix &b);

/** C = W x X with INT32 accumulation. W is MxK int8, X is KxN int8. */
Int32Matrix gemmInt(const Int8Matrix &w, const Int8Matrix &x);

/** y = W x x (GEMV) with INT32 accumulation. */
std::vector<std::int32_t> gemvInt(const Int8Matrix &w,
                                  const std::vector<std::int8_t> &x);

/**
 * Folded quantized GEMM (Fig 11): computes the real-valued output of
 * W x X from quantized operands, applying per-channel Scale and the
 * zero-point Bias correction:
 *
 *   Y = dW_r * dX * (Wq Xq - (Wq 1) Zx)
 *
 * Returned in FP32 so tests can compare against gemmF32 on the
 * dequantized operands.
 */
FloatMatrix gemmQuantFolded(const QuantizedWeight &w,
                            const QuantizedActivation &x);

/** Count of multiply-accumulate operations for an MxKxN GEMM. */
std::uint64_t gemmMacs(std::size_t m, std::size_t k, std::size_t n);

} // namespace mcbp::quant
