/**
 * @file
 * Integer quantization for MCBP (paper section 4.1, Fig 11).
 *
 * The paper's scheme, reproduced exactly:
 *  - Weights: per-channel (per output row) *symmetric* quantization,
 *    INT8 or INT4 ("PTQ INT8", "QAT INT8", "PTQ INT4" in Fig 25).
 *  - Activations: per-tensor *asymmetric* quantization with a zero point.
 *  - The integer GEMM Wq x Xq is computed exactly (this is what BRCR
 *    accelerates); scaling and bias folding recover the real-valued output:
 *        Yq = Scale (.) (Wq Xq) + Bias                     (Fig 11b)
 *    with Scale = dW dX / dY (per channel) and
 *    Bias = Zy - dW dX (Wq 1) Zx / dY.
 *
 * QAT is emulated as PTQ with a learned-step-style clipping of the weight
 * range (a small percentile clip), which reproduces the paper's observation
 * (Fig 25a/b) that QAT INT8 and PTQ INT8 weight distributions - and hence
 * bit sparsity - are nearly identical.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"

namespace mcbp::quant {

/** Quantization bit width supported by the library. */
enum class BitWidth { Int4, Int8 };

/** Number of magnitude levels for a bit width (127 for INT8, 7 for INT4). */
int maxLevel(BitWidth bw);

/** Number of magnitude bit-planes (7 for INT8, 3 for INT4), sign excluded. */
int magnitudeBits(BitWidth bw);

/** Per-tensor asymmetric quantization parameters for activations. */
struct ActQuantParams
{
    float scale = 1.0f;   ///< dX: step size.
    std::int32_t zero = 0; ///< Zx: zero point (stored in INT8 range).
};

/** Per-channel symmetric quantization parameters for weights. */
struct WeightQuantParams
{
    std::vector<float> scales; ///< dW per output channel (row).
    BitWidth bitWidth = BitWidth::Int8;
};

/** A quantized weight matrix together with its parameters. */
struct QuantizedWeight
{
    Int8Matrix values; ///< INT8 container (INT4 values live in [-7, 7]).
    WeightQuantParams params;
};

/** A quantized activation matrix together with its parameters. */
struct QuantizedActivation
{
    Int8Matrix values;
    ActQuantParams params;
};

/**
 * Quantize weights per-channel symmetric: row r maps through
 * scale_r = max(|W_r|) / maxLevel. Zero rows get scale 1 to stay finite.
 */
QuantizedWeight quantizeWeight(const FloatMatrix &w, BitWidth bw);

/**
 * QAT-style weight quantization: clip each channel range at the
 * @p clip_percentile quantile of |w| (default 0.999) before the symmetric
 * mapping, emulating a learned step size.
 */
QuantizedWeight quantizeWeightQat(const FloatMatrix &w, BitWidth bw,
                                  double clip_percentile = 0.999);

/** Dequantize a weight matrix back to float (for error measurement). */
FloatMatrix dequantizeWeight(const QuantizedWeight &qw);

/**
 * Quantize activations per-tensor asymmetric into [-128, 127]:
 * scale = (max - min) / 255, zero = round(-min / scale) - 128.
 */
QuantizedActivation quantizeActivation(const FloatMatrix &x);

/** Dequantize activations back to float. */
FloatMatrix dequantizeActivation(const QuantizedActivation &qx);

} // namespace mcbp::quant
