/**
 * @file
 * Analytic models of the SOTA accelerators MCBP is compared against
 * (Table 1, Figs 17/23/26): Sanger, Spatten, FACT, SOFA, Energon,
 * Bitwave, FuseKNA, Cambricon-C, plus a dense systolic-array reference.
 *
 * Each baseline is described by a trait set encoding the *published
 * mechanism* of that design — which redundancy it can exploit (value
 * top-k, head pruning, mixed precision, bit-serial sparsity, bit
 * repetition, LUT INT4), its prediction traffic, its compression format
 * and its bit-reorder overhead — evaluated on the same platform
 * constraints as MCBP (section 5.1: equal PE area, 1 GHz, 1248 kB SRAM,
 * 512-bit/cycle HBM). Factors that depend on the workload (bit sparsity,
 * repetition, attention selectivity) are taken from the same measured
 * profiles MCBP uses, so every design is graded on identical data.
 */
#pragma once

#include <string>
#include <vector>

#include "accel/phase_plan.hpp"
#include "accel/profiles.hpp"
#include "accel/report.hpp"
#include "model/llm_config.hpp"
#include "model/workload.hpp"
#include "sim/mcbp_config.hpp"

namespace mcbp::accel {

/** Mechanism traits of one baseline accelerator. */
struct BaselineTraits
{
    std::string name;

    // --- Compute path ---
    /** Datapath bit-adds per dense linear MAC (after the design's own
     *  optimizations); 8.0 = a dense INT8 MAC datapath of equal area. */
    double linearAddsPerMac = 8.0;
    /** Fraction of dense linear MACs the design executes. */
    double linearComputeFraction = 1.0;
    /** Fraction of dense attention MACs executed (token pruning). */
    double attnComputeFraction = 1.0;
    /** Datapath utilization (serial matching, load imbalance, ...). */
    double utilization = 0.85;

    // --- Memory path ---
    /** Weight-traffic compression ratio. */
    double weightCompression = 1.0;
    /** Prediction K-bits fetched per key element (0 = no prediction). */
    double predBitsPerElem = 0.0;
    /** Fraction of keys fetched for formal attention. */
    double kvSelectedFraction = 1.0;
    /** Whether the design's optimizations apply in the decode stage. */
    bool decodeOptimized = false;

    // --- Overheads ---
    /** Reorder bits per weight bit (value->bit-serial mismatch). */
    double bitReorderPerWeightBit = 0.0;
    /** Head-pruning style weight reduction (Spatten). */
    double weightPruneFraction = 1.0;
};

/** Workload-derived traits for the designs that exploit bit phenomena. */
BaselineTraits makeSystolic();
BaselineTraits makeSanger(const AttentionStats &as);
BaselineTraits makeSpatten(const AttentionStats &as);
BaselineTraits makeFact(const AttentionStats &as);
BaselineTraits makeSofa(const AttentionStats &as);
BaselineTraits makeEnergon(const AttentionStats &as);
BaselineTraits makeBitwave(const WeightStats &ws);
BaselineTraits makeFuseKna(const WeightStats &ws);
BaselineTraits makeCambriconC(const WeightStats &ws4);

/** Evaluate a baseline on one (model, task) pair. */
class BaselineAccelerator
{
  public:
    BaselineAccelerator(BaselineTraits traits,
                        sim::McbpConfig hw = sim::defaultConfig());

    const std::string &name() const { return traits_.name; }
    const BaselineTraits &traits() const { return traits_; }

    /** Phase totals + layer decomposition (execution_plan.hpp). */
    ExecutionPlan plan(const model::LlmConfig &model,
                       const model::Workload &task) const;

    /** One (model, task) run (= plan().fold()). */
    RunMetrics run(const model::LlmConfig &model,
                   const model::Workload &task) const;

  private:
    PhaseMetrics simulatePhase(const PhasePlan &plan,
                               const model::LlmConfig &model) const;

    BaselineTraits traits_;
    sim::McbpConfig hw_;
};

} // namespace mcbp::accel
