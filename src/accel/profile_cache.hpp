/**
 * @file
 * Thread-safe, singleflight cache of measured workload profiles
 * (WeightStats / AttentionStats). Profiling synthesizes tiles and runs
 * the functional BRCR/BSTC/BGPP engines, which is orders of magnitude
 * more expensive than the analytic cycle model consuming the result —
 * so every accelerator instance and every serving request should share
 * one cache, and no key may ever be profiled twice.
 *
 * The cache is keyed by everything profiling depends on (model, bit
 * width, alpha, seed, context bucket). Lookups are singleflight: each
 * key owns a once-initialized slot, so N threads racing on a cold key
 * block on the single in-flight computation instead of each paying the
 * full profiling cost, and the map mutex is never held while profiling
 * runs. profileCalls() counts the computations actually executed
 * (tests assert it stays at 1 per key under contention). Entries are
 * never evicted and live on the heap, so returned references stay
 * valid for the cache's lifetime even while other threads insert.
 *
 * warm() precomputes a batch of keys on the global thread pool
 * (common/parallel.hpp): cold-start fleet construction profiles on all
 * cores instead of serially on the first run() that needs each key.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "accel/profiles.hpp"
#include "common/annotations.hpp"
#include "model/llm_config.hpp"
#include "model/workload.hpp"
#include "quant/quantizer.hpp"

namespace mcbp::accel {

/**
 * One profiling need an accelerator announces for (model, task), fed
 * to ProfileCache::warm(). Equal keys are deduplicated there, so
 * callers may append requests per (accelerator, model, task) without
 * caring which ones coincide.
 */
struct ProfileRequest
{
    model::LlmConfig model;
    quant::BitWidth bitWidth = quant::BitWidth::Int8;
    std::uint64_t seed = 1;
    /** Weight-side profile wanted (profileWeights). */
    bool wantWeights = false;
    /** Attention-side profile wanted (profileAttention of task/alpha). */
    bool wantAttention = false;
    model::Workload task;
    double alpha = 0.6;
};

/** Shared, singleflight profile store. */
class ProfileCache
{
  public:
    /** Weight profile of @p model (computed once per key). */
    const WeightStats &weights(const model::LlmConfig &model,
                               quant::BitWidth bw, std::uint64_t seed);

    /** Attention profile of (@p model, @p task) at @p alpha. */
    const AttentionStats &attention(const model::LlmConfig &model,
                                    const model::Workload &task,
                                    double alpha, std::uint64_t seed);

    /**
     * Precompute every distinct key named by @p requests, fanning the
     * cold ones out over the thread pool (@p threads as in
     * parallel::parallelFor: 0 = full pool, 1 = serial). Stats are
     * bit-identical to demand-filling the same keys serially, because
     * each key's computation is self-contained and deterministic.
     */
    void warm(const std::vector<ProfileRequest> &requests,
              std::size_t threads = 0);

    /** Number of cached (completed) entries, for tests. */
    std::size_t size() const;

    /**
     * Profiling computations actually executed (not lookups). Under
     * singleflight this equals the number of distinct keys ever
     * requested, no matter how many threads raced on them.
     */
    std::uint64_t profileCalls() const;

  private:
    /**
     * Singleflight slot: the first thread through the once-flag runs
     * the profiling; racers block inside call_once until the value is
     * ready. Heap-allocated and owned by shared_ptr so the map mutex
     * can drop before profiling starts without invalidating the slot.
     */
    template <typename Stats> struct Slot
    {
        std::once_flag once;
        Stats value;
        bool ready = false; ///< Written once under the once-flag.
    };

    template <typename Stats, typename Compute>
    const Stats &lookup(std::map<std::string,
                                 std::shared_ptr<Slot<Stats>>> &map,
                        const std::string &key, const Compute &compute);

    /** attention() with an explicit cap for profileAttention's own
     *  per-query fan-out (threads=1 keeps warm(…, 1) fully serial). */
    const AttentionStats &attentionAt(const model::LlmConfig &model,
                                      const model::Workload &task,
                                      double alpha, std::uint64_t seed,
                                      std::size_t threads);

    mutable Mutex mutex_;
    std::map<std::string, std::shared_ptr<Slot<WeightStats>>> weights_
        MCBP_GUARDED_BY(mutex_);
    std::map<std::string, std::shared_ptr<Slot<AttentionStats>>>
        attention_ MCBP_GUARDED_BY(mutex_);
    std::uint64_t profileCalls_ MCBP_GUARDED_BY(mutex_) = 0;
};

/** A fresh cache wrapped for sharing across accelerator instances. */
std::shared_ptr<ProfileCache> makeProfileCache();

} // namespace mcbp::accel
