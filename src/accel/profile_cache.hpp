/**
 * @file
 * Thread-safe cache of measured workload profiles (WeightStats /
 * AttentionStats). Profiling synthesizes tiles and runs the functional
 * BRCR/BSTC/BGPP engines, which is orders of magnitude more expensive
 * than the analytic cycle model consuming the result — so every
 * accelerator instance and every serving request should share one cache.
 *
 * The cache is keyed by everything profiling depends on (model, bit
 * width, alpha, seed, task), guarded by a mutex so concurrent serving
 * simulation and parallel benches are safe. Entries are never evicted;
 * std::map guarantees reference stability, so returned references stay
 * valid for the cache's lifetime even while other threads insert.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "accel/profiles.hpp"
#include "model/llm_config.hpp"
#include "model/workload.hpp"
#include "quant/quantizer.hpp"

namespace mcbp::accel {

/** Shared, mutex-guarded profile store. */
class ProfileCache
{
  public:
    /** Weight profile of @p model (computed once per key). */
    const WeightStats &weights(const model::LlmConfig &model,
                               quant::BitWidth bw, std::uint64_t seed);

    /** Attention profile of (@p model, @p task) at @p alpha. */
    const AttentionStats &attention(const model::LlmConfig &model,
                                    const model::Workload &task,
                                    double alpha, std::uint64_t seed);

    /** Number of cached entries (weights + attention), for tests. */
    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, WeightStats> weights_;
    std::map<std::string, AttentionStats> attention_;
};

/** A fresh cache wrapped for sharing across accelerator instances. */
std::shared_ptr<ProfileCache> makeProfileCache();

} // namespace mcbp::accel
