#include "accel/profiles.hpp"

#include <algorithm>
#include <cmath>

#include "bgpp/bgpp_predictor.hpp"
#include "bgpp/topk_baseline.hpp"
#include "brcr/brcr_engine.hpp"
#include "bstc/compressed_weight.hpp"
#include "bstc/value_codec.hpp"
#include "bitslice/sparsity.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "model/synthetic.hpp"

namespace mcbp::accel {

WeightStats
profileWeights(const model::LlmConfig &model, quant::BitWidth bw,
               std::uint64_t seed, std::size_t sample_rows)
{
    fatalIf(sample_rows == 0, "sample must be non-empty");
    Rng rng(seed ^ 0x57a7e11eull);
    model::WeightProfile profile;
    profile.dynamicRange = model.dynamicRange;
    const std::size_t cols = model.hidden;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, sample_rows, cols, bw, profile);

    WeightStats stats;
    bitslice::SparsityReport sr =
        bitslice::analyzeSparsity(qw.values, bw);
    stats.valueSparsity = sr.valueSparsity;
    stats.meanBitSparsity = sr.meanBitSparsity;
    stats.planeSparsity = sr.planeSparsity;

    // Run the real BRCR engine on one activation vector and extrapolate
    // per-MAC (all counted quantities are linear in rows x cols).
    std::vector<std::int8_t> x(cols);
    for (auto &v : x)
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
    brcr::BrcrEngine engine({4, bw});
    brcr::BrcrGemvResult res = engine.gemv(qw.values, x);
    const double macs =
        static_cast<double>(sample_rows) * static_cast<double>(cols);
    const double total = static_cast<double>(res.ops.totalAdds());
    stats.brcrAddsPerMac = total / macs;
    stats.mergeFraction =
        total > 0 ? static_cast<double>(res.ops.mergeAdds) / total : 0.0;
    stats.reconFraction =
        total > 0 ? static_cast<double>(res.ops.reconAdds) / total : 0.0;
    stats.camSearchesPerMac =
        static_cast<double>(res.ops.camSearches) / macs;

    const double planes = static_cast<double>(quant::magnitudeBits(bw));
    stats.bscAddsPerMac = planes * (1.0 - stats.meanBitSparsity);

    // BSTC compression with the paper's plane policy.
    bstc::PlanePolicy policy = bstc::paperDefaultPolicy(
        static_cast<std::size_t>(quant::magnitudeBits(bw)));
    bstc::CompressedWeight cw(qw.values, bw, 4, policy);
    stats.bstcCompressionRatio = cw.compressionRatio();
    stats.bstcSymbolsPerByte =
        static_cast<double>(cw.rowGroups()) * cols *
        static_cast<double>(policy.compressedCount()) / macs;

    // Value-level baseline: the better of a real zero-RLE and a real
    // canonical Huffman code on the same weights (what EIE/Deep-
    // Compression style value compression achieves).
    stats.valueCompressionRatio = std::max(
        bstc::valueCompressionRatio(bstc::rleEncode(qw.values)),
        bstc::valueCompressionRatio(bstc::huffmanEncode(qw.values)));
    return stats;
}

namespace {

/** Per-query accumulands of profileAttention (joined in index order). */
struct QuerySample
{
    double sel = 0.0;
    double predBits = 0.0;
    double macs = 0.0;
    double recallBgpp = 0.0;
    double recallTopk = 0.0;
    double topkFrac = 0.0;
};

} // namespace

AttentionStats
profileAttention(const model::LlmConfig &model, const model::Workload &task,
                 double alpha, std::uint64_t seed, std::size_t max_context,
                 std::size_t queries, std::size_t threads)
{
    const std::size_t s =
        std::min<std::size_t>(max_context,
                              std::max<std::size_t>(64, task.promptLen));
    const std::size_t d = model.headDim();

    // Each query derives its own RNG from (seed, qi), so the per-query
    // work is self-contained: the fan-out below produces the same
    // samples at every thread count, and joining them in index order
    // keeps the floating-point reduction order fixed — parallel output
    // is bit-identical to the serial path.
    const std::vector<QuerySample> samples =
        parallel::parallelMap<QuerySample>(
            queries,
            [&](std::size_t qi) {
                Rng rng(seed ^ 0xa77e4710ull ^
                        (static_cast<std::uint64_t>(qi) *
                         0x9e3779b97f4a7c15ull));
                model::AttentionSet set = model::synthesizeAttention(
                    rng, s, d, task.attentionConcentration);

                bgpp::BgppConfig cfg;
                cfg.alpha = alpha;
                cfg.logitScale = set.logitScale;
                bgpp::BgppPredictor predictor(cfg);
                bgpp::BgppResult res =
                    predictor.predict(set.query, set.keys);

                QuerySample q;
                const double elems = static_cast<double>(s) * d;
                q.sel = static_cast<double>(res.selected.size()) /
                        static_cast<double>(s);
                q.predBits = static_cast<double>(res.bitsFetched) / elems;
                q.macs = static_cast<double>(res.macs) / elems;

                // Match the top-k budget to what BGPP kept, so the
                // traffic comparison (Fig 5g) is at equal selectivity.
                const std::size_t k =
                    std::max<std::size_t>(1, res.selected.size());
                bgpp::TopkResult truth =
                    bgpp::exactTopk(set.query, set.keys, k);
                bgpp::TopkResult value =
                    bgpp::valueTopk(set.query, set.keys, k);
                q.recallBgpp = bgpp::recall(res.selected, truth.selected);
                q.recallTopk =
                    bgpp::recall(value.selected, truth.selected);
                q.topkFrac =
                    static_cast<double>(k) / static_cast<double>(s);
                return q;
            },
            threads);

    double sel = 0.0, pred_bits = 0.0, macs = 0.0;
    double recall_bgpp = 0.0, recall_topk = 0.0, topk_frac = 0.0;
    for (const QuerySample &q : samples) {
        sel += q.sel;
        pred_bits += q.predBits;
        macs += q.macs;
        recall_bgpp += q.recallBgpp;
        recall_topk += q.recallTopk;
        topk_frac += q.topkFrac;
    }

    AttentionStats stats;
    const double n = static_cast<double>(queries);
    stats.bgppSelectedFraction = sel / n;
    stats.topkFraction = topk_frac / n;
    stats.bgppPredBitsPerElem = pred_bits / n;
    stats.bgppBitMacsPerElem = macs / n;
    stats.bgppRecall = recall_bgpp / n;
    stats.valueTopkRecall = recall_topk / n;
    stats.valuePredBitsPerElem = 5.0; // 4-bit magnitude + sign.
    return stats;
}

} // namespace mcbp::accel
