/**
 * @file
 * Common result types for accelerator runs: cycles, energy, traffic and
 * derived throughput/efficiency metrics, shared by the MCBP model, the
 * GPU roofline and all SOTA baselines so the evaluation benches compare
 * like with like.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "sim/energy_model.hpp"

namespace mcbp::accel {

/**
 * Compose a phase's linear segment from its two raw streams under the
 * model's composition rule (PhaseMetrics::memorySerialized). The one
 * definition shared by phase sharding (cluster), per-request costing
 * and batch re-composition (serving), which must never disagree.
 */
inline double
composedLinearCycles(double weightStreamCycles, double linearWorkCycles,
                     bool memorySerialized)
{
    return memorySerialized
               ? weightStreamCycles + linearWorkCycles
               : std::max(weightStreamCycles, linearWorkCycles);
}

/** Off-chip traffic in bytes. */
struct Traffic
{
    double weightBytes = 0.0;
    double kvBytes = 0.0;       ///< KV formal reads + writes.
    double predictionBytes = 0.0; ///< K bits fetched by sparsity prediction.
    double actBytes = 0.0;

    double
    total() const
    {
        return weightBytes + kvBytes + predictionBytes + actBytes;
    }

    void
    merge(const Traffic &o)
    {
        weightBytes += o.weightBytes;
        kvBytes += o.kvBytes;
        predictionBytes += o.predictionBytes;
        actBytes += o.actBytes;
    }
};

/** One inference phase (prefill or decode). */
struct PhaseMetrics
{
    double cycles = 0.0;
    sim::EnergyBreakdown energy;
    Traffic traffic;
    double denseMacs = 0.0;    ///< Logical dense work (for GOPS).
    double executedAdds = 0.0; ///< Effective datapath ops performed.
    /** Latency contributors (Fig 1a-style breakdown). */
    double gemmCycles = 0.0;
    double weightLoadCycles = 0.0;
    double kvLoadCycles = 0.0;
    double otherCycles = 0.0;
    /**
     * Raw cycles of the two linear-segment streams, for schedulers
     * that re-compose the phase at other batch sizes: the weight
     * stream (HBM load + decompression; shared by every request
     * decoding a step) and the per-request linear work (GEMM compute,
     * activation/KV traffic). `memorySerialized` names the composition
     * rule the model used, so a scheduler can invert it exactly:
     *   false (pipelined; MCBP, SOTA baselines):
     *       linear segment = max(weightStreamCycles, linearWorkCycles)
     *   true (serialized memory; the GPU roofline):
     *       linear segment = weightStreamCycles + linearWorkCycles
     */
    double weightStreamCycles = 0.0;
    double linearWorkCycles = 0.0;
    bool memorySerialized = false;
    /**
     * Phase TOTAL (summed over the phase's steps, like `cycles`) of
     * the fixed per-step latency floor that a batched step pays once
     * regardless of how many requests share it (e.g. a cluster's
     * all-reduce hop latency). Contained in `cycles`. Schedulers
     * divide by the phase's steps and charge the per-step share like
     * the weight stream — max across the batch, never summed.
     */
    double fixedStepCycles = 0.0;

    void merge(const PhaseMetrics &o);
};

/** A full run = prefill + decode. */
struct RunMetrics
{
    std::string accelerator;
    std::string modelName;
    std::string taskName;
    PhaseMetrics prefill;
    PhaseMetrics decode;
    double clockGhz = 1.0;
    /**
     * Chips ganged for the run (procs= gangs x tp= shards x pp=
     * stages). The pinned accounting semantics
     * (tests/test_pipeline.cpp::ProcessorsSemanticsArePinned):
     * per-phase `cycles` are the gang's CRITICAL PATH — seconds() is
     * deliberately processor-count-invariant — while per-phase energy
     * and traffic are PER-CHIP quantities, so joules() (and every
     * derived watt/efficiency figure, and the serving engine's
     * per-request energy attribution) multiplies by this count.
     * Logical work (denseMacs/executedAdds) stays the gang total, so
     * gops() needs no processor factor.
     */
    std::size_t processors = 1;

    double totalCycles() const { return prefill.cycles + decode.cycles; }

    /** Wall time in seconds (processor-count-invariant). */
    double seconds() const;

    /** Total energy in joules (per-chip energy x processors). */
    double joules() const;

    /** Average power in watts. */
    double watts() const;

    /** Effective throughput in GOPS (2 x dense MACs / time). */
    double gops() const;

    /** Energy efficiency in GOPS/W. */
    double gopsPerWatt() const;
};

/** speedup of @p test vs @p baseline (wall time ratio). */
double speedupVs(const RunMetrics &test, const RunMetrics &baseline);

/** energy saving factor of @p test vs @p baseline. */
double energySavingVs(const RunMetrics &test, const RunMetrics &baseline);

} // namespace mcbp::accel
