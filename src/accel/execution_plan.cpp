#include "accel/execution_plan.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace mcbp::accel {

PhaseMetrics
scalePhase(const PhaseMetrics &phase, double fraction)
{
    PhaseMetrics out = phase; // composition rule carried over.
    out.cycles = phase.cycles * fraction;
    out.denseMacs = phase.denseMacs * fraction;
    out.executedAdds = phase.executedAdds * fraction;
    out.gemmCycles = phase.gemmCycles * fraction;
    out.weightLoadCycles = phase.weightLoadCycles * fraction;
    out.kvLoadCycles = phase.kvLoadCycles * fraction;
    out.otherCycles = phase.otherCycles * fraction;
    out.weightStreamCycles = phase.weightStreamCycles * fraction;
    out.linearWorkCycles = phase.linearWorkCycles * fraction;
    out.fixedStepCycles = phase.fixedStepCycles * fraction;

    out.traffic.weightBytes = phase.traffic.weightBytes * fraction;
    out.traffic.kvBytes = phase.traffic.kvBytes * fraction;
    out.traffic.predictionBytes =
        phase.traffic.predictionBytes * fraction;
    out.traffic.actBytes = phase.traffic.actBytes * fraction;

    out.energy.computePj = phase.energy.computePj * fraction;
    out.energy.bitReorderPj = phase.energy.bitReorderPj * fraction;
    out.energy.camPj = phase.energy.camPj * fraction;
    out.energy.codecPj = phase.energy.codecPj * fraction;
    out.energy.bgppPj = phase.energy.bgppPj * fraction;
    out.energy.sramPj = phase.energy.sramPj * fraction;
    out.energy.dramPj = phase.energy.dramPj * fraction;
    out.energy.sfuPj = phase.energy.sfuPj * fraction;
    out.energy.interconnectPj =
        phase.energy.interconnectPj * fraction;
    return out;
}

RunMetrics
ExecutionPlan::fold() const
{
    RunMetrics rm;
    rm.accelerator = accelerator;
    rm.modelName = modelName;
    rm.taskName = taskName;
    rm.clockGhz = clockGhz;
    rm.processors = processors;
    rm.prefill = prefill; // verbatim copy: no arithmetic, so folding
    rm.decode = decode;   // a plan is bit-identical to the run.
    return rm;
}

PlanSegment
ExecutionPlan::slice(std::size_t firstLayer,
                     std::size_t layerCount) const
{
    fatalIf(layerCount == 0, "empty layer slice");
    fatalIf(firstLayer + layerCount > modelLayers,
            "layer slice [" + std::to_string(firstLayer) + "," +
                std::to_string(firstLayer + layerCount) +
                ") escapes the planned stack of " +
                std::to_string(modelLayers) + " layers");
    const std::size_t lo = firstLayer;
    const std::size_t hi = firstLayer + layerCount;

    PlanSegment out;
    out.label = "layers[" + std::to_string(lo) + "," +
                std::to_string(hi) + ")";
    out.firstLayer = lo;
    out.layerCount = layerCount;

    bool first = true;
    std::size_t covered = 0;
    for (const PlanSegment &seg : segments) {
        const std::size_t seg_lo = seg.firstLayer;
        const std::size_t seg_hi = seg.firstLayer + seg.layerCount;
        const std::size_t o_lo = std::max(lo, seg_lo);
        const std::size_t o_hi = std::min(hi, seg_hi);
        if (o_lo >= o_hi)
            continue;
        const double frac = static_cast<double>(o_hi - o_lo) /
                            static_cast<double>(seg.layerCount);
        PhaseMetrics pf = scalePhase(seg.prefill, frac);
        PhaseMetrics dc = scalePhase(seg.decode, frac);
        if (first) {
            // Copy-then-merge keeps the non-additive fields (the
            // composition rule) that merge() does not transport.
            out.prefill = pf;
            out.decode = dc;
            first = false;
        } else {
            out.prefill.merge(pf);
            out.decode.merge(dc);
        }
        covered += o_hi - o_lo;
    }
    fatalIf(covered != layerCount,
            "plan segments do not cover the requested layer slice "
            "(plan is not a partition of the stack)");
    return out;
}

ExecutionPlan
planFromRun(const RunMetrics &rm, std::size_t modelLayers)
{
    fatalIf(modelLayers == 0, "a plan needs at least one layer");
    ExecutionPlan plan;
    plan.accelerator = rm.accelerator;
    plan.modelName = rm.modelName;
    plan.taskName = rm.taskName;
    plan.clockGhz = rm.clockGhz;
    plan.processors = rm.processors;
    plan.modelLayers = modelLayers;
    plan.prefill = rm.prefill;
    plan.decode = rm.decode;
    PlanSegment seg;
    seg.label = "layers[0," + std::to_string(modelLayers) + ")";
    seg.firstLayer = 0;
    seg.layerCount = modelLayers;
    seg.prefill = rm.prefill;
    seg.decode = rm.decode;
    plan.segments.push_back(std::move(seg));
    return plan;
}

} // namespace mcbp::accel
