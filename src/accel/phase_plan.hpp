/**
 * @file
 * Shared phase-composition plumbing for the accelerator models.
 *
 * Every analytic model (MCBP, the SOTA baselines, and any future design)
 * evaluates the same two-phase shape: a weight-resident, KV-tiled prefill
 * over all prompt tokens, then a weight-streaming decode loop with the
 * paper's average causal context (S/2 for prefill, S + D/2 for decode).
 * This header hoists that plumbing — previously duplicated between
 * McbpAccelerator and BaselineAccelerator — into one place, so a model
 * only supplies its per-phase cycle/energy function.
 */
#pragma once

#include <string>
#include <utility>

#include "accel/execution_plan.hpp"
#include "accel/report.hpp"
#include "model/llm_config.hpp"
#include "model/workload.hpp"
#include "sim/mcbp_config.hpp"

namespace mcbp::accel {

/** Schedule of one inference phase (prefill or decode). */
struct PhasePlan
{
    double batch = 1.0;
    double queries = 0.0;   ///< Tokens producing queries this phase.
    double context = 0.0;   ///< Average attention context length.
    double steps = 1.0;     ///< Phase repetitions (decode tokens).
    bool weightResident = false; ///< Prefill reuses weights across tokens.
    bool kvOnChipTiling = false; ///< Prefill streams KV via SRAM tiles.
    bool decodePhase = false;    ///< Decode loses prefill-only tricks.
};

/** Prefill plan: all prompt tokens, resident weights, tiled KV. */
PhasePlan prefillPlan(const model::Workload &task);

/** Decode plan: one token per step, streamed weights and KV cache. */
PhasePlan decodePlan(const model::Workload &task);

/**
 * KV re-read sweeps caused by tiling the queries through the token SRAM
 * (1.0 when the phase streams the cache once per token instead).
 */
double kvSweeps(const sim::McbpConfig &hw, const PhasePlan &plan,
                double hidden);

/**
 * Compose a full execution plan: simulate prefill, then decode when
 * the task generates tokens, and publish the result as phase totals
 * plus one uniform full-stack layer segment (every analytic model
 * here prices one layer and multiplies, so per-layer cost is uniform
 * and the single segment is exactly decomposable — see
 * ExecutionPlan::slice). @p simulate maps a PhasePlan to PhaseMetrics.
 */
template <typename SimulateFn>
ExecutionPlan
composePlan(std::string acceleratorName, const model::LlmConfig &model,
            const model::Workload &task, double clockGhz,
            std::size_t processors, SimulateFn &&simulate)
{
    ExecutionPlan plan;
    plan.accelerator = std::move(acceleratorName);
    plan.modelName = model.name;
    plan.taskName = task.name;
    plan.clockGhz = clockGhz;
    plan.processors = processors;
    plan.modelLayers = model.layers;
    plan.prefill = simulate(prefillPlan(task));
    if (task.decodeLen > 0)
        plan.decode = simulate(decodePlan(task));
    PlanSegment seg;
    seg.label = "layers[0," + std::to_string(model.layers) + ")";
    seg.firstLayer = 0;
    seg.layerCount = model.layers;
    seg.prefill = plan.prefill;
    seg.decode = plan.decode;
    plan.segments.push_back(std::move(seg));
    return plan;
}


} // namespace mcbp::accel
