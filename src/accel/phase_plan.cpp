#include "accel/phase_plan.hpp"

#include <algorithm>

namespace mcbp::accel {

PhasePlan
prefillPlan(const model::Workload &task)
{
    // All prompt tokens at once, weights resident per layer, KV tiled
    // through SRAM. Average causal context = S/2.
    PhasePlan p;
    p.batch = static_cast<double>(task.batch);
    p.queries = static_cast<double>(task.promptLen);
    p.context = static_cast<double>(task.promptLen) / 2.0;
    p.steps = 1.0;
    p.weightResident = true;
    p.kvOnChipTiling = true;
    p.decodePhase = false;
    return p;
}

PhasePlan
decodePlan(const model::Workload &task)
{
    // One token per step, weights re-fetched every token, KV cache
    // streamed from HBM. Average context = S + D/2.
    PhasePlan p;
    p.batch = static_cast<double>(task.batch);
    p.queries = 1.0;
    p.context = static_cast<double>(task.promptLen) +
                static_cast<double>(task.decodeLen) / 2.0;
    p.steps = static_cast<double>(task.decodeLen);
    p.weightResident = false;
    p.kvOnChipTiling = false;
    p.decodePhase = true;
    return p;
}

double
kvSweeps(const sim::McbpConfig &hw, const PhasePlan &plan, double hidden)
{
    if (!plan.kvOnChipTiling)
        return 1.0;
    const double q_tile_rows =
        std::max(64.0, static_cast<double>(hw.tokenSramKb) * 1024.0 /
                           (4.0 * hidden));
    return std::max(1.0, plan.queries * plan.batch / q_tile_rows);
}

} // namespace mcbp::accel
