/**
 * @file
 * NVIDIA A100 roofline model (section 5.1 "GPU comparison") and the
 * "software-only on GPU" variants of Fig 21 (MCBP's algorithms deployed
 * on the GPU without hardware support).
 *
 * Stands in for the paper's TensorRT-LLM measurements: per phase, latency
 * is max(compute, memory) with published peak numbers (624 TOPS INT8,
 * 2 TB/s HBM2e) derated by measured utilization factors; dynamic power is
 * the active-minus-idle figure the paper's nvidia-smi methodology yields.
 *
 * The software variants apply each MCBP algorithm's *logical* savings but
 * charge the GPU's published inefficiencies for fine-grained bit
 * operations (irregular gather/merge, value->bit reorder, poor SM
 * utilization) — reproducing the paper's observation that the algorithms
 * alone yield only ~1.0-1.4x on a GPU.
 */
#pragma once

#include "accel/execution_plan.hpp"
#include "accel/profiles.hpp"
#include "accel/report.hpp"
#include "model/llm_config.hpp"
#include "model/workload.hpp"

namespace mcbp::accel {

/** A100 platform constants and derating factors. */
struct GpuParams
{
    double int8Tops = 624.0;        ///< Peak INT8 tensor-core TOPS.
    double hbmBytesPerSec = 2.0e12; ///< HBM2e bandwidth.
    double hbmCapacityBytes = 80e9; ///< HBM2e capacity (A100 80GB SXM).
    double computeUtilization = 0.40; ///< Large-GEMM tensor-core util.
    double decodeBwUtilization = 0.72;///< Achievable decode bandwidth.
    double dynamicWatts = 350.0;    ///< Active-minus-idle power.
    double clockGhz = 1.41;
    /** GPU-side efficiency of MCBP's algorithms (Fig 21 discussion). */
    double bitMergeEfficiency = 0.21;  ///< BRCR merging on SIMT.
    double bitDecodeEfficiency = 0.35; ///< BSTC decode on SIMT.
    double progPredEfficiency = 0.40;  ///< BGPP rounds on SIMT.
};

/** Which MCBP algorithms run (in software) on the GPU. */
struct GpuSoftwareOptions
{
    bool brcr = false;
    bool bstc = false;
    bool bgpp = false;
};

/** A100 model. */
class GpuA100Model
{
  public:
    explicit GpuA100Model(GpuParams params = {},
                          GpuSoftwareOptions sw = {});

    std::string name() const;

    const GpuParams &params() const { return p_; }
    const GpuSoftwareOptions &software() const { return sw_; }

    RunMetrics run(const model::LlmConfig &model,
                   const model::Workload &task,
                   const WeightStats &ws, const AttentionStats &as) const;

    /** Convenience overload that profiles internally (alpha 0.6). */
    RunMetrics run(const model::LlmConfig &model,
                   const model::Workload &task) const;

    /**
     * The execution-plan view (execution_plan.hpp). The roofline
     * composes whole phases (it does not price layers individually),
     * so the plan is one uniform full-stack segment; fold() returns
     * the run bit-for-bit.
     */
    ExecutionPlan plan(const model::LlmConfig &model,
                       const model::Workload &task,
                       const WeightStats &ws,
                       const AttentionStats &as) const;

  private:
    GpuParams p_;
    GpuSoftwareOptions sw_;
};

} // namespace mcbp::accel
