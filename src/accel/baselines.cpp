#include "accel/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "sim/hbm.hpp"
#include "sim/pe_cluster.hpp"
#include "sim/pipeline.hpp"

namespace mcbp::accel {

BaselineTraits
makeSystolic()
{
    BaselineTraits t;
    t.name = "Systolic";
    return t;
}

BaselineTraits
makeSanger(const AttentionStats &as)
{
    // Sanger (MICRO'21): reconfigurable sparse attention via value-level
    // top-k style score prediction; attention-only, prefill-only.
    BaselineTraits t;
    t.name = "Sanger";
    t.attnComputeFraction = as.topkFraction;
    t.predBitsPerElem = as.valuePredBitsPerElem;
    t.kvSelectedFraction = as.topkFraction;
    t.utilization = 0.75; // pack/split load imbalance.
    return t;
}

BaselineTraits
makeSpatten(const AttentionStats &as)
{
    // SpAtten (HPCA'21): cascade token + head pruning, value top-k
    // prediction with progressive 4-bit fetch; applies in P&D.
    BaselineTraits t;
    t.name = "Spatten";
    t.attnComputeFraction = as.topkFraction;
    t.predBitsPerElem = as.valuePredBitsPerElem;
    t.kvSelectedFraction = as.topkFraction;
    t.weightPruneFraction = 0.9; // cascade head pruning trims ~10%.
    t.decodeOptimized = true;
    return t;
}

BaselineTraits
makeFact(const AttentionStats &as)
{
    // FACT (ISCA'23): eager correlation prediction + mixed-precision
    // whole-model computation; prefill-oriented.
    BaselineTraits t;
    t.name = "FACT";
    t.linearComputeFraction = 0.55; // mixed INT4/INT8 computation.
    t.attnComputeFraction = as.topkFraction;
    t.predBitsPerElem = 2.5; // eager prediction piggybacks on QK gen.
    t.kvSelectedFraction = as.topkFraction;
    t.weightCompression = 1.25; // low-bit weight path.
    return t;
}

BaselineTraits
makeSofa(const AttentionStats &as)
{
    // SOFA (MICRO'24): compute-memory co-optimized *attention* via
    // cross-stage tiling; no weight-path optimization, prefill-only.
    BaselineTraits t;
    t.name = "SOFA";
    t.attnComputeFraction = as.topkFraction * 0.9;
    t.predBitsPerElem = 4.0; // log-domain low-bit speculation.
    t.kvSelectedFraction = as.topkFraction * 0.8; // cross-stage tiling.
    t.utilization = 0.9;
    return t;
}

BaselineTraits
makeEnergon(const AttentionStats &as)
{
    // Energon (TCAD'22): mix-precision multi-round top-k filtering; KV
    // traffic partially reduced ("Low" in Table 1).
    BaselineTraits t;
    t.name = "Energon";
    t.attnComputeFraction = as.topkFraction;
    t.predBitsPerElem = 3.0; // 2-bit first round + refinements.
    t.kvSelectedFraction = as.topkFraction;
    t.decodeOptimized = false;
    return t;
}

BaselineTraits
makeBitwave(const WeightStats &ws)
{
    // BitWave (HPCA'24): column-structured bit-level sparsity
    // (bit-flip + sign-magnitude), weight-side only.
    BaselineTraits t;
    t.name = "Bitwave";
    // Structured (column-wise) skipping captures a fraction of the raw
    // bit sparsity; published results center around ~40-60% of bits.
    const double structured = 0.75 * ws.meanBitSparsity;
    t.linearAddsPerMac = 7.0 * (1.0 - structured) * 2.0; // serial mul+acc.
    t.weightCompression = std::max(1.0, 8.0 / (8.0 * (1.0 - structured) +
                                               1.5)); // section metadata.
    t.decodeOptimized = true; // weight path works in decode too.
    t.bitReorderPerWeightBit = 0.45; // multi-bit packed format (Fig 23).
    return t;
}

BaselineTraits
makeFuseKna(const WeightStats &ws)
{
    // FuseKNA (HPCA'21): fused-kernel bit repetition for convolutions,
    // adapted to GEMV via im2col; value-level RLE compression; serial
    // repetition matching limits utilization.
    BaselineTraits t;
    t.name = "FuseKNA";
    const double merge_gain =
        std::min(0.55, 1.0 - ws.meanBitSparsity); // full-size merge only.
    t.linearAddsPerMac = 7.0 * (1.0 - ws.meanBitSparsity) * 2.0 *
                         (1.0 - merge_gain * 0.5);
    t.weightCompression = 1.15; // value-level run-length coding.
    t.utilization = 0.55;       // serial match pipeline stalls.
    t.bitReorderPerWeightBit = 0.8; // value format vs bit-serial PEs.
    t.decodeOptimized = true;
    return t;
}

BaselineTraits
makeCambriconC(const WeightStats &ws4)
{
    // Cambricon-C (MICRO'24): INT4 quarter-square-multiplication lookup;
    // extended to W4A8 as in section 6. Primitivization makes an INT4
    // MAC nearly as cheap as a bit-add lane in area, so its dense
    // throughput is high; it exploits no sparsity/KV redundancy, and the
    // W4A8 extension inflates the lookup tables (utilization hit).
    BaselineTraits t;
    t.name = "Cambricon-C";
    t.linearAddsPerMac = 1.2;   // table lookup + quarter-square adds.
    t.weightCompression = 2.0;  // INT4 weights halve traffic.
    t.utilization = 0.75;       // W4A8 lookup growth (section 6).
    t.decodeOptimized = true;
    (void)ws4;
    return t;
}

BaselineAccelerator::BaselineAccelerator(BaselineTraits traits,
                                         sim::McbpConfig hw)
    : traits_(std::move(traits)), hw_(hw)
{
}

PhaseMetrics
BaselineAccelerator::simulatePhase(const PhasePlan &plan,
                                   const model::LlmConfig &m) const
{
    const BaselineTraits &t = traits_;
    const double layers = static_cast<double>(m.layers);
    const double hidden = static_cast<double>(m.hidden);

    // Prefill-only designs lose their sparsity mechanisms in decode.
    const bool opts_on = !plan.decodePhase || t.decodeOptimized;
    const double lin_frac = opts_on ? t.linearComputeFraction : 1.0;
    const double attn_frac = opts_on ? t.attnComputeFraction : 1.0;
    const double kv_sel = opts_on ? t.kvSelectedFraction : 1.0;
    const double pred_bits = opts_on ? t.predBitsPerElem : 0.0;
    const double weight_cr = t.weightCompression; // format is static.

    sim::PeClusterModel fabric(hw_);
    sim::Hbm hbm(hw_);
    sim::EnergyModel energy;

    // Linear portion. Equal-area fabric: kBitAddsPerMacArea bit-add
    // lanes occupy the area of one dense INT8 MAC lane; everything is
    // expressed in MAC-lane cycles on that budget.
    constexpr double kBitAddsPerMacArea = 8.0;
    const double lin_macs = static_cast<double>(m.paramsPerLayer()) *
                            t.weightPruneFraction * plan.queries * plan.batch;
    const double lin_adds =
        lin_macs * lin_frac * t.linearAddsPerMac / kBitAddsPerMacArea;
    const double lane_macs_per_cycle =
        hw_.peakAddsPerCycle() / kBitAddsPerMacArea * t.utilization;
    const double lin_compute_cycles =
        lin_macs * lin_frac * (t.linearAddsPerMac / kBitAddsPerMacArea) /
        lane_macs_per_cycle;

    const double weight_bytes = static_cast<double>(m.paramsPerLayer()) *
                                t.weightPruneFraction / weight_cr;
    const double weight_load_cycles =
        hbm.read(static_cast<std::uint64_t>(weight_bytes), 0.9).cycles;

    const double act_bytes = (2.0 * hidden + static_cast<double>(m.ffn)) *
                             plan.queries * plan.batch;
    const double act_cycles = act_bytes / hbm.bytesPerCycle();

    // Attention portion.
    const double kv_sweeps = kvSweeps(hw_, plan, hidden);
    const double pair_elems = plan.queries * plan.context * hidden * plan.batch;
    const double pred_bytes =
        pred_bits > 0.0 ? plan.context * hidden * (pred_bits / 8.0) *
                              kv_sweeps *
                              (plan.kvOnChipTiling ? 1.0 : plan.batch)
                        : 0.0;
    const double pred_macs = pred_bits > 0.0 ? pair_elems / 2.0 : 0.0;
    const double pred_cycles = std::max(
        pred_macs / lane_macs_per_cycle,
        pred_bytes / hbm.bytesPerCycle());

    const double attn_macs =
        2.0 * plan.queries * plan.context * hidden * plan.batch * attn_frac;
    const double attn_cycles = attn_macs / lane_macs_per_cycle;
    const double kv_bytes = 2.0 * plan.context * hidden * kv_sel * kv_sweeps *
                                (plan.kvOnChipTiling ? 1.0 : plan.batch) +
                            2.0 * hidden * plan.queries * plan.batch;
    const double kv_cycles =
        hbm.read(static_cast<std::uint64_t>(kv_bytes), 0.5).cycles;

    const double sfu_ops =
        plan.queries * plan.context * attn_frac * plan.batch * 2.0 +
        6.0 * plan.queries * plan.batch * hidden;
    const double sfu_cycles = sfu_ops / 64.0;

    sim::StageCycles stages;
    stages.weightLoad = plan.weightResident
                            ? weight_load_cycles / std::max(1.0, plan.steps)
                            : weight_load_cycles;
    stages.linearCompute = lin_compute_cycles;
    stages.prediction = pred_cycles;
    stages.kvLoad = kv_cycles;
    stages.attention = attn_cycles;
    stages.sfu = sfu_cycles;
    stages.actLoad = act_cycles;
    const sim::LayerLatency lat = sim::composeLayer(stages, hw_);

    PhaseMetrics out;
    out.cycles = lat.totalCycles * layers * plan.steps;
    out.denseMacs =
        (static_cast<double>(m.paramsPerLayer()) * plan.queries * plan.batch +
         2.0 * plan.queries * plan.context * hidden * plan.batch) *
        layers * plan.steps;
    out.executedAdds =
        (lin_adds * kBitAddsPerMacArea + attn_macs * kBitAddsPerMacArea +
         pred_macs) * layers * plan.steps;

    out.gemmCycles = lin_compute_cycles * layers * plan.steps;
    out.weightLoadCycles =
        std::max(0.0, (lat.linearPart - lin_compute_cycles)) * layers *
        plan.steps;
    out.kvLoadCycles = lat.attentionPart * layers * plan.steps;
    out.otherCycles = lat.exposedSfu * layers * plan.steps;
    out.weightStreamCycles = stages.weightLoad * layers * plan.steps;
    out.linearWorkCycles =
        std::max(stages.linearCompute, stages.actLoad) * layers *
        plan.steps;

    out.traffic.weightBytes =
        weight_bytes * layers * (plan.weightResident ? 1.0 : plan.steps);
    out.traffic.predictionBytes = pred_bytes * layers * plan.steps;
    out.traffic.kvBytes = kv_bytes * layers * plan.steps;
    out.traffic.actBytes = act_bytes * layers * plan.steps;

    const double steps_l = layers * plan.steps;
    sim::EnergyBreakdown &e = out.energy;
    e.computePj =
        energy.macsEnergy(static_cast<std::uint64_t>(
            (lin_macs * lin_frac + attn_macs + pred_macs) * steps_l));
    e.dramPj = energy.dramEnergy(static_cast<std::uint64_t>(
        out.traffic.total()));
    e.sramPj = energy.sramEnergy(
        static_cast<std::uint64_t>(out.traffic.total() * 2.0), true);
    e.sfuPj = energy.sfuEnergy(
        static_cast<std::uint64_t>(sfu_ops * steps_l));
    if (t.bitReorderPerWeightBit > 0.0) {
        // Reordering happens on every operand bit streamed into the
        // bit-serial PEs, so it scales with compute volume.
        e.bitReorderPj = energy.bitReorderEnergy(
            static_cast<std::uint64_t>(lin_adds *
                                       t.bitReorderPerWeightBit *
                                       steps_l));
    }
    return out;
}

ExecutionPlan
BaselineAccelerator::plan(const model::LlmConfig &model,
                          const model::Workload &task) const
{
    return composePlan(traits_.name, model, task, hw_.clockGhz, 1,
                       [&](const PhasePlan &p) {
                           return simulatePhase(p, model);
                       });
}

RunMetrics
BaselineAccelerator::run(const model::LlmConfig &model,
                         const model::Workload &task) const
{
    return plan(model, task).fold();
}

} // namespace mcbp::accel
