#include "accel/report.hpp"

#include "common/logging.hpp"

namespace mcbp::accel {

void
PhaseMetrics::merge(const PhaseMetrics &o)
{
    cycles += o.cycles;
    energy.merge(o.energy);
    traffic.merge(o.traffic);
    denseMacs += o.denseMacs;
    executedAdds += o.executedAdds;
    gemmCycles += o.gemmCycles;
    weightLoadCycles += o.weightLoadCycles;
    kvLoadCycles += o.kvLoadCycles;
    otherCycles += o.otherCycles;
    weightStreamCycles += o.weightStreamCycles;
    linearWorkCycles += o.linearWorkCycles;
    fixedStepCycles += o.fixedStepCycles;
}

double
RunMetrics::seconds() const
{
    return totalCycles() / (clockGhz * 1e9);
}

double
RunMetrics::joules() const
{
    return (prefill.energy.totalPj() + decode.energy.totalPj()) * 1e-12 *
           static_cast<double>(processors);
}

double
RunMetrics::watts() const
{
    const double s = seconds();
    return s > 0.0 ? joules() / s : 0.0;
}

double
RunMetrics::gops() const
{
    const double s = seconds();
    const double ops = 2.0 * (prefill.denseMacs + decode.denseMacs);
    return s > 0.0 ? ops / s / 1e9 : 0.0;
}

double
RunMetrics::gopsPerWatt() const
{
    const double w = watts();
    return w > 0.0 ? gops() / w : 0.0;
}

double
speedupVs(const RunMetrics &test, const RunMetrics &baseline)
{
    fatalIf(test.seconds() <= 0.0, "degenerate run time");
    return baseline.seconds() / test.seconds();
}

double
energySavingVs(const RunMetrics &test, const RunMetrics &baseline)
{
    fatalIf(test.joules() <= 0.0, "degenerate run energy");
    return baseline.joules() / test.joules();
}

} // namespace mcbp::accel
