/**
 * @file
 * Thread-safe, singleflight cache of folded execution-plan costs
 * (RunMetrics) keyed by (accelerator identity, model, workload shape).
 *
 * Serving traces repeat request shapes heavily: a million-request
 * trace drawn from a task zoo with jittered lengths prices only a few
 * thousand distinct (model, prompt, decode) shapes, and the paged
 * policy's recompute re-pricer hits the same prefill-only shapes on
 * every preemption. Accelerator::run() is deterministic in its inputs,
 * so the fold can be computed once per key and shared — which is what
 * makes the costing loop safely parallel: concurrent threads racing on
 * a cold key block on the single in-flight computation (the
 * ProfileCache singleflight design) and every thread reads the same
 * bits afterwards.
 *
 * The cache cannot see which accelerator produced a metric, so the
 * caller supplies an identity string (name + configSummary covers
 * every knob that changes pricing) as the leading key component.
 * Entries are never evicted and live on the heap, so returned
 * references stay valid for the cache's lifetime even while other
 * threads insert.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "accel/report.hpp"
#include "common/annotations.hpp"
#include "model/llm_config.hpp"
#include "model/workload.hpp"

namespace mcbp::accel {

/** Shared, singleflight folded-run cost store. */
class PlanCache
{
  public:
    /** Computes the metrics of a cold key (typically wraps
     *  Accelerator::run). Must be deterministic in the key. */
    using Compute = std::function<RunMetrics()>;

    /**
     * The metrics of (@p identity, @p model, @p task), computing them
     * via @p compute exactly once per key no matter how many threads
     * race on it. @p identity must cover every accelerator knob that
     * changes pricing (name + configSummary does).
     */
    const RunMetrics &metrics(const std::string &identity,
                              const model::LlmConfig &model,
                              const model::Workload &task,
                              const Compute &compute);

    /** Number of cached (completed) entries, for tests. */
    std::size_t size() const;

    /**
     * Cost computations actually executed (not lookups). Under
     * singleflight this equals the number of distinct keys ever
     * requested, no matter how many threads raced on them.
     */
    std::uint64_t computeCalls() const;

  private:
    /** Singleflight slot (see ProfileCache): the first thread through
     *  the once-flag computes; racers block until the value is ready. */
    struct Slot
    {
        std::once_flag once;
        RunMetrics value;
        bool ready = false; ///< Written once under the once-flag.
    };

    mutable Mutex mutex_;
    std::map<std::string, std::shared_ptr<Slot>> entries_
        MCBP_GUARDED_BY(mutex_);
    std::uint64_t computeCalls_ MCBP_GUARDED_BY(mutex_) = 0;
};

/** A fresh cache wrapped for sharing across simulator layers. */
std::shared_ptr<PlanCache> makePlanCache();

} // namespace mcbp::accel
