/**
 * @file
 * Stage-decomposable execution plans: the public costing contract of
 * every accelerator model.
 *
 * An ExecutionPlan is what `plan(model, task)` returns instead of an
 * opaque RunMetrics: the authoritative per-phase totals (exactly what
 * `run()` used to produce — `fold()` reconstitutes that RunMetrics
 * bit-for-bit) plus a decomposition of the model's decoder stack into
 * contiguous *layer segments*, each carrying its own share of the
 * phase costs (cycles, energy, traffic, and the weight-stream vs.
 * compute split the serving engine re-composes).
 *
 * The segment contract: segments partition [0, modelLayers), and
 * within one segment the cost is uniform per layer (the decoder stack
 * is homogeneous — every analytic model here prices one layer and
 * multiplies). That is what makes the plan *decomposable*: a pipeline
 * stage covering any contiguous layer range can be priced exactly by
 * `slice()`, which rescales the overlapped segments linearly. Plans
 * produced by composed accelerators (engine::PipelineAccelerator)
 * keep per-stage segments for introspection while the totals carry
 * the cross-stage effects (fill/drain bubbles, inter-stage
 * transfers) that no single layer range owns.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "accel/report.hpp"

namespace mcbp::accel {

/**
 * Scale every additive field of a phase by @p fraction (cycles,
 * energy, traffic, raw streams, logical work). The composition rule
 * (memorySerialized) is preserved. fraction 1.0 is the bit-exact
 * identity; both composition rules commute with uniform scaling, so a
 * scaled phase re-composes consistently.
 */
PhaseMetrics scalePhase(const PhaseMetrics &phase, double fraction);

/** Cost of one contiguous layer range, per phase. */
struct PlanSegment
{
    /** Display label, e.g. "layers[0,32)" or "stage2 layers[16,24)". */
    std::string label;
    std::size_t firstLayer = 0;
    std::size_t layerCount = 0;
    /** Whole-phase cost of this segment's layers (all steps). */
    PhaseMetrics prefill;
    PhaseMetrics decode;
};

/**
 * The two-level costing contract: authoritative phase totals (what a
 * run costs end to end) plus the layer-segment decomposition.
 */
struct ExecutionPlan
{
    std::string accelerator;
    std::string modelName;
    std::string taskName;
    double clockGhz = 1.0;
    /** Chips ganged for the run (see RunMetrics::processors). */
    std::size_t processors = 1;
    /** Decoder layers of the planned model (segments partition this). */
    std::size_t modelLayers = 0;

    /**
     * Authoritative phase totals: `fold()` copies these verbatim, so a
     * plan-folding `run()` is bit-identical to composing the phases
     * directly. For composed topologies the totals include effects the
     * segments cannot own (pipeline bubbles, inter-stage transfers).
     */
    PhaseMetrics prefill;
    PhaseMetrics decode;

    /** Layer decomposition (partition of [0, modelLayers)). */
    std::vector<PlanSegment> segments;

    /** Collapse the plan into the legacy RunMetrics (exact copy of
     *  the totals — no arithmetic, hence bit-identical). */
    RunMetrics fold() const;

    /**
     * Price the contiguous layer range [firstLayer, firstLayer +
     * layerCount): each overlapped segment contributes its overlap
     * fraction (uniform per-layer cost within a segment). fatal() if
     * the range is empty or escapes [0, modelLayers).
     */
    PlanSegment slice(std::size_t firstLayer,
                      std::size_t layerCount) const;

    double totalCycles() const { return prefill.cycles + decode.cycles; }
};

/**
 * Wrap an already-composed RunMetrics as a single-segment plan (the
 * whole stack in one uniform segment). Used by models that do not
 * price layers individually (the GPU roofline composes phase rooflines
 * directly); `fold()` returns @p rm bit-for-bit.
 */
ExecutionPlan planFromRun(const RunMetrics &rm, std::size_t modelLayers);

} // namespace mcbp::accel
