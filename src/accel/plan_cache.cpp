#include "accel/plan_cache.hpp"

#include <utility>

namespace mcbp::accel {

namespace {

/**
 * Every Workload field an Accelerator::plan() may read participates in
 * the key (name included: task identity is cheap to keep and guards
 * against future task-conditional costing). The separator cannot occur
 * in zoo names, and the identity goes last so its embedded newlines
 * cannot collide with the structured prefix.
 */
std::string
planKey(const std::string &identity, const model::LlmConfig &model,
        const model::Workload &task)
{
    std::string key;
    key.reserve(identity.size() + task.name.size() + model.name.size() + 64);
    key += model.name;
    key += '\x1f';
    key += task.name;
    key += '\x1f';
    key += std::to_string(task.promptLen);
    key += '\x1f';
    key += std::to_string(task.decodeLen);
    key += '\x1f';
    key += std::to_string(task.batch);
    key += '\x1f';
    key += std::to_string(static_cast<int>(task.kind));
    key += '\x1f';
    key += std::to_string(task.attentionConcentration);
    key += '\x1f';
    key += identity;
    return key;
}

} // namespace

const RunMetrics &
PlanCache::metrics(const std::string &identity,
                   const model::LlmConfig &model,
                   const model::Workload &task, const Compute &compute)
{
    // Find-or-create the key's slot under the map mutex, then run the
    // (expensive) compute through the slot's once-flag with the mutex
    // released: lookups of other keys proceed, racers on this key
    // block on the one in-flight computation, and if compute throws,
    // call_once lets the next caller retry the key.
    std::shared_ptr<Slot> slot;
    {
        MutexLock lock(mutex_);
        auto &entry = entries_[planKey(identity, model, task)];
        if (!entry)
            entry = std::make_shared<Slot>();
        slot = entry;
    }
    std::call_once(slot->once, [&] {
        RunMetrics computed = compute();
        MutexLock lock(mutex_);
        slot->value = std::move(computed);
        slot->ready = true;
        ++computeCalls_;
    });
    return slot->value;
}

std::size_t
PlanCache::size() const
{
    MutexLock lock(mutex_);
    std::size_t n = 0;
    for (const auto &kv : entries_)
        n += kv.second->ready ? 1 : 0;
    return n;
}

std::uint64_t
PlanCache::computeCalls() const
{
    MutexLock lock(mutex_);
    return computeCalls_;
}

std::shared_ptr<PlanCache>
makePlanCache()
{
    return std::make_shared<PlanCache>();
}

} // namespace mcbp::accel
