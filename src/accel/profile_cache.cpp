#include "accel/profile_cache.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <utility>

#include "common/parallel.hpp"

namespace mcbp::accel {

namespace {

std::string
weightKey(const model::LlmConfig &model, quant::BitWidth bw,
          std::uint64_t seed)
{
    return model.name + "/" + std::to_string(static_cast<int>(bw)) + "/" +
           std::to_string(seed);
}

/**
 * profileAttention() depends on the workload only through the clamped
 * context min(2048, max(64, promptLen)) and the task's attention
 * concentration, so the cache keys on those — not the task name —
 * and profiles a canonical power-of-two context per bucket. Serving
 * traces with jittered per-request lengths then share a handful of
 * deterministic entries instead of aliasing whatever length was
 * profiled first (the zoo tasks' nominal lengths are already powers
 * of two, so figure benches see bit-identical stats).
 */
std::size_t
contextBucket(std::size_t prompt_len)
{
    const std::size_t ctx = std::min<std::size_t>(
        2048, std::max<std::size_t>(64, prompt_len));
    return std::bit_ceil(ctx);
}

std::string
attentionKey(const model::LlmConfig &model, const model::Workload &task,
             double alpha, std::uint64_t seed)
{
    return model.name + "/ctx" +
           std::to_string(contextBucket(task.promptLen)) + "/conc" +
           std::to_string(task.attentionConcentration) + "/" +
           std::to_string(alpha) + "/" + std::to_string(seed);
}

} // namespace

/**
 * Find-or-create the key's slot under the map mutex, then run the
 * (expensive) compute through the slot's once-flag with the mutex
 * released: concurrent lookups of other keys proceed, and racers on
 * this key block on the one in-flight computation instead of redoing
 * it (singleflight). If compute throws, call_once lets the next caller
 * retry the key.
 */
template <typename Stats, typename Compute>
const Stats &
ProfileCache::lookup(
    std::map<std::string, std::shared_ptr<Slot<Stats>>> &map,
    const std::string &key, const Compute &compute)
{
    std::shared_ptr<Slot<Stats>> slot;
    {
        MutexLock lock(mutex_);
        auto &entry = map[key];
        if (!entry)
            entry = std::make_shared<Slot<Stats>>();
        slot = entry;
    }
    std::call_once(slot->once, [&] {
        Stats computed = compute();
        MutexLock lock(mutex_);
        slot->value = std::move(computed);
        slot->ready = true;
        ++profileCalls_;
    });
    return slot->value;
}

const WeightStats &
ProfileCache::weights(const model::LlmConfig &model, quant::BitWidth bw,
                      std::uint64_t seed)
{
    return lookup(weights_, weightKey(model, bw, seed), [&] {
        return profileWeights(model, bw, seed);
    });
}

const AttentionStats &
ProfileCache::attentionAt(const model::LlmConfig &model,
                          const model::Workload &task, double alpha,
                          std::uint64_t seed, std::size_t threads)
{
    return lookup(
        attention_, attentionKey(model, task, alpha, seed), [&] {
            // Profile the bucket's canonical context so every workload
            // mapping to this key gets identical stats. The stats are
            // bit-identical at every thread count; the cap only bounds
            // the per-query fan-out's concurrency.
            model::Workload canonical = task;
            canonical.promptLen = contextBucket(task.promptLen);
            return profileAttention(model, canonical, alpha, seed,
                                    kProfileMaxContext, kProfileQueries,
                                    threads);
        });
}

const AttentionStats &
ProfileCache::attention(const model::LlmConfig &model,
                        const model::Workload &task, double alpha,
                        std::uint64_t seed)
{
    return attentionAt(model, task, alpha, seed, 0);
}

void
ProfileCache::warm(const std::vector<ProfileRequest> &requests,
                   std::size_t threads)
{
    // Deduplicate by final cache key so the fan-out is one task per
    // distinct profile, not per announcing accelerator.
    std::map<std::string, std::function<void()>> distinct;
    for (const ProfileRequest &r : requests) {
        if (r.wantWeights) {
            distinct.try_emplace(
                weightKey(r.model, r.bitWidth, r.seed),
                [this, &r] { (void)weights(r.model, r.bitWidth, r.seed); });
        }
        if (r.wantAttention) {
            // Propagate the cap into the per-query fan-out, so
            // warm(…, 1) is serial end to end (the bench's reference
            // baseline and the pinned-deployment escape hatch).
            distinct.try_emplace(
                attentionKey(r.model, r.task, r.alpha, r.seed),
                [this, &r, threads] {
                    (void)attentionAt(r.model, r.task, r.alpha, r.seed,
                                      threads);
                });
        }
    }
    std::vector<const std::function<void()> *> jobs;
    jobs.reserve(distinct.size());
    for (const auto &kv : distinct)
        jobs.push_back(&kv.second);
    parallel::parallelFor(
        jobs.size(), [&](std::size_t i) { (*jobs[i])(); }, threads);
}

std::size_t
ProfileCache::size() const
{
    MutexLock lock(mutex_);
    std::size_t n = 0;
    for (const auto &kv : weights_)
        n += kv.second->ready ? 1 : 0;
    for (const auto &kv : attention_)
        n += kv.second->ready ? 1 : 0;
    return n;
}

std::uint64_t
ProfileCache::profileCalls() const
{
    MutexLock lock(mutex_);
    return profileCalls_;
}

std::shared_ptr<ProfileCache>
makeProfileCache()
{
    return std::make_shared<ProfileCache>();
}

} // namespace mcbp::accel
