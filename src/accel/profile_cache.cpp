#include "accel/profile_cache.hpp"

#include <algorithm>
#include <bit>

namespace mcbp::accel {

namespace {

std::string
weightKey(const model::LlmConfig &model, quant::BitWidth bw,
          std::uint64_t seed)
{
    return model.name + "/" + std::to_string(static_cast<int>(bw)) + "/" +
           std::to_string(seed);
}

/**
 * profileAttention() depends on the workload only through the clamped
 * context min(2048, max(64, promptLen)) and the task's attention
 * concentration, so the cache keys on those — not the task name —
 * and profiles a canonical power-of-two context per bucket. Serving
 * traces with jittered per-request lengths then share a handful of
 * deterministic entries instead of aliasing whatever length was
 * profiled first (the zoo tasks' nominal lengths are already powers
 * of two, so figure benches see bit-identical stats).
 */
std::size_t
contextBucket(std::size_t prompt_len)
{
    const std::size_t ctx = std::min<std::size_t>(
        2048, std::max<std::size_t>(64, prompt_len));
    return std::bit_ceil(ctx);
}

std::string
attentionKey(const model::LlmConfig &model, const model::Workload &task,
             double alpha, std::uint64_t seed)
{
    return model.name + "/ctx" +
           std::to_string(contextBucket(task.promptLen)) + "/conc" +
           std::to_string(task.attentionConcentration) + "/" +
           std::to_string(alpha) + "/" + std::to_string(seed);
}

} // namespace

const WeightStats &
ProfileCache::weights(const model::LlmConfig &model, quant::BitWidth bw,
                      std::uint64_t seed)
{
    const std::string key = weightKey(model, bw, seed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = weights_.find(key);
        if (it != weights_.end())
            return it->second;
    }
    // Profile outside the lock: it is the expensive part, and two threads
    // racing on the same key produce identical (deterministic) stats.
    WeightStats ws = profileWeights(model, bw, seed);
    std::lock_guard<std::mutex> lock(mutex_);
    return weights_.emplace(key, std::move(ws)).first->second;
}

const AttentionStats &
ProfileCache::attention(const model::LlmConfig &model,
                        const model::Workload &task, double alpha,
                        std::uint64_t seed)
{
    const std::string key = attentionKey(model, task, alpha, seed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = attention_.find(key);
        if (it != attention_.end())
            return it->second;
    }
    // Profile the bucket's canonical context so every workload mapping
    // to this key gets identical stats (racing threads included).
    model::Workload canonical = task;
    canonical.promptLen = contextBucket(task.promptLen);
    AttentionStats as = profileAttention(model, canonical, alpha, seed);
    std::lock_guard<std::mutex> lock(mutex_);
    return attention_.emplace(key, std::move(as)).first->second;
}

std::size_t
ProfileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return weights_.size() + attention_.size();
}

std::shared_ptr<ProfileCache>
makeProfileCache()
{
    return std::make_shared<ProfileCache>();
}

} // namespace mcbp::accel
