#include "accel/mcbp_accelerator.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "sim/hbm.hpp"
#include "sim/pe_cluster.hpp"
#include "sim/pipeline.hpp"

namespace mcbp::accel {

namespace {

/** Bit-serial adds per dense MAC for INT8 activations (attention formal
 *  compute on KV tensors, whose bit sparsity is milder than weights'). */
constexpr double kAttnAddsPerMac = 3.15; // 7 planes x (1 - 0.55).

} // namespace

McbpAccelerator::McbpAccelerator(sim::McbpConfig hw, McbpOptions opts,
                                 std::shared_ptr<ProfileCache> profiles)
    : hw_(hw), opts_(opts), profiles_(std::move(profiles))
{
    fatalIf(opts_.processors == 0, "processor count must be positive");
    if (!profiles_)
        profiles_ = makeProfileCache();
}

std::string
McbpAccelerator::name() const
{
    if (!opts_.enableBrcr && !opts_.enableBstc && !opts_.enableBgpp)
        return "Baseline";
    if (!opts_.enableBstc || !opts_.enableBgpp || !opts_.enableBrcr) {
        std::string n = "MCBP[";
        if (opts_.enableBrcr)
            n += "R";
        if (opts_.enableBstc)
            n += "C";
        if (opts_.enableBgpp)
            n += "P";
        return n + "]";
    }
    return opts_.alpha <= 0.55 ? "MCBP(A)" : "MCBP(S)";
}

const WeightStats &
McbpAccelerator::weightStats(const model::LlmConfig &model) const
{
    return profiles_->weights(model, opts_.bitWidth, opts_.seed);
}

const AttentionStats &
McbpAccelerator::attentionStats(const model::LlmConfig &model,
                                const model::Workload &task) const
{
    return profiles_->attention(model, task, opts_.alpha, opts_.seed);
}

PhaseMetrics
McbpAccelerator::simulatePhase(const PhasePlan &plan,
                               const model::LlmConfig &m,
                               const WeightStats &ws,
                               const AttentionStats &as) const
{
    const double procs = static_cast<double>(opts_.processors);
    const double layers = static_cast<double>(m.layers);
    const double hidden = static_cast<double>(m.hidden);

    sim::PeClusterModel fabric(hw_);
    sim::Hbm hbm(hw_);
    sim::EnergyModel energy;

    // ---- Linear (QKV / O / FFN) portion, per layer per step -------------
    const double lin_macs = static_cast<double>(m.paramsPerLayer()) *
                            plan.queries * plan.batch / procs;
    // Without BRCR the fabric degrades to sparsity-aware bit-serial
    // computing (zero bits skipped, no cross-vector merging) — the
    // paper's ablation baseline.
    const double adds_per_mac =
        opts_.enableBrcr ? ws.brcrAddsPerMac : ws.bscAddsPerMac;
    const double lin_adds = lin_macs * adds_per_mac;

    sim::BrcrWork lin_work;
    if (opts_.enableBrcr) {
        lin_work.mergeAdds = lin_adds * (1.0 - ws.reconFraction);
        lin_work.reconAdds = lin_adds * ws.reconFraction;
        // CAM searches amortize over the activation tile columns.
        const double amortize = std::max(
            1.0, std::min(plan.queries * plan.batch,
                          static_cast<double>(hw_.tileN)));
        lin_work.camSearches = ws.camSearchesPerMac * lin_macs / amortize;
        lin_work.camLoads = lin_macs / amortize;
    } else {
        lin_work.mergeAdds = lin_adds;
    }
    const double lin_compute_cycles = fabric.brcrCycles(lin_work);

    // Weight traffic: once per layer if resident (prefill), every step
    // otherwise (decode).
    const double weight_cr =
        opts_.enableBstc ? ws.bstcCompressionRatio
                         : std::max(1.0, ws.valueCompressionRatio);
    const double weight_bytes_raw =
        static_cast<double>(m.paramsPerLayer()) / procs;
    const double weight_bytes = weight_bytes_raw / weight_cr;
    const double weight_load_cycles =
        hbm.read(static_cast<std::uint64_t>(weight_bytes), 0.95).cycles;

    // Decompression throughput: BSTC's two-state decoder retires one
    // symbol per lane-cycle (1-bit CMP + SIPO, Fig 15b). The value-level
    // Huffman baseline needs a tree-walk per variable-length symbol —
    // about half the symbol rate within the same decoder area — and one
    // symbol per weight value.
    double decode_cycles = 0.0;
    if (opts_.enableBstc) {
        decode_cycles = fabric.codecCycles(
            {ws.bstcSymbolsPerByte * weight_bytes_raw});
    } else {
        decode_cycles = fabric.codecCycles({weight_bytes_raw * 2.0});
    }

    // Activation traffic per layer per step.
    const double act_bytes = (2.0 * hidden + static_cast<double>(m.ffn)) *
                             plan.queries * plan.batch / procs;
    const double act_cycles =
        static_cast<double>(act_bytes) / hbm.bytesPerCycle();

    // ---- Attention portion ----------------------------------------------
    // Prediction scans all (query, key) pairs at reduced precision.
    const double pair_elems =
        plan.queries * plan.context * hidden * plan.batch / procs;
    const double pred_bits_per_elem = opts_.enableBgpp
                                          ? as.bgppPredBitsPerElem
                                          : as.valuePredBitsPerElem;
    const double selected = opts_.enableBgpp ? as.bgppSelectedFraction
                                             : as.topkFraction;

    // KV residency: prefill tiles K/V through the token SRAM (re-reads
    // scale with query tiling); decode streams the cache per token.
    const double kv_sweeps = kvSweeps(hw_, plan, hidden);
    const double pred_bytes = plan.context * hidden *
                              (pred_bits_per_elem / 8.0) * kv_sweeps *
                              (plan.kvOnChipTiling ? 1.0 : plan.batch) / procs;
    const double pred_bit_macs =
        opts_.enableBgpp ? pair_elems * as.bgppBitMacsPerElem
                         : pair_elems; // 4-bit estimate ~ 1 op/elem.
    const double pred_compute_cycles =
        opts_.enableBgpp
            ? fabric.bgppCycles({pred_bit_macs, plan.queries * plan.batch *
                                                    plan.context / procs})
            : fabric.denseMacCycles(pair_elems / 2.0);
    const double pred_load_cycles =
        static_cast<double>(pred_bytes) / hbm.bytesPerCycle();
    const double pred_cycles =
        std::max(pred_compute_cycles, pred_load_cycles);

    // Formal sparse attention over the selected keys.
    const double attn_macs =
        2.0 * plan.queries * plan.context * hidden * plan.batch * selected /
        procs;
    const double attn_adds = attn_macs * kAttnAddsPerMac;
    const double attn_cycles = fabric.brcrCycles({attn_adds, 0, 0, 0});
    const double kv_bytes = 2.0 * plan.context * hidden * selected *
                                kv_sweeps *
                                (plan.kvOnChipTiling ? 1.0 : plan.batch) /
                                procs +
                            2.0 * hidden * plan.queries * plan.batch / procs;
    const double kv_cycles =
        hbm.read(static_cast<std::uint64_t>(kv_bytes), 0.5).cycles;

    // SFU: softmax over selected scores + norms/activation functions.
    const double sfu_ops = plan.queries * plan.context * selected * plan.batch *
                               2.0 / procs +
                           6.0 * plan.queries * plan.batch * hidden / procs;
    const double sfu_cycles = sfu_ops / 64.0; // 64-lane FP16 SFU.

    // ---- Compose the layer ----------------------------------------------
    sim::StageCycles stages;
    stages.weightLoad = plan.weightResident
                            ? weight_load_cycles / std::max(1.0, plan.steps)
                            : weight_load_cycles;
    stages.weightDecode = plan.weightResident
                              ? decode_cycles / std::max(1.0, plan.steps)
                              : decode_cycles;
    stages.linearCompute = lin_compute_cycles;
    stages.prediction = pred_cycles;
    stages.kvLoad = kv_cycles;
    stages.attention = attn_cycles;
    stages.sfu = sfu_cycles;
    stages.actLoad = act_cycles;
    const sim::LayerLatency lat = sim::composeLayer(stages, hw_);

    PhaseMetrics out;
    out.cycles = lat.totalCycles * layers * plan.steps;
    out.denseMacs = (lin_macs + 2.0 * plan.queries * plan.context * hidden *
                                    plan.batch / procs) *
                    layers * plan.steps * procs;
    out.executedAdds = (lin_adds + attn_adds + pred_bit_macs) * layers *
                       plan.steps * procs;

    // Latency attribution (Fig 1a / Fig 19 style): the linear segment is
    // charged to whichever pipeline stage bounds it. HBM load and BSTC
    // decode are both weight-path stages (delivering weights to the
    // PEs); their cost is per weight stream, not per batched token —
    // the serving engine relies on this split to amortize them.
    const double weight_path =
        std::max(stages.weightLoad, stages.weightDecode);
    if (weight_path >= stages.linearCompute &&
        weight_path >= stages.actLoad) {
        out.weightLoadCycles = lat.linearPart * layers * plan.steps;
        out.gemmCycles = 0.0;
    } else {
        out.gemmCycles = lat.linearPart * layers * plan.steps;
        out.weightLoadCycles = 0.0;
    }
    out.kvLoadCycles = lat.attentionPart * layers * plan.steps;
    out.otherCycles = lat.exposedSfu * layers * plan.steps;
    out.weightStreamCycles =
        std::max(stages.weightLoad, stages.weightDecode) * layers *
        plan.steps;
    out.linearWorkCycles =
        std::max(stages.linearCompute, stages.actLoad) * layers *
        plan.steps;

    // Traffic (whole phase, per processor).
    const double weight_traffic =
        weight_bytes * layers * (plan.weightResident ? 1.0 : plan.steps);
    out.traffic.weightBytes = weight_traffic;
    out.traffic.predictionBytes = pred_bytes * layers * plan.steps;
    out.traffic.kvBytes = kv_bytes * layers * plan.steps;
    out.traffic.actBytes = act_bytes * layers * plan.steps;

    // Energy.
    const double steps_l = layers * plan.steps;
    sim::EnergyBreakdown &e = out.energy;
    e.computePj = energy.addsEnergy(static_cast<std::uint64_t>(
                      (lin_adds + attn_adds) * steps_l)) +
                  energy.shiftEnergy(static_cast<std::uint64_t>(
                      lin_adds * 0.15 * steps_l));
    e.camPj = energy.camEnergy(
        static_cast<std::uint64_t>(lin_work.camSearches * steps_l),
        static_cast<std::uint64_t>(lin_work.camLoads * steps_l));
    const double decode_symbols =
        opts_.enableBstc ? ws.bstcSymbolsPerByte * weight_bytes_raw
                         : weight_bytes_raw;
    e.codecPj = energy.codecEnergy(
        static_cast<std::uint64_t>(decode_symbols * steps_l *
                                   (plan.weightResident ? 1.0 / plan.steps
                                                      : 1.0)));
    // BGPP spends 1-bit AND/adder-tree ops; the value-level baseline
    // spends a 4-bit x 8-bit MAC per key element.
    e.bgppPj = opts_.enableBgpp
                   ? energy.bgppEnergy(static_cast<std::uint64_t>(
                         pred_bit_macs * steps_l))
                   : energy.int4MacEnergy(static_cast<std::uint64_t>(
                         pred_bit_macs * steps_l));
    e.dramPj = energy.dramEnergy(static_cast<std::uint64_t>(
        weight_traffic + out.traffic.predictionBytes +
        out.traffic.kvBytes + out.traffic.actBytes));
    // SRAM traffic: decompressed weights and activation/KV staging in
    // the large arrays, plus the per-addition operand reads the AMUs
    // issue against the banked activation buffers.
    e.sramPj = energy.sramEnergy(
                   static_cast<std::uint64_t>(
                       (weight_bytes_raw *
                            (plan.weightResident ? 1.0 : plan.steps) * layers +
                        2.0 * (out.traffic.actBytes +
                               out.traffic.kvBytes))),
                   true) +
               energy.operandEnergy(
                   static_cast<std::uint64_t>(lin_adds * steps_l));
    e.sfuPj = energy.sfuEnergy(
        static_cast<std::uint64_t>(sfu_ops * steps_l));
    // Bit reordering only appears when the storage format is value-level
    // (BSTC off): every *decompressed* weight bit is staged through the
    // reorder buffer before it can feed the bit-serial PEs.
    if (!opts_.enableBstc) {
        const double raw_traffic =
            weight_bytes_raw * layers *
            (plan.weightResident ? 1.0 : plan.steps);
        e.bitReorderPj = energy.bitReorderEnergy(
            static_cast<std::uint64_t>(raw_traffic * 8.0));
    }
    return out;
}

ExecutionPlan
McbpAccelerator::plan(const model::LlmConfig &model,
                      const model::Workload &task) const
{
    const WeightStats &ws = weightStats(model);
    const AttentionStats &as = attentionStats(model, task);
    return composePlan(name(), model, task, hw_.clockGhz,
                       opts_.processors, [&](const PhasePlan &p) {
                           return simulatePhase(p, model, ws, as);
                       });
}

RunMetrics
McbpAccelerator::run(const model::LlmConfig &model,
                     const model::Workload &task) const
{
    return plan(model, task).fold();
}

McbpAccelerator
makeMcbpStandard(std::size_t processors)
{
    McbpOptions o;
    o.alpha = 0.6;
    o.processors = processors;
    return McbpAccelerator(sim::defaultConfig(), o);
}

McbpAccelerator
makeMcbpAggressive(std::size_t processors)
{
    McbpOptions o;
    o.alpha = 0.5;
    o.processors = processors;
    return McbpAccelerator(sim::defaultConfig(), o);
}

McbpAccelerator
makeMcbpBaseline(std::size_t processors)
{
    McbpOptions o;
    o.enableBrcr = false;
    o.enableBstc = false;
    o.enableBgpp = false;
    o.processors = processors;
    return McbpAccelerator(sim::defaultConfig(), o);
}

} // namespace mcbp::accel
