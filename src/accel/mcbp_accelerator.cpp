#include "accel/mcbp_accelerator.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "sim/hbm.hpp"
#include "sim/pe_cluster.hpp"
#include "sim/pipeline.hpp"

namespace mcbp::accel {

namespace {

/** Bit-serial adds per dense MAC for INT8 activations (attention formal
 *  compute on KV tensors, whose bit sparsity is milder than weights'). */
constexpr double kAttnAddsPerMac = 3.15; // 7 planes x (1 - 0.55).

} // namespace

struct McbpAccelerator::PhaseInput
{
    const model::LlmConfig *model = nullptr;
    const WeightStats *ws = nullptr;
    const AttentionStats *as = nullptr;
    double batch = 1.0;
    double queries = 0.0;   ///< Tokens producing queries this phase.
    double context = 0.0;   ///< Average attention context length.
    double steps = 1.0;     ///< Phase repetitions (decode tokens).
    bool weightResident = false; ///< Prefill reuses weights across tokens.
    bool kvOnChipTiling = false; ///< Prefill streams KV via SRAM tiles.
};

McbpAccelerator::McbpAccelerator(sim::McbpConfig hw, McbpOptions opts)
    : hw_(hw), opts_(opts)
{
    fatalIf(opts_.processors == 0, "processor count must be positive");
}

std::string
McbpAccelerator::name() const
{
    if (!opts_.enableBrcr && !opts_.enableBstc && !opts_.enableBgpp)
        return "Baseline";
    if (!opts_.enableBstc || !opts_.enableBgpp || !opts_.enableBrcr) {
        std::string n = "MCBP[";
        if (opts_.enableBrcr)
            n += "R";
        if (opts_.enableBstc)
            n += "C";
        if (opts_.enableBgpp)
            n += "P";
        return n + "]";
    }
    return opts_.alpha <= 0.55 ? "MCBP(A)" : "MCBP(S)";
}

const WeightStats &
McbpAccelerator::weightStats(const model::LlmConfig &model) const
{
    auto it = weightCache_.find(model.name);
    if (it == weightCache_.end()) {
        it = weightCache_
                 .emplace(model.name,
                          profileWeights(model, opts_.bitWidth, opts_.seed))
                 .first;
    }
    return it->second;
}

const AttentionStats &
McbpAccelerator::attentionStats(const model::LlmConfig &model,
                                const model::Workload &task) const
{
    const std::string key = model.name + "/" + task.name + "/" +
                            std::to_string(opts_.alpha);
    auto it = attnCache_.find(key);
    if (it == attnCache_.end()) {
        it = attnCache_
                 .emplace(key, profileAttention(model, task, opts_.alpha,
                                                opts_.seed))
                 .first;
    }
    return it->second;
}

PhaseMetrics
McbpAccelerator::simulatePhase(const PhaseInput &in) const
{
    const model::LlmConfig &m = *in.model;
    const WeightStats &ws = *in.ws;
    const AttentionStats &as = *in.as;
    const double procs = static_cast<double>(opts_.processors);
    const double layers = static_cast<double>(m.layers);
    const double hidden = static_cast<double>(m.hidden);

    sim::PeClusterModel fabric(hw_);
    sim::Hbm hbm(hw_);
    sim::EnergyModel energy;

    // ---- Linear (QKV / O / FFN) portion, per layer per step -------------
    const double lin_macs = static_cast<double>(m.paramsPerLayer()) *
                            in.queries * in.batch / procs;
    // Without BRCR the fabric degrades to sparsity-aware bit-serial
    // computing (zero bits skipped, no cross-vector merging) — the
    // paper's ablation baseline.
    const double adds_per_mac =
        opts_.enableBrcr ? ws.brcrAddsPerMac : ws.bscAddsPerMac;
    const double lin_adds = lin_macs * adds_per_mac;

    sim::BrcrWork lin_work;
    if (opts_.enableBrcr) {
        lin_work.mergeAdds = lin_adds * (1.0 - ws.reconFraction);
        lin_work.reconAdds = lin_adds * ws.reconFraction;
        // CAM searches amortize over the activation tile columns.
        const double amortize = std::max(
            1.0, std::min(in.queries * in.batch,
                          static_cast<double>(hw_.tileN)));
        lin_work.camSearches = ws.camSearchesPerMac * lin_macs / amortize;
        lin_work.camLoads = lin_macs / amortize;
    } else {
        lin_work.mergeAdds = lin_adds;
    }
    const double lin_compute_cycles = fabric.brcrCycles(lin_work);

    // Weight traffic: once per layer if resident (prefill), every step
    // otherwise (decode).
    const double weight_cr =
        opts_.enableBstc ? ws.bstcCompressionRatio
                         : std::max(1.0, ws.valueCompressionRatio);
    const double weight_bytes_raw =
        static_cast<double>(m.paramsPerLayer()) / procs;
    const double weight_bytes = weight_bytes_raw / weight_cr;
    const double weight_load_cycles =
        hbm.read(static_cast<std::uint64_t>(weight_bytes), 0.95).cycles;

    // Decompression throughput: BSTC's two-state decoder retires one
    // symbol per lane-cycle (1-bit CMP + SIPO, Fig 15b). The value-level
    // Huffman baseline needs a tree-walk per variable-length symbol —
    // about half the symbol rate within the same decoder area — and one
    // symbol per weight value.
    double decode_cycles = 0.0;
    if (opts_.enableBstc) {
        decode_cycles = fabric.codecCycles(
            {ws.bstcSymbolsPerByte * weight_bytes_raw});
    } else {
        decode_cycles = fabric.codecCycles({weight_bytes_raw * 2.0});
    }

    // Activation traffic per layer per step.
    const double act_bytes = (2.0 * hidden + static_cast<double>(m.ffn)) *
                             in.queries * in.batch / procs;
    const double act_cycles =
        static_cast<double>(act_bytes) / hbm.bytesPerCycle();

    // ---- Attention portion ----------------------------------------------
    // Prediction scans all (query, key) pairs at reduced precision.
    const double pair_elems =
        in.queries * in.context * hidden * in.batch / procs;
    const double pred_bits_per_elem = opts_.enableBgpp
                                          ? as.bgppPredBitsPerElem
                                          : as.valuePredBitsPerElem;
    const double selected = opts_.enableBgpp ? as.bgppSelectedFraction
                                             : as.topkFraction;

    // KV residency: prefill tiles K/V through the token SRAM (re-reads
    // scale with query tiling); decode streams the cache per token.
    double kv_sweeps = 1.0;
    if (in.kvOnChipTiling) {
        const double q_tile_rows = std::max(
            64.0, static_cast<double>(hw_.tokenSramKb) * 1024.0 /
                      (4.0 * hidden));
        kv_sweeps = std::max(1.0, in.queries * in.batch / q_tile_rows);
    }
    const double pred_bytes = in.context * hidden *
                              (pred_bits_per_elem / 8.0) * kv_sweeps *
                              (in.kvOnChipTiling ? 1.0 : in.batch) / procs;
    const double pred_bit_macs =
        opts_.enableBgpp ? pair_elems * as.bgppBitMacsPerElem
                         : pair_elems; // 4-bit estimate ~ 1 op/elem.
    const double pred_compute_cycles =
        opts_.enableBgpp
            ? fabric.bgppCycles({pred_bit_macs, in.queries * in.batch *
                                                    in.context / procs})
            : fabric.denseMacCycles(pair_elems / 2.0);
    const double pred_load_cycles =
        static_cast<double>(pred_bytes) / hbm.bytesPerCycle();
    const double pred_cycles =
        std::max(pred_compute_cycles, pred_load_cycles);

    // Formal sparse attention over the selected keys.
    const double attn_macs =
        2.0 * in.queries * in.context * hidden * in.batch * selected /
        procs;
    const double attn_adds = attn_macs * kAttnAddsPerMac;
    const double attn_cycles = fabric.brcrCycles({attn_adds, 0, 0, 0});
    const double kv_bytes = 2.0 * in.context * hidden * selected *
                                kv_sweeps *
                                (in.kvOnChipTiling ? 1.0 : in.batch) /
                                procs +
                            2.0 * hidden * in.queries * in.batch / procs;
    const double kv_cycles =
        hbm.read(static_cast<std::uint64_t>(kv_bytes), 0.5).cycles;

    // SFU: softmax over selected scores + norms/activation functions.
    const double sfu_ops = in.queries * in.context * selected * in.batch *
                               2.0 / procs +
                           6.0 * in.queries * in.batch * hidden / procs;
    const double sfu_cycles = sfu_ops / 64.0; // 64-lane FP16 SFU.

    // ---- Compose the layer ----------------------------------------------
    sim::StageCycles stages;
    stages.weightLoad = in.weightResident
                            ? weight_load_cycles / std::max(1.0, in.steps)
                            : weight_load_cycles;
    stages.weightDecode = in.weightResident
                              ? decode_cycles / std::max(1.0, in.steps)
                              : decode_cycles;
    stages.linearCompute = lin_compute_cycles;
    stages.prediction = pred_cycles;
    stages.kvLoad = kv_cycles;
    stages.attention = attn_cycles;
    stages.sfu = sfu_cycles;
    stages.actLoad = act_cycles;
    const sim::LayerLatency lat = sim::composeLayer(stages);

    PhaseMetrics out;
    out.cycles = lat.totalCycles * layers * in.steps;
    out.denseMacs = (lin_macs + 2.0 * in.queries * in.context * hidden *
                                    in.batch / procs) *
                    layers * in.steps * procs;
    out.executedAdds = (lin_adds + attn_adds + pred_bit_macs) * layers *
                       in.steps * procs;

    // Latency attribution (Fig 1a / Fig 19 style): the linear segment is
    // charged to whichever pipeline stage bounds it.
    if (stages.weightLoad >= stages.linearCompute &&
        stages.weightLoad >= stages.weightDecode &&
        stages.weightLoad >= stages.actLoad) {
        out.weightLoadCycles = lat.linearPart * layers * in.steps;
        out.gemmCycles = 0.0;
    } else {
        out.gemmCycles = lat.linearPart * layers * in.steps;
        out.weightLoadCycles = 0.0;
    }
    out.kvLoadCycles = lat.attentionPart * layers * in.steps;
    out.otherCycles = lat.exposedSfu * layers * in.steps;

    // Traffic (whole phase, per processor).
    const double weight_traffic =
        weight_bytes * layers * (in.weightResident ? 1.0 : in.steps);
    out.traffic.weightBytes = weight_traffic;
    out.traffic.predictionBytes = pred_bytes * layers * in.steps;
    out.traffic.kvBytes = kv_bytes * layers * in.steps;
    out.traffic.actBytes = act_bytes * layers * in.steps;

    // Energy.
    const double steps_l = layers * in.steps;
    sim::EnergyBreakdown &e = out.energy;
    e.computePj = energy.addsEnergy(static_cast<std::uint64_t>(
                      (lin_adds + attn_adds) * steps_l)) +
                  energy.shiftEnergy(static_cast<std::uint64_t>(
                      lin_adds * 0.15 * steps_l));
    e.camPj = energy.camEnergy(
        static_cast<std::uint64_t>(lin_work.camSearches * steps_l),
        static_cast<std::uint64_t>(lin_work.camLoads * steps_l));
    const double decode_symbols =
        opts_.enableBstc ? ws.bstcSymbolsPerByte * weight_bytes_raw
                         : weight_bytes_raw;
    e.codecPj = energy.codecEnergy(
        static_cast<std::uint64_t>(decode_symbols * steps_l *
                                   (in.weightResident ? 1.0 / in.steps
                                                      : 1.0)));
    // BGPP spends 1-bit AND/adder-tree ops; the value-level baseline
    // spends a 4-bit x 8-bit MAC per key element.
    e.bgppPj = opts_.enableBgpp
                   ? energy.bgppEnergy(static_cast<std::uint64_t>(
                         pred_bit_macs * steps_l))
                   : energy.int4MacEnergy(static_cast<std::uint64_t>(
                         pred_bit_macs * steps_l));
    e.dramPj = energy.dramEnergy(static_cast<std::uint64_t>(
        weight_traffic + out.traffic.predictionBytes +
        out.traffic.kvBytes + out.traffic.actBytes));
    // SRAM traffic: decompressed weights and activation/KV staging in
    // the large arrays, plus the per-addition operand reads the AMUs
    // issue against the banked activation buffers.
    e.sramPj = energy.sramEnergy(
                   static_cast<std::uint64_t>(
                       (weight_bytes_raw *
                            (in.weightResident ? 1.0 : in.steps) * layers +
                        2.0 * (out.traffic.actBytes +
                               out.traffic.kvBytes))),
                   true) +
               energy.operandEnergy(
                   static_cast<std::uint64_t>(lin_adds * steps_l));
    e.sfuPj = energy.sfuEnergy(
        static_cast<std::uint64_t>(sfu_ops * steps_l));
    // Bit reordering only appears when the storage format is value-level
    // (BSTC off): every *decompressed* weight bit is staged through the
    // reorder buffer before it can feed the bit-serial PEs.
    if (!opts_.enableBstc) {
        const double raw_traffic =
            weight_bytes_raw * layers *
            (in.weightResident ? 1.0 : in.steps);
        e.bitReorderPj = energy.bitReorderEnergy(
            static_cast<std::uint64_t>(raw_traffic * 8.0));
    }
    return out;
}

RunMetrics
McbpAccelerator::run(const model::LlmConfig &model,
                     const model::Workload &task) const
{
    const WeightStats &ws = weightStats(model);
    const AttentionStats &as = attentionStats(model, task);

    RunMetrics rm;
    rm.accelerator = name();
    rm.modelName = model.name;
    rm.taskName = task.name;
    rm.clockGhz = hw_.clockGhz;
    rm.processors = opts_.processors;

    // Prefill: all prompt tokens at once, weights resident per layer,
    // KV tiled through SRAM. Average causal context = S/2.
    PhaseInput pre;
    pre.model = &model;
    pre.ws = &ws;
    pre.as = &as;
    pre.batch = static_cast<double>(task.batch);
    pre.queries = static_cast<double>(task.promptLen);
    pre.context = static_cast<double>(task.promptLen) / 2.0;
    pre.steps = 1.0;
    pre.weightResident = true;
    pre.kvOnChipTiling = true;
    rm.prefill = simulatePhase(pre);

    // Decode: one token per step, weights re-fetched every token,
    // KV cache streamed from HBM. Average context = S + D/2.
    if (task.decodeLen > 0) {
        PhaseInput dec;
        dec.model = &model;
        dec.ws = &ws;
        dec.as = &as;
        dec.batch = static_cast<double>(task.batch);
        dec.queries = 1.0;
        dec.context = static_cast<double>(task.promptLen) +
                      static_cast<double>(task.decodeLen) / 2.0;
        dec.steps = static_cast<double>(task.decodeLen);
        dec.weightResident = false;
        dec.kvOnChipTiling = false;
        rm.decode = simulatePhase(dec);
    }
    return rm;
}

McbpAccelerator
makeMcbpStandard(std::size_t processors)
{
    McbpOptions o;
    o.alpha = 0.6;
    o.processors = processors;
    return McbpAccelerator(sim::defaultConfig(), o);
}

McbpAccelerator
makeMcbpAggressive(std::size_t processors)
{
    McbpOptions o;
    o.alpha = 0.5;
    o.processors = processors;
    return McbpAccelerator(sim::defaultConfig(), o);
}

McbpAccelerator
makeMcbpBaseline(std::size_t processors)
{
    McbpOptions o;
    o.enableBrcr = false;
    o.enableBstc = false;
    o.enableBgpp = false;
    o.processors = processors;
    return McbpAccelerator(sim::defaultConfig(), o);
}

} // namespace mcbp::accel
