/**
 * @file
 * End-to-end MCBP accelerator model: combines the measured BRCR/BSTC/BGPP
 * profiles with the cycle/energy/area models of src/sim under the Fig 10
 * pipelined workflow, producing RunMetrics for any (model, task) pair.
 *
 * The three techniques are individually switchable (the Fig 19/21/24
 * ablations); with all three off the model degrades to the paper's
 * baseline: vanilla bit-serial compute + value-level compression +
 * value-level top-k prediction.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "accel/phase_plan.hpp"
#include "accel/profile_cache.hpp"
#include "accel/profiles.hpp"
#include "accel/report.hpp"
#include "model/llm_config.hpp"
#include "model/workload.hpp"
#include "sim/mcbp_config.hpp"

namespace mcbp::accel {

/** MCBP run options (technique toggles + operating point). */
struct McbpOptions
{
    bool enableBrcr = true;
    bool enableBstc = true;
    bool enableBgpp = true;
    /** alpha_r: 0.6 = standard (0% loss), 0.5 = aggressive (1% loss). */
    double alpha = 0.6;
    /** Number of ganged processors (148 for the A100 comparison). */
    std::size_t processors = 1;
    std::uint64_t seed = 1;
    quant::BitWidth bitWidth = quant::BitWidth::Int8;
};

/** The MCBP accelerator. */
class McbpAccelerator
{
  public:
    /**
     * @param profiles shared profile cache; nullptr allocates a private
     * one. Copies of this accelerator share the same (thread-safe)
     * cache, as do all accelerators built by one engine::Registry.
     */
    explicit McbpAccelerator(
        sim::McbpConfig hw = sim::defaultConfig(), McbpOptions opts = {},
        std::shared_ptr<ProfileCache> profiles = nullptr);

    const sim::McbpConfig &hardware() const { return hw_; }
    const McbpOptions &options() const { return opts_; }

    /** Display name, e.g. "MCBP", "MCBP(A)", "Baseline". */
    std::string name() const;

    /**
     * Plan one (model, task) inference: phase totals plus the layer
     * decomposition (execution_plan.hpp). run() folds this plan.
     */
    ExecutionPlan plan(const model::LlmConfig &model,
                       const model::Workload &task) const;

    /** Simulate one (model, task) inference run (= plan().fold()). */
    RunMetrics run(const model::LlmConfig &model,
                   const model::Workload &task) const;

    /** The weight profile used for @p model (cached; for benches). */
    const WeightStats &weightStats(const model::LlmConfig &model) const;

    /** The attention profile used for (@p model, @p task). */
    const AttentionStats &
    attentionStats(const model::LlmConfig &model,
                   const model::Workload &task) const;

    /** The (thread-safe) profile cache backing this accelerator. */
    const std::shared_ptr<ProfileCache> &profileCache() const
    {
        return profiles_;
    }

  private:
    PhaseMetrics simulatePhase(const PhasePlan &plan,
                               const model::LlmConfig &model,
                               const WeightStats &ws,
                               const AttentionStats &as) const;

    sim::McbpConfig hw_;
    McbpOptions opts_;
    std::shared_ptr<ProfileCache> profiles_;
};

/** Paper's "standard" configuration (alpha 0.6, all techniques). */
McbpAccelerator makeMcbpStandard(std::size_t processors = 1);

/** Paper's "aggressive" configuration (alpha 0.5). */
McbpAccelerator makeMcbpAggressive(std::size_t processors = 1);

/** The ablation baseline (all techniques off). */
McbpAccelerator makeMcbpBaseline(std::size_t processors = 1);

} // namespace mcbp::accel
