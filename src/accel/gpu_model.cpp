#include "accel/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace mcbp::accel {

GpuA100Model::GpuA100Model(GpuParams params, GpuSoftwareOptions sw)
    : p_(params), sw_(sw)
{
    fatalIf(p_.int8Tops <= 0.0 || p_.hbmBytesPerSec <= 0.0,
            "invalid GPU parameters");
}

std::string
GpuA100Model::name() const
{
    if (!sw_.brcr && !sw_.bstc && !sw_.bgpp)
        return "A100";
    std::string n = "A100+sw[";
    if (sw_.brcr)
        n += "R";
    if (sw_.bstc)
        n += "C";
    if (sw_.bgpp)
        n += "P";
    return n + "]";
}

RunMetrics
GpuA100Model::run(const model::LlmConfig &m, const model::Workload &task,
                  const WeightStats &ws, const AttentionStats &as) const
{
    RunMetrics rm;
    rm.accelerator = name();
    rm.modelName = m.name;
    rm.taskName = task.name;
    rm.clockGhz = p_.clockGhz;
    rm.processors = 1;

    const double b = static_cast<double>(task.batch);
    const double s = static_cast<double>(task.promptLen);
    const double d_tokens = static_cast<double>(task.decodeLen);
    const double hidden = static_cast<double>(m.hidden);
    const double layers = static_cast<double>(m.layers);

    const double ops_per_sec = p_.int8Tops * 1e12 * p_.computeUtilization;
    const double bw = p_.hbmBytesPerSec * p_.decodeBwUtilization;

    // Software-algorithm factors (logical savings x SIMT inefficiency).
    double compute_factor = 1.0;
    if (sw_.brcr) {
        const double logical = ws.brcrAddsPerMac / 7.0; // vs bit-serial ~ MAC
        compute_factor = std::max(
            logical / p_.bitMergeEfficiency * 7.0 / 7.0, 1.0 / 1.25);
        // Net effect lands near the paper's ~1.2x (merging overhead
        // exposes gather latency on SIMT lanes).
        compute_factor = std::max(compute_factor, 0.78);
    }
    double weight_factor = 1.0;
    if (sw_.bstc) {
        const double logical = 1.0 / ws.bstcCompressionRatio;
        // Decode kernels recover only part of the bandwidth saving.
        weight_factor =
            logical + (1.0 - logical) * (1.0 - p_.bitDecodeEfficiency);
    }
    double kv_factor = 1.0;
    double sel = 1.0;
    if (sw_.bgpp) {
        const double pred = as.bgppPredBitsPerElem / 8.0;
        sel = as.bgppSelectedFraction;
        const double logical = pred + sel;
        kv_factor = std::min(
            1.0, logical + (1.0 - logical) * (1.0 - p_.progPredEfficiency));
    }

    // ---- Prefill: compute-bound large GEMMs -----------------------------
    {
        PhaseMetrics &ph = rm.prefill;
        const double lin_macs =
            static_cast<double>(m.paramsPerLayer()) * s * b * layers;
        const double attn_macs = s * (s / 2.0) * hidden * 2.0 * b * layers;
        ph.denseMacs = lin_macs + attn_macs;
        const double exec_ops =
            2.0 * (lin_macs * compute_factor + attn_macs * (sw_.bgpp ? sel : 1.0));
        const double compute_sec = exec_ops / ops_per_sec;
        const double bytes = static_cast<double>(m.weightBytes()) *
                                 weight_factor +
                             (2.0 * hidden + static_cast<double>(m.ffn)) *
                                 s * b * layers;
        const double mem_sec = bytes / bw;
        // Non-GEMM kernels (softmax, norms, launches) add a fixed slice.
        const double other_sec = std::max(compute_sec, mem_sec) * 0.08;
        const double sec = std::max(compute_sec, mem_sec) + other_sec;
        ph.cycles = sec * p_.clockGhz * 1e9;
        ph.executedAdds = exec_ops;
        ph.traffic.weightBytes =
            static_cast<double>(m.weightBytes()) * weight_factor;
        ph.traffic.actBytes = bytes - ph.traffic.weightBytes;
        ph.gemmCycles = compute_sec * p_.clockGhz * 1e9;
        ph.otherCycles = other_sec * p_.clockGhz * 1e9;
        ph.weightLoadCycles =
            std::max(0.0, ph.cycles - ph.gemmCycles - ph.otherCycles);
        // The roofline serializes all memory traffic, so the
        // per-request stream is the whole phase minus the (shareable)
        // weight stream — see report.hpp.
        ph.memorySerialized = true;
        ph.weightStreamCycles = ph.traffic.weightBytes / bw *
                                p_.clockGhz * 1e9;
        ph.linearWorkCycles = std::max(
            0.0, ph.cycles - ph.otherCycles - ph.weightStreamCycles);
        ph.energy.computePj = sec * p_.dynamicWatts * 1e12 * 0.6;
        ph.energy.dramPj = sec * p_.dynamicWatts * 1e12 * 0.4;
    }

    // ---- Decode: memory-bound token loop --------------------------------
    if (task.decodeLen > 0) {
        PhaseMetrics &ph = rm.decode;
        const double ctx = s + d_tokens / 2.0;
        const double lin_macs = static_cast<double>(m.paramsPerLayer()) *
                                b * layers * d_tokens;
        const double attn_macs = 2.0 * ctx * hidden * b * layers * d_tokens;
        ph.denseMacs = lin_macs + attn_macs;

        const double weight_bytes = static_cast<double>(m.weightBytes()) *
                                    weight_factor * d_tokens;
        const double kv_bytes =
            2.0 * ctx * hidden * layers * b * d_tokens * kv_factor;
        const double act_bytes =
            (2.0 * hidden + static_cast<double>(m.ffn)) * b * layers *
            d_tokens;
        const double exec_ops =
            2.0 * (lin_macs * compute_factor + attn_macs * (sw_.bgpp ? sel : 1.0));
        const double compute_sec = exec_ops / ops_per_sec;
        const double mem_sec =
            (weight_bytes + kv_bytes + act_bytes) / bw;
        const double other_sec = std::max(compute_sec, mem_sec) * 0.08;
        const double sec = std::max(compute_sec, mem_sec) + other_sec;
        ph.cycles = sec * p_.clockGhz * 1e9;
        ph.executedAdds = exec_ops;
        ph.traffic.weightBytes = weight_bytes;
        ph.traffic.kvBytes = kv_bytes;
        ph.traffic.actBytes = act_bytes;
        const double mem_cycles =
            (ph.cycles - other_sec * p_.clockGhz * 1e9);
        ph.weightLoadCycles =
            weight_bytes / (weight_bytes + kv_bytes + act_bytes) *
            mem_cycles;
        ph.kvLoadCycles =
            kv_bytes / (weight_bytes + kv_bytes + act_bytes) * mem_cycles;
        ph.otherCycles = other_sec * p_.clockGhz * 1e9;
        ph.gemmCycles = std::max(
            0.0, ph.cycles - ph.weightLoadCycles - ph.kvLoadCycles -
                     ph.otherCycles);
        // Serialized memory: per-request stream = phase minus the
        // shareable weight stream (see report.hpp).
        ph.memorySerialized = true;
        ph.weightStreamCycles = weight_bytes / bw * p_.clockGhz * 1e9;
        ph.linearWorkCycles = std::max(
            0.0, ph.cycles - ph.otherCycles - ph.weightStreamCycles);
        ph.energy.computePj = sec * p_.dynamicWatts * 1e12 * 0.35;
        ph.energy.dramPj = sec * p_.dynamicWatts * 1e12 * 0.65;
    }
    return rm;
}

RunMetrics
GpuA100Model::run(const model::LlmConfig &model,
                  const model::Workload &task) const
{
    WeightStats ws = profileWeights(model, quant::BitWidth::Int8, 1);
    AttentionStats as = profileAttention(model, task, 0.6, 1);
    return run(model, task, ws, as);
}

ExecutionPlan
GpuA100Model::plan(const model::LlmConfig &model,
                   const model::Workload &task, const WeightStats &ws,
                   const AttentionStats &as) const
{
    return planFromRun(run(model, task, ws, as), model.layers);
}

} // namespace mcbp::accel
