/**
 * @file
 * Synthetic tensor generators standing in for real LLM checkpoints and
 * traces (DESIGN.md section 1 substitution table).
 *
 * Weights: LLM weight matrices are near-Gaussian with rare large-magnitude
 * outlier channels (the paper leans on this in sections 2.3/3.2 and
 * Fig 25a). We generate Gaussian bulk + a controlled outlier fraction and
 * feed it through the real per-channel quantizer, so bit-plane sparsity
 * emerges from the same mechanism as in the paper rather than being
 * assumed.
 *
 * Attention: key vectors are synthesized so that a Zipf-profiled subset
 * aligns with the query, producing realistic attention concentration
 * (few keys carry most of the softmax mass) — the property both top-k and
 * BGPP exploit.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "quant/quantizer.hpp"

namespace mcbp::model {

/** Parameters of the synthetic weight distribution. */
struct WeightProfile
{
    double sigma = 0.02;         ///< Bulk Gaussian std-dev.
    double outlierFraction = 0.001; ///< Fraction of outlier elements.
    double dynamicRange = 16.0;  ///< Outlier magnitude in sigmas.
};

/** Gaussian-plus-outliers float weight matrix. */
FloatMatrix gaussianWeights(Rng &rng, std::size_t rows, std::size_t cols,
                            const WeightProfile &profile = {});

/** Convenience: synthesize + per-channel INT quantize in one step. */
quant::QuantizedWeight synthesizeQuantizedWeight(
    Rng &rng, std::size_t rows, std::size_t cols, quant::BitWidth bw,
    const WeightProfile &profile = {});

/** Gaussian activation matrix (token embeddings / hidden states). */
FloatMatrix gaussianActivations(Rng &rng, std::size_t rows,
                                std::size_t cols, double sigma = 1.0,
                                double mean = 0.0);

/** A synthetic (query, key-set) pair with controlled attention skew. */
struct AttentionSet
{
    std::vector<std::int8_t> query; ///< INT8 query row (d).
    Int8Matrix keys;                ///< S x d INT8 keys.
    /** Scale converting integer scores to softmax logits. */
    double logitScale = 1.0;
};

/**
 * Synthesize an attention set of @p s keys with head dim @p d.
 * @param concentration fraction of keys receiving most alignment mass
 *        (Workload::attentionConcentration).
 */
AttentionSet synthesizeAttention(Rng &rng, std::size_t s, std::size_t d,
                                 double concentration);

} // namespace mcbp::model
