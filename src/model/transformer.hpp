/**
 * @file
 * Reference transformer decoder layer (FP32 / INT8 / pruned-attention)
 * used for the Table 2 accuracy-proxy experiments.
 *
 * A complete single block: RMSNorm -> multi-head causal attention ->
 * residual -> RMSNorm -> MLP (GELU) -> residual. Three execution modes:
 *
 *  - forwardF32: the FP16/FP32 reference.
 *  - forwardInt8: every GEMM runs through the real per-channel/per-tensor
 *    quantizers and the folded integer GEMM (what MCBP's datapath sees).
 *  - forwardPruned: INT8 plus per-query key pruning via a caller-supplied
 *    selector (BGPP or value top-k), measuring the end-to-end effect of
 *    attention sparsity on the block output.
 *
 * Fidelity between the modes (cosine similarity / relative error on the
 * block output) is the stand-in for task accuracy (DESIGN.md section 1).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "model/synthetic.hpp"
#include "quant/calibration.hpp"

namespace mcbp::model {

/** Weights of one decoder block (FP32 masters). */
struct LayerWeights
{
    std::size_t hidden = 0;
    std::size_t heads = 0;
    FloatMatrix wq, wk, wv, wo; ///< hidden x hidden projections.
    FloatMatrix w1;             ///< ffn x hidden (up).
    FloatMatrix w2;             ///< hidden x ffn (down).
};

/** Create a random decoder block with the given dimensions. */
LayerWeights randomLayer(Rng &rng, std::size_t hidden, std::size_t heads,
                         std::size_t ffn, const WeightProfile &profile = {});

/**
 * Per-query key selector: given the query row (INT8), all keys
 * (S_kv x d INT8) and the scale converting integer scores to softmax
 * logits (q_scale * k_scale / sqrt(d)), return the kept key indices
 * (sorted ascending).
 */
using KeySelector = std::function<std::vector<std::uint32_t>(
    const std::vector<std::int8_t> &, const Int8Matrix &, double)>;

/** One transformer decoder block. */
class TransformerLayer
{
  public:
    explicit TransformerLayer(LayerWeights weights);

    const LayerWeights &weights() const { return w_; }

    /** FP32 reference forward. @p x is S x hidden. Causal attention. */
    FloatMatrix forwardF32(const FloatMatrix &x) const;

    /** INT8-quantized forward (GEMMs through the folded integer path). */
    FloatMatrix forwardInt8(const FloatMatrix &x) const;

    /**
     * INT8 forward with attention-key pruning: @p selector restricts each
     * query's softmax to its selected keys (causality still enforced).
     */
    FloatMatrix forwardPruned(const FloatMatrix &x,
                              const KeySelector &selector) const;

  private:
    FloatMatrix forwardImpl(const FloatMatrix &x, bool quantized,
                            const KeySelector *selector) const;

    LayerWeights w_;
};

/** Block-output fidelity between two execution modes. */
quant::ErrorStats layerFidelity(const FloatMatrix &ref,
                                const FloatMatrix &test);

} // namespace mcbp::model
