/**
 * @file
 * INT8 KV cache with byte accounting (decoding-stage substrate).
 *
 * Stores one layer-head's K and V rows token by token and serves both the
 * full rows (formal compute) and selective reads by key index (post-BGPP
 * sparse attention), tracking the bytes each access pattern touches so
 * the simulator can charge HBM traffic.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"

namespace mcbp::model {

/** Per-head KV cache. */
class KvCache
{
  public:
    explicit KvCache(std::size_t head_dim);

    std::size_t headDim() const { return headDim_; }
    std::size_t length() const { return length_; }

    /** Append one token's key and value rows (each headDim wide). */
    void append(const std::vector<std::int8_t> &k,
                const std::vector<std::int8_t> &v);

    /** All keys as an S x d matrix view copy (prediction input). */
    const Int8Matrix &keys() const { return keys_; }
    const Int8Matrix &values() const { return values_; }

    /** Key row @p idx; counts a full-row read. */
    const std::int8_t *readKey(std::size_t idx) const;
    /** Value row @p idx; counts a full-row read. */
    const std::int8_t *readValue(std::size_t idx) const;

    /** Bytes read through readKey/readValue so far. */
    std::uint64_t bytesRead() const { return bytesRead_; }
    /** Bytes appended so far. */
    std::uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    std::size_t headDim_;
    std::size_t length_ = 0;
    Int8Matrix keys_;
    Int8Matrix values_;
    mutable std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

} // namespace mcbp::model
