/**
 * @file
 * Autoregressive generation fidelity harness.
 *
 * The paper's accuracy claims (Table 2, Fig 24a) hinge on generation
 * tasks being more sensitive to attention pruning than classification:
 * decode errors feed back into later steps. This harness builds a small
 * multi-layer transformer, rolls it out autoregressively (each step
 * appends the last output state as the next input), and compares the
 * FP32 trajectory against an INT8 + pruned-attention trajectory, token
 * by token — quantifying error accumulation that single-block fidelity
 * cannot see.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "model/transformer.hpp"

namespace mcbp::model {

/** Configuration of the rollout experiment. */
struct GenerationConfig
{
    std::size_t layers = 2;
    std::size_t hidden = 64;
    std::size_t heads = 4;
    std::size_t ffn = 128;
    std::size_t promptLen = 16;
    std::size_t decodeLen = 12;
    WeightProfile weights{0.08, 0.001, 16.0};
    std::uint64_t seed = 1;
};

/** Result of comparing a pruned rollout against the FP32 reference. */
struct GenerationResult
{
    /** Cosine similarity of each generated step's state vs reference. */
    std::vector<double> stepCosine;
    /** Mean over steps (the headline fidelity number). */
    double meanCosine = 0.0;
    /** Worst step (error accumulation shows up here). */
    double minCosine = 1.0;
};

/** A small multi-layer decoder-only model for rollout experiments. */
class TinyLlm
{
  public:
    explicit TinyLlm(const GenerationConfig &cfg);

    const GenerationConfig &config() const { return cfg_; }

    /**
     * Roll out @p decode_len steps from a random prompt, executing the
     * full stack per step. @p selector (nullable) enables INT8 +
     * pruned-attention execution; null runs the FP32 reference.
     * @returns the sequence of generated hidden states (decodeLen x H).
     */
    FloatMatrix rollout(const KeySelector *selector) const;

    /** Compare a pruned rollout against the FP32 reference rollout. */
    GenerationResult compareRollout(const KeySelector &selector) const;

  private:
    /** One full-stack forward over the whole current sequence. */
    FloatMatrix forwardStack(const FloatMatrix &x,
                             const KeySelector *selector) const;

    GenerationConfig cfg_;
    std::vector<TransformerLayer> layers_;
    FloatMatrix prompt_;
};

} // namespace mcbp::model
