#include "model/generation.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace mcbp::model {

namespace {

/** Cosine similarity between two equal-length rows. */
double
rowCosine(const float *a, const float *b, std::size_t n)
{
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        dot += static_cast<double>(a[i]) * b[i];
        na += static_cast<double>(a[i]) * a[i];
        nb += static_cast<double>(b[i]) * b[i];
    }
    if (na == 0.0 || nb == 0.0)
        return 1.0;
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

/** L2-normalize a row in place (keeps rollouts bounded). */
void
normalizeRow(float *row, std::size_t n)
{
    double norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        norm2 += static_cast<double>(row[i]) * row[i];
    const double inv =
        norm2 > 0.0 ? std::sqrt(static_cast<double>(n) / norm2) : 1.0;
    for (std::size_t i = 0; i < n; ++i)
        row[i] = static_cast<float>(row[i] * inv);
}

} // namespace

TinyLlm::TinyLlm(const GenerationConfig &cfg) : cfg_(cfg)
{
    fatalIf(cfg_.layers == 0 || cfg_.decodeLen == 0 ||
                cfg_.promptLen == 0,
            "degenerate generation configuration");
    Rng rng(cfg_.seed);
    layers_.reserve(cfg_.layers);
    for (std::size_t l = 0; l < cfg_.layers; ++l) {
        layers_.emplace_back(randomLayer(rng, cfg_.hidden, cfg_.heads,
                                         cfg_.ffn, cfg_.weights));
    }
    prompt_ = gaussianActivations(rng, cfg_.promptLen, cfg_.hidden, 1.0);
}

FloatMatrix
TinyLlm::forwardStack(const FloatMatrix &x,
                      const KeySelector *selector) const
{
    FloatMatrix h = x;
    for (const TransformerLayer &layer : layers_) {
        h = selector ? layer.forwardPruned(h, *selector)
                     : layer.forwardF32(h);
    }
    return h;
}

FloatMatrix
TinyLlm::rollout(const KeySelector *selector) const
{
    FloatMatrix seq = prompt_;
    FloatMatrix generated(cfg_.decodeLen, cfg_.hidden);
    for (std::size_t step = 0; step < cfg_.decodeLen; ++step) {
        FloatMatrix out = forwardStack(seq, selector);
        // The last position's state becomes the next "token".
        FloatMatrix grown(seq.rows() + 1, cfg_.hidden);
        for (std::size_t r = 0; r < seq.rows(); ++r)
            for (std::size_t c = 0; c < cfg_.hidden; ++c)
                grown.at(r, c) = seq.at(r, c);
        for (std::size_t c = 0; c < cfg_.hidden; ++c)
            grown.at(seq.rows(), c) = out.at(seq.rows() - 1, c);
        normalizeRow(grown.rowPtr(seq.rows()), cfg_.hidden);
        for (std::size_t c = 0; c < cfg_.hidden; ++c)
            generated.at(step, c) = grown.at(seq.rows(), c);
        seq = std::move(grown);
    }
    return generated;
}

GenerationResult
TinyLlm::compareRollout(const KeySelector &selector) const
{
    FloatMatrix ref = rollout(nullptr);
    FloatMatrix test = rollout(&selector);
    GenerationResult res;
    res.stepCosine.reserve(cfg_.decodeLen);
    double sum = 0.0;
    for (std::size_t s = 0; s < cfg_.decodeLen; ++s) {
        const double c =
            rowCosine(ref.rowPtr(s), test.rowPtr(s), cfg_.hidden);
        res.stepCosine.push_back(c);
        sum += c;
        res.minCosine = std::min(res.minCosine, c);
    }
    res.meanCosine = sum / static_cast<double>(cfg_.decodeLen);
    return res;
}

} // namespace mcbp::model
