#include "model/workload.hpp"

#include "common/logging.hpp"

namespace mcbp::model {

const std::vector<Workload> &
taskZoo()
{
    // Prompt lengths follow section 5.1; decode lengths follow the
    // stage each task exercises in Figs 19/23 (classification decodes a
    // handful of tokens, generation decodes long sequences).
    static const std::vector<Workload> zoo = {
        {"Cola", 256, 16, 8, TaskKind::Classification, 0.25},
        {"MNLI", 512, 16, 8, TaskKind::Classification, 0.25},
        {"SST2", 256, 16, 8, TaskKind::Classification, 0.25},
        {"Wikitext2", 2048, 16, 8, TaskKind::LanguageModeling, 0.18},
        {"Wikilingua", 2048, 64, 8, TaskKind::LanguageModeling, 0.18},
        {"Winogrande", 256, 8, 8, TaskKind::Reasoning, 0.25},
        {"MMLU", 512, 8, 8, TaskKind::Reasoning, 0.22},
        {"MBPP", 1024, 512, 8, TaskKind::Generation, 0.20},
        {"Dolly", 8192, 48, 8, TaskKind::LongContext, 0.10},
    };
    return zoo;
}

const Workload &
findTask(const std::string &name)
{
    for (const auto &t : taskZoo()) {
        if (t.name == name)
            return t;
    }
    fatal("unknown task: " + name);
}

Workload
withLengths(const Workload &base, std::size_t prompt, std::size_t decode)
{
    Workload w = base;
    w.promptLen = prompt;
    w.decodeLen = decode;
    return w;
}

} // namespace mcbp::model
