/**
 * @file
 * LLM architecture configurations and per-stage operation/traffic
 * accounting for the five models in the paper's evaluation (section 5.1):
 * Llama7B, Llama13B, OPT1B3, Bloom1B7, Qwen7B.
 *
 * The accounting methods return *logical* quantities (MACs, weight bytes,
 * KV bytes) for prefill and decoding; the accelerator models convert them
 * into cycles/energy under each design's optimizations.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcbp::model {

/** Decoder-only transformer architecture description. */
struct LlmConfig
{
    std::string name;
    std::size_t hidden = 0;     ///< H.
    std::size_t layers = 0;     ///< Decoder blocks.
    std::size_t heads = 0;      ///< Attention heads.
    std::size_t ffn = 0;        ///< FFN inner dimension.
    std::size_t ffnMatrices = 2;///< 2 = GELU MLP, 3 = gated (Llama/Qwen).
    /**
     * Weight-distribution dynamic range (channel max / sigma) used by the
     * synthetic generator; larger values mean more outliers, higher bit
     * sparsity and more value zeros. Calibrated per model family so the
     * sparsity figures land near the paper's (Fig 5(d), Fig 8(c)).
     */
    double dynamicRange = 16.0;

    std::size_t headDim() const { return hidden / heads; }

    /** Total weight parameters (attention + FFN), per layer and total. */
    std::uint64_t paramsPerLayer() const;
    std::uint64_t totalParams() const;

    /** MACs for prefilling a prompt of @p s tokens (all layers). */
    std::uint64_t prefillMacs(std::size_t s) const;

    /** MACs for decoding one token with a KV context of @p s_ctx. */
    std::uint64_t decodeMacsPerToken(std::size_t s_ctx) const;

    /** Attention-only MACs for prefill (the S^2 part). */
    std::uint64_t prefillAttentionMacs(std::size_t s) const;

    /** Weight bytes (INT8, uncompressed) read for one full pass. */
    std::uint64_t weightBytes() const;

    /** KV-cache bytes appended per token (INT8 K + V, all layers). */
    std::uint64_t kvBytesPerToken() const;

    /** KV-cache bytes read to decode one token over context @p s_ctx. */
    std::uint64_t kvReadBytesPerToken(std::size_t s_ctx) const;
};

/** The paper's five-model zoo. */
const std::vector<LlmConfig> &modelZoo();

/** Look up a zoo model by name; fatal() on unknown names. */
const LlmConfig &findModel(const std::string &name);

} // namespace mcbp::model
