#include "model/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace mcbp::model {

FloatMatrix
gaussianWeights(Rng &rng, std::size_t rows, std::size_t cols,
                const WeightProfile &profile)
{
    fatalIf(profile.sigma <= 0.0, "weight sigma must be positive");
    FloatMatrix w(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            double v = rng.gaussian(0.0, profile.sigma);
            if (rng.bernoulli(profile.outlierFraction)) {
                const double mag = profile.dynamicRange *
                                   profile.sigma *
                                   rng.uniform(0.8, 1.2);
                v = rng.bernoulli(0.5) ? mag : -mag;
            }
            w.at(r, c) = static_cast<float>(v);
        }
    }
    return w;
}

quant::QuantizedWeight
synthesizeQuantizedWeight(Rng &rng, std::size_t rows, std::size_t cols,
                          quant::BitWidth bw, const WeightProfile &profile)
{
    return quant::quantizeWeight(gaussianWeights(rng, rows, cols, profile),
                                 bw);
}

FloatMatrix
gaussianActivations(Rng &rng, std::size_t rows, std::size_t cols,
                    double sigma, double mean)
{
    FloatMatrix x(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            x.at(r, c) = static_cast<float>(rng.gaussian(mean, sigma));
    return x;
}

AttentionSet
synthesizeAttention(Rng &rng, std::size_t s, std::size_t d,
                    double concentration)
{
    fatalIf(s == 0 || d == 0, "attention set must be non-empty");
    fatalIf(concentration <= 0.0 || concentration > 1.0,
            "concentration must be in (0, 1]");

    // Float query.
    std::vector<double> qf(d);
    double qnorm2 = 0.0;
    for (auto &v : qf) {
        v = rng.gaussian();
        qnorm2 += v * v;
    }
    fatalIf(qnorm2 == 0.0, "degenerate query");

    // Target logits: a concentrated subset sits near the max, the rest
    // falls well below the softmax radius.
    const std::size_t vital =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     concentration * static_cast<double>(s)));
    std::vector<double> logits(s);
    for (std::size_t j = 0; j < s; ++j) {
        if (j < vital) {
            logits[j] = -rng.uniform(0.0, 1.5); // near the max (0).
        } else {
            logits[j] = -5.0 - std::abs(rng.gaussian(0.0, 2.0));
        }
    }
    // Shuffle key positions so vital keys are scattered through the cache.
    std::vector<std::size_t> perm(s);
    for (std::size_t j = 0; j < s; ++j)
        perm[j] = j;
    for (std::size_t j = s; j > 1; --j)
        std::swap(perm[j - 1], perm[rng.uniformInt(j)]);

    // Keys: k_j = q * (l_j * sqrt(d) / ||q||^2) + noise.
    const double sqrt_d = std::sqrt(static_cast<double>(d));
    FloatMatrix keys_f(s, d);
    for (std::size_t j = 0; j < s; ++j) {
        const double l = logits[perm[j]];
        const double coef = l * sqrt_d / qnorm2;
        for (std::size_t i = 0; i < d; ++i) {
            keys_f.at(j, i) = static_cast<float>(
                coef * qf[i] + rng.gaussian(0.0, 0.35));
        }
    }

    // Quantize query and keys symmetrically (per tensor).
    AttentionSet out;
    double qmax = 0.0;
    for (double v : qf)
        qmax = std::max(qmax, std::abs(v));
    const double q_scale = qmax > 0 ? qmax / 127.0 : 1.0;
    out.query.resize(d);
    for (std::size_t i = 0; i < d; ++i) {
        long qq = std::lround(qf[i] / q_scale);
        out.query[i] = static_cast<std::int8_t>(
            std::clamp<long>(qq, -127, 127));
    }

    float kmax = 0.0f;
    keys_f.forEach([&](std::size_t, std::size_t, float v) {
        kmax = std::max(kmax, std::abs(v));
    });
    const double k_scale = kmax > 0 ? kmax / 127.0 : 1.0;
    out.keys = Int8Matrix(s, d);
    for (std::size_t j = 0; j < s; ++j) {
        for (std::size_t i = 0; i < d; ++i) {
            long kq = std::lround(keys_f.at(j, i) / k_scale);
            out.keys.at(j, i) = static_cast<std::int8_t>(
                std::clamp<long>(kq, -127, 127));
        }
    }
    out.logitScale = q_scale * k_scale / sqrt_d;
    return out;
}

} // namespace mcbp::model
