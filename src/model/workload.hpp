/**
 * @file
 * Inference task descriptions matching the paper's benchmark suite
 * (section 5.1): nine tasks spanning classification (GLUE), language
 * modeling, reasoning, code generation and long-context processing, each
 * with the paper's prompt length and a representative decode length.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcbp::model {

/** What dominates a task: prompt processing or autoregressive decode. */
enum class TaskKind { Classification, LanguageModeling, Reasoning,
                      Generation, LongContext };

/** One benchmark task. */
struct Workload
{
    std::string name;
    std::size_t promptLen = 0; ///< S (paper's "S=" per task).
    std::size_t decodeLen = 0; ///< Generated tokens.
    std::size_t batch = 8;     ///< Default batch used in the evaluation.
    TaskKind kind = TaskKind::Classification;
    /**
     * Attention concentration: fraction of keys that capture ~90% of
     * softmax mass. Smaller = sparser attention (long-context tasks are
     * sparser). Drives the synthetic attention generator and BGPP gains.
     */
    double attentionConcentration = 0.15;
};

/** The paper's nine tasks. */
const std::vector<Workload> &taskZoo();

/** Look up a task by name; fatal() on unknown names. */
const Workload &findTask(const std::string &name);

/** Workload with overridden prompt/decode lengths (Fig 19(b) sweeps). */
Workload withLengths(const Workload &base, std::size_t prompt,
                     std::size_t decode);

} // namespace mcbp::model
