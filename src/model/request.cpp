#include "model/request.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "model/llm_config.hpp"

namespace mcbp::model {

Workload
Request::workload() const
{
    Workload w = withLengths(findTask(task), promptLen, decodeLen);
    w.batch = 1;
    return w;
}

std::vector<Request>
synthesizeTrace(const TraceConfig &cfg)
{
    fatalIf(cfg.requests == 0, "trace needs at least one request");
    fatalIf(cfg.lengthJitter < 0.0 || cfg.lengthJitter >= 1.0,
            "length jitter must be in [0, 1)");
    const Workload &base = findTask(cfg.task);
    (void)findModel(cfg.model); // validate the model name early.

    Rng rng(cfg.seed);
    std::vector<Request> trace;
    trace.reserve(cfg.requests);
    double clock = 0.0;
    for (std::size_t i = 0; i < cfg.requests; ++i) {
        if (cfg.arrivalsPerSecond > 0.0) {
            // Exponential inter-arrival via inverse transform.
            const double u = std::max(1e-12, 1.0 - rng.uniform());
            clock += -std::log(u) / cfg.arrivalsPerSecond;
        }
        auto jittered = [&](std::size_t nominal) {
            const double f = rng.uniform(1.0 - cfg.lengthJitter,
                                         1.0 + cfg.lengthJitter);
            return std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::llround(static_cast<double>(nominal) * f)));
        };
        Request r;
        r.id = i;
        r.arrivalSeconds = clock;
        r.model = cfg.model;
        r.task = cfg.task;
        r.promptLen = jittered(base.promptLen);
        r.decodeLen = jittered(std::max<std::size_t>(1, base.decodeLen));
        trace.push_back(r);
    }
    return trace;
}

} // namespace mcbp::model
