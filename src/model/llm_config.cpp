#include "model/llm_config.hpp"

#include "common/logging.hpp"

namespace mcbp::model {

std::uint64_t
LlmConfig::paramsPerLayer() const
{
    // QKV + output projections, plus the FFN matrices.
    const std::uint64_t attn = 4ull * hidden * hidden;
    const std::uint64_t mlp =
        static_cast<std::uint64_t>(ffnMatrices) * hidden * ffn;
    return attn + mlp;
}

std::uint64_t
LlmConfig::totalParams() const
{
    return paramsPerLayer() * layers;
}

std::uint64_t
LlmConfig::prefillMacs(std::size_t s) const
{
    // Linear layers process all S tokens; attention is quadratic.
    const std::uint64_t linear = paramsPerLayer() * s;
    const std::uint64_t attn = prefillAttentionMacs(s) / layers;
    return (linear + attn) * layers;
}

std::uint64_t
LlmConfig::prefillAttentionMacs(std::size_t s) const
{
    // QK^T and PV are each S^2 x headDim per head = S^2 x H per layer;
    // causal masking halves the effective work.
    const std::uint64_t per_layer =
        static_cast<std::uint64_t>(s) * s * hidden; // QK^T + PV halves sum
    return per_layer * layers;
}

std::uint64_t
LlmConfig::decodeMacsPerToken(std::size_t s_ctx) const
{
    const std::uint64_t linear = paramsPerLayer();
    const std::uint64_t attn =
        2ull * s_ctx * hidden; // q.K^T and p.V over the cache
    return (linear + attn) * layers;
}

std::uint64_t
LlmConfig::weightBytes() const
{
    return totalParams(); // INT8: one byte per parameter.
}

std::uint64_t
LlmConfig::kvBytesPerToken() const
{
    return 2ull * hidden * layers; // INT8 K and V rows per layer.
}

std::uint64_t
LlmConfig::kvReadBytesPerToken(std::size_t s_ctx) const
{
    return 2ull * hidden * layers * s_ctx;
}

const std::vector<LlmConfig> &
modelZoo()
{
    static const std::vector<LlmConfig> zoo = {
        {"OPT1B3", 2048, 24, 32, 8192, 2, 14.0},
        {"Bloom1B7", 2048, 24, 16, 8192, 2, 14.0},
        {"Qwen7B", 4096, 32, 32, 11008, 3, 17.0},
        {"Llama7B", 4096, 32, 32, 11008, 3, 16.0},
        {"Llama13B", 5120, 40, 40, 13824, 3, 16.0},
    };
    return zoo;
}

const LlmConfig &
findModel(const std::string &name)
{
    for (const auto &m : modelZoo()) {
        if (m.name == name)
            return m;
    }
    fatal("unknown model: " + name);
}

} // namespace mcbp::model
