#include "model/kv_cache.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace mcbp::model {

KvCache::KvCache(std::size_t head_dim)
    : headDim_(head_dim), keys_(0, head_dim), values_(0, head_dim)
{
    fatalIf(head_dim == 0, "head dimension must be positive");
}

void
KvCache::append(const std::vector<std::int8_t> &k,
                const std::vector<std::int8_t> &v)
{
    fatalIf(k.size() != headDim_ || v.size() != headDim_,
            "KV row width mismatch");
    // Keep the public matrices exactly length_ rows: re-materialize on
    // growth. Decode appends one row per step over thousands of reads, so
    // the copy cost is acceptable for a functional model.
    Int8Matrix grown_k(length_ + 1, headDim_);
    Int8Matrix grown_v(length_ + 1, headDim_);
    for (std::size_t r = 0; r < length_; ++r) {
        std::copy(keys_.rowPtr(r), keys_.rowPtr(r) + headDim_,
                  grown_k.rowPtr(r));
        std::copy(values_.rowPtr(r), values_.rowPtr(r) + headDim_,
                  grown_v.rowPtr(r));
    }
    std::copy(k.begin(), k.end(), grown_k.rowPtr(length_));
    std::copy(v.begin(), v.end(), grown_v.rowPtr(length_));
    keys_ = std::move(grown_k);
    values_ = std::move(grown_v);
    ++length_;
    bytesWritten_ += 2 * headDim_;
}

const std::int8_t *
KvCache::readKey(std::size_t idx) const
{
    fatalIf(idx >= length_, "key index out of range");
    bytesRead_ += headDim_;
    return keys_.rowPtr(idx);
}

const std::int8_t *
KvCache::readValue(std::size_t idx) const
{
    fatalIf(idx >= length_, "value index out of range");
    bytesRead_ += headDim_;
    return values_.rowPtr(idx);
}

} // namespace mcbp::model
