/**
 * @file
 * Multi-request serving workload descriptions: one inference request
 * (arrival time + per-request prompt/decode lengths on a zoo model and
 * task) and a synthetic Poisson trace generator, the input side of
 * engine::ServingSimulator.
 *
 * A request is a single user's inference, so unlike the offline
 * Workload benchmarks (evaluated at the paper's batch sizes) it carries
 * batch 1; the serving engine forms batches dynamically from whatever
 * requests are in flight.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/workload.hpp"

namespace mcbp::model {

/** One serving request. */
struct Request
{
    std::size_t id = 0;
    double arrivalSeconds = 0.0;
    std::string model = "Llama7B"; ///< Zoo model name.
    std::string task = "Dolly";    ///< Zoo task the request is drawn from.
    std::size_t promptLen = 0;
    std::size_t decodeLen = 0;

    /** The request as a batch-1 workload for Accelerator::run(). */
    Workload workload() const;
};

/** Parameters of the synthetic trace generator. */
struct TraceConfig
{
    std::string model = "Llama7B";
    std::string task = "Dolly";
    std::size_t requests = 32;
    /** Mean arrival rate (Poisson process; 0 = all arrive at time 0). */
    double arrivalsPerSecond = 2.0;
    /**
     * Per-request length spread: prompt/decode lengths are drawn
     * uniformly in [1-jitter, 1+jitter] x the task's nominal lengths.
     */
    double lengthJitter = 0.5;
    std::uint64_t seed = 1;
};

/**
 * Synthesize a request trace: exponential inter-arrival times at the
 * configured rate, jittered lengths, sorted by arrival.
 */
std::vector<Request> synthesizeTrace(const TraceConfig &cfg);

} // namespace mcbp::model
