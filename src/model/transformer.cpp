#include "model/transformer.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "quant/gemm.hpp"

namespace mcbp::model {

namespace {

/** y = x * W^T where W is (out x in) and x is (S x in). */
FloatMatrix
projectF32(const FloatMatrix &x, const FloatMatrix &w)
{
    panicIf(x.cols() != w.cols(), "projection shape mismatch");
    FloatMatrix y(x.rows(), w.rows());
    for (std::size_t s = 0; s < x.rows(); ++s) {
        for (std::size_t o = 0; o < w.rows(); ++o) {
            float acc = 0.0f;
            const float *xr = x.rowPtr(s);
            const float *wr = w.rowPtr(o);
            for (std::size_t i = 0; i < x.cols(); ++i)
                acc += xr[i] * wr[i];
            y.at(s, o) = acc;
        }
    }
    return y;
}

/** Quantized projection through the folded integer GEMM. */
FloatMatrix
projectInt8(const FloatMatrix &x, const FloatMatrix &w)
{
    // gemmQuantFolded computes W (M x K) times X (K x N); arrange X as
    // (in x S) and transpose the (out x S) result back to (S x out).
    FloatMatrix xt(x.cols(), x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
            xt.at(c, r) = x.at(r, c);
    quant::QuantizedWeight qw =
        quant::quantizeWeight(w, quant::BitWidth::Int8);
    quant::QuantizedActivation qx = quant::quantizeActivation(xt);
    FloatMatrix yt = quant::gemmQuantFolded(qw, qx);
    FloatMatrix y(x.rows(), w.rows());
    for (std::size_t r = 0; r < y.rows(); ++r)
        for (std::size_t c = 0; c < y.cols(); ++c)
            y.at(r, c) = yt.at(c, r);
    return y;
}

/** RMS normalization (no learned scale; eps for stability). */
FloatMatrix
rmsNorm(const FloatMatrix &x)
{
    FloatMatrix y(x.rows(), x.cols());
    for (std::size_t s = 0; s < x.rows(); ++s) {
        double ms = 0.0;
        for (std::size_t i = 0; i < x.cols(); ++i)
            ms += static_cast<double>(x.at(s, i)) * x.at(s, i);
        const float inv = static_cast<float>(
            1.0 / std::sqrt(ms / static_cast<double>(x.cols()) + 1e-6));
        for (std::size_t i = 0; i < x.cols(); ++i)
            y.at(s, i) = x.at(s, i) * inv;
    }
    return y;
}

float
gelu(float v)
{
    const float c = 0.7978845608f; // sqrt(2/pi)
    return 0.5f * v *
           (1.0f + std::tanh(c * (v + 0.044715f * v * v * v)));
}

/** Symmetric per-tensor INT8 quantization of a float row span. */
void
quantizeRow(const float *src, std::size_t n, std::vector<std::int8_t> &dst,
            float scale)
{
    dst.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        long q = std::lround(src[i] / scale);
        dst[i] = static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
    }
}

float
absMax(const FloatMatrix &m)
{
    float mx = 0.0f;
    m.forEach([&](std::size_t, std::size_t, float v) {
        mx = std::max(mx, std::abs(v));
    });
    return mx > 0.0f ? mx : 1.0f;
}

} // namespace

LayerWeights
randomLayer(Rng &rng, std::size_t hidden, std::size_t heads,
            std::size_t ffn, const WeightProfile &profile)
{
    fatalIf(hidden == 0 || heads == 0 || ffn == 0, "bad layer dims");
    fatalIf(hidden % heads != 0, "hidden must divide by heads");
    LayerWeights w;
    w.hidden = hidden;
    w.heads = heads;
    w.wq = gaussianWeights(rng, hidden, hidden, profile);
    w.wk = gaussianWeights(rng, hidden, hidden, profile);
    w.wv = gaussianWeights(rng, hidden, hidden, profile);
    w.wo = gaussianWeights(rng, hidden, hidden, profile);
    w.w1 = gaussianWeights(rng, ffn, hidden, profile);
    w.w2 = gaussianWeights(rng, hidden, ffn, profile);
    return w;
}

TransformerLayer::TransformerLayer(LayerWeights weights)
    : w_(std::move(weights))
{
    fatalIf(w_.hidden == 0, "uninitialized layer weights");
}

FloatMatrix
TransformerLayer::forwardF32(const FloatMatrix &x) const
{
    return forwardImpl(x, false, nullptr);
}

FloatMatrix
TransformerLayer::forwardInt8(const FloatMatrix &x) const
{
    return forwardImpl(x, true, nullptr);
}

FloatMatrix
TransformerLayer::forwardPruned(const FloatMatrix &x,
                                const KeySelector &selector) const
{
    return forwardImpl(x, true, &selector);
}

FloatMatrix
TransformerLayer::forwardImpl(const FloatMatrix &x, bool quantized,
                              const KeySelector *selector) const
{
    fatalIf(x.cols() != w_.hidden, "input width mismatch");
    const std::size_t s_len = x.rows();
    const std::size_t h = w_.hidden;
    const std::size_t heads = w_.heads;
    const std::size_t d = h / heads;

    auto project = [&](const FloatMatrix &in, const FloatMatrix &w) {
        return quantized ? projectInt8(in, w) : projectF32(in, w);
    };

    FloatMatrix xn = rmsNorm(x);
    FloatMatrix q = project(xn, w_.wq);
    FloatMatrix k = project(xn, w_.wk);
    FloatMatrix v = project(xn, w_.wv);

    const float inv_sqrt_d =
        1.0f / std::sqrt(static_cast<float>(d));
    FloatMatrix attn_out(s_len, h);

    // INT8 views for the selector (per-tensor symmetric, like the KV
    // cache the hardware sees).
    const float q_scale = absMax(q) / 127.0f;
    const float k_scale = absMax(k) / 127.0f;

    std::vector<std::int8_t> q_row;
    std::vector<float> scores(s_len);
    std::vector<char> allowed(s_len);

    for (std::size_t head = 0; head < heads; ++head) {
        const std::size_t off = head * d;
        // INT8 key matrix of this head (built once per head).
        Int8Matrix keys_q(s_len, d);
        if (selector) {
            for (std::size_t j = 0; j < s_len; ++j) {
                for (std::size_t i = 0; i < d; ++i) {
                    long kv = std::lround(k.at(j, off + i) / k_scale);
                    keys_q.at(j, i) = static_cast<std::int8_t>(
                        std::clamp<long>(kv, -127, 127));
                }
            }
        }
        for (std::size_t si = 0; si < s_len; ++si) {
            const std::size_t ctx = si + 1; // causal window
            std::fill(allowed.begin(), allowed.begin() + ctx, 1);
            if (selector) {
                quantizeRow(q.rowPtr(si) + off, d, q_row, q_scale);
                // Selector sees only the causal prefix of the keys.
                Int8Matrix prefix(ctx, d);
                for (std::size_t j = 0; j < ctx; ++j)
                    std::copy(keys_q.rowPtr(j), keys_q.rowPtr(j) + d,
                              prefix.rowPtr(j));
                const double logit_scale =
                    static_cast<double>(q_scale) * k_scale /
                    std::sqrt(static_cast<double>(d));
                std::vector<std::uint32_t> sel =
                    (*selector)(q_row, prefix, logit_scale);
                std::fill(allowed.begin(), allowed.begin() + ctx, 0);
                for (std::uint32_t idx : sel) {
                    if (idx < ctx)
                        allowed[idx] = 1;
                }
                // Always allow the current token (self-attention floor).
                allowed[si] = 1;
            }
            // Scores over the allowed causal window.
            float mx = -1e30f;
            for (std::size_t j = 0; j < ctx; ++j) {
                if (!allowed[j]) {
                    scores[j] = -1e30f;
                    continue;
                }
                float acc = 0.0f;
                for (std::size_t i = 0; i < d; ++i)
                    acc += q.at(si, off + i) * k.at(j, off + i);
                scores[j] = acc * inv_sqrt_d;
                mx = std::max(mx, scores[j]);
            }
            float denom = 0.0f;
            for (std::size_t j = 0; j < ctx; ++j) {
                if (allowed[j]) {
                    scores[j] = std::exp(scores[j] - mx);
                    denom += scores[j];
                } else {
                    scores[j] = 0.0f;
                }
            }
            panicIf(denom <= 0.0f, "softmax collapsed to zero");
            for (std::size_t i = 0; i < d; ++i) {
                float acc = 0.0f;
                for (std::size_t j = 0; j < ctx; ++j) {
                    if (scores[j] != 0.0f)
                        acc += scores[j] * v.at(j, off + i);
                }
                attn_out.at(si, off + i) = acc / denom;
            }
        }
    }

    FloatMatrix o = project(attn_out, w_.wo);
    FloatMatrix y(s_len, h);
    for (std::size_t r = 0; r < s_len; ++r)
        for (std::size_t c = 0; c < h; ++c)
            y.at(r, c) = x.at(r, c) + o.at(r, c);

    FloatMatrix yn = rmsNorm(y);
    FloatMatrix h1 = project(yn, w_.w1);
    for (std::size_t r = 0; r < h1.rows(); ++r)
        for (std::size_t c = 0; c < h1.cols(); ++c)
            h1.at(r, c) = gelu(h1.at(r, c));
    FloatMatrix h2 = project(h1, w_.w2);

    FloatMatrix out(s_len, h);
    for (std::size_t r = 0; r < s_len; ++r)
        for (std::size_t c = 0; c < h; ++c)
            out.at(r, c) = y.at(r, c) + h2.at(r, c);
    return out;
}

quant::ErrorStats
layerFidelity(const FloatMatrix &ref, const FloatMatrix &test)
{
    return quant::compareTensors(ref, test);
}

} // namespace mcbp::model
