#include "common/env.hpp"

#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"

namespace mcbp::env {

const std::vector<Knob> &
knobs()
{
    static const std::vector<Knob> table = {
        {"MCBP_SERVING_STEP", "coalesced", "engine/event_core",
         "Decode stepping: 'coalesced' (closed-form windows between "
         "events) or 'per-token' (reference loop; bit-equal decisions)"},
        {"MCBP_SIMD", "best runnable tier", "common/simd dispatch",
         "Clamp the kernel dispatch DOWN to 'scalar', 'avx2' or "
         "'avx512'; never raises above what CPUID allows"},
        {"MCBP_THREADS", "hardware concurrency", "common/parallel pool",
         "Worker count of the global thread pool (positive integer); "
         "thread count never changes any result, only wall-clock"},
    };
    return table;
}

bool
isRegistered(const char *name)
{
    for (const Knob &k : knobs())
        if (std::strcmp(k.name, name) == 0)
            return true;
    return false;
}

const char *
get(const char *name)
{
    fatalIf(!isRegistered(name),
            std::string("env::get: '") + name +
                "' is not declared in env::knobs(); register the knob "
                "(name, default, consumer) before reading it");
    // The one sanctioned environment read in the tree; everything else
    // must route through this registry so the knob table stays
    // exhaustive (lint rule: stray-getenv).
    return std::getenv(name); // mcbp-lint: allow(stray-getenv): this is the central registry call site
}

std::string
describeKnobs()
{
    std::string out;
    for (const Knob &k : knobs()) {
        out += k.name;
        out += "\n  default:  ";
        out += k.defaultValue;
        out += "\n  consumer: ";
        out += k.consumer;
        out += "\n  ";
        out += k.meaning;
        out += "\n";
    }
    return out;
}

} // namespace mcbp::env
