/**
 * @file
 * Private seam between the dispatcher and the per-tier translation
 * units. The AVX entry points return null when their TU was compiled
 * without the ISA (old compiler) — the dispatcher treats that exactly
 * like missing CPUID support.
 */
#pragma once

#include "common/simd/simd.hpp"

namespace mcbp::simd::detail {

const Kernels &scalarKernels();
const Kernels *avx2Kernels();
const Kernels *avx512Kernels();

} // namespace mcbp::simd::detail
