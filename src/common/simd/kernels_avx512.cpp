/**
 * @file
 * AVX-512 tier (requires F + BW; VL/VPOPCNTDQ deliberately not assumed
 * so the tier covers Skylake-SP-era servers). Compiled with
 * -mavx512f -mavx512bw when the compiler supports them; stubs out
 * otherwise. Same Harley–Seal construction as the AVX2 tier, with the
 * carry-save adder collapsed into single vpternlogd ops, and mask
 * registers replacing movemask emulation in the 32-bit scans.
 */
#include "common/simd/kernels_internal.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <bit>
#include <immintrin.h>

namespace mcbp::simd::detail {

namespace {

inline __m512i
load(const std::uint64_t *p)
{
    return _mm512_loadu_si512(p);
}

/** Per-64-bit-lane popcount (nibble LUT + SAD, AVX512BW). */
inline __m512i
popcount512(__m512i v)
{
    const __m512i lookup = _mm512_broadcast_i32x4(
        _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    const __m512i low_mask = _mm512_set1_epi8(0x0f);
    const __m512i lo = _mm512_and_si512(v, low_mask);
    const __m512i hi =
        _mm512_and_si512(_mm512_srli_epi16(v, 4), low_mask);
    const __m512i cnt =
        _mm512_add_epi8(_mm512_shuffle_epi8(lookup, lo),
                        _mm512_shuffle_epi8(lookup, hi));
    return _mm512_sad_epu8(cnt, _mm512_setzero_si512());
}

/** Carry-save adder via ternary logic: XOR3 low, majority high. */
inline void
csa(__m512i &h, __m512i &l, __m512i a, __m512i b, __m512i c)
{
    h = _mm512_ternarylogic_epi32(a, b, c, 0xe8); // majority(a, b, c)
    l = _mm512_ternarylogic_epi32(a, b, c, 0x96); // a ^ b ^ c
}

std::uint64_t
popcountWordsAvx512(const std::uint64_t *w, std::size_t n)
{
    __m512i total = _mm512_setzero_si512();
    __m512i ones = total, twos = total, fours = total, eights = total;
    __m512i twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens;
    std::size_t i = 0;
    for (; i + 128 <= n; i += 128) {
        const std::uint64_t *p = w + i;
        csa(twosA, ones, ones, load(p + 0), load(p + 8));
        csa(twosB, ones, ones, load(p + 16), load(p + 24));
        csa(foursA, twos, twos, twosA, twosB);
        csa(twosA, ones, ones, load(p + 32), load(p + 40));
        csa(twosB, ones, ones, load(p + 48), load(p + 56));
        csa(foursB, twos, twos, twosA, twosB);
        csa(eightsA, fours, fours, foursA, foursB);
        csa(twosA, ones, ones, load(p + 64), load(p + 72));
        csa(twosB, ones, ones, load(p + 80), load(p + 88));
        csa(foursA, twos, twos, twosA, twosB);
        csa(twosA, ones, ones, load(p + 96), load(p + 104));
        csa(twosB, ones, ones, load(p + 112), load(p + 120));
        csa(foursB, twos, twos, twosA, twosB);
        csa(eightsB, fours, fours, foursA, foursB);
        csa(sixteens, eights, eights, eightsA, eightsB);
        total = _mm512_add_epi64(total, popcount512(sixteens));
    }
    total = _mm512_slli_epi64(total, 4);
    total = _mm512_add_epi64(total,
                             _mm512_slli_epi64(popcount512(eights), 3));
    total = _mm512_add_epi64(total,
                             _mm512_slli_epi64(popcount512(fours), 2));
    total = _mm512_add_epi64(total,
                             _mm512_slli_epi64(popcount512(twos), 1));
    total = _mm512_add_epi64(total, popcount512(ones));
    std::uint64_t result =
        static_cast<std::uint64_t>(_mm512_reduce_add_epi64(total));
    for (; i + 8 <= n; i += 8)
        result += static_cast<std::uint64_t>(
            _mm512_reduce_add_epi64(popcount512(load(w + i))));
    for (; i < n; ++i)
        result += static_cast<std::uint64_t>(std::popcount(w[i]));
    return result;
}

std::uint64_t
orWordsAvx512(const std::uint64_t *w, std::size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm512_or_si512(acc, load(w + i));
    std::uint64_t out = _mm512_reduce_or_epi64(acc);
    for (; i < n; ++i)
        out |= w[i];
    return out;
}

std::uint64_t
andPopcountWordsAvx512(std::uint64_t *dst, const std::uint64_t *a,
                       const std::uint64_t *b, std::size_t n)
{
    __m512i total = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i v = _mm512_and_si512(load(a + i), load(b + i));
        _mm512_storeu_si512(dst + i, v);
        total = _mm512_add_epi64(total, popcount512(v));
    }
    std::uint64_t result =
        static_cast<std::uint64_t>(_mm512_reduce_add_epi64(total));
    for (; i < n; ++i) {
        const std::uint64_t v = a[i] & b[i];
        dst[i] = v;
        result += static_cast<std::uint64_t>(std::popcount(v));
    }
    return result;
}

bool
equalWordsAvx512(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        if (_mm512_cmpneq_epi64_mask(load(a + i), load(b + i)) != 0)
            return false;
    for (; i < n; ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

std::size_t
countZero32Avx512(const std::uint32_t *v, std::size_t n)
{
    const __m512i zero = _mm512_setzero_si512();
    std::size_t zeros = 0;
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i x = _mm512_loadu_si512(v + i);
        zeros += static_cast<std::size_t>(std::popcount(
            static_cast<std::uint32_t>(_mm512_cmpeq_epi32_mask(x, zero))));
    }
    for (; i < n; ++i)
        if (v[i] == 0)
            ++zeros;
    return zeros;
}

void
nonzeroMask32Avx512(const std::uint32_t *v, std::size_t n,
                    std::uint64_t *mask)
{
    const std::size_t full = n >> 6;
    for (std::size_t w = 0; w < full; ++w) {
        const std::uint32_t *p = v + (w << 6);
        std::uint64_t m = 0;
        for (unsigned j = 0; j < 4; ++j) {
            const __m512i x = _mm512_loadu_si512(p + 16 * j);
            m |= static_cast<std::uint64_t>(
                     _mm512_test_epi32_mask(x, x))
                 << (16 * j);
        }
        mask[w] = m;
    }
    const std::size_t base = full << 6;
    if (base < n) {
        std::uint64_t m = 0;
        for (std::size_t j = 0; j < n - base; ++j)
            m |= static_cast<std::uint64_t>(v[base + j] != 0) << j;
        mask[full] = m;
    }
}

constexpr Kernels kAvx512 = {
    Tier::Avx512,         popcountWordsAvx512, orWordsAvx512,
    andPopcountWordsAvx512, equalWordsAvx512,  countZero32Avx512,
    nonzeroMask32Avx512,
};

} // namespace

const Kernels *
avx512Kernels()
{
    return &kAvx512;
}

} // namespace mcbp::simd::detail

#else // !(__AVX512F__ && __AVX512BW__)

namespace mcbp::simd::detail {

const Kernels *
avx512Kernels()
{
    return nullptr;
}

} // namespace mcbp::simd::detail

#endif
