/**
 * @file
 * Scalar reference kernels — the semantics every vector tier must
 * reproduce bit-for-bit. Compiled at the project's baseline ISA (no
 * -m flags) so the scalar tier runs anywhere; kept deliberately plain
 * so they stay readable as the specification.
 */
#include <bit>

#include "common/simd/kernels_internal.hpp"

namespace mcbp::simd::detail {

namespace {

std::uint64_t
popcountWordsScalar(const std::uint64_t *w, std::size_t n)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(w[i]));
    return total;
}

std::uint64_t
orWordsScalar(const std::uint64_t *w, std::size_t n)
{
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc |= w[i];
    return acc;
}

std::uint64_t
andPopcountWordsScalar(std::uint64_t *dst, const std::uint64_t *a,
                       const std::uint64_t *b, std::size_t n)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t v = a[i] & b[i];
        dst[i] = v;
        total += static_cast<std::uint64_t>(std::popcount(v));
    }
    return total;
}

bool
equalWordsScalar(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

std::size_t
countZero32Scalar(const std::uint32_t *v, std::size_t n)
{
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (v[i] == 0)
            ++zeros;
    return zeros;
}

void
nonzeroMask32Scalar(const std::uint32_t *v, std::size_t n,
                    std::uint64_t *mask)
{
    const std::size_t words = (n + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
        const std::size_t base = w << 6;
        const std::size_t lanes = n - base < 64 ? n - base : 64;
        std::uint64_t m = 0;
        for (std::size_t j = 0; j < lanes; ++j)
            m |= static_cast<std::uint64_t>(v[base + j] != 0) << j;
        mask[w] = m;
    }
}

constexpr Kernels kScalar = {
    Tier::Scalar,       popcountWordsScalar, orWordsScalar,
    andPopcountWordsScalar, equalWordsScalar, countZero32Scalar,
    nonzeroMask32Scalar,
};

} // namespace

const Kernels &
scalarKernels()
{
    return kScalar;
}

} // namespace mcbp::simd::detail
