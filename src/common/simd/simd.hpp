/**
 * @file
 * Runtime-dispatched SIMD plane-scan kernels (AVX2 / AVX-512, scalar
 * fallback).
 *
 * The bit-plane engines (bitslice/, brcr/, bstc/) reduce to a handful of
 * word-granular primitives — bulk popcount, OR/AND reductions, multi-word
 * compares, and zero-scans over pattern arrays. Each primitive has one
 * scalar reference implementation plus AVX2 and AVX-512 ports, collected
 * in per-tier `Kernels` tables. The active table is chosen once, at first
 * use, from CPUID (the intgemm SSE2→AVX512VNNI dispatch scheme), so every
 * call costs a single indirect jump and the engine layer never mentions a
 * vector type.
 *
 * Tier selection:
 *   - hardware: `detectCpuTier()` via __builtin_cpu_supports;
 *   - build:    the AVX2/AVX-512 translation units are always compiled
 *               but compile to stubs when the compiler lacks the ISA
 *               (`compiledAvx2()` / `compiledAvx512()`);
 *   - override: `MCBP_SIMD=scalar|avx2|avx512` clamps DOWN only — a
 *               request above what CPUID + the build support is clamped
 *               to the best available tier, never trusted.
 *
 * Input pointers do not need to be aligned (kernels use unaligned loads);
 * alignment via common/AlignedBuffer buys cache-line-clean rows and
 * zero-padded tails, not correctness.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace mcbp::simd {

/** Instruction-set tiers, ordered weakest to strongest. */
enum class Tier : int { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/** Lower-case tier name ("scalar", "avx2", "avx512"). */
const char *tierName(Tier t);

/**
 * One tier's kernel table. All kernels accept n == 0 (pointers may then
 * be null) and arbitrary alignment, and return bit-identical results
 * across tiers — the golden contract tests/test_simd.cpp enforces.
 */
struct Kernels
{
    Tier tier;

    /** Total set bits over @p n words. */
    std::uint64_t (*popcountWords)(const std::uint64_t *w, std::size_t n);

    /** OR-reduction over @p n words (density / any-set scans). */
    std::uint64_t (*orWords)(const std::uint64_t *w, std::size_t n);

    /**
     * dst[i] = a[i] & b[i] for i < n; returns the popcount of the
     * result (the CAM bank-intersection match count).
     */
    std::uint64_t (*andPopcountWords)(std::uint64_t *dst,
                                      const std::uint64_t *a,
                                      const std::uint64_t *b,
                                      std::size_t n);

    /** Exact equality of two @p n-word spans (column-key compares). */
    bool (*equalWords)(const std::uint64_t *a, const std::uint64_t *b,
                       std::size_t n);

    /** Number of zero entries among @p n 32-bit pattern slots. */
    std::size_t (*countZero32)(const std::uint32_t *v, std::size_t n);

    /**
     * Build a bitmask of the non-zero entries of @p v: bit (i & 63) of
     * mask[i >> 6] is set iff v[i] != 0. Writes ceil(n / 64) words;
     * bits at or beyond n are zero. The zero-skip walk under
     * factorizeGroup, the BRCR counting sort and the BSTC encoder.
     */
    void (*nonzeroMask32)(const std::uint32_t *v, std::size_t n,
                          std::uint64_t *mask);
};

/** Best tier the CPU reports, ignoring build support and overrides. */
Tier detectCpuTier();

/** Best tier both the CPU and this build support. */
Tier availableTier();

/**
 * Tier the dispatcher resolved: availableTier() clamped down by a valid
 * MCBP_SIMD override (read once, at first use).
 */
Tier activeTier();

/** Whether the AVX2 / AVX-512 translation units carry real code. */
bool compiledAvx2();
bool compiledAvx512();

/**
 * The dispatched kernel table (tier == activeTier() unless forceTier()
 * intervened). First call resolves CPUID + env; later calls are one
 * atomic load.
 */
const Kernels &kernels();

/**
 * Table for @p t clamped to availableTier() — request high, get the
 * best supported at-or-below tier. For benches and golden tests.
 */
const Kernels &kernelsFor(Tier t);

/**
 * Swap the dispatched table (clamped to availableTier()); returns the
 * tier actually installed. Benches and tests use this to time / verify
 * the full engine stack per tier; production code never calls it.
 */
Tier forceTier(Tier t);

/** Undo forceTier(): restore the CPUID + MCBP_SIMD resolution. */
void resetTier();

/**
 * Pure override-resolution rule (unit-testable): parse @p value
 * ("scalar" / "avx2" / "avx512"; anything else — including null — means
 * "no override") and clamp to @p available.
 */
Tier resolveTier(const char *value, Tier available);

} // namespace mcbp::simd
