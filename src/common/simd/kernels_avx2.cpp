/**
 * @file
 * AVX2 tier. Compiled with -mavx2 when the compiler supports it (see
 * CMakeLists.txt); otherwise the TU degrades to a stub and the
 * dispatcher falls back, exactly as if CPUID lacked AVX2.
 *
 * popcount uses the Harley–Seal carry-save tree over 64-word (512-byte)
 * blocks with Muła's nibble-LUT byte popcount at the leaves — the
 * standard ~3x-over-scalar-POPCNT construction for in-cache buffers.
 * All loads are unaligned (`loadu`): AlignedBuffer rows make them
 * cache-line clean, but correctness never depends on it.
 */
#include "common/simd/kernels_internal.hpp"

#if defined(__AVX2__)

#include <bit>
#include <immintrin.h>

namespace mcbp::simd::detail {

namespace {

inline __m256i
load(const std::uint64_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

/** Per-64-bit-lane popcount of @p v (Muła nibble LUT + SAD). */
inline __m256i
popcount256(__m256i v)
{
    const __m256i lookup =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt =
        _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                        _mm256_shuffle_epi8(lookup, hi));
    return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/** Carry-save adder: (h, l) = a + b + c in bit-sliced form. */
inline void
csa(__m256i &h, __m256i &l, __m256i a, __m256i b, __m256i c)
{
    const __m256i u = _mm256_xor_si256(a, b);
    h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
    l = _mm256_xor_si256(u, c);
}

inline std::uint64_t
hsum64(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i s = _mm_add_epi64(lo, hi);
    return static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
           static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

std::uint64_t
popcountWordsAvx2(const std::uint64_t *w, std::size_t n)
{
    __m256i total = _mm256_setzero_si256();
    __m256i ones = total, twos = total, fours = total, eights = total;
    __m256i twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens;
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const std::uint64_t *p = w + i;
        csa(twosA, ones, ones, load(p + 0), load(p + 4));
        csa(twosB, ones, ones, load(p + 8), load(p + 12));
        csa(foursA, twos, twos, twosA, twosB);
        csa(twosA, ones, ones, load(p + 16), load(p + 20));
        csa(twosB, ones, ones, load(p + 24), load(p + 28));
        csa(foursB, twos, twos, twosA, twosB);
        csa(eightsA, fours, fours, foursA, foursB);
        csa(twosA, ones, ones, load(p + 32), load(p + 36));
        csa(twosB, ones, ones, load(p + 40), load(p + 44));
        csa(foursA, twos, twos, twosA, twosB);
        csa(twosA, ones, ones, load(p + 48), load(p + 52));
        csa(twosB, ones, ones, load(p + 56), load(p + 60));
        csa(foursB, twos, twos, twosA, twosB);
        csa(eightsB, fours, fours, foursA, foursB);
        csa(sixteens, eights, eights, eightsA, eightsB);
        total = _mm256_add_epi64(total, popcount256(sixteens));
    }
    total = _mm256_slli_epi64(total, 4);
    total = _mm256_add_epi64(total,
                             _mm256_slli_epi64(popcount256(eights), 3));
    total = _mm256_add_epi64(total,
                             _mm256_slli_epi64(popcount256(fours), 2));
    total = _mm256_add_epi64(total,
                             _mm256_slli_epi64(popcount256(twos), 1));
    total = _mm256_add_epi64(total, popcount256(ones));
    std::uint64_t result = hsum64(total);
    for (; i + 4 <= n; i += 4)
        result += hsum64(popcount256(load(w + i)));
    for (; i < n; ++i)
        result += static_cast<std::uint64_t>(std::popcount(w[i]));
    return result;
}

std::uint64_t
orWordsAvx2(const std::uint64_t *w, std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm256_or_si256(
            acc, _mm256_or_si256(load(w + i), load(w + i + 4)));
    for (; i + 4 <= n; i += 4)
        acc = _mm256_or_si256(acc, load(w + i));
    std::uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc);
    std::uint64_t out = lanes[0] | lanes[1] | lanes[2] | lanes[3];
    for (; i < n; ++i)
        out |= w[i];
    return out;
}

std::uint64_t
andPopcountWordsAvx2(std::uint64_t *dst, const std::uint64_t *a,
                     const std::uint64_t *b, std::size_t n)
{
    __m256i total = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_and_si256(load(a + i), load(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), v);
        total = _mm256_add_epi64(total, popcount256(v));
    }
    std::uint64_t result = hsum64(total);
    for (; i < n; ++i) {
        const std::uint64_t v = a[i] & b[i];
        dst[i] = v;
        result += static_cast<std::uint64_t>(std::popcount(v));
    }
    return result;
}

bool
equalWordsAvx2(const std::uint64_t *a, const std::uint64_t *b,
               std::size_t n)
{
    std::size_t i = 0;
    // Check in 16-vector strides so a mismatch deep in a long span
    // still exits early, like the scalar loop.
    while (i + 4 <= n) {
        __m256i acc = _mm256_setzero_si256();
        std::size_t j = 0;
        for (; j < 16 && i + 4 <= n; ++j, i += 4)
            acc = _mm256_or_si256(
                acc, _mm256_xor_si256(load(a + i), load(b + i)));
        if (!_mm256_testz_si256(acc, acc))
            return false;
    }
    for (; i < n; ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

std::size_t
countZero32Avx2(const std::uint32_t *v, std::size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    std::size_t zeros = 0;
    std::size_t i = 0;
    // cmpeq lanes are -1; accumulate by subtraction and flush the
    // 32-bit lane counters well before they can wrap.
    while (i + 8 <= n) {
        __m256i acc = _mm256_setzero_si256();
        std::size_t block = 0;
        for (; block < (1u << 24) && i + 8 <= n; block += 8, i += 8) {
            const __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(v + i));
            acc = _mm256_sub_epi32(acc, _mm256_cmpeq_epi32(x, zero));
        }
        std::uint32_t lanes[8];
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc);
        for (const std::uint32_t c : lanes)
            zeros += c;
    }
    for (; i < n; ++i)
        if (v[i] == 0)
            ++zeros;
    return zeros;
}

void
nonzeroMask32Avx2(const std::uint32_t *v, std::size_t n,
                  std::uint64_t *mask)
{
    const __m256i zero = _mm256_setzero_si256();
    const std::size_t full = n >> 6; // whole 64-lane mask words
    for (std::size_t w = 0; w < full; ++w) {
        const std::uint32_t *p = v + (w << 6);
        std::uint64_t m = 0;
        for (unsigned j = 0; j < 8; ++j) {
            const __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(p + 8 * j));
            const __m256i eq = _mm256_cmpeq_epi32(x, zero);
            const unsigned zmask = static_cast<unsigned>(
                _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
            m |= static_cast<std::uint64_t>(~zmask & 0xffu) << (8 * j);
        }
        mask[w] = m;
    }
    const std::size_t base = full << 6;
    if (base < n) {
        std::uint64_t m = 0;
        for (std::size_t j = 0; j < n - base; ++j)
            m |= static_cast<std::uint64_t>(v[base + j] != 0) << j;
        mask[full] = m;
    }
}

constexpr Kernels kAvx2 = {
    Tier::Avx2,         popcountWordsAvx2, orWordsAvx2,
    andPopcountWordsAvx2, equalWordsAvx2,  countZero32Avx2,
    nonzeroMask32Avx2,
};

} // namespace

const Kernels *
avx2Kernels()
{
    return &kAvx2;
}

} // namespace mcbp::simd::detail

#else // !__AVX2__

namespace mcbp::simd::detail {

const Kernels *
avx2Kernels()
{
    return nullptr;
}

} // namespace mcbp::simd::detail

#endif
