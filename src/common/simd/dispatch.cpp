/**
 * @file
 * Runtime tier resolution: CPUID (via __builtin_cpu_supports) clamped
 * by what this build could compile, clamped again by an optional
 * MCBP_SIMD override. Resolution happens once, on first kernels() use;
 * afterwards dispatch is a single relaxed atomic load plus the
 * indirect call through the chosen table.
 */
#include "common/simd/kernels_internal.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/env.hpp"

namespace mcbp::simd {

namespace {

std::atomic<const Kernels *> g_active{nullptr};

} // namespace

const char *
tierName(Tier t)
{
    switch (t) {
    case Tier::Avx512:
        return "avx512";
    case Tier::Avx2:
        return "avx2";
    default:
        return "scalar";
    }
}

bool
compiledAvx2()
{
    return detail::avx2Kernels() != nullptr;
}

bool
compiledAvx512()
{
    return detail::avx512Kernels() != nullptr;
}

Tier
detectCpuTier()
{
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw"))
        return Tier::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return Tier::Avx2;
#endif
    return Tier::Scalar;
}

Tier
availableTier()
{
    Tier t = detectCpuTier();
    if (t == Tier::Avx512 && !compiledAvx512())
        t = Tier::Avx2;
    if (t == Tier::Avx2 && !compiledAvx2())
        t = Tier::Scalar;
    return t;
}

Tier
resolveTier(const char *value, Tier available)
{
    if (value == nullptr)
        return available;
    Tier requested;
    if (std::strcmp(value, "scalar") == 0)
        requested = Tier::Scalar;
    else if (std::strcmp(value, "avx2") == 0)
        requested = Tier::Avx2;
    else if (std::strcmp(value, "avx512") == 0)
        requested = Tier::Avx512;
    else
        return available; // unknown override: ignore, never trust it
    return requested < available ? requested : available;
}

Tier
activeTier()
{
    static const Tier resolved =
        resolveTier(env::get("MCBP_SIMD"), availableTier());
    return resolved;
}

const Kernels &
kernelsFor(Tier t)
{
    const Tier best = availableTier();
    const Tier clamped = t < best ? t : best;
    if (clamped == Tier::Avx512)
        return *detail::avx512Kernels();
    if (clamped == Tier::Avx2)
        return *detail::avx2Kernels();
    return detail::scalarKernels();
}

const Kernels &
kernels()
{
    const Kernels *k = g_active.load(std::memory_order_acquire);
    if (k == nullptr) {
        // Benign race: every thread resolves to the same table.
        k = &kernelsFor(activeTier());
        g_active.store(k, std::memory_order_release);
    }
    return *k;
}

Tier
forceTier(Tier t)
{
    const Kernels &k = kernelsFor(t);
    g_active.store(&k, std::memory_order_release);
    return k.tier;
}

void
resetTier()
{
    g_active.store(&kernelsFor(activeTier()), std::memory_order_release);
}

} // namespace mcbp::simd
