#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace mcbp {

void
StatRegistry::add(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

std::uint64_t
StatRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool
StatRegistry::has(const std::string &name) const
{
    return counters_.find(name) != counters_.end();
}

void
StatRegistry::clear()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

void
StatRegistry::merge(const StatRegistry &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(counters_.size());
    for (const auto &kv : counters_)
        out.push_back(kv.first);
    return out;
}

std::string
StatRegistry::toString() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << kv.first << " = " << kv.second << "\n";
    return os.str();
}

void
RunningStat::observe(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++count_;
    sum_ += v;
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
percentile(std::vector<double> samples, double p)
{
    std::sort(samples.begin(), samples.end());
    return percentileSorted(samples, p);
}

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    fatalIf(sorted.empty(), "percentile of an empty sample set");
    fatalIf(p < 0.0 || p > 1.0, "percentile p must be in [0, 1]");
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace mcbp
