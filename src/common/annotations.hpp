/**
 * @file
 * Clang thread-safety annotations and the annotated lock primitives
 * the analysis needs to see.
 *
 * Every mutex-protected structure in the tree (ProfileCache,
 * PlanCache, the common/parallel pool, KvBlockManager) declares WHICH
 * data each lock guards via these macros, and the clang CI lane
 * compiles with `-Wthread-safety -Werror` so an unguarded access is a
 * build break, not a latent race. Under gcc (and any compiler without
 * the attributes) everything expands to nothing — zero overhead, same
 * semantics.
 *
 * std::mutex itself carries no capability attributes under libstdc++,
 * so the analysis cannot see through std::lock_guard. The annotated
 * wrappers below (Mutex / MutexLock / CondVar) are therefore the
 * canonical lock vocabulary for guarded state: Mutex is the
 * capability, MutexLock the scoped acquire, CondVar a
 * condition_variable_any that waits on the annotated Mutex directly.
 *
 * Convention: name the guarded relationship at the member, not in
 * prose — `std::uint64_t calls_ MCBP_GUARDED_BY(mutex_);` — and
 * annotate private helpers that expect the lock held with
 * MCBP_REQUIRES(mutex_). Use MCBP_NO_THREAD_SAFETY_ANALYSIS only with
 * a one-line justification comment.
 */
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define MCBP_TS_ATTR(x) __attribute__((x))
#else
#define MCBP_TS_ATTR(x) // no-op off clang
#endif

/** Marks a class as a lockable capability (mutex-like). */
#define MCBP_CAPABILITY(x) MCBP_TS_ATTR(capability(x))
/** Marks an RAII class that acquires in ctor / releases in dtor. */
#define MCBP_SCOPED_CAPABILITY MCBP_TS_ATTR(scoped_lockable)
/** Data member readable/writable only with @p x held. */
#define MCBP_GUARDED_BY(x) MCBP_TS_ATTR(guarded_by(x))
/** Pointer member whose pointee is guarded by @p x. */
#define MCBP_PT_GUARDED_BY(x) MCBP_TS_ATTR(pt_guarded_by(x))
/** Function that must be called with the capability held. */
#define MCBP_REQUIRES(...) MCBP_TS_ATTR(requires_capability(__VA_ARGS__))
/** Function that acquires the capability and returns holding it. */
#define MCBP_ACQUIRE(...) MCBP_TS_ATTR(acquire_capability(__VA_ARGS__))
/** Function that releases the held capability. */
#define MCBP_RELEASE(...) MCBP_TS_ATTR(release_capability(__VA_ARGS__))
/** Function that acquires only when returning @p first argument. */
#define MCBP_TRY_ACQUIRE(...) MCBP_TS_ATTR(try_acquire_capability(__VA_ARGS__))
/** Function that must NOT be called with the capability held. */
#define MCBP_EXCLUDES(...) MCBP_TS_ATTR(locks_excluded(__VA_ARGS__))
/** Function returning a reference to the named capability. */
#define MCBP_RETURN_CAPABILITY(x) MCBP_TS_ATTR(lock_returned(x))
/** Escape hatch; always pair with a justification comment. */
#define MCBP_NO_THREAD_SAFETY_ANALYSIS \
    MCBP_TS_ATTR(no_thread_safety_analysis)

namespace mcbp {

/**
 * std::mutex with the capability attribute the clang analysis keys
 * on. Same cost, same semantics; BasicLockable, so it also works
 * directly with condition_variable_any (see CondVar).
 */
class MCBP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() MCBP_ACQUIRE() { m_.lock(); }
    void unlock() MCBP_RELEASE() { m_.unlock(); }
    bool try_lock() MCBP_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    std::mutex m_;
};

/** Scoped lock over Mutex (the std::lock_guard the analysis can see). */
class MCBP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) MCBP_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() MCBP_RELEASE() { m_.unlock(); }
    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &m_;
};

/**
 * Condition variable over the annotated Mutex. wait() atomically
 * releases and reacquires the mutex internally; to the caller (and
 * the analysis) the lock is held before and after, hence REQUIRES.
 */
class CondVar
{
  public:
    /** Wait until @p pred; @p m must be held (it is released while
     *  blocked and reacquired before returning). Use only when the
     *  predicate touches no MCBP_GUARDED_BY state (e.g. atomics): a
     *  lambda body is analyzed without the caller's lock context. For
     *  guarded predicates write an explicit check/wait() loop instead. */
    template <typename Pred>
    void
    wait(Mutex &m, Pred pred) MCBP_REQUIRES(m)
    {
        cv_.wait(m, pred);
    }

    /** One blocking wait (wakes on notify or spuriously); the caller
     *  re-checks its condition in a loop under the held lock. */
    void
    wait(Mutex &m) MCBP_REQUIRES(m)
    {
        cv_.wait(m);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace mcbp
