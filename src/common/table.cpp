#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace mcbp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void
Table::addRow(std::vector<std::string> row)
{
    panicIf(row.size() != header_.size(),
            "table row arity mismatch: got " + std::to_string(row.size()) +
                " columns, expected " + std::to_string(header_.size()));
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };

    emit(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmt(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
fmtPct(double fraction, int decimals)
{
    return fmt(fraction * 100.0, decimals) + "%";
}

std::string
fmtX(double v, int decimals)
{
    return fmt(v, decimals) + "x";
}

} // namespace mcbp
