#include "common/bit_util.hpp"

namespace mcbp {

std::size_t
ipow(std::size_t b, unsigned e)
{
    std::size_t r = 1;
    while (e--)
        r *= b;
    return r;
}

std::string
toBinary(std::uint64_t v, unsigned width)
{
    std::string s(width, '0');
    for (unsigned i = 0; i < width; ++i) {
        if (bitAt(v, width - 1 - i))
            s[i] = '1';
    }
    return s;
}

} // namespace mcbp
