/**
 * @file
 * Lightweight statistics counters used by the functional engines and the
 * cycle-level simulator to account for operations, bytes and cycles.
 *
 * Counters are plain named uint64 accumulators grouped in a registry; the
 * benchmark harness prints them as the rows of the paper's tables. No
 * global state: each engine owns its registry.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcbp {

/** A named group of monotonically increasing counters. */
class StatRegistry
{
  public:
    /** Add @p delta to counter @p name (creates it at zero first). */
    void add(const std::string &name, std::uint64_t delta);

    /** Increment counter @p name by one. */
    void inc(const std::string &name) { add(name, 1); }

    /** Current value (zero if never touched). */
    std::uint64_t get(const std::string &name) const;

    /** True if the counter has been created. */
    bool has(const std::string &name) const;

    /** Reset all counters to zero (keeps names). */
    void clear();

    /** Merge another registry into this one (summing counters). */
    void merge(const StatRegistry &other);

    /** Stable (sorted) list of counter names. */
    std::vector<std::string> names() const;

    /** Render as "name = value" lines, for logs and debugging. */
    std::string toString() const;

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Simple accumulator for a stream of doubles: count / sum / min / max /
 * mean. Used for latency distributions and sparsity samples.
 */
class RunningStat
{
  public:
    void observe(double v);
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }
    double mean() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * The @p p-quantile (0 <= p <= 1) of @p samples by linear interpolation
 * between order statistics. fatal() on an empty sample set. Used for the
 * serving engine's latency percentiles.
 */
double percentile(std::vector<double> samples, double p);

/** percentile() for an already ascending-sorted sample set (no copy). */
double percentileSorted(const std::vector<double> &sorted, double p);

} // namespace mcbp
