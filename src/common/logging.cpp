#include "common/logging.hpp"

namespace mcbp {

void
fatal(const std::string &msg)
{
    throw std::runtime_error("mcbp fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw std::logic_error("mcbp panic: " + msg);
}

} // namespace mcbp
