/**
 * @file
 * Dense row-major matrix container used throughout the MCBP library.
 *
 * A deliberately small, allocation-owning container: the reproduction deals
 * with INT8 weight matrices, INT32 accumulators and FP32 references, so a
 * single templated type with bounds-checked access in debug builds is all
 * that is needed. No expression templates, no views with lifetimes to track.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace mcbp {

/**
 * Row-major dense matrix.
 *
 * @tparam T element type (int8_t, int32_t, float, ...).
 */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    /** Create a rows x cols matrix, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, T{})
    {
    }

    /** Create a rows x cols matrix filled with @p init. */
    Matrix(std::size_t rows, std::size_t cols, T init)
        : rows_(rows), cols_(cols), data_(rows * cols, init)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T &
    at(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    const T &
    at(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    T &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    const T &operator()(std::size_t r, std::size_t c) const { return at(r, c); }

    /** Pointer to the start of row @p r. */
    T *rowPtr(std::size_t r) { return data_.data() + r * cols_; }
    const T *rowPtr(std::size_t r) const { return data_.data() + r * cols_; }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    /** Apply @p fn to every element. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t r = 0; r < rows_; ++r)
            for (std::size_t c = 0; c < cols_; ++c)
                fn(r, c, at(r, c));
    }

    /** Fill every element from a generator fn(r, c) -> T. */
    template <typename Fn>
    void
    fill(Fn &&fn)
    {
        for (std::size_t r = 0; r < rows_; ++r)
            for (std::size_t c = 0; c < cols_; ++c)
                at(r, c) = fn(r, c);
    }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

    bool operator!=(const Matrix &other) const { return !(*this == other); }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

using Int8Matrix = Matrix<std::int8_t>;
using Int32Matrix = Matrix<std::int32_t>;
using FloatMatrix = Matrix<float>;

} // namespace mcbp
