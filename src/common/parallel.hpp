/**
 * @file
 * Deterministic data-parallel primitives for the host-side hot paths
 * (profiling fan-out, per-query attention profiling).
 *
 * The design rule is that parallelism must never change a number:
 * parallelFor(n, body) runs body(0..n-1) where each iteration may
 * depend only on its index, and parallelMap joins its results in index
 * order — so any reduction performed over the returned vector adds in
 * the same order as a serial loop and the output is bit-identical at
 * every thread count. Stochastic work must derive its RNG from the
 * index (e.g. profileAttention seeds query qi from seed ^ qi), never
 * from shared mutable state.
 *
 * One lazily-created global pool is shared by the whole process
 * (workers = MCBP_THREADS when set, else std::thread::hardware_
 * concurrency). Submitting threads always participate in their own
 * batch, so nested parallelFor calls — a pool worker fanning out again
 * — cannot deadlock: the inner caller drains its own batch even when
 * every worker is busy. Exceptions thrown by iterations are caught,
 * every remaining iteration still runs, and the exception of the
 * lowest-throwing index is rethrown to the submitter (again: which
 * error you see does not depend on timing).
 */
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace mcbp::parallel {

/**
 * Worker count of the global pool: the MCBP_THREADS environment
 * variable when set to a positive integer, else the hardware thread
 * count (always >= 1). Fixed at first use of the pool.
 */
std::size_t hardwareThreads();

/**
 * Run body(i) for every i in [0, n).
 *
 * @param threads concurrency cap: 0 = use the full global pool,
 *        1 = run serially inline on the calling thread (the
 *        bit-identity reference path), k > 1 = at most k threads
 *        (the caller plus k-1 pool workers) touch this batch.
 *
 * The calling thread always participates. Iterations may run in any
 * order and concurrently; body must only depend on i and on state it
 * owns. If one or more iterations throw, all others still run and the
 * exception of the lowest index is rethrown here.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
                 std::size_t threads = 0);

/**
 * Map i -> fn(i) over [0, n), returning results joined in index order.
 * T must be default-constructible. Same execution and exception
 * contract as parallelFor.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(std::size_t n, Fn &&fn, std::size_t threads = 0)
{
    std::vector<T> out(n);
    parallelFor(
        n, [&](std::size_t i) { out[i] = fn(i); }, threads);
    return out;
}

} // namespace mcbp::parallel
