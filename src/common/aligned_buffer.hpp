/**
 * @file
 * 64-byte-aligned, zero-padded flat buffer — the storage contract of the
 * SIMD plane-scan kernels (common/simd/).
 *
 * Every allocation starts on a 64-byte boundary and is padded up to a
 * whole number of 64-byte lines, with the padding kept all-zero. A
 * vector load that starts at any element index < size() therefore never
 * faults and never reads garbage: tail lanes see zeros, so kernels mask
 * tails arithmetically instead of branching into scalar epilogues.
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace mcbp::common {

template <typename T>
class AlignedBuffer
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "AlignedBuffer is raw storage for trivial types");

  public:
    /** Alignment and padding quantum, in bytes (one cache line). */
    static constexpr std::size_t kAlignment = 64;
    /** Elements per 64-byte line. */
    static constexpr std::size_t kLineElems = kAlignment / sizeof(T);

    AlignedBuffer() = default;

    /** @p n zero-initialized elements. */
    explicit AlignedBuffer(std::size_t n) { resize(n); }

    AlignedBuffer(const AlignedBuffer &other) { assignFrom(other); }

    AlignedBuffer(AlignedBuffer &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0)),
          padded_(std::exchange(other.padded_, 0))
    {
    }

    AlignedBuffer &
    operator=(const AlignedBuffer &other)
    {
        if (this != &other)
            assignFrom(other);
        return *this;
    }

    AlignedBuffer &
    operator=(AlignedBuffer &&other) noexcept
    {
        if (this != &other) {
            std::free(data_);
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
            padded_ = std::exchange(other.padded_, 0);
        }
        return *this;
    }

    ~AlignedBuffer() { std::free(data_); }

    /** Logical element count (allocation may be larger; see padded()). */
    std::size_t size() const { return size_; }

    /** Allocated elements: size() rounded up to a 64-byte line. */
    std::size_t padded() const { return padded_; }

    bool empty() const { return size_ == 0; }

    T *data() { return data_; }
    const T *data() const { return data_; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    /**
     * Grow or shrink to @p n elements. Existing elements up to
     * min(old, new) are preserved; everything beyond — including the
     * line padding — is zero. Growth reallocates amortized (capacity
     * doubles), so append-style callers (BitWriter) stay linear.
     */
    void
    resize(std::size_t n)
    {
        const std::size_t need = paddedCount(n);
        if (need > padded_) {
            const std::size_t cap = std::max(need, padded_ * 2);
            T *fresh = allocate(cap);
            if (size_ > 0)
                std::memcpy(fresh, data_, size_ * sizeof(T));
            std::free(data_);
            data_ = fresh;
            padded_ = cap;
        } else if (n < size_) {
            // Shrink: restore the all-zero invariant above n.
            std::memset(data_ + n, 0, (size_ - n) * sizeof(T));
        }
        size_ = n;
    }

    /** Set every element (and the padding) to zero bytes. */
    void
    clear()
    {
        if (data_ != nullptr)
            std::memset(data_, 0, padded_ * sizeof(T));
    }

    bool
    operator==(const AlignedBuffer &other) const
    {
        return size_ == other.size_ &&
               (size_ == 0 ||
                std::memcmp(data_, other.data_, size_ * sizeof(T)) == 0);
    }

  private:
    static std::size_t
    paddedCount(std::size_t n)
    {
        return (n + kLineElems - 1) / kLineElems * kLineElems;
    }

    static T *
    allocate(std::size_t padded_elems)
    {
        if (padded_elems == 0)
            return nullptr;
        void *p = std::aligned_alloc(kAlignment, padded_elems * sizeof(T));
        if (p == nullptr)
            throw std::bad_alloc();
        std::memset(p, 0, padded_elems * sizeof(T));
        return static_cast<T *>(p);
    }

    void
    assignFrom(const AlignedBuffer &other)
    {
        if (other.padded_ != padded_) {
            std::free(data_);
            data_ = allocate(other.padded_);
            padded_ = other.padded_;
        } else if (data_ != nullptr) {
            std::memset(data_, 0, padded_ * sizeof(T));
        }
        if (other.size_ > 0)
            std::memcpy(data_, other.data_, other.size_ * sizeof(T));
        size_ = other.size_;
    }

    T *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t padded_ = 0;
};

} // namespace mcbp::common
