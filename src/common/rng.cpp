#include "common/rng.hpp"

#include <cmath>

namespace mcbp {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    spare_ = mag * std::sin(two_pi * u2);
    haveSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::zipf(std::size_t n, double s)
{
    if (n == 0)
        return 0;
    // Inverse-CDF on the (truncated) harmonic weights. n here is at most a
    // few thousand (sequence lengths), so the linear scan is fine and keeps
    // the generator exactly reproducible.
    double norm = 0.0;
    for (std::size_t i = 1; i <= n; ++i)
        norm += 1.0 / std::pow(static_cast<double>(i), s);
    double u = uniform() * norm;
    double acc = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i), s);
        if (u <= acc)
            return i - 1;
    }
    return n - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd2b74407b1ce6e93ull);
}

} // namespace mcbp
