/**
 * @file
 * Small bit-manipulation helpers shared by the bit-slice, BRCR and BSTC
 * layers.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <string>

#include "common/simd/simd.hpp"

namespace mcbp {

/** Number of set bits in @p v. */
inline int
popcount64(std::uint64_t v)
{
    return std::popcount(v);
}

/** Extract bit @p pos (0 = LSB) of @p v. */
inline unsigned
bitAt(std::uint64_t v, unsigned pos)
{
    return static_cast<unsigned>((v >> pos) & 1u);
}

/** Ceiling division of two non-negative integers. */
inline std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

/** 2^e for small e, as size_t. */
inline std::size_t
pow2(unsigned e)
{
    return std::size_t{1} << e;
}

/** Integer power b^e (small arguments). */
std::size_t ipow(std::size_t b, unsigned e);

/**
 * Render the low @p width bits of @p v as a binary string, MSB first.
 * Used for debugging and the worked paper examples.
 */
std::string toBinary(std::uint64_t v, unsigned width);

// ---- Word-span helpers -----------------------------------------------------
//
// The shared seam between the bit-plane layers and the SIMD backend:
// bit_plane.cpp, sparsity.cpp, cam.cpp, brcr and the BSTC codec all used
// to hand-roll these loops; they now route through the dispatched
// kernels (common/simd/). Tiny spans stay inline and branch-free —
// an indirect call costs more than the loop it would replace.

/** Total set bits over @p n words. */
inline std::uint64_t
popcountSpan(const std::uint64_t *w, std::size_t n)
{
    if (n < 16) {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < n; ++i)
            total += static_cast<std::uint64_t>(std::popcount(w[i]));
        return total;
    }
    return simd::kernels().popcountWords(w, n);
}

/** OR-reduction over @p n words (any-set / density scans). */
inline std::uint64_t
orSpan(const std::uint64_t *w, std::size_t n)
{
    if (n < 16) {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < n; ++i)
            acc |= w[i];
        return acc;
    }
    return simd::kernels().orWords(w, n);
}

/** dst[i] = a[i] & b[i]; returns the popcount of the intersection. */
inline std::uint64_t
andPopcountSpan(std::uint64_t *dst, const std::uint64_t *a,
                const std::uint64_t *b, std::size_t n)
{
    if (n < 8) {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < n; ++i) {
            dst[i] = a[i] & b[i];
            total += static_cast<std::uint64_t>(std::popcount(dst[i]));
        }
        return total;
    }
    return simd::kernels().andPopcountWords(dst, a, b, n);
}

/** Exact equality of two @p n-word spans. */
inline bool
equalSpan(const std::uint64_t *a, const std::uint64_t *b, std::size_t n)
{
    if (n < 8) {
        for (std::size_t i = 0; i < n; ++i)
            if (a[i] != b[i])
                return false;
        return true;
    }
    return simd::kernels().equalWords(a, b, n);
}

/** Zero entries among @p n 32-bit pattern slots. */
inline std::size_t
countZero32Span(const std::uint32_t *v, std::size_t n)
{
    if (n < 32) {
        std::size_t zeros = 0;
        for (std::size_t i = 0; i < n; ++i)
            if (v[i] == 0)
                ++zeros;
        return zeros;
    }
    return simd::kernels().countZero32(v, n);
}

/**
 * Bitmask of non-zero pattern slots: bit (i & 63) of mask[i >> 6] set
 * iff v[i] != 0; writes ceil(n / 64) words, trailing bits zero.
 */
inline void
nonzeroMask32Span(const std::uint32_t *v, std::size_t n,
                  std::uint64_t *mask)
{
    simd::kernels().nonzeroMask32(v, n, mask);
}

/** Magnitude of an int8 in sign-magnitude encoding (|-128| clamps to 127). */
inline std::uint8_t
int8Magnitude(std::int8_t v)
{
    int m = v < 0 ? -static_cast<int>(v) : static_cast<int>(v);
    if (m > 127)
        m = 127;
    return static_cast<std::uint8_t>(m);
}

} // namespace mcbp
