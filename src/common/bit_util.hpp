/**
 * @file
 * Small bit-manipulation helpers shared by the bit-slice, BRCR and BSTC
 * layers.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <string>

namespace mcbp {

/** Number of set bits in @p v. */
inline int
popcount64(std::uint64_t v)
{
    return std::popcount(v);
}

/** Extract bit @p pos (0 = LSB) of @p v. */
inline unsigned
bitAt(std::uint64_t v, unsigned pos)
{
    return static_cast<unsigned>((v >> pos) & 1u);
}

/** Ceiling division of two non-negative integers. */
inline std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

/** 2^e for small e, as size_t. */
inline std::size_t
pow2(unsigned e)
{
    return std::size_t{1} << e;
}

/** Integer power b^e (small arguments). */
std::size_t ipow(std::size_t b, unsigned e);

/**
 * Render the low @p width bits of @p v as a binary string, MSB first.
 * Used for debugging and the worked paper examples.
 */
std::string toBinary(std::uint64_t v, unsigned width);

/** Magnitude of an int8 in sign-magnitude encoding (|-128| clamps to 127). */
inline std::uint8_t
int8Magnitude(std::int8_t v)
{
    int m = v < 0 ? -static_cast<int>(v) : static_cast<int>(v);
    if (m > 127)
        m = 127;
    return static_cast<std::uint8_t>(m);
}

} // namespace mcbp
