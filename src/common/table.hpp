/**
 * @file
 * Console table and CSV emitters used by the benchmark harness to print
 * the paper's tables and figure series in a readable, diffable form.
 */
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mcbp {

/**
 * Accumulates rows of strings and prints them column-aligned.
 *
 * Typical use in a bench binary:
 * @code
 *   Table t({"Model", "Speedup", "Energy"});
 *   t.addRow({"Llama7B", fmt(8.7), fmt(31.1)});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render with padded columns and a separator under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV (no padding). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals fraction digits. */
std::string fmt(double v, int decimals = 2);

/** Format a value as a percentage string, e.g. 0.724 -> "72.4%". */
std::string fmtPct(double fraction, int decimals = 1);

/** Format with an 'x' multiplier suffix, e.g. 5.1 -> "5.1x". */
std::string fmtX(double v, int decimals = 2);

} // namespace mcbp
