/**
 * @file
 * Minimal logging / error-reporting helpers, in the spirit of gem5's
 * fatal()/panic() split:
 *
 *  - fatal(): the caller (user / configuration) asked for something the
 *    library cannot do -> throws std::runtime_error with the message.
 *  - panicIf(): an internal invariant was violated -> throws
 *    std::logic_error. Tests exercise these paths directly.
 */
#pragma once

#include <stdexcept>
#include <string>

namespace mcbp {

/** Throw std::runtime_error for user-level configuration errors. */
[[noreturn]] void fatal(const std::string &msg);

/** Throw std::logic_error: an internal invariant was violated. */
[[noreturn]] void panic(const std::string &msg);

/** panic() when @p cond is true. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** fatal() when @p cond is true. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace mcbp
