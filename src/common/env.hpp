/**
 * @file
 * Central registry of every MCBP_* environment knob.
 *
 * The determinism contracts this codebase enforces (bit-identical
 * parallel costing, coalesced-vs-per-token decision identity,
 * stream-separated fault RNG) all depend on knowing exactly which
 * outside state can influence a run. Environment variables are the
 * only such state we accept, so every read goes through this one
 * registry: env::get() is the single std::getenv call site in the
 * tree (enforced by the `stray-getenv` rule of tools/lint/mcbp_lint),
 * and every knob must be declared in knobs() with its default and
 * consumer before get() will return it — an unregistered name is a
 * fatal() programming error, not a silent nullptr.
 *
 * `example_serving --env` prints the table below, so the deployment
 * surface is discoverable without grepping the sources.
 */
#pragma once

#include <string>
#include <vector>

namespace mcbp::env {

/** One documented environment knob. */
struct Knob
{
    /** Variable name, e.g. "MCBP_THREADS". */
    const char *name;
    /** Human-readable default when the variable is unset. */
    const char *defaultValue;
    /** The subsystem that reads it (file or component). */
    const char *consumer;
    /** One-line meaning, including the accepted values. */
    const char *meaning;
};

/** The full knob table, sorted by name. Append here before calling
 *  get() on a new variable; the table is the documentation of record
 *  (printed by `example_serving --env` and the README). */
const std::vector<Knob> &knobs();

/**
 * Value of the registered knob @p name, or nullptr when unset — the
 * only place in the tree that may call std::getenv. fatal() if @p name
 * is not declared in knobs(), so the table can never go stale.
 */
const char *get(const char *name);

/** True when @p name is declared in knobs(). */
bool isRegistered(const char *name);

/** The table rendered as aligned text lines (for --env flags). */
std::string describeKnobs();

} // namespace mcbp::env
