#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "common/annotations.hpp"
#include "common/env.hpp"

namespace mcbp::parallel {

namespace {

/**
 * One parallelFor invocation. Indices are claimed with an atomic
 * cursor; the submitter and up to helperCap pool workers execute them.
 * finished counts completed iterations so the submitter can block
 * until the last in-flight body returns (claim exhaustion alone is not
 * enough: another thread may still be inside body).
 */
struct Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *body = nullptr;
    std::size_t helperCap = 0; ///< Pool workers allowed in (guarded).
    std::size_t helpers = 0;   ///< Pool workers admitted (guarded).

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};

    Mutex mutex;
    CondVar done;
    /** Lowest-index exception wins, independent of thread timing. */
    std::size_t errorIndex MCBP_GUARDED_BY(mutex) =
        std::numeric_limits<std::size_t>::max();
    std::exception_ptr error MCBP_GUARDED_BY(mutex);

    bool
    exhausted() const
    {
        return next.load(std::memory_order_relaxed) >= n;
    }

    /** Claim-and-run loop shared by submitter and workers. */
    void
    help()
    {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                (*body)(i);
            } catch (...) {
                MutexLock lock(mutex);
                if (i < errorIndex) {
                    errorIndex = i;
                    error = std::current_exception();
                }
            }
            if (finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n) {
                // Lock pairs with the submitter's predicate check so
                // the final notify cannot slip into its wait window.
                MutexLock lock(mutex);
                done.notify_all();
            }
        }
    }
};

/**
 * Fixed-size worker pool. Workers sleep until a batch with free claims
 * and a free helper slot exists; submitters never sleep while their
 * own batch has unclaimed work.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(std::size_t threads)
    {
        workers_.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            MutexLock lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }

    std::size_t threadCount() const { return workers_.size(); }

    void
    run(std::size_t n, const std::function<void(std::size_t)> &body,
        std::size_t helperCap)
    {
        auto batch = std::make_shared<Batch>();
        batch->n = n;
        batch->body = &body;
        batch->helperCap = helperCap;
        {
            MutexLock lock(mutex_);
            batches_.push_back(batch);
        }
        wake_.notify_all();

        batch->help(); // The submitter always works its own batch.
        std::exception_ptr error;
        {
            MutexLock lock(batch->mutex);
            // The predicate reads only the atomic completion counter,
            // so the guarded members stay behind this lock.
            batch->done.wait(batch->mutex, [&] {
                return batch->finished.load(
                           std::memory_order_acquire) == batch->n;
            });
            error = batch->error;
        }
        {
            MutexLock lock(mutex_);
            std::erase(batches_, batch);
        }
        if (error)
            std::rethrow_exception(error);
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::shared_ptr<Batch> batch;
            {
                // Explicit wait loop (not a predicate lambda): the
                // thread-safety analysis then sees every access to
                // stop_/batches_ inside the MutexLock scope.
                MutexLock lock(mutex_);
                for (;;) {
                    if (stop_)
                        return;
                    if ((batch = claimable()) != nullptr)
                        break;
                    wake_.wait(mutex_); // re-check after every wake
                }
                ++batch->helpers; // Admitted under the pool lock.
            }
            batch->help();
            {
                MutexLock lock(mutex_);
                --batch->helpers;
            }
            // Loop around: another batch may have work (no wait if the
            // predicate is already true).
        }
    }

    /** A batch with unclaimed work and a free helper slot (guarded). */
    std::shared_ptr<Batch>
    claimable() const MCBP_REQUIRES(mutex_)
    {
        for (const auto &b : batches_)
            if (!b->exhausted() && b->helpers < b->helperCap)
                return b;
        return nullptr;
    }

    mutable Mutex mutex_;
    CondVar wake_;
    std::vector<std::shared_ptr<Batch>> batches_ MCBP_GUARDED_BY(mutex_);
    bool stop_ MCBP_GUARDED_BY(mutex_) = false;
    std::vector<std::thread> workers_;
};

ThreadPool &
globalPool()
{
    static ThreadPool pool(hardwareThreads());
    return pool;
}

} // namespace

std::size_t
hardwareThreads()
{
    static const std::size_t count = [] {
        if (const char *env = env::get("MCBP_THREADS")) {
            char *end = nullptr;
            const unsigned long v = std::strtoul(env, &end, 10);
            if (end != env && *end == '\0' && v >= 1)
                return static_cast<std::size_t>(v);
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hw >= 1 ? hw : 1);
    }();
    return count;
}

namespace {

/** Inline serial execution with the same contract as the pool path:
 *  every iteration runs, the lowest-index exception is rethrown. */
void
serialFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
        try {
            body(i);
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
            std::size_t threads)
{
    if (n == 0)
        return;
    if (n == 1 || threads == 1) {
        serialFor(n, body);
        return;
    }
    ThreadPool &pool = globalPool();
    const std::size_t cap =
        threads == 0 ? pool.threadCount() : threads - 1;
    if (cap == 0) {
        serialFor(n, body);
        return;
    }
    pool.run(n, body, cap);
}

} // namespace mcbp::parallel
