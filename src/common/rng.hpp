/**
 * @file
 * Deterministic random number generation for the MCBP reproduction.
 *
 * Every stochastic component (synthetic weights, activations, attention
 * skew) draws from an explicitly seeded Rng so that all benchmark tables are
 * reproducible run-to-run and across platforms. The core generator is
 * xoshiro256** seeded through SplitMix64, which is portable (unlike
 * std::normal_distribution, whose output is implementation-defined).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace mcbp {

/** Portable, explicitly-seeded pseudo-random generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller (portable across stdlibs). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with probability @p p of true. */
    bool bernoulli(double p);

    /**
     * Draw from a Zipf-like distribution over [0, n) with exponent @p s.
     * Used to synthesize attention-score concentration (a few keys receive
     * most of the attention mass, as observed in LLMs).
     */
    std::size_t zipf(std::size_t n, double s);

    /** Split off an independent child generator (stable derivation). */
    Rng split();

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace mcbp
