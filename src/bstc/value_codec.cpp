#include "bstc/value_codec.hpp"

#include <algorithm>
#include <array>
#include <queue>

#include "common/logging.hpp"

namespace mcbp::bstc {

namespace {

constexpr std::size_t kAlphabet = 256;

std::uint8_t
toSymbol(std::int8_t v)
{
    return static_cast<std::uint8_t>(v);
}

std::int8_t
fromSymbol(std::uint8_t s)
{
    return static_cast<std::int8_t>(s);
}

} // namespace

ValueCompressed
rleEncode(const Int8Matrix &w)
{
    BitWriter writer;
    std::size_t run = 0;
    auto flush_run = [&]() {
        while (run > 0) {
            const std::size_t chunk = std::min<std::size_t>(run, 16);
            writer.putBit(false);
            writer.putBits(static_cast<std::uint32_t>(chunk - 1), 4);
            run -= chunk;
        }
    };
    for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c) {
            const std::int8_t v = w.at(r, c);
            if (v == 0) {
                ++run;
            } else {
                flush_run();
                writer.putBit(true);
                writer.putBits(toSymbol(v), 8);
            }
        }
    }
    flush_run();
    ValueCompressed blob;
    blob.bitCount = writer.bitCount();
    blob.data = writer.takeWords();
    blob.rows = w.rows();
    blob.cols = w.cols();
    return blob;
}

Int8Matrix
rleDecode(const ValueCompressed &blob)
{
    Int8Matrix w(blob.rows, blob.cols);
    BitReader reader(blob.data, blob.bitCount);
    std::size_t idx = 0;
    const std::size_t total = blob.rows * blob.cols;
    while (idx < total) {
        if (reader.getBit()) {
            const std::uint8_t sym =
                static_cast<std::uint8_t>(reader.getBits(8));
            w.at(idx / blob.cols, idx % blob.cols) = fromSymbol(sym);
            ++idx;
        } else {
            const std::size_t run = reader.getBits(4) + 1;
            panicIf(idx + run > total, "RLE run overflows matrix");
            idx += run; // zeros are already in place
        }
    }
    return w;
}

namespace {

/** Huffman code lengths for the 256-symbol alphabet (0 = unused). */
std::array<std::uint8_t, kAlphabet>
huffmanLengths(const std::array<std::uint64_t, kAlphabet> &freq)
{
    struct Node
    {
        std::uint64_t weight;
        int index; // < 256: leaf symbol; >= 256: internal node id.
    };
    struct Cmp
    {
        bool
        operator()(const Node &a, const Node &b) const
        {
            if (a.weight != b.weight)
                return a.weight > b.weight;
            return a.index > b.index; // deterministic tie-break
        }
    };
    std::priority_queue<Node, std::vector<Node>, Cmp> heap;
    std::vector<std::pair<int, int>> children; // internal node children
    for (std::size_t s = 0; s < kAlphabet; ++s) {
        if (freq[s] > 0)
            heap.push({freq[s], static_cast<int>(s)});
    }
    std::array<std::uint8_t, kAlphabet> lengths{};
    if (heap.empty())
        return lengths;
    if (heap.size() == 1) {
        lengths[static_cast<std::size_t>(heap.top().index)] = 1;
        return lengths;
    }
    while (heap.size() > 1) {
        Node a = heap.top();
        heap.pop();
        Node b = heap.top();
        heap.pop();
        const int id = static_cast<int>(kAlphabet + children.size());
        children.emplace_back(a.index, b.index);
        heap.push({a.weight + b.weight, id});
    }
    // Depth-first depth assignment from the root.
    std::vector<std::pair<int, int>> stack{{heap.top().index, 0}};
    while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        if (idx < static_cast<int>(kAlphabet)) {
            lengths[static_cast<std::size_t>(idx)] =
                static_cast<std::uint8_t>(depth);
        } else {
            const auto &[l, r] =
                children[static_cast<std::size_t>(idx) - kAlphabet];
            stack.push_back({l, depth + 1});
            stack.push_back({r, depth + 1});
        }
    }
    return lengths;
}

/** Canonical code assignment: symbols ordered by (length, symbol). */
struct CanonicalCode
{
    std::array<std::uint32_t, kAlphabet> code{};
    std::array<std::uint8_t, kAlphabet> length{};
    std::uint8_t maxLen = 0;
    // Decoding tables.
    std::array<std::uint32_t, 64> firstCode{};
    std::array<std::uint32_t, 64> countAtLen{};
    std::array<std::uint32_t, 64> offsetAtLen{};
    std::vector<std::uint8_t> symbolsSorted;
};

CanonicalCode
buildCanonical(const std::array<std::uint8_t, kAlphabet> &lengths)
{
    CanonicalCode cc;
    cc.length = lengths;
    std::vector<std::uint16_t> order;
    for (std::size_t s = 0; s < kAlphabet; ++s) {
        if (lengths[s] > 0) {
            order.push_back(static_cast<std::uint16_t>(s));
            cc.maxLen = std::max(cc.maxLen, lengths[s]);
        }
    }
    panicIf(cc.maxLen >= 64, "Huffman code length overflow");
    std::sort(order.begin(), order.end(),
              [&](std::uint16_t a, std::uint16_t b) {
                  if (lengths[a] != lengths[b])
                      return lengths[a] < lengths[b];
                  return a < b;
              });
    std::uint32_t code = 0;
    std::uint8_t prev_len = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
        const std::uint16_t s = order[i];
        code <<= (lengths[s] - prev_len);
        cc.code[s] = code;
        prev_len = lengths[s];
        ++code;
    }
    // Decoding tables per length.
    cc.symbolsSorted.assign(order.begin(), order.end());
    std::uint32_t offset = 0;
    for (std::uint8_t len = 1; len <= cc.maxLen; ++len) {
        std::uint32_t count = 0;
        std::uint32_t first = 0;
        bool seen = false;
        for (std::uint16_t s : order) {
            if (lengths[s] == len) {
                if (!seen) {
                    first = cc.code[s];
                    seen = true;
                }
                ++count;
            }
        }
        cc.firstCode[len] = first;
        cc.countAtLen[len] = count;
        cc.offsetAtLen[len] = offset;
        offset += count;
    }
    return cc;
}

} // namespace

ValueCompressed
huffmanEncode(const Int8Matrix &w)
{
    fatalIf(w.empty(), "cannot compress an empty matrix");
    std::array<std::uint64_t, kAlphabet> freq{};
    w.forEach([&](std::size_t, std::size_t, std::int8_t v) {
        ++freq[toSymbol(v)];
    });
    const auto lengths = huffmanLengths(freq);
    CanonicalCode cc = buildCanonical(lengths);

    BitWriter writer;
    // Header: 256 x 6-bit code lengths.
    for (std::size_t s = 0; s < kAlphabet; ++s)
        writer.putBits(lengths[s], 6);
    // Body: canonical codes, MSB-first.
    w.forEach([&](std::size_t, std::size_t, std::int8_t v) {
        const std::uint8_t s = toSymbol(v);
        const std::uint8_t len = cc.length[s];
        for (int b = len - 1; b >= 0; --b)
            writer.putBit((cc.code[s] >> b) & 1u);
    });
    ValueCompressed blob;
    blob.bitCount = writer.bitCount();
    blob.data = writer.takeWords();
    blob.rows = w.rows();
    blob.cols = w.cols();
    return blob;
}

Int8Matrix
huffmanDecode(const ValueCompressed &blob)
{
    BitReader reader(blob.data, blob.bitCount);
    std::array<std::uint8_t, kAlphabet> lengths{};
    for (std::size_t s = 0; s < kAlphabet; ++s)
        lengths[s] = static_cast<std::uint8_t>(reader.getBits(6));
    CanonicalCode cc = buildCanonical(lengths);

    Int8Matrix w(blob.rows, blob.cols);
    const std::size_t total = blob.rows * blob.cols;
    for (std::size_t idx = 0; idx < total; ++idx) {
        std::uint32_t code = 0;
        std::uint8_t len = 0;
        for (;;) {
            code = (code << 1) | static_cast<std::uint32_t>(
                                     reader.getBit());
            ++len;
            panicIf(len > cc.maxLen, "corrupt Huffman stream");
            if (cc.countAtLen[len] > 0 &&
                code >= cc.firstCode[len] &&
                code - cc.firstCode[len] < cc.countAtLen[len]) {
                const std::uint32_t pos =
                    cc.offsetAtLen[len] + (code - cc.firstCode[len]);
                w.at(idx / blob.cols, idx % blob.cols) =
                    fromSymbol(cc.symbolsSorted[pos]);
                break;
            }
        }
    }
    return w;
}

double
valueCompressionRatio(const ValueCompressed &blob)
{
    if (blob.bitCount == 0)
        return 1.0;
    return 8.0 * static_cast<double>(blob.rows) *
           static_cast<double>(blob.cols) /
           static_cast<double>(blob.bitCount);
}

} // namespace mcbp::bstc
