/**
 * @file
 * Value-level compression baselines (EIE / Deep-Compression style) that
 * the paper's ablation baseline and FuseKNA comparisons assume: a
 * zero-run-length code and a canonical Huffman code over INT8 values.
 *
 * These exist to ground the "value-level compression achieves only ~30%
 * of the bit-level sparsity benefit" claim (Fig 5(c), section 2.3) in a
 * real codec rather than an assumed ratio: the benches measure the
 * actual compressed size of the same weights BSTC compresses.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "bstc/bitstream.hpp"
#include "common/aligned_buffer.hpp"
#include "common/matrix.hpp"

namespace mcbp::bstc {

/** A compressed value-level weight blob. */
struct ValueCompressed
{
    /** Packed stream, LSB-first 64-bit words (64B-aligned, zero tail). */
    common::AlignedBuffer<std::uint64_t> data;
    std::uint64_t bitCount = 0;
    std::size_t rows = 0;
    std::size_t cols = 0;
};

/**
 * Zero-run-length coding: each symbol is {1'b0, 4-bit run length} for a
 * run of up to 16 zeros, or {1'b1, 8-bit value} for a non-zero value.
 * Lossless for any INT8 matrix.
 */
ValueCompressed rleEncode(const Int8Matrix &w);

/** Inverse of rleEncode (exact). */
Int8Matrix rleDecode(const ValueCompressed &blob);

/**
 * Canonical Huffman coding over the INT8 value alphabet, with the code
 * table (canonical lengths) stored in the blob. Lossless.
 */
ValueCompressed huffmanEncode(const Int8Matrix &w);

/** Inverse of huffmanEncode (exact). */
Int8Matrix huffmanDecode(const ValueCompressed &blob);

/** Compression ratio of a blob: 8 * rows * cols / bitCount. */
double valueCompressionRatio(const ValueCompressed &blob);

} // namespace mcbp::bstc
