#include "bstc/plane_policy.hpp"

#include "common/logging.hpp"

namespace mcbp::bstc {

std::size_t
PlanePolicy::compressedCount() const
{
    std::size_t n = 0;
    for (std::uint8_t b : compress)
        if (b != 0)
            ++n;
    return n;
}

PlanePolicy
paperDefaultPolicy(std::size_t plane_count)
{
    PlanePolicy policy;
    policy.compress.assign(plane_count, 0);
    if (plane_count >= 7) {
        // INT8: compress planes 3..7 (indices 2..6).
        for (std::size_t p = 2; p < 7; ++p)
            policy.compress[p] = 1;
    } else if (plane_count >= 3) {
        // INT4: only the MSB magnitude plane is sparse enough.
        policy.compress[plane_count - 1] = 1;
    }
    return policy;
}

PlanePolicy
adaptivePolicy(const bitslice::SparsityReport &report, double threshold)
{
    fatalIf(threshold <= 0.0 || threshold >= 1.0,
            "sparsity threshold must be in (0, 1)");
    PlanePolicy policy;
    policy.compress.reserve(report.planeSparsity.size());
    for (double sr : report.planeSparsity)
        policy.compress.push_back(sr > threshold ? 1 : 0);
    return policy;
}

} // namespace mcbp::bstc
