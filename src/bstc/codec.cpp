#include "bstc/codec.hpp"

#include <bit>
#include <cmath>

#include "common/logging.hpp"

namespace mcbp::bstc {

CodecStats
encodeGroup(const bitslice::BitPlane &plane, std::size_t row0,
            std::size_t m, BitWriter &out)
{
    fatalIf(m == 0 || m > 16, "BSTC group size must be in [1, 16]");
    CodecStats stats;
    const std::size_t last = std::min(row0 + m, plane.rows());
    const unsigned mbits = static_cast<unsigned>(m);

    // Consume the packed words directly: one word per group row covers
    // 64 columns, and runs of zero columns — the overwhelming majority
    // on the high-magnitude planes — become a single cursor advance
    // (putZeroBits) instead of 64 putBit calls. Stream bits and symbol
    // counts are identical to the per-column reference encoding.
    for (std::size_t word = 0; word < plane.wordsPerRow(); ++word) {
        const std::size_t col0 = word << 6;
        const std::size_t width =
            std::min<std::size_t>(64, plane.cols() - col0);

        std::uint64_t rowWords[16];
        std::uint64_t any = 0;
        std::size_t nrows = 0;
        for (std::size_t r = row0; r < last; ++r) {
            const std::uint64_t w = plane.rowWord(r, word);
            rowWords[nrows++] = w;
            any |= w;
        }

        // Bits at or beyond cols() are zero by the storage contract, so
        // `any` never points past `width`.
        std::size_t prev = 0;
        while (any != 0) {
            const std::size_t c =
                static_cast<std::size_t>(std::countr_zero(any));
            any &= any - 1;
            out.putZeroBits(c - prev);
            stats.zeroSymbols += c - prev;
            std::uint32_t p = 0;
            for (std::size_t r = 0; r < nrows; ++r)
                p |= static_cast<std::uint32_t>((rowWords[r] >> c) & 1u)
                     << r;
            out.putBit(true);
            out.putBits(p, mbits);
            ++stats.nonZeroSymbols;
            prev = c + 1;
        }
        out.putZeroBits(width - prev);
        stats.zeroSymbols += width - prev;
    }
    return stats;
}

CodecStats
encodePlane(const bitslice::BitPlane &plane, std::size_t m, BitWriter &out)
{
    CodecStats stats;
    for (std::size_t row0 = 0; row0 < plane.rows(); row0 += m) {
        CodecStats s = encodeGroup(plane, row0, m, out);
        stats.zeroSymbols += s.zeroSymbols;
        stats.nonZeroSymbols += s.nonZeroSymbols;
    }
    return stats;
}

std::vector<std::uint32_t>
decodeColumns(BitReader &in, std::size_t m, std::size_t num_columns,
              CodecStats *stats)
{
    std::vector<std::uint32_t> out(num_columns, 0);
    for (std::size_t c = 0; c < num_columns; ++c) {
        if (in.getBit()) {
            out[c] = in.getBits(static_cast<unsigned>(m));
            if (stats)
                ++stats->nonZeroSymbols;
        } else {
            if (stats)
                ++stats->zeroSymbols;
        }
    }
    return out;
}

bitslice::BitPlane
decodePlane(BitReader &in, std::size_t m, std::size_t rows,
            std::size_t cols, CodecStats *stats)
{
    bitslice::BitPlane plane(rows, cols);
    for (std::size_t row0 = 0; row0 < rows; row0 += m) {
        const std::size_t rows_here = std::min(m, rows - row0);
        std::vector<std::uint32_t> patterns =
            decodeColumns(in, m, cols, stats);
        for (std::size_t c = 0; c < cols; ++c) {
            const std::uint32_t p = patterns[c];
            if (p == 0)
                continue;
            for (std::size_t i = 0; i < rows_here; ++i) {
                if ((p >> i) & 1u)
                    plane.set(row0 + i, c, true);
            }
        }
    }
    return plane;
}

double
analyticCompressionRatio(double sr, std::size_t m)
{
    fatalIf(m == 0, "group size must be positive");
    const double md = static_cast<double>(m);
    const double p_zero = std::pow(sr, md);
    return md / (p_zero + (1.0 - p_zero) * (md + 1.0));
}

double
measuredCompressionRatio(const bitslice::BitPlane &plane, std::size_t m)
{
    BitWriter w;
    encodePlane(plane, m, w);
    const double original =
        static_cast<double>(plane.rows()) * static_cast<double>(plane.cols());
    return w.bitCount() == 0 ? 1.0
                             : original / static_cast<double>(w.bitCount());
}

} // namespace mcbp::bstc
