#include "bstc/codec.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace mcbp::bstc {

CodecStats
encodeGroup(const bitslice::BitPlane &plane, std::size_t row0,
            std::size_t m, BitWriter &out)
{
    fatalIf(m == 0 || m > 16, "BSTC group size must be in [1, 16]");
    CodecStats stats;
    std::vector<std::uint32_t> patterns;
    plane.columnPatterns(row0, m, patterns);
    for (std::uint32_t p : patterns) {
        if (p == 0) {
            out.putBit(false);
            ++stats.zeroSymbols;
        } else {
            out.putBit(true);
            out.putBits(p, static_cast<unsigned>(m));
            ++stats.nonZeroSymbols;
        }
    }
    return stats;
}

CodecStats
encodePlane(const bitslice::BitPlane &plane, std::size_t m, BitWriter &out)
{
    CodecStats stats;
    for (std::size_t row0 = 0; row0 < plane.rows(); row0 += m) {
        CodecStats s = encodeGroup(plane, row0, m, out);
        stats.zeroSymbols += s.zeroSymbols;
        stats.nonZeroSymbols += s.nonZeroSymbols;
    }
    return stats;
}

std::vector<std::uint32_t>
decodeColumns(BitReader &in, std::size_t m, std::size_t num_columns,
              CodecStats *stats)
{
    std::vector<std::uint32_t> out(num_columns, 0);
    for (std::size_t c = 0; c < num_columns; ++c) {
        if (in.getBit()) {
            out[c] = in.getBits(static_cast<unsigned>(m));
            if (stats)
                ++stats->nonZeroSymbols;
        } else {
            if (stats)
                ++stats->zeroSymbols;
        }
    }
    return out;
}

bitslice::BitPlane
decodePlane(BitReader &in, std::size_t m, std::size_t rows,
            std::size_t cols, CodecStats *stats)
{
    bitslice::BitPlane plane(rows, cols);
    for (std::size_t row0 = 0; row0 < rows; row0 += m) {
        const std::size_t rows_here = std::min(m, rows - row0);
        std::vector<std::uint32_t> patterns =
            decodeColumns(in, m, cols, stats);
        for (std::size_t c = 0; c < cols; ++c) {
            const std::uint32_t p = patterns[c];
            if (p == 0)
                continue;
            for (std::size_t i = 0; i < rows_here; ++i) {
                if ((p >> i) & 1u)
                    plane.set(row0 + i, c, true);
            }
        }
    }
    return plane;
}

double
analyticCompressionRatio(double sr, std::size_t m)
{
    fatalIf(m == 0, "group size must be positive");
    const double md = static_cast<double>(m);
    const double p_zero = std::pow(sr, md);
    return md / (p_zero + (1.0 - p_zero) * (md + 1.0));
}

double
measuredCompressionRatio(const bitslice::BitPlane &plane, std::size_t m)
{
    BitWriter w;
    encodePlane(plane, m, w);
    const double original =
        static_cast<double>(plane.rows()) * static_cast<double>(plane.cols());
    return w.bitCount() == 0 ? 1.0
                             : original / static_cast<double>(w.bitCount());
}

} // namespace mcbp::bstc
