/**
 * @file
 * BSTC two-state encoder / decoder (paper section 3.2, Fig 8a / Fig 15).
 *
 * Encoding unit: the m-bit column vector of a bit-slice plane (the same
 * granularity as the BRCR group, so decompressed data feeds the CAM with
 * no reordering). Two states:
 *
 *   all-zero column     -> 1'b0
 *   non-zero column v   -> {1'b1, m bits of v}
 *
 * Lossless; the encoder is the 4-bit comparator + MUX of Fig 15(a), the
 * decoder the 1-bit comparator + (m+1)-bit SIPO + leading-one eliminator
 * of Fig 15(b). Both are modeled functionally with exact symbol-count
 * accounting so the simulator can charge cycles (one symbol per cycle per
 * lane).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "bitslice/bit_plane.hpp"
#include "bstc/bitstream.hpp"

namespace mcbp::bstc {

/** Symbol statistics of one encode/decode pass. */
struct CodecStats
{
    std::uint64_t zeroSymbols = 0;    ///< 1-bit '0' symbols.
    std::uint64_t nonZeroSymbols = 0; ///< (m+1)-bit symbols.
    std::uint64_t
    totalSymbols() const
    {
        return zeroSymbols + nonZeroSymbols;
    }
};

/**
 * Encode one m-row group of @p plane (rows [row0, row0+m)) into @p out.
 * Columns are emitted in order; each becomes one symbol.
 */
CodecStats encodeGroup(const bitslice::BitPlane &plane, std::size_t row0,
                       std::size_t m, BitWriter &out);

/**
 * Encode a whole plane group-by-group (row groups of @p m).
 * @returns aggregate symbol stats.
 */
CodecStats encodePlane(const bitslice::BitPlane &plane, std::size_t m,
                       BitWriter &out);

/**
 * Decode @p num_columns symbols of group width @p m from @p in, returning
 * the column patterns (low m bits each).
 */
std::vector<std::uint32_t> decodeColumns(BitReader &in, std::size_t m,
                                         std::size_t num_columns,
                                         CodecStats *stats = nullptr);

/**
 * Decode a full plane previously produced by encodePlane().
 * @param rows total plane rows (must equal the encoder's).
 */
bitslice::BitPlane decodePlane(BitReader &in, std::size_t m,
                               std::size_t rows, std::size_t cols,
                               CodecStats *stats = nullptr);

/**
 * Analytic compression ratio of BSTC for i.i.d. plane bits of sparsity
 * @p sr and group size @p m (Fig 8b):
 *     CR(m) = m / (sr^m * 1 + (1 - sr^m) * (m + 1)).
 */
double analyticCompressionRatio(double sr, std::size_t m);

/** Measured compression ratio: original bits / encoded bits. */
double measuredCompressionRatio(const bitslice::BitPlane &plane,
                                std::size_t m);

} // namespace mcbp::bstc
