#include "bstc/bitstream.hpp"

#include "common/logging.hpp"

namespace mcbp::bstc {

void
BitWriter::putBits(std::uint32_t v, unsigned n)
{
    panicIf(n > 32, "putBits width > 32");
    if (n == 0)
        return;
    ensure(bits_ + n);
    const std::uint64_t val =
        static_cast<std::uint64_t>(v) & ((std::uint64_t{1} << n) - 1);
    const std::size_t wi = static_cast<std::size_t>(bits_ >> 6);
    const unsigned off = static_cast<unsigned>(bits_ & 63);
    words_[wi] |= val << off;
    if (off + n > 64)
        words_[wi + 1] |= val >> (64 - off);
    bits_ += n;
}

common::AlignedBuffer<std::uint64_t>
BitWriter::takeWords()
{
    // Trim the capacity overshoot so holders pay for bits, not growth.
    words_.resize(wordCount());
    common::AlignedBuffer<std::uint64_t> out = std::move(words_);
    bits_ = 0;
    return out;
}

BitReader::BitReader(const common::AlignedBuffer<std::uint64_t> &words,
                     std::uint64_t bit_count)
    : words_(words.data()), bitCount_(bit_count)
{
    panicIf(bit_count > static_cast<std::uint64_t>(words.size()) * 64,
            "bit count exceeds buffer");
}

BitReader::BitReader(const BitWriter &w)
    : words_(w.words()), bitCount_(w.bitCount())
{
}

bool
BitReader::getBit()
{
    panicIf(pos_ >= bitCount_, "bit stream exhausted");
    const bool b = (words_[static_cast<std::size_t>(pos_ >> 6)] >>
                    (pos_ & 63)) &
                   1u;
    ++pos_;
    return b;
}

std::uint32_t
BitReader::getBits(unsigned n)
{
    panicIf(n > 32, "getBits width > 32");
    if (n == 0)
        return 0;
    panicIf(pos_ + n > bitCount_, "bit stream exhausted");
    const std::size_t wi = static_cast<std::size_t>(pos_ >> 6);
    const unsigned off = static_cast<unsigned>(pos_ & 63);
    std::uint64_t v = words_[wi] >> off;
    if (off + n > 64)
        v |= words_[wi + 1] << (64 - off);
    pos_ += n;
    return static_cast<std::uint32_t>(v &
                                      ((std::uint64_t{1} << n) - 1));
}

void
BitReader::seek(std::uint64_t bit_pos)
{
    panicIf(bit_pos > bitCount_, "seek past end of bit stream");
    pos_ = bit_pos;
}

} // namespace mcbp::bstc
