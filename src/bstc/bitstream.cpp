#include "bstc/bitstream.hpp"

#include "common/logging.hpp"

namespace mcbp::bstc {

void
BitWriter::putBit(bool b)
{
    const std::size_t byte = static_cast<std::size_t>(bits_ >> 3);
    if (byte >= data_.size())
        data_.push_back(0);
    if (b)
        data_[byte] |= static_cast<std::uint8_t>(1u << (bits_ & 7));
    ++bits_;
}

void
BitWriter::putBits(std::uint32_t v, unsigned n)
{
    panicIf(n > 32, "putBits width > 32");
    for (unsigned i = 0; i < n; ++i)
        putBit((v >> i) & 1u);
}

BitReader::BitReader(const std::vector<std::uint8_t> &data,
                     std::uint64_t bit_count)
    : data_(data), bitCount_(bit_count)
{
    panicIf(bit_count > data.size() * 8, "bit count exceeds buffer");
}

bool
BitReader::getBit()
{
    panicIf(pos_ >= bitCount_, "bit stream exhausted");
    const bool b = (data_[static_cast<std::size_t>(pos_ >> 3)] >>
                    (pos_ & 7)) & 1u;
    ++pos_;
    return b;
}

std::uint32_t
BitReader::getBits(unsigned n)
{
    panicIf(n > 32, "getBits width > 32");
    std::uint32_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v |= static_cast<std::uint32_t>(getBit()) << i;
    return v;
}

void
BitReader::seek(std::uint64_t bit_pos)
{
    panicIf(bit_pos > bitCount_, "seek past end of bit stream");
    pos_ = bit_pos;
}

} // namespace mcbp::bstc
