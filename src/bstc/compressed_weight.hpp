/**
 * @file
 * Full BSTC-compressed weight store with the segmented, parallel-decodable
 * layout of Fig 15(c).
 *
 * A weight matrix is decomposed into sign-magnitude bit planes; each plane
 * is either stored raw (packed bits) or two-state encoded. For parallel
 * decoding, each plane's stream is partitioned along the hidden dimension
 * into fixed-length column segments ("sub-weights"), and a start-address
 * directory records each segment's bit offset — the address area the
 * hardware controller fetches before decompression.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "bitslice/sign_magnitude.hpp"
#include "bstc/bitstream.hpp"
#include "bstc/plane_policy.hpp"
#include "common/aligned_buffer.hpp"
#include "common/matrix.hpp"

namespace mcbp::bstc {

/** Storage for one bit plane inside a CompressedWeight. */
struct StoredPlane
{
    bool encoded = false;             ///< BSTC-coded vs raw bits.
    /** Packed stream, LSB-first 64-bit words (64B-aligned, zero tail). */
    common::AlignedBuffer<std::uint64_t> data;
    std::uint64_t bitCount = 0;       ///< Valid bits in data.
    /**
     * Per (row-group, segment) start bit offset. Row-group-major:
     * index = group * segmentsPerRow + segment. Raw planes use implicit
     * addressing and leave this empty.
     */
    std::vector<std::uint64_t> segmentStart;
};

/** A weight matrix in MCBP's on-DRAM/SRAM bit-plane format. */
class CompressedWeight
{
  public:
    /**
     * Compress @p w.
     * @param w quantized weights (within the bit width's range).
     * @param bw bit width (INT8 / INT4).
     * @param m BSTC/BRCR group size.
     * @param policy which planes to encode.
     * @param segment_cols columns per decodable segment (Fig 15c uses 1k).
     */
    CompressedWeight(const Int8Matrix &w, quant::BitWidth bw, std::size_t m,
                     const PlanePolicy &policy,
                     std::size_t segment_cols = 1024);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t groupSize() const { return m_; }
    quant::BitWidth bitWidth() const { return bw_; }
    std::size_t planeCount() const { return planes_.size(); }

    /** Whether magnitude plane @p p (0-based) is BSTC-encoded. */
    bool planeEncoded(std::size_t p) const { return planes_[p].encoded; }

    /** Decompress everything back to the sign-magnitude form (exact). */
    bitslice::SignMagnitude decompress() const;

    /** Decompress all the way back to the integer matrix (exact). */
    Int8Matrix decompressToMatrix() const;

    /**
     * Decode the column patterns of one (plane, row-group, segment)
     * directly — the unit of work of one hardware decoder lane.
     */
    std::vector<std::uint32_t> decodeSegment(std::size_t plane,
                                             std::size_t group,
                                             std::size_t segment) const;

    /** Total stored bits (all planes + sign + directory). */
    std::uint64_t storedBits() const;

    /** Uncompressed size: rows x cols x (magnitude planes + sign). */
    std::uint64_t originalBits() const;

    /** originalBits / storedBits. */
    double compressionRatio() const;

    /** Bits of the start-address directory (compression overhead). */
    std::uint64_t directoryBits() const;

    std::size_t segmentsPerRowGroup() const { return segmentsPerRow_; }
    std::size_t rowGroups() const { return rowGroups_; }

  private:
    /** Decode one plane entirely. */
    bitslice::BitPlane decodePlaneFull(std::size_t p) const;

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t m_ = 4;
    std::size_t segmentCols_ = 1024;
    std::size_t segmentsPerRow_ = 0;
    std::size_t rowGroups_ = 0;
    quant::BitWidth bw_ = quant::BitWidth::Int8;
    std::vector<StoredPlane> planes_; ///< Magnitude planes, LSB first.
    StoredPlane sign_;                ///< Sign plane (always raw).
};

} // namespace mcbp::bstc
