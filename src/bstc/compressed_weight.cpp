#include "bstc/compressed_weight.hpp"

#include <bit>

#include "bstc/codec.hpp"
#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::bstc {

namespace {

/** Pack a plane raw: per row group, per column, m pattern bits. */
void
packRawPlane(const bitslice::BitPlane &plane, std::size_t m,
             StoredPlane &out)
{
    BitWriter w;
    const unsigned mbits = static_cast<unsigned>(m);
    // Walk the padded words instead of re-extracting bits per column:
    // a zero column contributes m zero bits, so runs of them collapse
    // into a single cursor advance. Bit stream is identical to the
    // per-column packing.
    for (std::size_t row0 = 0; row0 < plane.rows(); row0 += m) {
        const std::size_t last = std::min(row0 + m, plane.rows());
        for (std::size_t word = 0; word < plane.wordsPerRow(); ++word) {
            const std::size_t width =
                std::min<std::size_t>(64, plane.cols() - (word << 6));
            std::uint64_t rowWords[16];
            std::uint64_t any = 0;
            std::size_t nrows = 0;
            for (std::size_t r = row0; r < last; ++r) {
                const std::uint64_t rw = plane.rowWord(r, word);
                rowWords[nrows++] = rw;
                any |= rw;
            }
            std::size_t prev = 0;
            while (any != 0) {
                const std::size_t c =
                    static_cast<std::size_t>(std::countr_zero(any));
                any &= any - 1;
                w.putZeroBits((c - prev) * mbits);
                std::uint32_t p = 0;
                for (std::size_t r = 0; r < nrows; ++r)
                    p |= static_cast<std::uint32_t>(
                             (rowWords[r] >> c) & 1u)
                         << r;
                w.putBits(p, mbits);
                prev = c + 1;
            }
            w.putZeroBits((width - prev) * mbits);
        }
    }
    out.encoded = false;
    out.bitCount = w.bitCount();
    out.data = w.takeWords();
}

} // namespace

CompressedWeight::CompressedWeight(const Int8Matrix &w, quant::BitWidth bw,
                                   std::size_t m, const PlanePolicy &policy,
                                   std::size_t segment_cols)
    : rows_(w.rows()), cols_(w.cols()), m_(m), segmentCols_(segment_cols),
      bw_(bw)
{
    fatalIf(m_ == 0 || m_ > 16, "group size must be in [1, 16]");
    fatalIf(segmentCols_ == 0, "segment length must be positive");
    segmentsPerRow_ = ceilDiv(cols_, segmentCols_);
    rowGroups_ = ceilDiv(rows_, m_);

    bitslice::SignMagnitude sm = bitslice::decompose(w, bw);
    fatalIf(policy.compress.size() != sm.magnitude.size(),
            "plane policy arity does not match bit width");

    planes_.resize(sm.magnitude.size());
    for (std::size_t p = 0; p < sm.magnitude.size(); ++p) {
        const bitslice::BitPlane &plane = sm.magnitude[p];
        if (!policy.compress[p]) {
            packRawPlane(plane, m_, planes_[p]);
            continue;
        }
        StoredPlane &sp = planes_[p];
        sp.encoded = true;
        sp.segmentStart.reserve(rowGroups_ * segmentsPerRow_);
        BitWriter writer;
        std::vector<std::uint32_t> patterns;
        for (std::size_t row0 = 0; row0 < rows_; row0 += m_) {
            plane.columnPatterns(row0, m_, patterns);
            for (std::size_t s = 0; s < segmentsPerRow_; ++s) {
                sp.segmentStart.push_back(writer.bitCount());
                const std::size_t c0 = s * segmentCols_;
                const std::size_t c1 =
                    std::min(c0 + segmentCols_, cols_);
                // Zero symbols are single '0' bits; batch runs of them
                // into one cursor advance.
                std::size_t zeroRun = 0;
                for (std::size_t c = c0; c < c1; ++c) {
                    const std::uint32_t pat = patterns[c];
                    if (pat == 0) {
                        ++zeroRun;
                        continue;
                    }
                    writer.putZeroBits(zeroRun);
                    zeroRun = 0;
                    writer.putBit(true);
                    writer.putBits(pat, static_cast<unsigned>(m_));
                }
                writer.putZeroBits(zeroRun);
            }
        }
        sp.bitCount = writer.bitCount();
        sp.data = writer.takeWords();
    }
    packRawPlane(sm.sign, m_, sign_);
}

std::vector<std::uint32_t>
CompressedWeight::decodeSegment(std::size_t plane, std::size_t group,
                                std::size_t segment) const
{
    fatalIf(plane >= planes_.size(), "plane index out of range");
    fatalIf(group >= rowGroups_ || segment >= segmentsPerRow_,
            "segment coordinates out of range");
    const StoredPlane &sp = planes_[plane];
    const std::size_t c0 = segment * segmentCols_;
    const std::size_t c1 = std::min(c0 + segmentCols_, cols_);
    const std::size_t n = c1 - c0;
    BitReader reader(sp.data, sp.bitCount);
    if (sp.encoded) {
        reader.seek(sp.segmentStart[group * segmentsPerRow_ + segment]);
        return decodeColumns(reader, m_, n);
    }
    // Raw planes use implicit addressing: fixed m bits per column.
    reader.seek((static_cast<std::uint64_t>(group) * cols_ + c0) * m_);
    std::vector<std::uint32_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = reader.getBits(static_cast<unsigned>(m_));
    return out;
}

bitslice::BitPlane
CompressedWeight::decodePlaneFull(std::size_t p) const
{
    bitslice::BitPlane plane(rows_, cols_);
    for (std::size_t g = 0; g < rowGroups_; ++g) {
        const std::size_t row0 = g * m_;
        const std::size_t rows_here = std::min(m_, rows_ - row0);
        for (std::size_t s = 0; s < segmentsPerRow_; ++s) {
            const std::size_t c0 = s * segmentCols_;
            std::vector<std::uint32_t> pats = decodeSegment(p, g, s);
            for (std::size_t i = 0; i < pats.size(); ++i) {
                const std::uint32_t pat = pats[i];
                if (pat == 0)
                    continue;
                for (std::size_t r = 0; r < rows_here; ++r) {
                    if ((pat >> r) & 1u)
                        plane.set(row0 + r, c0 + i, true);
                }
            }
        }
    }
    return plane;
}

bitslice::SignMagnitude
CompressedWeight::decompress() const
{
    bitslice::SignMagnitude sm;
    sm.rows = rows_;
    sm.cols = cols_;
    sm.magnitude.reserve(planes_.size());
    for (std::size_t p = 0; p < planes_.size(); ++p)
        sm.magnitude.push_back(decodePlaneFull(p));

    // Sign plane: raw m-bit patterns, implicit addressing.
    sm.sign = bitslice::BitPlane(rows_, cols_);
    BitReader reader(sign_.data, sign_.bitCount);
    for (std::size_t g = 0; g < rowGroups_; ++g) {
        const std::size_t row0 = g * m_;
        const std::size_t rows_here = std::min(m_, rows_ - row0);
        for (std::size_t c = 0; c < cols_; ++c) {
            const std::uint32_t pat =
                reader.getBits(static_cast<unsigned>(m_));
            for (std::size_t r = 0; r < rows_here; ++r) {
                if ((pat >> r) & 1u)
                    sm.sign.set(row0 + r, c, true);
            }
        }
    }
    return sm;
}

Int8Matrix
CompressedWeight::decompressToMatrix() const
{
    return bitslice::reconstruct(decompress());
}

std::uint64_t
CompressedWeight::storedBits() const
{
    std::uint64_t bits = sign_.bitCount + directoryBits();
    for (const auto &sp : planes_)
        bits += sp.bitCount;
    return bits;
}

std::uint64_t
CompressedWeight::originalBits() const
{
    return static_cast<std::uint64_t>(rows_) * cols_ *
           (planes_.size() + 1);
}

double
CompressedWeight::compressionRatio() const
{
    const std::uint64_t stored = storedBits();
    return stored == 0 ? 1.0
                       : static_cast<double>(originalBits()) /
                             static_cast<double>(stored);
}

std::uint64_t
CompressedWeight::directoryBits() const
{
    // The paper's address area uses 16-bit (6-bit column + 10-bit row)
    // start addresses per sub-weight.
    std::uint64_t entries = 0;
    for (const auto &sp : planes_)
        entries += sp.segmentStart.size();
    return entries * 16;
}

} // namespace mcbp::bstc
