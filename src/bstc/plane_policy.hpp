/**
 * @file
 * Per-bit-plane compression policy (paper section 3.2, Fig 8c).
 *
 * BSTC only pays off when a plane's sparsity ratio exceeds ~65% (the
 * break-even of the two-state code). The paper compresses magnitude
 * planes 3-7 of INT8 weights and leaves planes 1, 2 and the sign plane
 * raw. This module derives that decision either from the fixed paper
 * default or adaptively from measured plane sparsity.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bitslice/sparsity.hpp"

namespace mcbp::bstc {

/** Break-even sparsity for the two-state code (paper: 65%). */
inline constexpr double kDefaultSparsityThreshold = 0.65;

/** Which planes of a decomposition get BSTC-encoded. */
struct PlanePolicy
{
    /**
     * compress[p] != 0 = encode magnitude plane p+1 (index 0 = LSB
     * plane). Deliberately std::uint8_t, not bool: vector<bool>'s
     * proxy references defeat word-at-a-time reads and force awkward
     * call sites.
     */
    std::vector<std::uint8_t> compress;
    /** The sign plane is always stored raw in the paper's design. */
    bool compressSign = false;

    /** Number of planes marked for compression. */
    std::size_t compressedCount() const;
};

/**
 * The paper's fixed INT8 policy: planes 3-7 compressed, planes 1-2 raw.
 * For INT4 (3 magnitude planes) only plane 3 (MSB) is compressed.
 */
PlanePolicy paperDefaultPolicy(std::size_t plane_count);

/**
 * Adaptive policy: compress every plane whose measured sparsity exceeds
 * @p threshold.
 */
PlanePolicy adaptivePolicy(const bitslice::SparsityReport &report,
                           double threshold = kDefaultSparsityThreshold);

} // namespace mcbp::bstc
