/**
 * @file
 * Bit-granular stream writer/reader used by the BSTC codec. Bits are
 * packed LSB-first — bit i of the stream is bit (i & 63) of word
 * (i >> 6) — mirroring the serial-in behaviour of the hardware
 * decoder's SIPO register (Fig 15b).
 *
 * Storage is a 64-byte-aligned, zero-padded word buffer
 * (common/AlignedBuffer): appends are one or two word-ORs instead of a
 * per-bit loop, bulk zero runs are a pure cursor advance (the BSTC
 * zero-symbol fast path), and downstream consumers can walk the packed
 * words directly. This replaced the original byte-vector layout —
 * callers that held `bytes()` now take `words()` (same LSB-first bit
 * order, so bit k lives in the same position either way).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace mcbp::bstc {

/** Append-only bit stream. */
class BitWriter
{
  public:
    /** Append a single bit. */
    void
    putBit(bool b)
    {
        ensure(bits_ + 1);
        if (b)
            words_[static_cast<std::size_t>(bits_ >> 6)] |=
                std::uint64_t{1} << (bits_ & 63);
        ++bits_;
    }

    /** Append the low @p n bits of @p v, LSB first. @p n <= 32. */
    void putBits(std::uint32_t v, unsigned n);

    /**
     * Append @p n zero bits. The buffer beyond the cursor is already
     * zero, so this only advances the cursor — the whole point of the
     * padded word storage for sparse-plane encoding.
     */
    void
    putZeroBits(std::uint64_t n)
    {
        ensure(bits_ + n);
        bits_ += n;
    }

    /** Number of bits written so far. */
    std::uint64_t bitCount() const { return bits_; }

    /** Backing words, LSB-first bit order; tail bits zero-padded. */
    const std::uint64_t *words() const { return words_.data(); }

    /** Words holding valid bits: ceil(bitCount / 64). */
    std::size_t
    wordCount() const
    {
        return static_cast<std::size_t>((bits_ + 63) >> 6);
    }

    /** The backing buffer (size() == wordCount(), aligned, padded). */
    const common::AlignedBuffer<std::uint64_t> &
    buffer() const
    {
        return words_;
    }

    /** Move the backing buffer out (the writer resets to empty). */
    common::AlignedBuffer<std::uint64_t> takeWords();

  private:
    void
    ensure(std::uint64_t bits)
    {
        const std::size_t need =
            static_cast<std::size_t>((bits + 63) >> 6);
        if (need > words_.size())
            words_.resize(need);
    }

    common::AlignedBuffer<std::uint64_t> words_;
    std::uint64_t bits_ = 0;
};

/** Sequential reader over a bit stream. */
class BitReader
{
  public:
    /** Read from a word buffer holding @p bit_count valid bits. */
    BitReader(const common::AlignedBuffer<std::uint64_t> &words,
              std::uint64_t bit_count);

    /** Read everything a writer has produced so far. */
    explicit BitReader(const BitWriter &w);

    /** Read one bit; throws std::logic_error past the end. */
    bool getBit();

    /** Read @p n bits, LSB first. @p n <= 32. */
    std::uint32_t getBits(unsigned n);

    /** Bits remaining. */
    std::uint64_t remaining() const { return bitCount_ - pos_; }

    /** Absolute bit position (for segmented seeks). */
    std::uint64_t position() const { return pos_; }

    /** Jump to an absolute bit position. */
    void seek(std::uint64_t bit_pos);

  private:
    const std::uint64_t *words_;
    std::uint64_t bitCount_;
    std::uint64_t pos_ = 0;
};

} // namespace mcbp::bstc
