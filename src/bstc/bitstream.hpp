/**
 * @file
 * Bit-granular stream writer/reader used by the BSTC codec. Bits are
 * packed LSB-first into bytes; the reader consumes them in the same
 * order, mirroring the serial-in behaviour of the hardware decoder's
 * SIPO register (Fig 15b).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace mcbp::bstc {

/** Append-only bit stream. */
class BitWriter
{
  public:
    /** Append a single bit. */
    void putBit(bool b);

    /** Append the low @p n bits of @p v, LSB first. @p n <= 32. */
    void putBits(std::uint32_t v, unsigned n);

    /** Number of bits written so far. */
    std::uint64_t bitCount() const { return bits_; }

    /** Backing bytes (last byte zero-padded). */
    const std::vector<std::uint8_t> &bytes() const { return data_; }

  private:
    std::vector<std::uint8_t> data_;
    std::uint64_t bits_ = 0;
};

/** Sequential reader over a bit stream. */
class BitReader
{
  public:
    BitReader(const std::vector<std::uint8_t> &data, std::uint64_t bit_count);

    /** Read one bit; throws std::logic_error past the end. */
    bool getBit();

    /** Read @p n bits, LSB first. @p n <= 32. */
    std::uint32_t getBits(unsigned n);

    /** Bits remaining. */
    std::uint64_t remaining() const { return bitCount_ - pos_; }

    /** Absolute bit position (for segmented seeks). */
    std::uint64_t position() const { return pos_; }

    /** Jump to an absolute bit position. */
    void seek(std::uint64_t bit_pos);

  private:
    const std::vector<std::uint8_t> &data_;
    std::uint64_t bitCount_;
    std::uint64_t pos_ = 0;
};

} // namespace mcbp::bstc
