#include "engine/scheduler.hpp"

#include "common/logging.hpp"

namespace mcbp::engine {

namespace {

/** Strict FIFO: the queue head or nobody (head-of-line blocking). */
class FifoScheduler final : public Scheduler
{
  public:
    std::string name() const override { return "fifo"; }

    std::size_t
    pick(const std::vector<AdmissionCandidate> &waiting,
         const KvPressure &) const override
    {
        if (!waiting.empty() && waiting.front().admissible)
            return 0;
        return npos;
    }
};

/** Oldest admissible request; a blocked head no longer stalls peers. */
class SkipAheadScheduler final : public Scheduler
{
  public:
    std::string name() const override { return "skip-ahead"; }

    std::size_t
    pick(const std::vector<AdmissionCandidate> &waiting,
         const KvPressure &) const override
    {
        for (std::size_t i = 0; i < waiting.size(); ++i)
            if (waiting[i].admissible)
                return i;
        return npos;
    }
};

/**
 * Cheapest aged prefill (SJF on prefill cost, ties by queue order).
 * The aging credit — agingWeight cycles of key per cycle waited —
 * bounds starvation: a long prompt outranks every fresh short arrival
 * once it has waited the prefill-cost difference, so its queue time
 * under a sustained short-prompt flood is bounded by its own prefill
 * cost over the aging weight (plus one service interval), instead of
 * by the flood's length.
 */
class ShortestPromptScheduler final : public Scheduler
{
  public:
    explicit ShortestPromptScheduler(double agingWeight)
        : agingWeight_(agingWeight)
    {
        fatalIf(agingWeight_ < 0.0, "SJF aging weight must be >= 0");
    }

    std::string name() const override { return "shortest-prompt"; }

    std::size_t
    pick(const std::vector<AdmissionCandidate> &waiting,
         const KvPressure &) const override
    {
        std::size_t best = npos;
        double best_key = 0.0;
        for (std::size_t i = 0; i < waiting.size(); ++i) {
            if (!waiting[i].admissible)
                continue;
            const double key = waiting[i].prefillCycles -
                               agingWeight_ * waiting[i].waitCycles;
            if (best == npos || key < best_key) {
                best = i;
                best_key = key;
            }
        }
        return best;
    }

  private:
    double agingWeight_;
};

} // namespace

std::string
toString(SchedulerPolicy policy)
{
    switch (policy) {
    case SchedulerPolicy::Fifo:
        return "fifo";
    case SchedulerPolicy::SkipAhead:
        return "skip-ahead";
    case SchedulerPolicy::ShortestPromptFirst:
        return "shortest-prompt";
    }
    panic("unhandled scheduler policy");
}

SchedulerPolicy
schedulerPolicyFromString(const std::string &name)
{
    for (SchedulerPolicy p : allSchedulerPolicies())
        if (name == toString(p))
            return p;
    fatal("unknown scheduler policy '" + name +
          "' (expected fifo, skip-ahead or shortest-prompt)");
}

const std::vector<SchedulerPolicy> &
allSchedulerPolicies()
{
    static const std::vector<SchedulerPolicy> all = {
        SchedulerPolicy::Fifo, SchedulerPolicy::SkipAhead,
        SchedulerPolicy::ShortestPromptFirst};
    return all;
}

std::unique_ptr<Scheduler>
makeScheduler(SchedulerPolicy policy, double sjfAgingWeight)
{
    switch (policy) {
    case SchedulerPolicy::Fifo:
        return std::make_unique<FifoScheduler>();
    case SchedulerPolicy::SkipAhead:
        return std::make_unique<SkipAheadScheduler>();
    case SchedulerPolicy::ShortestPromptFirst:
        return std::make_unique<ShortestPromptScheduler>(sjfAgingWeight);
    }
    panic("unhandled scheduler policy");
}

} // namespace mcbp::engine
