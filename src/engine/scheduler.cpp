#include "engine/scheduler.hpp"

#include "common/logging.hpp"

namespace mcbp::engine {

namespace {

/** Strict FIFO: the queue head or nobody (head-of-line blocking). */
class FifoScheduler final : public Scheduler
{
  public:
    std::string name() const override { return "fifo"; }

    std::size_t
    pick(const std::vector<AdmissionCandidate> &waiting) const override
    {
        if (!waiting.empty() && waiting.front().admissible)
            return 0;
        return npos;
    }
};

/** Oldest admissible request; a blocked head no longer stalls peers. */
class SkipAheadScheduler final : public Scheduler
{
  public:
    std::string name() const override { return "skip-ahead"; }

    std::size_t
    pick(const std::vector<AdmissionCandidate> &waiting) const override
    {
        for (std::size_t i = 0; i < waiting.size(); ++i)
            if (waiting[i].admissible)
                return i;
        return npos;
    }
};

/** Shortest admissible prompt (SJF on prefill cost; ties by age). */
class ShortestPromptScheduler final : public Scheduler
{
  public:
    std::string name() const override { return "shortest-prompt"; }

    std::size_t
    pick(const std::vector<AdmissionCandidate> &waiting) const override
    {
        std::size_t best = npos;
        for (std::size_t i = 0; i < waiting.size(); ++i) {
            if (!waiting[i].admissible)
                continue;
            if (best == npos ||
                waiting[i].promptLen < waiting[best].promptLen)
                best = i;
        }
        return best;
    }
};

} // namespace

std::string
toString(SchedulerPolicy policy)
{
    switch (policy) {
    case SchedulerPolicy::Fifo:
        return "fifo";
    case SchedulerPolicy::SkipAhead:
        return "skip-ahead";
    case SchedulerPolicy::ShortestPromptFirst:
        return "shortest-prompt";
    }
    panic("unhandled scheduler policy");
}

SchedulerPolicy
schedulerPolicyFromString(const std::string &name)
{
    for (SchedulerPolicy p : allSchedulerPolicies())
        if (name == toString(p))
            return p;
    fatal("unknown scheduler policy '" + name +
          "' (expected fifo, skip-ahead or shortest-prompt)");
}

const std::vector<SchedulerPolicy> &
allSchedulerPolicies()
{
    static const std::vector<SchedulerPolicy> all = {
        SchedulerPolicy::Fifo, SchedulerPolicy::SkipAhead,
        SchedulerPolicy::ShortestPromptFirst};
    return all;
}

std::unique_ptr<Scheduler>
makeScheduler(SchedulerPolicy policy)
{
    switch (policy) {
    case SchedulerPolicy::Fifo:
        return std::make_unique<FifoScheduler>();
    case SchedulerPolicy::SkipAhead:
        return std::make_unique<SkipAheadScheduler>();
    case SchedulerPolicy::ShortestPromptFirst:
        return std::make_unique<ShortestPromptScheduler>();
    }
    panic("unhandled scheduler policy");
}

} // namespace mcbp::engine
