/**
 * @file
 * Pipeline-parallel accelerator: partitions a model's decoder layers
 * across pp= stages behind the same engine::Accelerator interface.
 *
 * A PipelineAccelerator wraps any Accelerator — a bare adapter or a
 * tensor-parallel ClusterAccelerator, which is how `pp=` composes
 * with `tp=` in one spec — and treats the wrapped hardware as ONE
 * stage's worth of chips, replicated pp times. Unlike the cluster's
 * 1/N rescale of a finished phase, the pipeline divides the *plan*:
 * stage s owns a contiguous layer range priced exactly by
 * ExecutionPlan::slice() (pp must divide the layer count, which also
 * keeps the per-stage KV shards symmetric).
 *
 * Timing model:
 *  - Prefill is micro-batched (`mb=` knob): the batch flows through
 *    the stages in mb equal micro-batches, so the phase costs the
 *    fill traversal (every stage once) plus (mb-1) repeats of the
 *    bottleneck stage — T = sum_s t_s + (mb-1) max_s t_s — plus the
 *    (pp-1)-hop fill latency. Per-micro-batch stage time divides the
 *    stage's divisible work by mb but NOT its fixed collective floor
 *    (smaller all-reduces do not shrink hop latency), so micro-
 *    batching has honestly diminishing returns; the fill/drain bubble
 *    fraction (prefillTiming) shrinks monotonically in mb.
 *  - Decode is token-serial for one request (token t+1 needs t), so
 *    a decode step traverses all stages: the per-request linear work
 *    does not shrink. What the pipeline DOES buy decode is the weight
 *    stream — each stage streams only its own layers' weights from
 *    its own HBM, concurrently, so the shared stream term divides by
 *    pp. Inter-stage boundary activations add (pp-1) sends per step:
 *    serialization joins the per-request linear work, hop latency
 *    joins the batch-invariant fixedStepCycles floor. (With several
 *    requests in flight the serving engine additionally overlaps
 *    distinct requests' traversals across stages — see
 *    Capabilities::pipelineStages and event_core.)
 *
 * pp=1 is the identity: plan()/run(), name, capabilities and
 * configSummary are the wrapped accelerator's, bit-for-bit
 * (tests/test_pipeline.cpp asserts this down to the serving report).
 *
 * Capabilities: processors and HBM scale by pp, and kvShards picks up
 * a factor pp — each stage stores only its own layers' KV, an even
 * layer split, so the serving engine's aggregate block ledger remains
 * exact per-stage accounting by symmetry.
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>

#include "engine/accelerator.hpp"
#include "sim/interconnect.hpp"

namespace mcbp::engine {

/** Pipeline shape and fabric parameters. */
struct PipelineOptions
{
    /** Stages the layer stack splits across (must divide layers). */
    std::size_t pipelineParallel = 1;
    /** Prefill micro-batches per request batch (>= 1). */
    std::size_t microBatches = 1;
    /** Inter-stage link (same knobs as the cluster fabric). */
    sim::InterconnectConfig interconnect;

    /** The surviving shape after one stage failure: the layer stack
     *  re-partitions over half the stages (an even re-split, so the
     *  pp-divides-layers constraint still holds; see health.hpp).
     *  Micro-batching only exists inside a pipeline, so it resets
     *  when the pipeline collapses to one stage. pp=1 has no
     *  redundancy and degrades to itself. */
    PipelineOptions degradedOptions() const
    {
        PipelineOptions out = *this;
        out.pipelineParallel =
            std::max<std::size_t>(1, pipelineParallel / 2);
        if (out.pipelineParallel <= 1)
            out.microBatches = 1;
        return out;
    }
};

/** pp pipeline stages presented as one Accelerator. */
class PipelineAccelerator : public Accelerator
{
  public:
    PipelineAccelerator(std::unique_ptr<Accelerator> stage,
                        PipelineOptions opts);

    std::string name() const override;
    Capabilities capabilities() const override;
    std::string configSummary() const override;
    accel::ExecutionPlan plan(const model::LlmConfig &model,
                              const model::Workload &task) const override;
    /** Stage partitioning changes no profile keys: forward. */
    void
    profileRequests(const model::LlmConfig &model,
                    const model::Workload &task,
                    std::vector<accel::ProfileRequest> &out) const override
    {
        stage_->profileRequests(model, task, out);
    }
    std::shared_ptr<accel::ProfileCache> profileCache() const override
    {
        return stage_->profileCache();
    }

    const Accelerator &underlying() const { return *stage_; }
    const PipelineOptions &options() const { return opts_; }

    /** Prefill pipeline timing decomposition (for benches/tests). */
    struct Timing
    {
        double totalCycles = 0.0;      ///< The phase's wall clock.
        double bottleneckCycles = 0.0; ///< Slowest per-micro-batch stage.
        /** Fill/drain share of the phase: (sum_s t_s - max_s t_s) / T.
         *  0 at pp=1; monotonically non-increasing in mb. */
        double bubbleFraction = 0.0;
    };

    /** The prefill timing the plan() composition used. */
    Timing prefillTiming(const model::LlmConfig &model,
                         const model::Workload &task) const;

  private:
    std::unique_ptr<Accelerator> stage_;
    PipelineOptions opts_;
};

} // namespace mcbp::engine
