#include "engine/pipeline.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace mcbp::engine {

namespace {

/** The per-micro-batch stage times of a prefill composition. */
struct PrefillTimes
{
    double sumT = 0.0;  ///< Fill traversal (every stage once).
    double maxT = 0.0;  ///< Bottleneck stage (steady-state pace).
    double hopFill = 0.0; ///< (pp-1)-hop boundary fill latency.

    double total() const { return sumT + hopFill; }
};

/**
 * Per-micro-batch stage times: a stage's divisible work (compute +
 * its boundary send serialization) splits across the mb micro-batches,
 * but its fixed collective floor does not — mb smaller all-reduces
 * still pay mb hop floors. The phase wall clock is the fill traversal
 * plus (mb-1) repeats of the bottleneck.
 */
PrefillTimes
prefillStageTimes(const std::vector<accel::PlanSegment> &stages,
                  const sim::InterconnectCost &send, double microBatches)
{
    PrefillTimes out;
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const accel::PhaseMetrics &p = stages[s].prefill;
        const double bw =
            (s + 1 < stages.size()) ? send.bandwidthCycles : 0.0;
        const double divisible =
            std::max(0.0, p.cycles - p.fixedStepCycles) + bw;
        const double t = divisible / microBatches + p.fixedStepCycles;
        out.sumT += t;
        out.maxT = std::max(out.maxT, t);
    }
    out.hopFill =
        (static_cast<double>(stages.size()) - 1.0) * send.latencyCycles;
    return out;
}

/**
 * Everything plan() and prefillTiming() share: the per-stage slices
 * of the wrapped plan, the whole-phase boundary send, the stage
 * times, and the prefill wall clock — one composition, so the
 * archived bubble fraction can never diverge from the cycles the
 * plan actually prices.
 */
struct PipelineComposition
{
    std::vector<accel::PlanSegment> stages;
    sim::InterconnectCost prefillSend; ///< Whole-phase boundary send.
    PrefillTimes times;
    double prefillCycles = 0.0; ///< The phase's wall clock.
};

PipelineComposition
composeStages(const accel::ExecutionPlan &inner,
              const model::LlmConfig &model, const model::Workload &task,
              const PipelineOptions &opts)
{
    const std::size_t pp = opts.pipelineParallel;
    fatalIf(model.layers % pp != 0,
            "pipeline degree " + std::to_string(pp) + " must divide " +
                model.name + "'s " + std::to_string(model.layers) +
                " decoder layers (even stages keep the per-stage KV "
                "shards symmetric)");
    const std::size_t per_stage = model.layers / pp;
    const double mb = static_cast<double>(opts.microBatches);

    PipelineComposition out;
    // Stage s owns layers [s*L/pp, (s+1)*L/pp): price each range by
    // slicing the wrapped plan — dividing layer segments, not
    // rescaling a finished run.
    out.stages.reserve(pp);
    for (std::size_t s = 0; s < pp; ++s) {
        accel::PlanSegment seg = inner.slice(s * per_stage, per_stage);
        seg.label = "stage" + std::to_string(s) + " " + seg.label;
        out.stages.push_back(std::move(seg));
    }

    // One boundary transfer carries the layer's activations for the
    // whole (prompt x batch) token set, split across the micro-batches
    // and across the gang's chips (each sends its own tokens' share).
    const sim::Interconnect fabric(opts.interconnect, inner.clockGhz);
    const double pf_bytes =
        static_cast<double>(task.promptLen) *
        static_cast<double>(task.batch) *
        static_cast<double>(model.hidden) *
        opts.interconnect.bytesPerActivation /
        static_cast<double>(inner.processors);
    out.prefillSend = fabric.send(pf_bytes);
    out.times = prefillStageTimes(out.stages, out.prefillSend, mb);
    out.prefillCycles = out.times.sumT + (mb - 1.0) * out.times.maxT +
                        out.times.hopFill;
    return out;
}

} // namespace

PipelineAccelerator::PipelineAccelerator(std::unique_ptr<Accelerator> stage,
                                         PipelineOptions opts)
    : stage_(std::move(stage)), opts_(opts)
{
    fatalIf(!stage_, "pipeline needs a stage accelerator");
    fatalIf(opts_.pipelineParallel == 0,
            "pipeline-parallel degree must be >= 1");
    fatalIf(opts_.microBatches == 0, "micro-batch count must be >= 1");
    // One pp= axis: a pipeline of pipelines adds nothing a single
    // degree cannot express, and the slice-of-a-slice bookkeeping
    // would double-charge the boundary transfers.
    fatalIf(dynamic_cast<const PipelineAccelerator *>(stage_.get()) !=
                nullptr,
            "nested pipeline composition is not modeled; use a single "
            "pp= degree");
}

std::string
PipelineAccelerator::name() const
{
    if (opts_.pipelineParallel == 1)
        return stage_->name();
    return stage_->name() + "[pp" +
           std::to_string(opts_.pipelineParallel) + "]";
}

Capabilities
PipelineAccelerator::capabilities() const
{
    Capabilities c = stage_->capabilities();
    if (opts_.pipelineParallel == 1)
        return c;
    c.processors *= opts_.pipelineParallel;
    c.hbmCapacityBytes *= static_cast<double>(opts_.pipelineParallel);
    // Each stage stores only its own layers' KV (an even layer split:
    // plan() requires pp | layers), so the shard count — and with it
    // the per-stage KV pool the paged serving engine charges —
    // multiplies by the stage count.
    c.kvShards *= opts_.pipelineParallel;
    c.pipelineStages *= opts_.pipelineParallel;
    return c;
}

std::string
PipelineAccelerator::configSummary() const
{
    if (opts_.pipelineParallel == 1) // identity: no pipeline exists.
        return stage_->configSummary();
    std::ostringstream os;
    os << name() << ": " << opts_.pipelineParallel
       << "-stage layer pipeline (even layer split, prefill in "
       << opts_.microBatches
       << " micro-batches, decode token-serial with per-stage weight "
          "streams), boundary links @ "
       << opts_.interconnect.linkGBs << " GB/s, "
       << opts_.interconnect.pJPerBit << " pJ/bit, "
       << opts_.interconnect.hopCycles << "-cycle hops\n"
       << stage_->configSummary();
    return os.str();
}

accel::ExecutionPlan
PipelineAccelerator::plan(const model::LlmConfig &model,
                          const model::Workload &task) const
{
    const std::size_t pp = opts_.pipelineParallel;
    accel::ExecutionPlan inner = stage_->plan(model, task);
    if (pp == 1)
        return inner; // identity: bit-for-bit the wrapped accelerator.

    const double n = static_cast<double>(pp);
    const double gang = static_cast<double>(inner.processors);
    const double hidden = static_cast<double>(model.hidden);
    const sim::Interconnect fabric(opts_.interconnect, inner.clockGhz);

    PipelineComposition comp =
        composeStages(inner, model, task, opts_);
    const std::vector<accel::PlanSegment> &stages = comp.stages;
    const sim::InterconnectCost &pf_send = comp.prefillSend;
    const PrefillTimes &times = comp.times;
    const double total_pf = comp.prefillCycles;

    accel::ExecutionPlan out = inner;
    out.accelerator = name();
    out.processors = inner.processors * pp;

    // ---- Prefill: micro-batched stage pipeline -------------------------
    accel::PhaseMetrics pf = accel::scalePhase(inner.prefill, 1.0 / n);
    pf.cycles = total_pf;
    // Per-stage weight residents load concurrently; the steady-state
    // stream/work view is the slowest stage's.
    double pf_ws = 0.0, pf_lw = 0.0;
    for (const accel::PlanSegment &s : stages) {
        pf_ws = std::max(pf_ws, s.prefill.weightStreamCycles);
        pf_lw = std::max(pf_lw, s.prefill.linearWorkCycles);
    }
    pf.weightStreamCycles = pf_ws;
    pf.linearWorkCycles = pf_lw;
    // Batch-invariant floor: the wrapped collectives' hop floors plus
    // the boundary fill hops; contained in cycles.
    pf.fixedStepCycles =
        inner.prefill.fixedStepCycles + times.hopFill;
    // Breakdown: the per-stage bottleneck share is in the scaled
    // contributors; everything the pipeline adds on top (bubbles,
    // boundary serialization) is exposed as other.
    pf.otherCycles = inner.prefill.otherCycles / n +
                     std::max(0.0, total_pf - inner.prefill.cycles / n);
    // Logical work is conserved by stage partitioning.
    pf.denseMacs = inner.prefill.denseMacs;
    pf.executedAdds = inner.prefill.executedAdds;
    // Per-chip link energy share of the (pp-1) boundary transfers.
    pf.energy.interconnectPj = inner.prefill.energy.interconnectPj / n +
                               (n - 1.0) * pf_send.energyPj / n;
    out.prefill = pf;

    // ---- Decode: token-serial traversal, per-stage weight streams ------
    if (task.decodeLen > 0) {
        const double steps = static_cast<double>(task.decodeLen);
        const accel::PhaseMetrics &ind = inner.decode;
        const double dc_bytes = static_cast<double>(task.batch) *
                                hidden *
                                opts_.interconnect.bytesPerActivation /
                                gang;
        const sim::InterconnectCost dc_send = fabric.send(dc_bytes);

        // Invert the wrapped model's own composition to find the
        // non-linear rest (attention/SFU), which traverses serially.
        const double linear_seg = accel::composedLinearCycles(
            ind.weightStreamCycles, ind.linearWorkCycles,
            ind.memorySerialized);
        const double rest = std::max(
            0.0, ind.cycles - linear_seg - ind.fixedStepCycles);

        double dc_ws = 0.0; // slowest stage's own-layer weight stream.
        for (const accel::PlanSegment &s : stages)
            dc_ws = std::max(dc_ws, s.decode.weightStreamCycles);
        const double send_bw =
            (n - 1.0) * dc_send.bandwidthCycles * steps;
        const double dc_lw = ind.linearWorkCycles + send_bw;
        const double dc_fixed = ind.fixedStepCycles +
                                (n - 1.0) * dc_send.latencyCycles *
                                    steps;

        accel::PhaseMetrics dc = accel::scalePhase(ind, 1.0 / n);
        dc.cycles = accel::composedLinearCycles(dc_ws, dc_lw,
                                                ind.memorySerialized) +
                    rest + dc_fixed;
        dc.weightStreamCycles = dc_ws;
        dc.linearWorkCycles = dc_lw;
        dc.fixedStepCycles = dc_fixed;
        // Breakdown: the weight path parallelizes across per-stage HBM
        // (already scaled 1/pp); the compute/KV path traverses
        // serially, and the boundary serialization is exposed.
        dc.gemmCycles = ind.gemmCycles;
        dc.kvLoadCycles = ind.kvLoadCycles;
        dc.otherCycles = ind.otherCycles + send_bw;
        dc.denseMacs = ind.denseMacs;
        dc.executedAdds = ind.executedAdds;
        dc.energy.interconnectPj =
            ind.energy.interconnectPj / n +
            (n - 1.0) * dc_send.energyPj * steps / n;
        out.decode = dc;
    }

    // Segments: the per-stage layer costs (pure slices). The pipeline
    // overheads — bubbles and boundary transfers — live in the totals
    // only; no single layer range owns them.
    out.segments = std::move(comp.stages);
    return out;
}

PipelineAccelerator::Timing
PipelineAccelerator::prefillTiming(const model::LlmConfig &model,
                                   const model::Workload &task) const
{
    const accel::ExecutionPlan inner = stage_->plan(model, task);
    Timing t;
    if (opts_.pipelineParallel == 1) {
        t.totalCycles = inner.prefill.cycles;
        t.bottleneckCycles = inner.prefill.cycles;
        return t;
    }
    // The one composition plan() prices from (composeStages), so the
    // reported bubble can never diverge from the plan's cycles.
    const PipelineComposition comp =
        composeStages(inner, model, task, opts_);
    t.totalCycles = comp.prefillCycles;
    t.bottleneckCycles = comp.times.maxT;
    t.bubbleFraction = t.totalCycles > 0.0
                           ? (comp.times.sumT - comp.times.maxT) /
                                 t.totalCycles
                           : 0.0;
    return t;
}

} // namespace mcbp::engine
