/**
 * @file
 * Pluggable admission schedulers for the serving engine.
 *
 * The discrete-event core (event_core.hpp) owns the mechanics — the
 * clock, arrivals, KV accounting, decode iterations — and delegates
 * exactly one decision to a Scheduler: given the waiting queue (in
 * arrival order) and which entries are currently admissible (free batch
 * slot, same model as the running batch, KV reservation fits), which
 * request is admitted next?
 *
 * Three policies ship:
 *  - strict FIFO: admit the queue head or nobody. A different-model or
 *    KV-blocked head stalls admission (head-of-line blocking), which
 *    bounds every request's wait — the PR-1 behaviour, and the default.
 *  - skip-ahead: admit the oldest admissible request, skipping a
 *    blocked head so same-model traffic keeps batching through a model
 *    switch or a KV-capacity stall.
 *  - shortest-prompt-first: admit the admissible request with the
 *    shortest prompt (ties by age), trading worst-case wait for lower
 *    mean latency under mixed prompt lengths (SJF on the prefill cost).
 */
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace mcbp::engine {

/** Selectable admission policies (ServingOptions::policy). */
enum class SchedulerPolicy
{
    Fifo,
    SkipAhead,
    ShortestPromptFirst,
};

/** Canonical name, e.g. "fifo", "skip-ahead", "shortest-prompt". */
std::string toString(SchedulerPolicy policy);

/** Parse a policy name; fatal() on unknown names. */
SchedulerPolicy schedulerPolicyFromString(const std::string &name);

/** All selectable policies (for sweeps and validation messages). */
const std::vector<SchedulerPolicy> &allSchedulerPolicies();

/** One waiting request, as the scheduler sees it. */
struct AdmissionCandidate
{
    std::size_t promptLen = 0;
    std::size_t decodeLen = 0;
    /** Free slot + model compatible + KV reservation fits, right now. */
    bool admissible = false;
};

/** Admission-order policy. Stateless; the event core owns all state. */
class Scheduler
{
  public:
    /** Returned by pick() when nothing should be admitted yet. */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    virtual ~Scheduler() = default;

    virtual std::string name() const = 0;

    /**
     * Index into @p waiting (arrival order) of the request to admit
     * next, or npos to wait. Must return an admissible index.
     */
    virtual std::size_t
    pick(const std::vector<AdmissionCandidate> &waiting) const = 0;
};

/** Build the scheduler implementing @p policy. */
std::unique_ptr<Scheduler> makeScheduler(SchedulerPolicy policy);

} // namespace mcbp::engine
