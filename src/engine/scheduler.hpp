/**
 * @file
 * Pluggable admission schedulers for the serving engine.
 *
 * The discrete-event core (event_core.hpp) owns the mechanics — the
 * clock, arrivals, KV accounting, decode iterations — and delegates
 * exactly one decision to a Scheduler: given the waiting queue (in
 * arrival order), which entries are currently admissible (free batch
 * slot, same model as the running batch, KV allocation fits), and the
 * current KV-pool pressure, which request is admitted next?
 *
 * Three policies ship:
 *  - strict FIFO: admit the queue head or nobody. A different-model or
 *    KV-blocked head stalls admission (head-of-line blocking), which
 *    bounds every request's wait — the PR-1 behaviour, and the default.
 *  - skip-ahead: admit the oldest admissible request, skipping a
 *    blocked head so same-model traffic keeps batching through a model
 *    switch or a KV-capacity stall.
 *  - shortest-prompt-first: admit the admissible request with the
 *    cheapest *aged* prefill — SJF on the prefill cost with an aging
 *    credit (agingWeight x the candidate's queue wait, in cycles)
 *    subtracted from its key, so a long prompt cannot be starved by a
 *    sustained flood of short ones: once it has waited its own extra
 *    prefill cost, it outranks any fresh short arrival. agingWeight 0
 *    restores the pure (starvation-prone) SJF.
 *
 * Schedulers also see the KV pool's free-space pressure (KvPressure)
 * and may return npos to defer admission entirely — e.g. to hold
 * blocks back for running requests when the pool is nearly full. The
 * built-in policies admit whenever something is admissible; the event
 * core already enforces the paged low-watermark in the admissible
 * flag itself.
 *
 * Coalescing contract: a Scheduler must be stateless (pick() decides
 * from its arguments alone — the class contract below). The event
 * core's coalesced stepping relies on this to skip pick() calls whose
 * candidate sets provably cannot have gained an admissible entry
 * since the last decision (no arrival, completion, preemption or
 * paged block allocation in between); a deferral (npos while a
 * candidate is admissible) is a live decision, so the core re-asks on
 * the per-token cadence in that case. A stateful scheduler that
 * changes its answer with nothing but waitCycles aging would need
 * MCBP_SERVING_STEP=per-token.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace mcbp::engine {

/** Selectable admission policies (ServingOptions::policy). */
enum class SchedulerPolicy
{
    Fifo,
    SkipAhead,
    ShortestPromptFirst,
};

/** Canonical name, e.g. "fifo", "skip-ahead", "shortest-prompt". */
std::string toString(SchedulerPolicy policy);

/** Parse a policy name; fatal() on unknown names. */
SchedulerPolicy schedulerPolicyFromString(const std::string &name);

/** All selectable policies (for sweeps and validation messages). */
const std::vector<SchedulerPolicy> &allSchedulerPolicies();

/** One waiting request, as the scheduler sees it. */
struct AdmissionCandidate
{
    std::size_t promptLen = 0;
    std::size_t decodeLen = 0;
    /** Cycles this candidate has waited since its arrival. */
    double waitCycles = 0.0;
    /**
     * Prefill cycles admitting it would pay right now (for a
     * preempted request this is the re-priced recompute prefill over
     * its prompt + generated tokens).
     */
    double prefillCycles = 0.0;
    /** Free slot + model compatible + KV allocation fits, right now. */
    bool admissible = false;
};

/** KV-pool pressure at the moment of an admission decision. */
struct KvPressure
{
    bool bounded = false;      ///< False when the pool is unbounded.
    double freeBytes = 0.0;    ///< Unallocated pool bytes (bounded only).
    double freeFraction = 1.0; ///< freeBytes / capacity (1 unbounded).
};

/** Admission-order policy. Stateless; the event core owns all state. */
class Scheduler
{
  public:
    /** Returned by pick() when nothing should be admitted yet. */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    virtual ~Scheduler() = default;

    virtual std::string name() const = 0;

    /**
     * Index into @p waiting (arrival order) of the request to admit
     * next, or npos to wait — e.g. deferring under @p kv pressure.
     * Must return an admissible index. Deferral requires someone
     * else to make progress: npos with an idle engine and no future
     * arrival left to wake it is a contract violation the event core
     * panics on (admission livelock).
     */
    virtual std::size_t
    pick(const std::vector<AdmissionCandidate> &waiting,
         const KvPressure &kv) const = 0;
};

/**
 * Build the scheduler implementing @p policy. @p sjfAgingWeight is the
 * shortest-prompt policy's starvation bound: the aging credit per
 * waited cycle subtracted from a candidate's prefill-cycle key (1.0 =
 * cycle-for-cycle, the default; 0 = pure SJF). Other policies ignore
 * it.
 */
std::unique_ptr<Scheduler> makeScheduler(SchedulerPolicy policy,
                                         double sjfAgingWeight = 1.0);

} // namespace mcbp::engine
