#include "engine/health.hpp"

#include <algorithm>
#include <cctype>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace mcbp::engine {

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Strict non-negative integer parse (the axis grammar). */
bool
toAxis(const std::string &value, std::size_t &out)
{
    if (value.empty())
        return false;
    std::size_t v = 0;
    for (char ch : value) {
        if (ch < '0' || ch > '9')
            return false;
        v = v * 10 + static_cast<std::size_t>(ch - '0');
    }
    out = v;
    return true;
}

} // namespace

std::string
degradedSpec(const std::string &spec)
{
    // Parse `name[:key=value,...]` preserving option order, so the
    // rewritten spec stays recognizably the caller's spec.
    const std::size_t colon = spec.find(':');
    const std::string name = toLower(spec.substr(0, colon));
    fatalIf(name.empty(), "empty accelerator spec");
    std::vector<std::pair<std::string, std::string>> options;
    if (colon != std::string::npos) {
        const std::string rest = spec.substr(colon + 1);
        std::size_t pos = 0;
        while (pos < rest.size()) {
            const std::size_t comma = rest.find(',', pos);
            const std::string kv = rest.substr(
                pos, comma == std::string::npos ? std::string::npos
                                                : comma - pos);
            const std::size_t eq = kv.find('=');
            fatalIf(eq == std::string::npos || eq == 0,
                    "malformed option '" + kv + "' in spec '" + spec +
                        "'");
            options.emplace_back(toLower(kv.substr(0, eq)),
                                 kv.substr(eq + 1));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    auto axis = [&](const char *key) -> std::size_t {
        for (const auto &kv : options)
            if (kv.first == key) {
                std::size_t v = 0;
                fatalIf(!toAxis(kv.second, v),
                        "option '" + std::string(key) +
                            "' needs a non-negative integer in spec '" +
                            spec + "'");
                return v;
            }
        return 1; // Absent axis = degree 1.
    };
    std::size_t tp = axis("tp");
    std::size_t tp2 = axis("tp2");
    std::size_t pp = axis("pp");

    // Halve the widest redundant axis. The outer tensor tier goes
    // first: a chip failure excises its whole inner tp= group, so the
    // tp2= ring loses a member while the surviving groups keep their
    // shape (and tp2's tp>=2 requirement stays satisfiable). Then the
    // inner tensor group loses a shard pair, then the pipeline
    // re-partitions. dp= is NOT intra-replica redundancy — the fleet
    // reroutes around a dead replica instead of shrinking one — so a
    // spec whose only multi-chip axis is dp= has no degraded form.
    if (tp2 >= 2)
        tp2 /= 2;
    else if (tp >= 2)
        tp /= 2;
    else if (pp >= 2)
        pp /= 2;
    else
        return "";

    const bool has_fabric = tp > 1 || pp > 1;
    const bool has_tier2 = tp2 > 1 || pp > 1;
    std::string out = name;
    char sep = ':';
    for (const auto &kv : options) {
        std::string value = kv.second;
        if (kv.first == "tp") {
            if (tp <= 1)
                continue; // tp=1 is the registry's no-fabric no-op.
            value = std::to_string(tp);
        } else if (kv.first == "tp2") {
            if (tp2 <= 1)
                continue; // tp2=1 is the flat single-tier ring.
            value = std::to_string(tp2);
        } else if (kv.first == "pp") {
            if (pp <= 1)
                continue;
            value = std::to_string(pp);
        } else if (kv.first == "mb") {
            if (pp <= 1)
                continue; // Micro-batching needs a pipeline.
        } else if (kv.first == "linkgbs" || kv.first == "linkpj" ||
                   kv.first == "hops") {
            if (!has_fabric)
                continue; // Link knobs need a multi-chip fabric.
        } else if (kv.first == "linkgbs2" || kv.first == "linkpj2" ||
                   kv.first == "hops2") {
            if (!has_tier2)
                continue; // Tier-2 knobs need a boundary fabric.
        }
        out += sep;
        sep = ',';
        out += kv.first;
        out += '=';
        out += value;
    }
    return out;
}

} // namespace mcbp::engine
