/**
 * @file
 * Block-granular KV-cache accounting for the serving engine.
 *
 * Two admission policies share one capacity sentinel (a capacity
 * <= 0 means unbounded, everywhere):
 *
 *  - KvPolicy::Reserve — the conservative pre-paging rule: a request
 *    reserves its full (prompt + decode) KV footprint at admission and
 *    holds it until completion. No preemption can ever be needed, but
 *    the engine under-admits exactly when decode-heavy requests are
 *    far from their final length.
 *
 *  - KvPolicy::Paged — vLLM-style block paging: KV is allocated in
 *    fixed blocks of `blockTokens` tokens as a request actually grows.
 *    Admission charges only the current residency (prompt + any
 *    recompute progress), decode appends one token per iteration and
 *    allocates a new block only when the last one fills, and when the
 *    pool cannot hold the batch's growth the youngest running request
 *    is preempted: its blocks are freed and it is re-queued for
 *    recompute, whose cycles/energy are re-priced through the
 *    accelerator's prefill path at its full (prompt + generated)
 *    length.
 *
 * KvBlockManager owns the paged ledger: block rounding, capacity and
 * admission-watermark checks, and the fragmentation statistics the
 * report surfaces (allocated vs needed bytes, peak internal
 * fragmentation). A request whose decodeLen is 0 retains no KV at all
 * (prefill-only work never reads the cache back), under either policy.
 *
 * Tensor-parallel sharding (Capabilities::kvShards): each of the N
 * shards stores 1/N of every token's KV (the head split), so
 * per-shard capacity is 1/N of the fleet HBM and every shard's block
 * ledger is an exact 1/N copy of the aggregate one. The aggregate
 * accounting below is therefore identical to per-shard accounting by
 * symmetry, and needs no shard knob; benches and examples read
 * Capabilities::kvShards directly to surface the per-shard view.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/annotations.hpp"

namespace mcbp::engine {

/** Selectable KV admission policies (ServingOptions::kvPolicy). */
enum class KvPolicy
{
    Reserve, ///< Full-footprint reservation at admission (pre-paging).
    Paged,   ///< Block-granular growth with preempt-and-recompute.
};

/** Canonical name, e.g. "reserve", "paged". */
std::string toString(KvPolicy policy);

/** Parse a policy name; fatal() on unknown names. */
KvPolicy kvPolicyFromString(const std::string &name);

/** All selectable policies (for sweeps and validation messages). */
const std::vector<KvPolicy> &allKvPolicies();

/** The one capacity sentinel: any capacity <= 0 means unbounded. */
inline bool
kvUnbounded(double capacityBytes)
{
    return capacityBytes <= 0.0;
}

/** KV admission configuration (the event core's memory knobs). */
struct KvOptions
{
    KvPolicy policy = KvPolicy::Reserve;
    /** Pool capacity in bytes; <= 0 = unbounded (unified sentinel). */
    double capacityBytes = 0.0;
    /** Tokens per KV block (paged granularity). */
    std::size_t blockTokens = 16;
    /**
     * Fraction of the capacity paged admission keeps free as growth
     * headroom while requests are running (vLLM's watermark): a
     * waiting request is only admitted if its blocks fit within
     * capacity x (1 - lowWatermark). Growth of already-running
     * requests and admission into an idle engine ignore it.
     */
    double lowWatermark = 0.05;
};

/**
 * The full-footprint bytes a request holds at its largest, under
 * @p kv's policy: 0 for decodeLen == 0 (no KV is ever retained),
 * exact bytes under Reserve, block-rounded bytes under Paged.
 */
double kvFootprintBytes(const KvOptions &kv, double bytesPerToken,
                        std::size_t promptLen, std::size_t decodeLen);

/**
 * Block-granular KV pool ledger (deterministic; internally
 * synchronized so shard views and monitors may read it concurrently
 * with the owning event core — the clang thread-safety lane checks
 * every ledger access is made under the annotated mutex).
 *
 * Capacity decisions (fits()) read only the allocated-bytes ledger,
 * which changes solely at block boundaries, admissions, preemptions
 * and completions — the discrete events the serving core's coalesced
 * stepping breaks its windows at. The needed-bytes ledger is
 * statistics-only (fragmentation/utilization), so advancing it in a
 * closed-form lump between boundaries can never flip a decision.
 */
class KvBlockManager
{
  public:
    explicit KvBlockManager(const KvOptions &opts);

    bool unbounded() const { return kvUnbounded(opts_.capacityBytes); }
    const KvOptions &options() const { return opts_; }

    /**
     * Bytes a request with @p bytesPerToken per-token KV holds when
     * @p tokens tokens are resident, rounded up to whole blocks.
     */
    double allocatedBytes(double bytesPerToken, std::size_t tokens) const;

    /**
     * Would growing the pool by @p extraBytes fit? @p admission
     * additionally reserves the low-watermark headroom (only applied
     * by admission while other requests are running). Always true
     * when unbounded.
     */
    bool fits(double extraBytes, bool admission) const;

    /** Charge @p allocated block bytes covering @p needed exact bytes. */
    void add(double allocated, double needed);

    /** Release bytes previously charged with add(). */
    void remove(double allocated, double needed);

    /**
     * Clear the floating-point residue of an empty pool (an idle
     * engine holds no KV); panic() if more than residue remains —
     * that would be a leaked allocation.
     */
    void clearIdleResidual();

    double usedBytes() const;
    double neededBytes() const;
    double peakUsedBytes() const;
    /** Peak internal fragmentation (allocated - needed) in bytes. */
    double peakFragmentationBytes() const;
    double freeBytes() const;
    /** Free fraction of the pool (1.0 when unbounded). */
    double freeFraction() const;

  private:
    /** freeBytes() body for callers already holding the lock. */
    double freeBytesLocked() const MCBP_REQUIRES(mutex_);

    KvOptions opts_;
    mutable Mutex mutex_;
    /** Allocated (block-rounded) bytes. */
    double used_ MCBP_GUARDED_BY(mutex_) = 0.0;
    /** Exact bytes the resident tokens need. */
    double needed_ MCBP_GUARDED_BY(mutex_) = 0.0;
    double peakUsed_ MCBP_GUARDED_BY(mutex_) = 0.0;
    double peakFrag_ MCBP_GUARDED_BY(mutex_) = 0.0;
};

} // namespace mcbp::engine
