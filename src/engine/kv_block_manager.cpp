#include "engine/kv_block_manager.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace mcbp::engine {

std::string
toString(KvPolicy policy)
{
    switch (policy) {
    case KvPolicy::Reserve:
        return "reserve";
    case KvPolicy::Paged:
        return "paged";
    }
    panic("unhandled KV policy");
}

KvPolicy
kvPolicyFromString(const std::string &name)
{
    for (KvPolicy p : allKvPolicies())
        if (name == toString(p))
            return p;
    fatal("unknown KV policy '" + name +
          "' (expected reserve or paged)");
}

const std::vector<KvPolicy> &
allKvPolicies()
{
    static const std::vector<KvPolicy> all = {KvPolicy::Reserve,
                                              KvPolicy::Paged};
    return all;
}

double
kvFootprintBytes(const KvOptions &kv, double bytesPerToken,
                 std::size_t promptLen, std::size_t decodeLen)
{
    // Prefill-only requests never read the cache back: nothing is
    // retained, so nothing is charged (under either policy).
    if (decodeLen == 0)
        return 0.0;
    const std::size_t tokens = promptLen + decodeLen;
    if (kv.policy == KvPolicy::Reserve)
        return bytesPerToken * static_cast<double>(tokens);
    return KvBlockManager(kv).allocatedBytes(bytesPerToken, tokens);
}

KvBlockManager::KvBlockManager(const KvOptions &opts) : opts_(opts)
{
    fatalIf(opts_.blockTokens == 0, "KV block size must be >= 1 token");
    fatalIf(opts_.lowWatermark < 0.0 || opts_.lowWatermark >= 1.0,
            "KV low watermark must be in [0, 1)");
}

double
KvBlockManager::allocatedBytes(double bytesPerToken,
                               std::size_t tokens) const
{
    if (tokens == 0 || bytesPerToken <= 0.0)
        return 0.0;
    // Whole blocks of blockTokens tokens. Every TP shard holds the
    // same block count of 1/shards-sized slices, so the aggregate is
    // exactly shards x the per-shard ledger (see file comment).
    const std::size_t blocks =
        (tokens + opts_.blockTokens - 1) / opts_.blockTokens;
    return static_cast<double>(blocks) *
           static_cast<double>(opts_.blockTokens) * bytesPerToken;
}

bool
KvBlockManager::fits(double extraBytes, bool admission) const
{
    if (unbounded())
        return true;
    const double headroom =
        admission ? opts_.lowWatermark * opts_.capacityBytes : 0.0;
    MutexLock lock(mutex_);
    return used_ + extraBytes <= opts_.capacityBytes - headroom;
}

void
KvBlockManager::add(double allocated, double needed)
{
    MutexLock lock(mutex_);
    used_ += allocated;
    needed_ += needed;
    peakUsed_ = std::max(peakUsed_, used_);
    peakFrag_ = std::max(peakFrag_, used_ - needed_);
}

void
KvBlockManager::remove(double allocated, double needed)
{
    MutexLock lock(mutex_);
    used_ -= allocated;
    needed_ -= needed;
}

void
KvBlockManager::clearIdleResidual()
{
    MutexLock lock(mutex_);
    panicIf(std::abs(used_) > 1.0,
            "KV block accounting leak: idle engine still holds "
            "allocated blocks");
    used_ = 0.0;
    needed_ = 0.0;
}

double
KvBlockManager::usedBytes() const
{
    MutexLock lock(mutex_);
    return used_;
}

double
KvBlockManager::neededBytes() const
{
    MutexLock lock(mutex_);
    return needed_;
}

double
KvBlockManager::peakUsedBytes() const
{
    MutexLock lock(mutex_);
    return peakUsed_;
}

double
KvBlockManager::peakFragmentationBytes() const
{
    MutexLock lock(mutex_);
    return peakFrag_;
}

double
KvBlockManager::freeBytesLocked() const
{
    if (unbounded())
        return 0.0;
    return std::max(0.0, opts_.capacityBytes - used_);
}

double
KvBlockManager::freeBytes() const
{
    MutexLock lock(mutex_);
    return freeBytesLocked();
}

double
KvBlockManager::freeFraction() const
{
    if (unbounded())
        return 1.0;
    MutexLock lock(mutex_);
    return freeBytesLocked() / opts_.capacityBytes;
}

} // namespace mcbp::engine
