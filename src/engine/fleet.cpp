#include "engine/fleet.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/annotations.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "sim/fault_model.hpp"

namespace mcbp::engine {

std::string
toString(ReplicaPolicy policy)
{
    switch (policy) {
    case ReplicaPolicy::LeastLoaded:
        return "least-loaded";
    case ReplicaPolicy::RoundRobin:
        return "round-robin";
    }
    panic("unknown replica policy");
}

ReplicaPolicy
replicaPolicyFromString(const std::string &name)
{
    if (name == "least" || name == "least-loaded")
        return ReplicaPolicy::LeastLoaded;
    if (name == "rr" || name == "round-robin")
        return ReplicaPolicy::RoundRobin;
    fatal("unknown replica policy '" + name +
          "' (accepted: least, least-loaded, rr, round-robin)");
}

// ---- FleetAccelerator ------------------------------------------------------

FleetAccelerator::FleetAccelerator(std::unique_ptr<Accelerator> replica,
                                   FleetOptions opts)
    : replica_(std::move(replica)), opts_(opts)
{
    fatalIf(!replica_, "fleet needs a replica accelerator");
    fatalIf(opts_.dataParallel == 0,
            "data-parallel degree must be >= 1");
    fatalIf(dynamic_cast<const FleetAccelerator *>(replica_.get()) !=
                nullptr,
            "nested fleet composition is not modeled; use a single "
            "dp= degree");
}

std::string
FleetAccelerator::name() const
{
    if (opts_.dataParallel == 1)
        return replica_->name();
    return replica_->name() + "[dp" +
           std::to_string(opts_.dataParallel) + "]";
}

Capabilities
FleetAccelerator::capabilities() const
{
    Capabilities c = replica_->capabilities();
    c.processors *= opts_.dataParallel;
    c.hbmCapacityBytes *= static_cast<double>(opts_.dataParallel);
    // Fault domains span the whole fleet: the dp= axis multiplies the
    // shard count exactly like tp= and pp= do, so one fault timeline
    // over kvShards domains covers every replica's chips.
    c.kvShards *= opts_.dataParallel;
    c.replicas *= opts_.dataParallel;
    return c;
}

std::string
FleetAccelerator::configSummary() const
{
    if (opts_.dataParallel == 1) // identity: no fleet exists.
        return replica_->configSummary();
    std::ostringstream os;
    os << name() << ": " << opts_.dataParallel
       << "-way data-parallel replica fleet, " << toString(opts_.policy)
       << " routing (each request served by exactly one replica)\n"
       << replica_->configSummary();
    return os.str();
}

// ---- FleetRouter -----------------------------------------------------------

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/** Arrival-order request ordering shared by routing and sub-traces. */
bool
arrivesBefore(const model::Request &a, const model::Request &b)
{
    if (a.arrivalSeconds != b.arrivalSeconds)
        return a.arrivalSeconds < b.arrivalSeconds;
    return a.id < b.id;
}

/**
 * Slice one fleet fault timeline into per-replica specs. Chip events
 * land on the owning replica (chip index rebased to the replica's
 * local domain); fleet-wide link/straggler windows reach every
 * replica (their start AND end events — only transient chip repairs
 * are re-derived from ChipFail::repairAt by the explicit-events path,
 * so those are skipped to avoid double emission).
 */
std::vector<sim::FaultSpec>
sliceFaults(const std::vector<sim::FaultEvent> &timeline,
            std::uint64_t seed, std::size_t dp,
            std::size_t perReplicaChips)
{
    std::vector<sim::FaultSpec> specs(dp);
    for (sim::FaultSpec &spec : specs)
        spec.seed = seed; // rates stay 0: the slice IS the timeline.

    std::set<std::pair<std::size_t, double>> autoRepairs;
    for (const sim::FaultEvent &e : timeline)
        if (e.kind == sim::FaultKind::ChipFail && !e.permanent)
            autoRepairs.insert({e.chip, e.repairAt});

    for (const sim::FaultEvent &e : timeline) {
        switch (e.kind) {
        case sim::FaultKind::ChipFail: {
            sim::FaultEvent local = e;
            local.chip = e.chip % perReplicaChips;
            specs[e.chip / perReplicaChips].events.push_back(local);
            break;
        }
        case sim::FaultKind::ChipRepair: {
            // Re-derived from the transient ChipFail on the replica;
            // forward only hand-authored orphan repairs.
            if (autoRepairs.count({e.chip, e.at}))
                break;
            sim::FaultEvent local = e;
            local.chip = e.chip % perReplicaChips;
            specs[e.chip / perReplicaChips].events.push_back(local);
            break;
        }
        default:
            for (sim::FaultSpec &spec : specs)
                spec.events.push_back(e);
            break;
        }
    }
    return specs;
}

/**
 * When each replica goes irrecoverably dead, mirroring the event
 * core's semantics: a permanent chip failure kills the replica
 * outright without a degraded topology, and the SECOND permanent
 * failure kills it when one is configured (the first merely degrades).
 */
std::vector<double>
replicaDeathTimes(const std::vector<sim::FaultEvent> &timeline,
                  std::size_t dp, std::size_t perReplicaChips,
                  bool hasDegraded)
{
    std::vector<double> deadAt(dp, kNever);
    std::vector<std::size_t> permanents(dp, 0);
    for (const sim::FaultEvent &e : timeline) {
        if (e.kind != sim::FaultKind::ChipFail || !e.permanent)
            continue;
        const std::size_t r = e.chip / perReplicaChips;
        ++permanents[r];
        if (deadAt[r] == kNever &&
            (!hasDegraded || permanents[r] >= 2))
            deadAt[r] = e.at;
    }
    return deadAt;
}

/** Per-replica sub-simulation results, written concurrently by the
 *  fan-out below and therefore lock-guarded. */
struct ReplicaRuns
{
    mcbp::Mutex mu;
    std::vector<ServingReport> reports MCBP_GUARDED_BY(mu);
};

} // namespace

FleetRouter::FleetRouter(const FleetAccelerator &fleet,
                         ServingOptions opts)
    : fleet_(&fleet), opts_(std::move(opts))
{
}

FleetOutcome
FleetRouter::simulate(const std::vector<model::Request> &trace) const
{
    const std::size_t dp = fleet_->options().dataParallel;
    const Accelerator &replica = fleet_->replica();

    // Per-replica serving options: the fleet-wide KV budget splits
    // evenly (replicas are symmetric), the degraded fleet unwraps to
    // its replica, and the fault spec is replaced per replica below.
    ServingOptions ropts = opts_;
    if (opts_.degradedAccel != nullptr) {
        if (const auto *degFleet = dynamic_cast<const FleetAccelerator *>(
                opts_.degradedAccel))
            ropts.degradedAccel = &degFleet->replica();
    }
    if (!kvUnbounded(opts_.kvCapacityBytes))
        ropts.kvCapacityBytes =
            opts_.kvCapacityBytes / static_cast<double>(dp);

    FleetOutcome out;
    if (dp == 1) {
        // Identity: one replica serves the whole trace — bit-identical
        // to the flat (non-fleet) path by construction.
        out.replicas.push_back(
            ServingSimulator(replica, ropts).simulate(trace));
        out.fleet = out.replicas.back();
        out.assignment.assign(trace.size(), 0);
        return out;
    }

    if (trace.empty()) {
        out.fleet = ServingSimulator(replica, ropts).simulate(trace);
        out.fleet.accelerator = fleet_->name();
        out.replicas.resize(dp, out.fleet);
        for (ServingReport &r : out.replicas)
            r.accelerator = replica.name();
        return out;
    }

    // ---- Fleet-level costing --------------------------------------------
    // One healthy costing of the full trace feeds (a) the routing
    // estimates and (b) the fleet serial baseline — each request
    // counted exactly once however often failover re-dispatches it.
    ServingOptions costOpts = ropts;
    costOpts.faults = {};
    costOpts.degradedAccel = nullptr;
    const ServingSimulator::CostedTrace costed =
        ServingSimulator(replica, costOpts).costTrace(trace);
    const double to_seconds = 1.0 / (costed.clockGhz * 1e9);

    std::vector<double> estSeconds(trace.size(), 0.0);
    std::vector<double> kvDemand(trace.size(), 0.0);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const CostedRequest &c = costed.costs[i];
        const double perToken =
            c.weightCyclesPerToken + c.linearCyclesPerToken +
            c.otherCyclesPerToken + c.fixedCyclesPerToken;
        estSeconds[i] =
            (c.prefillCycles +
             static_cast<double>(c.remainingTokens) * perToken) *
            to_seconds;
        kvDemand[i] = c.kvBytes;
    }

    // ---- Fault slicing ----------------------------------------------------
    const std::size_t perReplicaChips =
        std::max<std::size_t>(1, replica.capabilities().kvShards);
    std::vector<sim::FaultEvent> timeline;
    if (opts_.faults.enabled())
        timeline =
            sim::buildFaultTimeline(opts_.faults, perReplicaChips * dp);
    std::vector<sim::FaultSpec> replicaFaults =
        sliceFaults(timeline, opts_.faults.seed, dp, perReplicaChips);
    const std::vector<double> deadAt = replicaDeathTimes(
        timeline, dp, perReplicaChips, ropts.degradedAccel != nullptr);

    // ---- Route in arrival order ------------------------------------------
    // Deterministic virtual-load balancer: outstanding KV bytes per
    // replica, retired at each request's estimated finish time.
    std::vector<std::size_t> order(trace.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return arrivesBefore(trace[a], trace[b]);
                     });

    auto aliveAt = [&](std::size_t r, double t) {
        return deadAt[r] > t;
    };
    // Route to the latest-dying replica when every replica is already
    // dead at arrival — the request drops there deterministically.
    auto lastResort = [&]() {
        std::size_t best = 0;
        for (std::size_t r = 1; r < dp; ++r)
            if (deadAt[r] > deadAt[best])
                best = r;
        return best;
    };

    std::vector<std::size_t> assign(trace.size(), 0);
    // (finish time, kv bytes) of virtually in-flight requests.
    std::vector<std::vector<std::pair<double, double>>> inflight(dp);
    std::vector<double> outstanding(dp, 0.0);
    std::size_t rrSeq = 0;
    for (const std::size_t i : order) {
        const double t = trace[i].arrivalSeconds;
        std::size_t target = dp; // sentinel: none alive yet.
        if (fleet_->options().policy == ReplicaPolicy::RoundRobin) {
            for (std::size_t k = 0; k < dp; ++k) {
                const std::size_t r = (rrSeq + k) % dp;
                if (aliveAt(r, t)) {
                    target = r;
                    break;
                }
            }
            ++rrSeq;
        } else {
            for (std::size_t r = 0; r < dp; ++r) {
                // Retire virtually finished work before comparing.
                auto &fl = inflight[r];
                for (std::size_t k = 0; k < fl.size();) {
                    if (fl[k].first <= t) {
                        outstanding[r] -= fl[k].second;
                        fl[k] = fl.back();
                        fl.pop_back();
                    } else {
                        ++k;
                    }
                }
                if (!aliveAt(r, t))
                    continue;
                if (target == dp || outstanding[r] < outstanding[target])
                    target = r;
            }
        }
        if (target == dp)
            target = lastResort();
        assign[i] = target;
        outstanding[target] += kvDemand[i];
        inflight[target].push_back({t + estSeconds[i], kvDemand[i]});
    }

    // ---- Per-replica simulation ------------------------------------------
    std::vector<std::vector<model::Request>> sub(dp);
    for (const std::size_t i : order)
        sub[assign[i]].push_back(trace[i]);

    auto runReplica = [&](std::size_t r) {
        ServingOptions o = ropts;
        o.faults = replicaFaults[r];
        return ServingSimulator(replica, o).simulate(sub[r]);
    };

    ReplicaRuns runs;
    {
        mcbp::MutexLock lock(runs.mu);
        runs.reports.resize(dp);
    }
    parallel::parallelFor(dp, [&](std::size_t r) {
        ServingReport report = runReplica(r);
        mcbp::MutexLock lock(runs.mu);
        runs.reports[r] = std::move(report);
    });
    std::vector<ServingReport> reports;
    {
        mcbp::MutexLock lock(runs.mu);
        reports = std::move(runs.reports);
    }

    // ---- Failover: re-dispatch drops off dead replicas -------------------
    std::map<std::size_t, std::size_t> indexById;
    for (std::size_t i = 0; i < trace.size(); ++i)
        indexById[trace[i].id] = i;

    std::vector<std::size_t> rerouteCount(trace.size(), 0);
    std::vector<bool> settled(trace.size(), false);
    std::vector<std::size_t> rerouteOrder;
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<std::size_t> resim;
        for (std::size_t r = 0; r < dp; ++r) {
            if (deadAt[r] == kNever)
                continue; // healthy replicas drop for non-fault reasons.
            for (const std::size_t id : reports[r].dropOrder) {
                const std::size_t idx = indexById.at(id);
                if (assign[idx] != r || settled[idx])
                    continue;
                const double t0 = trace[idx].arrivalSeconds;
                const double tNew = std::max(t0, deadAt[r]) +
                                    opts_.retry.backoffBaseSeconds;
                // A reroute is a fleet-level retry: bounded by the
                // request's deadline and one visit per other replica.
                const bool pastDeadline =
                    opts_.retry.deadlineSeconds > 0.0 &&
                    tNew > t0 + opts_.retry.deadlineSeconds;
                if (pastDeadline || rerouteCount[idx] >= dp - 1) {
                    settled[idx] = true;
                    continue;
                }
                std::size_t target = dp;
                for (std::size_t k = 1; k <= dp; ++k) {
                    const std::size_t cand = (r + k) % dp;
                    if (cand != r && aliveAt(cand, tNew)) {
                        target = cand;
                        break;
                    }
                }
                if (target == dp) {
                    settled[idx] = true; // nowhere left to go.
                    continue;
                }
                model::Request moved = trace[idx];
                moved.arrivalSeconds = tNew;
                sub[target].push_back(moved);
                assign[idx] = target;
                ++rerouteCount[idx];
                ++out.reroutes;
                rerouteOrder.push_back(id);
                resim.push_back(target);
                changed = true;
            }
        }
        std::sort(resim.begin(), resim.end());
        resim.erase(std::unique(resim.begin(), resim.end()),
                    resim.end());
        for (const std::size_t r : resim) {
            std::stable_sort(sub[r].begin(), sub[r].end(),
                             arrivesBefore);
            reports[r] = runReplica(r);
        }
    }

    // ---- Merge ------------------------------------------------------------
    ServingReport merged;
    merged.accelerator = fleet_->name();
    merged.scheduler = reports[0].scheduler;
    merged.kvPolicy = reports[0].kvPolicy;
    merged.serialSeconds = costed.serialSeconds;
    merged.serialJoules = costed.serialJoules;

    double occupancyWeighted = 0.0;
    double blockUtilWeighted = 0.0;
    for (std::size_t r = 0; r < dp; ++r) {
        const ServingReport &rep = reports[r];
        merged.makespanSeconds =
            std::max(merged.makespanSeconds, rep.makespanSeconds);
        merged.busySeconds += rep.busySeconds;
        merged.peakBatch = std::max(merged.peakBatch, rep.peakBatch);
        merged.kvPeakBytes =
            std::max(merged.kvPeakBytes, rep.kvPeakBytes);
        merged.preemptions += rep.preemptions;
        merged.recomputedTokens += rep.recomputedTokens;
        merged.kvFragmentationPeakBytes =
            std::max(merged.kvFragmentationPeakBytes,
                     rep.kvFragmentationPeakBytes);
        merged.decodeIterations += rep.decodeIterations;
        merged.decodeWindows += rep.decodeWindows;
        occupancyWeighted += rep.meanBatchOccupancy *
                             static_cast<double>(rep.decodeIterations);
        blockUtilWeighted += rep.kvBlockUtilization *
                             static_cast<double>(rep.decodeIterations);

        merged.faultEvents += rep.faultEvents;
        merged.killedInFlight += rep.killedInFlight;
        merged.retriesScheduled += rep.retriesScheduled;
        merged.faultLostTokens += rep.faultLostTokens;
        merged.faultRecomputeSeconds += rep.faultRecomputeSeconds;
        merged.degradedSeconds += rep.degradedSeconds;
        merged.outageSeconds += rep.outageSeconds;

        // Decision logs concatenate in replica order: each replica's
        // per-token and coalesced runs produce identical sequences, so
        // the concatenation preserves the step-mode identity contract.
        merged.admissionOrder.insert(merged.admissionOrder.end(),
                                     rep.admissionOrder.begin(),
                                     rep.admissionOrder.end());
        merged.preemptionOrder.insert(merged.preemptionOrder.end(),
                                      rep.preemptionOrder.begin(),
                                      rep.preemptionOrder.end());
        merged.retryOrder.insert(merged.retryOrder.end(),
                                 rep.retryOrder.begin(),
                                 rep.retryOrder.end());

        for (const RequestMetrics &rm : rep.requests) {
            RequestMetrics fixed = rm;
            const std::size_t idx = indexById.at(rm.id);
            if (rerouteCount[idx] > 0) {
                // A rerouted request's latency runs from its ORIGINAL
                // arrival; the replica only saw the re-dispatch time.
                fixed.arrivalSeconds = trace[idx].arrivalSeconds;
                fixed.retries += rerouteCount[idx];
                if (opts_.retry.deadlineSeconds > 0.0)
                    fixed.sloMiss =
                        fixed.completionSeconds >
                        fixed.arrivalSeconds +
                            opts_.retry.deadlineSeconds;
            }
            merged.requests.push_back(fixed);
        }

        // Chip events are replica-local (remapped to fleet domains);
        // fleet-wide link/straggler windows were fanned out to every
        // replica, so keep replica 0's copy only.
        for (const ServingReport::FaultImpact &f : rep.faultLog) {
            const bool chipEvent =
                f.kind == "chip-fail" || f.kind == "chip-repair";
            if (!chipEvent && r != 0)
                continue;
            ServingReport::FaultImpact g = f;
            if (chipEvent)
                g.chip = r * perReplicaChips + f.chip;
            merged.faultLog.push_back(g);
        }
    }

    // Fleet-level reroutes are retries too, logged after the
    // per-replica decision streams.
    merged.retriesScheduled += out.reroutes;
    merged.retryOrder.insert(merged.retryOrder.end(),
                             rerouteOrder.begin(), rerouteOrder.end());

    std::stable_sort(merged.requests.begin(), merged.requests.end(),
                     [](const RequestMetrics &a,
                        const RequestMetrics &b) {
                         if (a.completionSeconds != b.completionSeconds)
                             return a.completionSeconds <
                                    b.completionSeconds;
                         return a.id < b.id;
                     });
    std::stable_sort(merged.faultLog.begin(), merged.faultLog.end(),
                     [](const ServingReport::FaultImpact &a,
                        const ServingReport::FaultImpact &b) {
                         if (a.seconds != b.seconds)
                             return a.seconds < b.seconds;
                         return a.chip < b.chip;
                     });
    for (std::size_t k = 0; k < merged.faultLog.size(); ++k)
        merged.faultLog[k].eventId = k;

    // Final drops: a request that completed anywhere is not dropped,
    // however many dead replicas logged it on the way.
    std::set<std::size_t> completedIds;
    for (const RequestMetrics &rm : merged.requests)
        completedIds.insert(rm.id);
    std::set<std::size_t> droppedSeen;
    for (std::size_t r = 0; r < dp; ++r)
        for (const std::size_t id : reports[r].dropOrder)
            if (completedIds.count(id) == 0 &&
                droppedSeen.insert(id).second)
                merged.dropOrder.push_back(id);
    merged.droppedRequests = trace.size() - completedIds.size();

    merged.kvUtilization =
        !kvUnbounded(ropts.kvCapacityBytes)
            ? merged.kvPeakBytes / ropts.kvCapacityBytes
            : 0.0;
    merged.degradedFraction =
        merged.makespanSeconds > 0.0
            ? merged.degradedSeconds / merged.makespanSeconds
            : 0.0;

    finalizeServingAggregates(merged, trace.size());
    if (!merged.noCompletions) {
        merged.meanBatchOccupancy =
            merged.decodeIterations > 0
                ? occupancyWeighted /
                      static_cast<double>(merged.decodeIterations)
                : 0.0;
        merged.kvBlockUtilization =
            merged.decodeIterations > 0
                ? blockUtilWeighted /
                      static_cast<double>(merged.decodeIterations)
                : 0.0;
    }

    out.fleet = std::move(merged);
    out.replicas = std::move(reports);
    out.assignment = std::move(assign);
    return out;
}

} // namespace mcbp::engine
