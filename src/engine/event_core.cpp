#include "engine/event_core.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "accel/report.hpp"
#include "common/logging.hpp"

namespace mcbp::engine {

EventCore::EventCore(const Scheduler &scheduler, std::size_t maxBatch,
                     KvOptions kv, PrefillPricer repricer)
    : scheduler_(&scheduler), maxBatch_(maxBatch), kv_(kv),
      repricer_(std::move(repricer))
{
    fatalIf(maxBatch_ == 0, "maxBatch must be positive");
    fatalIf(kv_.policy == KvPolicy::Paged && !repricer_,
            "paged KV needs a prefill re-pricer for recompute");
}

EventStats
EventCore::run(std::vector<CostedRequest> &requests) const
{
    EventStats stats;
    stats.completed.reserve(requests.size());

    const bool paged = kv_.policy == KvPolicy::Paged;
    const bool bounded = !kvUnbounded(kv_.capacityBytes);
    KvBlockManager pool(kv_);

    // A request larger than the whole budget would wait forever (even
    // paged: its final residency can never be held).
    if (bounded)
        for (const CostedRequest &c : requests)
            fatalIf(c.kvBytes > kv_.capacityBytes,
                    "request KV footprint exceeds the configured "
                    "capacity; it can never be admitted");

    // Process arrivals in order regardless of the trace's sort.
    std::vector<std::size_t> order(requests.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return requests[a].arrivalCycles <
                                requests[b].arrivalCycles;
                     });

    double clock = 0.0;
    double kv_in_use = 0.0; // Reserve-policy byte ledger.
    std::size_t next_arrival = 0;
    std::deque<CostedRequest *> waiting;
    std::vector<CostedRequest *> active; // Admission order.
    std::vector<AdmissionCandidate> candidates;

    // Tokens of c's KV resident after a (re)prefill: the prompt plus
    // whatever decode progress a recompute restores. Prefill-only
    // requests retain nothing.
    auto resident_tokens = [](const CostedRequest &c) -> std::size_t {
        if (c.req->decodeLen == 0)
            return 0;
        return c.promptTokens + (c.req->decodeLen - c.remainingTokens);
    };

    auto finish = [&](CostedRequest &c) {
        c.completionCycles = clock;
        if (paged) {
            pool.remove(c.kvAllocatedBytes, c.kvNeededBytes);
            c.kvAllocatedBytes = 0.0;
            c.kvNeededBytes = 0.0;
        } else {
            kv_in_use -= c.kvBytes;
        }
        stats.completed.push_back(&c);
    };

    // Preempt the youngest running request (vLLM's recompute rule):
    // free its blocks, re-price its recompute prefill — the prompt
    // plus every token it has generated, replayed through the
    // accelerator's prefill path — and re-queue it at the head.
    auto preempt_youngest = [&] {
        panicIf(active.empty(), "preemption with an empty batch");
        CostedRequest *c = active.back();
        active.pop_back();
        pool.remove(c->kvAllocatedBytes, c->kvNeededBytes);
        c->kvAllocatedBytes = 0.0;
        c->kvNeededBytes = 0.0;
        const std::size_t progress =
            c->req->decodeLen - c->remainingTokens;
        c->recomputedTokens += progress;
        stats.recomputedTokens += progress;
        ++c->preemptions;
        ++stats.preemptions;
        const PrefillPrice price =
            repricer_(*c, c->promptTokens + progress);
        c->prefillCycles = price.cycles;
        // The recompute's energy is genuinely spent on top of whatever
        // the request already burned; charge it now (the re-admission
        // always happens — the loop runs the trace to completion).
        c->joules += price.joules;
        waiting.push_front(c);
    };

    // Pull every request that has arrived by the current clock into
    // the waiting queue (arrival order).
    auto pull_arrivals = [&] {
        while (next_arrival < order.size() &&
               requests[order[next_arrival]].arrivalCycles <= clock)
            waiting.push_back(&requests[order[next_arrival++]]);
    };

    const std::size_t total = requests.size();
    while (stats.completed.size() < total) {
        // An idle engine holds no KV. Assert that (a drift beyond any
        // FP residue means a reservation leaked), then clear the
        // residue so exact-capacity admission can never stall on one.
        if (active.empty()) {
            if (paged) {
                pool.clearIdleResidual();
            } else {
                panicIf(std::abs(kv_in_use) > 1.0,
                        "KV accounting leak: idle engine still holds "
                        "reserved bytes");
                kv_in_use = 0.0;
            }
        }

        pull_arrivals();

        // Idle engine: jump to the next arrival.
        if (active.empty() && waiting.empty()) {
            panicIf(next_arrival >= order.size(),
                    "serving scheduler stalled with requests pending");
            clock = requests[order[next_arrival]].arrivalCycles;
            continue;
        }

        // Admission: the scheduler picks among the admissible waiting
        // requests — a free batch slot, the running batch's model (the
        // engine serves one model at a time; an empty batch anchors on
        // whatever is admitted first), and a KV allocation that fits:
        // the full footprint under Reserve, the current residency
        // (plus the low-watermark growth headroom while others run)
        // under Paged. Each admission pays its prefill before joining
        // the batch.
        bool admitted_any = false;
        while (!waiting.empty() && active.size() < maxBatch_) {
            // Refresh arrivals first: a prefill just paid advanced the
            // clock, and anything that arrived meanwhile must be
            // visible to order-sensitive policies (SJF, skip-ahead).
            // FIFO is unaffected — late arrivals only join the tail.
            pull_arrivals();
            const std::string *batch_model =
                active.empty() ? nullptr : &active.front()->req->model;
            candidates.clear();
            candidates.reserve(waiting.size());
            for (const CostedRequest *c : waiting) {
                AdmissionCandidate cand;
                cand.promptLen = c->req->promptLen;
                cand.decodeLen = c->req->decodeLen;
                cand.waitCycles = clock - c->arrivalCycles;
                cand.prefillCycles = c->prefillCycles;
                const bool model_ok = batch_model == nullptr ||
                                      c->req->model == *batch_model;
                bool kv_ok;
                if (paged) {
                    const double alloc = pool.allocatedBytes(
                        c->kvBytesPerToken, resident_tokens(*c));
                    kv_ok = pool.fits(alloc, !active.empty());
                } else {
                    kv_ok = !bounded ||
                            kv_in_use + c->kvBytes <= kv_.capacityBytes;
                }
                cand.admissible = model_ok && kv_ok;
                candidates.push_back(cand);
            }
            KvPressure pressure;
            pressure.bounded = bounded;
            if (bounded) {
                const double used = paged ? pool.usedBytes() : kv_in_use;
                pressure.freeBytes =
                    std::max(0.0, kv_.capacityBytes - used);
                pressure.freeFraction =
                    pressure.freeBytes / kv_.capacityBytes;
            }
            const std::size_t pick =
                scheduler_->pick(candidates, pressure);
            if (pick == Scheduler::npos)
                break;
            panicIf(pick >= candidates.size() ||
                        !candidates[pick].admissible,
                    "scheduler picked an inadmissible request");
            CostedRequest *c = waiting[pick];
            waiting.erase(waiting.begin() +
                          static_cast<std::ptrdiff_t>(pick));
            if (!c->admitted) {
                c->admitted = true;
                c->admissionCycles = clock; // First admission only:
            }                               // queue wait ends here.
            if (paged) {
                const std::size_t tokens = resident_tokens(*c);
                const double alloc =
                    pool.allocatedBytes(c->kvBytesPerToken, tokens);
                const double need = c->kvBytesPerToken *
                                    static_cast<double>(tokens);
                pool.add(alloc, need);
                c->kvAllocatedBytes = alloc;
                c->kvNeededBytes = need;
            } else {
                kv_in_use += c->kvBytes;
                stats.kvPeakBytes =
                    std::max(stats.kvPeakBytes, kv_in_use);
            }
            clock += c->prefillCycles;
            stats.busyCycles += c->prefillCycles;
            admitted_any = true;
            if (c->remainingTokens == 0)
                finish(*c);
            else
                active.push_back(c);
        }

        if (active.empty()) {
            if (admitted_any)
                continue; // everything admitted had zero decode tokens.
            // Nothing active, nothing admissible: only future arrivals
            // can unblock a (KV-starved) head, since an idle engine
            // holds no KV. Covered by the idle jump above unless the
            // scheduler violated its contract.
            panicIf(waiting.empty() ||
                        (paged ? pool.usedBytes() : kv_in_use) > 0.0,
                    "admission stalled with an idle engine");
            panicIf(next_arrival >= order.size(),
                    "admission livelock: waiting requests can never "
                    "be admitted");
            clock = std::max(clock,
                             requests[order[next_arrival]].arrivalCycles);
            continue;
        }

        // Paged growth: every active request appends this iteration's
        // token to its KV, allocating a new block when the last one
        // fills. While the pool cannot hold the batch's growth, evict
        // the youngest running request; the footprint precheck above
        // guarantees the oldest alone always fits, so this terminates
        // with at least one survivor.
        if (paged) {
            for (;;) {
                double extra = 0.0;
                for (const CostedRequest *c : active)
                    extra += pool.allocatedBytes(c->kvBytesPerToken,
                                                 resident_tokens(*c) +
                                                     1) -
                             c->kvAllocatedBytes;
                // A lone survivor always fits: the footprint precheck
                // bounds its largest residency by the capacity (the
                // fits() miss can only be the pool's FP residue).
                if (pool.fits(extra, /*admission=*/false) ||
                    active.size() == 1)
                    break;
                preempt_youngest();
            }
            for (CostedRequest *c : active) {
                const std::size_t tokens = resident_tokens(*c) + 1;
                const double alloc =
                    pool.allocatedBytes(c->kvBytesPerToken, tokens);
                const double need = c->kvBytesPerToken *
                                    static_cast<double>(tokens);
                pool.add(alloc - c->kvAllocatedBytes,
                         need - c->kvNeededBytes);
                c->kvAllocatedBytes = alloc;
                c->kvNeededBytes = need;
            }
            if (pool.usedBytes() > 0.0) {
                stats.kvBlockUtilizationSum +=
                    pool.neededBytes() / pool.usedBytes();
                ++stats.kvBlockUtilizationIters;
            }
        }

        // One decode iteration: everyone advances one token. The weight
        // stream is fetched once for the whole batch (max, in cycles
        // and in joules) and overlaps the batch's summed linear work;
        // attention/SFU is per-request work on top.
        double weight_cycles = 0.0;
        double linear_cycles = 0.0;
        double other_cycles = 0.0;
        double fixed_cycles = 0.0;
        double weight_joules = 0.0;
        double linear_max = 0.0;
        double other_max = 0.0;
        for (CostedRequest *c : active) {
            weight_cycles =
                std::max(weight_cycles, c->weightCyclesPerToken);
            weight_joules =
                std::max(weight_joules, c->weightJoulesPerToken);
            linear_cycles += c->linearCyclesPerToken;
            other_cycles += c->otherCyclesPerToken;
            linear_max = std::max(linear_max, c->linearCyclesPerToken);
            other_max = std::max(other_max, c->otherCyclesPerToken);
            // Hop-latency floor: every request's collective is the
            // same collective, so the batch pays it once.
            fixed_cycles =
                std::max(fixed_cycles, c->fixedCyclesPerToken);
        }
        // Stage-aware costing: on a pipeline, distinct requests'
        // traversals overlap across the stages, so the batch's summed
        // work drains at the bottleneck stage (sum/stages) — but a
        // single request can never finish faster than its own full
        // traversal (the max). stages=1 reduces to the plain sum
        // bit-for-bit (sum/1 == sum, and sum >= each element).
        const double stages = static_cast<double>(
            std::max<std::size_t>(1, active.front()->stages));
        const double linear_batch =
            std::max(linear_cycles / stages, linear_max);
        const double other_batch =
            std::max(other_cycles / stages, other_max);
        // Everyone in the batch runs on the same accelerator, so the
        // composition rule is uniform across the active set.
        const double linear_segment = accel::composedLinearCycles(
            weight_cycles, linear_batch,
            active.front()->memorySerialized);
        const double iter_cycles =
            linear_segment + fixed_cycles + other_batch;
        clock += iter_cycles;
        stats.busyCycles += iter_cycles;
        stats.occupancySum += static_cast<double>(active.size());
        stats.peakBatch = std::max(stats.peakBatch, active.size());
        ++stats.iterations;

        const double weight_joules_share =
            weight_joules / static_cast<double>(active.size());
        for (auto it = active.begin(); it != active.end();) {
            CostedRequest *c = *it;
            c->joules += c->otherJoulesPerToken + weight_joules_share;
            if (!c->firstTokenSeen) {
                c->firstTokenSeen = true;
                c->firstTokenCycles = clock;
            }
            if (--c->remainingTokens == 0) {
                finish(*c);
                it = active.erase(it);
            } else {
                ++it;
            }
        }
    }

    stats.clockCycles = clock;
    if (paged) {
        stats.kvPeakBytes = pool.peakUsedBytes();
        stats.kvFragmentationPeakBytes = pool.peakFragmentationBytes();
    }
    return stats;
}

} // namespace mcbp::engine
