#include "engine/event_core.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "accel/report.hpp"
#include "common/logging.hpp"

namespace mcbp::engine {

EventCore::EventCore(const Scheduler &scheduler, std::size_t maxBatch,
                     double kvCapacityBytes)
    : scheduler_(&scheduler), maxBatch_(maxBatch),
      kvCapacityBytes_(kvCapacityBytes)
{
    fatalIf(maxBatch_ == 0, "maxBatch must be positive");
    fatalIf(kvCapacityBytes_ < 0.0, "KV capacity must be >= 0");
}

EventStats
EventCore::run(std::vector<CostedRequest> &requests) const
{
    EventStats stats;
    stats.completed.reserve(requests.size());

    // A request larger than the whole budget would wait forever.
    if (kvCapacityBytes_ > 0.0)
        for (const CostedRequest &c : requests)
            fatalIf(c.kvBytes > kvCapacityBytes_,
                    "request KV footprint exceeds the configured "
                    "capacity; it can never be admitted");

    // Process arrivals in order regardless of the trace's sort.
    std::vector<std::size_t> order(requests.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return requests[a].arrivalCycles <
                                requests[b].arrivalCycles;
                     });

    double clock = 0.0;
    double kv_in_use = 0.0;
    std::size_t next_arrival = 0;
    std::deque<CostedRequest *> waiting;
    std::vector<CostedRequest *> active;
    std::vector<AdmissionCandidate> candidates;

    auto finish = [&](CostedRequest &c) {
        c.completionCycles = clock;
        kv_in_use -= c.kvBytes;
        stats.completed.push_back(&c);
    };
    // Pull every request that has arrived by the current clock into
    // the waiting queue (arrival order).
    auto pull_arrivals = [&] {
        while (next_arrival < order.size() &&
               requests[order[next_arrival]].arrivalCycles <= clock)
            waiting.push_back(&requests[order[next_arrival++]]);
    };

    const std::size_t total = requests.size();
    while (stats.completed.size() < total) {
        // An idle engine holds no KV. Assert that (a drift beyond any
        // FP residue means a reservation leaked), then clear the
        // residue so exact-capacity admission can never stall on one.
        if (active.empty()) {
            panicIf(std::abs(kv_in_use) > 1.0,
                    "KV accounting leak: idle engine still holds "
                    "reserved bytes");
            kv_in_use = 0.0;
        }

        pull_arrivals();

        // Idle engine: jump to the next arrival.
        if (active.empty() && waiting.empty()) {
            panicIf(next_arrival >= order.size(),
                    "serving scheduler stalled with requests pending");
            clock = requests[order[next_arrival]].arrivalCycles;
            continue;
        }

        // Admission: the scheduler picks among the admissible waiting
        // requests — a free batch slot, the running batch's model (the
        // engine serves one model at a time; an empty batch anchors on
        // whatever is admitted first), and a KV reservation that fits.
        // Each admission pays its prefill before joining the batch.
        bool admitted_any = false;
        while (!waiting.empty() && active.size() < maxBatch_) {
            // Refresh arrivals first: a prefill just paid advanced the
            // clock, and anything that arrived meanwhile must be
            // visible to order-sensitive policies (SJF, skip-ahead).
            // FIFO is unaffected — late arrivals only join the tail.
            pull_arrivals();
            const std::string *batch_model =
                active.empty() ? nullptr : &active.front()->req->model;
            candidates.clear();
            candidates.reserve(waiting.size());
            for (const CostedRequest *c : waiting) {
                AdmissionCandidate cand;
                cand.promptLen = c->req->promptLen;
                cand.decodeLen = c->req->decodeLen;
                cand.admissible =
                    (batch_model == nullptr ||
                     c->req->model == *batch_model) &&
                    (kvCapacityBytes_ <= 0.0 ||
                     kv_in_use + c->kvBytes <= kvCapacityBytes_);
                candidates.push_back(cand);
            }
            const std::size_t pick = scheduler_->pick(candidates);
            if (pick == Scheduler::npos)
                break;
            panicIf(pick >= candidates.size() ||
                        !candidates[pick].admissible,
                    "scheduler picked an inadmissible request");
            CostedRequest *c = waiting[pick];
            waiting.erase(waiting.begin() +
                          static_cast<std::ptrdiff_t>(pick));
            c->admissionCycles = clock;
            kv_in_use += c->kvBytes;
            stats.kvPeakBytes = std::max(stats.kvPeakBytes, kv_in_use);
            clock += c->prefillCycles;
            stats.busyCycles += c->prefillCycles;
            admitted_any = true;
            if (c->remainingTokens == 0)
                finish(*c);
            else
                active.push_back(c);
        }

        if (active.empty()) {
            if (admitted_any)
                continue; // everything admitted had zero decode tokens.
            // Nothing active, nothing admissible: only future arrivals
            // can unblock a (KV-starved) head, since an idle engine
            // holds no KV. Covered by the idle jump above unless the
            // scheduler violated its contract.
            panicIf(waiting.empty() || kv_in_use > 0.0,
                    "admission stalled with an idle engine");
            panicIf(next_arrival >= order.size(),
                    "admission livelock: waiting requests can never "
                    "be admitted");
            clock = std::max(clock,
                             requests[order[next_arrival]].arrivalCycles);
            continue;
        }

        // One decode iteration: everyone advances one token. The weight
        // stream is fetched once for the whole batch (max, in cycles
        // and in joules) and overlaps the batch's summed linear work;
        // attention/SFU is per-request work on top.
        double weight_cycles = 0.0;
        double linear_cycles = 0.0;
        double other_cycles = 0.0;
        double fixed_cycles = 0.0;
        double weight_joules = 0.0;
        for (CostedRequest *c : active) {
            weight_cycles =
                std::max(weight_cycles, c->weightCyclesPerToken);
            weight_joules =
                std::max(weight_joules, c->weightJoulesPerToken);
            linear_cycles += c->linearCyclesPerToken;
            other_cycles += c->otherCyclesPerToken;
            // Hop-latency floor: every request's collective is the
            // same collective, so the batch pays it once.
            fixed_cycles =
                std::max(fixed_cycles, c->fixedCyclesPerToken);
        }
        // Everyone in the batch runs on the same accelerator, so the
        // composition rule is uniform across the active set.
        const double linear_segment = accel::composedLinearCycles(
            weight_cycles, linear_cycles,
            active.front()->memorySerialized);
        const double iter_cycles =
            linear_segment + fixed_cycles + other_cycles;
        clock += iter_cycles;
        stats.busyCycles += iter_cycles;
        stats.occupancySum += static_cast<double>(active.size());
        stats.peakBatch = std::max(stats.peakBatch, active.size());
        ++stats.iterations;

        const double weight_joules_share =
            weight_joules / static_cast<double>(active.size());
        for (auto it = active.begin(); it != active.end();) {
            CostedRequest *c = *it;
            c->joules += c->otherJoulesPerToken + weight_joules_share;
            if (!c->firstTokenSeen) {
                c->firstTokenSeen = true;
                c->firstTokenCycles = clock;
            }
            if (--c->remainingTokens == 0) {
                finish(*c);
                it = active.erase(it);
            } else {
                ++it;
            }
        }
    }

    stats.clockCycles = clock;
    return stats;
}

} // namespace mcbp::engine
