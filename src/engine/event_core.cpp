#include "engine/event_core.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <limits>

#include "accel/report.hpp"
#include "common/logging.hpp"

namespace mcbp::engine {

std::string
toString(StepMode mode)
{
    switch (mode) {
    case StepMode::Auto:
        return "auto";
    case StepMode::Coalesced:
        return "coalesced";
    case StepMode::PerToken:
        return "per-token";
    }
    return "unknown";
}

StepMode
stepModeFromEnv()
{
    const char *env = std::getenv("MCBP_SERVING_STEP");
    if (env == nullptr || *env == '\0')
        return StepMode::Coalesced;
    const std::string value(env);
    if (value == "coalesced")
        return StepMode::Coalesced;
    if (value == "per-token")
        return StepMode::PerToken;
    fatal("MCBP_SERVING_STEP must be 'coalesced' or 'per-token', got '" +
          value + "'");
}

EventCore::EventCore(const Scheduler &scheduler, std::size_t maxBatch,
                     KvOptions kv, PrefillPricer repricer, StepMode step)
    : scheduler_(&scheduler), maxBatch_(maxBatch), kv_(kv),
      repricer_(std::move(repricer)),
      step_(step == StepMode::Auto ? stepModeFromEnv() : step)
{
    fatalIf(maxBatch_ == 0, "maxBatch must be positive");
    fatalIf(kv_.policy == KvPolicy::Paged && !repricer_,
            "paged KV needs a prefill re-pricer for recompute");
}

EventStats
EventCore::run(std::vector<CostedRequest> &requests) const
{
    EventStats stats;
    stats.completed.reserve(requests.size());

    const bool coalesce = step_ == StepMode::Coalesced;
    const bool paged = kv_.policy == KvPolicy::Paged;
    const bool bounded = !kvUnbounded(kv_.capacityBytes);
    KvBlockManager pool(kv_);

    // A request larger than the whole budget would wait forever (even
    // paged: its final residency can never be held).
    if (bounded)
        for (const CostedRequest &c : requests)
            fatalIf(c.kvBytes > kv_.capacityBytes,
                    "request KV footprint exceeds the configured "
                    "capacity; it can never be admitted");

    // Process arrivals in order regardless of the trace's sort.
    std::vector<std::size_t> order(requests.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return requests[a].arrivalCycles <
                                requests[b].arrivalCycles;
                     });

    double clock = 0.0;
    double kv_in_use = 0.0; // Reserve-policy byte ledger.
    std::size_t next_arrival = 0;
    std::deque<CostedRequest *> waiting;
    std::vector<CostedRequest *> active; // Admission order.
    std::vector<AdmissionCandidate> candidates;

    // Tokens of c's KV resident after a (re)prefill: the prompt plus
    // whatever decode progress a recompute restores. Prefill-only
    // requests retain nothing.
    auto resident_tokens = [](const CostedRequest &c) -> std::size_t {
        if (c.req->decodeLen == 0)
            return 0;
        return c.promptTokens + (c.req->decodeLen - c.remainingTokens);
    };

    auto finish = [&](CostedRequest &c) {
        c.completionCycles = clock;
        if (paged) {
            pool.remove(c.kvAllocatedBytes, c.kvNeededBytes);
            c.kvAllocatedBytes = 0.0;
            c.kvNeededBytes = 0.0;
        } else {
            kv_in_use -= c.kvBytes;
        }
        stats.completed.push_back(&c);
    };

    // Preempt the youngest running request (vLLM's recompute rule):
    // free its blocks, re-price its recompute prefill — the prompt
    // plus every token it has generated, replayed through the
    // accelerator's prefill path — and re-queue it at the head.
    auto preempt_youngest = [&] {
        panicIf(active.empty(), "preemption with an empty batch");
        CostedRequest *c = active.back();
        active.pop_back();
        pool.remove(c->kvAllocatedBytes, c->kvNeededBytes);
        c->kvAllocatedBytes = 0.0;
        c->kvNeededBytes = 0.0;
        const std::size_t progress =
            c->req->decodeLen - c->remainingTokens;
        c->recomputedTokens += progress;
        stats.recomputedTokens += progress;
        ++c->preemptions;
        ++stats.preemptions;
        stats.preemptionOrder.push_back(c->req->id);
        const PrefillPrice price =
            repricer_(*c, c->promptTokens + progress);
        c->prefillCycles = price.cycles;
        // The recompute's energy is genuinely spent on top of whatever
        // the request already burned; charge it now (the re-admission
        // always happens — the loop runs the trace to completion).
        c->joules += price.joules;
        waiting.push_front(c);
    };

    // Pull every request that has arrived by the current clock into
    // the waiting queue (arrival order).
    auto pull_arrivals = [&] {
        while (next_arrival < order.size() &&
               requests[order[next_arrival]].arrivalCycles <= clock)
            waiting.push_back(&requests[order[next_arrival++]]);
    };

    // Growth-extra bytes of the next decode iteration with every
    // residency advanced by @p ahead in-window iterations: zero away
    // from block boundaries, whole blocks at a fill.
    auto growth_extra = [&](std::size_t ahead) -> double {
        double extra = 0.0;
        for (const CostedRequest *c : active)
            extra += pool.allocatedBytes(c->kvBytesPerToken,
                                         resident_tokens(*c) + ahead +
                                             1) -
                     c->kvAllocatedBytes;
        return extra;
    };

    // Iterations until the first active request fills a block and
    // allocates, with every residency advanced by @p ahead in-window
    // iterations: growth serves token resident+1, so a residency
    // sitting exactly on a block boundary allocates on the very next
    // token.
    auto next_fill_in = [&](std::size_t ahead) -> std::size_t {
        std::size_t fill_in = std::numeric_limits<std::size_t>::max();
        for (const CostedRequest *c : active) {
            const std::size_t rem =
                (resident_tokens(*c) + ahead) % kv_.blockTokens;
            fill_in =
                std::min(fill_in, rem == 0 ? std::size_t{1}
                                           : kv_.blockTokens - rem + 1);
        }
        return fill_in;
    };

    // Paged growth of a coalesced k-iteration window, walked in
    // fill-to-fill segments so the window itself stays bounded only by
    // the policy-independent events (completion, arrival, deferral):
    //
    //  - Strictly between block fills no request allocates (every
    //    allocation delta is exactly zero), so no preemption can
    //    trigger and only the needed-bytes ledger and the utilization
    //    statistic advance. The per-token loop would sample
    //    needed/used after each iteration with used constant and
    //    needed growing by the batch's summed per-token bytes — an
    //    arithmetic series, folded here in closed form.
    //
    //  - A fill iteration replays the reference growth verbatim: the
    //    allocating adds and the per-iteration utilization sample. If
    //    the batch's growth no longer fits (a preemption is due), the
    //    window is truncated just before that iteration and the next
    //    outer pass routes it through the reference path, so eviction
    //    victims and their order match the per-token loop exactly.
    //
    // Pool occupancy only grows within the window and the batch/model
    // are constant, so no admission can become possible mid-window
    // and skipping the per-iteration admission retries stays
    // behaviour-preserving. Peak fragmentation needs no extra
    // samples: allocated - needed only shrinks between fills, and
    // every allocating add() records its own peak.
    //
    // Returns the iterations actually grown (= the window's final k):
    // a fill due on the first iteration has had its preemptions
    // resolved by the caller before entry, so at least one iteration
    // always survives.
    auto grow_batch_coalesced = [&](std::size_t k) -> std::size_t {
        std::size_t t = 0;
        while (t < k) {
            const std::size_t fill_in = next_fill_in(t);
            const std::size_t seg = std::min(k - t, fill_in - 1);
            if (seg > 0) {
                // Fill-free segment: zero-delta allocations, closed-
                // form utilization over seg iterations.
                const double needed_start = pool.neededBytes();
                double batch_bytes = 0.0;
                for (CostedRequest *c : active) {
                    const std::size_t tokens =
                        resident_tokens(*c) + t + seg;
                    const double alloc = pool.allocatedBytes(
                        c->kvBytesPerToken, tokens);
                    const double need = c->kvBytesPerToken *
                                        static_cast<double>(tokens);
                    pool.add(alloc - c->kvAllocatedBytes,
                             need - c->kvNeededBytes);
                    c->kvAllocatedBytes = alloc;
                    c->kvNeededBytes = need;
                    batch_bytes += c->kvBytesPerToken;
                }
                if (pool.usedBytes() > 0.0) {
                    const double sd = static_cast<double>(seg);
                    stats.kvBlockUtilizationSum +=
                        (sd * needed_start +
                         batch_bytes * sd * (sd + 1.0) / 2.0) /
                        pool.usedBytes();
                    stats.kvBlockUtilizationIters += seg;
                }
                t += seg;
                continue;
            }
            // Fill at iteration t+1: the reference growth, except a
            // due preemption truncates the window instead (the next
            // outer pass resolves it at full per-token fidelity).
            if (!pool.fits(growth_extra(t), /*admission=*/false) &&
                active.size() > 1) {
                panicIf(t == 0, "unresolved preemption at window start");
                break;
            }
            for (CostedRequest *c : active) {
                const std::size_t tokens = resident_tokens(*c) + t + 1;
                const double alloc =
                    pool.allocatedBytes(c->kvBytesPerToken, tokens);
                const double need = c->kvBytesPerToken *
                                    static_cast<double>(tokens);
                pool.add(alloc - c->kvAllocatedBytes,
                         need - c->kvNeededBytes);
                c->kvAllocatedBytes = alloc;
                c->kvNeededBytes = need;
            }
            if (pool.usedBytes() > 0.0) {
                stats.kvBlockUtilizationSum +=
                    pool.neededBytes() / pool.usedBytes();
                ++stats.kvBlockUtilizationIters;
            }
            t += 1;
        }
        return t;
    };

    // Cost of one decode iteration over the current batch: the weight
    // stream is fetched once for the whole batch (max, in cycles and
    // in joules) and overlaps the batch's summed linear work;
    // attention/SFU is per-request work on top.
    struct IterCost
    {
        double cycles = 0.0;       ///< One decode iteration.
        double weightJoules = 0.0; ///< Shared weight stream, per iter.
    };
    auto iter_cost = [&]() -> IterCost {
        double weight_cycles = 0.0;
        double linear_cycles = 0.0;
        double other_cycles = 0.0;
        double fixed_cycles = 0.0;
        double weight_joules = 0.0;
        double linear_max = 0.0;
        double other_max = 0.0;
        for (const CostedRequest *c : active) {
            weight_cycles =
                std::max(weight_cycles, c->weightCyclesPerToken);
            weight_joules =
                std::max(weight_joules, c->weightJoulesPerToken);
            linear_cycles += c->linearCyclesPerToken;
            other_cycles += c->otherCyclesPerToken;
            linear_max = std::max(linear_max, c->linearCyclesPerToken);
            other_max = std::max(other_max, c->otherCyclesPerToken);
            // Hop-latency floor: every request's collective is the
            // same collective, so the batch pays it once.
            fixed_cycles =
                std::max(fixed_cycles, c->fixedCyclesPerToken);
        }
        // Stage-aware costing: on a pipeline, distinct requests'
        // traversals overlap across the stages, so the batch's summed
        // work drains at the bottleneck stage (sum/stages) — but a
        // single request can never finish faster than its own full
        // traversal (the max). stages=1 reduces to the plain sum
        // bit-for-bit (sum/1 == sum, and sum >= each element).
        const double stages = static_cast<double>(
            std::max<std::size_t>(1, active.front()->stages));
        const double linear_batch =
            std::max(linear_cycles / stages, linear_max);
        const double other_batch =
            std::max(other_cycles / stages, other_max);
        // Everyone in the batch runs on the same accelerator, so the
        // composition rule is uniform across the active set.
        const double linear_segment = accel::composedLinearCycles(
            weight_cycles, linear_batch,
            active.front()->memorySerialized);
        IterCost out;
        out.cycles = linear_segment + fixed_cycles + other_batch;
        out.weightJoules = weight_joules;
        return out;
    };

    const std::size_t total = requests.size();
    while (stats.completed.size() < total) {
        // An idle engine holds no KV. Assert that (a drift beyond any
        // FP residue means a reservation leaked), then clear the
        // residue so exact-capacity admission can never stall on one.
        if (active.empty()) {
            if (paged) {
                pool.clearIdleResidual();
            } else {
                panicIf(std::abs(kv_in_use) > 1.0,
                        "KV accounting leak: idle engine still holds "
                        "reserved bytes");
                kv_in_use = 0.0;
            }
        }

        pull_arrivals();

        // Idle engine: jump to the next arrival.
        if (active.empty() && waiting.empty()) {
            panicIf(next_arrival >= order.size(),
                    "serving scheduler stalled with requests pending");
            clock = requests[order[next_arrival]].arrivalCycles;
            continue;
        }

        // Admission: the scheduler picks among the admissible waiting
        // requests — a free batch slot, the running batch's model (the
        // engine serves one model at a time; an empty batch anchors on
        // whatever is admitted first), and a KV allocation that fits:
        // the full footprint under Reserve, the current residency
        // (plus the low-watermark growth headroom while others run)
        // under Paged. Each admission pays its prefill before joining
        // the batch.
        bool admitted_any = false;
        bool deferred = false;
        while (!waiting.empty() && active.size() < maxBatch_) {
            // Refresh arrivals first: a prefill just paid advanced the
            // clock, and anything that arrived meanwhile must be
            // visible to order-sensitive policies (SJF, skip-ahead).
            // FIFO is unaffected — late arrivals only join the tail.
            pull_arrivals();
            const std::string *batch_model =
                active.empty() ? nullptr : &active.front()->req->model;
            candidates.clear();
            candidates.reserve(waiting.size());
            for (const CostedRequest *c : waiting) {
                AdmissionCandidate cand;
                cand.promptLen = c->req->promptLen;
                cand.decodeLen = c->req->decodeLen;
                cand.waitCycles = clock - c->arrivalCycles;
                cand.prefillCycles = c->prefillCycles;
                const bool model_ok = batch_model == nullptr ||
                                      c->req->model == *batch_model;
                bool kv_ok;
                if (paged) {
                    const double alloc = pool.allocatedBytes(
                        c->kvBytesPerToken, resident_tokens(*c));
                    kv_ok = pool.fits(alloc, !active.empty());
                } else {
                    kv_ok = !bounded ||
                            kv_in_use + c->kvBytes <= kv_.capacityBytes;
                }
                cand.admissible = model_ok && kv_ok;
                candidates.push_back(cand);
            }
            KvPressure pressure;
            pressure.bounded = bounded;
            if (bounded) {
                const double used = paged ? pool.usedBytes() : kv_in_use;
                pressure.freeBytes =
                    std::max(0.0, kv_.capacityBytes - used);
                pressure.freeFraction =
                    pressure.freeBytes / kv_.capacityBytes;
            }
            const std::size_t pick =
                scheduler_->pick(candidates, pressure);
            if (pick == Scheduler::npos) {
                // npos with an admissible candidate is a live deferral
                // the per-token loop would revisit after exactly one
                // iteration: it pins the coalescing window to k = 1 so
                // the scheduler is consulted on the same cadence.
                for (const AdmissionCandidate &cand : candidates)
                    deferred = deferred || cand.admissible;
                break;
            }
            panicIf(pick >= candidates.size() ||
                        !candidates[pick].admissible,
                    "scheduler picked an inadmissible request");
            CostedRequest *c = waiting[pick];
            waiting.erase(waiting.begin() +
                          static_cast<std::ptrdiff_t>(pick));
            if (!c->admitted) {
                c->admitted = true;
                c->admissionCycles = clock; // First admission only:
            }                               // queue wait ends here.
            stats.admissionOrder.push_back(c->req->id);
            if (paged) {
                const std::size_t tokens = resident_tokens(*c);
                const double alloc =
                    pool.allocatedBytes(c->kvBytesPerToken, tokens);
                const double need = c->kvBytesPerToken *
                                    static_cast<double>(tokens);
                pool.add(alloc, need);
                c->kvAllocatedBytes = alloc;
                c->kvNeededBytes = need;
            } else {
                kv_in_use += c->kvBytes;
                stats.kvPeakBytes =
                    std::max(stats.kvPeakBytes, kv_in_use);
            }
            clock += c->prefillCycles;
            stats.busyCycles += c->prefillCycles;
            admitted_any = true;
            if (c->remainingTokens == 0)
                finish(*c);
            else
                active.push_back(c);
        }

        if (active.empty()) {
            if (admitted_any)
                continue; // everything admitted had zero decode tokens.
            // Nothing active, nothing admissible: only future arrivals
            // can unblock a (KV-starved) head, since an idle engine
            // holds no KV. Covered by the idle jump above unless the
            // scheduler violated its contract.
            panicIf(waiting.empty() ||
                        (paged ? pool.usedBytes() : kv_in_use) > 0.0,
                    "admission stalled with an idle engine");
            panicIf(next_arrival >= order.size(),
                    "admission livelock: waiting requests can never "
                    "be admitted");
            clock = std::max(clock,
                             requests[order[next_arrival]].arrivalCycles);
            continue;
        }

        // ---- Select the iteration window --------------------------
        // Between discrete events the active set and the iteration
        // cost are constant, so k identical iterations advance in one
        // closed-form step. Window bounds, each matching an event the
        // per-token reference reacts to:
        //  - the soonest completion (min remainingTokens) changes the
        //    batch;
        //  - a scheduler deferral is a live decision revisited every
        //    iteration (k = 1, above);
        //  - the next arrival changes the candidate set (bounded
        //    below, once the iteration cost is known);
        //  - a paged preemption changes the batch (grow_batch_
        //    coalesced truncates the window just before one and the
        //    next pass replays that iteration at per-token fidelity;
        //    fills that fit are absorbed into the window, keeping the
        //    window boundaries policy-independent whenever no
        //    preemption triggers).
        // Mid-window no admission can become possible: slots and the
        // batch model are constant, and pool occupancy only grows
        // (fills), so the admissible set can only shrink and skipping
        // the per-iteration admission retries is behaviour-preserving.
        // Paged: a block fill due on the window's very first iteration
        // may preempt. Resolve that before costing — the per-token
        // ordering (growth precedes the iteration's cost) — and pin
        // the window to one iteration when a preemption fired, so the
        // victim's re-admission is considered on the per-token
        // cadence. Fills that fit never bound the window: they are
        // absorbed below, keeping the window chunking independent of
        // the KV policy whenever no preemption triggers.
        bool preempted_now = false;
        if (paged && next_fill_in(0) == 1) {
            // A lone survivor always fits: the footprint precheck
            // bounds its largest residency by the capacity (the
            // fits() miss can only be the pool's FP residue).
            while (!pool.fits(growth_extra(0), /*admission=*/false) &&
                   active.size() > 1) {
                preempt_youngest();
                preempted_now = true;
            }
        }

        std::size_t k = active.front()->remainingTokens;
        for (const CostedRequest *c : active)
            k = std::min(k, c->remainingTokens);
        if (!coalesce || deferred || preempted_now)
            k = 1;

        IterCost cost = iter_cost();
        if (k > 1 && next_arrival < order.size() && cost.cycles > 0.0) {
            // Stop at the first iteration whose end reaches the next
            // arrival: the per-token loop pulls it into the candidate
            // set before the following iteration. The admission loop
            // can leave an arrival already due (a prefill advanced
            // the clock past it without a final pull); that pins the
            // window to the per-token cadence of one iteration.
            const double until =
                requests[order[next_arrival]].arrivalCycles - clock;
            if (until <= 0.0) {
                k = 1;
            } else {
                const double ka = std::ceil(until / cost.cycles);
                if (ka < static_cast<double>(k))
                    k = std::max<std::size_t>(
                        1, static_cast<std::size_t>(ka));
            }
        }
        if (paged)
            k = grow_batch_coalesced(k);

        // ---- Advance k identical iterations in closed form --------
        // k == 1 reduces bit-exactly to the per-token reference
        // (1.0 * x == x in IEEE arithmetic), so the per-token escape
        // hatch and the boundary/deferral windows share this path
        // unchanged.
        const double kd = static_cast<double>(k);
        const double window_start = clock;
        clock += kd * cost.cycles;
        stats.busyCycles += kd * cost.cycles;
        stats.occupancySum += kd * static_cast<double>(active.size());
        stats.peakBatch = std::max(stats.peakBatch, active.size());
        stats.iterations += k;
        ++stats.decodeWindows;

        const double weight_joules_share =
            cost.weightJoules / static_cast<double>(active.size());
        for (auto it = active.begin(); it != active.end();) {
            CostedRequest *c = *it;
            c->joules +=
                kd * (c->otherJoulesPerToken + weight_joules_share);
            if (!c->firstTokenSeen) {
                c->firstTokenSeen = true;
                // End of the window's first iteration — exact for any
                // k, since a request enters a window at most once
                // without its first token.
                c->firstTokenCycles = window_start + cost.cycles;
            }
            c->remainingTokens -= k;
            if (c->remainingTokens == 0) {
                finish(*c);
                it = active.erase(it);
            } else {
                ++it;
            }
        }
    }

    stats.clockCycles = clock;
    if (paged) {
        stats.kvPeakBytes = pool.peakUsedBytes();
        stats.kvFragmentationPeakBytes = pool.peakFragmentationBytes();
    }
    return stats;
}

} // namespace mcbp::engine
