#include "engine/event_core.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <limits>

#include "accel/report.hpp"
#include "common/env.hpp"
#include "common/logging.hpp"

namespace mcbp::engine {

std::string
toString(StepMode mode)
{
    switch (mode) {
    case StepMode::Auto:
        return "auto";
    case StepMode::Coalesced:
        return "coalesced";
    case StepMode::PerToken:
        return "per-token";
    }
    return "unknown";
}

StepMode
stepModeFromEnv()
{
    const char *env = env::get("MCBP_SERVING_STEP");
    if (env == nullptr || *env == '\0')
        return StepMode::Coalesced;
    const std::string value(env);
    if (value == "coalesced")
        return StepMode::Coalesced;
    if (value == "per-token")
        return StepMode::PerToken;
    fatal("MCBP_SERVING_STEP must be 'coalesced' or 'per-token', got '" +
          value + "'");
}

EventCore::EventCore(const Scheduler &scheduler, std::size_t maxBatch,
                     KvOptions kv, PrefillPricer repricer, StepMode step,
                     FaultInputs faults, PrefillPricer degradedRepricer)
    : scheduler_(&scheduler), maxBatch_(maxBatch), kv_(kv),
      repricer_(std::move(repricer)),
      step_(step == StepMode::Auto ? stepModeFromEnv() : step),
      faults_(std::move(faults)),
      degradedRepricer_(std::move(degradedRepricer))
{
    fatalIf(maxBatch_ == 0, "maxBatch must be positive");
    fatalIf(kv_.policy == KvPolicy::Paged && !repricer_,
            "paged KV needs a prefill re-pricer for recompute");
    fatalIf(faults_.enabled && kv_.policy == KvPolicy::Paged &&
                faults_.hasDegraded && !degradedRepricer_,
            "degraded-mode paged serving needs a degraded prefill "
            "re-pricer so preemptions keep both prices fresh");
    if (faults_.enabled)
        for (std::size_t i = 1; i < faults_.timeline.size(); ++i)
            fatalIf(faults_.timeline[i - 1].at > faults_.timeline[i].at,
                    "fault timeline must be sorted by time");
}

EventStats
EventCore::run(std::vector<CostedRequest> &requests) const
{
    EventStats stats;
    stats.completed.reserve(requests.size());

    const bool coalesce = step_ == StepMode::Coalesced;
    const bool paged = kv_.policy == KvPolicy::Paged;
    const bool bounded = !kvUnbounded(kv_.capacityBytes);
    KvBlockManager pool(kv_);

    // A request larger than the whole budget would wait forever (even
    // paged: its final residency can never be held).
    if (bounded)
        for (const CostedRequest &c : requests)
            fatalIf(c.kvBytes > kv_.capacityBytes,
                    "request KV footprint exceeds the configured "
                    "capacity; it can never be admitted");

    // Process arrivals in order regardless of the trace's sort.
    std::vector<std::size_t> order(requests.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return requests[a].arrivalCycles <
                                requests[b].arrivalCycles;
                     });

    double clock = 0.0;
    double kv_in_use = 0.0; // Reserve-policy byte ledger.
    std::size_t next_arrival = 0;
    std::deque<CostedRequest *> waiting;
    std::vector<CostedRequest *> active; // Admission order.
    std::vector<AdmissionCandidate> candidates;

    // ---- Fault state (inert when faults are off) -----------------------
    const bool faulty = faults_.enabled;
    const std::vector<sim::FaultEvent> &timeline = faults_.timeline;
    std::size_t next_fault = 0;
    bool dead = false;           // Fleet lost beyond any replan.
    bool permanent_down = false; // A permanent chip failure happened.
    std::size_t chips_down = 0;  // Transient failures under repair.
    bool degraded_mode = false;  // Decode at degraded-topology rates.
    double outage_until = 0.0;   // No replan available: down to repair.
    std::vector<double> link_factors;  // Active bandwidth multipliers.
    std::vector<double> stall_factors; // Active straggler slowdowns.
    double link_scale = 1.0;  // Product of 1/factor (>= 1 slowdown).
    double stall_scale = 1.0; // Product of slowdowns (>= 1).
    std::vector<CostedRequest *> retrying; // Backoff queue.

    if (faulty && faults_.deadlineCycles > 0.0)
        for (CostedRequest &c : requests)
            c.deadlineCycles = c.arrivalCycles + faults_.deadlineCycles;

    // Clock advancement attributing degraded time. The arithmetic is
    // the zero-fault engine's plain `clock += delta` / `clock = to`,
    // so disabled faults change no bit of the result.
    auto advance = [&](double delta) {
        clock += delta;
        if (degraded_mode)
            stats.degradedCycles += delta;
    };
    auto jump_to = [&](double to) {
        if (to <= clock)
            return;
        if (degraded_mode)
            stats.degradedCycles += to - clock;
        clock = to;
    };

    // Tokens of c's KV resident after a (re)prefill: the prompt plus
    // whatever decode progress a recompute restores. Prefill-only
    // requests retain nothing.
    auto resident_tokens = [](const CostedRequest &c) -> std::size_t {
        if (c.req->decodeLen == 0)
            return 0;
        return c.promptTokens + (c.req->decodeLen - c.remainingTokens);
    };

    auto finish = [&](CostedRequest &c) {
        c.completionCycles = clock;
        if (paged) {
            pool.remove(c.kvAllocatedBytes, c.kvNeededBytes);
            c.kvAllocatedBytes = 0.0;
            c.kvNeededBytes = 0.0;
        } else {
            kv_in_use -= c.kvBytes;
        }
        stats.completed.push_back(&c);
    };

    // Preempt the youngest running request (vLLM's recompute rule):
    // free its blocks, re-price its recompute prefill — the prompt
    // plus every token it has generated, replayed through the
    // accelerator's prefill path — and re-queue it at the head.
    auto preempt_youngest = [&] {
        panicIf(active.empty(), "preemption with an empty batch");
        CostedRequest *c = active.back();
        active.pop_back();
        pool.remove(c->kvAllocatedBytes, c->kvNeededBytes);
        c->kvAllocatedBytes = 0.0;
        c->kvNeededBytes = 0.0;
        const std::size_t progress =
            c->req->decodeLen - c->remainingTokens;
        c->recomputedTokens += progress;
        stats.recomputedTokens += progress;
        ++c->preemptions;
        ++stats.preemptions;
        stats.preemptionOrder.push_back(c->req->id);
        const PrefillPrice price =
            repricer_(*c, c->promptTokens + progress);
        c->prefillCycles = price.cycles;
        // The recompute's energy is genuinely spent on top of whatever
        // the request already burned; charge it now (the re-admission
        // always happens — the loop runs the trace to completion).
        double joules = price.joules;
        if (faulty && faults_.hasDegraded) {
            // Keep the degraded prefill price as fresh as the healthy
            // one, and charge the mode the recompute actually runs in.
            const PrefillPrice deg =
                degradedRepricer_(*c, c->promptTokens + progress);
            c->prefillCyclesDeg = deg.cycles;
            if (degraded_mode)
                joules = deg.joules;
        }
        c->joules += joules;
        waiting.push_front(c);
    };

    // Pull every request that has arrived by the current clock into
    // the waiting queue (arrival order).
    auto pull_arrivals = [&] {
        while (next_arrival < order.size() &&
               requests[order[next_arrival]].arrivalCycles <= clock)
            waiting.push_back(&requests[order[next_arrival++]]);
    };

    auto drop_request = [&](CostedRequest *c,
                            EventStats::FaultImpact *impact) {
        panicIf(c->dropped, "request dropped twice");
        c->dropped = true;
        ++stats.droppedRequests;
        stats.dropOrder.push_back(c->req->id);
        if (impact != nullptr)
            ++impact->dropped;
    };

    // Kill every in-flight request: free its KV, void its decode
    // progress, re-arm the full-prompt restart prefill, and either
    // schedule a backoff retry or drop it (retry budget exhausted,
    // deadline passed, or the fleet is dead). Active order is
    // admission order, so the retry queue and the decision logs are
    // deterministic and step-mode independent.
    auto kill_active = [&](EventStats::FaultImpact &impact) {
        for (CostedRequest *c : active) {
            if (paged) {
                pool.remove(c->kvAllocatedBytes, c->kvNeededBytes);
                c->kvAllocatedBytes = 0.0;
                c->kvNeededBytes = 0.0;
            } else {
                kv_in_use -= c->kvBytes;
            }
            const std::size_t progress =
                c->req->decodeLen - c->remainingTokens;
            stats.faultLostTokens += progress;
            c->remainingTokens = c->req->decodeLen;
            c->firstTokenSeen = false;
            c->prefillCycles = c->basePrefillCycles;
            c->prefillCyclesDeg = c->basePrefillCyclesDeg;
            c->pendingPrefillJoules = c->basePrefillJoules;
            c->pendingPrefillJoulesDeg = c->basePrefillJoulesDeg;
            c->restartPending = true;
            ++stats.killedInFlight;
            ++impact.killed;
            ++c->retries;
            if (dead || c->retries > faults_.maxRetries ||
                (c->deadlineCycles > 0.0 &&
                 clock >= c->deadlineCycles)) {
                drop_request(c, &impact);
            } else {
                const double backoff = std::min(
                    faults_.backoffCapCycles,
                    faults_.backoffBaseCycles *
                        std::pow(2.0,
                                 static_cast<double>(c->retries - 1)));
                c->retryAtCycles = clock + backoff;
                retrying.push_back(c);
                ++stats.retriesScheduled;
                stats.retryOrder.push_back(c->req->id);
            }
        }
        active.clear();
    };

    // A dead fleet serves nothing more: drop the queue, the retry
    // backlog, and every not-yet-arrived request.
    auto drop_all_pending = [&](EventStats::FaultImpact &impact) {
        for (CostedRequest *c : waiting)
            drop_request(c, &impact);
        waiting.clear();
        for (CostedRequest *c : retrying)
            drop_request(c, &impact);
        retrying.clear();
        while (next_arrival < order.size())
            drop_request(&requests[order[next_arrival++]], &impact);
    };

    // Scale products are recomputed from scratch at every window edge
    // so the no-window state is exactly 1.0 (not a rounded quotient).
    auto recompute_scales = [&] {
        link_scale = 1.0;
        for (double f : link_factors)
            link_scale *= 1.0 / f;
        stall_scale = 1.0;
        for (double f : stall_factors)
            stall_scale *= f;
    };
    auto erase_factor = [](std::vector<double> &factors, double f) {
        const auto it = std::find(factors.begin(), factors.end(), f);
        if (it != factors.end())
            factors.erase(it);
    };

    // Process every fault event due by the current clock, in timeline
    // order. Coalesced windows never cross the next event (bounded in
    // the window selection below), so both step modes observe each
    // event at the same clock with the same engine state.
    auto process_faults = [&] {
        while (next_fault < timeline.size() &&
               timeline[next_fault].at <= clock) {
            const sim::FaultEvent &e = timeline[next_fault++];
            ++stats.faultEvents;
            EventStats::FaultImpact impact;
            impact.eventId = e.id;
            impact.atCycles = e.at;
            impact.kind = e.kind;
            impact.chip = e.chip;
            impact.permanent = e.permanent;
            switch (e.kind) {
            case sim::FaultKind::ChipFail:
                if (e.permanent) {
                    // The degraded replan absorbs one permanent loss;
                    // a second one (or any loss on a fleet without a
                    // degraded plan) is fatal.
                    if (!faults_.hasDegraded || permanent_down)
                        dead = true;
                    permanent_down = true;
                } else {
                    ++chips_down;
                    // Nothing to replan onto: the fleet is an outage
                    // until this chip's repair lands.
                    if (!faults_.hasDegraded || permanent_down)
                        outage_until =
                            std::max(outage_until, e.repairAt);
                }
                degraded_mode = faults_.hasDegraded && !dead &&
                                (permanent_down || chips_down > 0);
                kill_active(impact);
                if (dead)
                    drop_all_pending(impact);
                break;
            case sim::FaultKind::ChipRepair:
                if (chips_down > 0)
                    --chips_down;
                degraded_mode = faults_.hasDegraded && !dead &&
                                (permanent_down || chips_down > 0);
                break;
            case sim::FaultKind::LinkDegrade:
                link_factors.push_back(e.factor);
                recompute_scales();
                break;
            case sim::FaultKind::LinkRestore:
                erase_factor(link_factors, e.factor);
                recompute_scales();
                break;
            case sim::FaultKind::StragglerStart:
                stall_factors.push_back(e.factor);
                recompute_scales();
                break;
            case sim::FaultKind::StragglerEnd:
                erase_factor(stall_factors, e.factor);
                recompute_scales();
                break;
            }
            stats.faultLog.push_back(impact);
        }
    };

    // Move every retry whose backoff expired into the waiting queue
    // (at the tail, behind already-queued arrivals), earliest expiry
    // first; a retry already past its deadline drops instead.
    auto pull_retries = [&] {
        if (retrying.empty())
            return;
        std::stable_sort(retrying.begin(), retrying.end(),
                         [](const CostedRequest *a,
                            const CostedRequest *b) {
                             return a->retryAtCycles < b->retryAtCycles;
                         });
        while (!retrying.empty() &&
               retrying.front()->retryAtCycles <= clock) {
            CostedRequest *c = retrying.front();
            retrying.erase(retrying.begin());
            if (c->deadlineCycles > 0.0 && clock >= c->deadlineCycles)
                drop_request(c, nullptr);
            else
                waiting.push_back(c);
        }
    };

    // Drop queued requests past their deadline, in queue order. Active
    // requests are exempt: a decoding request runs to completion and
    // merely misses its SLO.
    auto drop_expired_waiting = [&] {
        if (faults_.deadlineCycles <= 0.0)
            return;
        for (auto it = waiting.begin(); it != waiting.end();) {
            CostedRequest *c = *it;
            if (c->deadlineCycles > 0.0 && clock >= c->deadlineCycles) {
                drop_request(c, nullptr);
                it = waiting.erase(it);
            } else {
                ++it;
            }
        }
    };

    // Growth-extra bytes of the next decode iteration with every
    // residency advanced by @p ahead in-window iterations: zero away
    // from block boundaries, whole blocks at a fill.
    auto growth_extra = [&](std::size_t ahead) -> double {
        double extra = 0.0;
        for (const CostedRequest *c : active)
            extra += pool.allocatedBytes(c->kvBytesPerToken,
                                         resident_tokens(*c) + ahead +
                                             1) -
                     c->kvAllocatedBytes;
        return extra;
    };

    // Iterations until the first active request fills a block and
    // allocates, with every residency advanced by @p ahead in-window
    // iterations: growth serves token resident+1, so a residency
    // sitting exactly on a block boundary allocates on the very next
    // token.
    auto next_fill_in = [&](std::size_t ahead) -> std::size_t {
        std::size_t fill_in = std::numeric_limits<std::size_t>::max();
        for (const CostedRequest *c : active) {
            const std::size_t rem =
                (resident_tokens(*c) + ahead) % kv_.blockTokens;
            fill_in =
                std::min(fill_in, rem == 0 ? std::size_t{1}
                                           : kv_.blockTokens - rem + 1);
        }
        return fill_in;
    };

    // Paged growth of a coalesced k-iteration window, walked in
    // fill-to-fill segments so the window itself stays bounded only by
    // the policy-independent events (completion, arrival, deferral):
    //
    //  - Strictly between block fills no request allocates (every
    //    allocation delta is exactly zero), so no preemption can
    //    trigger and only the needed-bytes ledger and the utilization
    //    statistic advance. The per-token loop would sample
    //    needed/used after each iteration with used constant and
    //    needed growing by the batch's summed per-token bytes — an
    //    arithmetic series, folded here in closed form.
    //
    //  - A fill iteration replays the reference growth verbatim: the
    //    allocating adds and the per-iteration utilization sample. If
    //    the batch's growth no longer fits (a preemption is due), the
    //    window is truncated just before that iteration and the next
    //    outer pass routes it through the reference path, so eviction
    //    victims and their order match the per-token loop exactly.
    //
    // Pool occupancy only grows within the window and the batch/model
    // are constant, so no admission can become possible mid-window
    // and skipping the per-iteration admission retries stays
    // behaviour-preserving. Peak fragmentation needs no extra
    // samples: allocated - needed only shrinks between fills, and
    // every allocating add() records its own peak.
    //
    // Returns the iterations actually grown (= the window's final k):
    // a fill due on the first iteration has had its preemptions
    // resolved by the caller before entry, so at least one iteration
    // always survives.
    auto grow_batch_coalesced = [&](std::size_t k) -> std::size_t {
        std::size_t t = 0;
        while (t < k) {
            const std::size_t fill_in = next_fill_in(t);
            const std::size_t seg = std::min(k - t, fill_in - 1);
            if (seg > 0) {
                // Fill-free segment: zero-delta allocations, closed-
                // form utilization over seg iterations.
                const double needed_start = pool.neededBytes();
                double batch_bytes = 0.0;
                for (CostedRequest *c : active) {
                    const std::size_t tokens =
                        resident_tokens(*c) + t + seg;
                    const double alloc = pool.allocatedBytes(
                        c->kvBytesPerToken, tokens);
                    const double need = c->kvBytesPerToken *
                                        static_cast<double>(tokens);
                    pool.add(alloc - c->kvAllocatedBytes,
                             need - c->kvNeededBytes);
                    c->kvAllocatedBytes = alloc;
                    c->kvNeededBytes = need;
                    batch_bytes += c->kvBytesPerToken;
                }
                if (pool.usedBytes() > 0.0) {
                    const double sd = static_cast<double>(seg);
                    stats.kvBlockUtilizationSum +=
                        (sd * needed_start +
                         batch_bytes * sd * (sd + 1.0) / 2.0) /
                        pool.usedBytes();
                    stats.kvBlockUtilizationIters += seg;
                }
                t += seg;
                continue;
            }
            // Fill at iteration t+1: the reference growth, except a
            // due preemption truncates the window instead (the next
            // outer pass resolves it at full per-token fidelity).
            if (!pool.fits(growth_extra(t), /*admission=*/false) &&
                active.size() > 1) {
                panicIf(t == 0, "unresolved preemption at window start");
                break;
            }
            for (CostedRequest *c : active) {
                const std::size_t tokens = resident_tokens(*c) + t + 1;
                const double alloc =
                    pool.allocatedBytes(c->kvBytesPerToken, tokens);
                const double need = c->kvBytesPerToken *
                                    static_cast<double>(tokens);
                pool.add(alloc - c->kvAllocatedBytes,
                         need - c->kvNeededBytes);
                c->kvAllocatedBytes = alloc;
                c->kvNeededBytes = need;
            }
            if (pool.usedBytes() > 0.0) {
                stats.kvBlockUtilizationSum +=
                    pool.neededBytes() / pool.usedBytes();
                ++stats.kvBlockUtilizationIters;
            }
            t += 1;
        }
        return t;
    };

    // Cost of one decode iteration over the current batch: the weight
    // stream is fetched once for the whole batch (max, in cycles and
    // in joules) and overlaps the batch's summed linear work;
    // attention/SFU is per-request work on top.
    struct IterCost
    {
        double cycles = 0.0;       ///< One decode iteration.
        double weightJoules = 0.0; ///< Shared weight stream, per iter.
    };
    auto iter_cost = [&]() -> IterCost {
        double weight_cycles = 0.0;
        double linear_cycles = 0.0;
        double other_cycles = 0.0;
        double fixed_cycles = 0.0;
        double weight_joules = 0.0;
        double linear_max = 0.0;
        double other_max = 0.0;
        // Degraded mode swaps every per-token price for its degraded-
        // topology twin; the composition below is otherwise identical.
        const bool dm = degraded_mode;
        for (const CostedRequest *c : active) {
            const double wc = dm ? c->weightCyclesPerTokenDeg
                                 : c->weightCyclesPerToken;
            const double wj = dm ? c->weightJoulesPerTokenDeg
                                 : c->weightJoulesPerToken;
            const double lc = dm ? c->linearCyclesPerTokenDeg
                                 : c->linearCyclesPerToken;
            const double oc = dm ? c->otherCyclesPerTokenDeg
                                 : c->otherCyclesPerToken;
            weight_cycles = std::max(weight_cycles, wc);
            weight_joules = std::max(weight_joules, wj);
            linear_cycles += lc;
            other_cycles += oc;
            linear_max = std::max(linear_max, lc);
            other_max = std::max(other_max, oc);
            // Hop-latency floor: every request's collective is the
            // same collective, so the batch pays it once.
            fixed_cycles =
                std::max(fixed_cycles, dm ? c->fixedCyclesPerTokenDeg
                                          : c->fixedCyclesPerToken);
        }
        // Stage-aware costing: on a pipeline, distinct requests'
        // traversals overlap across the stages, so the batch's summed
        // work drains at the bottleneck stage (sum/stages) — but a
        // single request can never finish faster than its own full
        // traversal (the max). stages=1 reduces to the plain sum
        // bit-for-bit (sum/1 == sum, and sum >= each element).
        const double stages = static_cast<double>(std::max<std::size_t>(
            1, dm ? active.front()->stagesDeg : active.front()->stages));
        const double linear_batch =
            std::max(linear_cycles / stages, linear_max);
        const double other_batch =
            std::max(other_cycles / stages, other_max);
        // Everyone in the batch runs on the same accelerator, so the
        // composition rule is uniform across the active set.
        const double linear_segment = accel::composedLinearCycles(
            weight_cycles, linear_batch,
            dm ? active.front()->memorySerializedDeg
               : active.front()->memorySerialized);
        IterCost out;
        // A degraded link stretches the collective floor; a straggler
        // stretches the whole iteration. Both scale products are
        // exactly 1.0 with no active fault window, and x * 1.0 == x in
        // IEEE arithmetic, so zero-fault iterations are bit-identical.
        out.cycles =
            (linear_segment + fixed_cycles * link_scale + other_batch) *
            stall_scale;
        out.weightJoules = weight_joules;
        return out;
    };

    const std::size_t total = requests.size();
    while (stats.completed.size() + stats.droppedRequests < total) {
        // An idle engine holds no KV. Assert that (a drift beyond any
        // FP residue means a reservation leaked), then clear the
        // residue so exact-capacity admission can never stall on one.
        if (active.empty()) {
            if (paged) {
                pool.clearIdleResidual();
            } else {
                panicIf(std::abs(kv_in_use) > 1.0,
                        "KV accounting leak: idle engine still holds "
                        "reserved bytes");
                kv_in_use = 0.0;
            }
        }

        if (faulty) {
            process_faults();
            // Outage (a transient failure with nothing to replan
            // onto): no decode and no admission until the repair, or
            // until the next fault event — processed at its own
            // instant so overlapping events stack correctly.
            if (!dead && clock < outage_until) {
                double wake = outage_until;
                if (next_fault < timeline.size())
                    wake = std::min(wake, timeline[next_fault].at);
                stats.outageCycles += wake - clock;
                clock = wake; // Outage time is not degraded time.
                continue;
            }
        }

        pull_arrivals();
        if (faulty) {
            pull_retries();
            drop_expired_waiting();
            if (stats.completed.size() + stats.droppedRequests == total)
                break;
        }

        // Idle engine: jump to the next wake-up — the next arrival,
        // and under faults the earliest retry expiry or fault event.
        if (active.empty() && waiting.empty()) {
            double wake = std::numeric_limits<double>::infinity();
            if (next_arrival < order.size())
                wake = requests[order[next_arrival]].arrivalCycles;
            if (faulty) {
                for (const CostedRequest *c : retrying)
                    wake = std::min(wake, c->retryAtCycles);
                if (next_fault < timeline.size())
                    wake = std::min(wake, timeline[next_fault].at);
            }
            panicIf(!std::isfinite(wake),
                    "serving scheduler stalled with requests pending");
            jump_to(wake);
            continue;
        }

        // Admission: the scheduler picks among the admissible waiting
        // requests — a free batch slot, the running batch's model (the
        // engine serves one model at a time; an empty batch anchors on
        // whatever is admitted first), and a KV allocation that fits:
        // the full footprint under Reserve, the current residency
        // (plus the low-watermark growth headroom while others run)
        // under Paged. Each admission pays its prefill before joining
        // the batch.
        bool admitted_any = false;
        bool deferred = false;
        while (!waiting.empty() && active.size() < maxBatch_) {
            // Refresh arrivals first: a prefill just paid advanced the
            // clock, and anything that arrived meanwhile must be
            // visible to order-sensitive policies (SJF, skip-ahead).
            // FIFO is unaffected — late arrivals only join the tail.
            pull_arrivals();
            if (faulty) {
                pull_retries();
                drop_expired_waiting();
                if (waiting.empty())
                    break;
            }
            const std::string *batch_model =
                active.empty() ? nullptr : &active.front()->req->model;
            candidates.clear();
            candidates.reserve(waiting.size());
            for (const CostedRequest *c : waiting) {
                AdmissionCandidate cand;
                cand.promptLen = c->req->promptLen;
                cand.decodeLen = c->req->decodeLen;
                cand.waitCycles = clock - c->arrivalCycles;
                cand.prefillCycles = degraded_mode ? c->prefillCyclesDeg
                                                   : c->prefillCycles;
                const bool model_ok = batch_model == nullptr ||
                                      c->req->model == *batch_model;
                bool kv_ok;
                if (paged) {
                    const double alloc = pool.allocatedBytes(
                        c->kvBytesPerToken, resident_tokens(*c));
                    kv_ok = pool.fits(alloc, !active.empty());
                } else {
                    kv_ok = !bounded ||
                            kv_in_use + c->kvBytes <= kv_.capacityBytes;
                }
                cand.admissible = model_ok && kv_ok;
                candidates.push_back(cand);
            }
            KvPressure pressure;
            pressure.bounded = bounded;
            if (bounded) {
                const double used = paged ? pool.usedBytes() : kv_in_use;
                pressure.freeBytes =
                    std::max(0.0, kv_.capacityBytes - used);
                pressure.freeFraction =
                    pressure.freeBytes / kv_.capacityBytes;
            }
            const std::size_t pick =
                scheduler_->pick(candidates, pressure);
            if (pick == Scheduler::npos) {
                // npos with an admissible candidate is a live deferral
                // the per-token loop would revisit after exactly one
                // iteration: it pins the coalescing window to k = 1 so
                // the scheduler is consulted on the same cadence.
                for (const AdmissionCandidate &cand : candidates)
                    deferred = deferred || cand.admissible;
                break;
            }
            panicIf(pick >= candidates.size() ||
                        !candidates[pick].admissible,
                    "scheduler picked an inadmissible request");
            CostedRequest *c = waiting[pick];
            waiting.erase(waiting.begin() +
                          static_cast<std::ptrdiff_t>(pick));
            if (!c->admitted) {
                c->admitted = true;
                c->admissionCycles = clock; // First admission only:
            }                               // queue wait ends here.
            stats.admissionOrder.push_back(c->req->id);
            if (paged) {
                const std::size_t tokens = resident_tokens(*c);
                const double alloc =
                    pool.allocatedBytes(c->kvBytesPerToken, tokens);
                const double need = c->kvBytesPerToken *
                                    static_cast<double>(tokens);
                pool.add(alloc, need);
                c->kvAllocatedBytes = alloc;
                c->kvNeededBytes = need;
            } else {
                kv_in_use += c->kvBytes;
                stats.kvPeakBytes =
                    std::max(stats.kvPeakBytes, kv_in_use);
            }
            const double prefill =
                degraded_mode ? c->prefillCyclesDeg : c->prefillCycles;
            advance(prefill);
            stats.busyCycles += prefill;
            if (faulty) {
                // Faulted runs charge the prefill energy of the mode
                // the prefill actually ran in, deferred to admission;
                // zero-fault runs precharged it at costing time with
                // the identical value, so the accumulation order (and
                // every bit of the total) is unchanged.
                c->joules += degraded_mode ? c->pendingPrefillJoulesDeg
                                           : c->pendingPrefillJoules;
                c->pendingPrefillJoules = 0.0;
                c->pendingPrefillJoulesDeg = 0.0;
                if (c->restartPending) {
                    stats.faultRecomputeCycles += prefill;
                    c->restartPending = false;
                }
            }
            admitted_any = true;
            if (c->remainingTokens == 0)
                finish(*c);
            else
                active.push_back(c);
        }

        if (active.empty()) {
            if (admitted_any)
                continue; // everything admitted had zero decode tokens.
            // Nothing active, nothing admissible: only future arrivals
            // can unblock a (KV-starved) head, since an idle engine
            // holds no KV. Covered by the idle jump above unless the
            // scheduler violated its contract.
            panicIf(waiting.empty() ||
                        (paged ? pool.usedBytes() : kv_in_use) > 0.0,
                    "admission stalled with an idle engine");
            if (!faulty) {
                panicIf(next_arrival >= order.size(),
                        "admission livelock: waiting requests can "
                        "never be admitted");
                clock = std::max(
                    clock, requests[order[next_arrival]].arrivalCycles);
                continue;
            }
            // Under faults a blocked head can also be unblocked (or
            // dropped) by a retry expiry, a fault event, or its own
            // deadline — wake at the earliest of any of them.
            double wake = std::numeric_limits<double>::infinity();
            if (next_arrival < order.size())
                wake = requests[order[next_arrival]].arrivalCycles;
            for (const CostedRequest *c : retrying)
                wake = std::min(wake, c->retryAtCycles);
            if (next_fault < timeline.size())
                wake = std::min(wake, timeline[next_fault].at);
            if (faults_.deadlineCycles > 0.0)
                for (const CostedRequest *c : waiting)
                    if (c->deadlineCycles > 0.0)
                        wake = std::min(wake, c->deadlineCycles);
            panicIf(!std::isfinite(wake),
                    "admission livelock: waiting requests can never "
                    "be admitted");
            jump_to(wake);
            continue;
        }

        // ---- Select the iteration window --------------------------
        // Between discrete events the active set and the iteration
        // cost are constant, so k identical iterations advance in one
        // closed-form step. Window bounds, each matching an event the
        // per-token reference reacts to:
        //  - the soonest completion (min remainingTokens) changes the
        //    batch;
        //  - a scheduler deferral is a live decision revisited every
        //    iteration (k = 1, above);
        //  - the next arrival changes the candidate set (bounded
        //    below, once the iteration cost is known);
        //  - a paged preemption changes the batch (grow_batch_
        //    coalesced truncates the window just before one and the
        //    next pass replays that iteration at per-token fidelity;
        //    fills that fit are absorbed into the window, keeping the
        //    window boundaries policy-independent whenever no
        //    preemption triggers).
        // Mid-window no admission can become possible: slots and the
        // batch model are constant, and pool occupancy only grows
        // (fills), so the admissible set can only shrink and skipping
        // the per-iteration admission retries is behaviour-preserving.
        // Paged: a block fill due on the window's very first iteration
        // may preempt. Resolve that before costing — the per-token
        // ordering (growth precedes the iteration's cost) — and pin
        // the window to one iteration when a preemption fired, so the
        // victim's re-admission is considered on the per-token
        // cadence. Fills that fit never bound the window: they are
        // absorbed below, keeping the window chunking independent of
        // the KV policy whenever no preemption triggers.
        bool preempted_now = false;
        if (paged && next_fill_in(0) == 1) {
            // A lone survivor always fits: the footprint precheck
            // bounds its largest residency by the capacity (the
            // fits() miss can only be the pool's FP residue).
            while (!pool.fits(growth_extra(0), /*admission=*/false) &&
                   active.size() > 1) {
                preempt_youngest();
                preempted_now = true;
            }
        }

        std::size_t k = active.front()->remainingTokens;
        for (const CostedRequest *c : active)
            k = std::min(k, c->remainingTokens);
        if (!coalesce || deferred || preempted_now)
            k = 1;

        IterCost cost = iter_cost();
        if (k > 1 && next_arrival < order.size() && cost.cycles > 0.0) {
            // Stop at the first iteration whose end reaches the next
            // arrival: the per-token loop pulls it into the candidate
            // set before the following iteration. The admission loop
            // can leave an arrival already due (a prefill advanced
            // the clock past it without a final pull); that pins the
            // window to the per-token cadence of one iteration.
            const double until =
                requests[order[next_arrival]].arrivalCycles - clock;
            if (until <= 0.0) {
                k = 1;
            } else {
                const double ka = std::ceil(until / cost.cycles);
                if (ka < static_cast<double>(k))
                    k = std::max<std::size_t>(
                        1, static_cast<std::size_t>(ka));
            }
        }
        if (faulty && k > 1 && cost.cycles > 0.0) {
            // Fault events, retry expiries and queued-request
            // deadlines are window boundaries too: stop at the first
            // iteration whose end reaches one, exactly like the
            // arrival bound above, so the per-token reference and the
            // coalesced window observe each at the same clock.
            auto bound_at = [&](double at) {
                const double until = at - clock;
                if (until <= 0.0) {
                    k = 1;
                    return;
                }
                const double ka = std::ceil(until / cost.cycles);
                if (ka < static_cast<double>(k))
                    k = std::max<std::size_t>(
                        1, static_cast<std::size_t>(ka));
            };
            if (next_fault < timeline.size())
                bound_at(timeline[next_fault].at);
            for (const CostedRequest *c : retrying)
                bound_at(c->retryAtCycles);
            if (faults_.deadlineCycles > 0.0)
                for (const CostedRequest *c : waiting)
                    if (c->deadlineCycles > 0.0)
                        bound_at(c->deadlineCycles);
        }
        if (paged)
            k = grow_batch_coalesced(k);

        // ---- Advance k identical iterations in closed form --------
        // k == 1 reduces bit-exactly to the per-token reference
        // (1.0 * x == x in IEEE arithmetic), so the per-token escape
        // hatch and the boundary/deferral windows share this path
        // unchanged.
        const double kd = static_cast<double>(k);
        const double window_start = clock;
        advance(kd * cost.cycles);
        stats.busyCycles += kd * cost.cycles;
        stats.occupancySum += kd * static_cast<double>(active.size());
        stats.peakBatch = std::max(stats.peakBatch, active.size());
        stats.iterations += k;
        ++stats.decodeWindows;

        const double weight_joules_share =
            cost.weightJoules / static_cast<double>(active.size());
        for (auto it = active.begin(); it != active.end();) {
            CostedRequest *c = *it;
            c->joules +=
                kd * (c->otherJoulesPerToken + weight_joules_share);
            if (!c->firstTokenSeen) {
                c->firstTokenSeen = true;
                // End of the window's first iteration — exact for any
                // k, since a request enters a window at most once
                // without its first token.
                c->firstTokenCycles = window_start + cost.cycles;
            }
            c->remainingTokens -= k;
            if (c->remainingTokens == 0) {
                finish(*c);
                it = active.erase(it);
            } else {
                ++it;
            }
        }
    }

    stats.clockCycles = clock;
    if (paged) {
        stats.kvPeakBytes = pool.peakUsedBytes();
        stats.kvFragmentationPeakBytes = pool.peakFragmentationBytes();
    }
    return stats;
}

} // namespace mcbp::engine
