#include "engine/adapters.hpp"

#include <sstream>
#include <utility>

#include "common/logging.hpp"

namespace mcbp::engine {

// ---- McbpAdapter -----------------------------------------------------------

McbpAdapter::McbpAdapter(accel::McbpAccelerator impl)
    : impl_(std::move(impl))
{
}

Capabilities
McbpAdapter::capabilities() const
{
    const accel::McbpOptions &o = impl_.options();
    Capabilities c;
    // Even the ablation baseline optimizes every path (value-level
    // compression / top-k); the toggles choose bit- vs value-level.
    c.gemmOptimized = true;
    c.attentionOptimized = true;
    c.weightTrafficOptimized = true;
    c.kvTrafficOptimized = true;
    c.decodeOptimized = true;
    c.bitLevel = o.enableBrcr || o.enableBstc || o.enableBgpp;
    c.processors = o.processors;
    c.clockGhz = impl_.hardware().clockGhz;
    c.hbmCapacityBytes = impl_.hardware().hbmCapacityGb * 1e9 *
                         static_cast<double>(o.processors);
    return c;
}

std::string
McbpAdapter::configSummary() const
{
    const accel::McbpOptions &o = impl_.options();
    std::ostringstream os;
    os << name() << ": alpha=" << o.alpha << ", processors="
       << o.processors << ", BRCR=" << (o.enableBrcr ? "on" : "off")
       << ", BSTC=" << (o.enableBstc ? "on" : "off")
       << ", BGPP=" << (o.enableBgpp ? "on" : "off") << "\n"
       << impl_.hardware().toString();
    return os.str();
}

accel::ExecutionPlan
McbpAdapter::plan(const model::LlmConfig &model,
                  const model::Workload &task) const
{
    return impl_.plan(model, task);
}

void
McbpAdapter::profileRequests(const model::LlmConfig &model,
                             const model::Workload &task,
                             std::vector<accel::ProfileRequest> &out) const
{
    // run() always consults both profiles (even the ablation baseline
    // derives its value-level traits from them).
    const accel::McbpOptions &o = impl_.options();
    accel::ProfileRequest r;
    r.model = model;
    r.bitWidth = o.bitWidth;
    r.seed = o.seed;
    r.wantWeights = true;
    r.wantAttention = true;
    r.task = task;
    r.alpha = o.alpha;
    out.push_back(std::move(r));
}

// ---- BaselineAdapter -------------------------------------------------------

BaselineAdapter::BaselineAdapter(
    std::string name, TraitsMaker maker, Capabilities caps,
    std::shared_ptr<accel::ProfileCache> profiles, sim::McbpConfig hw,
    ProfileNeeds needs)
    : name_(std::move(name)), maker_(std::move(maker)), caps_(caps),
      profiles_(std::move(profiles)), hw_(hw), needs_(needs)
{
    fatalIf(!maker_, "baseline adapter needs a traits maker");
    fatalIf(!profiles_, "baseline adapter needs a profile cache");
    caps_.clockGhz = hw_.clockGhz;
    caps_.hbmCapacityBytes = hw_.hbmCapacityGb * 1e9;
}

std::string
BaselineAdapter::configSummary() const
{
    std::ostringstream os;
    os << name_ << ": trait-based SOTA baseline on the shared platform ("
       << hw_.clockGhz << " GHz, " << hw_.totalSramKb() << " kB SRAM, "
       << hw_.hbmBitsPerCoreCycle << " bit/cycle HBM); traits derive "
       << "from the measured profile of each (model, task)";
    return os.str();
}

accel::BaselineTraits
BaselineAdapter::traitsFor(const model::LlmConfig &model,
                           const model::Workload &task) const
{
    return maker_(*profiles_, model, task);
}

accel::ExecutionPlan
BaselineAdapter::plan(const model::LlmConfig &model,
                      const model::Workload &task) const
{
    return accel::BaselineAccelerator(traitsFor(model, task), hw_)
        .plan(model, task);
}

void
BaselineAdapter::profileRequests(
    const model::LlmConfig &model, const model::Workload &task,
    std::vector<accel::ProfileRequest> &out) const
{
    if (!needs_.weights && !needs_.attention)
        return;
    accel::ProfileRequest r;
    r.model = model;
    r.bitWidth = needs_.bitWidth;
    r.seed = needs_.seed;
    r.wantWeights = needs_.weights;
    r.wantAttention = needs_.attention;
    r.task = task;
    r.alpha = needs_.alpha;
    out.push_back(std::move(r));
}

// ---- GpuAdapter ------------------------------------------------------------

GpuAdapter::GpuAdapter(accel::GpuParams params,
                       accel::GpuSoftwareOptions sw,
                       std::shared_ptr<accel::ProfileCache> profiles,
                       double alpha, std::uint64_t seed)
    : impl_(params, sw), profiles_(std::move(profiles)), alpha_(alpha),
      seed_(seed)
{
    fatalIf(!profiles_, "GPU adapter needs a profile cache");
}

Capabilities
GpuAdapter::capabilities() const
{
    const accel::GpuSoftwareOptions &sw = impl_.software();
    Capabilities c;
    c.gemmOptimized = sw.brcr;
    c.attentionOptimized = sw.bgpp;
    c.weightTrafficOptimized = sw.bstc;
    c.kvTrafficOptimized = sw.bgpp;
    c.decodeOptimized = true; // batching works in both stages.
    c.bitLevel = false;       // SIMT lanes stay value-level.
    c.processors = 1;
    c.clockGhz = impl_.params().clockGhz;
    c.hbmCapacityBytes = impl_.params().hbmCapacityBytes;
    return c;
}

std::string
GpuAdapter::configSummary() const
{
    const accel::GpuParams &p = impl_.params();
    std::ostringstream os;
    os << name() << ": " << p.int8Tops << " peak INT8 TOPS @ "
       << p.computeUtilization * 100.0 << "% util, "
       << p.hbmBytesPerSec / 1e12 << " TB/s HBM @ "
       << p.decodeBwUtilization * 100.0 << "% util, "
       << p.dynamicWatts << " W dynamic";
    return os.str();
}

accel::ExecutionPlan
GpuAdapter::plan(const model::LlmConfig &model,
                 const model::Workload &task) const
{
    const accel::WeightStats &ws =
        profiles_->weights(model, quant::BitWidth::Int8, seed_);
    const accel::AttentionStats &as =
        profiles_->attention(model, task, alpha_, seed_);
    return impl_.plan(model, task, ws, as);
}

void
GpuAdapter::profileRequests(const model::LlmConfig &model,
                            const model::Workload &task,
                            std::vector<accel::ProfileRequest> &out) const
{
    accel::ProfileRequest r;
    r.model = model;
    r.bitWidth = quant::BitWidth::Int8;
    r.seed = seed_;
    r.wantWeights = true;
    r.wantAttention = true;
    r.task = task;
    r.alpha = alpha_;
    out.push_back(std::move(r));
}

} // namespace mcbp::engine
