#include "engine/serving.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "engine/event_core.hpp"
#include "engine/fleet.hpp"

namespace mcbp::engine {

namespace {

/** Decode-energy fraction attributable to the weight stream (HBM
 *  weight traffic + BSTC/Huffman decode), which a batch shares. */
double
weightEnergyFraction(const accel::PhaseMetrics &decode)
{
    const double total = decode.energy.totalPj();
    if (total <= 0.0)
        return 0.0;
    const double traffic = decode.traffic.total();
    const double dram_weight =
        traffic > 0.0
            ? decode.energy.dramPj * decode.traffic.weightBytes / traffic
            : 0.0;
    const double frac =
        (decode.energy.codecPj + dram_weight) / total;
    return std::clamp(frac, 0.0, 1.0);
}

/** A request's workload-shape key, for deduplicating warm-up entries
 *  (the profile cache re-keys on its own dependencies afterwards). */
std::string
shapeKey(const model::Request &req)
{
    std::string key;
    key.reserve(req.model.size() + req.task.size() + 16);
    key += req.model;
    key += '\x1f';
    key += req.task;
    key += '\x1f';
    key += std::to_string(req.promptLen);
    key += '\x1f';
    key += std::to_string(req.decodeLen);
    return key;
}

} // namespace

ServingSimulator::ServingSimulator(const Accelerator &accel,
                                   ServingOptions opts)
    : accel_(&accel), opts_(opts),
      planIdentity_(accel.name() + "\n" + accel.configSummary()),
      planCache_(accel::makePlanCache())
{
    // Option bounds are enforced by EventCore, which owns them.
    if (opts_.degradedAccel != nullptr)
        degradedIdentity_ = opts_.degradedAccel->name() + "\n" +
                            opts_.degradedAccel->configSummary();
}

KvOptions
ServingSimulator::kvOptions() const
{
    KvOptions kv;
    kv.policy = opts_.kvPolicy;
    kv.capacityBytes = opts_.kvCapacityBytes;
    kv.blockTokens = opts_.kvBlockTokens;
    kv.lowWatermark = opts_.kvLowWatermark;
    return kv;
}

ServingSimulator::CostedTrace
ServingSimulator::costTrace(const std::vector<model::Request> &trace) const
{
    CostedTrace out;
    if (trace.empty())
        return out;

    // ---- Warm the profile cache on all cores ----------------------------
    // Without this, a cold cache would profile its first-touch keys on
    // whichever costing thread hits them first. Announcing every
    // distinct request shape up front lets the cache fan the distinct
    // keys out over the thread pool (racing engines singleflight),
    // leaving only cache hits in the costing fan-out below. Shapes are
    // deduplicated here so a million-request trace announces a few
    // hundred entries, not a million redundant ones.
    if (const std::shared_ptr<accel::ProfileCache> cache =
            accel_->profileCache()) {
        std::vector<accel::ProfileRequest> requests;
        std::set<std::string> shapes;
        for (const model::Request &req : trace)
            if (shapes.insert(shapeKey(req)).second)
                accel_->profileRequests(model::findModel(req.model),
                                        req.workload(), requests);
        cache->warm(requests, opts_.profileThreads);
    }

    // The degraded topology is only priced when faults can actually
    // put the fleet on it.
    const bool faulty = opts_.faults.enabled();
    const Accelerator *deg = faulty ? opts_.degradedAccel : nullptr;
    if (deg != nullptr)
        if (const std::shared_ptr<accel::ProfileCache> cache =
                deg->profileCache()) {
            std::vector<accel::ProfileRequest> requests;
            std::set<std::string> shapes;
            for (const model::Request &req : trace)
                if (shapes.insert(shapeKey(req)).second)
                    deg->profileRequests(model::findModel(req.model),
                                         req.workload(), requests);
            cache->warm(requests, opts_.profileThreads);
        }

    const KvOptions kv = kvOptions();
    // Pipeline stage count for the decode iteration's stage-aware
    // overlap (one accelerator serves the whole trace).
    const std::size_t stages =
        std::max<std::size_t>(1, accel_->capabilities().pipelineStages);
    const std::size_t stages_deg =
        deg != nullptr
            ? std::max<std::size_t>(1, deg->capabilities().pipelineStages)
            : 1;

    // ---- Cost each request with a batch-1 run ---------------------------
    // The fan-out prices each request independently (distinct shapes
    // compute once in the singleflight plan cache; repeats are hits)
    // and the join below runs in index order, so every sum and check
    // accumulates exactly as the serial loop did: the costed trace is
    // bit-identical at every thread count.
    struct Line
    {
        CostedRequest cost;
        double seconds = 0.0;
        double joules = 0.0;
        double clockGhz = 0.0;
    };
    std::vector<Line> lines = parallel::parallelMap<Line>(
        trace.size(),
        [&](std::size_t i) {
            const model::Request &req = trace[i];
            const model::LlmConfig &m = model::findModel(req.model);
            const model::Workload w = req.workload();
            const accel::RunMetrics &rm = planCache_->metrics(
                planIdentity_, m, w, [&] { return accel_->run(m, w); });

            Line line;
            line.seconds = rm.seconds();
            line.joules = rm.joules();
            line.clockGhz = rm.clockGhz;
            CostedRequest &c = line.cost;
            c.req = &req;
            c.model = &m;
            c.recomputeShape = w;
            c.recomputeShape.decodeLen = 0;
            c.stages = stages;
            c.arrivalCycles = req.arrivalSeconds * rm.clockGhz * 1e9;
            c.prefillCycles = rm.prefill.cycles;
            // Largest-residency footprint, quantized by the KV policy:
            // exact (prompt + decode) bytes under reserve, whole blocks
            // under paged, 0 when no token is ever generated.
            c.kvBytesPerToken =
                static_cast<double>(m.kvBytesPerToken());
            c.promptTokens = req.promptLen;
            c.kvBytes = kvFootprintBytes(kv, c.kvBytesPerToken,
                                         req.promptLen, req.decodeLen);
            const double procs = static_cast<double>(rm.processors);
            // Start from the prefill energy; decode energy accrues per
            // served token with the weight stream amortized.
            const double prefill_joules =
                rm.prefill.energy.totalPj() * 1e-12 * procs;
            if (faulty) {
                // Faulted runs defer the prefill charge to admission
                // (the mode the prefill actually runs in). The first
                // accumulation into c.joules is the identical value
                // either way, so a fault-enabled run whose timeline
                // never fires is bit-identical to this precharge.
                c.joules = 0.0;
                c.pendingPrefillJoules = prefill_joules;
                c.basePrefillCycles = c.prefillCycles;
                c.basePrefillJoules = prefill_joules;
            } else {
                c.joules = prefill_joules;
            }
            if (req.decodeLen > 0) {
                const double steps =
                    static_cast<double>(req.decodeLen);
                // Raw streams let the scheduler re-compose the linear
                // segment at the batch's size, inverting the model's
                // own composition rule; the remainder (attention, SFU)
                // is per-request work.
                c.memorySerialized = rm.decode.memorySerialized;
                c.weightCyclesPerToken =
                    rm.decode.weightStreamCycles / steps;
                c.linearCyclesPerToken =
                    rm.decode.linearWorkCycles / steps;
                const double linear_segment =
                    accel::composedLinearCycles(
                        rm.decode.weightStreamCycles,
                        rm.decode.linearWorkCycles, c.memorySerialized);
                c.fixedCyclesPerToken =
                    rm.decode.fixedStepCycles / steps;
                c.otherCyclesPerToken =
                    std::max(0.0, rm.decode.cycles - linear_segment -
                                      rm.decode.fixedStepCycles) /
                    steps;
                const double decode_joules =
                    rm.decode.energy.totalPj() * 1e-12 * procs;
                const double wf = weightEnergyFraction(rm.decode);
                c.weightJoulesPerToken = decode_joules * wf / steps;
                c.otherJoulesPerToken =
                    decode_joules * (1.0 - wf) / steps;
            }
            if (deg != nullptr) {
                // Price the degraded-topology twin through the same
                // plan cache under its own identity prefix, splitting
                // the streams exactly as above so degraded decode
                // windows compose the same way healthy ones do.
                const accel::RunMetrics &rmd = planCache_->metrics(
                    degradedIdentity_, m, w,
                    [&] { return deg->run(m, w); });
                fatalIf(rmd.clockGhz != rm.clockGhz,
                        "degraded accelerator must run at the primary "
                        "accelerator's clock (cycle timelines merge)");
                const double procsd =
                    static_cast<double>(rmd.processors);
                c.prefillCyclesDeg = rmd.prefill.cycles;
                c.basePrefillCyclesDeg = rmd.prefill.cycles;
                c.basePrefillJoulesDeg =
                    rmd.prefill.energy.totalPj() * 1e-12 * procsd;
                c.pendingPrefillJoulesDeg = c.basePrefillJoulesDeg;
                c.stagesDeg = stages_deg;
                if (req.decodeLen > 0) {
                    const double steps =
                        static_cast<double>(req.decodeLen);
                    c.memorySerializedDeg = rmd.decode.memorySerialized;
                    c.weightCyclesPerTokenDeg =
                        rmd.decode.weightStreamCycles / steps;
                    c.linearCyclesPerTokenDeg =
                        rmd.decode.linearWorkCycles / steps;
                    const double linear_segment_deg =
                        accel::composedLinearCycles(
                            rmd.decode.weightStreamCycles,
                            rmd.decode.linearWorkCycles,
                            c.memorySerializedDeg);
                    c.fixedCyclesPerTokenDeg =
                        rmd.decode.fixedStepCycles / steps;
                    c.otherCyclesPerTokenDeg =
                        std::max(0.0,
                                 rmd.decode.cycles - linear_segment_deg -
                                     rmd.decode.fixedStepCycles) /
                        steps;
                    const double decode_joules_deg =
                        rmd.decode.energy.totalPj() * 1e-12 * procsd;
                    const double wfd = weightEnergyFraction(rmd.decode);
                    c.weightJoulesPerTokenDeg =
                        decode_joules_deg * wfd / steps;
                    c.otherJoulesPerTokenDeg =
                        decode_joules_deg * (1.0 - wfd) / steps;
                }
            }
            c.remainingTokens = req.decodeLen;
            return line;
        },
        opts_.costingThreads);

    out.costs.reserve(lines.size());
    for (Line &line : lines) {
        fatalIf(out.clockGhz != 0.0 && line.clockGhz != out.clockGhz,
                "accelerator changed clock between requests");
        out.clockGhz = line.clockGhz;
        out.serialSeconds += line.seconds;
        out.serialJoules += line.joules;
        out.costs.push_back(std::move(line.cost));
    }
    return out;
}

ServingReport
ServingSimulator::simulate(const std::vector<model::Request> &trace) const
{
    // A data-parallel fleet serves through the replica router: each
    // request runs on exactly one replica's event core and the
    // per-replica reports merge into one fleet report (engine/fleet).
    // dp=1 delegates wholesale to a single-replica simulator, so a
    // dp=1 fleet report is bit-identical to the flat path.
    if (const auto *fleet = dynamic_cast<const FleetAccelerator *>(accel_))
        return FleetRouter(*fleet, opts_).simulate(trace).fleet;

    ServingReport report;
    report.accelerator = accel_->name();
    report.kvPolicy = toString(opts_.kvPolicy);

    const std::unique_ptr<Scheduler> scheduler =
        makeScheduler(opts_.policy, opts_.sjfAgingWeight);
    report.scheduler = scheduler->name();

    // An empty (or fully filtered) trace is a well-defined zeroed
    // report, not an error: no request metrics, no percentiles to
    // index into, every aggregate 0.
    if (trace.empty())
        return report;

    CostedTrace costed = costTrace(trace);
    report.serialSeconds = costed.serialSeconds;
    report.serialJoules = costed.serialJoules;

    // ---- Fault inputs, rescaled to cycles -------------------------------
    // The timeline is sampled in seconds (the trace's unit) over the
    // fleet's fault domains (one per KV shard) and converted once now
    // that costing pinned the clock. Stream separation (kFaultStream)
    // keeps it independent of trace synthesis at equal seeds.
    FaultInputs faults;
    if (opts_.faults.enabled()) {
        const double to_cycles = costed.clockGhz * 1e9;
        const std::size_t chips =
            std::max<std::size_t>(1, accel_->capabilities().kvShards);
        faults.enabled = true;
        faults.timeline = sim::buildFaultTimeline(opts_.faults, chips);
        for (sim::FaultEvent &e : faults.timeline) {
            e.at *= to_cycles;
            e.repairAt *= to_cycles;
        }
        faults.maxRetries = opts_.retry.maxRetries;
        faults.backoffBaseCycles =
            opts_.retry.backoffBaseSeconds * to_cycles;
        faults.backoffCapCycles =
            opts_.retry.backoffCapSeconds * to_cycles;
        faults.deadlineCycles = opts_.retry.deadlineSeconds * to_cycles;
        faults.hasDegraded = opts_.degradedAccel != nullptr;
    }

    // ---- Discrete-event loop under the selected policies ----------------
    // The paged policy re-prices a preempted request's recompute —
    // its prompt plus every generated token, replayed as one prefill
    // — through the accelerator's own prefill path, so recompute
    // cycles and energy follow the same model as first admission.
    // The model and the prefill-only shape were resolved at costing,
    // and the price goes through the plan cache: preemptions at the
    // same resident length (recompute prices repeat heavily) compute
    // once.
    PrefillPricer repricer;
    if (opts_.kvPolicy == KvPolicy::Paged)
        repricer = [this](const CostedRequest &c, std::size_t tokens) {
            model::Workload w = c.recomputeShape;
            w.promptLen = tokens;
            const accel::RunMetrics &rm = planCache_->metrics(
                planIdentity_, *c.model, w,
                [&] { return accel_->run(*c.model, w); });
            PrefillPrice price;
            price.cycles = rm.prefill.cycles;
            price.joules = rm.prefill.energy.totalPj() * 1e-12 *
                           static_cast<double>(rm.processors);
            return price;
        };
    // Degraded twin of the recompute re-pricer, so a paged preemption
    // keeps both prefill prices fresh whatever mode the re-admission
    // lands in.
    PrefillPricer repricerDeg;
    if (opts_.kvPolicy == KvPolicy::Paged && faults.enabled &&
        faults.hasDegraded)
        repricerDeg = [this](const CostedRequest &c,
                             std::size_t tokens) {
            model::Workload w = c.recomputeShape;
            w.promptLen = tokens;
            const accel::RunMetrics &rm = planCache_->metrics(
                degradedIdentity_, *c.model, w, [&] {
                    return opts_.degradedAccel->run(*c.model, w);
                });
            PrefillPrice price;
            price.cycles = rm.prefill.cycles;
            price.joules = rm.prefill.energy.totalPj() * 1e-12 *
                           static_cast<double>(rm.processors);
            return price;
        };
    const EventCore core(*scheduler, opts_.maxBatch, kvOptions(),
                         std::move(repricer), opts_.stepMode,
                         std::move(faults), std::move(repricerDeg));
    EventStats stats = core.run(costed.costs);

    // ---- Aggregate ------------------------------------------------------
    const double to_seconds = 1.0 / (costed.clockGhz * 1e9);
    report.requests.reserve(stats.completed.size());
    for (const CostedRequest *c : stats.completed) {
        RequestMetrics rmx;
        rmx.id = c->req->id;
        rmx.arrivalSeconds = c->req->arrivalSeconds;
        rmx.admissionSeconds = c->admissionCycles * to_seconds;
        rmx.firstTokenSeconds =
            (c->firstTokenSeen ? c->firstTokenCycles
                               : c->completionCycles) *
            to_seconds;
        rmx.completionSeconds = c->completionCycles * to_seconds;
        rmx.decodeTokens = c->req->decodeLen;
        rmx.kvBytes = c->kvBytes;
        rmx.preemptions = c->preemptions;
        rmx.recomputedTokens = c->recomputedTokens;
        rmx.retries = c->retries;
        rmx.sloMiss = c->deadlineCycles > 0.0 &&
                      c->completionCycles > c->deadlineCycles;
        rmx.joules = c->joules;
        report.requests.push_back(rmx);
    }

    report.makespanSeconds = stats.clockCycles * to_seconds;
    report.busySeconds = stats.busyCycles * to_seconds;
    report.peakBatch = stats.peakBatch;
    report.kvPeakBytes = stats.kvPeakBytes;
    report.kvUtilization = !kvUnbounded(opts_.kvCapacityBytes)
                               ? stats.kvPeakBytes / opts_.kvCapacityBytes
                               : 0.0;
    report.preemptions = stats.preemptions;
    report.recomputedTokens = stats.recomputedTokens;
    report.kvBlockUtilization =
        stats.kvBlockUtilizationIters > 0
            ? stats.kvBlockUtilizationSum /
                  static_cast<double>(stats.kvBlockUtilizationIters)
            : 0.0;
    report.kvFragmentationPeakBytes = stats.kvFragmentationPeakBytes;
    report.decodeIterations = stats.iterations;
    report.decodeWindows = stats.decodeWindows;
    report.admissionOrder = std::move(stats.admissionOrder);
    report.preemptionOrder = std::move(stats.preemptionOrder);

    // ---- Availability -----------------------------------------------
    report.faultEvents = stats.faultEvents;
    report.killedInFlight = stats.killedInFlight;
    report.retriesScheduled = stats.retriesScheduled;
    report.droppedRequests = stats.droppedRequests;
    report.faultLostTokens = stats.faultLostTokens;
    report.faultRecomputeSeconds =
        stats.faultRecomputeCycles * to_seconds;
    report.degradedSeconds = stats.degradedCycles * to_seconds;
    report.outageSeconds = stats.outageCycles * to_seconds;
    report.degradedFraction =
        report.makespanSeconds > 0.0
            ? report.degradedSeconds / report.makespanSeconds
            : 0.0;
    report.retryOrder = std::move(stats.retryOrder);
    report.dropOrder = std::move(stats.dropOrder);
    report.faultLog.reserve(stats.faultLog.size());
    for (const EventStats::FaultImpact &f : stats.faultLog) {
        ServingReport::FaultImpact fi;
        fi.eventId = f.eventId;
        fi.seconds = f.atCycles * to_seconds;
        fi.kind = sim::toString(f.kind);
        fi.chip = f.chip;
        fi.permanent = f.permanent;
        fi.killed = f.killed;
        fi.dropped = f.dropped;
        report.faultLog.push_back(fi);
    }

    finalizeServingAggregates(report, trace.size());
    if (report.noCompletions)
        return report;
    report.meanBatchOccupancy =
        stats.iterations > 0
            ? stats.occupancySum / static_cast<double>(stats.iterations)
            : 0.0;
    return report;
}

void
finalizeServingAggregates(ServingReport &report, std::size_t traceSize)
{
    // Percentiles are only defined over completed requests; an empty
    // completion set (everything rejected or dropped) keeps the
    // zeroed report fields instead of indexing into empty sample
    // vectors, and is tagged so callers can tell "all dropped" from
    // an empty trace.
    if (report.requests.empty()) {
        report.noCompletions = true;
        return;
    }

    std::vector<double> latencies;
    std::vector<double> queue_waits;
    std::vector<double> first_tokens;
    latencies.reserve(report.requests.size());
    queue_waits.reserve(report.requests.size());
    first_tokens.reserve(report.requests.size());
    double total_tokens = 0.0;
    double total_joules = 0.0;
    double good_tokens = 0.0; // Tokens of SLO-compliant completions.
    std::size_t compliant = 0;
    double tpot_sum = 0.0;
    std::size_t tpot_requests = 0;
    for (const RequestMetrics &r : report.requests) {
        latencies.push_back(r.latencySeconds());
        queue_waits.push_back(r.queueSeconds());
        first_tokens.push_back(r.firstTokenSeconds - r.arrivalSeconds);
        total_tokens += static_cast<double>(r.decodeTokens);
        total_joules += r.joules;
        if (!r.sloMiss) {
            good_tokens += static_cast<double>(r.decodeTokens);
            ++compliant;
        }
        // TPOT is the steady decode cadence, defined once a request
        // has an inter-token gap to measure.
        if (r.decodeTokens > 1) {
            tpot_sum += (r.completionSeconds - r.firstTokenSeconds) /
                        static_cast<double>(r.decodeTokens - 1);
            ++tpot_requests;
        }
    }
    report.meanLatencySeconds =
        std::accumulate(latencies.begin(), latencies.end(), 0.0) /
        static_cast<double>(latencies.size());
    // One sort serves all three quantiles.
    std::sort(latencies.begin(), latencies.end());
    report.p50LatencySeconds = percentileSorted(latencies, 0.50);
    report.p90LatencySeconds = percentileSorted(latencies, 0.90);
    report.p99LatencySeconds = percentileSorted(latencies, 0.99);
    std::sort(queue_waits.begin(), queue_waits.end());
    report.p50QueueSeconds = percentileSorted(queue_waits, 0.50);
    report.p90QueueSeconds = percentileSorted(queue_waits, 0.90);
    report.p99QueueSeconds = percentileSorted(queue_waits, 0.99);
    std::sort(first_tokens.begin(), first_tokens.end());
    report.p50FirstTokenSeconds = percentileSorted(first_tokens, 0.50);
    report.p90FirstTokenSeconds = percentileSorted(first_tokens, 0.90);
    report.p99FirstTokenSeconds = percentileSorted(first_tokens, 0.99);
    report.meanTpotSeconds =
        tpot_requests > 0
            ? tpot_sum / static_cast<double>(tpot_requests)
            : 0.0;
    report.tokensPerSecond = report.makespanSeconds > 0.0
                                 ? total_tokens / report.makespanSeconds
                                 : 0.0;
    // Goodput accumulates in the same order as total_tokens, so with
    // no SLO misses it is bit-equal to tokensPerSecond.
    report.goodputTokensPerSecond =
        report.makespanSeconds > 0.0
            ? good_tokens / report.makespanSeconds
            : 0.0;
    report.sloAttainment = static_cast<double>(compliant) /
                           static_cast<double>(traceSize);
    report.joulesPerToken =
        total_tokens > 0.0 ? total_joules / total_tokens : 0.0;
}

} // namespace mcbp::engine
