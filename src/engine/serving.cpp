#include "engine/serving.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace mcbp::engine {

namespace {

/** Precomputed cost model of one request (from a batch-1 run). */
struct RequestCost
{
    const model::Request *req = nullptr;
    double arrivalCycles = 0.0;
    double prefillCycles = 0.0;
    /** Per-token weight-stream cycles (shared across a decode batch). */
    double weightCyclesPerToken = 0.0;
    /** Per-token linear work (GEMM + activations; per-request, but it
     *  overlaps the shared weight stream). */
    double linearCyclesPerToken = 0.0;
    /** Per-token attention/SFU cycles (per-request, not overlapped). */
    double otherCyclesPerToken = 0.0;
    /** Composition rule of the wrapped model's linear segment
     *  (see PhaseMetrics::memorySerialized). */
    bool memorySerialized = false;
    /** Energy split mirroring the cycle split, so the scheduler can
     *  amortize the shared weight stream in joules too. */
    double weightJoulesPerToken = 0.0;
    double otherJoulesPerToken = 0.0;
    double joules = 0.0; ///< Accumulated as the request is served.
    std::size_t remainingTokens = 0;
    bool firstTokenSeen = false;
    double firstTokenCycles = 0.0;
};

/** Decode-energy fraction attributable to the weight stream (HBM
 *  weight traffic + BSTC/Huffman decode), which a batch shares. */
double
weightEnergyFraction(const accel::PhaseMetrics &decode)
{
    const double total = decode.energy.totalPj();
    if (total <= 0.0)
        return 0.0;
    const double traffic = decode.traffic.total();
    const double dram_weight =
        traffic > 0.0
            ? decode.energy.dramPj * decode.traffic.weightBytes / traffic
            : 0.0;
    const double frac =
        (decode.energy.codecPj + dram_weight) / total;
    return std::clamp(frac, 0.0, 1.0);
}

} // namespace

ServingSimulator::ServingSimulator(const Accelerator &accel,
                                   ServingOptions opts)
    : accel_(&accel), opts_(opts)
{
    fatalIf(opts_.maxBatch == 0, "maxBatch must be positive");
}

ServingReport
ServingSimulator::simulate(const std::vector<model::Request> &trace) const
{
    fatalIf(trace.empty(), "serving trace is empty");

    ServingReport report;
    report.accelerator = accel_->name();

    // ---- Cost each request with a batch-1 run ---------------------------
    double clock_ghz = 0.0;
    std::vector<RequestCost> costs;
    costs.reserve(trace.size());
    for (const model::Request &req : trace) {
        const model::LlmConfig &m = model::findModel(req.model);
        const accel::RunMetrics rm = accel_->run(m, req.workload());
        fatalIf(clock_ghz != 0.0 && rm.clockGhz != clock_ghz,
                "accelerator changed clock between requests");
        clock_ghz = rm.clockGhz;

        RequestCost c;
        c.req = &req;
        c.arrivalCycles = req.arrivalSeconds * clock_ghz * 1e9;
        c.prefillCycles = rm.prefill.cycles;
        const double procs = static_cast<double>(rm.processors);
        // Start from the prefill energy; decode energy accrues per
        // served token with the weight stream amortized.
        c.joules = rm.prefill.energy.totalPj() * 1e-12 * procs;
        if (req.decodeLen > 0) {
            const double steps = static_cast<double>(req.decodeLen);
            // Raw streams let the scheduler re-compose the linear
            // segment at the batch's size, inverting the model's own
            // composition rule; the remainder (attention, SFU) is
            // per-request work.
            c.memorySerialized = rm.decode.memorySerialized;
            c.weightCyclesPerToken = rm.decode.weightStreamCycles / steps;
            c.linearCyclesPerToken = rm.decode.linearWorkCycles / steps;
            const double linear_segment =
                c.memorySerialized
                    ? rm.decode.weightStreamCycles +
                          rm.decode.linearWorkCycles
                    : std::max(rm.decode.weightStreamCycles,
                               rm.decode.linearWorkCycles);
            c.otherCyclesPerToken =
                std::max(0.0, rm.decode.cycles - linear_segment) / steps;
            const double decode_joules =
                rm.decode.energy.totalPj() * 1e-12 * procs;
            const double wf = weightEnergyFraction(rm.decode);
            c.weightJoulesPerToken = decode_joules * wf / steps;
            c.otherJoulesPerToken =
                decode_joules * (1.0 - wf) / steps;
        }
        c.remainingTokens = req.decodeLen;
        costs.push_back(c);
        report.serialSeconds += rm.seconds();
        report.serialJoules += rm.joules();
    }
    // Process arrivals in order regardless of the trace's sort.
    std::vector<std::size_t> order(costs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return costs[a].arrivalCycles <
                                costs[b].arrivalCycles;
                     });

    // ---- Continuous-batching event loop ---------------------------------
    const double to_seconds = 1.0 / (clock_ghz * 1e9);
    double clock = 0.0;
    double busy = 0.0;
    double occupancy_sum = 0.0;
    std::size_t iterations = 0;
    std::size_t next_arrival = 0;
    std::deque<RequestCost *> waiting;
    std::vector<RequestCost *> active;
    std::string current_model;

    auto finish = [&](RequestCost &c) {
        RequestMetrics rmx;
        rmx.id = c.req->id;
        rmx.arrivalSeconds = c.req->arrivalSeconds;
        rmx.firstTokenSeconds =
            (c.firstTokenSeen ? c.firstTokenCycles : clock) * to_seconds;
        rmx.completionSeconds = clock * to_seconds;
        rmx.decodeTokens = c.req->decodeLen;
        rmx.joules = c.joules;
        report.requests.push_back(rmx);
    };

    const std::size_t total = costs.size();
    while (report.requests.size() < total) {
        // Pull arrivals that happened by now into the waiting queue.
        while (next_arrival < order.size() &&
               costs[order[next_arrival]].arrivalCycles <= clock)
            waiting.push_back(&costs[order[next_arrival++]]);

        // Idle engine: jump to the next arrival.
        if (active.empty() && waiting.empty()) {
            panicIf(next_arrival >= order.size(),
                    "serving scheduler stalled with requests pending");
            clock = costs[order[next_arrival]].arrivalCycles;
            continue;
        }

        // The engine serves one model at a time; pick the oldest
        // outstanding request's model when the batch drains.
        if (active.empty() && !waiting.empty())
            current_model = waiting.front()->req->model;

        // Admit waiting requests into free slots in strict FIFO order;
        // each pays its prefill before joining the decode batch. A
        // different-model request at the queue head stops admission
        // (drain, then switch) — skipping it would starve that model
        // under continuous same-model arrivals.
        while (!waiting.empty() && active.size() < opts_.maxBatch &&
               waiting.front()->req->model == current_model) {
            RequestCost *c = waiting.front();
            waiting.pop_front();
            clock += c->prefillCycles;
            busy += c->prefillCycles;
            if (c->remainingTokens == 0)
                finish(*c);
            else
                active.push_back(c);
        }

        if (active.empty())
            continue; // everything admitted had zero decode tokens.

        // One decode iteration: everyone advances one token. The weight
        // stream is fetched once for the whole batch (max, in cycles
        // and in joules) and overlaps the batch's summed linear work;
        // attention/SFU is per-request work on top.
        double weight_cycles = 0.0;
        double linear_cycles = 0.0;
        double other_cycles = 0.0;
        double weight_joules = 0.0;
        for (RequestCost *c : active) {
            weight_cycles =
                std::max(weight_cycles, c->weightCyclesPerToken);
            weight_joules =
                std::max(weight_joules, c->weightJoulesPerToken);
            linear_cycles += c->linearCyclesPerToken;
            other_cycles += c->otherCyclesPerToken;
        }
        // Everyone in the batch runs on the same accelerator, so the
        // composition rule is uniform across the active set.
        const double linear_segment =
            active.front()->memorySerialized
                ? weight_cycles + linear_cycles
                : std::max(weight_cycles, linear_cycles);
        const double iter_cycles = linear_segment + other_cycles;
        clock += iter_cycles;
        busy += iter_cycles;
        occupancy_sum += static_cast<double>(active.size());
        report.peakBatch = std::max(report.peakBatch, active.size());
        ++iterations;

        const double weight_joules_share =
            weight_joules / static_cast<double>(active.size());
        for (auto it = active.begin(); it != active.end();) {
            RequestCost *c = *it;
            c->joules += c->otherJoulesPerToken + weight_joules_share;
            if (!c->firstTokenSeen) {
                c->firstTokenSeen = true;
                c->firstTokenCycles = clock;
            }
            if (--c->remainingTokens == 0) {
                finish(*c);
                it = active.erase(it);
            } else {
                ++it;
            }
        }
    }

    // ---- Aggregate ------------------------------------------------------
    report.makespanSeconds = clock * to_seconds;
    report.busySeconds = busy * to_seconds;
    std::vector<double> latencies;
    latencies.reserve(report.requests.size());
    double total_tokens = 0.0;
    double total_joules = 0.0;
    for (const RequestMetrics &r : report.requests) {
        latencies.push_back(r.latencySeconds());
        total_tokens += static_cast<double>(r.decodeTokens);
        total_joules += r.joules;
    }
    report.meanLatencySeconds =
        std::accumulate(latencies.begin(), latencies.end(), 0.0) /
        static_cast<double>(latencies.size());
    // One sort serves all three quantiles.
    std::sort(latencies.begin(), latencies.end());
    report.p50LatencySeconds = percentileSorted(latencies, 0.50);
    report.p90LatencySeconds = percentileSorted(latencies, 0.90);
    report.p99LatencySeconds = percentileSorted(latencies, 0.99);
    report.tokensPerSecond = report.makespanSeconds > 0.0
                                 ? total_tokens / report.makespanSeconds
                                 : 0.0;
    report.joulesPerToken =
        total_tokens > 0.0 ? total_joules / total_tokens : 0.0;
    report.meanBatchOccupancy =
        iterations > 0
            ? occupancy_sum / static_cast<double>(iterations)
            : 0.0;
    return report;
}

} // namespace mcbp::engine
