#include "engine/serving.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "engine/event_core.hpp"

namespace mcbp::engine {

namespace {

/** Decode-energy fraction attributable to the weight stream (HBM
 *  weight traffic + BSTC/Huffman decode), which a batch shares. */
double
weightEnergyFraction(const accel::PhaseMetrics &decode)
{
    const double total = decode.energy.totalPj();
    if (total <= 0.0)
        return 0.0;
    const double traffic = decode.traffic.total();
    const double dram_weight =
        traffic > 0.0
            ? decode.energy.dramPj * decode.traffic.weightBytes / traffic
            : 0.0;
    const double frac =
        (decode.energy.codecPj + dram_weight) / total;
    return std::clamp(frac, 0.0, 1.0);
}

} // namespace

ServingSimulator::ServingSimulator(const Accelerator &accel,
                                   ServingOptions opts)
    : accel_(&accel), opts_(opts)
{
    // Option bounds are enforced by EventCore, which owns them.
}

ServingReport
ServingSimulator::simulate(const std::vector<model::Request> &trace) const
{
    ServingReport report;
    report.accelerator = accel_->name();
    report.kvPolicy = toString(opts_.kvPolicy);

    const std::unique_ptr<Scheduler> scheduler =
        makeScheduler(opts_.policy, opts_.sjfAgingWeight);
    report.scheduler = scheduler->name();

    // An empty (or fully filtered) trace is a well-defined zeroed
    // report, not an error: no request metrics, no percentiles to
    // index into, every aggregate 0.
    if (trace.empty())
        return report;

    // ---- Warm the profile cache on all cores ----------------------------
    // The costing loop below is serial; without this, a cold cache would
    // profile its first-touch keys one by one. Announcing every request's
    // needs up front lets the cache fan the distinct keys out over the
    // thread pool (duplicates collapse inside warm, and racing engines
    // singleflight), leaving only cheap cache hits in the serial loop.
    if (const std::shared_ptr<accel::ProfileCache> cache =
            accel_->profileCache()) {
        std::vector<accel::ProfileRequest> requests;
        for (const model::Request &req : trace)
            accel_->profileRequests(model::findModel(req.model),
                                    req.workload(), requests);
        cache->warm(requests, opts_.profileThreads);
    }

    KvOptions kv;
    kv.policy = opts_.kvPolicy;
    kv.capacityBytes = opts_.kvCapacityBytes;
    kv.blockTokens = opts_.kvBlockTokens;
    kv.lowWatermark = opts_.kvLowWatermark;

    // ---- Cost each request with a batch-1 run ---------------------------
    // Pipeline stage count for the decode iteration's stage-aware
    // overlap (one accelerator serves the whole trace).
    const std::size_t stages =
        std::max<std::size_t>(1, accel_->capabilities().pipelineStages);
    double clock_ghz = 0.0;
    std::vector<CostedRequest> costs;
    costs.reserve(trace.size());
    for (const model::Request &req : trace) {
        const model::LlmConfig &m = model::findModel(req.model);
        const accel::RunMetrics rm = accel_->run(m, req.workload());
        fatalIf(clock_ghz != 0.0 && rm.clockGhz != clock_ghz,
                "accelerator changed clock between requests");
        clock_ghz = rm.clockGhz;

        CostedRequest c;
        c.req = &req;
        c.stages = stages;
        c.arrivalCycles = req.arrivalSeconds * clock_ghz * 1e9;
        c.prefillCycles = rm.prefill.cycles;
        // Largest-residency footprint, quantized by the KV policy:
        // exact (prompt + decode) bytes under reserve, whole blocks
        // under paged, 0 when no token is ever generated.
        c.kvBytesPerToken = static_cast<double>(m.kvBytesPerToken());
        c.promptTokens = req.promptLen;
        c.kvBytes = kvFootprintBytes(kv, c.kvBytesPerToken,
                                     req.promptLen, req.decodeLen);
        const double procs = static_cast<double>(rm.processors);
        // Start from the prefill energy; decode energy accrues per
        // served token with the weight stream amortized.
        c.joules = rm.prefill.energy.totalPj() * 1e-12 * procs;
        if (req.decodeLen > 0) {
            const double steps = static_cast<double>(req.decodeLen);
            // Raw streams let the scheduler re-compose the linear
            // segment at the batch's size, inverting the model's own
            // composition rule; the remainder (attention, SFU) is
            // per-request work.
            c.memorySerialized = rm.decode.memorySerialized;
            c.weightCyclesPerToken = rm.decode.weightStreamCycles / steps;
            c.linearCyclesPerToken = rm.decode.linearWorkCycles / steps;
            const double linear_segment = accel::composedLinearCycles(
                rm.decode.weightStreamCycles,
                rm.decode.linearWorkCycles, c.memorySerialized);
            c.fixedCyclesPerToken = rm.decode.fixedStepCycles / steps;
            c.otherCyclesPerToken =
                std::max(0.0, rm.decode.cycles - linear_segment -
                                  rm.decode.fixedStepCycles) /
                steps;
            const double decode_joules =
                rm.decode.energy.totalPj() * 1e-12 * procs;
            const double wf = weightEnergyFraction(rm.decode);
            c.weightJoulesPerToken = decode_joules * wf / steps;
            c.otherJoulesPerToken =
                decode_joules * (1.0 - wf) / steps;
        }
        c.remainingTokens = req.decodeLen;
        costs.push_back(c);
        report.serialSeconds += rm.seconds();
        report.serialJoules += rm.joules();
    }

    // ---- Discrete-event loop under the selected policies ----------------
    // The paged policy re-prices a preempted request's recompute —
    // its prompt plus every generated token, replayed as one prefill
    // — through the accelerator's own prefill path, so recompute
    // cycles and energy follow the same model as first admission.
    PrefillPricer repricer;
    if (opts_.kvPolicy == KvPolicy::Paged)
        repricer = [this](const CostedRequest &c, std::size_t tokens) {
            const model::LlmConfig &m = model::findModel(c.req->model);
            model::Workload w = c.req->workload();
            w.promptLen = tokens;
            w.decodeLen = 0;
            const accel::RunMetrics rm = accel_->run(m, w);
            PrefillPrice price;
            price.cycles = rm.prefill.cycles;
            price.joules = rm.prefill.energy.totalPj() * 1e-12 *
                           static_cast<double>(rm.processors);
            return price;
        };
    const EventCore core(*scheduler, opts_.maxBatch, kv,
                         std::move(repricer));
    const EventStats stats = core.run(costs);

    // ---- Aggregate ------------------------------------------------------
    const double to_seconds = 1.0 / (clock_ghz * 1e9);
    report.requests.reserve(stats.completed.size());
    for (const CostedRequest *c : stats.completed) {
        RequestMetrics rmx;
        rmx.id = c->req->id;
        rmx.arrivalSeconds = c->req->arrivalSeconds;
        rmx.admissionSeconds = c->admissionCycles * to_seconds;
        rmx.firstTokenSeconds =
            (c->firstTokenSeen ? c->firstTokenCycles
                               : c->completionCycles) *
            to_seconds;
        rmx.completionSeconds = c->completionCycles * to_seconds;
        rmx.decodeTokens = c->req->decodeLen;
        rmx.kvBytes = c->kvBytes;
        rmx.preemptions = c->preemptions;
        rmx.recomputedTokens = c->recomputedTokens;
        rmx.joules = c->joules;
        report.requests.push_back(rmx);
    }

    report.makespanSeconds = stats.clockCycles * to_seconds;
    report.busySeconds = stats.busyCycles * to_seconds;
    report.peakBatch = stats.peakBatch;
    report.kvPeakBytes = stats.kvPeakBytes;
    report.kvUtilization = !kvUnbounded(opts_.kvCapacityBytes)
                               ? stats.kvPeakBytes / opts_.kvCapacityBytes
                               : 0.0;
    report.preemptions = stats.preemptions;
    report.recomputedTokens = stats.recomputedTokens;
    report.kvBlockUtilization =
        stats.kvBlockUtilizationIters > 0
            ? stats.kvBlockUtilizationSum /
                  static_cast<double>(stats.kvBlockUtilizationIters)
            : 0.0;
    report.kvFragmentationPeakBytes = stats.kvFragmentationPeakBytes;

    // Percentiles are only defined over completed requests; an empty
    // completion set (nothing ever admitted) keeps the zeroed report
    // fields instead of indexing into empty sample vectors.
    if (report.requests.empty())
        return report;

    std::vector<double> latencies;
    std::vector<double> queue_waits;
    latencies.reserve(report.requests.size());
    queue_waits.reserve(report.requests.size());
    double total_tokens = 0.0;
    double total_joules = 0.0;
    for (const RequestMetrics &r : report.requests) {
        latencies.push_back(r.latencySeconds());
        queue_waits.push_back(r.queueSeconds());
        total_tokens += static_cast<double>(r.decodeTokens);
        total_joules += r.joules;
    }
    report.meanLatencySeconds =
        std::accumulate(latencies.begin(), latencies.end(), 0.0) /
        static_cast<double>(latencies.size());
    // One sort serves all three quantiles.
    std::sort(latencies.begin(), latencies.end());
    report.p50LatencySeconds = percentileSorted(latencies, 0.50);
    report.p90LatencySeconds = percentileSorted(latencies, 0.90);
    report.p99LatencySeconds = percentileSorted(latencies, 0.99);
    std::sort(queue_waits.begin(), queue_waits.end());
    report.p50QueueSeconds = percentileSorted(queue_waits, 0.50);
    report.p90QueueSeconds = percentileSorted(queue_waits, 0.90);
    report.p99QueueSeconds = percentileSorted(queue_waits, 0.99);
    report.tokensPerSecond = report.makespanSeconds > 0.0
                                 ? total_tokens / report.makespanSeconds
                                 : 0.0;
    report.joulesPerToken =
        total_tokens > 0.0 ? total_joules / total_tokens : 0.0;
    report.meanBatchOccupancy =
        stats.iterations > 0
            ? stats.occupancySum / static_cast<double>(stats.iterations)
            : 0.0;
    return report;
}

} // namespace mcbp::engine
