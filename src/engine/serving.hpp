/**
 * @file
 * Multi-request serving simulator with continuous batching.
 *
 * Takes a request trace (model::Request: arrival time + per-request
 * prompt/decode lengths) and an engine::Accelerator, and schedules the
 * requests the way an LLM serving engine does: requests join the batch
 * as they arrive (up to maxBatch), prefill runs when a request is
 * admitted, and every scheduler iteration advances all in-flight
 * requests by one decode token, retiring finished ones immediately
 * (continuous batching, as in Orca/vLLM).
 *
 * The cost model is built from the per-phase PhaseMetrics the unified
 * run() interface already produces for a batch-1 run of each request:
 *   - prefill costs the request's own prefill cycles;
 *   - a decode iteration re-composes the linear segment's overlap at
 *     the batch's size: max(shared weight stream, summed per-request
 *     linear work) — the weight fetch/decode is shared by everyone
 *     decoding that step (the amortization Fig 20's B=128 GPU point
 *     exploits), while GEMM compute scales with the batch — plus the
 *     summed per-token attention/SFU cycles. Energy is split the same
 *     way, so batching lowers J/token as it lowers cycles.
 * This makes batched total busy time provably <= the serial sum of the
 * individual runs, with equality at maxBatch=1.
 *
 * Requests for different models never share a batch: admission is
 * strict FIFO, so a different-model request at the queue head pauses
 * admission until the current batch drains (bounded wait — skipping it
 * would starve that model under continuous same-model arrivals).
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "engine/accelerator.hpp"
#include "model/request.hpp"

namespace mcbp::engine {

/** Scheduler knobs. */
struct ServingOptions
{
    /** Maximum requests decoding together (continuous batch size). */
    std::size_t maxBatch = 32;
};

/** Per-request outcome. */
struct RequestMetrics
{
    std::size_t id = 0;
    double arrivalSeconds = 0.0;
    double firstTokenSeconds = 0.0; ///< End of the first decode step.
    double completionSeconds = 0.0;
    std::size_t decodeTokens = 0;
    /** Energy attributed to this request, with the shared decode
     *  weight stream amortized across its batch mates. */
    double joules = 0.0;

    double latencySeconds() const
    {
        return completionSeconds - arrivalSeconds;
    }
};

/** Aggregate serving outcome. */
struct ServingReport
{
    std::string accelerator;
    /** Per-request metrics, in completion order. */
    std::vector<RequestMetrics> requests;

    double makespanSeconds = 0.0; ///< Last completion time.
    /** Engine-occupied time under continuous batching. */
    double busySeconds = 0.0;
    /** Sum of the isolated single-request run times (no batching). */
    double serialSeconds = 0.0;
    /** Sum of the isolated single-request run energies (no batching). */
    double serialJoules = 0.0;

    double meanLatencySeconds = 0.0;
    double p50LatencySeconds = 0.0;
    double p90LatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;

    double tokensPerSecond = 0.0; ///< Generated tokens / makespan.
    double joulesPerToken = 0.0;
    double meanBatchOccupancy = 0.0; ///< Mean in-flight per iteration.
    std::size_t peakBatch = 0;

    /** Throughput gain of batching vs serving the trace serially. */
    double batchingSpeedup() const
    {
        return busySeconds > 0.0 ? serialSeconds / busySeconds : 1.0;
    }
};

/** Continuous-batching serving simulator over one accelerator. */
class ServingSimulator
{
  public:
    explicit ServingSimulator(const Accelerator &accel,
                              ServingOptions opts = {});

    /** Simulate @p trace to completion. */
    ServingReport simulate(const std::vector<model::Request> &trace) const;

  private:
    const Accelerator *accel_;
    ServingOptions opts_;
};

} // namespace mcbp::engine
