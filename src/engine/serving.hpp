/**
 * @file
 * Multi-request serving simulator with continuous batching.
 *
 * Takes a request trace (model::Request: arrival time + per-request
 * prompt/decode lengths) and an engine::Accelerator, and schedules the
 * requests the way an LLM serving engine does: requests join the batch
 * as they arrive (up to maxBatch), prefill runs when a request is
 * admitted, and every scheduler iteration advances all in-flight
 * requests by one decode token, retiring finished ones immediately
 * (continuous batching, as in Orca/vLLM).
 *
 * The simulator splits into two layers:
 *  - this file costs each request from a batch-1 run of the wrapped
 *    Accelerator and aggregates the report;
 *  - event_core.hpp plays the costed trace through a discrete-event
 *    loop, delegating admission order to a pluggable Scheduler
 *    (scheduler.hpp: strict FIFO, skip-ahead same-model batching, or
 *    shortest-prompt-first) and enforcing the KV-capacity budget.
 *
 * The cost model is built from the per-phase PhaseMetrics the unified
 * run() interface already produces for a batch-1 run of each request:
 *   - prefill costs the request's own prefill cycles;
 *   - a decode iteration re-composes the linear segment's overlap at
 *     the batch's size: max(shared weight stream, summed per-request
 *     linear work) — the weight fetch/decode is shared by everyone
 *     decoding that step (the amortization Fig 20's B=128 GPU point
 *     exploits), while GEMM compute scales with the batch — plus the
 *     summed per-token attention/SFU cycles. Energy is split the same
 *     way, so batching lowers J/token as it lowers cycles.
 * This makes batched total busy time provably <= the serial sum of the
 * individual runs, with equality at maxBatch=1.
 *
 * Serving is memory-bounded when a KV capacity is configured: each
 * request reserves kvBytesPerToken x (prompt + decode) bytes at
 * admission and holds them until completion, so peak KV residency
 * (reported as kvPeakBytes) never exceeds the budget; requests queue
 * while they do not fit, and the queue-time percentiles expose the
 * wait that costs.
 *
 * Requests for different models never share a batch. Under the default
 * strict-FIFO policy a different-model request at the queue head pauses
 * admission until the current batch drains (bounded wait — skipping it
 * would starve that model under continuous same-model arrivals); the
 * skip-ahead policy makes the opposite trade.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "engine/accelerator.hpp"
#include "engine/scheduler.hpp"
#include "model/request.hpp"

namespace mcbp::engine {

/** Scheduler knobs. */
struct ServingOptions
{
    /** Maximum requests decoding together (continuous batch size). */
    std::size_t maxBatch = 32;
    /** Admission-order policy (see scheduler.hpp). */
    SchedulerPolicy policy = SchedulerPolicy::Fifo;
    /**
     * KV-cache capacity in bytes the in-flight requests may hold
     * (0 = unbounded). A deployment derives it from the accelerator's
     * Capabilities::hbmCapacityBytes minus the resident weights.
     */
    double kvCapacityBytes = 0.0;
    /**
     * Thread cap for the profile-cache warm-up that precedes request
     * costing (parallel::parallelFor semantics: 0 = full global pool,
     * 1 = serial). Either way the profiled stats — and therefore the
     * whole report — are bit-identical; this only changes wall-clock.
     */
    std::size_t profileThreads = 0;
};

/** Per-request outcome. */
struct RequestMetrics
{
    std::size_t id = 0;
    double arrivalSeconds = 0.0;
    /** Admission = start of this request's prefill (queue wait ends). */
    double admissionSeconds = 0.0;
    double firstTokenSeconds = 0.0; ///< End of the first decode step.
    double completionSeconds = 0.0;
    std::size_t decodeTokens = 0;
    /** KV bytes this request held resident while in flight. */
    double kvBytes = 0.0;
    /** Energy attributed to this request, with the shared decode
     *  weight stream amortized across its batch mates. */
    double joules = 0.0;

    double latencySeconds() const
    {
        return completionSeconds - arrivalSeconds;
    }

    /** Time spent queued before the engine started the prefill. */
    double queueSeconds() const
    {
        return admissionSeconds - arrivalSeconds;
    }
};

/** Aggregate serving outcome. */
struct ServingReport
{
    std::string accelerator;
    std::string scheduler; ///< Admission policy name.
    /** Per-request metrics, in completion order. */
    std::vector<RequestMetrics> requests;

    double makespanSeconds = 0.0; ///< Last completion time.
    /** Engine-occupied time under continuous batching. */
    double busySeconds = 0.0;
    /** Sum of the isolated single-request run times (no batching). */
    double serialSeconds = 0.0;
    /** Sum of the isolated single-request run energies (no batching). */
    double serialJoules = 0.0;

    double meanLatencySeconds = 0.0;
    double p50LatencySeconds = 0.0;
    double p90LatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;

    /** Queue-time (arrival -> admission) percentiles. */
    double p50QueueSeconds = 0.0;
    double p90QueueSeconds = 0.0;
    double p99QueueSeconds = 0.0;

    double tokensPerSecond = 0.0; ///< Generated tokens / makespan.
    double joulesPerToken = 0.0;
    double meanBatchOccupancy = 0.0; ///< Mean in-flight per iteration.
    std::size_t peakBatch = 0;

    /** Peak in-flight KV residency over the run. */
    double kvPeakBytes = 0.0;
    /** kvPeakBytes / configured capacity (0 when unbounded). */
    double kvUtilization = 0.0;

    /** Throughput gain of batching vs serving the trace serially. */
    double batchingSpeedup() const
    {
        return busySeconds > 0.0 ? serialSeconds / busySeconds : 1.0;
    }
};

/** Continuous-batching serving simulator over one accelerator. */
class ServingSimulator
{
  public:
    explicit ServingSimulator(const Accelerator &accel,
                              ServingOptions opts = {});

    /** Simulate @p trace to completion. */
    ServingReport simulate(const std::vector<model::Request> &trace) const;

  private:
    const Accelerator *accel_;
    ServingOptions opts_;
};

} // namespace mcbp::engine
