/**
 * @file
 * Multi-request serving simulator with continuous batching.
 *
 * Takes a request trace (model::Request: arrival time + per-request
 * prompt/decode lengths) and an engine::Accelerator, and schedules the
 * requests the way an LLM serving engine does: requests join the batch
 * as they arrive (up to maxBatch), prefill runs when a request is
 * admitted, and every scheduler iteration advances all in-flight
 * requests by one decode token, retiring finished ones immediately
 * (continuous batching, as in Orca/vLLM).
 *
 * The simulator splits into two layers:
 *  - this file costs each request from a batch-1 run of the wrapped
 *    Accelerator and aggregates the report;
 *  - event_core.hpp plays the costed trace through a discrete-event
 *    loop, delegating admission order to a pluggable Scheduler
 *    (scheduler.hpp) and KV accounting to the selected KvPolicy
 *    (kv_block_manager.hpp).
 *
 * The cost model is built from the per-phase PhaseMetrics the unified
 * run() interface already produces for a batch-1 run of each request:
 *   - prefill costs the request's own prefill cycles;
 *   - a decode iteration re-composes the linear segment's overlap at
 *     the batch's size: max(shared weight stream, summed per-request
 *     linear work) — the weight fetch/decode is shared by everyone
 *     decoding that step (the amortization Fig 20's B=128 GPU point
 *     exploits), while GEMM compute scales with the batch — plus the
 *     summed per-token attention/SFU cycles. Energy is split the same
 *     way, so batching lowers J/token as it lowers cycles.
 * This makes batched total busy time provably <= the serial sum of the
 * individual runs, with equality at maxBatch=1.
 *
 * Serving is memory-bounded when a KV capacity is configured
 * (kvCapacityBytes > 0; any value <= 0 means unbounded — the unified
 * sentinel). Under the default `reserve` policy each request reserves
 * kvBytesPerToken x (prompt + decode) bytes at admission and holds
 * them until completion. Under `paged`, KV is allocated in blocks of
 * kvBlockTokens tokens as requests actually grow, admission charges
 * only current occupancy, and KV-pressure preempts the youngest
 * running request for recompute — its restart prefill (prompt +
 * generated tokens) is re-priced through the accelerator's prefill
 * path. Either way peak residency (kvPeakBytes) never exceeds the
 * budget; the report's preemption/recompute counters and queue-time
 * percentiles expose what the bound costs. Requests that generate no
 * tokens (decodeLen == 0) retain no KV and are never charged for any.
 *
 * Requests for different models never share a batch. Under the default
 * strict-FIFO policy a different-model request at the queue head pauses
 * admission until the current batch drains (bounded wait — skipping it
 * would starve that model under continuous same-model arrivals); the
 * skip-ahead policy makes the opposite trade.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "accel/plan_cache.hpp"
#include "engine/accelerator.hpp"
#include "engine/event_core.hpp"
#include "engine/kv_block_manager.hpp"
#include "engine/scheduler.hpp"
#include "model/request.hpp"

namespace mcbp::engine {

/** Retry/SLO knobs of fault-tolerant serving (only consulted when
 *  ServingOptions::faults is enabled). */
struct RetryOptions
{
    /** Fault-kill restarts before a request is dropped. */
    std::size_t maxRetries = 3;
    /** Capped exponential backoff: retry n waits
     *  min(cap, base * 2^(n-1)) simulated seconds after the kill. */
    double backoffBaseSeconds = 0.05;
    double backoffCapSeconds = 1.0;
    /** Per-request completion deadline from arrival (0 = none).
     *  Queued or retrying work past it is dropped; an actively
     *  decoding request runs to completion and merely misses the SLO
     *  (counted against sloAttainment/goodput, not dropped). */
    double deadlineSeconds = 0.0;
};

/** Scheduler knobs. */
struct ServingOptions
{
    /** Maximum requests decoding together (continuous batch size). */
    std::size_t maxBatch = 32;
    /** Admission-order policy (see scheduler.hpp). */
    SchedulerPolicy policy = SchedulerPolicy::Fifo;
    /**
     * KV-cache capacity in bytes the in-flight requests may hold
     * (<= 0 = unbounded; the one sentinel shared with the cluster
     * path's Capabilities::hbmCapacityBytes, whose 0 means unknown).
     * A deployment derives it from the accelerator's
     * Capabilities::hbmCapacityBytes minus the resident weights.
     */
    double kvCapacityBytes = 0.0;
    /** KV admission policy (kv_block_manager.hpp). `reserve` is the
     *  conservative pre-paging rule and the default; `paged` admits
     *  against current occupancy with preempt-and-recompute. */
    KvPolicy kvPolicy = KvPolicy::Reserve;
    /** Tokens per KV block under the paged policy. */
    std::size_t kvBlockTokens = 16;
    /** Paged admission's free-space watermark (see KvOptions). */
    double kvLowWatermark = 0.05;
    /**
     * Aging weight of the shortest-prompt scheduler (see
     * makeScheduler): key cycles credited per cycle waited, bounding
     * long-prompt starvation. 0 restores pure SJF.
     */
    double sjfAgingWeight = 1.0;
    /**
     * Thread cap for the profile-cache warm-up that precedes request
     * costing (parallel::parallelFor semantics: 0 = full global pool,
     * 1 = serial). Either way the profiled stats — and therefore the
     * whole report — are bit-identical; this only changes wall-clock.
     */
    std::size_t profileThreads = 0;
    /**
     * Thread cap for the per-request costing fan-out itself (same
     * semantics). Costing runs through a singleflight PlanCache and
     * joins its results in index order, so the costed trace — and the
     * whole report — is bit-identical at every thread count.
     */
    std::size_t costingThreads = 0;
    /**
     * Decode-iteration stepping of the event core: Auto resolves the
     * MCBP_SERVING_STEP environment variable (default: coalesced).
     * See event_core.hpp for the equivalence contract.
     */
    StepMode stepMode = StepMode::Auto;
    /**
     * Fault injection (sim/fault_model.hpp). Defaults off; a disabled
     * spec skips every fault branch and the report is bit-identical
     * to a build without the fault layer. The timeline is built over
     * the accelerator's kvShards fault domains and stream-separated
     * from trace synthesis (kFaultStream), so enabling faults never
     * perturbs the costed trace.
     */
    sim::FaultSpec faults{};
    /** Retry/backoff/deadline knobs of the fault layer. */
    RetryOptions retry{};
    /**
     * Degraded-topology accelerator (the surviving fleet after one
     * chip failure; see health.hpp's degradedSpec to derive its spec
     * string). When set, chip failures put serving in degraded mode
     * at this accelerator's prices instead of a full outage, and one
     * permanent failure is survivable. Not owned; must outlive the
     * simulator. Must run at the same clock as the primary.
     */
    const Accelerator *degradedAccel = nullptr;
};

/** Per-request outcome. */
struct RequestMetrics
{
    std::size_t id = 0;
    double arrivalSeconds = 0.0;
    /** Admission = start of this request's first prefill (queue wait
     *  ends; a preempted request keeps its first admission time). */
    double admissionSeconds = 0.0;
    double firstTokenSeconds = 0.0; ///< End of the first decode step.
    double completionSeconds = 0.0;
    std::size_t decodeTokens = 0;
    /** KV bytes of the request's largest residency while in flight
     *  (block-rounded under the paged policy; 0 when decodeTokens
     *  is 0 — prefill-only requests retain no KV). */
    double kvBytes = 0.0;
    /** Times this request was preempted for recompute (paged). */
    std::size_t preemptions = 0;
    /** Decode tokens this request re-generated after preemptions. */
    std::size_t recomputedTokens = 0;
    /** Fault-kill restarts this request survived before completing. */
    std::size_t retries = 0;
    /** Completed past its configured deadline (SLO miss; the request
     *  still ran to completion — only queued work is dropped). */
    bool sloMiss = false;
    /** Energy attributed to this request, with the shared decode
     *  weight stream amortized across its batch mates (recompute
     *  prefills included). */
    double joules = 0.0;

    double latencySeconds() const
    {
        return completionSeconds - arrivalSeconds;
    }

    /** Time spent queued before the engine started the prefill. */
    double queueSeconds() const
    {
        return admissionSeconds - arrivalSeconds;
    }
};

/** Aggregate serving outcome. */
struct ServingReport
{
    std::string accelerator;
    std::string scheduler; ///< Admission policy name.
    std::string kvPolicy;  ///< KV admission policy name.
    /** Per-request metrics, in completion order. */
    std::vector<RequestMetrics> requests;

    double makespanSeconds = 0.0; ///< Last completion time.
    /** Engine-occupied time under continuous batching. */
    double busySeconds = 0.0;
    /** Sum of the isolated single-request run times (no batching). */
    double serialSeconds = 0.0;
    /** Sum of the isolated single-request run energies (no batching). */
    double serialJoules = 0.0;

    double meanLatencySeconds = 0.0;
    double p50LatencySeconds = 0.0;
    double p90LatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;

    /** Queue-time (arrival -> admission) percentiles. */
    double p50QueueSeconds = 0.0;
    double p90QueueSeconds = 0.0;
    double p99QueueSeconds = 0.0;

    /** Time-to-first-token (arrival -> end of the first decode step;
     *  completion for prefill-only requests) percentiles. */
    double p50FirstTokenSeconds = 0.0;
    double p90FirstTokenSeconds = 0.0;
    double p99FirstTokenSeconds = 0.0;
    /** Mean time per output token after the first (over requests with
     *  >= 2 decode tokens; 0 when none qualify). */
    double meanTpotSeconds = 0.0;

    double tokensPerSecond = 0.0; ///< Generated tokens / makespan.
    double joulesPerToken = 0.0;
    double meanBatchOccupancy = 0.0; ///< Mean in-flight per iteration.
    std::size_t peakBatch = 0;

    /** Peak in-flight KV residency (block-rounded when paged). */
    double kvPeakBytes = 0.0;
    /** kvPeakBytes / configured capacity (0 when unbounded). */
    double kvUtilization = 0.0;

    /** Paged policy: preempt-and-recompute totals over the run. */
    std::size_t preemptions = 0;
    std::size_t recomputedTokens = 0;
    /** Paged policy: mean block fill (needed/allocated bytes) over
     *  decode iterations — 1 - internal fragmentation. 0 for reserve
     *  (no blocks exist). */
    double kvBlockUtilization = 0.0;
    /** Paged policy: peak internal fragmentation in bytes. */
    double kvFragmentationPeakBytes = 0.0;

    /** Decode iterations simulated, and the decode loop passes that
     *  actually executed (fewer under coalesced stepping — the ratio
     *  is the coalescing win; see EventStats::decodeWindows). */
    std::size_t decodeIterations = 0;
    std::size_t decodeWindows = 0;
    /** Scheduling decisions in decision order (request ids): what the
     *  coalescing equivalence contract compares verbatim against the
     *  per-token reference (see EventStats). */
    std::vector<std::size_t> admissionOrder;
    std::vector<std::size_t> preemptionOrder;

    // ---- Availability (fault injection; zero on zero-fault runs) ----
    /** Set when the trace was non-empty but no request completed
     *  (everything rejected or dropped): the latency/TTFT/TPOT
     *  percentiles are zeroed rather than computed over an empty
     *  sample vector. */
    bool noCompletions = false;
    std::size_t faultEvents = 0;    ///< Fault-timeline events hit.
    std::size_t killedInFlight = 0; ///< In-flight kills by chip faults.
    std::size_t retriesScheduled = 0;
    std::size_t droppedRequests = 0;
    std::size_t faultLostTokens = 0; ///< Decode progress lost to kills.
    /** Restart prefills replayed after fault kills. */
    double faultRecomputeSeconds = 0.0;
    /** Time the fleet served on the degraded topology / was down. */
    double degradedSeconds = 0.0;
    double outageSeconds = 0.0;
    /** degradedSeconds / makespan (0 when the makespan is 0). */
    double degradedFraction = 0.0;
    /** SLO-compliant generated tokens / makespan. With no deadline
     *  configured every completed token is compliant, so this equals
     *  tokensPerSecond on zero-fault runs. */
    double goodputTokensPerSecond = 0.0;
    /** Fraction of the trace completed within its deadline (1 when no
     *  deadline is configured and nothing was dropped). */
    double sloAttainment = 0.0;
    /** Retry schedulings and drops in decision order (request ids) —
     *  part of the coalescing equivalence contract. */
    std::vector<std::size_t> retryOrder;
    std::vector<std::size_t> dropOrder;
    /** Per-fault-event blast radius, in timeline order. */
    struct FaultImpact
    {
        std::size_t eventId = 0;
        double seconds = 0.0; ///< Scheduled instant.
        std::string kind;     ///< sim::toString(FaultKind).
        std::size_t chip = 0;
        bool permanent = false;
        std::size_t killed = 0;
        std::size_t dropped = 0;
    };
    std::vector<FaultImpact> faultLog;

    /** Throughput gain of batching vs serving the trace serially. */
    double batchingSpeedup() const
    {
        return busySeconds > 0.0 ? serialSeconds / busySeconds : 1.0;
    }
};

/**
 * Recompute every sample-derived aggregate of @p report from its
 * requests vector (latency/queue/TTFT percentiles, mean TPOT,
 * tokens-per-second, goodput, SLO attainment, joules-per-token) —
 * makespanSeconds must already be set. Sets noCompletions and leaves
 * the fields zeroed when requests is empty. Shared by simulate()'s
 * aggregation and the fleet report merge (engine/fleet.hpp), so a
 * merged fleet report's percentiles follow exactly the single-engine
 * definition.
 */
void finalizeServingAggregates(ServingReport &report,
                               std::size_t traceSize);

/** Continuous-batching serving simulator over one accelerator. */
class ServingSimulator
{
  public:
    explicit ServingSimulator(const Accelerator &accel,
                              ServingOptions opts = {});

    /**
     * Simulate @p trace to completion. An empty trace yields a
     * well-defined zeroed report (names set, every metric 0) rather
     * than an error — callers filtering traces need no special case.
     */
    ServingReport simulate(const std::vector<model::Request> &trace) const;

    /** The costing half of simulate(): every request priced from a
     *  batch-1 run, plus the serial-baseline totals. */
    struct CostedTrace
    {
        std::vector<CostedRequest> costs; ///< Trace order.
        double clockGhz = 0.0;
        /** Sum of the isolated single-request run times/energies. */
        double serialSeconds = 0.0;
        double serialJoules = 0.0;
    };

    /**
     * Cost @p trace without simulating it: warm the profile cache
     * (distinct shapes only), then price every request through the
     * plan cache on up to ServingOptions::costingThreads threads. The
     * result is bit-identical at every thread count (singleflight
     * computes each distinct shape once; the join is in index order).
     * Exposed so benches can time and verify costing in isolation;
     * simulate() is exactly costTrace() + the event loop + aggregation.
     */
    CostedTrace costTrace(const std::vector<model::Request> &trace) const;

    /**
     * The folded-cost cache the costing loop and the paged recompute
     * re-pricer share. Owned per simulator (keyed by accelerator
     * identity, so sharing wider would also be sound); exposed for
     * tests and cache-effectiveness reporting.
     */
    std::shared_ptr<accel::PlanCache> planCache() const
    {
        return planCache_;
    }

  private:
    KvOptions kvOptions() const;

    const Accelerator *accel_;
    ServingOptions opts_;
    /** name + configSummary: every knob that changes pricing, the
     *  plan-cache key prefix. */
    std::string planIdentity_;
    /** Same, for the degraded accelerator (empty when none): both
     *  topologies share planCache_ under distinct key prefixes. */
    std::string degradedIdentity_;
    std::shared_ptr<accel::PlanCache> planCache_;
};

} // namespace mcbp::engine
