#include "engine/registry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "engine/adapters.hpp"
#include "engine/cluster.hpp"
#include "engine/fleet.hpp"
#include "engine/pipeline.hpp"

namespace mcbp::engine {

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Parsed `name[:key=value,...]` spec. */
struct ParsedSpec
{
    std::string name;
    std::map<std::string, std::string> options;
};

ParsedSpec
parseSpec(const std::string &spec)
{
    ParsedSpec p;
    const std::size_t colon = spec.find(':');
    p.name = toLower(spec.substr(0, colon));
    fatalIf(p.name.empty(), "empty accelerator spec");
    if (colon == std::string::npos)
        return p;
    std::string rest = spec.substr(colon + 1);
    std::size_t pos = 0;
    while (pos < rest.size()) {
        const std::size_t comma = rest.find(',', pos);
        const std::string kv =
            rest.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        const std::size_t eq = kv.find('=');
        fatalIf(eq == std::string::npos || eq == 0,
                "malformed option '" + kv + "' in spec '" + spec + "'");
        p.options[toLower(kv.substr(0, eq))] = kv.substr(eq + 1);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return p;
}

double
toDouble(const std::string &key, const std::string &value)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        fatalIf(used != value.size(), "trailing characters");
        return v;
    } catch (const std::exception &) {
        fatal("bad numeric value '" + value + "' for option '" + key +
              "'");
    }
}

bool
toBool(const std::string &key, const std::string &value)
{
    const std::string v = toLower(value); // grammar is case-insensitive.
    if (v == "0" || v == "off" || v == "false")
        return false;
    if (v == "1" || v == "on" || v == "true")
        return true;
    fatal("bad boolean value '" + value + "' for option '" + key + "'");
}

std::size_t
toCount(const std::string &key, const std::string &value)
{
    const double v = toDouble(key, value);
    if (v < 0.0 || v != std::floor(v) || v > 1e18)
        fatal("option '" + key + "' needs a non-negative integer, got '" +
              value + "'");
    return static_cast<std::size_t>(v);
}

/** Topology keys every design accepts (consumed before dispatch). */
const std::vector<std::string> &
topologyKeys()
{
    static const std::vector<std::string> keys = {
        "tp",      "tp2",    "pp",   "mb",       "dp",      "route",
        "linkgbs", "linkpj", "hops", "linkgbs2", "linkpj2", "hops2"};
    return keys;
}

/**
 * Consume recognized keys; whatever remains is a user error. ALL
 * leftover keys are reported in one message, together with the keys
 * this design does accept (its own plus the topology keys), so a
 * multi-typo spec is fixed in one round trip.
 */
void
rejectUnknown(const ParsedSpec &p, std::vector<std::string> accepted)
{
    if (p.options.empty())
        return;
    for (const std::string &key : topologyKeys())
        accepted.push_back(key);
    std::sort(accepted.begin(), accepted.end());

    std::string unknown;
    for (const auto &kv : p.options)
        unknown += (unknown.empty() ? "'" : ", '") + kv.first + "'";
    std::string known;
    for (const std::string &key : accepted)
        known += (known.empty() ? "" : ", ") + key;
    fatal("unknown option" + std::string(p.options.size() > 1 ? "s " : " ") +
          unknown + " for accelerator '" + p.name +
          "'; accepted keys: " + known);
}

Capabilities
baselineCaps(bool gemm, bool attn, bool weight, bool kv, bool decode,
             bool bit)
{
    Capabilities c;
    c.gemmOptimized = gemm;
    c.attentionOptimized = attn;
    c.weightTrafficOptimized = weight;
    c.kvTrafficOptimized = kv;
    c.decodeOptimized = decode;
    c.bitLevel = bit;
    return c;
}

/**
 * One SOTA baseline design: the single source of truth for its spec
 * name, display name, trait derivation (and therefore which options
 * apply), and capability flags. knownSpecs(), spec lookup and option
 * validation all derive from this table, so adding a design is one
 * entry here.
 *
 * Capability flags follow paper Table 1 (Sanger and FACT reduce
 * attention compute but not formal KV-cache traffic there; the 'low'
 * entries for Energon/SpAtten map to yes).
 */
struct BaselineDef
{
    const char *spec;
    const char *display;
    /** Exactly one of these is set (none for the dense reference). */
    accel::BaselineTraits (*fromAttention)(const accel::AttentionStats &);
    accel::BaselineTraits (*fromWeights)(const accel::WeightStats &);
    Capabilities caps;
};

const std::vector<BaselineDef> &
baselineDefs()
{
    static const std::vector<BaselineDef> defs = {
        {"systolic", "Systolic", nullptr, nullptr,
         baselineCaps(false, false, false, false, false, false)},
        {"sanger", "Sanger", accel::makeSanger, nullptr,
         baselineCaps(false, true, false, false, false, false)},
        {"spatten", "Spatten", accel::makeSpatten, nullptr,
         baselineCaps(true, true, false, true, true, false)},
        {"fact", "FACT", accel::makeFact, nullptr,
         baselineCaps(true, true, true, false, false, false)},
        {"sofa", "SOFA", accel::makeSofa, nullptr,
         baselineCaps(false, true, false, true, false, false)},
        {"energon", "Energon", accel::makeEnergon, nullptr,
         baselineCaps(false, true, false, true, false, false)},
        {"bitwave", "Bitwave", nullptr, accel::makeBitwave,
         baselineCaps(true, false, true, false, true, true)},
        {"fusekna", "FuseKNA", nullptr, accel::makeFuseKna,
         baselineCaps(true, false, true, false, true, true)},
        {"cambricon-c", "Cambricon-C", nullptr, accel::makeCambriconC,
         baselineCaps(true, false, true, false, true, false)},
    };
    return defs;
}

const BaselineDef *
findBaseline(std::string name)
{
    if (name == "cambricon") // alias
        name = "cambricon-c";
    for (const BaselineDef &d : baselineDefs())
        if (name == d.spec)
            return &d;
    return nullptr;
}

} // namespace

Registry::Registry(sim::McbpConfig hw)
    : hw_(hw), profiles_(accel::makeProfileCache())
{
}

std::unique_ptr<Accelerator>
Registry::make(const std::string &spec) const
{
    ParsedSpec p = parseSpec(spec);

    // Topology options apply to every design: `tp=N` shards the chip
    // N-way (tensor parallel) behind a ClusterAccelerator, `tp2=M`
    // tiers M such groups over the boundary fabric (hierarchical
    // collectives — a nested cluster), `pp=N` splits the layers across
    // N stages behind a PipelineAccelerator over the cluster(s) (stage
    // partitioning divides layer segments, so the three compose),
    // `mb=` micro-batches the pipeline's prefill, `dp=N` replicates
    // the whole group N ways behind a FleetAccelerator with `route=`
    // replica selection, and the link knobs refine the fabrics: tier 1
    // (`linkgbs`/`linkpj`/`hops`) is the intra-group all-reduce ring,
    // tier 2 (`linkgbs2`/`linkpj2`/`hops2`) the boundary fabric the
    // outer tensor tier and the pipeline's stage handoffs share —
    // each requires the fabric it refines to exist.
    ClusterOptions cluster;
    bool clustered = false;
    if (auto it = p.options.find("tp"); it != p.options.end()) {
        clustered = true;
        cluster.tensorParallel = toCount("tp", it->second);
        p.options.erase(it);
        fatalIf(cluster.tensorParallel == 0,
                "tp must be >= 1 in spec '" + spec + "'");
    }
    ClusterOptions outerCluster;
    bool tiered = false;
    if (auto it = p.options.find("tp2"); it != p.options.end()) {
        // An outer tier needs inner tp >= 2 groups to join; anything
        // else would be a silent no-op or an ambiguous flat degree.
        fatalIf(!clustered || cluster.tensorParallel <= 1,
                "option 'tp2" +
                    std::string(clustered
                                    ? "' has no effect at tp=1 in spec '"
                                    : "' requires tp= in spec '") +
                    spec + "'");
        outerCluster.tensorParallel = toCount("tp2", it->second);
        p.options.erase(it);
        fatalIf(outerCluster.tensorParallel == 0,
                "tp2 must be >= 1 in spec '" + spec + "'");
        tiered = outerCluster.tensorParallel > 1;
    }
    PipelineOptions pipe;
    bool pipelined = false;
    if (auto it = p.options.find("pp"); it != p.options.end()) {
        pipelined = true;
        pipe.pipelineParallel = toCount("pp", it->second);
        p.options.erase(it);
        fatalIf(pipe.pipelineParallel == 0,
                "pp must be >= 1 in spec '" + spec + "'");
    }
    if (auto it = p.options.find("mb"); it != p.options.end()) {
        // Micro-batching exists only inside a stage pipeline; at
        // pp<=1 the knob would be a silent no-op, so reject it by
        // presence (like the link knobs below).
        fatalIf(!pipelined || pipe.pipelineParallel <= 1,
                "option 'mb" +
                    std::string(pipelined
                                    ? "' has no effect at pp=1 in spec '"
                                    : "' requires pp= in spec '") +
                    spec + "'");
        pipe.microBatches = toCount("mb", it->second);
        p.options.erase(it);
        fatalIf(pipe.microBatches == 0,
                "mb must be >= 1 in spec '" + spec + "'");
    }
    // dp=: data-parallel replica fleet above the serving engine
    // (engine/fleet.hpp); route= picks the replica-selection policy
    // and would be a silent no-op with a single replica.
    FleetOptions fleetOpts;
    bool dataParallel = false;
    if (auto it = p.options.find("dp"); it != p.options.end()) {
        dataParallel = true;
        fleetOpts.dataParallel = toCount("dp", it->second);
        p.options.erase(it);
        fatalIf(fleetOpts.dataParallel == 0,
                "dp must be >= 1 in spec '" + spec + "'");
    }
    if (auto it = p.options.find("route"); it != p.options.end()) {
        fatalIf(!dataParallel || fleetOpts.dataParallel <= 1,
                "option 'route" +
                    std::string(dataParallel
                                    ? "' has no effect at dp=1 in spec '"
                                    : "' requires dp= in spec '") +
                    spec + "'");
        fleetOpts.policy = replicaPolicyFromString(toLower(it->second));
        p.options.erase(it);
    }
    const bool has_fabric =
        (clustered && cluster.tensorParallel > 1) ||
        (pipelined && pipe.pipelineParallel > 1) || tiered;
    // The tier-2 (boundary) fabric exists whenever the topology
    // crosses group boundaries: an outer tensor tier or stage
    // handoffs between pipeline stages.
    const bool has_tier2 =
        tiered || (pipelined && pipe.pipelineParallel > 1);
    if (has_fabric) {
        auto takeLink = [&p](const char *key, double fallback,
                             double min) {
            auto it = p.options.find(key);
            if (it == p.options.end())
                return fallback;
            const double v = toDouble(key, it->second);
            fatalIf(v < min, "option '" + std::string(key) +
                                 "' must be " +
                                 (min > 0.0 ? "positive"
                                            : "non-negative"));
            p.options.erase(it);
            return v;
        };
        // Only the bandwidth is a divisor; zero link energy or hop
        // latency are meaningful ideal-fabric points. Tier 1 is the
        // intra-group all-reduce ring; the boundary fabric (outer
        // tensor tier + pp= stage handoffs) inherits the same link
        // technology unless the *2 knobs override it, so specs
        // without them price exactly as before.
        sim::InterconnectConfig link;
        link.linkGBs = takeLink("linkgbs", link.linkGBs, 1e-12);
        link.pJPerBit = takeLink("linkpj", link.pJPerBit, 0.0);
        link.hopCycles = takeLink("hops", link.hopCycles, 0.0);
        cluster.interconnect = link;
        sim::InterconnectConfig link2 = link;
        if (has_tier2) {
            link2.linkGBs = takeLink("linkgbs2", link2.linkGBs, 1e-12);
            link2.pJPerBit = takeLink("linkpj2", link2.pJPerBit, 0.0);
            link2.hopCycles = takeLink("hops2", link2.hopCycles, 0.0);
        }
        outerCluster.interconnect = link2;
        pipe.interconnect = link2;
    } else {
        // Without a multi-chip fabric, link overrides would be silent
        // no-ops (tp=1/pp=1 never touch it); reject them by presence.
        for (const char *key : {"linkgbs", "linkpj", "hops"})
            fatalIf(p.options.count(key) != 0,
                    "option '" + std::string(key) +
                        (clustered || pipelined
                             ? "' has no effect at tp=1/pp=1 in spec '"
                             : "' requires tp= or pp= in spec '") +
                        spec + "'");
    }
    if (!has_tier2)
        for (const char *key : {"linkgbs2", "linkpj2", "hops2"})
            fatalIf(p.options.count(key) != 0,
                    "option '" + std::string(key) +
                        "' requires a boundary fabric (tp2 >= 2 or "
                        "pp >= 2) in spec '" +
                        spec + "'");
    auto finish = [&](std::unique_ptr<Accelerator> chip)
        -> std::unique_ptr<Accelerator> {
        if (clustered)
            chip = std::make_unique<ClusterAccelerator>(std::move(chip),
                                                        cluster);
        if (tiered)
            chip = std::make_unique<ClusterAccelerator>(std::move(chip),
                                                        outerCluster);
        if (pipelined)
            chip = std::make_unique<PipelineAccelerator>(std::move(chip),
                                                         pipe);
        if (dataParallel)
            chip = std::make_unique<FleetAccelerator>(std::move(chip),
                                                      fleetOpts);
        return chip;
    };

    auto takeDouble = [&p](const char *key, double fallback) {
        auto it = p.options.find(key);
        if (it == p.options.end())
            return fallback;
        const double v = toDouble(key, it->second);
        p.options.erase(it);
        return v;
    };
    auto takeBool = [&p](const char *key, bool fallback) {
        auto it = p.options.find(key);
        if (it == p.options.end())
            return fallback;
        const bool v = toBool(key, it->second);
        p.options.erase(it);
        return v;
    };
    auto takeCount = [&p](const char *key, std::size_t fallback) {
        auto it = p.options.find(key);
        if (it == p.options.end())
            return fallback;
        const std::size_t v = toCount(key, it->second);
        p.options.erase(it);
        return v;
    };

    if (p.name == "mcbp" || p.name == "mcbp-standard" ||
        p.name == "mcbp-s" || p.name == "mcbp-aggressive" ||
        p.name == "mcbp-a" || p.name == "mcbp-baseline") {
        // Start from the canonical factory presets so the registry can
        // never drift from makeMcbp{Standard,Aggressive,Baseline}().
        accel::McbpOptions o =
            (p.name == "mcbp-aggressive" || p.name == "mcbp-a"
                 ? accel::makeMcbpAggressive()
             : p.name == "mcbp-baseline" ? accel::makeMcbpBaseline()
                                         : accel::makeMcbpStandard())
                .options();
        o.alpha = takeDouble("alpha", o.alpha);
        o.seed = takeCount("seed", static_cast<std::size_t>(o.seed));
        o.processors = takeCount("procs", o.processors);
        o.enableBrcr = takeBool("brcr", o.enableBrcr);
        o.enableBstc = takeBool("bstc", o.enableBstc);
        o.enableBgpp = takeBool("bgpp", o.enableBgpp);
        rejectUnknown(p, {"alpha", "seed", "procs", "brcr", "bstc",
                          "bgpp"});
        return finish(std::make_unique<McbpAdapter>(
            accel::McbpAccelerator(hw_, o, profiles_)));
    }

    if (p.name == "a100" || p.name == "a100-sw") {
        accel::GpuSoftwareOptions sw;
        if (p.name == "a100-sw")
            sw.brcr = sw.bstc = sw.bgpp = true;
        sw.brcr = takeBool("brcr", sw.brcr);
        sw.bstc = takeBool("bstc", sw.bstc);
        sw.bgpp = takeBool("bgpp", sw.bgpp);
        const double alpha = takeDouble("alpha", 0.6);
        const std::uint64_t seed = takeCount("seed", 1);
        rejectUnknown(p, {"brcr", "bstc", "bgpp", "alpha", "seed"});
        return finish(std::make_unique<GpuAdapter>(
            accel::GpuParams{}, sw, profiles_, alpha, seed));
    }

    if (const BaselineDef *def = findBaseline(p.name)) {
        // Only accept the options this design can react to; an alpha
        // sweep on a weight-profile design would otherwise be a silent
        // no-op.
        double alpha = 0.6;
        std::uint64_t seed = 1;
        std::vector<std::string> accepted;
        if (def->fromAttention != nullptr) {
            alpha = takeDouble("alpha", alpha);
            accepted.push_back("alpha");
        }
        if (def->fromAttention != nullptr ||
            def->fromWeights != nullptr) {
            seed = takeCount("seed", 1);
            accepted.push_back("seed");
        }
        rejectUnknown(p, std::move(accepted));

        BaselineAdapter::TraitsMaker maker;
        BaselineAdapter::ProfileNeeds needs;
        needs.alpha = alpha;
        needs.seed = seed;
        if (def->fromAttention != nullptr) {
            needs.attention = true;
            maker = [alpha, seed, make = def->fromAttention](
                        accel::ProfileCache &cache,
                        const model::LlmConfig &m,
                        const model::Workload &t) {
                return make(cache.attention(m, t, alpha, seed));
            };
        } else if (def->fromWeights != nullptr) {
            needs.weights = true;
            maker = [seed, make = def->fromWeights](
                        accel::ProfileCache &cache,
                        const model::LlmConfig &m,
                        const model::Workload &) {
                return make(cache.weights(m, quant::BitWidth::Int8, seed));
            };
        } else {
            maker = [](accel::ProfileCache &, const model::LlmConfig &,
                       const model::Workload &) {
                return accel::makeSystolic();
            };
        }
        return finish(std::make_unique<BaselineAdapter>(
            def->display, maker, def->caps, profiles_, hw_, needs));
    }

    fatal("unknown accelerator spec '" + spec + "'");
}

std::vector<std::unique_ptr<Accelerator>>
Registry::fleet(const std::vector<std::string> &specs) const
{
    std::vector<std::unique_ptr<Accelerator>> out;
    out.reserve(specs.size());
    for (const std::string &spec : specs)
        out.push_back(make(spec));
    return out;
}

void
Registry::warmFleet(
    const std::vector<std::unique_ptr<Accelerator>> &fleet,
    const std::vector<model::LlmConfig> &models,
    const std::vector<model::Workload> &tasks, std::size_t threads) const
{
    std::vector<accel::ProfileRequest> requests;
    for (const auto &accel : fleet)
        for (const model::LlmConfig &m : models)
            for (const model::Workload &t : tasks)
                accel->profileRequests(m, t, requests);
    // warm() deduplicates by final cache key, so overlapping needs
    // across the fleet (shared seeds/alphas) fan out exactly once.
    profiles_->warm(requests, threads);
}

void
Registry::warmFleet(
    const std::vector<std::unique_ptr<Accelerator>> &fleet,
    const std::vector<std::string> &models,
    const std::vector<std::string> &tasks, std::size_t threads) const
{
    std::vector<model::LlmConfig> ms;
    for (const std::string &name : models)
        ms.push_back(model::findModel(name));
    std::vector<model::Workload> ts;
    for (const std::string &name : tasks)
        ts.push_back(model::findTask(name));
    warmFleet(fleet, ms, ts, threads);
}

std::vector<std::string>
Registry::knownSpecs()
{
    std::vector<std::string> specs = {"mcbp", "mcbp-standard",
                                      "mcbp-aggressive",
                                      "mcbp-baseline"};
    for (const BaselineDef &d : baselineDefs())
        specs.push_back(d.spec);
    specs.push_back("a100");
    specs.push_back("a100-sw");
    return specs;
}

} // namespace mcbp::engine
