/**
 * @file
 * Discrete-event core of the serving engine.
 *
 * ServingSimulator costs every request from a batch-1 run of the
 * underlying Accelerator (a CostedRequest); this core then plays the
 * trace forward in cycle time: it pulls arrivals into the waiting
 * queue, asks the pluggable Scheduler which waiting request to admit
 * (charging its prefill and its KV-cache allocation), and advances
 * the active batch one decode token per iteration, re-composing the
 * shared weight stream against the batch's summed linear work exactly
 * the way the wrapped model composed it at batch 1.
 *
 * Memory-boundedness lives here, under one of two KV policies
 * (kv_block_manager.hpp):
 *
 *  - Reserve: every request reserves the KV bytes of its full
 *    (prompt + decode) residency at admission and releases them at
 *    completion, so an admitted request can always run to completion
 *    and no preemption is ever needed (the conservative rule).
 *
 *  - Paged: KV is allocated in blocks as a request actually grows.
 *    Admission charges only the current residency, each decode
 *    iteration appends one token per active request (allocating a
 *    block when the last one fills), and when the pool cannot hold
 *    the batch's growth the youngest running request is preempted:
 *    its blocks are freed, its recompute prefill (prompt + generated
 *    tokens) is re-priced through the caller-supplied PrefillPricer,
 *    and it rejoins the head of the waiting queue.
 *
 * Either way, in-flight KV never exceeds the configured capacity
 * (<= 0 = unbounded, the unified sentinel), and requests whose
 * decodeLen is 0 hold no KV at all.
 *
 * Stepping: between discrete events — the next arrival, the soonest
 * completion in the batch (min remainingTokens), the next paged block
 * boundary, a scheduler deferral — the active set and the per-iteration
 * cost are constant, so the core advances k identical iterations in
 * closed form (StepMode::Coalesced, the default) instead of looping
 * per token. Scheduling decisions (admissions, preemption order,
 * completion order) are exactly those of the per-token reference;
 * aggregate cycle/energy totals agree to ~1e-9 relative (the closed
 * forms re-associate floating-point sums). MCBP_SERVING_STEP=per-token
 * selects the reference path at runtime.
 *
 * Fault tolerance (FaultInputs; sim/fault_model.hpp): fault events
 * are first-class window boundaries — a coalesced window never
 * crosses the next fault instant, a pending retry's backoff expiry,
 * or a waiting request's deadline, so the per-token and coalesced
 * paths make identical kill/retry/drop decisions. A chip failure
 * kills every in-flight request (KV freed, decode progress lost,
 * restart prefill re-armed at the full prompt) and schedules a
 * retry with capped exponential backoff in simulated time; past the
 * retry budget or the per-request deadline the request drops. A
 * failed chip puts the fleet in degraded mode (requests decode at
 * their degraded-topology rates) when the caller supplied them, in
 * outage (no decode, no admission until repair) otherwise; a second
 * permanent failure is fatal to the fleet and drops all remaining
 * work. Deadlines apply to queued work only: an actively decoding
 * request runs to completion and merely misses the SLO. With
 * FaultInputs disabled every fault branch is skipped and the run is
 * bit-identical to the pre-fault engine.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "engine/kv_block_manager.hpp"
#include "engine/scheduler.hpp"
#include "model/llm_config.hpp"
#include "model/request.hpp"
#include "sim/fault_model.hpp"

namespace mcbp::engine {

/** Decode-iteration stepping strategy of the event core. */
enum class StepMode
{
    Auto,      ///< Resolve from MCBP_SERVING_STEP (default: coalesced).
    Coalesced, ///< Closed-form multi-iteration advance between events.
    PerToken,  ///< One loop pass per decode token (reference path).
};

/** Canonical name, e.g. "coalesced", "per-token" ("auto" for Auto). */
std::string toString(StepMode mode);

/**
 * StepMode selected by the MCBP_SERVING_STEP environment variable:
 * "per-token" or "coalesced"; unset or empty means Coalesced.
 * fatal() on any other value.
 */
StepMode stepModeFromEnv();

/** Precomputed cost model of one request (from a batch-1 run). */
struct CostedRequest
{
    const model::Request *req = nullptr;
    /** The request's model, resolved once at costing so the paged
     *  re-pricer never re-scans the model zoo per preemption. */
    const model::LlmConfig *model = nullptr;
    /**
     * The request's workload with decodeLen forced to 0: the recompute
     * prefill shape, precomputed at costing so a preemption re-prices
     * only the prefill it will actually replay (never the decode phase
     * it throws away) and pays no findTask/withLengths rebuild.
     */
    model::Workload recomputeShape;
    double arrivalCycles = 0.0;
    /** Prefill cycles the next admission pays (re-priced to the
     *  recompute length after a preemption). */
    double prefillCycles = 0.0;
    /** Per-token weight-stream cycles (shared across a decode batch). */
    double weightCyclesPerToken = 0.0;
    /** Per-token linear work (GEMM + activations; per-request, but it
     *  overlaps the shared weight stream). */
    double linearCyclesPerToken = 0.0;
    /** Per-token attention/SFU cycles (per-request, not overlapped). */
    double otherCyclesPerToken = 0.0;
    /** Fixed per-iteration latency floor (cluster all-reduce hops),
     *  shared by the batch like the weight stream (max, not sum). */
    double fixedCyclesPerToken = 0.0;
    /** Composition rule of the wrapped model's linear segment
     *  (see PhaseMetrics::memorySerialized). */
    bool memorySerialized = false;
    /**
     * Pipeline stages of the serving accelerator
     * (Capabilities::pipelineStages; 1 = unpipelined). Distinct
     * requests' decode traversals overlap across stages, so a batch's
     * summed linear/attention work drains at the bottleneck stage —
     * sum/stages — but never faster than one full traversal (the max
     * over the batch). stages=1 reduces to the plain sum.
     */
    std::size_t stages = 1;
    /** Energy split mirroring the cycle split, so the scheduler can
     *  amortize the shared weight stream in joules too. */
    double weightJoulesPerToken = 0.0;
    double otherJoulesPerToken = 0.0;
    double joules = 0.0; ///< Accumulated as the request is served.
    /** KV-cache bytes of this request's full footprint (its largest
     *  residency; policy-quantized — see kvFootprintBytes). Reserve
     *  admission charges exactly this; paged admission grows to at
     *  most this. 0 for decodeLen == 0 requests. */
    double kvBytes = 0.0;
    /** Per-token KV bytes of the request's model. */
    double kvBytesPerToken = 0.0;
    /** Prompt tokens resident after (re)prefill. */
    std::size_t promptTokens = 0;
    std::size_t remainingTokens = 0;
    bool firstTokenSeen = false;
    double firstTokenCycles = 0.0;
    /** Written by the event core as the request is served. */
    bool admitted = false;
    double admissionCycles = 0.0; ///< First admission (queue wait ends).
    double completionCycles = 0.0;
    /** Paged-policy state: current block-rounded residency. */
    double kvAllocatedBytes = 0.0;
    double kvNeededBytes = 0.0;
    std::size_t preemptions = 0;
    std::size_t recomputedTokens = 0;

    // ---- Fault-tolerant serving state (inert on zero-fault runs) ----
    /**
     * Degraded-topology twins of the decode rates above, priced on
     * the surviving-fleet accelerator (health.hpp): the iteration
     * cost switches to these while the fleet runs degraded. Set by
     * the serving layer only when a degraded accelerator was
     * supplied (FaultInputs::hasDegraded).
     */
    double weightCyclesPerTokenDeg = 0.0;
    double linearCyclesPerTokenDeg = 0.0;
    double otherCyclesPerTokenDeg = 0.0;
    double fixedCyclesPerTokenDeg = 0.0;
    double weightJoulesPerTokenDeg = 0.0;
    double otherJoulesPerTokenDeg = 0.0;
    bool memorySerializedDeg = false;
    std::size_t stagesDeg = 1;
    /** Degraded twin of prefillCycles (kept fresh by re-pricing). */
    double prefillCyclesDeg = 0.0;
    /** Full-prompt restart prices: a fault kill loses all decode
     *  progress, so the next admission replays the original prefill
     *  (unlike a paged preemption, which re-prices prompt+progress). */
    double basePrefillCycles = 0.0;
    double basePrefillJoules = 0.0;
    double basePrefillCyclesDeg = 0.0;
    double basePrefillJoulesDeg = 0.0;
    /** Prefill energy charged at the next admission. Faulted runs
     *  defer the charge to admission (mode-dependent); zero-fault
     *  runs precharge at costing, bit-identically (the admission is
     *  the first accumulation either way). */
    double pendingPrefillJoules = 0.0;
    double pendingPrefillJoulesDeg = 0.0;
    std::size_t retries = 0;    ///< Fault-kill restarts so far.
    double retryAtCycles = 0.0; ///< Backoff expiry (earliest retry).
    double deadlineCycles = 0.0; ///< Drop-dead clock (0 = none).
    /** The next admission is a post-kill restart: its prefill counts
     *  as fault-attributable recompute. */
    bool restartPending = false;
    bool dropped = false;
};

/**
 * Fault-injection inputs of one run, pre-converted to CYCLES (the
 * serving layer rescales the seconds timeline once the accelerator's
 * clock is known). Default-constructed = faults off: every fault
 * branch in the loop is skipped and the run is bit-identical to the
 * pre-fault engine.
 */
struct FaultInputs
{
    bool enabled = false;
    /** Discrete fault events, sorted ascending by `at` (cycles). */
    std::vector<sim::FaultEvent> timeline;
    /** Fault-kill retries before a request is dropped. */
    std::size_t maxRetries = 3;
    /** Capped exponential backoff: retry n waits
     *  min(cap, base * 2^(n-1)) simulated cycles after the kill. */
    double backoffBaseCycles = 0.0;
    double backoffCapCycles = 0.0;
    /** Per-request completion deadline from arrival (0 = none):
     *  queued or retrying work past it is dropped. */
    double deadlineCycles = 0.0;
    /** Degraded-topology rates are present on every request, so chip
     *  failures degrade the fleet instead of taking it down. */
    bool hasDegraded = false;
};

/** Aggregate outcome of one event-loop run, in cycles. */
struct EventStats
{
    double clockCycles = 0.0;   ///< Final clock (makespan).
    double busyCycles = 0.0;    ///< Engine-occupied cycles.
    double occupancySum = 0.0;  ///< Sum of batch sizes over iterations.
    std::size_t iterations = 0; ///< Decode iterations simulated.
    /**
     * Decode loop passes actually executed: equals iterations under
     * per-token stepping, and the (much smaller) number of coalesced
     * windows otherwise — the coalescing speedup is their ratio.
     */
    std::size_t decodeWindows = 0;
    std::size_t peakBatch = 0;
    double kvPeakBytes = 0.0;   ///< Peak in-flight KV residency.
    /** Paged policy: preempt-and-recompute counters. */
    std::size_t preemptions = 0;
    std::size_t recomputedTokens = 0;
    /** Paged policy: peak internal fragmentation (allocated - needed). */
    double kvFragmentationPeakBytes = 0.0;
    /** Paged policy: sum over decode iterations of needed/allocated
     *  bytes (block fill), and the iterations counted. */
    double kvBlockUtilizationSum = 0.0;
    std::size_t kvBlockUtilizationIters = 0;
    /**
     * Every scheduling decision, as request ids in decision order:
     * admissions (including re-admissions after preemption) and
     * preemption victims. Coalescing contracts to reproduce these
     * sequences exactly, so equivalence tests and the serving-speed
     * gate compare them verbatim against the per-token reference.
     */
    std::vector<std::size_t> admissionOrder;
    std::vector<std::size_t> preemptionOrder;
    /** Requests in completion order (admission/completion cycles set). */
    std::vector<CostedRequest *> completed;

    // ---- Availability (fault injection; all zero on zero-fault runs) --
    std::size_t faultEvents = 0;    ///< Timeline events processed.
    std::size_t killedInFlight = 0; ///< In-flight kills by chip faults.
    std::size_t retriesScheduled = 0;
    std::size_t droppedRequests = 0; ///< Budget/deadline/dead-fleet drops.
    std::size_t faultLostTokens = 0; ///< Decode progress lost to kills.
    /** Restart prefills replayed after fault kills (cycles). */
    double faultRecomputeCycles = 0.0;
    /** Cycles spent with the fleet degraded / fully down. */
    double degradedCycles = 0.0;
    double outageCycles = 0.0;
    /** Retry schedulings and drops, as request ids in decision order
     *  (part of the coalescing equivalence contract, like
     *  admissionOrder/preemptionOrder). */
    std::vector<std::size_t> retryOrder;
    std::vector<std::size_t> dropOrder;
    /** Per-fault-event blast radius. */
    struct FaultImpact
    {
        std::size_t eventId = 0;
        double atCycles = 0.0;
        sim::FaultKind kind = sim::FaultKind::ChipFail;
        std::size_t chip = 0;
        bool permanent = false;
        std::size_t killed = 0;  ///< In-flight requests killed.
        std::size_t dropped = 0; ///< Requests dropped outright.
    };
    std::vector<FaultImpact> faultLog;
};

/** Recompute price of one (re)prefill over @p residentTokens tokens. */
struct PrefillPrice
{
    double cycles = 0.0;
    double joules = 0.0;
};

/**
 * Prices a prefill of @p residentTokens tokens (prompt + recomputed
 * decode progress) for @p request through the accelerator's prefill
 * path. Required by the paged policy; never called under Reserve.
 */
using PrefillPricer =
    std::function<PrefillPrice(const CostedRequest &request,
                               std::size_t residentTokens)>;

/** The event loop: one engine, one scheduler, one KV pool. */
class EventCore
{
  public:
    /**
     * @p step Auto resolves MCBP_SERVING_STEP at construction.
     * @p faults default-constructed disables fault injection.
     * @p degradedRepricer prices a recompute prefill on the degraded
     * topology (required when faults.hasDegraded and the KV policy is
     * paged, so a preemption keeps both prefill prices fresh).
     */
    EventCore(const Scheduler &scheduler, std::size_t maxBatch,
              KvOptions kv, PrefillPricer repricer = nullptr,
              StepMode step = StepMode::Auto, FaultInputs faults = {},
              PrefillPricer degradedRepricer = nullptr);

    /** Play @p requests to completion (or to their drop). */
    EventStats run(std::vector<CostedRequest> &requests) const;

  private:
    const Scheduler *scheduler_;
    std::size_t maxBatch_;
    KvOptions kv_;
    PrefillPricer repricer_;
    StepMode step_;
    FaultInputs faults_;
    PrefillPricer degradedRepricer_;
};

} // namespace mcbp::engine
