/**
 * @file
 * Discrete-event core of the serving engine.
 *
 * ServingSimulator costs every request from a batch-1 run of the
 * underlying Accelerator (a CostedRequest); this core then plays the
 * trace forward in cycle time: it pulls arrivals into the waiting
 * queue, asks the pluggable Scheduler which waiting request to admit
 * (charging its prefill and its KV-cache reservation), and advances
 * the active batch one decode token per iteration, re-composing the
 * shared weight stream against the batch's summed linear work exactly
 * the way the wrapped model composed it at batch 1.
 *
 * Memory-boundedness lives here: every request reserves the KV bytes
 * of its full (prompt + decode) residency at admission and releases
 * them at completion, so in-flight KV can never exceed the configured
 * capacity — requests queue instead (the vLLM-style conservative
 * admission rule; with full reservation no preemption is ever needed,
 * because an admitted request can always run to completion).
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "engine/scheduler.hpp"
#include "model/request.hpp"

namespace mcbp::engine {

/** Precomputed cost model of one request (from a batch-1 run). */
struct CostedRequest
{
    const model::Request *req = nullptr;
    double arrivalCycles = 0.0;
    double prefillCycles = 0.0;
    /** Per-token weight-stream cycles (shared across a decode batch). */
    double weightCyclesPerToken = 0.0;
    /** Per-token linear work (GEMM + activations; per-request, but it
     *  overlaps the shared weight stream). */
    double linearCyclesPerToken = 0.0;
    /** Per-token attention/SFU cycles (per-request, not overlapped). */
    double otherCyclesPerToken = 0.0;
    /** Fixed per-iteration latency floor (cluster all-reduce hops),
     *  shared by the batch like the weight stream (max, not sum). */
    double fixedCyclesPerToken = 0.0;
    /** Composition rule of the wrapped model's linear segment
     *  (see PhaseMetrics::memorySerialized). */
    bool memorySerialized = false;
    /** Energy split mirroring the cycle split, so the scheduler can
     *  amortize the shared weight stream in joules too. */
    double weightJoulesPerToken = 0.0;
    double otherJoulesPerToken = 0.0;
    double joules = 0.0; ///< Accumulated as the request is served.
    /** KV-cache bytes this request holds resident once admitted
     *  (full prompt + decode reservation). */
    double kvBytes = 0.0;
    std::size_t remainingTokens = 0;
    bool firstTokenSeen = false;
    double firstTokenCycles = 0.0;
    /** Written by the event core as the request is served. */
    double admissionCycles = 0.0;
    double completionCycles = 0.0;
};

/** Aggregate outcome of one event-loop run, in cycles. */
struct EventStats
{
    double clockCycles = 0.0;   ///< Final clock (makespan).
    double busyCycles = 0.0;    ///< Engine-occupied cycles.
    double occupancySum = 0.0;  ///< Sum of batch sizes over iterations.
    std::size_t iterations = 0; ///< Decode iterations executed.
    std::size_t peakBatch = 0;
    double kvPeakBytes = 0.0;   ///< Peak in-flight KV residency.
    /** Requests in completion order (admission/completion cycles set). */
    std::vector<CostedRequest *> completed;
};

/** The event loop: one engine, one scheduler, one KV budget. */
class EventCore
{
  public:
    /** @param kvCapacityBytes 0 = unbounded. */
    EventCore(const Scheduler &scheduler, std::size_t maxBatch,
              double kvCapacityBytes);

    /** Play @p requests to completion. */
    EventStats run(std::vector<CostedRequest> &requests) const;

  private:
    const Scheduler *scheduler_;
    std::size_t maxBatch_;
    double kvCapacityBytes_;
};

} // namespace mcbp::engine
