/**
 * @file
 * Discrete-event core of the serving engine.
 *
 * ServingSimulator costs every request from a batch-1 run of the
 * underlying Accelerator (a CostedRequest); this core then plays the
 * trace forward in cycle time: it pulls arrivals into the waiting
 * queue, asks the pluggable Scheduler which waiting request to admit
 * (charging its prefill and its KV-cache allocation), and advances
 * the active batch one decode token per iteration, re-composing the
 * shared weight stream against the batch's summed linear work exactly
 * the way the wrapped model composed it at batch 1.
 *
 * Memory-boundedness lives here, under one of two KV policies
 * (kv_block_manager.hpp):
 *
 *  - Reserve: every request reserves the KV bytes of its full
 *    (prompt + decode) residency at admission and releases them at
 *    completion, so an admitted request can always run to completion
 *    and no preemption is ever needed (the conservative rule).
 *
 *  - Paged: KV is allocated in blocks as a request actually grows.
 *    Admission charges only the current residency, each decode
 *    iteration appends one token per active request (allocating a
 *    block when the last one fills), and when the pool cannot hold
 *    the batch's growth the youngest running request is preempted:
 *    its blocks are freed, its recompute prefill (prompt + generated
 *    tokens) is re-priced through the caller-supplied PrefillPricer,
 *    and it rejoins the head of the waiting queue.
 *
 * Either way, in-flight KV never exceeds the configured capacity
 * (<= 0 = unbounded, the unified sentinel), and requests whose
 * decodeLen is 0 hold no KV at all.
 *
 * Stepping: between discrete events — the next arrival, the soonest
 * completion in the batch (min remainingTokens), the next paged block
 * boundary, a scheduler deferral — the active set and the per-iteration
 * cost are constant, so the core advances k identical iterations in
 * closed form (StepMode::Coalesced, the default) instead of looping
 * per token. Scheduling decisions (admissions, preemption order,
 * completion order) are exactly those of the per-token reference;
 * aggregate cycle/energy totals agree to ~1e-9 relative (the closed
 * forms re-associate floating-point sums). MCBP_SERVING_STEP=per-token
 * selects the reference path at runtime.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "engine/kv_block_manager.hpp"
#include "engine/scheduler.hpp"
#include "model/llm_config.hpp"
#include "model/request.hpp"

namespace mcbp::engine {

/** Decode-iteration stepping strategy of the event core. */
enum class StepMode
{
    Auto,      ///< Resolve from MCBP_SERVING_STEP (default: coalesced).
    Coalesced, ///< Closed-form multi-iteration advance between events.
    PerToken,  ///< One loop pass per decode token (reference path).
};

/** Canonical name, e.g. "coalesced", "per-token" ("auto" for Auto). */
std::string toString(StepMode mode);

/**
 * StepMode selected by the MCBP_SERVING_STEP environment variable:
 * "per-token" or "coalesced"; unset or empty means Coalesced.
 * fatal() on any other value.
 */
StepMode stepModeFromEnv();

/** Precomputed cost model of one request (from a batch-1 run). */
struct CostedRequest
{
    const model::Request *req = nullptr;
    /** The request's model, resolved once at costing so the paged
     *  re-pricer never re-scans the model zoo per preemption. */
    const model::LlmConfig *model = nullptr;
    /**
     * The request's workload with decodeLen forced to 0: the recompute
     * prefill shape, precomputed at costing so a preemption re-prices
     * only the prefill it will actually replay (never the decode phase
     * it throws away) and pays no findTask/withLengths rebuild.
     */
    model::Workload recomputeShape;
    double arrivalCycles = 0.0;
    /** Prefill cycles the next admission pays (re-priced to the
     *  recompute length after a preemption). */
    double prefillCycles = 0.0;
    /** Per-token weight-stream cycles (shared across a decode batch). */
    double weightCyclesPerToken = 0.0;
    /** Per-token linear work (GEMM + activations; per-request, but it
     *  overlaps the shared weight stream). */
    double linearCyclesPerToken = 0.0;
    /** Per-token attention/SFU cycles (per-request, not overlapped). */
    double otherCyclesPerToken = 0.0;
    /** Fixed per-iteration latency floor (cluster all-reduce hops),
     *  shared by the batch like the weight stream (max, not sum). */
    double fixedCyclesPerToken = 0.0;
    /** Composition rule of the wrapped model's linear segment
     *  (see PhaseMetrics::memorySerialized). */
    bool memorySerialized = false;
    /**
     * Pipeline stages of the serving accelerator
     * (Capabilities::pipelineStages; 1 = unpipelined). Distinct
     * requests' decode traversals overlap across stages, so a batch's
     * summed linear/attention work drains at the bottleneck stage —
     * sum/stages — but never faster than one full traversal (the max
     * over the batch). stages=1 reduces to the plain sum.
     */
    std::size_t stages = 1;
    /** Energy split mirroring the cycle split, so the scheduler can
     *  amortize the shared weight stream in joules too. */
    double weightJoulesPerToken = 0.0;
    double otherJoulesPerToken = 0.0;
    double joules = 0.0; ///< Accumulated as the request is served.
    /** KV-cache bytes of this request's full footprint (its largest
     *  residency; policy-quantized — see kvFootprintBytes). Reserve
     *  admission charges exactly this; paged admission grows to at
     *  most this. 0 for decodeLen == 0 requests. */
    double kvBytes = 0.0;
    /** Per-token KV bytes of the request's model. */
    double kvBytesPerToken = 0.0;
    /** Prompt tokens resident after (re)prefill. */
    std::size_t promptTokens = 0;
    std::size_t remainingTokens = 0;
    bool firstTokenSeen = false;
    double firstTokenCycles = 0.0;
    /** Written by the event core as the request is served. */
    bool admitted = false;
    double admissionCycles = 0.0; ///< First admission (queue wait ends).
    double completionCycles = 0.0;
    /** Paged-policy state: current block-rounded residency. */
    double kvAllocatedBytes = 0.0;
    double kvNeededBytes = 0.0;
    std::size_t preemptions = 0;
    std::size_t recomputedTokens = 0;
};

/** Aggregate outcome of one event-loop run, in cycles. */
struct EventStats
{
    double clockCycles = 0.0;   ///< Final clock (makespan).
    double busyCycles = 0.0;    ///< Engine-occupied cycles.
    double occupancySum = 0.0;  ///< Sum of batch sizes over iterations.
    std::size_t iterations = 0; ///< Decode iterations simulated.
    /**
     * Decode loop passes actually executed: equals iterations under
     * per-token stepping, and the (much smaller) number of coalesced
     * windows otherwise — the coalescing speedup is their ratio.
     */
    std::size_t decodeWindows = 0;
    std::size_t peakBatch = 0;
    double kvPeakBytes = 0.0;   ///< Peak in-flight KV residency.
    /** Paged policy: preempt-and-recompute counters. */
    std::size_t preemptions = 0;
    std::size_t recomputedTokens = 0;
    /** Paged policy: peak internal fragmentation (allocated - needed). */
    double kvFragmentationPeakBytes = 0.0;
    /** Paged policy: sum over decode iterations of needed/allocated
     *  bytes (block fill), and the iterations counted. */
    double kvBlockUtilizationSum = 0.0;
    std::size_t kvBlockUtilizationIters = 0;
    /**
     * Every scheduling decision, as request ids in decision order:
     * admissions (including re-admissions after preemption) and
     * preemption victims. Coalescing contracts to reproduce these
     * sequences exactly, so equivalence tests and the serving-speed
     * gate compare them verbatim against the per-token reference.
     */
    std::vector<std::size_t> admissionOrder;
    std::vector<std::size_t> preemptionOrder;
    /** Requests in completion order (admission/completion cycles set). */
    std::vector<CostedRequest *> completed;
};

/** Recompute price of one (re)prefill over @p residentTokens tokens. */
struct PrefillPrice
{
    double cycles = 0.0;
    double joules = 0.0;
};

/**
 * Prices a prefill of @p residentTokens tokens (prompt + recomputed
 * decode progress) for @p request through the accelerator's prefill
 * path. Required by the paged policy; never called under Reserve.
 */
using PrefillPricer =
    std::function<PrefillPrice(const CostedRequest &request,
                               std::size_t residentTokens)>;

/** The event loop: one engine, one scheduler, one KV pool. */
class EventCore
{
  public:
    /** @p step Auto resolves MCBP_SERVING_STEP at construction. */
    EventCore(const Scheduler &scheduler, std::size_t maxBatch,
              KvOptions kv, PrefillPricer repricer = nullptr,
              StepMode step = StepMode::Auto);

    /** Play @p requests to completion. */
    EventStats run(std::vector<CostedRequest> &requests) const;

  private:
    const Scheduler *scheduler_;
    std::size_t maxBatch_;
    KvOptions kv_;
    PrefillPricer repricer_;
    StepMode step_;
};

} // namespace mcbp::engine
