/**
 * @file
 * Health-aware replanning of a multi-chip topology.
 *
 * When a chip inside a tp=/pp= group fails, the surviving fleet is
 * the same design with the failed axis halved: a tp=4 all-reduce
 * group loses a shard pair and re-forms as tp=2, a pp=4 pipeline
 * re-partitions its layer segments over 2 stages. degradedSpec()
 * performs that rewrite on the registry's spec grammar
 * (`name[:key=value,...]`, registry.hpp) so the degraded accelerator
 * is built through the exact same Registry::make() path — and priced
 * through the same ExecutionPlan/PlanCache machinery — as the healthy
 * one. ServingOptions::degradedAccel consumes the result.
 *
 * Halving (not decrementing) keeps the rewrite always constructible:
 * every divisibility constraint a power-of-two axis satisfied (tp
 * divides heads, layers >= pp) still holds at half the degree, and
 * the halved group is what a real collective re-forms as (the failed
 * chip's pair is excised whole).
 *
 * The rewrite also drops knobs the surviving topology can no longer
 * accept — the registry rejects silent no-ops by presence, so a
 * degraded spec that kept `mb=` at pp=1 or `linkgbs=` with no fabric
 * would refuse to build. A single-chip spec has no degraded form:
 * degradedSpec() returns "" and the caller treats the fleet as
 * non-redundant (a chip failure is an outage or fatal).
 */
#pragma once

#include <string>

namespace mcbp::engine {

/**
 * Spec of the surviving topology after one chip failure: the highest
 * parallel axis (tp2 first — a failed chip excises its whole inner
 * tp= group from the outer ring — then tp, then pp) halved, with
 * knobs the smaller topology cannot accept (axes at 1, `mb=` without
 * a pipeline, link knobs without a fabric, tier-2 link knobs without
 * a boundary fabric) dropped. `dp=` and `route=` pass through
 * verbatim: the replica fleet reroutes around a dead replica rather
 * than shrinking one, so dp= alone is no intra-replica redundancy.
 * Returns "" when @p spec has nothing to fail over to (tp2, tp and
 * pp all absent or 1). fatal() on a malformed spec (same grammar as
 * Registry::make).
 */
std::string degradedSpec(const std::string &spec);

} // namespace mcbp::engine
