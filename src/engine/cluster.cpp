#include "engine/cluster.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.hpp"
#include "engine/pipeline.hpp"

namespace mcbp::engine {

ClusterAccelerator::ClusterAccelerator(std::unique_ptr<Accelerator> chip,
                                       ClusterOptions opts)
    : chip_(std::move(chip)), opts_(opts)
{
    fatalIf(!chip_, "cluster needs a chip accelerator");
    fatalIf(opts_.tensorParallel == 0,
            "tensor-parallel degree must be >= 1");
    // Pipeline-over-cluster IS modeled — stage partitioning divides
    // layer segments, not finished runs — but only in that order:
    // build PipelineAccelerator(Cluster), never Cluster(Pipeline),
    // whose hop floors a 1/N rescale would corrupt.
    fatalIf(dynamic_cast<const PipelineAccelerator *>(chip_.get()) !=
                nullptr,
            "a cluster cannot shard a pipeline; compose the other way "
            "around (pp= stages of tp= clusters)");
    // Nested clusters flatten into one innermost-first tier stack so
    // plan() shards the BASE chip's plan once by the combined degree
    // and prices collectives hierarchically (sim/collective.hpp) —
    // never the inner cluster's already-sharded plan, which would
    // double-count the inner fabric.
    if (const auto *inner =
            dynamic_cast<const ClusterAccelerator *>(chip_.get())) {
        tiers_ = inner->tiers_;
        base_ = inner->base_;
        totalDegree_ = inner->totalDegree_ * opts_.tensorParallel;
    } else {
        base_ = chip_.get();
        totalDegree_ = opts_.tensorParallel;
    }
    if (opts_.tensorParallel > 1)
        tiers_.push_back({opts_.tensorParallel, opts_.interconnect});
}

std::string
ClusterAccelerator::name() const
{
    if (opts_.tensorParallel == 1)
        return chip_->name();
    return chip_->name() + "[tp" + std::to_string(opts_.tensorParallel) +
           "]";
}

Capabilities
ClusterAccelerator::capabilities() const
{
    Capabilities c = chip_->capabilities();
    c.processors *= opts_.tensorParallel;
    c.hbmCapacityBytes *= static_cast<double>(opts_.tensorParallel);
    // Every shard stores 1/N of each token's KV (the head split), so
    // per-shard KV capacity is 1/N of the fleet HBM advertised above;
    // serving's block ledger stays aggregate-exact by symmetry (see
    // kv_block_manager.hpp). Multiplicative so nested tiers compose.
    c.kvShards *= opts_.tensorParallel;
    return c;
}

std::string
ClusterAccelerator::configSummary() const
{
    if (opts_.tensorParallel == 1) // identity: no fabric exists.
        return chip_->configSummary();
    std::ostringstream os;
    os << name() << ": " << opts_.tensorParallel
       << "-way tensor parallel (weights/GEMM split 1/N, attention by "
          "heads), ring all-reduce fabric @ "
       << opts_.interconnect.linkGBs << " GB/s, "
       << opts_.interconnect.pJPerBit << " pJ/bit, "
       << opts_.interconnect.hopCycles << "-cycle hops\n"
       << chip_->configSummary();
    return os.str();
}

/**
 * Rescale one phase to the per-chip shard: weight stream and linear
 * work 1/N (the composed linear segment scales with them), attention
 * and SFU 1/N (partitioned by heads), then charge 2 activation
 * all-reduces per layer per step on the critical path and per chip in
 * energy.
 *
 * @param layerSpan decoder layers the sharded span covers (the whole
 *        stack for phase totals, a segment's count for plan segments)
 *        — each layer pays its own two all-reduces.
 * @param phaseTokens tokens whose activations one all-reduce carries
 *        (prompt x batch for prefill, batch for one decode step),
 *        already divided by the wrapped gang's data-parallel share.
 */
accel::PhaseMetrics
ClusterAccelerator::shardPhase(const accel::PhaseMetrics &phase,
                               const sim::CollectiveTopology &topo,
                               double hidden, double layerSpan,
                               double phaseTokens, double steps,
                               double gangProcessors) const
{
    const double n = static_cast<double>(totalDegree_);

    // Invert the model's own composition to find the non-linear rest.
    // A wrapped model's own fixed per-step floor is excluded: latency
    // does not shrink with more chips.
    const double linear_segment = accel::composedLinearCycles(
        phase.weightStreamCycles, phase.linearWorkCycles,
        phase.memorySerialized);
    const double rest = std::max(
        0.0, phase.cycles - linear_segment - phase.fixedStepCycles);

    // One all-reduce carries the layer's activation vector for the
    // tokens this gang member processes in one step. Activation width
    // is a property of the innermost (intra-group) fabric.
    const double bytes_per_collective =
        phaseTokens * hidden *
        topo.tiers().front().link.bytesPerActivation / gangProcessors;
    const double collectives = 2.0 * layerSpan * steps;
    const sim::InterconnectCost per_collective =
        topo.allReduce(bytes_per_collective);
    const double ic_cycles = per_collective.cycles() * collectives;
    const double ic_pj = per_collective.energyPj * collectives;

    accel::PhaseMetrics out = phase;
    out.cycles = linear_segment / n + rest / n +
                 phase.fixedStepCycles + ic_cycles;
    out.weightStreamCycles = phase.weightStreamCycles / n;
    out.linearWorkCycles = phase.linearWorkCycles / n;
    out.gemmCycles = phase.gemmCycles / n;
    out.weightLoadCycles = phase.weightLoadCycles / n;
    out.kvLoadCycles = phase.kvLoadCycles / n;
    // Breakdown: only the bandwidth share joins otherCycles; the hop
    // latency lives in fixedStepCycles so contributors are not
    // double-counted.
    out.otherCycles = phase.otherCycles / n +
                      per_collective.bandwidthCycles * collectives;
    // The hop-latency share of the collectives is a fixed per-step
    // floor: a serving batch shares each collective, so it must not
    // be multiplied by the batch size when the phase is re-composed.
    out.fixedStepCycles =
        phase.fixedStepCycles + per_collective.latencyCycles * collectives;

    // Traffic and energy are per-chip quantities (RunMetrics::joules
    // multiplies by processors); logical work (denseMacs/executedAdds)
    // stays the cluster total, like the wrapped gang reports it.
    out.traffic.weightBytes = phase.traffic.weightBytes / n;
    out.traffic.kvBytes = phase.traffic.kvBytes / n;
    out.traffic.predictionBytes = phase.traffic.predictionBytes / n;
    out.traffic.actBytes = phase.traffic.actBytes / n;

    out.energy.computePj = phase.energy.computePj / n;
    out.energy.bitReorderPj = phase.energy.bitReorderPj / n;
    out.energy.camPj = phase.energy.camPj / n;
    out.energy.codecPj = phase.energy.codecPj / n;
    out.energy.bgppPj = phase.energy.bgppPj / n;
    out.energy.sramPj = phase.energy.sramPj / n;
    out.energy.dramPj = phase.energy.dramPj / n;
    out.energy.sfuPj = phase.energy.sfuPj / n;
    out.energy.interconnectPj = phase.energy.interconnectPj / n + ic_pj;
    return out;
}

accel::ExecutionPlan
ClusterAccelerator::plan(const model::LlmConfig &model,
                         const model::Workload &task) const
{
    fatalIf(model.heads % totalDegree_ != 0,
            "tensor-parallel degree " + std::to_string(totalDegree_) +
                " must divide " + model.name + "'s " +
                std::to_string(model.heads) + " attention heads");
    if (opts_.tensorParallel == 1)
        return chip_->plan(model, task); // identity: bit-for-bit.

    // Shard the BASE chip's plan by the combined degree of the
    // flattened tier stack — for an unnested cluster base_ is the
    // wrapped chip and this is the single-tier path, bit-identical to
    // the flat ring (CollectiveTopology delegates).
    accel::ExecutionPlan inner = base_->plan(model, task);
    const sim::CollectiveTopology topo(tiers_, inner.clockGhz);

    const double gang = static_cast<double>(inner.processors);
    const double hidden = static_cast<double>(model.hidden);
    const double prefill_tokens =
        static_cast<double>(task.promptLen * task.batch);
    const double decode_tokens = static_cast<double>(task.batch);
    const double steps = static_cast<double>(task.decodeLen);

    accel::ExecutionPlan out = inner;
    out.accelerator = name();
    out.processors = inner.processors * totalDegree_;
    out.prefill =
        shardPhase(inner.prefill, topo, hidden,
                   static_cast<double>(model.layers), prefill_tokens,
                   1.0, gang);
    if (task.decodeLen > 0)
        out.decode = shardPhase(inner.decode, topo, hidden,
                                static_cast<double>(model.layers),
                                decode_tokens, steps, gang);
    // Shard each layer segment the same way, each span paying the
    // collectives of its own layers; a single full-stack segment
    // shards to exactly the totals above.
    for (accel::PlanSegment &seg : out.segments) {
        const double span = static_cast<double>(seg.layerCount);
        seg.prefill = shardPhase(seg.prefill, topo, hidden, span,
                                 prefill_tokens, 1.0, gang);
        if (task.decodeLen > 0)
            seg.decode = shardPhase(seg.decode, topo, hidden, span,
                                    decode_tokens, steps, gang);
    }
    return out;
}

} // namespace mcbp::engine
