/**
 * @file
 * Adapters bridging the concrete accelerator models in src/accel/ onto
 * the unified engine::Accelerator interface.
 *
 * The SOTA baselines need measured workload profiles to instantiate
 * their traits (e.g. Spatten's pruning fractions come from the attention
 * profile), so BaselineAdapter resolves its traits lazily per (model,
 * task) through a shared accel::ProfileCache — the same cache the MCBP
 * and GPU adapters draw from, so one fleet profiles each workload once.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "accel/baselines.hpp"
#include "accel/gpu_model.hpp"
#include "accel/mcbp_accelerator.hpp"
#include "accel/profile_cache.hpp"
#include "engine/accelerator.hpp"

namespace mcbp::engine {

/** engine::Accelerator view of accel::McbpAccelerator. */
class McbpAdapter : public Accelerator
{
  public:
    explicit McbpAdapter(accel::McbpAccelerator impl);

    std::string name() const override { return impl_.name(); }
    Capabilities capabilities() const override;
    std::string configSummary() const override;
    accel::ExecutionPlan plan(const model::LlmConfig &model,
                              const model::Workload &task) const override;
    void profileRequests(
        const model::LlmConfig &model, const model::Workload &task,
        std::vector<accel::ProfileRequest> &out) const override;
    std::shared_ptr<accel::ProfileCache> profileCache() const override
    {
        return impl_.profileCache();
    }

    /** The wrapped model (for parity tests and profile inspection). */
    const accel::McbpAccelerator &underlying() const { return impl_; }

  private:
    accel::McbpAccelerator impl_;
};

/**
 * Which profiles a BaselineAdapter's traits maker demands per
 * (model, task) — declared alongside the (opaque) maker so
 * profileRequests() can announce them for parallel cache warm-up
 * without invoking the maker.
 */
struct BaselineProfileNeeds
{
    bool weights = false;
    bool attention = false;
    double alpha = 0.6;
    std::uint64_t seed = 1;
    quant::BitWidth bitWidth = quant::BitWidth::Int8;
};

/**
 * engine::Accelerator view of one SOTA baseline. Traits are derived
 * from the measured profiles of each (model, task) through @p maker.
 */
class BaselineAdapter : public Accelerator
{
  public:
    /** Builds traits from the profiles of one (model, task). */
    using TraitsMaker = std::function<accel::BaselineTraits(
        accel::ProfileCache &, const model::LlmConfig &,
        const model::Workload &)>;

    using ProfileNeeds = BaselineProfileNeeds;

    BaselineAdapter(std::string name, TraitsMaker maker, Capabilities caps,
                    std::shared_ptr<accel::ProfileCache> profiles,
                    sim::McbpConfig hw = sim::defaultConfig(),
                    ProfileNeeds needs = {});

    std::string name() const override { return name_; }
    Capabilities capabilities() const override { return caps_; }
    std::string configSummary() const override;
    accel::ExecutionPlan plan(const model::LlmConfig &model,
                              const model::Workload &task) const override;
    void profileRequests(
        const model::LlmConfig &model, const model::Workload &task,
        std::vector<accel::ProfileRequest> &out) const override;
    std::shared_ptr<accel::ProfileCache> profileCache() const override
    {
        return profiles_;
    }

    /** The traits this adapter resolves for one (model, task). */
    accel::BaselineTraits traitsFor(const model::LlmConfig &model,
                                    const model::Workload &task) const;

  private:
    std::string name_;
    TraitsMaker maker_;
    Capabilities caps_;
    std::shared_ptr<accel::ProfileCache> profiles_;
    sim::McbpConfig hw_;
    ProfileNeeds needs_;
};

/** engine::Accelerator view of the A100 roofline model. */
class GpuAdapter : public Accelerator
{
  public:
    GpuAdapter(accel::GpuParams params, accel::GpuSoftwareOptions sw,
               std::shared_ptr<accel::ProfileCache> profiles,
               double alpha = 0.6, std::uint64_t seed = 1);

    std::string name() const override { return impl_.name(); }
    Capabilities capabilities() const override;
    std::string configSummary() const override;
    accel::ExecutionPlan plan(const model::LlmConfig &model,
                              const model::Workload &task) const override;
    void profileRequests(
        const model::LlmConfig &model, const model::Workload &task,
        std::vector<accel::ProfileRequest> &out) const override;
    std::shared_ptr<accel::ProfileCache> profileCache() const override
    {
        return profiles_;
    }

    const accel::GpuA100Model &underlying() const { return impl_; }

  private:
    accel::GpuA100Model impl_;
    std::shared_ptr<accel::ProfileCache> profiles_;
    double alpha_;
    std::uint64_t seed_;
};

} // namespace mcbp::engine
