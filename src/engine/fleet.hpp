/**
 * @file
 * Data-parallel replica fleet: the dp= axis above the event core.
 *
 * A FleetAccelerator owns ONE replica prototype — a full pp= x tp=
 * serving group — and a data-parallel degree N. Replicas are identical
 * stateless cost models, so the fleet holds the prototype once; what
 * makes them distinct at serving time is the traffic and the faults
 * routed to each. The FleetRouter is that serving path: it splits an
 * arrival trace across the replicas with a pluggable selection policy
 * (least-loaded by outstanding KV bytes, or round-robin), runs each
 * replica's sub-trace through its own ServingSimulator/event core, and
 * merges the per-replica reports into one fleet ServingReport whose
 * sample-derived aggregates follow the single-engine definitions
 * (finalizeServingAggregates).
 *
 * Failover: the fleet builds ONE fault timeline over dp x kvShards
 * fault domains and slices it per replica (chip events land on the
 * owning replica; fleet-wide link/straggler windows reach every
 * replica). A replica with a fatal permanent failure drops its queued
 * and future work — the router re-dispatches those drops to surviving
 * replicas at the fault time plus the retry backoff, bounded by the
 * per-request deadline and a fleet-size reroute budget, so the
 * existing retry/backoff/deadline vocabulary covers replica failover
 * too.
 *
 * dp=1 is the identity: name/capabilities/configSummary forward
 * verbatim and the router delegates wholesale to a single-replica
 * ServingSimulator, so a dp=1 fleet report is bit-identical to the
 * flat path (tests/test_fleet.cpp asserts this down to the report).
 * Because routing, slicing and merging are all deterministic functions
 * of the trace and the timeline, the coalesced-vs-per-token identity
 * contract survives the fleet: both step modes see identical
 * sub-traces and merge identically.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "engine/accelerator.hpp"
#include "engine/serving.hpp"
#include "model/request.hpp"

namespace mcbp::engine {

/** Replica-selection policy of the fleet router. */
enum class ReplicaPolicy
{
    /** Route to the replica with the least outstanding KV bytes
     *  (estimated from the costed trace; ties to the lowest index). */
    LeastLoaded,
    /** Route request k to replica k mod dp (skipping dead replicas). */
    RoundRobin,
};

/** Canonical name: "least-loaded" or "round-robin". */
std::string toString(ReplicaPolicy policy);
/** Parse "least"/"least-loaded" or "rr"/"round-robin" (fatal else). */
ReplicaPolicy replicaPolicyFromString(const std::string &name);

/** Fleet shape. */
struct FleetOptions
{
    /** Replica count (each a full pp= x tp= group). */
    std::size_t dataParallel = 1;
    ReplicaPolicy policy = ReplicaPolicy::LeastLoaded;
};

/** N identical serving replicas presented as one Accelerator. */
class FleetAccelerator : public Accelerator
{
  public:
    FleetAccelerator(std::unique_ptr<Accelerator> replica,
                     FleetOptions opts);

    std::string name() const override;
    Capabilities capabilities() const override;
    std::string configSummary() const override;
    /** A request runs on exactly one replica, so the fleet's plan for
     *  one inference IS the replica's plan (capacity, not speed,
     *  multiplies with dp). */
    accel::ExecutionPlan plan(const model::LlmConfig &model,
                              const model::Workload &task) const override
    {
        return replica_->plan(model, task);
    }
    void
    profileRequests(const model::LlmConfig &model,
                    const model::Workload &task,
                    std::vector<accel::ProfileRequest> &out) const override
    {
        replica_->profileRequests(model, task, out);
    }
    std::shared_ptr<accel::ProfileCache> profileCache() const override
    {
        return replica_->profileCache();
    }

    const Accelerator &replica() const { return *replica_; }
    const FleetOptions &options() const { return opts_; }

  private:
    std::unique_ptr<Accelerator> replica_;
    FleetOptions opts_;
};

/** Everything the fleet serving path produces (the merged report plus
 *  the per-replica views tests and benches inspect). */
struct FleetOutcome
{
    ServingReport fleet;
    /** Per-replica reports, replica order (dp entries; dp=1 has 1). */
    std::vector<ServingReport> replicas;
    /** Final replica index of each trace entry, trace order. */
    std::vector<std::size_t> assignment;
    /** Failover re-dispatches performed (0 on healthy runs). */
    std::size_t reroutes = 0;
};

/**
 * The dp >= 1 serving path: route, simulate per replica, fail over,
 * merge. ServingSimulator::simulate() delegates here for any
 * FleetAccelerator; the router is public so tests and benches can see
 * per-replica reports and the assignment.
 *
 * ServingOptions semantics at dp > 1: kvCapacityBytes is the FLEET
 * budget, split evenly across replicas (matching the fixed-chip-count
 * comparisons of fig20(g)); maxBatch is per replica engine (each
 * replica is an independent continuous-batching engine); faults
 * describe the whole fleet over dp x kvShards domains; degradedAccel
 * may be the fleet's degraded twin (its replica is unwrapped for the
 * per-replica simulators). At dp=1 every knob keeps its flat meaning.
 */
class FleetRouter
{
  public:
    FleetRouter(const FleetAccelerator &fleet, ServingOptions opts);

    FleetOutcome simulate(const std::vector<model::Request> &trace) const;

  private:
    const FleetAccelerator *fleet_;
    ServingOptions opts_;
};

} // namespace mcbp::engine
