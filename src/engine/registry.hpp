/**
 * @file
 * Factory for the evaluation fleet: builds engine::Accelerator instances
 * from string specs, replacing the hand-rolled per-bench fleets.
 *
 * Spec grammar: `name[:key=value[,key=value...]]`, case-insensitive.
 *
 * Names:
 *   mcbp | mcbp-standard     paper standard point (alpha 0.6, all on)
 *   mcbp-aggressive          alpha 0.5 (1% accuracy loss point)
 *   mcbp-baseline            ablation baseline (all techniques off)
 *   systolic | sanger | spatten | fact | sofa | energon |
 *   bitwave | fusekna | cambricon-c         the SOTA baselines
 *   a100                     GPU roofline; a100-sw = all algorithms on
 *
 * Options (silently ignored keys are an error; every unknown key of a
 * spec is collected into ONE message alongside the design's accepted
 * keys):
 *   procs=N                  ganged processors (MCBP only)
 *   alpha=X                  BGPP alpha_r / profiling alpha
 *   seed=N                   profiling seed
 *   brcr|bstc|bgpp=0|1       technique toggles (MCBP and A100)
 *   tp=N                     shard across N tensor-parallel chips
 *                            (any design; builds a ClusterAccelerator)
 *   pp=N                     split the decoder layers across N
 *                            pipeline stages (any design; builds a
 *                            PipelineAccelerator over the tp= cluster
 *                            when both are given; N must divide the
 *                            model's layer count)
 *   mb=N                     prefill micro-batches per batch
 *                            (requires pp >= 2)
 *   tp2=M                    tier M tp= groups over the boundary
 *                            fabric (hierarchical all-reduce; nested
 *                            ClusterAccelerator; requires tp >= 2)
 *   dp=N                     replicate the whole pp= x tp= group N
 *                            ways behind a FleetAccelerator (each
 *                            request served by one replica; dp=1 is
 *                            bit-identical to no dp= at serving time)
 *   route=least|rr           fleet replica-selection policy:
 *                            least-loaded by outstanding KV bytes
 *                            (default) or round-robin (requires
 *                            dp >= 2)
 *   linkgbs|linkpj|hops=X    tier-1 fabric knobs: link GB/s, pJ/bit,
 *                            per-hop cycles of the intra-group
 *                            all-reduce ring (require tp >= 2 or
 *                            pp >= 2)
 *   linkgbs2|linkpj2|hops2=X tier-2 (boundary) fabric knobs, shared
 *                            by the tp2= outer ring and the pp= stage
 *                            handoffs; default to the tier-1 values
 *                            (require tp2 >= 2 or pp >= 2)
 *
 * Examples: "mcbp:procs=148", "mcbp:bgpp=0", "a100:bstc=1,bgpp=1",
 *           "mcbp:procs=148,tp=4", "a100:tp=8,linkgbs=600",
 *           "mcbp-s:pp=4,tp=2,mb=8,linkgbs=600",
 *           "mcbp-s:tp=4,tp2=2,linkgbs2=100,hops2=400",
 *           "mcbp-s:dp=4,pp=4,tp=8,route=least".
 *
 * All accelerators built by one Registry share one thread-safe
 * accel::ProfileCache, so a fleet profiles each workload exactly once.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/profile_cache.hpp"
#include "engine/accelerator.hpp"
#include "sim/mcbp_config.hpp"

namespace mcbp::engine {

/** Builds accelerators from string specs over a shared profile cache. */
class Registry
{
  public:
    explicit Registry(sim::McbpConfig hw = sim::defaultConfig());

    /** Build one accelerator; fatal() on unknown names/keys. */
    std::unique_ptr<Accelerator> make(const std::string &spec) const;

    /** Build several accelerators (one fleet, shared profiles). */
    std::vector<std::unique_ptr<Accelerator>>
    fleet(const std::vector<std::string> &specs) const;

    /**
     * Precompute every profile the fleet would demand for the given
     * (model, task) cross product, fanning the distinct cache keys out
     * over the thread pool (@p threads as in parallel::parallelFor:
     * 0 = full pool, 1 = serial). Cold-start construction then
     * profiles on all cores, and the stats are bit-identical to
     * demand-filling serially (see ProfileCache::warm).
     */
    void warmFleet(const std::vector<std::unique_ptr<Accelerator>> &fleet,
                   const std::vector<model::LlmConfig> &models,
                   const std::vector<model::Workload> &tasks,
                   std::size_t threads = 0) const;

    /** Name-based convenience overload (zoo model/task names). */
    void warmFleet(const std::vector<std::unique_ptr<Accelerator>> &fleet,
                   const std::vector<std::string> &models,
                   const std::vector<std::string> &tasks,
                   std::size_t threads = 0) const;

    /** Canonical spec names this registry understands. */
    static std::vector<std::string> knownSpecs();

    /** The profile cache shared by everything this registry builds. */
    const std::shared_ptr<accel::ProfileCache> &profileCache() const
    {
        return profiles_;
    }

  private:
    sim::McbpConfig hw_;
    std::shared_ptr<accel::ProfileCache> profiles_;
};

} // namespace mcbp::engine
