/**
 * @file
 * The unified accelerator abstraction of the serving engine.
 *
 * Every hardware model the evaluation compares — MCBP in its
 * standard/aggressive/ablation configurations, the nine SOTA baselines
 * and the A100 roofline — implements this one interface, so benches,
 * the serving simulator and future schedulers can treat a heterogeneous
 * fleet uniformly. Adapters (see adapters.hpp) bridge the concrete
 * classes in src/accel/ onto it without changing their numbers: an
 * adapter's run() is bit-identical to a direct call on the wrapped
 * class (tests/test_engine.cpp asserts this).
 *
 * The costing contract is two-level (execution_plan.hpp): plan() is
 * the single virtual costing source, returning the phase totals plus
 * the per-layer-segment decomposition; run() is a non-virtual
 * compatibility shim that folds the plan (a verbatim copy of the
 * totals, hence bit-identical to the pre-plan API). Composed
 * topologies build on the decomposition: ClusterAccelerator rescales
 * the plan's phases to tensor-parallel shards, PipelineAccelerator
 * splits its layer segments across pp= stages.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/execution_plan.hpp"
#include "accel/profile_cache.hpp"
#include "accel/report.hpp"
#include "model/llm_config.hpp"
#include "model/workload.hpp"

namespace mcbp::engine {

/**
 * What a design can exploit (paper Table 1's capability columns) plus
 * the operating point, for introspection by schedulers and benches.
 */
struct Capabilities
{
    bool gemmOptimized = false;      ///< Linear-path redundancy.
    bool attentionOptimized = false; ///< Attention-path redundancy.
    bool weightTrafficOptimized = false; ///< Weight compression/pruning.
    bool kvTrafficOptimized = false; ///< KV-cache traffic reduction.
    bool decodeOptimized = false;    ///< Mechanisms survive decoding.
    bool bitLevel = false;           ///< Bit-level (vs value-level).
    std::size_t processors = 1;      ///< Chips ganged per run.
    double clockGhz = 1.0;
    /** Aggregate HBM capacity in bytes across all chips (0 = unknown).
     *  Serving admission derives its KV budget from this. */
    double hbmCapacityBytes = 0.0;
    /**
     * Shards the KV cache splits across: the tensor-parallel head
     * split (ClusterAccelerator, 1/tp of every token's KV per shard)
     * times the pipeline layer split (PipelineAccelerator, each stage
     * stores only its own layers' KV — 1/pp per stage when pp divides
     * the layer count, which the pipeline requires). Per-shard KV
     * capacity is hbmCapacityBytes/kvShards, and both splits keep the
     * shards symmetric, so the aggregate block ledger the serving
     * engine keeps is exactly kvShards symmetric per-shard copies and
     * paged serving charges the right per-stage pool.
     */
    std::size_t kvShards = 1;
    /**
     * Pipeline stages the layer stack is partitioned across
     * (PipelineAccelerator sets its pp degree; 1 for an unpipelined
     * design). The serving engine's decode costing overlaps distinct
     * requests' traversals across this many stages.
     */
    std::size_t pipelineStages = 1;
    /**
     * Data-parallel replicas behind this accelerator (FleetAccelerator
     * sets its dp degree; 1 for a single serving group). Each replica
     * is a full pp= x tp= group; requests are routed to exactly one, so
     * a replica's plan() numbers are unchanged by the fleet — only the
     * aggregate capacity fields above multiply.
     */
    std::size_t replicas = 1;
};

/** Abstract accelerator: one (model, task) inference run at a time. */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** Display name, e.g. "MCBP(S)", "Spatten", "A100". */
    virtual std::string name() const = 0;

    /** Capability/operating-point introspection. */
    virtual Capabilities capabilities() const = 0;

    /** Human-readable configuration summary (one or more lines). */
    virtual std::string configSummary() const = 0;

    /**
     * Plan one (model, task) inference: the single costing source.
     * Returns the phase totals plus the per-layer-segment cost
     * decomposition (cycles, energy, traffic, weight-stream vs.
     * compute split) that composed topologies partition.
     */
    virtual accel::ExecutionPlan
    plan(const model::LlmConfig &model,
         const model::Workload &task) const = 0;

    /**
     * Simulate one (model, task) inference run. Compatibility shim:
     * folds plan() (a verbatim copy of its phase totals), so run()
     * is bit-identical to the pre-plan API by construction —
     * external callers migrating to plan() lose nothing.
     */
    accel::RunMetrics
    run(const model::LlmConfig &model, const model::Workload &task) const
    {
        return plan(model, task).fold();
    }

    /**
     * Append the measured profiles a run(model, task) would demand to
     * @p out, so callers (Registry::warmFleet, ServingSimulator) can
     * precompute them in parallel via ProfileCache::warm() before the
     * serial simulation path needs them. Designs that profile nothing
     * (the dense systolic reference) append nothing.
     */
    virtual void
    profileRequests(const model::LlmConfig &model,
                    const model::Workload &task,
                    std::vector<accel::ProfileRequest> &out) const
    {
        (void)model;
        (void)task;
        (void)out;
    }

    /**
     * The profile cache run() draws from, or nullptr for designs that
     * do not profile. Every accelerator built by one Registry returns
     * the same cache.
     */
    virtual std::shared_ptr<accel::ProfileCache> profileCache() const
    {
        return nullptr;
    }
};

} // namespace mcbp::engine
