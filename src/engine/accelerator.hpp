/**
 * @file
 * The unified accelerator abstraction of the serving engine.
 *
 * Every hardware model the evaluation compares — MCBP in its
 * standard/aggressive/ablation configurations, the nine SOTA baselines
 * and the A100 roofline — implements this one interface, so benches,
 * the serving simulator and future schedulers can treat a heterogeneous
 * fleet uniformly. Adapters (see adapters.hpp) bridge the concrete
 * classes in src/accel/ onto it without changing their numbers: an
 * adapter's run() is bit-identical to a direct call on the wrapped
 * class (tests/test_engine.cpp asserts this).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/profile_cache.hpp"
#include "accel/report.hpp"
#include "model/llm_config.hpp"
#include "model/workload.hpp"

namespace mcbp::engine {

/**
 * What a design can exploit (paper Table 1's capability columns) plus
 * the operating point, for introspection by schedulers and benches.
 */
struct Capabilities
{
    bool gemmOptimized = false;      ///< Linear-path redundancy.
    bool attentionOptimized = false; ///< Attention-path redundancy.
    bool weightTrafficOptimized = false; ///< Weight compression/pruning.
    bool kvTrafficOptimized = false; ///< KV-cache traffic reduction.
    bool decodeOptimized = false;    ///< Mechanisms survive decoding.
    bool bitLevel = false;           ///< Bit-level (vs value-level).
    std::size_t processors = 1;      ///< Chips ganged per run.
    double clockGhz = 1.0;
    /** Aggregate HBM capacity in bytes across all chips (0 = unknown).
     *  Serving admission derives its KV budget from this. */
    double hbmCapacityBytes = 0.0;
    /**
     * Tensor-parallel shards the KV cache splits across
     * (ClusterAccelerator sets its tp degree; 1 for a bare chip).
     * Each shard holds 1/kvShards of every token's KV — the head
     * split — so per-shard KV capacity is hbmCapacityBytes/kvShards
     * and the aggregate block ledger the serving engine keeps is
     * exactly kvShards symmetric per-shard copies.
     */
    std::size_t kvShards = 1;
};

/** Abstract accelerator: one (model, task) inference run at a time. */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** Display name, e.g. "MCBP(S)", "Spatten", "A100". */
    virtual std::string name() const = 0;

    /** Capability/operating-point introspection. */
    virtual Capabilities capabilities() const = 0;

    /** Human-readable configuration summary (one or more lines). */
    virtual std::string configSummary() const = 0;

    /** Simulate one (model, task) inference run. */
    virtual accel::RunMetrics run(const model::LlmConfig &model,
                                  const model::Workload &task) const = 0;

    /**
     * Append the measured profiles a run(model, task) would demand to
     * @p out, so callers (Registry::warmFleet, ServingSimulator) can
     * precompute them in parallel via ProfileCache::warm() before the
     * serial simulation path needs them. Designs that profile nothing
     * (the dense systolic reference) append nothing.
     */
    virtual void
    profileRequests(const model::LlmConfig &model,
                    const model::Workload &task,
                    std::vector<accel::ProfileRequest> &out) const
    {
        (void)model;
        (void)task;
    }

    /**
     * The profile cache run() draws from, or nullptr for designs that
     * do not profile. Every accelerator built by one Registry returns
     * the same cache.
     */
    virtual std::shared_ptr<accel::ProfileCache> profileCache() const
    {
        return nullptr;
    }
};

} // namespace mcbp::engine
