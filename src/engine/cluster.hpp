/**
 * @file
 * Multi-chip cluster accelerator: shards one model across N chips via
 * tensor parallelism behind the same engine::Accelerator interface.
 *
 * A ClusterAccelerator wraps any single-chip Accelerator and rescales
 * its per-phase PhaseMetrics to the Megatron-style TP decomposition:
 * the weight stream and the linear (GEMM) work split 1/N — each chip
 * stores and streams 1/N of every weight matrix — and the attention /
 * SFU work partitions by heads (N must divide the model's head count).
 * What parallelism does not remove, it adds: two activation
 * all-reduces per decoder layer (after the attention output projection
 * and after the FFN down projection), priced per collective by
 * sim::Interconnect and charged on the critical path in cycles and per
 * chip in energy (EnergyBreakdown::interconnectPj) — so a tp=N run is
 * faster than one chip but never cheaper than the interconnect floor.
 *
 * tp=1 is the identity: plan() returns the wrapped chip's plan
 * verbatim (and run() its fold), so a tp=1 cluster is bit-identical
 * to the bare adapter (tests/test_cluster.cpp asserts this down to
 * the serving report). Sharding rescales the plan's phase totals AND
 * each layer segment, so a sharded plan still slices exactly — which
 * is how a PipelineAccelerator wraps a cluster (pp= over tp=); the
 * reverse nesting is rejected in the constructor.
 *
 * Clusters NEST: wrapping a cluster in a cluster builds a hierarchical
 * tensor group (registry: tp= inner tier, tp2= outer tier), priced by
 * sim::CollectiveTopology — the constructor flattens the chain into
 * one innermost-first tier stack and plan() shards the BASE chip's
 * plan by the combined degree, so the inner fast fabric carries the
 * full activation vector and the outer boundary fabric only the
 * 1/degree shard its reduce-scatter leaves behind. A single tier
 * prices through the same topology, which delegates verbatim to the
 * flat ring — so existing tp= specs are bit-identical.
 *
 * KV capacity scales with the fleet: capabilities() advertises N x
 * the chip's HBM and multiplies Capabilities::kvShards by N — each shard
 * stores 1/N of every token's KV (the head split), so per-shard KV
 * capacity is 1/N of the fleet HBM and the serving engine's aggregate
 * block accounting is exact by shard symmetry (kv_block_manager.hpp).
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>

#include "engine/accelerator.hpp"
#include "sim/collective.hpp"
#include "sim/interconnect.hpp"

namespace mcbp::engine {

/** Cluster shape and fabric parameters. */
struct ClusterOptions
{
    /** Chips the model is sharded across (must divide head count). */
    std::size_t tensorParallel = 1;
    sim::InterconnectConfig interconnect;

    /** The surviving shape after one chip failure: the group re-forms
     *  at half its tensor degree (the failed chip's shard pair is
     *  excised whole, so every divisibility constraint still holds;
     *  see health.hpp). tp=1 has no redundancy and degrades to
     *  itself — callers detect that via tensorParallel staying 1. */
    ClusterOptions degradedOptions() const
    {
        ClusterOptions out = *this;
        out.tensorParallel = std::max<std::size_t>(1, tensorParallel / 2);
        return out;
    }
};

/** N tensor-parallel chips presented as one Accelerator. */
class ClusterAccelerator : public Accelerator
{
  public:
    ClusterAccelerator(std::unique_ptr<Accelerator> chip,
                       ClusterOptions opts);

    std::string name() const override;
    Capabilities capabilities() const override;
    std::string configSummary() const override;
    /**
     * Shard the chip's plan: phase totals and every layer segment are
     * rescaled to the per-chip tensor-parallel share, each span
     * charged the all-reduces of its own layers. tp=1 returns the
     * chip's plan verbatim (bit-identical).
     */
    accel::ExecutionPlan plan(const model::LlmConfig &model,
                              const model::Workload &task) const override;
    /** Sharding changes no profile keys: forward the chip's needs. */
    void
    profileRequests(const model::LlmConfig &model,
                    const model::Workload &task,
                    std::vector<accel::ProfileRequest> &out) const override
    {
        chip_->profileRequests(model, task, out);
    }
    std::shared_ptr<accel::ProfileCache> profileCache() const override
    {
        return chip_->profileCache();
    }

    const Accelerator &underlying() const { return *chip_; }
    const ClusterOptions &options() const { return opts_; }
    /** Flattened fabric hierarchy, innermost tier first. */
    const std::vector<sim::CollectiveTier> &tiers() const
    {
        return tiers_;
    }
    /** Combined tensor degree across all nested tiers. */
    std::size_t totalDegree() const { return totalDegree_; }

  private:
    accel::PhaseMetrics shardPhase(const accel::PhaseMetrics &phase,
                                   const sim::CollectiveTopology &topo,
                                   double hidden, double layerSpan,
                                   double phaseTokens, double steps,
                                   double gangProcessors) const;

    std::unique_ptr<Accelerator> chip_;
    ClusterOptions opts_;
    /** Fabric tiers of the flattened cluster chain, innermost first. */
    std::vector<sim::CollectiveTier> tiers_;
    /** The innermost non-cluster accelerator (not owned; owned by the
     *  chip_ chain). Its plan is the sharding base for the whole
     *  hierarchy, so nested tiers never rescale an already-sharded
     *  plan. */
    const Accelerator *base_ = nullptr;
    /** Product of all tier degrees. */
    std::size_t totalDegree_ = 1;
};

} // namespace mcbp::engine
