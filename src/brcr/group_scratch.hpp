/**
 * @file
 * Reusable scratch for the grouped-pattern BRCR kernels, shared by the
 * production engine (brcr_engine.hpp) and the explicit factorization
 * primitives (enumeration.hpp) without either including the other.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace mcbp::brcr {

/**
 * One instance is allocated per gemv/gemm call (or once by a
 * long-lived caller such as a factorizeGroup loop) and reused across
 * every (group, plane) pair — the hot loops allocate nothing. Buffers
 * are sized on first use and only grow. Not thread-safe: each thread
 * owns its own scratch.
 */
struct GroupScratch
{
    std::vector<std::uint32_t> patterns; ///< Per-column group pattern.
    std::vector<std::uint32_t> count;    ///< Occurrences per pattern.
    std::vector<std::uint32_t> offset;   ///< Prefix offsets per pattern.
    std::vector<std::uint32_t> cursor;   ///< Scatter cursors per pattern.
    std::vector<std::uint32_t> order;    ///< Columns sorted by pattern.
    std::vector<std::uint32_t> present;  ///< Patterns with count > 0.
    std::vector<std::uint64_t> nonzero;  ///< Non-zero-column bitmap.
    std::vector<std::int64_t> z;         ///< Merged activation vector.
    std::vector<std::int64_t> acc;       ///< Group outputs.
    /**
     * Direct-index pattern -> distinct-index table for factorizeGroup
     * (2^m entries, all -1 between calls — callers restore the
     * invariant by resetting only the entries they touched).
     */
    std::vector<std::int32_t> indexOf;
};

} // namespace mcbp::brcr
